package replica

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"

	"fdrms/internal/wal"
)

// FaultFS is a deterministic fault-injection layer over a TailFS: tests and
// the replication bench script the exact filesystem views a follower can
// encounter — segments whose visibility lags the primary (delayed rename or
// stalled fsync ordering), files truncated mid-record, and flipped bytes in
// sealed or active segments — without sleeping, killing processes, or
// depending on real I/O timing. All methods are safe for concurrent use:
// the test goroutine injects while the follower's replay loop reads.
//
// Faults compose per file name: visibility is applied first (a hidden or
// frozen-out file is absent from listings and unreadable), then the frozen
// or injected length cap, then byte flips. Clearing a fault restores the
// passthrough view, which is how "fault heals, follower resumes" scenarios
// are scripted.
type FaultFS struct {
	inner wal.TailFS

	mu       sync.Mutex
	hidden   map[string]bool  // base name -> absent from ReadDir/ReadFile
	truncate map[string]int64 // base name -> visible byte cap
	flips    map[string][]int // base name -> offsets with bit 0x01 flipped
	frozen   map[string]int64 // base name -> length pinned by Freeze
	stalled  bool             // serve the frozen view instead of the live one
	dirErr   bool             // ReadDir fails entirely (directory unreachable)
}

// NewFaultFS wraps inner (nil means the real filesystem) with no faults
// armed.
func NewFaultFS(inner wal.TailFS) *FaultFS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FaultFS{
		inner:    inner,
		hidden:   make(map[string]bool),
		truncate: make(map[string]int64),
		flips:    make(map[string][]int),
		frozen:   make(map[string]int64),
	}
}

// Hide removes a file from the follower's view: absent from listings,
// unreadable directly — a segment whose creation the follower cannot see
// yet, or one deleted under it.
func (f *FaultFS) Hide(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hidden[name] = true
}

// Reveal clears a Hide.
func (f *FaultFS) Reveal(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hidden, name)
}

// TruncateAt caps how many bytes of a file the follower sees — a mid-record
// truncation when the cap lands inside a record. A negative cap clears the
// fault.
func (f *FaultFS) TruncateAt(name string, size int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 {
		delete(f.truncate, name)
		return
	}
	f.truncate[name] = size
}

// FlipByte XORs bit 0x01 into the byte at offset every time the file is
// read — CRC-breaking damage in whichever segment the name picks, sealed or
// active. Repeated calls accumulate offsets; ClearFlips undoes them all.
func (f *FaultFS) FlipByte(name string, offset int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flips[name] = append(f.flips[name], offset)
}

// ClearFlips removes every byte flip on a file.
func (f *FaultFS) ClearFlips(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.flips, name)
}

// Freeze pins the follower's view of dir at its current state — every file
// keeps the exact length it has now, and files created later stay invisible:
// the view a stalled fsync/rename pipeline would pin while the primary keeps
// writing. ClearStall resumes live reads.
func (f *FaultFS) Freeze(dir string) error {
	names, err := f.inner.ReadDir(dir)
	if err != nil {
		return err
	}
	frozen := make(map[string]int64, len(names))
	for _, n := range names {
		data, err := f.inner.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return err
		}
		frozen[n] = int64(len(data))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.frozen = frozen
	f.stalled = true
	return nil
}

// ClearStall lifts Freeze and forgets the frozen lengths.
func (f *FaultFS) ClearStall() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalled = false
	f.frozen = make(map[string]int64)
}

// FailDir makes ReadDir fail while set — the whole directory unreachable
// (network mount dropped, primary host down).
func (f *FaultFS) FailDir(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dirErr = fail
}

// ReadDir lists the underlying directory minus hidden and frozen-out files.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	if f.dirErr {
		f.mu.Unlock()
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fmt.Errorf("injected: directory unreachable")}
	}
	f.mu.Unlock()

	names, err := f.inner.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range names {
		if f.hidden[n] {
			continue
		}
		if f.stalled {
			if _, ok := f.frozen[n]; !ok {
				continue // created after the freeze: not visible yet
			}
		}
		out = append(out, n)
	}
	return out, nil
}

// ReadFile serves the faulted view of one file.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	base := filepath.Base(path)
	f.mu.Lock()
	if f.hidden[base] {
		f.mu.Unlock()
		return nil, &fs.PathError{Op: "read", Path: path, Err: fs.ErrNotExist}
	}
	if f.stalled {
		if _, ok := f.frozen[base]; !ok {
			f.mu.Unlock()
			return nil, &fs.PathError{Op: "read", Path: path, Err: fs.ErrNotExist}
		}
	}
	f.mu.Unlock()

	data, err := f.inner.ReadFile(path)
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stalled {
		if cap := f.frozen[base]; int64(len(data)) > cap {
			data = data[:cap]
		}
	}
	if cap, ok := f.truncate[base]; ok && int64(len(data)) > cap {
		data = data[:cap]
	}
	if offs := f.flips[base]; len(offs) > 0 {
		mut := make([]byte, len(data))
		copy(mut, data)
		for _, o := range offs {
			if o >= 0 && o < len(mut) {
				mut[o] ^= 0x01
			}
		}
		data = mut
	}
	return data, nil
}
