// Read routing across a replication fleet. The Router is a small reverse
// proxy that knows the fleet's topology (one primary, N followers) and its
// health: a background prober polls every backend's /readyz, and reads are
// fanned across the followers that are ready and within the staleness
// bound. Writes always go to the primary — and are never retried, because
// FD-RMS state is path-dependent: a double-applied batch changes the
// answer, so at-most-once is the only safe write policy a proxy can offer.
//
// Reads get a per-request timeout, one bounded retry against a DIFFERENT
// follower, and a final failover to the primary — so a router with any
// backend inside the staleness bound never turns a single slow or dying
// follower into a client-visible error.
package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// ProbeInterval is the health-poll cadence (default 250ms).
	ProbeInterval time.Duration
	// StalenessBound ejects a follower whose reported staleness exceeds it
	// (default 5s). The follower's own /readyz applies its local bound too;
	// the router's is the routing SLO.
	StalenessBound time.Duration
	// RequestTimeout bounds each forwarded attempt (default 2s).
	RequestTimeout time.Duration
	// Client issues probes and forwards; nil builds a default with sane
	// connection pooling.
	Client *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.StalenessBound <= 0 {
		o.StalenessBound = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return o
}

// backendHealth is one probe's digest of a backend's /readyz.
type backendHealth struct {
	ready       bool
	state       string
	appliedSeq  uint64
	stalenessMS int64
	checked     time.Time
}

// backend is one upstream server plus its last observed health.
type backend struct {
	url     string // base URL, no trailing slash
	primary bool

	mu     sync.Mutex
	health backendHealth
}

func (b *backend) setHealth(h backendHealth) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.health = h
}

func (b *backend) getHealth() backendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health
}

// readyzBody is the JSON shape rmsserve's health endpoints emit (the fields
// the router routes on; unknown fields are ignored).
type readyzBody struct {
	State       string `json:"state"`
	AppliedSeq  uint64 `json:"applied_seq"`
	StalenessMS int64  `json:"staleness_ms"`
}

// Router fans reads across healthy followers and writes to the primary.
// Build with NewRouter, start probing with Start, serve it as an
// http.Handler, stop with Close.
type Router struct {
	primary   *backend
	followers []*backend
	opt       RouterOptions

	rr   atomic.Uint64 // round-robin cursor over eligible followers
	stop chan struct{}
	done chan struct{}

	closeOnce sync.Once
}

// NewRouter builds a router over one primary and any number of follower
// base URLs (e.g. "http://10.0.0.2:8080").
func NewRouter(primaryURL string, followerURLs []string, opt RouterOptions) *Router {
	r := &Router{
		primary: &backend{url: strings.TrimRight(primaryURL, "/"), primary: true},
		opt:     opt.withDefaults(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, u := range followerURLs {
		r.followers = append(r.followers, &backend{url: strings.TrimRight(u, "/")})
	}
	return r
}

// Start probes every backend once synchronously (so the first request after
// Start routes on real health) and then keeps probing in the background.
func (r *Router) Start() {
	r.probeAll()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.probeAll()
			}
		}
	}()
}

// Close stops the prober.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.stop)
		<-r.done
	})
}

func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range append([]*backend{r.primary}, r.followers...) {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			r.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe GETs one backend's /readyz and records the digest. A failed or
// not-ready probe marks the backend ineligible until the next success.
func (r *Router) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opt.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		b.setHealth(backendHealth{checked: time.Now()})
		return
	}
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		b.setHealth(backendHealth{checked: time.Now()})
		return
	}
	defer resp.Body.Close()
	var body readyzBody
	dec := json.NewDecoder(io.LimitReader(resp.Body, 1<<16))
	if derr := dec.Decode(&body); derr != nil {
		b.setHealth(backendHealth{checked: time.Now()})
		return
	}
	b.setHealth(backendHealth{
		ready:       resp.StatusCode == http.StatusOK,
		state:       body.State,
		appliedSeq:  body.AppliedSeq,
		stalenessMS: body.StalenessMS,
		checked:     time.Now(),
	})
}

// eligible reports whether a follower may serve reads: last probe ready and
// within the routing staleness bound.
func (r *Router) eligible(b *backend) bool {
	h := b.getHealth()
	return h.ready && time.Duration(h.stalenessMS)*time.Millisecond <= r.opt.StalenessBound
}

// readPlan orders the backends a read should try: up to two distinct
// eligible followers (rotated round-robin so load spreads), then the
// primary as the failover of last resort.
func (r *Router) readPlan() []*backend {
	var plan []*backend
	n := len(r.followers)
	if n > 0 {
		start := int(r.rr.Add(1) - 1)
		for i := 0; i < n && len(plan) < 2; i++ {
			b := r.followers[(start+i)%n]
			if r.eligible(b) {
				plan = append(plan, b)
			}
		}
	}
	return append(plan, r.primary)
}

// ServeHTTP routes one request: writes to the primary (no retry), reads
// through the plan with per-attempt timeouts.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch {
	case req.URL.Path == "/routerz":
		r.serveRouterz(w, req)
	case req.Method == http.MethodPost || req.Method == http.MethodPut || req.Method == http.MethodDelete:
		r.serveWrite(w, req)
	default:
		r.serveRead(w, req)
	}
}

// serveWrite forwards to the primary exactly once. A transport error after
// the body may have reached the primary MUST NOT be retried (the batch may
// already be applied), so it surfaces as 502 and the client decides.
func (r *Router) serveWrite(w http.ResponseWriter, req *http.Request) {
	status, hdr, body, err := r.forward(req, r.primary)
	if err != nil {
		httpJSONError(w, http.StatusBadGateway, fmt.Sprintf("primary unreachable: %v", err))
		return
	}
	writeForwarded(w, status, hdr, body, r.primary)
}

// serveRead tries the plan in order until an attempt returns a usable
// response. 5xx responses and transport errors fail over; everything else
// (including 4xx, which would fail identically anywhere) is returned as-is.
func (r *Router) serveRead(w http.ResponseWriter, req *http.Request) {
	var lastErr error
	for _, b := range r.readPlan() {
		status, hdr, body, err := r.forward(req, b)
		if err != nil {
			lastErr = err
			continue
		}
		if status >= 500 {
			lastErr = fmt.Errorf("%s returned %d", b.url, status)
			continue
		}
		writeForwarded(w, status, hdr, body, b)
		return
	}
	httpJSONError(w, http.StatusServiceUnavailable, fmt.Sprintf("no backend available: %v", lastErr))
}

// forward replays req against one backend with the per-attempt timeout.
// The caller receives the full buffered response so a retry never splices
// two backends' bytes into one reply.
func (r *Router) forward(req *http.Request, b *backend) (int, http.Header, []byte, error) {
	ctx, cancel := context.WithTimeout(req.Context(), r.opt.RequestTimeout)
	defer cancel()
	var bodyReader io.Reader
	if req.Body != nil && req.ContentLength != 0 {
		// Buffer once so the single write attempt sends exactly the client's
		// bytes (reads have no body; writes are never retried).
		data, err := io.ReadAll(io.LimitReader(req.Body, 64<<20))
		if err != nil {
			return 0, nil, nil, err
		}
		bodyReader = strings.NewReader(string(data))
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, b.url+req.URL.RequestURI(), bodyReader)
	if err != nil {
		return 0, nil, nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.opt.Client.Do(out)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// writeForwarded relays a buffered upstream response, stamping which
// backend served it (observability and the routing tests key off it).
func writeForwarded(w http.ResponseWriter, status int, hdr http.Header, body []byte, b *backend) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	role := "follower"
	if b.primary {
		role = "primary"
	}
	w.Header().Set("X-Fdrms-Backend", b.url)
	w.Header().Set("X-Fdrms-Backend-Role", role)
	w.WriteHeader(status)
	w.Write(body)
}

// serveRouterz reports the router's own health: 200 when at least one
// backend is usable for reads, plus the full per-backend table.
func (r *Router) serveRouterz(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		URL         string `json:"url"`
		Role        string `json:"role"`
		Ready       bool   `json:"ready"`
		State       string `json:"state"`
		AppliedSeq  uint64 `json:"applied_seq"`
		StalenessMS int64  `json:"staleness_ms"`
		Eligible    bool   `json:"eligible"`
	}
	var rows []row
	usable := false
	add := func(b *backend, role string, elig bool) {
		h := b.getHealth()
		rows = append(rows, row{
			URL: b.url, Role: role, Ready: h.ready, State: h.state,
			AppliedSeq: h.appliedSeq, StalenessMS: h.stalenessMS, Eligible: elig,
		})
		if elig || (b.primary && h.ready) {
			usable = true
		}
	}
	add(r.primary, "primary", false)
	for _, b := range r.followers {
		add(b, "follower", r.eligible(b))
	}
	status := http.StatusOK
	if !usable {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"usable": usable, "backends": rows})
}

// httpJSONError mirrors rmsserve's error shape.
func httpJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
