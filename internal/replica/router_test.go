package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend plays one rmsserve: a /readyz whose verdict the test flips at
// will, plus read and write endpoints that count what reaches them.
type fakeBackend struct {
	name string
	srv  *httptest.Server

	mu          sync.Mutex
	ready       bool
	stalenessMS int64
	readStatus  int // status for read endpoints (default 200)

	reads  atomic.Int64
	writes atomic.Int64
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	b := &fakeBackend{name: name, ready: true, readStatus: http.StatusOK}
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz":
			b.mu.Lock()
			ready, stale := b.ready, b.stalenessMS
			b.mu.Unlock()
			code := http.StatusOK
			if !ready {
				code = http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]any{
				"ready": ready, "state": "following", "applied_seq": 7, "staleness_ms": stale,
			})
		case r.Method == http.MethodPost:
			b.writes.Add(1)
			body, _ := io.ReadAll(r.Body)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"applied_by":%q,"bytes":%d}`, b.name, len(body))
		default:
			b.reads.Add(1)
			b.mu.Lock()
			code := b.readStatus
			b.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"served_by":%q}`, b.name)
		}
	}))
	t.Cleanup(b.srv.Close)
	return b
}

func (b *fakeBackend) setReady(ready bool, stalenessMS int64) {
	b.mu.Lock()
	b.ready, b.stalenessMS = ready, stalenessMS
	b.mu.Unlock()
}

func (b *fakeBackend) setReadStatus(code int) {
	b.mu.Lock()
	b.readStatus = code
	b.mu.Unlock()
}

func newTestRouter(t *testing.T, primary *fakeBackend, followers ...*fakeBackend) *Router {
	t.Helper()
	var urls []string
	for _, f := range followers {
		urls = append(urls, f.srv.URL)
	}
	r := NewRouter(primary.srv.URL, urls, RouterOptions{
		ProbeInterval:  10 * time.Millisecond,
		StalenessBound: time.Second,
		RequestTimeout: 2 * time.Second,
	})
	r.Start() // probes synchronously: routing below is on real health
	t.Cleanup(r.Close)
	return r
}

// get issues one read through the router and returns status, body, and the
// backend stamp.
func get(t *testing.T, r *Router, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String(), rec.Result().Header.Get("X-Fdrms-Backend")
}

func TestRouterFansReadsAcrossFollowers(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	f1 := newFakeBackend(t, "f1")
	f2 := newFakeBackend(t, "f2")
	r := newTestRouter(t, primary, f1, f2)

	seen := map[string]int{}
	for i := 0; i < 20; i++ {
		code, _, backend := get(t, r, "/result")
		if code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, code)
		}
		seen[backend]++
	}
	if seen[f1.srv.URL] == 0 || seen[f2.srv.URL] == 0 {
		t.Fatalf("reads did not spread across followers: %v", seen)
	}
	if primary.reads.Load() != 0 {
		t.Fatalf("primary served %d reads with both followers healthy", primary.reads.Load())
	}
}

func TestRouterEjectsStaleFollower(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	fresh := newFakeBackend(t, "fresh")
	stale := newFakeBackend(t, "stale")
	stale.setReady(true, 5000) // past the 1s routing bound
	r := newTestRouter(t, primary, fresh, stale)

	for i := 0; i < 10; i++ {
		code, _, backend := get(t, r, "/result")
		if code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, code)
		}
		if backend == stale.srv.URL {
			t.Fatal("router sent a read to a follower past the staleness bound")
		}
	}
	if stale.reads.Load() != 0 {
		t.Fatalf("stale follower served %d reads", stale.reads.Load())
	}
}

func TestRouterRetriesOnDifferentBackendThenSucceeds(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	dying := newFakeBackend(t, "dying")
	healthy := newFakeBackend(t, "healthy")
	// Ready on probes but 500s on reads: the worst case for routing — the
	// plan includes it, so the retry path must absorb the failure.
	dying.setReadStatus(http.StatusInternalServerError)
	r := newTestRouter(t, primary, dying, healthy)

	for i := 0; i < 20; i++ {
		code, body, backend := get(t, r, "/result")
		if code != http.StatusOK {
			t.Fatalf("read %d: status %d %s — a single dying follower must never surface", i, code, body)
		}
		if backend == dying.srv.URL {
			t.Fatal("router relayed a 5xx backend's response")
		}
	}
}

func TestRouterFailsOverToPrimaryWhenNoFollowerIsUsable(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	f1 := newFakeBackend(t, "f1")
	f2 := newFakeBackend(t, "f2")
	f1.setReady(false, 0)
	f2.setReady(true, 60000)
	r := newTestRouter(t, primary, f1, f2)

	code, _, backend := get(t, r, "/result")
	if code != http.StatusOK {
		t.Fatalf("failover read: status %d", code)
	}
	if backend != primary.srv.URL {
		t.Fatalf("read served by %s, want primary failover", backend)
	}

	// A dead follower process (connection refused), not just a sad /readyz.
	f2.setReady(true, 0)
	f2.srv.Close()
	time.Sleep(30 * time.Millisecond) // let a probe observe the corpse
	for i := 0; i < 10; i++ {
		if code, _, _ := get(t, r, "/result"); code != http.StatusOK {
			t.Fatalf("read %d errored with the primary alive: %d", i, code)
		}
	}
}

func TestRouterWritesGoToPrimaryExactlyOnce(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	f1 := newFakeBackend(t, "f1")
	r := newTestRouter(t, primary, f1)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/update", io.NopCloser(strings.NewReader(`{"insert":[{"id":1,"values":[0.5]}]}`)))
	req.Header.Set("Content-Type", "application/json")
	r.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("write: status %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Result().Header.Get("X-Fdrms-Backend-Role"); got != "primary" {
		t.Fatalf("write served by role %q", got)
	}
	if primary.writes.Load() != 1 || f1.writes.Load() != 0 {
		t.Fatalf("write fan-out wrong: primary %d, follower %d", primary.writes.Load(), f1.writes.Load())
	}

	// A dead primary: the write fails fast with 502 and is NOT retried
	// anywhere — at-most-once is the router's write contract.
	primary.srv.Close()
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/update", newBody(`{}`)))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("write to dead primary: status %d, want 502", rec.Code)
	}
	if f1.writes.Load() != 0 {
		t.Fatal("router retried a write against a follower")
	}
}

func TestRouterzReportsFleet(t *testing.T) {
	primary := newFakeBackend(t, "primary")
	f1 := newFakeBackend(t, "f1")
	stale := newFakeBackend(t, "stale")
	stale.setReady(true, 9000)
	r := newTestRouter(t, primary, f1, stale)

	code, body, _ := get(t, r, "/routerz")
	if code != http.StatusOK {
		t.Fatalf("/routerz: status %d", code)
	}
	var rep struct {
		Usable   bool `json:"usable"`
		Backends []struct {
			URL      string `json:"url"`
			Role     string `json:"role"`
			Eligible bool   `json:"eligible"`
		} `json:"backends"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/routerz body: %v", err)
	}
	if !rep.Usable || len(rep.Backends) != 3 {
		t.Fatalf("routerz: usable=%v backends=%d", rep.Usable, len(rep.Backends))
	}
	for _, b := range rep.Backends {
		switch b.URL {
		case f1.srv.URL:
			if !b.Eligible {
				t.Fatal("healthy follower reported ineligible")
			}
		case stale.srv.URL:
			if b.Eligible {
				t.Fatal("stale follower reported eligible")
			}
		}
	}
}

// newBody builds a fresh request body reader.
func newBody(s string) io.Reader { return strings.NewReader(s) }
