package replica

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"fdrms/rms"
)

const testDim = 3

func testOptions() rms.Options {
	return rms.Options{K: 1, R: 4, Epsilon: 0.1, MaxUtilities: 32, Seed: 5, Shards: 2}
}

func testPoints(rng *rand.Rand, n, idBase int) []rms.Point {
	pts := make([]rms.Point, n)
	for i := range pts {
		v := make([]float64, testDim)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = rms.Point{ID: idBase + i, Values: v}
	}
	return pts
}

// testBatches yields a deterministic mixed insert/delete stream.
func testBatches(rng *rand.Rand, nBatches int) [][]rms.Update {
	var live []int
	next := 1000
	batches := make([][]rms.Update, nBatches)
	for b := range batches {
		n := 1 + rng.Intn(4)
		batch := make([]rms.Update, 0, n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 && len(live) > 0 {
				j := rng.Intn(len(live))
				batch = append(batch, rms.Del(live[j]))
				live = append(live[:j], live[j+1:]...)
			} else {
				p := testPoints(rng, 1, next)[0]
				next++
				batch = append(batch, rms.Ins(p))
				live = append(live, p.ID)
			}
		}
		batches[b] = batch
	}
	return batches
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// segmentFiles lists the WAL segment names in dir, oldest first.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// fastFollower returns Options tuned so tests converge in milliseconds.
func fastFollower(fs *FaultFS) Options {
	o := Options{
		PollInterval: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		MaxBatchOps:  64,
	}
	if fs != nil { // a typed-nil TailFS would defeat the withDefaults check
		o.FS = fs
	}
	return o
}

// mustConverge waits until the follower has applied through seq and its
// engine state is byte-identical to the primary's.
func mustConverge(t *testing.T, f *Follower, ds *rms.DurableStore, seq uint64) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool {
		return f.Status().AppliedSeq >= seq
	}, "follower to reach primary seq")
	got, at, ok := f.EncodeState()
	if !ok {
		t.Fatal("follower has no state after convergence")
	}
	if at < seq {
		t.Fatalf("follower regressed to seq %d after reaching %d", at, seq)
	}
	want := ds.EncodeState()
	if at == ds.LastSeq() && !bytes.Equal(got, want) {
		t.Fatalf("follower state at seq %d differs from primary (%d vs %d bytes)", at, len(got), len(want))
	}
}

func TestFollowerConvergesAcrossRotationsAndIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{
		SyncEveryBatch: true, SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f := Open(dir, fastFollower(nil))
	defer f.Close()

	rng := rand.New(rand.NewSource(42))
	// Per-seq bit equality: after each primary batch, the follower at the
	// same seq must encode the identical engine state.
	for i, batch := range testBatches(rng, 25) {
		if err := ds.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		seq := ds.LastSeq()
		want := ds.EncodeState()
		waitFor(t, 10*time.Second, func() bool {
			return f.Status().AppliedSeq >= seq
		}, "follower to catch up")
		got, at, ok := f.EncodeState()
		if !ok || at != seq {
			t.Fatalf("batch %d: follower at seq %d ok=%v, want %d", i, at, ok, seq)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("batch %d: follower state at seq %d is not bit-identical to primary", i, seq)
		}
	}
	if n := len(segmentFiles(t, dir)); n < 2 {
		t.Fatalf("stream did not rotate (only %d segments) — weak test", n)
	}
	st := f.Status()
	if st.State != StateFollowing || st.Reason != "" || st.Resyncs != 0 {
		t.Fatalf("healthy convergence ended in %v (%q, resyncs %d)", st.State, st.Reason, st.Resyncs)
	}
}

func TestFollowerTornActiveTailDegradesThenResumes(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := ds.ApplyBatch(testBatches(rng, 1)[0]); err != nil {
		t.Fatal(err)
	}

	ffs := NewFaultFS(nil)
	opt := fastFollower(ffs)
	opt.StalenessBound = 50 * time.Millisecond
	f := Open(dir, opt)
	defer f.Close()
	mustConverge(t, f, ds, ds.LastSeq())
	caughtUp := f.Status().AppliedSeq

	// Stall shipping mid-record: freeze visibility at the converged prefix,
	// let the primary write one more batch, then expose all but the last two
	// bytes — the shape of a crashed fsync or a cut mid-append.
	segs := segmentFiles(t, dir)
	active := segs[len(segs)-1]
	if err := ffs.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	if err := ds.ApplyBatch(testBatches(rng, 1)[0]); err != nil {
		t.Fatal(err)
	}
	ffs.TruncateAt(active, fileSize(t, filepath.Join(dir, active))-2)
	ffs.ClearStall()

	// The torn tail is pending, not corruption: the follower keeps serving
	// its last consistent seq, does not quarantine, and degrades only via
	// the staleness bound.
	waitFor(t, 10*time.Second, func() bool {
		return f.Status().State == StateDegraded
	}, "staleness degradation")
	st := f.Status()
	if st.AppliedSeq != caughtUp {
		t.Fatalf("follower advanced through a torn record: seq %d, want %d", st.AppliedSeq, caughtUp)
	}
	if !strings.Contains(st.Reason, "staleness") {
		t.Fatalf("degraded for %q, want a staleness reason (torn tail must not quarantine)", st.Reason)
	}
	if st.Retries == 0 {
		t.Fatal("pending polls did not count retries")
	}

	// The fault clears (the primary's write completes): replication resumes
	// with no resync and converges bit-identically.
	ffs.TruncateAt(active, -1)
	mustConverge(t, f, ds, ds.LastSeq())
	waitFor(t, 10*time.Second, func() bool {
		return f.Status().State == StateFollowing
	}, "recovery to following")
	if st := f.Status(); st.Resyncs != 0 {
		t.Fatalf("torn tail forced %d resyncs, want 0", st.Resyncs)
	}
}

func TestFollowerDelayedSegmentVisibility(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{
		SyncEveryBatch: true, SegmentBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if err := ds.ApplyBatch(testBatches(rng, 1)[0]); err != nil {
		t.Fatal(err)
	}

	ffs := NewFaultFS(nil)
	f := Open(dir, fastFollower(ffs))
	defer f.Close()
	mustConverge(t, f, ds, ds.LastSeq())
	caughtUp := f.Status().AppliedSeq

	// Freeze the directory: batches (and whole segments) the primary writes
	// next are invisible to the follower, like a replication channel with
	// delayed file visibility.
	if err := ffs.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(rng, 10) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// An invisible suffix is indistinguishable from an idle primary: the
	// follower stays healthy at its last seq (clean caught-up polls), it
	// does not invent or corrupt anything.
	time.Sleep(20 * time.Millisecond)
	st := f.Status()
	if st.AppliedSeq != caughtUp {
		t.Fatalf("follower saw through the freeze: seq %d, want %d", st.AppliedSeq, caughtUp)
	}
	if st.State != StateFollowing || st.Reason != "" {
		t.Fatalf("freeze flipped health to %v (%q)", st.State, st.Reason)
	}

	ffs.ClearStall()
	mustConverge(t, f, ds, ds.LastSeq())
}

func TestFollowerQuarantinesSealedCorruptionAndHeals(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{
		SyncEveryBatch: true, SegmentBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, b := range testBatches(rng, 20) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}

	// Corrupt a byte inside the SECOND (sealed) segment before the follower
	// ever reads it: bootstrap lands before the damage, tailing hits it.
	ffs := NewFaultFS(nil)
	ffs.FlipByte(segs[1], 20)
	opt := fastFollower(ffs)
	f := Open(dir, opt)
	defer f.Close()

	waitFor(t, 10*time.Second, func() bool {
		st := f.Status()
		return st.State == StateDegraded && st.Reason != "" && !strings.Contains(st.Reason, "staleness")
	}, "quarantine of sealed-segment corruption")
	st := f.Status()
	if st.AppliedSeq >= ds.LastSeq() {
		t.Fatal("follower claims to be caught up across a corrupt segment")
	}
	// Still serving: the last consistent generation answers reads.
	if g, _ := f.Current(); g == nil {
		t.Fatal("quarantined follower stopped serving")
	}
	if m, _, ok := f.EncodeState(); !ok || m == nil {
		t.Fatal("quarantined follower lost its state")
	}

	// The fault heals (operator restores the segment bytes): the next clean
	// poll lifts the quarantine and replication converges bit-identically —
	// the follower never applied a damaged record.
	ffs.ClearFlips(segs[1])
	mustConverge(t, f, ds, ds.LastSeq())
	waitFor(t, 10*time.Second, func() bool {
		st := f.Status()
		return st.State == StateFollowing && st.Reason == ""
	}, "quarantine to clear after heal")
	if st := f.Status(); st.Resyncs != 0 {
		t.Fatalf("sealed corruption healed in place but took %d resyncs", st.Resyncs)
	}
}

func TestSlowFollowerResyncsAfterCheckpointAndPrune(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{
		SyncEveryBatch: true, SegmentBytes: 256, KeepCheckpoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, b := range testBatches(rng, 5) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	ffs := NewFaultFS(nil)
	f := Open(dir, fastFollower(ffs))
	defer f.Close()
	mustConverge(t, f, ds, ds.LastSeq())

	// The follower stalls; the primary advances through several rotations,
	// checkpoints, and prunes the follower's position out of the log.
	if err := ffs.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(rng, 40) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := len(segmentFiles(t, dir)); n > 2 {
		t.Fatalf("prune left %d segments; the gap scenario needs the tail gone", n)
	}
	ffs.ClearStall()

	// The position is gone: the follower must re-bootstrap from the newer
	// checkpoint (a resync) and still converge bit-identically.
	mustConverge(t, f, ds, ds.LastSeq())
	waitFor(t, 10*time.Second, func() bool {
		return f.Status().State == StateFollowing
	}, "post-resync following")
	if st := f.Status(); st.Resyncs == 0 {
		t.Fatal("pruned-out follower converged without a resync — gap handling untested")
	}
}

func TestRetainFloorLetsSlowFollowerTailThrough(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{
		SyncEveryBatch: true, SegmentBytes: 256, KeepCheckpoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, b := range testBatches(rng, 5) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	ffs := NewFaultFS(nil)
	f := Open(dir, fastFollower(ffs))
	defer f.Close()
	mustConverge(t, f, ds, ds.LastSeq())
	caughtUp := f.Status().AppliedSeq

	// Same stall as the resync test — but this time the primary honors the
	// follower's position with a retention floor, so checkpoint-driven
	// pruning cannot delete unshipped records.
	ds.SetRetainFloor(caughtUp + 1)
	if err := ffs.Freeze(dir); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches(rng, 40) {
		if err := ds.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ffs.ClearStall()

	mustConverge(t, f, ds, ds.LastSeq())
	if st := f.Status(); st.Resyncs != 0 {
		t.Fatalf("floor-protected follower took %d resyncs, want pure tailing", st.Resyncs)
	}
}

func TestFollowerBootstrapWaitsForPrimary(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	// Pointed at a primary that does not exist yet.
	f := Open(dir, fastFollower(nil))
	defer f.Close()
	time.Sleep(10 * time.Millisecond)
	if st := f.Status(); st.State != StateBootstrapping {
		t.Fatalf("follower with no primary is %v, want bootstrapping", st.State)
	}
	if g, _ := f.Current(); g != nil {
		t.Fatal("bootstrapping follower served a generation")
	}

	// The primary appears, writes, and checkpoints: the follower comes up.
	ds, err := rms.OpenDurable(dir, testDim, nil, testOptions(), rms.DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	rng := rand.New(rand.NewSource(6))
	if err := ds.ApplyBatch(testBatches(rng, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustConverge(t, f, ds, ds.LastSeq())
}
