// Package replica turns the primary's segmented WAL into horizontal read
// scale-out: a Follower bootstraps from the newest valid checkpoint in the
// primary's WAL directory, tails the segment files as the primary appends
// (file-level shipping — the directory is the replication channel), and
// replays coalesced batches into its own MVCC store, so replicas serve the
// full lock-free read API with a per-response applied seq and staleness
// bound.
//
// The failure model is explicit, driven by the wal.Tailer's taxonomy:
//
//   - pending (torn tail on the active segment, delayed file visibility):
//     the primary is still writing — back off exponentially and re-poll.
//   - corruption (CRC/decode damage or a seq discontinuity in a sealed
//     segment): waiting cannot fix it — quarantine the feed, alarm through
//     metrics and health, keep serving the last consistent generation
//     read-only, and keep probing so a healed fault (an operator restoring
//     the segment, a fault layer clearing) resumes replication cleanly.
//   - gap (needed records pruned, or consumed bytes rewritten after a
//     primary crash discarded an unsynced suffix): the position is gone —
//     re-bootstrap from a checkpoint that covers the gap, atomically
//     swapping in the freshly restored store; until one exists the follower
//     serves its last consistent state as degraded.
//
// A follower never serves a wrong answer: only CRC-valid, seq-continuous
// records reach the store, through the same deterministic apply path as
// crash recovery, so a follower at seq S is bit-identical to the primary at
// seq S (the tests compare encoded snapshots byte for byte).
package replica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fdrms/internal/wal"
	"fdrms/rms"
)

// State is a follower's coarse health, derived from the replication loop.
type State int32

const (
	// StateBootstrapping: no store yet — waiting for a readable checkpoint.
	StateBootstrapping State = iota
	// StateFollowing: serving, and replication is live within the bound.
	StateFollowing
	// StateDegraded: serving the last consistent generation, but replication
	// is quarantined, gapped, or staler than the configured bound.
	StateDegraded
)

func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "bootstrapping"
	case StateFollowing:
		return "following"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Options configures a Follower. The zero value is serviceable for tests;
// production followers set StalenessBound to their SLO.
type Options struct {
	// Shards tunes per-host query parallelism of the restored engine
	// (zero keeps the value persisted in the checkpoint). Never affects
	// answers.
	Shards int
	// PollInterval is the idle re-poll cadence and the base of the
	// exponential backoff (default 25ms).
	PollInterval time.Duration
	// MaxBackoff caps the backoff between polls while the primary is
	// unreachable or mid-write (default 1s).
	MaxBackoff time.Duration
	// StalenessBound is how long the follower may go without proving itself
	// caught up or advancing before Status reports it degraded (default 5s).
	StalenessBound time.Duration
	// MaxBatchOps bounds how many operations one poll coalesces into a
	// single engine batch (default 4096, recovery's replay window).
	MaxBatchOps int
	// FS is the filesystem the follower reads the primary's directory
	// through; nil means the real one. Tests inject a *FaultFS.
	FS wal.TailFS
	// Now is the clock for staleness bookkeeping (nil means time.Now).
	Now func() time.Time
	// Metrics, when set, mirrors replication traffic into obs handles.
	Metrics *Metrics
	// Telemetry, when set, instruments each restored store (engine phase
	// mirrors, read latency, generation gauges) like a primary's.
	Telemetry *rms.Telemetry
	// ApplyHook, when set, runs after each applied batch with the new
	// applied seq and the batch's op count — the bench's lag probe. Called
	// from the replay loop; keep it cheap.
	ApplyHook func(seq uint64, ops int)
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.StalenessBound <= 0 {
		o.StalenessBound = 5 * time.Second
	}
	if o.MaxBatchOps <= 0 {
		o.MaxBatchOps = 4096
	}
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Status is a point-in-time view of a follower's replication health.
type Status struct {
	State      State
	AppliedSeq uint64        // last WAL seq applied
	Generation uint64        // id of the serving generation (0 while bootstrapping)
	Staleness  time.Duration // time since the follower last advanced or proved itself caught up
	Reason     string        // why degraded (quarantine, gap, staleness); "" when healthy
	Resyncs    uint64        // checkpoint re-bootstraps taken after gaps
	Retries    uint64        // pending polls that scheduled a backoff
}

// view is the immutable bundle the replay loop publishes for readers: the
// serving store plus the replication position it corresponds to.
type view struct {
	store      *rms.Store // nil until the first bootstrap succeeds
	appliedSeq uint64
	progress   time.Time // when the follower last advanced or saw a clean, caught-up poll
	reason     string    // quarantine or gap annotation; "" when the feed is healthy
	resyncs    uint64
	retries    uint64
}

// Follower replicates a primary's WAL directory into a local MVCC store and
// serves lock-free reads from it. Create with Open, stop with Close. All
// read methods are safe for concurrent use; the replay loop is internal.
type Follower struct {
	dir string
	opt Options

	cur  atomic.Pointer[view] // published only by publish
	stop chan struct{}
	done chan struct{}

	closeOnce sync.Once

	// Replay-loop-private state (single goroutine, never read elsewhere).
	store   *rms.Store
	tailer  *wal.Tailer
	backoff time.Duration
	loopV   view // staged copy of the published view
}

// Open starts a follower over the primary's WAL directory and returns
// immediately; bootstrap (finding and restoring a checkpoint) proceeds
// asynchronously so a follower can be pointed at a primary that does not
// exist yet. Status reports StateBootstrapping until the first checkpoint
// loads; readiness gates (rmsserve /readyz) key off that.
func Open(dir string, opt Options) *Follower {
	f := &Follower{
		dir:  dir,
		opt:  opt.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.backoff = f.opt.PollInterval
	f.loopV = view{progress: f.opt.Now()}
	f.publish()
	go f.run()
	return f
}

// Dir returns the replicated WAL directory.
func (f *Follower) Dir() string { return f.dir }

// publish snapshots the loop's staged view for readers.
func (f *Follower) publish() {
	v := f.loopV
	f.cur.Store(&v)
	if m := f.opt.Metrics; m != nil {
		m.AppliedSeq.Set(int64(v.appliedSeq))
		m.StalenessNs.Set(int64(f.opt.Now().Sub(v.progress)))
	}
}

// Current returns the newest committed generation of the replica store, or
// nil while bootstrapping. The handle is immutable and lock-free, exactly
// like Store.Current on the primary.
func (f *Follower) Current() (*rms.Generation, Status) {
	v := f.cur.Load()
	var g *rms.Generation
	if v.store != nil {
		g = v.store.Current()
	}
	return g, f.statusOf(v, g)
}

// Status reports the follower's replication health.
func (f *Follower) Status() Status {
	v := f.cur.Load()
	var g *rms.Generation
	if v.store != nil {
		g = v.store.Current()
	}
	return f.statusOf(v, g)
}

func (f *Follower) statusOf(v *view, g *rms.Generation) Status {
	st := Status{
		AppliedSeq: v.appliedSeq,
		Staleness:  f.opt.Now().Sub(v.progress),
		Reason:     v.reason,
		Resyncs:    v.resyncs,
		Retries:    v.retries,
	}
	if g != nil {
		st.Generation = g.ID()
	}
	switch {
	case v.store == nil:
		st.State = StateBootstrapping
	case v.reason != "":
		st.State = StateDegraded
	case st.Staleness > f.opt.StalenessBound:
		st.State = StateDegraded
		st.Reason = fmt.Sprintf("staleness %v exceeds bound %v", st.Staleness.Round(time.Millisecond), f.opt.StalenessBound)
	default:
		st.State = StateFollowing
	}
	return st
}

// EncodeState captures the replica store's full engine state as the
// canonical snapshot encoding — byte-comparable with the primary's at the
// same applied seq. ok is false while bootstrapping. The capture blocks the
// replay loop for its duration (tests and diagnostics only).
func (f *Follower) EncodeState() (state []byte, appliedSeq uint64, ok bool) {
	v := f.cur.Load()
	if v.store == nil {
		return nil, 0, false
	}
	return v.store.EncodeState(), v.appliedSeq, true
}

// Close stops the replay loop and releases the replica store's worker pool.
// Reads against already-obtained generations keep working.
func (f *Follower) Close() {
	f.closeOnce.Do(func() {
		close(f.stop)
		<-f.done
		if f.store != nil {
			f.store.Close()
		}
	})
}

// run is the replay loop: one goroutine owns the tailer, the store swaps,
// and the published view.
func (f *Follower) run() {
	defer close(f.done)
	timer := time.NewTimer(0)
	<-timer.C // a zero timer always fires; drain so Reset starts clean
	for {
		delay := f.step()
		if delay <= 0 {
			// More work is immediately available (a full batch was cut or a
			// resync landed); yield only to the stop signal.
			select {
			case <-f.stop:
				return
			default:
				continue
			}
		}
		timer.Reset(delay)
		select {
		case <-f.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// step advances the follower one action — bootstrap attempt or tail poll —
// and returns how long to sleep before the next one (<= 0: go again now).
func (f *Follower) step() time.Duration {
	if f.store == nil {
		return f.bootstrap()
	}
	m := f.opt.Metrics
	if m != nil {
		m.TailPolls.Inc()
	}
	ops, records, err := f.tailer.Poll(f.opt.MaxBatchOps)
	now := f.opt.Now()
	if err == nil {
		if records > 0 {
			start := now
			f.store.ApplyReplicated(ops)
			seq := f.tailer.LastSeq()
			if m != nil {
				m.ReplayedBatches.Add(uint64(records))
				m.ReplayedOps.Add(uint64(len(ops)))
				m.ApplyNs.Observe(int64(f.opt.Now().Sub(start)))
			}
			f.loopV.appliedSeq = seq
			f.loopV.progress = now
			f.loopV.reason = ""
			f.publish()
			if f.opt.ApplyHook != nil {
				f.opt.ApplyHook(seq, len(ops))
			}
			f.backoff = f.opt.PollInterval
			if len(ops) >= f.opt.MaxBatchOps {
				return 0 // a full window: drain the backlog at full speed
			}
			return f.opt.PollInterval
		}
		// Cleanly caught up: this is proof of freshness (and that any prior
		// quarantine healed), even though nothing advanced.
		f.loopV.progress = now
		f.loopV.reason = ""
		f.publish()
		f.backoff = f.opt.PollInterval
		return f.opt.PollInterval
	}
	switch e := err.(type) {
	case *wal.PendingError:
		// The primary is mid-write, slow, or not visible: normal life.
		// Staleness keeps growing (progress is NOT touched), so a primary
		// stalled past the bound degrades the follower without any special
		// case.
		f.loopV.retries++
		f.publish()
		if m != nil {
			m.TailRetries.Inc()
		}
		f.backoff *= 2
		if f.backoff > f.opt.MaxBackoff {
			f.backoff = f.opt.MaxBackoff
		}
		return f.backoff
	case *wal.CorruptError:
		// Structural damage in a sealed segment: quarantine and alarm, keep
		// serving the last consistent generation, keep probing — if the
		// fault clears (segment restored), the next poll succeeds and the
		// reason resets.
		if f.loopV.reason == "" && m != nil {
			m.Quarantines.Inc()
		}
		f.loopV.reason = e.Error()
		f.publish()
		return f.opt.MaxBackoff
	case *wal.GapError:
		return f.resync(e)
	default:
		// An error outside the taxonomy (unexpected FS failure): treat like
		// a pending condition — retry with backoff, degrade via staleness.
		f.loopV.retries++
		f.publish()
		if m != nil {
			m.TailRetries.Inc()
		}
		f.backoff *= 2
		if f.backoff > f.opt.MaxBackoff {
			f.backoff = f.opt.MaxBackoff
		}
		return f.backoff
	}
}

// bootstrap tries to load the newest checkpoint and start tailing after it.
func (f *Follower) bootstrap() time.Duration {
	seq, payload, ok, err := wal.NewestCheckpointFS(f.opt.FS, f.dir)
	if err != nil || !ok {
		// No directory, no checkpoint, or none readable yet: the primary may
		// simply not have started. Stay in bootstrap with backoff.
		f.backoff *= 2
		if f.backoff > f.opt.MaxBackoff {
			f.backoff = f.opt.MaxBackoff
		}
		return f.backoff
	}
	store, _, rerr := rms.NewReplicaStore(payload, f.opt.Shards)
	if rerr != nil {
		// The payload validated its CRC but does not decode — version skew
		// or deep corruption. Alarm and retry; an operator (or a newer
		// checkpoint) resolves it.
		f.loopV.reason = fmt.Sprintf("checkpoint %d unusable: %v", seq, rerr)
		f.publish()
		return f.opt.MaxBackoff
	}
	if f.opt.Telemetry != nil {
		store.SetTelemetry(f.opt.Telemetry)
	}
	f.store = store
	f.tailer = wal.NewTailer(f.dir, seq, f.opt.FS)
	f.loopV = view{
		store:      store,
		appliedSeq: seq,
		progress:   f.opt.Now(),
		resyncs:    f.loopV.resyncs,
		retries:    f.loopV.retries,
	}
	f.publish()
	if m := f.opt.Metrics; m != nil {
		m.Bootstraps.Inc()
	}
	f.backoff = f.opt.PollInterval
	return 0
}

// resync reacts to a gap: if a checkpoint at or past the gap exists, rebuild
// the store from it and swap atomically (readers migrate on their next
// Current call; generations they already hold stay valid); otherwise stay
// degraded on the last consistent state until the primary checkpoints again.
func (f *Follower) resync(gap *wal.GapError) time.Duration {
	seq, payload, ok, err := wal.NewestCheckpointFS(f.opt.FS, f.dir)
	if err == nil && ok && seq+1 >= gap.Need {
		store, _, rerr := rms.NewReplicaStore(payload, f.opt.Shards)
		if rerr == nil {
			if f.opt.Telemetry != nil {
				store.SetTelemetry(f.opt.Telemetry)
			}
			old := f.store
			f.store = store
			f.tailer = wal.NewTailer(f.dir, seq, f.opt.FS)
			f.loopV = view{
				store:      store,
				appliedSeq: seq,
				progress:   f.opt.Now(),
				resyncs:    f.loopV.resyncs + 1,
				retries:    f.loopV.retries,
			}
			f.publish()
			if m := f.opt.Metrics; m != nil {
				m.Resyncs.Inc()
				m.Bootstraps.Inc()
			}
			old.Close()
			f.backoff = f.opt.PollInterval
			return 0
		}
		f.loopV.reason = fmt.Sprintf("resync checkpoint %d unusable: %v", seq, rerr)
		f.publish()
		return f.opt.MaxBackoff
	}
	// No checkpoint covers the gap yet (retention raced us): serve the last
	// consistent state, report why, and wait for the primary's next
	// checkpoint to leapfrog.
	f.loopV.reason = fmt.Sprintf("retention gap: %v", gap)
	f.publish()
	return f.opt.MaxBackoff
}
