package replica

import "fdrms/internal/obs"

// Metrics is the obs handle bundle of one follower: replay progress and
// throughput, tail retry/backoff traffic, fault accounting, and the
// replication-lag gauges scraped from /metrics. Handles are nil-safe, so an
// uninstrumented follower (nil Metrics) pays only nil checks.
type Metrics struct {
	// Bootstraps counts checkpoint loads: the initial one plus every
	// gap-driven resync.
	Bootstraps *obs.Counter
	// ReplayedBatches / ReplayedOps count WAL records and decoded operations
	// applied to the local store (replay throughput = rate of ReplayedOps).
	ReplayedBatches *obs.Counter
	ReplayedOps     *obs.Counter
	// TailPolls counts every Poll against the primary's directory;
	// TailRetries counts the ones that came back pending (torn tail, delayed
	// visibility) and scheduled a backoff.
	TailPolls   *obs.Counter
	TailRetries *obs.Counter
	// Quarantines counts transitions into corruption quarantine; Resyncs
	// counts gap-driven re-bootstraps from a newer checkpoint.
	Quarantines *obs.Counter
	Resyncs     *obs.Counter
	// AppliedSeq and StalenessNs mirror the follower's replication position:
	// the last WAL seq applied and the time since the follower last proved
	// itself caught up or advancing.
	AppliedSeq  *obs.Gauge
	StalenessNs *obs.Gauge
	// ApplyNs is the latency of applying one replayed batch to the MVCC
	// store (publish included).
	ApplyNs *obs.Histogram
}

// NewMetrics registers the follower metric family on reg (nil reg returns
// nil: instrumentation off).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Bootstraps:      reg.Counter("fdrms_replica_bootstraps_total", "checkpoint loads: initial bootstrap plus gap-driven resyncs"),
		ReplayedBatches: reg.Counter("fdrms_replica_replayed_batches_total", "WAL records replayed into the follower store"),
		ReplayedOps:     reg.Counter("fdrms_replica_replayed_ops_total", "decoded operations replayed into the follower store"),
		TailPolls:       reg.Counter("fdrms_replica_tail_polls_total", "polls of the primary's WAL directory"),
		TailRetries:     reg.Counter("fdrms_replica_tail_retries_total", "polls answered with a pending condition (torn tail, delayed visibility)"),
		Quarantines:     reg.Counter("fdrms_replica_quarantines_total", "transitions into sealed-segment corruption quarantine"),
		Resyncs:         reg.Counter("fdrms_replica_resyncs_total", "gap-driven re-bootstraps from a newer checkpoint"),
		AppliedSeq:      reg.Gauge("fdrms_replica_applied_seq", "last WAL seq applied to the follower store"),
		StalenessNs:     reg.Gauge("fdrms_replica_staleness_ns", "time since the follower last advanced or proved itself caught up"),
		ApplyNs:         reg.Histogram("fdrms_replica_apply_ns", "latency of applying one replayed batch, nanoseconds"),
	}
}
