package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// snapshotTestInstance builds a structure over a random initial database and
// churns it with a mixed stream, so the captured state carries nontrivial
// path-dependence (takeovers, evictions, runner-up buffer wear).
func snapshotTestInstance(t *testing.T, seed int64, shards int) (*FDRMS, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := 4
	pts := make([]geom.Point, 150)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	cfg := Config{K: 2, R: 6, Eps: 0.1, M: 64, Seed: 7, Shards: shards}
	f, err := New(d, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range randomCoreOps(rng, pts, 300, d, 1000) {
		f.ApplyBatch([]topk.Op{op})
	}
	return f, rng
}

// restoreRoundTrip pushes a structure through Snapshot → Encode → Decode →
// Restore and fails on any loss.
func restoreRoundTrip(t *testing.T, f *FDRMS, shards int) *FDRMS {
	t.Helper()
	snap := f.Snapshot()
	payload := EncodeSnapshot(nil, snap)
	decoded, err := DecodeSnapshot(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(decoded, snap) {
		t.Fatal("snapshot does not survive the binary round trip")
	}
	g, err := Restore(decoded, shards)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	return g
}

// The restored structure must be bit-identical in every observable: result
// ids, stats counters, the cover assignment, and the full re-captured
// snapshot (which covers Φ, scores, and runner-up buffers byte for byte).
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	f, _ := snapshotTestInstance(t, 11, 2)
	g := restoreRoundTrip(t, f, 2)

	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	if !reflect.DeepEqual(g.ResultIDs(), f.ResultIDs()) {
		t.Fatalf("result ids: %v != %v", g.ResultIDs(), f.ResultIDs())
	}
	if g.Stats() != f.Stats() {
		t.Fatalf("stats: %+v != %+v", g.Stats(), f.Stats())
	}
	if !reflect.DeepEqual(g.Snapshot(), f.Snapshot()) {
		t.Fatal("re-captured snapshot differs from the original capture")
	}
	eng, orig := g.Engine(), f.Engine()
	if eng.InsertOps != orig.InsertOps || eng.DeleteOps != orig.DeleteOps ||
		eng.AffectedTotal != orig.AffectedTotal || eng.Requeries != orig.Requeries {
		t.Fatal("engine counters not restored")
	}
}

// A restored structure must CONTINUE identically: the same update stream
// applied to the original and the restored instance yields the same emitted
// state at every step — including the engine's requery/affected counters,
// which are sensitive to the runner-up buffer lengths the snapshot carries.
// This is the property crash recovery leans on when it replays the WAL tail
// on top of a checkpoint: checkpoint + replay ≡ uninterrupted run.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	for _, restoreShards := range []int{1, 3} {
		f, rng := snapshotTestInstance(t, 23, 2)
		g := restoreRoundTrip(t, f, restoreShards)

		ops := randomCoreOps(rng, nil, 400, 4, 5000)
		for i := 0; i < len(ops); {
			n := 1 + rng.Intn(5)
			if i+n > len(ops) {
				n = len(ops) - i
			}
			batch := ops[i : i+n]
			f.ApplyBatch(batch)
			g.ApplyBatch(batch)
			i += n
			if !reflect.DeepEqual(g.ResultIDs(), f.ResultIDs()) {
				t.Fatalf("shards=%d: results diverged after %d ops: %v != %v",
					restoreShards, i, g.ResultIDs(), f.ResultIDs())
			}
			if g.Stats() != f.Stats() {
				t.Fatalf("shards=%d: stats diverged after %d ops: %+v != %+v",
					restoreShards, i, g.Stats(), f.Stats())
			}
		}
		if !reflect.DeepEqual(g.Snapshot(), f.Snapshot()) {
			t.Fatalf("shards=%d: final snapshots diverged", restoreShards)
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("shards=%d: final invariants: %v", restoreShards, err)
		}
	}
}

// Decoding must reject damaged payloads rather than panic, and Restore must
// reject semantically broken snapshots.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	f, _ := snapshotTestInstance(t, 31, 1)
	payload := EncodeSnapshot(nil, f.Snapshot())
	for _, cut := range []int{0, 1, 3, 16, len(payload) / 2, len(payload) - 1} {
		if _, err := DecodeSnapshot(payload[:cut]); err == nil {
			t.Errorf("decode accepted payload truncated to %d bytes", cut)
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte{}, payload...), 0)); err == nil {
		t.Error("decode accepted trailing garbage")
	}

	// A buffered tuple outside Φ breaks the buffer-⊆-Φ invariant.
	snap := f.Snapshot()
	snap.Engine.Utilities[0].TopK = append(snap.Engine.Utilities[0].TopK, 1<<40)
	if _, err := Restore(snap, 1); err == nil {
		t.Error("restore accepted a buffered tuple outside Φ")
	}

	// An assignment to a set that does not contain the element is unstable.
	snap = f.Snapshot()
	if len(snap.Assign) > 0 {
		snap.Assign[0].Set = 1 << 40
		if _, err := Restore(snap, 1); err == nil {
			t.Error("restore accepted an assignment to a non-containing set")
		}
	}
}

// BenchmarkRestore measures checkpoint load (decode + rebuild) — the fixed
// cost of crash recovery that the WAL tail replay sits on top of.
func BenchmarkRestore(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 6
	n := 20000
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	cfg := Config{K: 1, R: 50, Eps: 0.01, M: 512, Seed: 1}
	f, err := New(d, pts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	payload := EncodeSnapshot(nil, f.Snapshot())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Restore(snap, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Replacing a live tuple emits the implicit deletion's and the insertion's
// changes as ONE group; the merge must cancel opposite-sign entries for the
// same (utility, point) pair or the additions-first replay strips
// memberships the engine still has (regression: a full-database replace
// drove the cover to empty). The invariant check cross-checks the solver's
// set sizes against the engine's Φ transpose, so drift fails loudly here.
func TestReplaceKeepsSetSystemConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d := 3
	pts := make([]geom.Point, 120)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	cfg := Config{K: 1, R: 5, Eps: 0.1, M: 48, Seed: 9, Shards: 2}
	f, err := New(d, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replace EVERY live tuple (same ids, shifted coordinates), one by one.
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		f.Insert(geom.Point{ID: i, Coords: v})
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after replacing tuple %d: %v", i, err)
		}
	}
	if got := f.ResultIDs(); len(got) == 0 {
		t.Fatal("cover emptied by a full-database replace")
	}
	// Identical replaces as one big batch must land on the identical state.
	g, err := New(d, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(71))
	for range pts {
		for j := 0; j < d; j++ {
			rng2.Float64() // consume the initial-points draws
		}
	}
	ops := make([]topk.Op, len(pts))
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng2.Float64()
		}
		ops[i] = topk.InsertOp(geom.Point{ID: i, Coords: v})
	}
	g.ApplyBatch(ops)
	if !reflect.DeepEqual(g.ResultIDs(), f.ResultIDs()) || g.Stats() != f.Stats() {
		t.Fatalf("batched replace diverged: %v/%+v vs %v/%+v", g.ResultIDs(), g.Stats(), f.ResultIDs(), f.Stats())
	}
	if !reflect.DeepEqual(g.Snapshot(), f.Snapshot()) {
		t.Fatal("batched replace snapshot diverged from sequential")
	}
}
