package core

import (
	"bytes"
	"testing"

	"fdrms/internal/topk"
)

// The streaming session's whole reason to exist: armed at some point and
// stepped in small chunks while ApplyBatch keeps landing between steps, it
// must produce the SAME BYTES EncodeSnapshot yields for a stop-the-world
// Snapshot() at the arm point — and the batches that ran through the armed
// structure must leave it byte-identical to a twin that was never armed.
func TestSnapshotSessionMatchesStopTheWorld(t *testing.T) {
	f, rng := snapshotTestInstance(t, 47, 2)
	twin, _ := snapshotTestInstance(t, 47, 2)

	want := EncodeSnapshot(nil, twin.Snapshot())

	sess := f.StartSnapshot()
	ops := randomCoreOps(rng, nil, 250, 4, 9000)
	var batches [][]topk.Op
	for i := 0; i < len(ops); {
		n := 1 + rng.Intn(6)
		if i+n > len(ops) {
			n = len(ops) - i
		}
		batches = append(batches, ops[i:i+n])
		i += n
	}
	done := false
	for _, batch := range batches {
		if !done {
			done = sess.Step(5)
		}
		f.ApplyBatch(batch)
	}
	for !done {
		done = sess.Step(5)
	}
	got := EncodeSnapshot(nil, sess.Finish())
	if !bytes.Equal(got, want) {
		t.Fatal("streamed capture is not byte-identical to the stop-the-world capture at the arm point")
	}

	// The batches interleaved with Step ran through the copy-on-first-write
	// overlay; replaying them on the never-armed twin must converge exactly.
	for _, batch := range batches {
		twin.ApplyBatch(batch)
	}
	if !bytes.Equal(EncodeSnapshot(nil, f.Snapshot()), EncodeSnapshot(nil, twin.Snapshot())) {
		t.Fatal("batches applied during the armed capture perturbed the structure")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants after streamed capture: %v", err)
	}
}

// Abort after a partial drain (with writes applied while armed) must leave
// no residue: the structure continues byte-identically to a never-armed
// twin, and a later full session still works.
func TestSnapshotSessionAbort(t *testing.T) {
	f, rng := snapshotTestInstance(t, 53, 2)
	twin, _ := snapshotTestInstance(t, 53, 2)

	sess := f.StartSnapshot()
	sess.Step(3)
	ops := randomCoreOps(rng, nil, 80, 4, 9000)
	f.ApplyBatch(ops)
	sess.Abort()
	twin.ApplyBatch(ops)

	if !bytes.Equal(EncodeSnapshot(nil, f.Snapshot()), EncodeSnapshot(nil, twin.Snapshot())) {
		t.Fatal("aborted session left residue in the structure")
	}

	sess = f.StartSnapshot()
	for !sess.Step(7) {
	}
	if !bytes.Equal(EncodeSnapshot(nil, sess.Finish()), EncodeSnapshot(nil, f.Snapshot())) {
		t.Fatal("session re-armed after abort differs from Snapshot()")
	}
}
