package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/regret"
)

// paperPoints is the 8-tuple database of Fig. 1 / Fig. 3.
func paperPoints() []geom.Point {
	return []geom.Point{
		geom.NewPoint(1, 0.2, 1.0),
		geom.NewPoint(2, 0.6, 0.8),
		geom.NewPoint(3, 0.7, 0.5),
		geom.NewPoint(4, 1.0, 0.1),
		geom.NewPoint(5, 0.4, 0.3),
		geom.NewPoint(6, 0.2, 0.7),
		geom.NewPoint(7, 0.3, 0.9),
		geom.NewPoint(8, 0.6, 0.6),
	}
}

func mustNew(t *testing.T, dim int, pts []geom.Point, cfg Config) *FDRMS {
	t.Helper()
	f, err := New(dim, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	pts := paperPoints()
	bad := []Config{
		{K: 0, R: 3, Eps: 0.01, M: 9},
		{K: 1, R: 0, Eps: 0.01, M: 9},
		{K: 1, R: 3, Eps: 0, M: 9},
		{K: 1, R: 3, Eps: 1, M: 9},
		{K: 1, R: 3, Eps: 0.01, M: 3},
		{K: 1, R: 1, Eps: 0.01, M: 1}, // M below dimension too
	}
	for i, cfg := range bad {
		if _, err := New(2, pts, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

// Example 3 scenario of the paper: k=1, r=3, ε=0.002, M=9 on the Fig. 1
// database, then insert p9 = (0.9, 0.6) and delete p1. The exact sampled
// utility vectors differ from the paper's, so the specific result tuples
// can differ; the structural behaviour must match.
func TestPaperExample3Scenario(t *testing.T) {
	cfg := Config{K: 1, R: 3, Eps: 0.002, M: 9, Seed: 7}
	f := mustNew(t, 2, paperPoints(), cfg)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Result()); got > 3 {
		t.Fatalf("|Q0| = %d, want <= 3", got)
	}

	// Q0 must be a high-quality 1-RMS result.
	ev := regret.NewEvaluator(f.Points(), 2, 1, 5000, 1)
	if mrr := ev.MRR(f.Result()); mrr > 0.12 {
		t.Fatalf("mrr_1(Q0) = %v, expected a small regret on the toy data", mrr)
	}

	// Insert p9 (0.9, 0.6): it dominates p3 and p8 and should quickly enter
	// most top-1 sets.
	f.Insert(geom.NewPoint(9, 0.9, 0.6))
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Result()); got > 3 {
		t.Fatalf("|Q1| = %d, want <= 3", got)
	}

	// Delete p1 (0.2, 1.0), a skyline tuple in every variant.
	f.Delete(1)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Result() {
		if p.ID == 1 {
			t.Fatal("deleted tuple p1 still in the result")
		}
	}
	ev2 := regret.NewEvaluator(f.Points(), 2, 1, 5000, 2)
	if mrr := ev2.MRR(f.Result()); mrr > 0.15 {
		t.Fatalf("mrr_1(Q2) = %v after updates, too large", mrr)
	}
}

func TestResultSizeAlwaysWithinR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := dataset.Indep(300, 4, 11)
	cfg := Config{K: 1, R: 10, Eps: 0.01, M: 256, Seed: 3}
	f := mustNew(t, 4, ds.Points[:150], cfg)
	next := 1000
	for op := 0; op < 200; op++ {
		if rng.Intn(2) == 0 {
			v := make(geom.Vector, 4)
			for j := range v {
				v[j] = rng.Float64()
			}
			f.Insert(geom.Point{ID: next, Coords: v})
			next++
		} else {
			pts := f.Points()
			if len(pts) > 0 {
				f.Delete(pts[rng.Intn(len(pts))].ID)
			}
		}
		if got := len(f.Result()); got > cfg.R {
			t.Fatalf("op %d: |Q| = %d exceeds r = %d", op, got, cfg.R)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissingIsNoop(t *testing.T) {
	f := mustNew(t, 2, paperPoints(), Config{K: 1, R: 3, Eps: 0.01, M: 16, Seed: 1})
	before := f.Stats()
	f.Delete(12345)
	after := f.Stats()
	if before != after {
		t.Fatalf("stats changed on missing delete: %+v -> %+v", before, after)
	}
}

func TestInsertDimensionMismatchPanics(t *testing.T) {
	f := mustNew(t, 2, paperPoints(), Config{K: 1, R: 3, Eps: 0.01, M: 16, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dimension")
		}
	}()
	f.Insert(geom.NewPoint(99, 1, 2, 3))
}

// Deleting every tuple and re-inserting must stay consistent.
func TestDrainAndRefill(t *testing.T) {
	pts := paperPoints()
	f := mustNew(t, 2, pts, Config{K: 2, R: 3, Eps: 0.01, M: 32, Seed: 5})
	for _, p := range pts {
		f.Delete(p.ID)
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %d: %v", p.ID, err)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
	if got := len(f.Result()); got != 0 {
		t.Fatalf("result of empty database has %d tuples", got)
	}
	for _, p := range pts {
		f.Insert(p)
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after inserting %d: %v", p.ID, err)
		}
	}
	if f.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(pts))
	}
	ev := regret.NewEvaluator(f.Points(), 2, 2, 3000, 6)
	if mrr := ev.MRR(f.Result()); mrr > 0.15 {
		t.Fatalf("mrr after refill = %v", mrr)
	}
}

// The dynamic result must stay close in quality to a from-scratch rebuild.
func TestDynamicMatchesScratchQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := dataset.Indep(400, 3, 21)
	cfg := Config{K: 1, R: 8, Eps: 0.02, M: 512, Seed: 13}
	f := mustNew(t, 3, ds.Points[:200], cfg)
	next := 10000
	for op := 0; op < 300; op++ {
		if rng.Intn(2) == 0 {
			v := make(geom.Vector, 3)
			for j := range v {
				v[j] = rng.Float64()
			}
			f.Insert(geom.Point{ID: next, Coords: v})
			next++
		} else {
			pts := f.Points()
			f.Delete(pts[rng.Intn(len(pts))].ID)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scratch := mustNew(t, 3, f.Points(), cfg)
	ev := regret.NewEvaluator(f.Points(), 3, 1, 20000, 17)
	dynMRR := ev.MRR(f.Result())
	scrMRR := ev.MRR(scratch.Result())
	if dynMRR > scrMRR+0.05 {
		t.Fatalf("dynamic mrr %v much worse than scratch mrr %v", dynMRR, scrMRR)
	}
}

// m must adapt: a larger r forces a larger universe (quality knob of
// Theorem 2), and stats must reflect the configuration.
func TestStatsAndM(t *testing.T) {
	ds := dataset.Indep(500, 4, 31)
	small := mustNew(t, 4, ds.Points, Config{K: 1, R: 5, Eps: 0.02, M: 1024, Seed: 2})
	large := mustNew(t, 4, ds.Points, Config{K: 1, R: 20, Eps: 0.02, M: 1024, Seed: 2})
	ss, ls := small.Stats(), large.Stats()
	if ss.M >= ls.M {
		t.Fatalf("m should grow with r: m(r=5) = %d, m(r=20) = %d", ss.M, ls.M)
	}
	if ss.Utilities != 1024 || ls.Utilities != 1024 {
		t.Fatal("Utilities should report M")
	}
	if ss.CoverSize > 5 || ls.CoverSize > 20 {
		t.Fatalf("cover sizes %d/%d exceed their r", ss.CoverSize, ls.CoverSize)
	}
	if got := small.Config().R; got != 5 {
		t.Fatalf("Config().R = %d", got)
	}
}

// Larger r must not hurt quality (more representatives, less regret).
func TestQualityImprovesWithR(t *testing.T) {
	ds := dataset.AntiCor(600, 4, 41)
	ev := regret.NewEvaluator(ds.Points, 4, 1, 20000, 19)
	var prev float64 = 1.1
	for _, r := range []int{4, 10, 25} {
		f := mustNew(t, 4, ds.Points, Config{K: 1, R: r, Eps: 0.02, M: 2048, Seed: 3})
		mrr := ev.MRR(f.Result())
		if mrr > prev+0.05 {
			t.Fatalf("mrr at r=%d is %v, noticeably worse than smaller r (%v)", r, mrr, prev)
		}
		prev = mrr
	}
}

// Property: invariants hold under arbitrary operation sequences.
func TestInvariantsUnderChurnQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		ds := dataset.Indep(60, d, seed)
		cfg := Config{K: 1 + rng.Intn(2), R: 3 + rng.Intn(5), Eps: 0.01 + rng.Float64()*0.05, M: 64, Seed: seed}
		fd, err := New(d, ds.Points[:30], cfg)
		if err != nil {
			return false
		}
		next := 100
		for op := 0; op < 40; op++ {
			if rng.Intn(2) == 0 {
				v := make(geom.Vector, d)
				for j := range v {
					v[j] = rng.Float64()
				}
				fd.Insert(geom.Point{ID: next, Coords: v})
				next++
			} else {
				pts := fd.Points()
				if len(pts) > 0 {
					fd.Delete(pts[rng.Intn(len(pts))].ID)
				}
			}
			if fd.CheckInvariants() != nil {
				return false
			}
			if len(fd.Result()) > cfg.R {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFDRMSInsert(b *testing.B) {
	ds := dataset.Indep(20000+b.N, 6, 1)
	cfg := Config{K: 1, R: 50, Eps: 0.01, M: 2048, Seed: 1}
	f, err := New(6, ds.Points[:20000], cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(ds.Points[20000+i])
	}
}

func BenchmarkFDRMSDelete(b *testing.B) {
	ds := dataset.Indep(20000+b.N, 6, 2)
	cfg := Config{K: 1, R: 50, Eps: 0.01, M: 2048, Seed: 1}
	f, err := New(6, ds.Points, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Delete(ds.Points[i].ID)
	}
}
