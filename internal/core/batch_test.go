package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// randomCoreOps mirrors the update mix of the engine tests at the FD-RMS
// level: fresh inserts, deletes of live ids, replacing inserts, and
// deletes of missing ids.
func randomCoreOps(rng *rand.Rand, initial []geom.Point, n, d, idBase int) []topk.Op {
	live := make([]int, 0, len(initial)+n)
	for _, p := range initial {
		live = append(live, p.ID)
	}
	next := idBase
	randPoint := func(id int) geom.Point {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		return geom.Point{ID: id, Coords: v}
	}
	ops := make([]topk.Op, 0, n)
	for len(ops) < n {
		switch r := rng.Intn(10); {
		case r < 5:
			ops = append(ops, topk.InsertOp(randPoint(next)))
			live = append(live, next)
			next++
		case r < 7 && len(live) > 0:
			i := rng.Intn(len(live))
			ops = append(ops, topk.DeleteOp(live[i]))
			live = append(live[:i], live[i+1:]...)
		case r < 9 && len(live) > 0:
			ops = append(ops, topk.InsertOp(randPoint(live[rng.Intn(len(live))])))
		default:
			ops = append(ops, topk.DeleteOp(next+100000))
		}
	}
	return ops
}

// The batched pipeline must land on the same cover as the sequential one at
// every batch boundary — not just the same regret quality, the identical
// result ids and identical stabilization counters — with the shard-parallel
// engine path active. This is the end-to-end equivalence the rest of the
// system (and the bench comparisons) rely on.
func TestApplyBatchEquivalentToSequential(t *testing.T) {
	for _, batchSize := range []int{1, 7, 64, 256} {
		rng := rand.New(rand.NewSource(int64(29 + batchSize)))
		d := 4
		pts := make([]geom.Point, 120)
		for i := range pts {
			v := make(geom.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			pts[i] = geom.Point{ID: i, Coords: v}
		}
		cfg := Config{K: 2, R: 8, Eps: 0.02, M: 128, Seed: 5, Shards: 4}
		batched := mustNew(t, d, pts, cfg)
		sequential := mustNew(t, d, pts, cfg)
		if a, b := batched.ResultIDs(), sequential.ResultIDs(); !reflect.DeepEqual(a, b) {
			t.Fatalf("batch=%d: initial covers differ: %v vs %v", batchSize, a, b)
		}

		ops := randomCoreOps(rng, pts, 500, d, 1000)
		for i := 0; i < len(ops); i += batchSize {
			j := i + batchSize
			if j > len(ops) {
				j = len(ops)
			}
			batched.ApplyBatch(ops[i:j])
			for _, op := range ops[i:j] {
				if op.Delete {
					sequential.Delete(op.ID)
				} else {
					sequential.Insert(op.Point)
				}
			}
			if a, b := batched.ResultIDs(), sequential.ResultIDs(); !reflect.DeepEqual(a, b) {
				t.Fatalf("batch=%d after op %d: covers differ: %v vs %v", batchSize, j, a, b)
			}
			if err := batched.CheckInvariants(); err != nil {
				t.Fatalf("batch=%d after op %d: %v", batchSize, j, err)
			}
		}
		if err := sequential.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if a, b := batched.Stats(), sequential.Stats(); a != b {
			t.Fatalf("batch=%d: stats diverge: %+v vs %+v", batchSize, a, b)
		}
		if a, b := batched.Len(), sequential.Len(); a != b {
			t.Fatalf("batch=%d: sizes diverge: %d vs %d", batchSize, a, b)
		}
	}
}

// The delete-run path must keep the cover bit-identical too: alternating
// blocks of insertions and deletions (sliding-window style) so ApplyBatch
// segments long runs of each kind at every batch size.
func TestApplyBatchDeleteRunsEquivalent(t *testing.T) {
	for _, batchSize := range []int{1, 16, 128, 512} {
		rng := rand.New(rand.NewSource(int64(53 + batchSize)))
		d := 4
		pts := make([]geom.Point, 150)
		for i := range pts {
			v := make(geom.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			pts[i] = geom.Point{ID: i, Coords: v}
		}
		cfg := Config{K: 2, R: 8, Eps: 0.02, M: 128, Seed: 5, Shards: 4}
		batched := mustNew(t, d, pts, cfg)
		sequential := mustNew(t, d, pts, cfg)

		// Blocks of 30 inserts alternating with blocks of 30 deletes of the
		// oldest live ids.
		live := make([]int, len(pts))
		for i := range live {
			live[i] = i
		}
		next := 1000
		var ops []topk.Op
		for b := 0; b < 10; b++ {
			if b%2 == 0 {
				for i := 0; i < 30; i++ {
					v := make(geom.Vector, d)
					for j := range v {
						v[j] = rng.Float64()
					}
					ops = append(ops, topk.InsertOp(geom.Point{ID: next, Coords: v}))
					live = append(live, next)
					next++
				}
			} else {
				for i := 0; i < 30 && len(live) > 0; i++ {
					ops = append(ops, topk.DeleteOp(live[0]))
					live = live[1:]
				}
			}
		}

		for i := 0; i < len(ops); i += batchSize {
			j := i + batchSize
			if j > len(ops) {
				j = len(ops)
			}
			batched.ApplyBatch(ops[i:j])
			for _, op := range ops[i:j] {
				if op.Delete {
					sequential.Delete(op.ID)
				} else {
					sequential.Insert(op.Point)
				}
			}
			if a, b := batched.ResultIDs(), sequential.ResultIDs(); !reflect.DeepEqual(a, b) {
				t.Fatalf("batch=%d after op %d: covers differ: %v vs %v", batchSize, j, a, b)
			}
			if err := batched.CheckInvariants(); err != nil {
				t.Fatalf("batch=%d after op %d: %v", batchSize, j, err)
			}
		}
		if a, b := batched.Stats(), sequential.Stats(); a != b {
			t.Fatalf("batch=%d: stats diverge: %+v vs %+v", batchSize, a, b)
		}
	}
}

// Two identically-configured instances fed the same operations must agree
// exactly — the solver, the engine, and initialization are deterministic
// functions of the operation sequence.
func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := 3
	pts := make([]geom.Point, 90)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	ops := randomCoreOps(rng, pts, 300, d, 500)
	cfg := Config{K: 1, R: 6, Eps: 0.03, M: 96, Seed: 11}
	var prev []int
	for trial := 0; trial < 3; trial++ {
		f := mustNew(t, d, pts, cfg)
		f.ApplyBatch(ops)
		ids := f.ResultIDs()
		if trial > 0 && !reflect.DeepEqual(ids, prev) {
			t.Fatalf("trial %d result %v differs from previous %v", trial, ids, prev)
		}
		prev = ids
	}
}
