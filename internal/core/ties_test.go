package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

// pickLive selects a deterministic random victim from the live set: keys are
// sorted first so a failing quick.Check seed replays the same schedule.
func pickLive(rng *rand.Rand, live map[int]bool) int {
	ids := make([]int, 0, len(live))
	//fdrms:orderinvariant ids are sorted before use
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

// gridPoint draws coordinates from a coarse grid so exact score ties and
// duplicate tuples stress the whole maintenance stack end to end.
func gridPoint(rng *rand.Rand, id, d int) geom.Point {
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = float64(rng.Intn(4)) / 3
	}
	return geom.Point{ID: id, Coords: v}
}

func TestInvariantsUnderTieChurnQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		var pts []geom.Point
		for i := 0; i < 30; i++ {
			pts = append(pts, gridPoint(rng, i, d))
		}
		cfg := Config{K: 1 + rng.Intn(2), R: 4, Eps: 0.05, M: 64, Seed: seed}
		f0, err := New(d, pts, cfg)
		if err != nil {
			return false
		}
		live := make(map[int]bool)
		for _, p := range pts {
			live[p.ID] = true
		}
		next := 100
		for op := 0; op < 50; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				f0.Insert(gridPoint(rng, next, d))
				live[next] = true
				next++
			} else {
				id := pickLive(rng, live)
				f0.Delete(id)
				delete(live, id)
			}
			if f0.CheckInvariants() != nil || len(f0.Result()) > cfg.R {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A database of identical tuples: any single one is a perfect answer, and
// churn among twins must never break the structure.
func TestAllIdenticalTuples(t *testing.T) {
	d := 3
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{ID: i, Coords: geom.Vector{0.5, 0.5, 0.5}})
	}
	f, err := New(d, pts, Config{K: 1, R: 3, Eps: 0.01, M: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Result()); got == 0 || got > 3 {
		t.Fatalf("|Q| = %d", got)
	}
	for i := 0; i < 15; i++ {
		f.Delete(i)
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("after deleting twin %d: %v", i, err)
		}
		if len(f.Result()) == 0 {
			t.Fatalf("result emptied with %d twins left", f.Len())
		}
	}
}

// Re-inserting the same ID with new coordinates is the paper's "update"
// operation; it must behave as delete + insert.
func TestUpdateSemantics(t *testing.T) {
	pts := []geom.Point{
		geom.NewPoint(0, 1.0, 0.0),
		geom.NewPoint(1, 0.0, 1.0),
		geom.NewPoint(2, 0.4, 0.4),
	}
	f, err := New(2, pts, Config{K: 1, R: 2, Eps: 0.01, M: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Upgrade tuple 2 to dominate everything; it must take over the result.
	f.Insert(geom.NewPoint(2, 1.0, 1.0))
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range f.Result() {
		if p.ID == 2 {
			found = true
			if p.Coords[0] != 1.0 {
				t.Fatal("stale coordinates in the result")
			}
		}
	}
	if !found {
		t.Fatalf("dominant updated tuple missing from result %v", f.ResultIDs())
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d after in-place update", f.Len())
	}
}
