package core

import (
	"math/rand"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/setcover"
)

// checkUpdateMFixpoint asserts Algorithm 4's post-condition: after settle,
// either |C| == r, or the walk is pinned at a bound (m == M with a cover
// that is still too small, m == r with one that is still too large). A
// state with |C| < r and m < M means updateM stopped with room to grow —
// the one-directional walk bug, hit when a RemoveElement collapses several
// sets via a takeover cascade and |C| drops from r+1 past r.
func checkUpdateMFixpoint(t *testing.T, f *FDRMS, when string) {
	t.Helper()
	st := f.Stats()
	r, M := f.cfg.R, f.cfg.M
	if st.CoverSize < r && st.M < M {
		t.Fatalf("%s: |C| = %d < r = %d with m = %d < M = %d (room to grow)", when, st.CoverSize, r, st.M, M)
	}
	if st.CoverSize > r && st.M > r {
		t.Fatalf("%s: |C| = %d > r = %d with m = %d > r (room to shrink)", when, st.CoverSize, r, st.M)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", when, err)
	}
}

// gridCorePoints lie on a coarse grid, so many tuples tie exactly and the
// member sets S(p) overlap heavily — the regime where STABILIZE takeovers
// cascade and one deletion can collapse several chosen sets at once.
func gridCorePoints(rng *rand.Rand, n, d, idBase, levels int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = float64(rng.Intn(levels)) / float64(levels-1)
		}
		pts[i] = geom.Point{ID: idBase + i, Coords: v}
	}
	return pts
}

// Delete-heavy churn on tie-heavy data must keep updateM at its fixpoint
// after every operation.
func TestUpdateMFixpointUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(2)
		pts := gridCorePoints(rng, 80, d, 0, 3)
		cfg := Config{K: 1, R: 3 + rng.Intn(3), Eps: 0.05, M: 48, Seed: seed}
		f := mustNew(t, d, pts, cfg)
		checkUpdateMFixpoint(t, f, "init")

		live := make([]int, 0, len(pts))
		for _, p := range pts {
			live = append(live, p.ID)
		}
		next := 1000
		for op := 0; op < 120; op++ {
			// 60% deletes: shrink pressure is what exposes the collapse.
			if rng.Intn(10) < 6 && len(live) > 2*cfg.R {
				i := rng.Intn(len(live))
				f.Delete(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				p := gridCorePoints(rng, 1, d, next, 3)[0]
				next++
				f.Insert(p)
				live = append(live, p.ID)
			}
			checkUpdateMFixpoint(t, f, "churn")
		}
	}
}

// collapseCover rebuilds the solver state of the setcover package's
// TestRemoveElementCanCollapseSeveralSets (same seeded recipe): a stable
// cover of 4 sets over universe {0..11} whose next RemoveElement(11)
// collapses |C| to 2 through a takeover cascade. Memberships span elements
// 0..31, so re-growing the universe is possible.
func collapseCover(t *testing.T) *setcover.Solver {
	t.Helper()
	rng := rand.New(rand.NewSource(79))
	nSets := 4 + rng.Intn(12) // = 15
	M := 10 + rng.Intn(30)    // = 32
	sv := setcover.NewSolver()
	for s := 0; s < nSets; s++ {
		sv.RegisterSet(100 + s)
		for e := 0; e < M; e++ {
			if rng.Intn(3) == 0 {
				sv.AddSetMember(100+s, e)
			}
		}
	}
	m := M/2 + rng.Intn(M/2) // = 30
	sv.ResetUniverse(rangeInts(m))
	for i := 0; i < 60; i++ {
		s := 100 + rng.Intn(nSets)
		e := rng.Intn(M)
		if rng.Intn(2) == 0 {
			sv.AddSetMember(s, e)
		} else {
			sv.RemoveSetMember(s, e)
		}
	}
	for m > 12 {
		m--
		sv.RemoveElement(m)
	}
	if got := sv.Size(); got != 4 {
		t.Fatalf("recipe drifted: |C| = %d, want 4 (keep in sync with setcover's collapseScenario)", got)
	}
	return sv
}

// updateM must reach its fixpoint even when the shrink step collapses |C|
// from r+1 past r: the walk has to turn around and grow again. The old
// one-directional walk returned with |C| = 2 < r = 3 and m = 11 far below
// M. (The FDRMS value is assembled directly — updateM reads only cfg,
// cover, and m, and no geometric database is needed to pin the set-cover
// mechanics.)
func TestUpdateMRegrowsAfterCollapse(t *testing.T) {
	sv := collapseCover(t)
	f := &FDRMS{cfg: Config{K: 1, R: 3, Eps: 0.01, M: 32, Seed: 1}, cover: sv, m: 12}
	// |C| = 4 = r+1: exactly the state settle hands to updateM.
	f.updateM()
	if err := sv.CheckStable(); err != nil {
		t.Fatal(err)
	}
	st := Stats{M: f.m, CoverSize: sv.Size()}
	if st.CoverSize < f.cfg.R && st.M < f.cfg.M {
		t.Fatalf("|C| = %d < r = %d with m = %d < M = %d: updateM stopped with room to grow", st.CoverSize, f.cfg.R, st.M, f.cfg.M)
	}
	if st.CoverSize > f.cfg.R && st.M > f.cfg.R {
		t.Fatalf("|C| = %d > r = %d with m = %d: updateM stopped with room to shrink", st.CoverSize, f.cfg.R, st.M)
	}
	if got := sv.UniverseSize(); got != f.m {
		t.Fatalf("universe size %d != m %d", got, f.m)
	}
}

// Draining the database to fewer points than r and refilling crosses every
// boundary case of the grow/shrink walk.
func TestUpdateMFixpointDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 3
	pts := gridCorePoints(rng, 60, d, 0, 2) // levels=2: extreme overlap
	cfg := Config{K: 1, R: 4, Eps: 0.05, M: 32, Seed: 3}
	f := mustNew(t, d, pts, cfg)
	for _, p := range pts {
		f.Delete(p.ID)
		checkUpdateMFixpoint(t, f, "drain")
	}
	for _, p := range gridCorePoints(rng, 60, d, 2000, 2) {
		f.Insert(p)
		checkUpdateMFixpoint(t, f, "refill")
	}
}
