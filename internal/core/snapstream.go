// Streaming snapshot capture: the non-blocking counterpart of Snapshot().
//
// A SnapshotSession splits the O(state) capture into an O(m + utilities)
// arm step plus caller-bounded chunks, so a durable store can keep applying
// write batches between chunks and still obtain a snapshot BIT-IDENTICAL to
// what Snapshot() would have returned at the arm point — same bytes from
// EncodeSnapshot, enforced by TestSnapshotSessionMatchesStopTheWorld. The
// cover side (φ, m, the solver counters) is tiny — O(m) ints — and captured
// eagerly at arm; the engine side streams through the overlay machinery of
// package topk (see topk/snapstream.go for the correctness argument).
package core

import "sort"

// SnapshotSession is an in-flight streaming capture of one FDRMS structure.
// StartSnapshot and every Step call must be serialized with the structure's
// writer (they run "between batches"); Finish and Abort need no writer
// synchronization once Step has reported completion.
type SnapshotSession struct {
	f    *FDRMS
	snap *Snapshot
	done bool
}

// StartSnapshot arms a streaming capture of the current state and returns
// the session. The call itself is cheap — the cover assignment copy plus
// the engine's arm step (an epoch-pinned view clone and a utility-id
// sweep) — and is the only part of the capture whose cost the writer must
// absorb in full; everything afterwards is bounded by the caller's Step
// size. At most one session may be armed per structure; arming panics if
// one already is.
func (f *FDRMS) StartSnapshot() *SnapshotSession {
	s := &Snapshot{
		Cfg:           f.cfg,
		Dim:           f.dim,
		M:             f.m,
		Takeovers:     f.cover.Takeovers,
		Reassignments: f.cover.Reassignments,
	}
	assign := f.cover.Assignment()
	s.Assign = make([]AssignEntry, 0, len(assign))
	//fdrms:orderinvariant elem keys are unique and the entries are sorted by Elem in Finish before the snapshot is observable
	for e, set := range assign {
		s.Assign = append(s.Assign, AssignEntry{Elem: e, Set: set})
	}
	f.engine.StartSnapshot()
	return &SnapshotSession{f: f, snap: s}
}

// Step captures up to n more utilities and reports whether the capture is
// complete. Must be serialized with the structure's writer; n bounds the
// pause each call imposes on it.
func (ss *SnapshotSession) Step(n int) bool {
	if ss.done {
		return true
	}
	ss.done = ss.f.engine.SnapshotChunk(n)
	return ss.done
}

// Finish assembles and returns the snapshot. Safe to call off the writer
// lock once Step has returned true (it panics otherwise): every input is
// immutable by then, so the sorting and assembly — the bulk of the old
// stop-the-world cost — happen without blocking anyone.
func (ss *SnapshotSession) Finish() *Snapshot {
	if !ss.done {
		panic("core: SnapshotSession.Finish before Step completed the capture")
	}
	ss.snap.Engine = ss.f.engine.FinishSnapshot()
	sort.Slice(ss.snap.Assign, func(i, j int) bool { return ss.snap.Assign[i].Elem < ss.snap.Assign[j].Elem })
	return ss.snap
}

// Abort discards the session. Must be serialized with the writer (it tears
// down the engine's armed state). Safe after any prefix of Steps.
func (ss *SnapshotSession) Abort() {
	ss.f.engine.AbortSnapshot()
	ss.snap = nil
	ss.done = false
}
