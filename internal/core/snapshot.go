// Checkpoint snapshot of the full FD-RMS maintenance state.
//
// FD-RMS state is path-dependent at two layers — the ε-approximate Φ sets
// and the stable set cover both depend on the exact operation history — so a
// restartable store cannot rebuild "equivalent" state from the live tuples:
// it must capture the state that exists. A Snapshot holds exactly the
// path-dependent parts (Φ with scores, the runner-up buffers, the cover
// assignment φ, m, and every counter) and re-derives the rest (tuple index,
// cone tree, inverted index, covers/levels/buckets, and the utility vectors,
// which come from the configured seed). Restore therefore yields a structure
// that is bit-identical to the captured one: same Result, same Stats, same
// covers — and, because every derived structure is answer-neutral, the same
// behaviour on every subsequent update.
//
// EncodeSnapshot/DecodeSnapshot give the snapshot a fixed little-endian
// binary form (framing and CRC live in package wal's checkpoint files).
package core

import (
	"fmt"
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/setcover"
	"fdrms/internal/topk"
	"fdrms/internal/wal"
)

// AssignEntry is one element of the persisted cover assignment φ: universe
// element (utility id) Elem is covered by the set of tuple Set.
type AssignEntry struct {
	Elem int
	Set  int
}

// Snapshot is the complete persistent state of an FDRMS structure.
type Snapshot struct {
	Cfg Config
	Dim int
	M   int // current universe size m

	Engine *topk.EngineSnapshot

	Assign        []AssignEntry // φ, ascending Elem
	Takeovers     int
	Reassignments int
}

// Snapshot captures the current state. The capture is a pure in-memory copy
// (no queries, no I/O): O(n·d) for the points plus O(Σ|Φ|) for the
// utility states — cheap enough that a durable store can take it while
// holding its write lock and do the encoding and disk writes outside it.
func (f *FDRMS) Snapshot() *Snapshot {
	s := &Snapshot{
		Cfg:           f.cfg,
		Dim:           f.dim,
		M:             f.m,
		Engine:        f.engine.Snapshot(),
		Takeovers:     f.cover.Takeovers,
		Reassignments: f.cover.Reassignments,
	}
	assign := f.cover.Assignment()
	s.Assign = make([]AssignEntry, 0, len(assign))
	//fdrms:orderinvariant elem keys are unique and the entries are sorted by Elem on the line after the loop, before anything observes them
	for e, set := range assign {
		s.Assign = append(s.Assign, AssignEntry{Elem: e, Set: set})
	}
	sort.Slice(s.Assign, func(i, j int) bool { return s.Assign[i].Elem < s.Assign[j].Elem })
	return s
}

// Restore rebuilds an FDRMS structure from a snapshot. The utility vectors
// are re-derived from Cfg.Seed, the set system from the engine's Φ sets, and
// the solution installed verbatim — see the package comment for why the
// result is bit-identical to the captured structure. shards overrides the
// engine's shard count when > 0 (it never affects any answer); otherwise the
// snapshot's configured value (or the CPU count) applies.
func Restore(s *Snapshot, shards int) (*FDRMS, error) {
	if err := s.Cfg.validate(s.Dim); err != nil {
		return nil, fmt.Errorf("core: restoring snapshot: %w", err)
	}
	if s.Engine == nil {
		return nil, fmt.Errorf("core: snapshot has no engine state")
	}
	if s.M < 0 || s.M > s.Cfg.M {
		return nil, fmt.Errorf("core: snapshot m = %d outside [0, %d]", s.M, s.Cfg.M)
	}
	if s.Engine.Dim != s.Dim || s.Engine.K != s.Cfg.K || s.Engine.Eps != s.Cfg.Eps {
		return nil, fmt.Errorf("core: engine snapshot (dim %d, k %d, eps %v) disagrees with config (dim %d, k %d, eps %v)",
			s.Engine.Dim, s.Engine.K, s.Engine.Eps, s.Dim, s.Cfg.K, s.Cfg.Eps)
	}
	if shards <= 0 {
		shards = s.Cfg.Shards
	}
	// The utility sample is a pure function of the config (Algorithm 2,
	// Line 1), so vectors are re-derived rather than persisted.
	vecs := geom.BasisThenRandom(s.Dim, s.Cfg.M, s.Cfg.Seed)
	utilities := make([]topk.Utility, s.Cfg.M)
	for i, u := range vecs {
		utilities[i] = topk.Utility{ID: i, U: u}
	}
	engine, err := topk.RestoreEngine(s.Engine, utilities, shards)
	if err != nil {
		return nil, fmt.Errorf("core: restoring engine: %w", err)
	}

	f := &FDRMS{cfg: s.Cfg, dim: s.Dim, engine: engine, m: s.M}
	// Load the set system — one set per live tuple, memberships the
	// transpose of the snapshot's Φ lists — through the solver's bulk path
	// (the universe is still empty, so no covering state exists to update).
	// The transpose walks utilities in ascending id order, so each member
	// list comes out sorted without re-sorting, and one arena backs them all.
	f.cover = setcover.NewSolver()
	total := 0
	for i := range s.Engine.Utilities {
		total += len(s.Engine.Utilities[i].Phi)
	}
	degree := make(map[int]int, len(s.Engine.Points))
	for i := range s.Engine.Utilities {
		for _, pe := range s.Engine.Utilities[i].Phi {
			degree[pe.PointID]++
		}
	}
	arena := make([]int, 0, total)
	members := make(map[int][]int, len(degree))
	//fdrms:orderinvariant only the per-pid windows' OFFSETS within the shared backing array vary with this order; each window's contents are filled in ascending-utility order below and offsets are not observable
	for pid, n := range degree {
		members[pid] = arena[len(arena) : len(arena) : len(arena)+n]
		arena = arena[:len(arena)+n]
	}
	for i := range s.Engine.Utilities {
		us := &s.Engine.Utilities[i]
		for _, pe := range us.Phi {
			members[pe.PointID] = append(members[pe.PointID], us.ID)
		}
	}
	for _, p := range s.Engine.Points {
		f.cover.LoadSet(p.ID, members[p.ID])
	}
	assign := make(map[int]int, len(s.Assign))
	elems := make([]int, s.M)
	for i := range elems {
		elems[i] = i
	}
	for _, a := range s.Assign {
		if _, dup := assign[a.Elem]; dup {
			return nil, fmt.Errorf("core: duplicate assignment of element %d", a.Elem)
		}
		assign[a.Elem] = a.Set
	}
	if err := f.cover.RestoreSolution(elems, assign); err != nil {
		return nil, fmt.Errorf("core: restoring cover: %w", err)
	}
	f.cover.Takeovers = s.Takeovers
	f.cover.Reassignments = s.Reassignments
	return f, nil
}

const snapVersion = 1

// EncodeSnapshot appends the binary form of s to buf.
func EncodeSnapshot(buf []byte, s *Snapshot) []byte {
	buf = wal.AppendU32(buf, snapVersion)
	buf = wal.AppendI64(buf, int64(s.Cfg.K))
	buf = wal.AppendI64(buf, int64(s.Cfg.R))
	buf = wal.AppendF64(buf, s.Cfg.Eps)
	buf = wal.AppendI64(buf, int64(s.Cfg.M))
	buf = wal.AppendI64(buf, s.Cfg.Seed)
	buf = wal.AppendI64(buf, int64(s.Cfg.Shards))
	buf = wal.AppendI64(buf, int64(s.Dim))
	buf = wal.AppendI64(buf, int64(s.M))
	buf = wal.AppendI64(buf, int64(s.Takeovers))
	buf = wal.AppendI64(buf, int64(s.Reassignments))

	e := s.Engine
	buf = wal.AppendI64(buf, int64(e.InsertOps))
	buf = wal.AppendI64(buf, int64(e.DeleteOps))
	buf = wal.AppendI64(buf, int64(e.AffectedTotal))
	buf = wal.AppendI64(buf, int64(e.Requeries))
	buf = wal.AppendU32(buf, uint32(len(e.Points)))
	for _, p := range e.Points {
		buf = wal.AppendI64(buf, int64(p.ID))
		for _, c := range p.Coords {
			buf = wal.AppendF64(buf, c)
		}
	}
	buf = wal.AppendU32(buf, uint32(len(e.Utilities)))
	for _, us := range e.Utilities {
		buf = wal.AppendI64(buf, int64(us.ID))
		buf = wal.AppendU32(buf, uint32(len(us.Phi)))
		for _, pe := range us.Phi {
			buf = wal.AppendI64(buf, int64(pe.PointID))
			buf = wal.AppendF64(buf, pe.Score)
		}
		buf = wal.AppendU32(buf, uint32(len(us.TopK)))
		for _, pid := range us.TopK {
			buf = wal.AppendI64(buf, int64(pid))
		}
	}
	buf = wal.AppendU32(buf, uint32(len(s.Assign)))
	for _, a := range s.Assign {
		buf = wal.AppendI64(buf, int64(a.Elem))
		buf = wal.AppendI64(buf, int64(a.Set))
	}
	return buf
}

// DecodeSnapshot parses the binary form produced by EncodeSnapshot. It
// validates structure (counts against the byte budget) but not semantics;
// Restore performs the semantic checks.
func DecodeSnapshot(payload []byte) (*Snapshot, error) {
	d := wal.NewDec(payload)
	if v := d.U32(); d.Err() == nil && v != snapVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	s := &Snapshot{Engine: &topk.EngineSnapshot{}}
	s.Cfg.K = int(d.I64())
	s.Cfg.R = int(d.I64())
	s.Cfg.Eps = d.F64()
	s.Cfg.M = int(d.I64())
	s.Cfg.Seed = d.I64()
	s.Cfg.Shards = int(d.I64())
	s.Dim = int(d.I64())
	s.M = int(d.I64())
	s.Takeovers = int(d.I64())
	s.Reassignments = int(d.I64())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if s.Dim < 1 || s.Dim > 1<<16 {
		return nil, fmt.Errorf("core: snapshot dimension %d out of range", s.Dim)
	}

	e := s.Engine
	e.Dim, e.K, e.Eps = s.Dim, s.Cfg.K, s.Cfg.Eps
	e.InsertOps = int(d.I64())
	e.DeleteOps = int(d.I64())
	e.AffectedTotal = int(d.I64())
	e.Requeries = int(d.I64())
	np := d.Count(8 + 8*s.Dim)
	if d.Err() != nil {
		return nil, d.Err()
	}
	e.Points = make([]geom.Point, np)
	// One flat backing array for every coordinate vector: recovery decodes
	// the whole database, so per-point slice allocations are a measurable
	// slice of time-to-recover.
	flat := make([]float64, np*s.Dim)
	for i := range e.Points {
		e.Points[i].ID = int(d.I64())
		coords := flat[i*s.Dim : (i+1)*s.Dim : (i+1)*s.Dim]
		for j := range coords {
			coords[j] = d.F64()
		}
		e.Points[i].Coords = coords
	}
	nu := d.Count(8 + 4 + 4)
	if d.Err() != nil {
		return nil, d.Err()
	}
	e.Utilities = make([]topk.UtilityState, nu)
	for i := range e.Utilities {
		us := &e.Utilities[i]
		us.ID = int(d.I64())
		nphi := d.Count(16)
		if d.Err() != nil {
			return nil, d.Err()
		}
		us.Phi = make([]topk.PhiEntry, nphi)
		for j := range us.Phi {
			us.Phi[j].PointID = int(d.I64())
			us.Phi[j].Score = d.F64()
		}
		ntop := d.Count(8)
		if d.Err() != nil {
			return nil, d.Err()
		}
		us.TopK = make([]int, ntop)
		for j := range us.TopK {
			us.TopK[j] = int(d.I64())
		}
	}
	na := d.Count(16)
	if d.Err() != nil {
		return nil, d.Err()
	}
	s.Assign = make([]AssignEntry, na)
	for i := range s.Assign {
		s.Assign[i].Elem = int(d.I64())
		s.Assign[i].Set = int(d.I64())
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("core: snapshot has %d trailing bytes", d.Remaining())
	}
	return s, nil
}
