package core

import (
	"math/rand"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// End-to-end steady-state allocation budget: a warmed FD-RMS instance
// cycling a delete+reinsert through BOTH layers — the top-k engine and the
// slab-backed set-cover solver. The engine's own budget lives in
// internal/topk; this pins the whole pipeline, which used to pay the
// set-cover map churn on top (~25 allocs/op end to end before the slab
// layout; the remainder now is the caller-owned change groups plus genuine
// Φ/S(p) fragment churn).
const maxEndToEndAllocsPerOp = 2.0

func TestFDRMSSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := 4
	pts := make([]geom.Point, 400)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	f, err := New(d, pts, Config{K: 2, R: 8, Eps: 0.1, M: 64, Seed: 3, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	churn := pts[:40]
	delOps := make([]topk.Op, len(churn))
	insOps := make([]topk.Op, len(churn))
	for i, p := range churn {
		delOps[i] = topk.DeleteOp(p.ID)
		insOps[i] = topk.InsertOp(p)
	}
	cycle := func() {
		f.ApplyBatch(delOps)
		f.ApplyBatch(insOps)
	}
	for i := 0; i < 4; i++ {
		cycle() // warm every scratch, slab class, and buffer
	}
	allocs := testing.AllocsPerRun(10, cycle)
	perOp := allocs / float64(len(delOps)+len(insOps))
	t.Logf("steady-state end-to-end ApplyBatch: %.1f allocs per cycle, %.2f per op", allocs, perOp)
	if perOp > maxEndToEndAllocsPerOp {
		t.Fatalf("steady-state end-to-end ApplyBatch allocates %.2f per op, budget %.1f", perOp, maxEndToEndAllocsPerOp)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
