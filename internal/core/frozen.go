package core

import (
	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Frozen is an immutable capture of FD-RMS's queryable state at one commit
// point: the answer Q_t, its ids, the maintenance stats, and an epoch-pinned
// view of the tuple index. A Frozen shares no mutable state with the live
// structure — once captured it is safe for unsynchronized concurrent reads
// while the writer keeps applying batches — which makes it the payload of
// the serving layer's generation handles (see rms.Store).
//
// The result points share their coordinate slices with the engine (which
// never mutates point coordinates in place); callers must treat them as
// read-only.
type Frozen struct {
	Epoch     uint64       // tuple-index epoch of the capture
	Result    []geom.Point // Q_t, ascending id
	ResultIDs []int        // ids of Q_t, ascending
	Stats     Stats        // maintenance counters at the capture
	K         int          // rank depth, for regret evaluation against Index
	Index     *kdtree.View // the database as of Epoch
}

// Freeze captures the current queryable state. Like every other method it
// must be called by the structure's single writer (or synchronized with it);
// the returned capture is then immutable. Cost: O(r) for the answer plus
// O(arena) for the index view's cloned node metadata (see kdtree.Tree.View).
func (f *FDRMS) Freeze() *Frozen {
	return &Frozen{
		Epoch:     f.engine.TreeEpoch(),
		Result:    f.Result(),
		ResultIDs: f.cover.Solution(),
		Stats:     f.Stats(),
		K:         f.cfg.K,
		Index:     f.engine.TreeView(),
	}
}
