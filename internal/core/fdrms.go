// Package core implements FD-RMS, the fully-dynamic k-regret minimizing set
// algorithm of Wang et al. (ICDE 2021) — the primary contribution of the
// paper this repository reproduces.
//
// FD-RMS transforms dynamic k-RMS into dynamic set cover. It samples M
// utility vectors (the d standard basis vectors first, then uniform draws
// from the nonnegative unit sphere), maintains the ε-approximate top-k
// result Φ_{k,ε}(u_i, P_t) of every vector under tuple insertions and
// deletions (package topk), and keeps a stable set-cover solution (package
// setcover) over the set system
//
//	Σ = (U, S),  U = {u_1..u_m},  S(p) = {u ∈ U : p ∈ Φ_{k,ε}(u, P_t)},
//
// where m ∈ [r, M] is tuned so that the cover uses exactly r sets. The
// tuples whose sets form the cover are the k-RMS answer Q_t. Theorem 2
// shows Q_t is a (k, O(ε*_{k,r'} + δ))-regret set with r' = O(r / log m)
// and δ = O(m^{-1/(d-1)}).
package core

import (
	"fmt"
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/setcover"
	"fdrms/internal/topk"
)

// Config carries the FD-RMS parameters of Algorithm 2.
type Config struct {
	K   int     // rank depth of the k-regret measure (k >= 1)
	R   int     // result size constraint r
	Eps float64 // approximation factor ε of the top-k results, in (0, 1)
	M   int     // upper bound on the number of sampled utility vectors (M > r)

	// Seed makes the utility sample reproducible.
	Seed int64

	// Shards is the number of utility-state shards of the top-k engine;
	// zero means one per available CPU. The answer does not depend on it.
	Shards int
}

func (c Config) validate(dim int) error {
	if c.K < 1 {
		return fmt.Errorf("core: K = %d, need K >= 1", c.K)
	}
	if c.R < 1 {
		return fmt.Errorf("core: R = %d, need R >= 1", c.R)
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return fmt.Errorf("core: Eps = %v, need 0 < Eps < 1", c.Eps)
	}
	if c.M <= c.R {
		return fmt.Errorf("core: M = %d must exceed R = %d", c.M, c.R)
	}
	if c.M < dim {
		return fmt.Errorf("core: M = %d must be at least the dimension %d", c.M, dim)
	}
	return nil
}

// Stats exposes maintenance counters for the experiment harness.
type Stats struct {
	M             int // current sample size m (universe size)
	CoverSize     int // |C|
	Takeovers     int // STABILIZE takeover steps so far
	Reassignments int // set-cover reassignments so far
	Utilities     int // total maintained utilities (== Config.M)
}

// FDRMS is the fully-dynamic k-RMS maintenance structure.
type FDRMS struct {
	cfg Config
	dim int

	engine *topk.Engine     // Φ_{k,ε} of all M utilities over P_t
	cover  *setcover.Solver // stable set cover over Σ
	m      int              // current universe size (u_0 .. u_{m-1})

	// Reused by the single-op wrappers and ApplyBatch so the sequential
	// update path allocates no per-op closures or slices.
	opBuf  [1]topk.Op
	emitFn func(op topk.Op, changes []topk.Change)
}

// New runs Algorithm 2 (INITIALIZATION) on the initial database.
// The point slice is not retained.
func New(dim int, points []geom.Point, cfg Config) (*FDRMS, error) {
	if err := cfg.validate(dim); err != nil {
		return nil, err
	}
	// Line 1: M vectors, standard basis first.
	vecs := geom.BasisThenRandom(dim, cfg.M, cfg.Seed)
	utilities := make([]topk.Utility, cfg.M)
	for i, u := range vecs {
		utilities[i] = topk.Utility{ID: i, U: u}
	}
	f := &FDRMS{cfg: cfg, dim: dim}
	// Line 2: ε-approximate top-k result of every u_i.
	if cfg.Shards > 0 {
		f.engine = topk.NewEngineShards(dim, cfg.K, cfg.Eps, points, utilities, cfg.Shards)
	} else {
		f.engine = topk.NewEngine(dim, cfg.K, cfg.Eps, points, utilities)
	}

	// Register the full membership relation once; the universe (and hence
	// which memberships participate in covering) is chosen below. Points
	// and memberships are registered in ascending id order so greedy
	// tie-breaks (and hence the initial cover) are identical run to run.
	f.cover = setcover.NewSolver()
	pts := f.engine.Points()
	sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
	for _, p := range pts {
		f.cover.RegisterSet(p.ID)
		for _, uid := range f.engine.SetOf(p.ID) {
			f.cover.AddSetMember(p.ID, uid)
		}
	}

	// Lines 3–14: binary search for the largest m ∈ [r, M] whose greedy
	// cover needs at most r sets, then settle |C| = r where possible.
	lo, hi := cfg.R, cfg.M
	best := cfg.R
	for lo <= hi {
		mid := (lo + hi) / 2
		f.cover.ResetUniverse(rangeInts(mid))
		switch {
		case f.cover.Size() < cfg.R:
			best = mid
			lo = mid + 1
		case f.cover.Size() > cfg.R:
			hi = mid - 1
		default:
			best = mid
			lo = mid + 1 // an even larger m may still fit in r sets
		}
	}
	f.cover.ResetUniverse(rangeInts(best))
	f.m = best
	// Algorithm 4 polishes |C| to exactly r (or m = M).
	f.updateM()
	return f, nil
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Insert applies Δ_t = 〈p, +〉 (Algorithm 3, Lines 1–8).
func (f *FDRMS) Insert(p geom.Point) {
	f.opBuf[0] = topk.InsertOp(p)
	f.ApplyBatch(f.opBuf[:1])
	f.opBuf[0] = topk.Op{} // don't pin the tuple past the call
}

// Delete applies Δ_t = 〈p, −〉 (Algorithm 3, Lines 9–12).
// Deleting a missing id is a no-op.
func (f *FDRMS) Delete(id int) {
	f.opBuf[0] = topk.DeleteOp(id)
	f.ApplyBatch(f.opBuf[:1])
	f.opBuf[0] = topk.Op{}
}

// ApplyBatch applies a sequence of tuple insertions and deletions. The
// engine executes the per-utility Φ maintenance of consecutive insertions
// in one shard-parallel phase; each operation's membership deltas are then
// replayed into the set cover in operation order — additions first, then
// removals, then settle — exactly as Algorithm 3 prescribes for a single
// update. Replaying per operation rather than once per batch is what makes
// ApplyBatch provably equivalent to the one-by-one path: stable set-cover
// solutions are path-dependent, so reordering deltas across operations
// could settle on a different (equally valid) cover. The set-cover work is
// a small fraction of an update's cost; the batch win comes from the
// engine's parallel phase and the amortized index maintenance around it.
func (f *FDRMS) ApplyBatch(ops []topk.Op) {
	for _, op := range ops {
		if !op.Delete && op.Point.Dim() != f.dim {
			panic(fmt.Sprintf("core: inserting %d-dimensional point into %d-dimensional FD-RMS", op.Point.Dim(), f.dim))
		}
	}
	if f.emitFn == nil {
		f.emitFn = func(op topk.Op, changes []topk.Change) {
			if op.Delete {
				f.applyChanges(changes)
				f.settle(op.ID, true)
				return
			}
			f.cover.RegisterSet(op.Point.ID)
			f.applyChanges(changes)
			f.settle(0, false)
		}
	}
	f.engine.ApplyBatchFunc(ops, f.emitFn)
}

// applyChanges replays Φ membership deltas into the set system. Additions
// go first so every reassignment triggered by a removal sees the complete
// up-to-date system (the paper's Lines 5–8 and 9–12 rely on the same
// ordering: the inserted tuple's set S(p), or the sets that grew after a
// deletion, exist before any element is reassigned away from a shrinking
// set).
func (f *FDRMS) applyChanges(changes []topk.Change) {
	for _, c := range changes {
		if c.Added {
			f.cover.AddSetMember(c.PointID, c.UtilityID)
		}
	}
	for _, c := range changes {
		if !c.Added {
			f.cover.RemoveSetMember(c.PointID, c.UtilityID)
		}
	}
}

// settle drops the deleted tuple's emptied set (when wasDelete) and
// restores |C| = r (Algorithm 3, Lines 13–14).
func (f *FDRMS) settle(deleted int, wasDelete bool) {
	if wasDelete {
		f.cover.DropSetIfEmpty(deleted)
	}
	if f.cover.Size() != f.cfg.R {
		f.updateM()
	}
}

// updateMMaxFlips bounds the grow/shrink direction changes of one updateM
// call. A single element step usually moves |C| by at most one, but a
// STABILIZE cascade can jump it (one RemoveElement may empty several sets
// via takeovers, one AddElement may open a set a takeover then keeps), so
// the walk can overshoot r in either direction and needs both directions to
// reach a fixpoint. Stable covers are path-dependent, so a pathological
// system could in principle keep crossing r; after this many flips the walk
// settles for the current |C| <= r state instead of chasing it.
const updateMMaxFlips = 32

// updateM is Algorithm 4: grow or shrink the universe one utility vector at
// a time until the stable cover uses exactly r sets, m reaches M, or m
// reaches its lower bound r. Growing and shrinking alternate as needed —
// a shrink step that collapses several sets at once (takeover cascade) can
// undershoot r and leave room to grow again, which a one-directional walk
// would miss.
func (f *FDRMS) updateM() {
	growing := f.cover.Size() < f.cfg.R
	flips := 0
	for {
		switch size := f.cover.Size(); {
		case size < f.cfg.R && f.m < f.cfg.M:
			if !growing {
				growing = true
				if flips++; flips > updateMMaxFlips {
					// Oscillation guard: |C| < r is a valid (if conservative)
					// answer; |C| > r would violate the size constraint, so
					// only the grow direction may give up.
					return
				}
			}
			// Memberships of u_m are already registered (the engine maintains
			// all M utilities), so only the universe grows.
			f.cover.AddElement(f.m)
			f.m++
		case size > f.cfg.R && f.m > f.cfg.R:
			if growing {
				growing = false
				flips++
			}
			f.m--
			f.cover.RemoveElement(f.m)
		default:
			return
		}
	}
}

// Result returns Q_t: the tuples whose sets form the current cover,
// ordered by id. The slice is freshly allocated.
func (f *FDRMS) Result() []geom.Point {
	ids := f.cover.Solution()
	out := make([]geom.Point, 0, len(ids))
	for _, id := range ids {
		if p, ok := f.engine.PointByID(id); ok {
			out = append(out, p)
		}
	}
	return out
}

// ResultIDs returns the ids of Q_t in ascending order.
func (f *FDRMS) ResultIDs() []int { return f.cover.Solution() }

// Len returns |P_t|.
func (f *FDRMS) Len() int { return f.engine.Len() }

// Contains reports whether tuple id is live.
func (f *FDRMS) Contains(id int) bool { return f.engine.Contains(id) }

// Points returns a copy of the live database.
func (f *FDRMS) Points() []geom.Point {
	pts := f.engine.Points()
	sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
	return pts
}

// Config returns the configuration the structure was built with.
func (f *FDRMS) Config() Config { return f.cfg }

// Stats returns current maintenance counters.
func (f *FDRMS) Stats() Stats {
	return Stats{
		M:             f.m,
		CoverSize:     f.cover.Size(),
		Takeovers:     f.cover.Takeovers,
		Reassignments: f.cover.Reassignments,
		Utilities:     f.cfg.M,
	}
}

// RebuildCover discards the maintained stable cover and re-runs GREEDY on
// the current set system. FD-RMS never needs this — it exists for the
// ablation experiment that compares incremental stable-cover maintenance
// against per-operation re-greedy (DESIGN.md §4.1).
func (f *FDRMS) RebuildCover() {
	f.cover.Greedy()
	if f.cover.Size() != f.cfg.R {
		f.updateM()
	}
}

// Engine exposes the underlying top-k maintenance engine for
// instrumentation (ablation experiments read its counters).
func (f *FDRMS) Engine() *topk.Engine { return f.engine }

// Instrument installs metric mirrors on the engine and the cover solver,
// and (when non-nil) the phase clock behind the engine's per-phase timing.
// The clock is injected by the caller for the same reason SetPhaseClock
// takes a function value: timings feed only reporting, and the audited
// injection boundary keeps this package's determinism contract
// machine-checkable. Must be called by the structure's single writer; nil
// arguments uninstall the corresponding piece.
func (f *FDRMS) Instrument(em *topk.Metrics, cm *setcover.Metrics, clock func() int64) {
	f.engine.SetMetrics(em)
	f.engine.SetPhaseClock(clock)
	f.cover.SetMetrics(cm)
}

// Close releases the engine's persistent shard worker pool. The structure
// remains fully usable afterwards (parallel phases run inline); Close is
// idempotent and should be called when the instance is retired so long-lived
// processes that build many instances do not accumulate parked goroutines.
func (f *FDRMS) Close() { f.engine.Close() }

// CheckInvariants verifies the internal consistency of the structure: the
// stable-cover invariants (Definition 2) and the agreement between the
// set system and the maintained top-k memberships. Intended for tests.
func (f *FDRMS) CheckInvariants() error {
	if err := f.cover.CheckStable(); err != nil {
		return err
	}
	if got := f.cover.UniverseSize(); got != f.m {
		return fmt.Errorf("core: universe size %d != m %d", got, f.m)
	}
	if f.cover.Size() > f.cfg.R && f.m > f.cfg.R {
		return fmt.Errorf("core: |C| = %d exceeds r = %d with m = %d", f.cover.Size(), f.cfg.R, f.m)
	}
	for _, p := range f.engine.Points() {
		set := f.engine.SetOf(p.ID)
		for _, uid := range set {
			if uid < f.m && !f.cover.HasSet(p.ID) {
				return fmt.Errorf("core: tuple %d in Φ(u_%d) but unregistered in the cover", p.ID, uid)
			}
		}
		// The solver's set S(p) must mirror the engine's membership exactly —
		// a drifted set system (e.g. a replace group applied out of order)
		// corrupts every later covering decision.
		if got := f.cover.SetSize(p.ID); got != len(set) {
			return fmt.Errorf("core: set system drift: solver S(%d) has %d members, engine Φ-transpose has %d", p.ID, got, len(set))
		}
	}
	return nil
}
