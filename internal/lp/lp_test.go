package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return s
}

func TestSimpleMaximization(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4; x + 3y <= 6. Optimum at (4, 0) = 12.
	p := NewProblem([]float64{3, 2})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
	if math.Abs(s.X[0]-4) > 1e-7 || math.Abs(s.X[1]-0) > 1e-7 {
		t.Fatalf("x = %v, want (4,0)", s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// maximize x + y s.t. 2x + y <= 4; x + 2y <= 4. Optimum (4/3, 4/3) = 8/3.
	p := NewProblem([]float64{1, 1})
	p.AddConstraint([]float64{2, 1}, LE, 4)
	p.AddConstraint([]float64{1, 2}, LE, 4)
	s := solveOK(t, p)
	if math.Abs(s.Objective-8.0/3) > 1e-7 {
		t.Fatalf("objective = %v, want 8/3", s.Objective)
	}
}

func TestUnbounded(t *testing.T) {
	// maximize x with only y bounded.
	p := NewProblem([]float64{1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot hold together.
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x + 2y s.t. x + y == 3, y <= 2. Optimum (1, 2) = 5.
	p := NewProblem([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	p.AddConstraint([]float64{0, 1}, LE, 2)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-5) > 1e-7 {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -2 is x >= 2; maximize -x+5 ... objective max -x s.t. x >= 2,
	// x <= 4: optimum x=2, obj=-2. Note Solve maximizes c·x so use c=-1.
	p := NewProblem([]float64{-1})
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 4)
	s := solveOK(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.X[0]-2) > 1e-7 {
		t.Fatalf("x = %v, want 2", s.X[0])
	}
}

func TestGEConstraint(t *testing.T) {
	// maximize 2x + y s.t. x + y >= 1; x <= 2; y <= 3. Optimum (2,3) = 7.
	p := NewProblem([]float64{2, 1})
	p.AddConstraint([]float64{1, 1}, GE, 1)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	s := solveOK(t, p)
	if math.Abs(s.Objective-7) > 1e-7 {
		t.Fatalf("objective = %v, want 7", s.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate vertex: redundant constraints meeting at the optimum.
	p := NewProblem([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	s := solveOK(t, p)
	if math.Abs(s.Objective-2) > 1e-7 {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestZeroConstraints(t *testing.T) {
	// No constraints: maximize x is unbounded.
	p := NewProblem([]float64{1})
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
	// Maximize -x with x >= 0 implied: optimum 0 at x = 0... note: no
	// constraints means no tableau rows; every reduced cost is negative.
	p2 := NewProblem([]float64{-1})
	s2 := solveOK(t, p2)
	if s2.Status != Optimal || math.Abs(s2.Objective) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 0", s2.Status, s2.Objective)
	}
}

func TestDimensionMismatchError(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1, 2}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for too many coefficients")
	}
}

func TestShortCoefficientsZeroExtended(t *testing.T) {
	// Constraint on x only; y unconstrained above -> unbounded in y.
	p := NewProblem([]float64{0, 1})
	p.AddConstraint([]float64{1}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Relation strings wrong")
	}
	if Relation(99).String() != "?" {
		t.Fatal("unknown relation should be ?")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
	if Status(99).String() != "unknown" {
		t.Fatal("unknown status should be unknown")
	}
}

// bruteMax2D enumerates all vertices of a 2-variable LE-only system
// (pairwise constraint intersections plus axis intersections) and returns
// the best feasible objective, or -Inf when no vertex is feasible.
func bruteMax2D(obj []float64, cons []Constraint) float64 {
	// Treat x >= 0, y >= 0 as constraints too.
	all := append([]Constraint{
		{Coeffs: []float64{-1, 0}, RHS: 0},
		{Coeffs: []float64{0, -1}, RHS: 0},
	}, cons...)
	feasible := func(x, y float64) bool {
		for _, c := range all {
			if c.Coeffs[0]*x+c.Coeffs[1]*y > c.RHS+1e-7 {
				return false
			}
		}
		return true
	}
	best := math.Inf(-1)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a1, b1, c1 := all[i].Coeffs[0], all[i].Coeffs[1], all[i].RHS
			a2, b2, c2 := all[j].Coeffs[0], all[j].Coeffs[1], all[j].RHS
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			if feasible(x, y) {
				if v := obj[0]*x + obj[1]*y; v > best {
					best = v
				}
			}
		}
	}
	return best
}

// Property: on random bounded 2-D LPs, simplex matches vertex enumeration.
func TestSolveMatchesVertexEnumerationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		obj := []float64{rng.Float64()*4 - 1, rng.Float64()*4 - 1}
		ncons := 2 + rng.Intn(5)
		cons := make([]Constraint, 0, ncons)
		for i := 0; i < ncons; i++ {
			cons = append(cons, Constraint{
				Coeffs: []float64{rng.Float64(), rng.Float64()},
				Rel:    LE,
				RHS:    rng.Float64() * 3,
			})
		}
		// Bounding box keeps every instance bounded.
		cons = append(cons,
			Constraint{Coeffs: []float64{1, 0}, Rel: LE, RHS: 10},
			Constraint{Coeffs: []float64{0, 1}, Rel: LE, RHS: 10},
		)
		p := &Problem{Objective: obj, Constraints: cons}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		want := bruteMax2D(obj, cons)
		return math.Abs(s.Objective-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned X is always primal feasible.
func TestSolutionFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		obj := make([]float64, nv)
		for i := range obj {
			obj[i] = rng.Float64()*2 - 0.5
		}
		p := NewProblem(obj)
		for i := 0; i < 3+rng.Intn(5); i++ {
			coeffs := make([]float64, nv)
			for j := range coeffs {
				coeffs[j] = rng.Float64()
			}
			p.AddConstraint(coeffs, LE, 0.5+rng.Float64()*2)
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true // nothing to verify
		}
		for _, c := range p.Constraints {
			var lhs float64
			for j, a := range c.Coeffs {
				lhs += a * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nv, nc := 10, 60
	obj := make([]float64, nv)
	for i := range obj {
		obj[i] = rng.Float64()
	}
	p := NewProblem(obj)
	for i := 0; i < nc; i++ {
		coeffs := make([]float64, nv)
		for j := range coeffs {
			coeffs[j] = rng.Float64()
		}
		p.AddConstraint(coeffs, LE, 1+rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
