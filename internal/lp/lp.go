// Package lp implements a dense two-phase primal simplex solver for small
// linear programs, using only the standard library.
//
// The k-RMS literature leans on linear programming in several places: the
// GREEDY algorithm of Nanongkai et al. computes the exact maximum regret
// ratio of a candidate set by solving one LP per skyline tuple, GEOGREEDY
// uses the same LP on a reduced candidate set, and Chester et al.'s GREEDY*
// evaluates k-regret ratios through LPs. This package provides that tooling.
//
// Problems are stated as
//
//	maximize  c·x   subject to   a_i·x (<=|=|>=) b_i,  x >= 0.
//
// The solver uses Bland's anti-cycling rule, so it terminates on every
// input; it is tuned for the small dense systems that arise here
// (tens of variables, hundreds of constraints), not for sparse industrial
// LPs.
package lp

import (
	"fmt"
	"math"
)

// Relation is the comparison direction of one constraint.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // a·x <= b
	GE                 // a·x >= b
	EQ                 // a·x == b
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is a single linear constraint a·x (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program in the form
// maximize c·x subject to the constraints, with x >= 0 implied.
type Problem struct {
	Objective   []float64
	Constraints []Constraint
}

// NewProblem returns an empty maximization problem over nvars variables.
func NewProblem(objective []float64) *Problem {
	return &Problem{Objective: objective}
}

// AddConstraint appends a constraint. Coefficient slices shorter than the
// objective are zero-extended; longer ones are an error caught in Solve.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs})
}

// Status reports how solving ended.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values, valid when Status == Optimal
	Objective float64   // c·X, valid when Status == Optimal
}

const (
	tol     = 1e-9
	maxIter = 100000
)

// Solve runs two-phase primal simplex and returns the solution.
// It returns an error only for malformed input (dimension mismatch);
// infeasibility and unboundedness are reported via Solution.Status.
func Solve(p *Problem) (Solution, error) {
	n := len(p.Objective)
	for i, c := range p.Constraints {
		if len(c.Coeffs) > n {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients, objective has %d variables", i, len(c.Coeffs), n)
		}
	}
	t := newTableau(p)
	if t.needPhase1() {
		if !t.phase1() {
			return Solution{Status: Infeasible}, nil
		}
	}
	if !t.phase2() {
		return Solution{Status: Unbounded}, nil
	}
	x := t.extract(n)
	var obj float64
	for i, c := range p.Objective {
		obj += c * x[i]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is the dense simplex tableau. Columns: the n structural variables,
// then one slack/surplus per inequality, then artificials, then the RHS.
type tableau struct {
	m, n    int // constraints, structural variables
	cols    int // total variable columns (excluding RHS)
	nArt    int
	artBase int // first artificial column
	rows    [][]float64
	basis   []int     // basis variable per row
	obj     []float64 // phase-2 objective over all columns
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	n := len(p.Objective)

	// Count slack and artificial columns. Rows with negative RHS are
	// pre-negated so every RHS is nonnegative.
	type rowSpec struct {
		coeffs []float64
		rel    Relation
		rhs    float64
	}
	specs := make([]rowSpec, m)
	nSlack, nArt := 0, 0
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rel, rhs := c.Rel, c.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		specs[i] = rowSpec{coeffs, rel, rhs}
		switch rel {
		case LE:
			nSlack++ // slack enters the basis directly
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	slackBase := n
	artBase := n + nSlack
	cols := n + nSlack + nArt
	t := &tableau{m: m, n: n, cols: cols, nArt: nArt, artBase: artBase}
	t.rows = make([][]float64, m)
	t.basis = make([]int, m)

	slack, art := 0, 0
	for i, s := range specs {
		row := make([]float64, cols+1)
		copy(row, s.coeffs)
		row[cols] = s.rhs
		switch s.rel {
		case LE:
			row[slackBase+slack] = 1
			t.basis[i] = slackBase + slack
			slack++
		case GE:
			row[slackBase+slack] = -1
			slack++
			row[artBase+art] = 1
			t.basis[i] = artBase + art
			art++
		case EQ:
			row[artBase+art] = 1
			t.basis[i] = artBase + art
			art++
		}
		t.rows[i] = row
	}

	t.obj = make([]float64, cols)
	copy(t.obj, p.Objective)
	return t
}

func (t *tableau) needPhase1() bool { return t.nArt > 0 }

// phase1 minimizes the sum of artificial variables. It reports whether a
// feasible basis (artificial sum ~ 0) was reached.
func (t *tableau) phase1() bool {
	// Phase-1 objective: maximize -(sum of artificials).
	p1 := make([]float64, t.cols)
	for j := t.artBase; j < t.artBase+t.nArt; j++ {
		p1[j] = -1
	}
	if !t.iterate(p1) {
		// The phase-1 objective is bounded above by 0, so this is unreachable;
		// treat defensively as infeasible.
		return false
	}
	// Objective value = -(sum of artificials in basis).
	var artSum float64
	for i, b := range t.basis {
		if b >= t.artBase {
			artSum += t.rows[i][t.cols]
		}
	}
	if artSum > 1e-7 {
		return false
	}
	// Pivot any remaining (degenerate, zero-valued) artificials out of the
	// basis where possible so phase 2 never re-grows them.
	for i, b := range t.basis {
		if b < t.artBase {
			continue
		}
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.rows[i][j]) > tol {
				t.pivot(i, j)
				break
			}
		}
	}
	return true
}

// phase2 maximizes the real objective from the current feasible basis.
// It reports false when the LP is unbounded.
func (t *tableau) phase2() bool {
	obj := make([]float64, t.cols)
	copy(obj, t.obj)
	// Artificials must never re-enter: give them a strongly negative price.
	for j := t.artBase; j < t.artBase+t.nArt; j++ {
		obj[j] = math.Inf(-1)
	}
	return t.iterate(obj)
}

// iterate runs simplex pivots with Bland's rule for the given objective
// until optimality (true) or unboundedness (false).
func (t *tableau) iterate(obj []float64) bool {
	for iter := 0; iter < maxIter; iter++ {
		// Reduced costs: r_j = obj_j - sum_i y_i * a_ij with y from basis prices.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if math.IsInf(obj[j], -1) {
				continue
			}
			if t.reducedCost(obj, j) > tol {
				enter = j // Bland: first improving index
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Ratio test; Bland tie-break on smallest basis variable.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a <= tol {
				continue
			}
			ratio := t.rows[i][t.cols] / a
			if ratio < best-tol || (ratio < best+tol && (leave == -1 || t.basis[i] < t.basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave == -1 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
	// Hitting the iteration cap with Bland's rule indicates numerical
	// trouble; report the current (feasible) point as optimal-ish rather
	// than spinning forever.
	return true
}

// reducedCost computes obj_j - c_B · B^{-1} A_j for the current tableau.
// Because rows are kept in canonical form (basis columns are unit vectors),
// this is obj_j - sum over rows of basisPrice_i * a_ij.
func (t *tableau) reducedCost(obj []float64, j int) float64 {
	r := obj[j]
	for i := 0; i < t.m; i++ {
		cb := obj[t.basis[i]]
		if cb == 0 || math.IsInf(cb, -1) {
			// Zero-price basis columns contribute nothing. A basic artificial
			// (price -Inf) only survives phase 1 when its row is redundant
			// (all structural coefficients zero), so it contributes nothing
			// either.
			continue
		}
		r -= cb * t.rows[i][j]
	}
	return r
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.rows[leave]
	pv := row[enter]
	for j := range row {
		row[j] /= pv
	}
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.rows[i][enter]
		if f == 0 {
			continue
		}
		for j := range t.rows[i] {
			t.rows[i][j] -= f * row[j]
		}
	}
	t.basis[leave] = enter
}

// extract reads the first n structural variable values off the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rows[i][t.cols]
		}
	}
	return x
}
