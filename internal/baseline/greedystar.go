package baseline

import (
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// GreedyStar is the randomized greedy of Chester et al. (PVLDB 2014), the
// first algorithm supporting k-RMS for k > 1. The published algorithm
// estimates k-regret ratios over randomized linear programs; this
// re-implementation uses the equivalent sampled form: it fixes a random set
// of utility directions, tracks the best chosen score per direction, and at
// every iteration evaluates the candidates that could fix the currently
// worst direction, adding the one whose inclusion minimizes the maximum
// sampled k-regret ratio. The paper's Fig. 7 behaviour — cost exploding
// with k, good quality — is preserved.
type GreedyStar struct {
	seed    int64
	samples int
}

// NewGreedyStar returns the GREEDY* baseline.
func NewGreedyStar(seed int64) *GreedyStar { return &GreedyStar{seed: seed, samples: 2000} }

// Name implements Algorithm.
func (*GreedyStar) Name() string { return "Greedy*" }

// SupportsK implements Algorithm: any k >= 1.
func (*GreedyStar) SupportsK(k int) bool { return k >= 1 }

// Compute implements Algorithm.
func (g *GreedyStar) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, k)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	// Sampled utility directions with their ω_k over the full database. The
	// cost of these top-k queries is what makes GREEDY* collapse as k grows.
	dirs := make([]geom.Vector, 0, g.samples+dim)
	for i := 0; i < dim; i++ {
		dirs = append(dirs, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, g.seed)
	dirs = append(dirs, s.SampleN(g.samples)...)

	tree := kdtree.New(dim, P)
	kth := make([]float64, len(dirs))
	for i, u := range dirs {
		kth[i], _ = tree.KthScore(u, k)
	}

	best := make([]float64, len(dirs)) // ω(u_i, Q) so far
	var Q []geom.Point
	chosen := make(map[int]bool)

	for len(Q) < r && len(Q) < len(pool) {
		// Worst direction under the current Q.
		worstIdx, worstRegret := -1, 0.0
		for i := range dirs {
			if kth[i] <= 0 {
				continue
			}
			if reg := 1 - best[i]/kth[i]; reg > worstRegret {
				worstRegret, worstIdx = reg, i
			}
		}
		if worstIdx < 0 || worstRegret <= 1e-12 {
			break
		}
		// Candidates: the top scorers of the worst direction.
		cands := topCandidates(pool, dirs[worstIdx], chosen, k+4)
		if len(cands) == 0 {
			break
		}
		// Pick the candidate minimizing the resulting max sampled regret.
		bestCand, bestVal := cands[0], maxRegretWith(dirs, kth, best, cands[0])
		for _, c := range cands[1:] {
			if v := maxRegretWith(dirs, kth, best, c); v < bestVal {
				bestCand, bestVal = c, v
			}
		}
		Q = append(Q, bestCand)
		chosen[bestCand.ID] = true
		for i, u := range dirs {
			if sc := geom.Score(u, bestCand); sc > best[i] {
				best[i] = sc
			}
		}
	}
	return sortByID(Q)
}

// topCandidates returns the n highest scorers of u among pool, skipping
// already chosen tuples.
func topCandidates(pool []geom.Point, u geom.Vector, chosen map[int]bool, n int) []geom.Point {
	type scored struct {
		p geom.Point
		s float64
	}
	var all []scored
	for _, p := range pool {
		if !chosen[p.ID] {
			all = append(all, scored{p, geom.Score(u, p)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].p.ID < all[j].p.ID
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]geom.Point, len(all))
	for i, sc := range all {
		out[i] = sc.p
	}
	return out
}

// maxRegretWith returns the maximum sampled k-regret ratio of Q ∪ {c},
// given the per-direction bests of Q.
func maxRegretWith(dirs []geom.Vector, kth, best []float64, c geom.Point) float64 {
	worst := 0.0
	for i, u := range dirs {
		if kth[i] <= 0 {
			continue
		}
		b := best[i]
		if sc := geom.Score(u, c); sc > b {
			b = sc
		}
		if reg := 1 - b/kth[i]; reg > worst {
			worst = reg
		}
	}
	return worst
}
