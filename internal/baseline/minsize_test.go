package baseline

import (
	"testing"

	"fdrms/internal/dataset"
	"fdrms/internal/regret"
)

func TestMinSizeBasics(t *testing.T) {
	ds := dataset.Indep(400, 3, 1)
	q := MinSize(ds.Points, 3, 1, 0.05, 1000, 2)
	if len(q) == 0 {
		t.Fatal("empty answer")
	}
	// The answer must honour the regret budget on an independent test set
	// (allowing sampling slack).
	ev := regret.NewEvaluator(ds.Points, 3, 1, 20000, 3)
	if mrr := ev.MRR(q); mrr > 0.05+0.03 {
		t.Fatalf("mrr %v exceeds budget 0.05 by more than sampling slack", mrr)
	}
	if MinSize(nil, 3, 1, 0.05, 100, 1) != nil {
		t.Fatal("empty P should give nil")
	}
}

// A looser budget must never need more tuples.
func TestMinSizeMonotoneInEps(t *testing.T) {
	ds := dataset.AntiCor(500, 4, 5)
	prev := 1 << 30
	for _, eps := range []float64{0.01, 0.05, 0.2} {
		q := MinSize(ds.Points, 4, 1, eps, 1000, 7)
		if len(q) > prev {
			t.Fatalf("eps=%v needs %d tuples, more than tighter budget's %d", eps, len(q), prev)
		}
		prev = len(q)
	}
}

// Near-total tolerance needs only a tuple or two.
func TestMinSizeLooseBudget(t *testing.T) {
	ds := dataset.Indep(300, 3, 9)
	q := MinSize(ds.Points, 3, 1, 0.9, 500, 11)
	if len(q) > 3 {
		t.Fatalf("eps=0.9 should need at most a few tuples, got %d", len(q))
	}
}

// Min-size and size-constrained HS are duals: running HS with r equal to
// the min-size answer must reach a regret no worse than ~eps.
func TestMinSizeDualToHS(t *testing.T) {
	ds := dataset.Indep(400, 3, 13)
	eps := 0.08
	q := MinSize(ds.Points, 3, 1, eps, 1000, 15)
	hs := NewHittingSet(15).Compute(ds.Points, 3, 1, len(q))
	ev := regret.NewEvaluator(ds.Points, 3, 1, 20000, 17)
	if m := ev.MRR(hs); m > eps+0.05 {
		t.Fatalf("HS at r=%d reaches mrr %v, far above the dual budget %v", len(q), m, eps)
	}
}

func TestMinSizeKGreaterThanOne(t *testing.T) {
	ds := dataset.Indep(300, 3, 19)
	q := MinSize(ds.Points, 3, 3, 0.05, 800, 21)
	if len(q) == 0 {
		t.Fatal("empty answer for k=3")
	}
	ev := regret.NewEvaluator(ds.Points, 3, 3, 10000, 23)
	if m := ev.MRR(q); m > 0.05+0.03 {
		t.Fatalf("k=3 mrr %v exceeds budget", m)
	}
}
