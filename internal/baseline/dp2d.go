package baseline

import (
	"math"

	"fdrms/internal/geom"
)

// DP2D solves 1-RMS on two-dimensional databases (essentially) exactly —
// the "first type" of algorithm in the paper's taxonomy (Section I), which
// exploits the fact that 2-D k-RMS is polynomial while d >= 3 is NP-hard.
//
// In two dimensions the utility class is the quarter circle θ ∈ [0, π/2],
// and the set of directions in which a tuple p stays within (1−ε) of the
// database-wide best score is an angular interval (the score ratio is
// quasi-concave in θ). RMS therefore reduces to covering the quarter circle
// with r intervals: binary search the smallest feasible ε, testing
// feasibility with the classic greedy interval-cover sweep. The circle is
// discretized on a fine grid, so the result is exact up to grid resolution
// (1/Grid of the quarter circle).
type DP2D struct {
	// Grid is the number of angular samples (default 2048).
	Grid int
}

// NewDP2D returns the 2-D exact solver with the default grid.
func NewDP2D() *DP2D { return &DP2D{Grid: 2048} }

// Name implements Algorithm.
func (*DP2D) Name() string { return "DP-2D" }

// SupportsK implements Algorithm: k = 1 only.
func (*DP2D) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm. It panics if dim != 2, since the reduction
// is specific to two dimensions.
func (a *DP2D) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	if dim != 2 {
		panic("baseline: DP-2D requires dim == 2")
	}
	pool := candidatePool(P, 1)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	grid := a.Grid
	if grid < 2 {
		grid = 2048
	}
	// Scores per (angle, tuple) and the directional width per angle.
	width := make([]float64, grid)
	scores := make([][]float64, grid)
	for i := 0; i < grid; i++ {
		theta := float64(i) / float64(grid-1) * math.Pi / 2
		u := geom.Vector{math.Cos(theta), math.Sin(theta)}
		row := make([]float64, len(pool))
		for j, p := range pool {
			row[j] = geom.Score(u, p)
			if row[j] > width[i] {
				width[i] = row[j]
			}
		}
		scores[i] = row
	}

	feasible := func(eps float64) []int {
		// Interval of each tuple: angles where it stays within (1-eps).
		lo := make([]int, len(pool))
		hi := make([]int, len(pool))
		for j := range pool {
			lo[j], hi[j] = -1, -2
			for i := 0; i < grid; i++ {
				if scores[i][j] >= (1-eps)*width[i] {
					if lo[j] < 0 {
						lo[j] = i
					}
					hi[j] = i
				}
			}
		}
		// Greedy interval cover of [0, grid).
		var sel []int
		pos := 0
		for pos < grid {
			bestJ, bestHi := -1, pos-1
			for j := range pool {
				if lo[j] >= 0 && lo[j] <= pos && hi[j] > bestHi {
					bestJ, bestHi = j, hi[j]
				}
			}
			if bestJ < 0 {
				return nil
			}
			sel = append(sel, bestJ)
			if len(sel) > r {
				return nil
			}
			pos = bestHi + 1
		}
		return sel
	}

	loEps, hiEps := 0.0, 1.0
	var best []int
	for iter := 0; iter < 30; iter++ {
		eps := (loEps + hiEps) / 2
		if sel := feasible(eps); sel != nil {
			best = sel
			hiEps = eps
		} else {
			loEps = eps
		}
	}
	if best == nil {
		best = feasible(1.0)
	}
	out := make([]geom.Point, 0, len(best))
	for _, j := range best {
		out = append(out, pool[j])
	}
	return sortByID(out)
}
