package baseline

import (
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// HittingSet is the hitting-set algorithm of Agarwal et al. (SEA 2017) for
// min-size k-RMS: sample a set of utility directions, build for each the
// ε-approximate top-k set Φ_{k,ε}(u, P), and pick the smallest tuple set
// hitting all of them (greedy). A tuple set hitting every Φ_{k,ε} is a
// (k, ε)-regret set for the sampled directions. Following the paper's
// adaptation to the size-constrained problem, a binary search over ε finds
// the smallest ε whose greedy hitting set fits in r tuples.
type HittingSet struct {
	seed    int64
	samples int
}

// NewHittingSet returns the HS baseline.
func NewHittingSet(seed int64) *HittingSet { return &HittingSet{seed: seed, samples: 2000} }

// Name implements Algorithm.
func (*HittingSet) Name() string { return "HS" }

// SupportsK implements Algorithm: any k >= 1.
func (*HittingSet) SupportsK(k int) bool { return k >= 1 }

// Compute implements Algorithm.
func (h *HittingSet) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, k)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	dirs := make([]geom.Vector, 0, h.samples+dim)
	for i := 0; i < dim; i++ {
		dirs = append(dirs, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, h.seed)
	dirs = append(dirs, s.SampleN(h.samples)...)

	// ω_k per direction over the FULL database: for k > 1 the validation
	// must consider all tuples, which is exactly what makes HS slow there.
	tree := kdtree.New(dim, P)
	kth := make([]float64, len(dirs))
	for i, u := range dirs {
		kth[i], _ = tree.KthScore(u, k)
	}

	// Binary search the smallest ε whose hitting set fits in r.
	lo, hi := 0.0, 1.0
	var best []geom.Point
	for iter := 0; iter < 24; iter++ {
		eps := (lo + hi) / 2
		sel := h.greedyHit(pool, dirs, kth, eps, r)
		if sel != nil {
			best = sel
			hi = eps
		} else {
			lo = eps
		}
	}
	if best == nil {
		best = h.greedyHit(pool, dirs, kth, 1.0, r)
	}
	return sortByID(best)
}

// greedyHit returns a greedy hitting set of the Φ_{k,ε} families with at
// most r tuples, or nil when r is insufficient.
func (h *HittingSet) greedyHit(pool []geom.Point, dirs []geom.Vector, kth []float64, eps float64, r int) []geom.Point {
	// memberOf[j] = indices of directions whose Φ contains pool[j].
	memberOf := make([][]int, len(pool))
	hitCount := make([]int, len(pool))
	unhit := 0
	needed := make([]bool, len(dirs))
	for i, u := range dirs {
		if kth[i] <= 0 {
			continue
		}
		tau := (1 - eps) * kth[i]
		any := false
		for j, p := range pool {
			if geom.Score(u, p) >= tau {
				memberOf[j] = append(memberOf[j], i)
				any = true
			}
		}
		if any {
			needed[i] = true
			unhit++
		}
		// Directions no pool tuple reaches (possible when k > 1 and the pool
		// is the full database but ε is tiny) are skipped: no hitting set
		// exists for them and the binary search will widen ε.
	}
	for j := range pool {
		hitCount[j] = len(memberOf[j])
	}
	hit := make([]bool, len(dirs))
	var sel []geom.Point
	for unhit > 0 {
		if len(sel) == r {
			return nil
		}
		bestJ, bestCount := -1, 0
		for j := range pool {
			if hitCount[j] > bestCount {
				bestJ, bestCount = j, hitCount[j]
			}
		}
		if bestJ < 0 {
			return nil
		}
		sel = append(sel, pool[bestJ])
		for _, i := range memberOf[bestJ] {
			if !hit[i] {
				hit[i] = true
				unhit--
				// Decrement counts of tuples sharing this direction.
			}
		}
		// Recompute counts lazily (pool and dirs are modest; clarity wins).
		for j := range pool {
			c := 0
			for _, i := range memberOf[j] {
				if !hit[i] {
					c++
				}
			}
			hitCount[j] = c
		}
	}
	sort.Slice(sel, func(a, b int) bool { return sel[a].ID < sel[b].ID })
	return sel
}
