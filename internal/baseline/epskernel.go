package baseline

import (
	"fdrms/internal/geom"
	"fdrms/internal/kernel"
)

// EpsKernel uses an ε-kernel coreset directly as the k-RMS answer
// (Agarwal et al. SEA 2017; Cao et al. ICDT 2017). The original algorithm
// solves min-size k-RMS (smallest set with mrr <= ε); following the paper's
// adaptation, the size budget r is enforced by searching the largest
// direction net whose coreset still fits in r tuples — equivalent to the
// binary search on ε that the paper describes, because coreset size is
// monotone in the net resolution. Its known weakness is preserved: an
// ε-kernel guards the top-1 of every direction, which is far more than a
// (k, ε)-regret set needs, so its quality-per-tuple is the worst of all
// baselines (Fig. 6).
type EpsKernel struct {
	seed int64
}

// NewEpsKernel returns the ε-KERNEL baseline.
func NewEpsKernel(seed int64) *EpsKernel { return &EpsKernel{seed: seed} }

// Name implements Algorithm.
func (*EpsKernel) Name() string { return "eps-Kernel" }

// SupportsK implements Algorithm: any k >= 1 (the coreset bound only
// improves for larger k).
func (*EpsKernel) SupportsK(k int) bool { return k >= 1 }

// Compute implements Algorithm.
func (e *EpsKernel) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, k)
	return sortByID(kernel.EpsKernel(pool, dim, r, e.seed))
}
