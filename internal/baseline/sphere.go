package baseline

import (
	"fdrms/internal/geom"
	"fdrms/internal/kernel"
)

// Sphere re-implements SPHERE (Xie et al., SIGMOD 2018), the
// state-of-the-art static 1-RMS algorithm with a restriction-free bound.
// The published algorithm seeds the answer with boundary points (the
// extreme tuple of every axis), places a set of anchor directions evenly on
// the nonnegative unit sphere, and takes for each the tuple closest to the
// scaled anchor (equivalently, the top scorer), finishing with a greedy
// fill. This re-implementation follows that structure: basis extremes
// first, then sampled sphere anchors processed in a worst-direction-first
// greedy order until r tuples are chosen.
type Sphere struct {
	seed    int64
	anchors int
}

// NewSphere returns the SPHERE baseline.
func NewSphere(seed int64) *Sphere { return &Sphere{seed: seed, anchors: 4000} }

// Name implements Algorithm.
func (*Sphere) Name() string { return "Sphere" }

// SupportsK implements Algorithm: SPHERE is defined for k = 1 only.
func (*Sphere) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm.
func (s *Sphere) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, 1)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	var Q []geom.Point
	chosen := make(map[int]bool)
	add := func(p geom.Point) {
		if !chosen[p.ID] && len(Q) < r {
			chosen[p.ID] = true
			Q = append(Q, p)
		}
	}
	// Stage 1: boundary tuples — the extreme of each axis.
	for i := 0; i < dim; i++ {
		if p, ok := kernel.Extreme(pool, geom.Basis(dim, i)); ok {
			add(p)
		}
	}
	// Stage 2: anchor directions, covered in worst-regret-first order.
	anchors := geom.NewUnitSampler(dim, s.seed).SampleN(s.anchors)
	width := make([]float64, len(anchors))
	top := make([]geom.Point, len(anchors))
	for i, u := range anchors {
		p, _ := kernel.Extreme(pool, u)
		top[i] = p
		width[i] = geom.Score(u, p)
	}
	bestQ := make([]float64, len(anchors))
	for i, u := range anchors {
		for _, q := range Q {
			if sc := geom.Score(u, q); sc > bestQ[i] {
				bestQ[i] = sc
			}
		}
	}
	for len(Q) < r {
		worst, worstReg := -1, 1e-12
		for i := range anchors {
			if width[i] <= 0 {
				continue
			}
			if reg := 1 - bestQ[i]/width[i]; reg > worstReg {
				worst, worstReg = i, reg
			}
		}
		if worst < 0 {
			break // all anchors already satisfied
		}
		p := top[worst]
		if chosen[p.ID] {
			// The anchor's top tuple is taken yet regret persists — the
			// sampled anchors cannot improve further.
			break
		}
		add(p)
		for i, u := range anchors {
			if sc := geom.Score(u, p); sc > bestQ[i] {
				bestQ[i] = sc
			}
		}
	}
	return sortByID(Q)
}
