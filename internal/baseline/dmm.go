package baseline

import (
	"math"
	"sort"

	"fdrms/internal/geom"
)

// The two DMM algorithms of Asudeh et al. (SIGMOD 2017) discretize the
// utility space into N directions and work on the regret matrix
//
//	M[i][j] = 1 − <u_i, p_j> / ω(u_i, P),
//
// the regret ratio the singleton {p_j} leaves in direction u_i. Choosing r
// tuples so that the maximum over directions of the minimum matrix entry is
// smallest is a min-max discretization of 1-RMS.
//
// DMM-RRMS binary-searches the answer τ and tests feasibility as a set
// cover (direction i is covered by tuple j when M[i][j] <= τ); DMM-GREEDY
// picks tuples greedily to minimize the running max-regret directly. Both
// inherit the paper's observed weakness: quality collapses once r grows
// past what the discretization resolves (Fig. 6), and memory grows with
// N × |skyline|, which is why they cannot scale past d = 7 (Fig. 8).

// dmmBase holds the shared discretization.
type dmmBase struct {
	seed int64
	dirs int
}

func (b dmmBase) matrix(pool []geom.Point, dim int) ([]geom.Vector, [][]float64) {
	dirs := make([]geom.Vector, 0, b.dirs+dim)
	for i := 0; i < dim; i++ {
		dirs = append(dirs, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, b.seed)
	dirs = append(dirs, s.SampleN(b.dirs)...)

	m := make([][]float64, len(dirs))
	for i, u := range dirs {
		width := 0.0
		row := make([]float64, len(pool))
		for _, p := range pool {
			if sc := geom.Score(u, p); sc > width {
				width = sc
			}
		}
		for j, p := range pool {
			if width <= 0 {
				row[j] = 0
				continue
			}
			row[j] = 1 - geom.Score(u, p)/width
		}
		m[i] = row
	}
	return dirs, m
}

// DMMRRMS is the binary-search variant.
type DMMRRMS struct{ dmmBase }

// NewDMMRRMS returns the DMM-RRMS baseline.
func NewDMMRRMS(seed int64) *DMMRRMS { return &DMMRRMS{dmmBase{seed: seed, dirs: 1000}} }

// Name implements Algorithm.
func (*DMMRRMS) Name() string { return "DMM-RRMS" }

// SupportsK implements Algorithm: DMM is defined for k = 1 only.
func (*DMMRRMS) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm.
func (a *DMMRRMS) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, 1)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	_, m := a.matrix(pool, dim)

	// The answer is one of the matrix entries; binary search over the
	// sorted distinct values.
	values := distinctValues(m)
	lo, hi := 0, len(values)-1
	var best []int
	for lo <= hi {
		mid := (lo + hi) / 2
		sel := coverWithThreshold(m, values[mid], r)
		if sel != nil {
			best = sel
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		best = coverWithThreshold(m, math.Inf(1), r)
	}
	out := make([]geom.Point, 0, len(best))
	for _, j := range best {
		out = append(out, pool[j])
	}
	return sortByID(out)
}

func distinctValues(m [][]float64) []float64 {
	seen := make(map[float64]bool)
	for _, row := range m {
		for _, v := range row {
			seen[v] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// coverWithThreshold greedily covers all directions with tuples whose
// regret is <= tau, returning nil when more than r tuples are needed.
func coverWithThreshold(m [][]float64, tau float64, r int) []int {
	nDirs := len(m)
	if nDirs == 0 {
		return []int{}
	}
	nPts := len(m[0])
	uncovered := make([]bool, nDirs)
	remaining := nDirs
	for i := range uncovered {
		uncovered[i] = true
	}
	var sel []int
	for remaining > 0 {
		if len(sel) == r {
			return nil
		}
		bestJ, bestCount := -1, 0
		for j := 0; j < nPts; j++ {
			count := 0
			for i := 0; i < nDirs; i++ {
				if uncovered[i] && m[i][j] <= tau {
					count++
				}
			}
			if count > bestCount {
				bestJ, bestCount = j, count
			}
		}
		if bestJ < 0 {
			return nil // some direction cannot reach tau at all
		}
		sel = append(sel, bestJ)
		for i := 0; i < nDirs; i++ {
			if uncovered[i] && m[i][bestJ] <= tau {
				uncovered[i] = false
				remaining--
			}
		}
	}
	return sel
}

// DMMGreedy picks tuples greedily on the matrix.
type DMMGreedy struct{ dmmBase }

// NewDMMGreedy returns the DMM-GREEDY baseline.
func NewDMMGreedy(seed int64) *DMMGreedy { return &DMMGreedy{dmmBase{seed: seed, dirs: 1000}} }

// Name implements Algorithm.
func (*DMMGreedy) Name() string { return "DMM-Greedy" }

// SupportsK implements Algorithm: DMM is defined for k = 1 only.
func (*DMMGreedy) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm.
func (a *DMMGreedy) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	pool := candidatePool(P, 1)
	if len(pool) == 0 || r <= 0 {
		return nil
	}
	_, m := a.matrix(pool, dim)
	nDirs := len(m)
	nPts := len(pool)

	// cur[i] = min regret over chosen tuples for direction i.
	cur := make([]float64, nDirs)
	for i := range cur {
		cur[i] = math.Inf(1)
	}
	chosen := make(map[int]bool)
	var sel []int
	for len(sel) < r && len(sel) < nPts {
		bestJ := -1
		bestVal := math.Inf(1)
		for j := 0; j < nPts; j++ {
			if chosen[j] {
				continue
			}
			// Max regret if tuple j were added.
			worst := 0.0
			for i := 0; i < nDirs; i++ {
				v := cur[i]
				if m[i][j] < v {
					v = m[i][j]
				}
				if v > worst {
					worst = v
				}
			}
			if worst < bestVal || (worst == bestVal && bestJ >= 0 && pool[j].ID < pool[bestJ].ID) {
				bestJ, bestVal = j, worst
			}
		}
		if bestJ < 0 {
			break
		}
		chosen[bestJ] = true
		sel = append(sel, bestJ)
		for i := 0; i < nDirs; i++ {
			if m[i][bestJ] < cur[i] {
				cur[i] = m[i][bestJ]
			}
		}
		if bestVal <= 1e-12 {
			break
		}
	}
	out := make([]geom.Point, 0, len(sel))
	for _, j := range sel {
		out = append(out, pool[j])
	}
	return sortByID(out)
}
