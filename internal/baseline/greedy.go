package baseline

import (
	"fdrms/internal/geom"
	"fdrms/internal/kernel"
	"fdrms/internal/regret"
)

// Greedy is the LP-based greedy heuristic of Nanongkai et al. (PVLDB 2010)
// for 1-RMS: starting from the best tuple of an arbitrary direction, it
// repeatedly adds the tuple that currently inflicts the maximum regret
// ratio on the chosen set, computed exactly with one LP per candidate.
// It has no approximation guarantee but high empirical quality — and the
// highest cost of all baselines, as the paper's Fig. 6 shows.
type Greedy struct{}

// NewGreedy returns the GREEDY baseline.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Algorithm.
func (*Greedy) Name() string { return "Greedy" }

// SupportsK implements Algorithm: GREEDY is defined for k = 1 only.
func (*Greedy) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm.
func (*Greedy) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	return lpGreedy(candidatePool(P, 1), dim, r)
}

// lpGreedy is the shared core of GREEDY and GEOGREEDY.
func lpGreedy(cands []geom.Point, dim, r int) []geom.Point {
	if len(cands) == 0 || r <= 0 {
		return nil
	}
	// Seed with the extreme point of the all-ones direction.
	ones := make(geom.Vector, dim)
	for i := range ones {
		ones[i] = 1
	}
	geom.Normalize(ones)
	first, _ := kernel.Extreme(cands, ones)
	Q := []geom.Point{first}
	chosen := map[int]bool{first.ID: true}

	for len(Q) < r && len(Q) < len(cands) {
		var worst geom.Point
		worstDelta := 0.0
		found := false
		for _, p := range cands {
			if chosen[p.ID] {
				continue
			}
			delta, err := regret.PointRegretLP(p, Q)
			if err != nil {
				continue
			}
			if !found || delta > worstDelta {
				worst, worstDelta, found = p, delta, true
			}
		}
		if !found || worstDelta <= 1e-12 {
			break // zero regret: Q already covers every direction
		}
		Q = append(Q, worst)
		chosen[worst.ID] = true
	}
	return sortByID(Q)
}

// GeoGreedy is the geometric greedy of Peng & Wong (ICDE 2014): the same
// greedy loop as GREEDY, but run only over the happy points — tuples that
// are the top-1 of at least one utility direction (the vertices of the
// upper convex hull). The happy-point set is extracted with a dense
// direction net; the paper's exact convex-hull-based extraction is
// equivalent for the utility class U and this substitution keeps the
// candidate-reduction behaviour that gives GEOGREEDY its speedup.
type GeoGreedy struct {
	seed    int64
	netSize int
}

// NewGeoGreedy returns the GEOGREEDY baseline.
func NewGeoGreedy(seed int64) *GeoGreedy { return &GeoGreedy{seed: seed, netSize: 4096} }

// Name implements Algorithm.
func (*GeoGreedy) Name() string { return "GeoGreedy" }

// SupportsK implements Algorithm: GEOGREEDY is defined for k = 1 only.
func (*GeoGreedy) SupportsK(k int) bool { return k == 1 }

// Compute implements Algorithm.
func (g *GeoGreedy) Compute(P []geom.Point, dim, k, r int) []geom.Point {
	sky := candidatePool(P, 1)
	happy := kernel.ExtremePoints(sky, kernel.Net(dim, g.netSize, g.seed))
	return lpGreedy(happy, dim, r)
}
