// Package baseline implements the seven static k-RMS algorithms the paper
// compares FD-RMS against (Section IV-A), plus the exact 2-D dynamic
// programming solver from the "first type" of the related-work taxonomy:
//
//	GREEDY       Nanongkai et al. 2010   LP-based greedy, 1-RMS
//	GREEDY*      Chester et al. 2014     randomized greedy, k-RMS
//	GEOGREEDY    Peng & Wong 2014        greedy over happy (extreme) points
//	DMM-RRMS     Asudeh et al. 2017      discretized matrix min-max
//	DMM-GREEDY   Asudeh et al. 2017      greedy on the discretized matrix
//	ε-KERNEL     Agarwal et al. 2017     coreset as the answer
//	HS           Agarwal et al. 2017     hitting set over sampled utilities
//	SPHERE       Xie et al. 2018         basis + sphere-direction coverage
//	DP-2D        (extension)             exact 1-RMS on two dimensions
//
// These are from-scratch re-implementations based on the published
// descriptions; the paper benchmarked the authors' C++ binaries. Each
// algorithm is deterministic given its seed. In the dynamic workload
// harness (package workload) they are re-run whenever an operation changes
// the skyline, exactly as the paper's evaluation prescribes.
package baseline

import (
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/skyline"
)

// Algorithm is a static k-RMS solver: given the database, rank depth k and
// size budget r, return at most r representative tuples.
type Algorithm interface {
	Name() string
	// SupportsK reports whether the algorithm handles the given rank depth
	// (several 1-RMS algorithms are undefined for k > 1).
	SupportsK(k int) bool
	Compute(P []geom.Point, dim, k, r int) []geom.Point
}

// candidatePool returns the tuple set a static algorithm should work on:
// the skyline for k = 1 (every 1-RMS answer is a subset of the skyline) and
// the full database for k > 1, as the paper notes for HS and ε-KERNEL.
func candidatePool(P []geom.Point, k int) []geom.Point {
	if k == 1 {
		return skyline.Compute(P)
	}
	return P
}

// sortByID orders a result deterministically.
func sortByID(pts []geom.Point) []geom.Point {
	sort.Slice(pts, func(i, j int) bool { return pts[i].ID < pts[j].ID })
	return pts
}

// All returns every baseline algorithm with the given seed, in the order
// the paper lists them.
func All(seed int64) []Algorithm {
	return []Algorithm{
		NewGreedy(),
		NewGreedyStar(seed),
		NewGeoGreedy(seed),
		NewDMMRRMS(seed),
		NewDMMGreedy(seed),
		NewEpsKernel(seed),
		NewHittingSet(seed),
		NewSphere(seed),
	}
}

// ByName returns the baseline with the given name, or false.
func ByName(name string, seed int64) (Algorithm, bool) {
	for _, a := range All(seed) {
		if a.Name() == name {
			return a, true
		}
	}
	if name == "DP-2D" {
		return NewDP2D(), true
	}
	return nil, false
}
