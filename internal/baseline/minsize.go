package baseline

import (
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// MinSize solves the dual formulation of k-RMS studied by Agarwal et al.
// (SEA 2017) and Kumar & Sintos (ALENEX 2018), which the paper adapts its
// ε-KERNEL and HS baselines from: instead of fixing the size r and
// minimizing the regret, fix a regret budget eps and return the smallest
// subset Q with mrr_k(Q) <= eps (with respect to a sampled utility test
// set of the given size).
//
// The reduction is the sampled hitting set: Q must contain at least one
// ε-approximate top-k tuple of every sampled utility, and the greedy
// hitting set is an O(log)-approximation of the smallest such Q.
func MinSize(P []geom.Point, dim, k int, eps float64, samples int, seed int64) []geom.Point {
	if len(P) == 0 {
		return nil
	}
	pool := candidatePool(P, k)
	dirs := make([]geom.Vector, 0, samples+dim)
	for i := 0; i < dim; i++ {
		dirs = append(dirs, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, seed)
	dirs = append(dirs, s.SampleN(samples)...)

	tree := kdtree.New(dim, P)
	// memberOf[j] lists the directions whose Φ_{k,ε} contains pool[j].
	memberOf := make([][]int, len(pool))
	needed := 0
	hit := make([]bool, len(dirs))
	for i, u := range dirs {
		kth, ok := tree.KthScore(u, k)
		if !ok || kth <= 0 {
			hit[i] = true
			continue
		}
		tau := (1 - eps) * kth
		any := false
		for j, p := range pool {
			if geom.Score(u, p) >= tau {
				memberOf[j] = append(memberOf[j], i)
				any = true
			}
		}
		if !any {
			hit[i] = true // only reachable for k > 1 when pool ⊂ P misses the top-k
			continue
		}
		needed++
	}

	var sel []geom.Point
	for needed > 0 {
		bestJ, bestCount := -1, 0
		for j := range pool {
			c := 0
			for _, i := range memberOf[j] {
				if !hit[i] {
					c++
				}
			}
			if c > bestCount {
				bestJ, bestCount = j, c
			}
		}
		if bestJ < 0 {
			break
		}
		sel = append(sel, pool[bestJ])
		for _, i := range memberOf[bestJ] {
			if !hit[i] {
				hit[i] = true
				needed--
			}
		}
	}
	sort.Slice(sel, func(a, b int) bool { return sel[a].ID < sel[b].ID })
	return sel
}
