package baseline

import (
	"math/rand"
	"testing"

	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/regret"
	"fdrms/internal/skyline"
)

func paperPoints() []geom.Point {
	return []geom.Point{
		geom.NewPoint(1, 0.2, 1.0),
		geom.NewPoint(2, 0.6, 0.8),
		geom.NewPoint(3, 0.7, 0.5),
		geom.NewPoint(4, 1.0, 0.1),
		geom.NewPoint(5, 0.4, 0.3),
		geom.NewPoint(6, 0.2, 0.7),
		geom.NewPoint(7, 0.3, 0.9),
		geom.NewPoint(8, 0.6, 0.6),
	}
}

// every algorithm must return at most r tuples drawn from P, and for k=1
// they must lie on the skyline.
func TestBasicContracts(t *testing.T) {
	ds := dataset.Indep(300, 4, 1)
	onSky := make(map[int]bool)
	for _, p := range skyline.Compute(ds.Points) {
		onSky[p.ID] = true
	}
	inP := make(map[int]bool)
	for _, p := range ds.Points {
		inP[p.ID] = true
	}
	for _, alg := range All(7) {
		for _, r := range []int{1, 5, 20} {
			got := alg.Compute(ds.Points, 4, 1, r)
			if len(got) > r {
				t.Errorf("%s: |Q| = %d > r = %d", alg.Name(), len(got), r)
			}
			for _, p := range got {
				if !inP[p.ID] {
					t.Errorf("%s: tuple %d not from P", alg.Name(), p.ID)
				}
				if !onSky[p.ID] {
					t.Errorf("%s: tuple %d not on the skyline (k=1)", alg.Name(), p.ID)
				}
			}
		}
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	for _, alg := range All(3) {
		if got := alg.Compute(nil, 3, 1, 5); len(got) != 0 {
			t.Errorf("%s: empty P returned %d tuples", alg.Name(), len(got))
		}
		if got := alg.Compute(paperPoints(), 2, 1, 0); len(got) != 0 {
			t.Errorf("%s: r=0 returned %d tuples", alg.Name(), len(got))
		}
		one := []geom.Point{geom.NewPoint(0, 0.5, 0.5)}
		got := alg.Compute(one, 2, 1, 3)
		if len(got) != 1 || got[0].ID != 0 {
			t.Errorf("%s: singleton P returned %v", alg.Name(), got)
		}
	}
}

func TestSupportsK(t *testing.T) {
	k1Only := map[string]bool{"Greedy": true, "GeoGreedy": true, "DMM-RRMS": true, "DMM-Greedy": true, "Sphere": true}
	for _, alg := range All(1) {
		if !alg.SupportsK(1) {
			t.Errorf("%s must support k=1", alg.Name())
		}
		if k1Only[alg.Name()] && alg.SupportsK(3) {
			t.Errorf("%s should not claim k=3 support", alg.Name())
		}
		if !k1Only[alg.Name()] && !alg.SupportsK(3) {
			t.Errorf("%s should support k=3", alg.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Greedy", "Greedy*", "GeoGreedy", "DMM-RRMS", "DMM-Greedy", "eps-Kernel", "HS", "Sphere", "DP-2D"} {
		if _, ok := ByName(name, 1); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nonsense", 1); ok {
		t.Error("ByName should reject unknown names")
	}
}

// On the paper's toy database every algorithm should achieve near-zero
// regret with r = 3 (the skyline has 5 tuples, and {p1, p2, p4} already
// reaches mrr_1 = 0 by Example 1).
func TestToyDatabaseQuality(t *testing.T) {
	P := paperPoints()
	ev := regret.NewEvaluator(P, 2, 1, 5000, 1)
	for _, alg := range All(5) {
		Q := alg.Compute(P, 2, 1, 3)
		if mrr := ev.MRR(Q); mrr > 0.12 {
			t.Errorf("%s: mrr_1 = %v on the toy database with r=3", alg.Name(), mrr)
		}
	}
}

// Greedy is the quality reference (paper: best quality, worst speed): on a
// modest dataset it must beat or match the discretized algorithms, and
// eps-Kernel should trail (Fig. 6's quality ordering).
func TestQualityOrdering(t *testing.T) {
	ds := dataset.AntiCor(400, 4, 3)
	ev := regret.NewEvaluator(ds.Points, 4, 1, 30000, 2)
	r := 10
	mrr := make(map[string]float64)
	for _, alg := range All(11) {
		mrr[alg.Name()] = ev.MRR(alg.Compute(ds.Points, 4, 1, r))
	}
	if mrr["Greedy"] > mrr["eps-Kernel"]+0.02 {
		t.Errorf("Greedy (%v) should not be clearly worse than eps-Kernel (%v)",
			mrr["Greedy"], mrr["eps-Kernel"])
	}
	for name, v := range mrr {
		if v > 0.5 {
			t.Errorf("%s: implausibly bad mrr %v", name, v)
		}
	}
}

// Quality must improve (weakly) with r for the greedy family.
func TestQualityMonotoneInR(t *testing.T) {
	ds := dataset.Indep(300, 3, 5)
	ev := regret.NewEvaluator(ds.Points, 3, 1, 10000, 3)
	for _, alg := range []Algorithm{NewGreedy(), NewSphere(9), NewHittingSet(9)} {
		prev := 1.1
		for _, r := range []int{2, 5, 15} {
			m := ev.MRR(alg.Compute(ds.Points, 3, 1, r))
			if m > prev+0.03 {
				t.Errorf("%s: mrr at r=%d is %v, worse than at smaller r (%v)", alg.Name(), r, m, prev)
			}
			prev = m
		}
	}
}

// k-RMS capable algorithms: regret must (weakly) drop as k grows, by
// definition of the measure.
func TestKRMSQuality(t *testing.T) {
	ds := dataset.Indep(300, 3, 7)
	r := 8
	for _, alg := range []Algorithm{NewGreedyStar(13), NewHittingSet(13), NewEpsKernel(13)} {
		prev := 1.1
		for _, k := range []int{1, 3, 5} {
			Q := alg.Compute(ds.Points, 3, k, r)
			ev := regret.NewEvaluator(ds.Points, 3, k, 10000, 4)
			m := ev.MRR(Q)
			if m > prev+0.05 {
				t.Errorf("%s: mrr_k at k=%d is %v, should not exceed k-1's %v by this much", alg.Name(), k, m, prev)
			}
			prev = m
		}
	}
}

// GeoGreedy must match Greedy's quality on low dimensions (paper: "runs
// much faster than GREEDY while achieving equivalent quality").
func TestGeoGreedyMatchesGreedy(t *testing.T) {
	ds := dataset.Indep(250, 3, 11)
	ev := regret.NewEvaluator(ds.Points, 3, 1, 20000, 5)
	g := ev.MRR(NewGreedy().Compute(ds.Points, 3, 1, 8))
	gg := ev.MRR(NewGeoGreedy(11).Compute(ds.Points, 3, 1, 8))
	if gg > g+0.03 {
		t.Errorf("GeoGreedy mrr %v should match Greedy mrr %v", gg, g)
	}
}

// DP-2D is (quasi-)exact on 2-D inputs: nothing may beat it by a margin.
func TestDP2DOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		n := 40 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.NewPoint(i, rng.Float64(), rng.Float64())
		}
		ev := regret.NewEvaluator(pts, 2, 1, 20000, int64(trial))
		r := 4
		dp := ev.MRR(NewDP2D().Compute(pts, 2, 1, r))
		greedy := ev.MRR(NewGreedy().Compute(pts, 2, 1, r))
		if dp > greedy+0.01 {
			t.Errorf("trial %d: DP-2D mrr %v beaten by Greedy %v", trial, dp, greedy)
		}
	}
}

func TestDP2DPanicsOnHighDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim != 2")
		}
	}()
	NewDP2D().Compute(dataset.Indep(10, 3, 1).Points, 3, 1, 2)
}

// Determinism: same seed, same result.
func TestDeterminism(t *testing.T) {
	ds := dataset.Indep(200, 4, 19)
	for _, mk := range []func() Algorithm{
		func() Algorithm { return NewGreedyStar(5) },
		func() Algorithm { return NewSphere(5) },
		func() Algorithm { return NewHittingSet(5) },
		func() Algorithm { return NewDMMGreedy(5) },
		func() Algorithm { return NewEpsKernel(5) },
	} {
		a, b := mk().Compute(ds.Points, 4, 1, 10), mk().Compute(ds.Points, 4, 1, 10)
		if len(a) != len(b) {
			t.Errorf("%s: nondeterministic result size", mk().Name())
			continue
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Errorf("%s: nondeterministic result", mk().Name())
				break
			}
		}
	}
}

func BenchmarkGreedyR10(b *testing.B) {
	ds := dataset.Indep(2000, 4, 1)
	alg := NewGreedy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Compute(ds.Points, 4, 1, 10)
	}
}

func BenchmarkSphereR50(b *testing.B) {
	ds := dataset.Indep(10000, 6, 1)
	alg := NewSphere(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Compute(ds.Points, 6, 1, 50)
	}
}

func BenchmarkHittingSetR50(b *testing.B) {
	ds := dataset.Indep(10000, 6, 1)
	alg := NewHittingSet(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Compute(ds.Points, 6, 1, 50)
	}
}
