package bench

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fdrms/internal/obs"
	"fdrms/internal/replica"
	"fdrms/internal/topk"
	"fdrms/rms"
)

// Replicate measures the WAL-shipping replication path end to end: follower
// bootstrap from a checkpoint, steady-state replay lag while the primary
// ingests (p50/p99 from append to apply), read throughput served off the
// follower's lock-free generations, and recovery time for the two fault
// classes a live deployment actually meets — a torn record on the active
// segment and a stalled shipping channel. The final row is the contract the
// whole subsystem exists for: after everything, the follower's engine state
// is byte-identical to the primary's at the same seq.
func Replicate(o Options) *Table {
	o = o.withDefaults()
	initial, fresh, cfg := batchSetup(o)
	dim := o.SynthD
	const ingestBatch = 64

	pts := make([]rms.Point, len(initial))
	for i, p := range initial {
		pts[i] = rms.Point{ID: p.ID, Values: p.Coords}
	}
	stream := mixedStream(initial, fresh)
	// Three slices of the stream: steady-state replication, then one per
	// fault stage (applied while the fault is live, replayed after it heals).
	a, b := (len(stream)*6)/10, (len(stream)*8)/10
	steady, tornOps, stallOps := stream[:a], stream[a:b], stream[b:]

	dir, err := os.MkdirTemp("", "fdrms-replicate-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	t := &Table{
		Title: fmt.Sprintf("Replication: bootstrap, replay lag, follower reads, fault recovery (AntiCor, n=%d, d=%d, M=%d, r=%d)",
			len(initial), dim, o.M, cfg.R),
		Header: []string{"stage", "ops", "elapsed", "rate/s", "lag p50", "lag p99", "state==primary"},
	}

	ds, err := rms.OpenDurable(dir, dim, pts, rms.Options{
		K: cfg.K, R: cfg.R, Epsilon: cfg.Eps, MaxUtilities: cfg.M, Seed: cfg.Seed,
	}, rms.DurableOptions{
		SyncEveryBatch: true,
		SegmentBytes:   64 << 10, // force rotations so shipping crosses segment boundaries
	})
	if err != nil {
		panic(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		panic(err)
	}

	// appendAt records when each seq became durable on the primary; the
	// follower's ApplyHook turns that into an append-to-apply lag sample.
	var (
		mu       sync.Mutex
		appendAt = map[uint64]time.Time{}
		lag      = obs.NewHistogram()
	)
	ffs := replica.NewFaultFS(nil)

	start := time.Now()
	fol := replica.Open(dir, replica.Options{
		PollInterval: time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		FS:           ffs,
		ApplyHook: func(seq uint64, _ int) {
			mu.Lock()
			at, ok := appendAt[seq]
			if ok {
				delete(appendAt, seq)
			}
			mu.Unlock()
			if ok {
				lag.Observe(int64(time.Since(at)))
			}
		},
	})
	defer fol.Close()
	waitSeq := func(seq uint64) {
		deadline := time.Now().Add(60 * time.Second)
		for fol.Status().AppliedSeq < seq {
			if time.Now().After(deadline) {
				st := fol.Status()
				panic(fmt.Sprintf("follower wedged at seq %d (%v, %q), primary at %d", st.AppliedSeq, st.State, st.Reason, seq))
			}
			time.Sleep(time.Millisecond)
		}
	}
	for {
		if _, _, ok := fol.EncodeState(); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	waitSeq(ds.LastSeq())
	bootElapsed := time.Since(start)
	t.AddRow("bootstrap", fmt.Sprint(ds.Len()), fmtDur(bootElapsed),
		fmt.Sprintf("%.0f", float64(ds.Len())/bootElapsed.Seconds()), "-", "-", "-")

	// push applies one batch on the primary and stamps its durable time for
	// the lag probe.
	push := func(ops []rms.Update) {
		if err := ds.ApplyBatch(ops); err != nil {
			panic(err)
		}
		mu.Lock()
		appendAt[ds.LastSeq()] = time.Now()
		mu.Unlock()
	}

	// Steady-state replication: primary ingests, follower tails live.
	start = time.Now()
	for i := 0; i < len(steady); i += ingestBatch {
		j := i + ingestBatch
		if j > len(steady) {
			j = len(steady)
		}
		push(opsToUpdates(steady[i:j]))
	}
	ingestElapsed := time.Since(start)
	waitSeq(ds.LastSeq())
	t.AddRow("replicate", fmt.Sprint(len(steady)), fmtDur(ingestElapsed),
		fmt.Sprintf("%.0f", float64(len(steady))/ingestElapsed.Seconds()),
		fmtMs(lag.Quantile(0.5)), fmtMs(lag.Quantile(0.99)), "-")

	// Follower read throughput: hammer the lock-free generation for a fixed
	// window — the scale-out half of the design.
	u := make([]float64, dim)
	for i := range u {
		u[i] = 1 / math.Sqrt(float64(dim))
	}
	const readWindow = 200 * time.Millisecond
	reads := 0
	start = time.Now()
	for time.Since(start) < readWindow {
		g, _ := fol.Current()
		if _, err := g.TopK(u, 8); err != nil {
			panic(err)
		}
		reads++
	}
	readElapsed := time.Since(start)
	t.AddRow("follower reads", fmt.Sprint(reads), fmtDur(readElapsed),
		fmt.Sprintf("%.0f", float64(reads)/readElapsed.Seconds()), "-", "-", "-")

	// Fault: a torn record on the active segment. Freeze shipping at the
	// converged prefix, let the primary write on, expose all but the final
	// two bytes, and measure the follower's recovery once the fault clears.
	faultRow := func(stage string, ops []rms.Update, inject func(activeSeg string), clear func(activeSeg string)) {
		waitSeq(ds.LastSeq())
		if err := ffs.Freeze(dir); err != nil {
			panic(err)
		}
		for i := 0; i < len(ops); i += ingestBatch {
			j := i + ingestBatch
			if j > len(ops) {
				j = len(ops)
			}
			push(ops[i:j])
		}
		seg := activeSegment(dir)
		if inject != nil {
			inject(seg)
		}
		ffs.ClearStall()
		time.Sleep(20 * time.Millisecond) // let the follower meet the fault
		start := time.Now()
		if clear != nil {
			clear(seg)
		}
		waitSeq(ds.LastSeq())
		rec := time.Since(start)
		t.AddRow(stage, fmt.Sprint(len(ops)), fmtDur(rec),
			fmt.Sprintf("%.0f", float64(len(ops))/rec.Seconds()), "-", "-", "-")
	}
	faultRow("fault: torn active tail", opsToUpdates(tornOps),
		func(seg string) {
			fi, err := os.Stat(filepath.Join(dir, seg))
			if err != nil {
				panic(err)
			}
			ffs.TruncateAt(seg, fi.Size()-2)
		},
		func(seg string) { ffs.TruncateAt(seg, -1) })

	// Fault: stalled shipping (frozen visibility), recovery measured from
	// the moment the channel unblocks.
	waitSeq(ds.LastSeq())
	if err := ffs.Freeze(dir); err != nil {
		panic(err)
	}
	stall := opsToUpdates(stallOps)
	for i := 0; i < len(stall); i += ingestBatch {
		j := i + ingestBatch
		if j > len(stall) {
			j = len(stall)
		}
		push(stall[i:j])
	}
	start = time.Now()
	ffs.ClearStall()
	waitSeq(ds.LastSeq())
	rec := time.Since(start)
	t.AddRow("fault: stalled shipping", fmt.Sprint(len(stall)), fmtDur(rec),
		fmt.Sprintf("%.0f", float64(len(stall))/rec.Seconds()), "-", "-", "-")

	// The contract: byte-identical engine state at the same seq.
	followerState, atSeq, ok := fol.EncodeState()
	converged := ok && atSeq == ds.LastSeq() && bytes.Equal(followerState, ds.EncodeState())
	t.AddRow("converged", fmt.Sprint(ds.LastSeq()), "-", "-", "-", "-", fmt.Sprint(converged))

	t.Notes = append(t.Notes,
		"lag p50/p99: time from a batch durable on the primary to applied on the follower (file-level WAL shipping)",
		"follower reads: single-goroutine TopK against the follower's lock-free generation while idle",
		"fault rows: rate is catch-up replay once the fault clears; elapsed is time from fault cleared to fully converged",
		"state==primary: the follower's encoded engine state is byte-identical to the primary's at the same applied seq")
	return t
}

// opsToUpdates converts a topk op stream into the rms batch form.
func opsToUpdates(ops []topk.Op) []rms.Update {
	out := make([]rms.Update, len(ops))
	for i, op := range ops {
		if op.Delete {
			out[i] = rms.Del(op.ID)
		} else {
			out[i] = rms.Ins(rms.Point{ID: op.Point.ID, Values: op.Point.Coords})
		}
	}
	return out
}

// activeSegment names the newest WAL segment in dir.
func activeSegment(dir string) string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		panic(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		panic("no WAL segments")
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// fmtMs renders a nanosecond histogram quantile in milliseconds.
func fmtMs(ns uint64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/1e6)
}
