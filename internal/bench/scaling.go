package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/topk"
)

// DefaultScalingBatchSizes is the batch-size grid of the scaling experiment:
// the sequential baseline plus the two batched points the CI gate reads.
var DefaultScalingBatchSizes = []int{1, 64, 256}

// scalingConfigs is the GOMAXPROCS × shard-count grid: the single-core
// baseline, proportional growth to four cores, and the over-partitioned
// point (4 shards per core, the DefaultShards policy) that shows what shard
// over-partitioning buys the work-stealing pool on skewed phases.
var scalingConfigs = []struct{ procs, shards int }{
	{1, 1}, {2, 2}, {4, 4}, {4, 16},
}

// scalingReps is how many times each cell runs; the fastest rep is reported
// (see run below).
const scalingReps = 3

// batchFloor is the batch_floor gate's threshold on vs_b1: the best batched
// size of a configuration must not lose more than 10% to batch=1. Judging
// the best size (rather than every size) plus the margin absorbs residual
// scheduler noise that even best-of-scalingReps leaves in few-millisecond
// cells; a structurally broken batch path drags every size far below. The
// gate only applies where gomaxprocs <= NumCPU: oversubscribed
// configurations pay fan-out overhead with no real parallelism behind it,
// which is a property of the host, not of the code under test.
const batchFloor = 0.9

// Scaling measures how the batched update path scales across cores: the
// insert and mixed AntiCor streams (the workloads of the throughput tables)
// run at every (GOMAXPROCS, shards) point of scalingConfigs × every batch
// size, with the engine's phase clock installed, so each row carries a
// wall-time breakdown of the pipeline (candidate probing, index mutation,
// parallel fan-out, merge, emission) plus the fan-out's load imbalance —
// the columns that say WHERE the time goes when a configuration fails to
// scale. The two workloads probe different regimes: insert's long runs are
// what the shard fan-out parallelizes; mixed's short runs (a delete every
// four inserts caps each run at four ops) mostly stay under the engine's
// parallel threshold, so its batched win comes from run segmentation and
// amortized emission rather than the pool.
//
// Two boolean columns feed the CI gate: result==seq (every configuration
// must reproduce the single-core sequential answer — shard count and
// parallelism are performance knobs, never semantics) and batch_floor
// (the best batched size must stay within batchFloor of batch=1 in the
// same configuration, gated only where the host has the cores to back the
// requested gomaxprocs). A "false" anywhere fails the workflow's scaling
// step.
func Scaling(o Options, sizes ...int) *Table {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = DefaultScalingBatchSizes
	}
	initial, fresh, cfg := batchSetup(o)
	streams := map[string][]topk.Op{
		"insert": insertStream(fresh),
		"mixed":  mixedStream(initial, fresh),
	}

	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	t := &Table{
		Title: fmt.Sprintf("Multi-core scaling (AntiCor, n=%d, d=%d, M=%d, r=%d)",
			len(initial), o.SynthD, o.M, cfg.R),
		Header: []string{"workload", "gomaxprocs", "shards", "batch", "ops", "elapsed", "ops/s",
			"vs_b1", "vs_seq1core", "cand(ms)", "index(ms)", "fanout(ms)", "merge(ms)", "emit(ms)",
			"imbalance", "result==seq", "batch_floor"},
	}

	type runOut struct {
		elapsed time.Duration
		prof    topk.PhaseProfile
		result  []int
	}
	runOnce := func(ops []topk.Op, procs, shards, size int) runOut {
		runtime.GOMAXPROCS(procs)
		c := cfg
		c.Shards = shards
		f, err := core.New(o.SynthD, initial, c)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		t0 := time.Now()
		f.Engine().SetPhaseClock(func() int64 { return int64(time.Since(t0)) })
		// Per-call windows, like runStreams: clock reads between calls are
		// excluded symmetrically at every batch size.
		var elapsed time.Duration
		if size <= 1 {
			for _, op := range ops {
				s := time.Now()
				if op.Delete {
					f.Delete(op.ID)
				} else {
					f.Insert(op.Point)
				}
				elapsed += time.Since(s)
			}
		} else {
			for i := 0; i < len(ops); i += size {
				j := i + size
				if j > len(ops) {
					j = len(ops)
				}
				s := time.Now()
				f.ApplyBatch(ops[i:j])
				elapsed += time.Since(s)
			}
		}
		return runOut{elapsed, f.Engine().PhaseProfile(), f.ResultIDs()}
	}
	// Each cell is the best of scalingReps runs: the speedup columns gate CI,
	// and a single few-millisecond window is scheduler roulette. The ops are
	// deterministic, so every rep produces the identical result set — only
	// the clock varies.
	run := func(ops []topk.Op, procs, shards, size int) runOut {
		best := runOnce(ops, procs, shards, size)
		for i := 1; i < scalingReps; i++ {
			if r := runOnce(ops, procs, shards, size); r.elapsed < best.elapsed {
				best = r
			}
		}
		return best
	}

	ms := func(n int64) string { return fmt.Sprintf("%.1f", float64(n)/1e6) }
	for _, name := range []string{"insert", "mixed"} {
		ops := streams[name]
		// The per-workload reference every row's vs_seq1core and result==seq
		// compare against: one core, one shard, sequential.
		ref := run(ops, 1, 1, 1)
		refOps := float64(len(ops)) / ref.elapsed.Seconds()
		for _, c := range scalingConfigs {
			seqR := ref
			if c.procs != 1 || c.shards != 1 {
				seqR = run(ops, c.procs, c.shards, 1)
			}
			base := float64(len(ops)) / seqR.elapsed.Seconds()
			results := make([]runOut, len(sizes))
			vs := make([]float64, len(sizes))
			bestBatched := 0.0
			for i, size := range sizes {
				results[i] = seqR
				if size > 1 {
					results[i] = run(ops, c.procs, c.shards, size)
				}
				vs[i] = float64(len(ops)) / results[i].elapsed.Seconds() / base
				if size >= 64 && vs[i] > bestBatched {
					bestBatched = vs[i]
				}
			}
			gated := c.procs <= runtime.NumCPU()
			for i, size := range sizes {
				r := results[i]
				opsPerSec := float64(len(ops)) / r.elapsed.Seconds()
				vsB1 := vs[i]
				// The floor verdict is per configuration (its best batched
				// size), printed on the gated batched rows; "-" marks rows
				// the gate does not apply to.
				floor := "-"
				if size >= 64 && gated {
					floor = fmt.Sprintf("%v", bestBatched >= batchFloor)
				}
				// Fan-out imbalance: max over mean of per-shard worker busy
				// time, counting only shards the phases actually touched. 1.00
				// is a perfectly level pool; "-" means no run went parallel.
				imb := "-"
				if r.prof.Parallel > 0 {
					var max, sum int64
					n := 0
					for _, b := range r.prof.Busy {
						if b > 0 {
							n++
							sum += b
							if b > max {
								max = b
							}
						}
					}
					if sum > 0 {
						imb = fmt.Sprintf("%.2f", float64(max)*float64(n)/float64(sum))
					}
				}
				t.AddRow(name,
					fmt.Sprint(c.procs), fmt.Sprint(c.shards), fmt.Sprint(size),
					fmt.Sprint(len(ops)), fmtDur(r.elapsed), fmt.Sprintf("%.0f", opsPerSec),
					fmt.Sprintf("%.2fx", vsB1),
					fmt.Sprintf("%.2fx", opsPerSec/refOps),
					ms(r.prof.CandidateNanos), ms(r.prof.IndexNanos), ms(r.prof.FanoutNanos),
					ms(r.prof.MergeNanos), ms(r.prof.EmitNanos),
					imb,
					fmt.Sprintf("%v", reflect.DeepEqual(r.result, ref.result)),
					floor)
			}
		}
	}
	t.Notes = append(t.Notes,
		"vs_b1 compares against batch=1 in the SAME (gomaxprocs, shards) configuration; vs_seq1core against the 1-core 1-shard sequential baseline",
		"cand/index/fanout/merge/emit are the batched pipeline's accumulated phase wall times (engine phase clock)",
		"imbalance = max/mean of per-shard worker busy time over parallel phases (1.00 = level); '-' = nothing ran parallel",
		"result==seq and batch_floor are CI gates: any 'false' fails the scaling step",
		"batch_floor judges a configuration by its BEST batched size with a 10% noise margin, and only where gomaxprocs <= NumCPU ('-' otherwise: oversubscription measures the host, not the code)",
		"runs on fewer physical cores than gomaxprocs still measure the batching win; the parallel speedup needs real cores")
	return t
}
