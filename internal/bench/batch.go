package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/obs"
	"fdrms/internal/setcover"
	"fdrms/internal/topk"
)

// DefaultBatchSizes is the batch-size grid of the throughput experiments.
var DefaultBatchSizes = []int{1, 16, 256}

// latSummary is the per-op latency distribution of one run: each timed call
// (one operation at batch size 1, one ApplyBatch call otherwise, amortized
// over the operations THAT call covered) contributes one sample.
type latSummary struct {
	p50, p99, max time.Duration
}

// summarize computes the percentiles over already-per-op latency samples
// through an obs.Histogram rather than a sort: O(n) instead of O(n log n),
// and the same distribution machinery the serving stack exports. The
// trade is resolution, with a one-sided bound: the histogram's log₂-scale
// buckets split each octave into 16 sub-buckets and a quantile reports its
// bucket's inclusive upper edge, so p50/p99 are never below the true
// percentile and at most 1/16 (6.25%) above it. The maximum is tracked
// exactly, not bucketed.
func summarize(samples []time.Duration) latSummary {
	if len(samples) == 0 {
		return latSummary{}
	}
	h := obs.NewHistogram()
	for _, d := range samples {
		h.Observe(int64(d))
	}
	return latSummary{
		p50: time.Duration(h.Quantile(0.50)),
		p99: time.Duration(h.Quantile(0.99)),
		max: time.Duration(h.Max()),
	}
}

// latResolutionNote documents summarize's error bound on every table that
// prints its percentiles.
const latResolutionNote = "p50/p99 are histogram upper edges (≤6.25% above the true percentile, never below); max is exact"

// benchStart anchors the phase clock injected into instrumented runs.
var benchStart = time.Now()

// benchClock is the monotonic phase clock handed to core.Instrument when a
// metrics registry is attached (the engine cannot read time itself — the
// determinism contract bans it inside the maintenance path).
func benchClock() int64 { return int64(time.Since(benchStart)) }

func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

// runStreams times each named operation stream over a fresh FD-RMS instance
// per (stream, batch size) cell. Batch size 1 is the sequential path (one
// Insert/Delete per operation) and the baseline of the speedup column;
// larger sizes go through ApplyBatch. Every run's final cover is compared
// against the sequential one, so the table doubles as an end-to-end
// equivalence check at bench scale. Alongside throughput, every timed call
// feeds the per-op latency percentiles (p50/p99/max), which is where
// tail-latency work — bounded cone-tree re-splits, the persistent worker
// pool — shows up when the mean moves little.
func runStreams(t *Table, o Options, initial []geom.Point, cfg core.Config,
	order []string, streams map[string][]topk.Op, sizes []int) {
	var samples []time.Duration
	for _, name := range order {
		ops := streams[name]
		run := func(size int) (time.Duration, float64, latSummary, []int) {
			f, err := core.New(o.SynthD, initial, cfg)
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if o.Metrics != nil {
				// Successive cells get the SAME registry handles (get-or-create
				// by name), so the registry accumulates across the experiment.
				f.Instrument(topk.NewMetrics(o.Metrics), setcover.NewMetrics(o.Metrics), benchClock)
			}
			samples = samples[:0]
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			mallocs := ms.Mallocs
			// elapsed sums the per-call windows rather than bracketing the
			// whole loop, so the sampling clock reads between calls are
			// excluded SYMMETRICALLY at every batch size — otherwise the
			// sequential baseline would absorb two clock reads per op while
			// batch=256 pays them once per 256 ops, skewing the speedup
			// column by the difference.
			var elapsed time.Duration
			if size <= 1 {
				for _, op := range ops {
					opStart := time.Now()
					if op.Delete {
						f.Delete(op.ID)
					} else {
						f.Insert(op.Point)
					}
					d := time.Since(opStart)
					elapsed += d
					samples = append(samples, d)
				}
			} else {
				for i := 0; i < len(ops); i += size {
					j := i + size
					if j > len(ops) {
						j = len(ops)
					}
					opStart := time.Now()
					f.ApplyBatch(ops[i:j])
					d := time.Since(opStart)
					elapsed += d
					// Amortize over the ops THIS call covered — the final
					// call of a stream can be a partial batch.
					samples = append(samples, d/time.Duration(j-i))
				}
			}
			runtime.ReadMemStats(&ms)
			allocsPerOp := float64(ms.Mallocs-mallocs) / float64(len(ops))
			return elapsed, allocsPerOp, summarize(samples), f.ResultIDs()
		}
		// The reference is always the sequential path, regardless of which
		// batch sizes were requested: both the speedup column and the
		// result==seq equivalence column compare against it.
		seqElapsed, seqAllocs, seqLat, seqResult := run(1)
		baseline := float64(len(ops)) / seqElapsed.Seconds()
		for _, size := range sizes {
			elapsed, allocs, lat, result := seqElapsed, seqAllocs, seqLat, seqResult
			if size > 1 {
				elapsed, allocs, lat, result = run(size)
			}
			opsPerSec := float64(len(ops)) / elapsed.Seconds()
			t.AddRow(name, fmt.Sprint(len(ops)), fmt.Sprintf("%d", size), fmtDur(elapsed),
				fmt.Sprintf("%.0f", opsPerSec),
				fmt.Sprintf("%.2fx", opsPerSec/baseline),
				fmt.Sprintf("%.1f", allocs),
				fmtMicros(lat.p50),
				fmtMicros(lat.p99),
				fmtMicros(lat.max),
				fmt.Sprintf("%v", reflect.DeepEqual(result, seqResult)))
		}
	}
}

// batchSetup materializes the shared workload of the throughput tables: an
// anti-correlated initial database plus a pool of fresh points for the
// streams to insert.
func batchSetup(o Options) (initial, fresh []geom.Point, cfg core.Config) {
	n := scaled(o.SynthN, o.Scale)
	streamLen := n / 10
	if streamLen < 512 {
		streamLen = 512
	}
	ds := dataset.AntiCor(n+streamLen, o.SynthD, o.Seed)
	initial = ds.Points[:n]
	fresh = ds.Points[n:]
	cfg = core.Config{K: 1, R: capR(defaultR("AntiCor"), n), Eps: 0.01, M: o.M, Seed: o.Seed}
	return initial, fresh, cfg
}

// BatchThroughput measures FD-RMS update throughput on the anti-correlated
// synthetic workload at increasing batch sizes: a pure insertion stream
// (the paper's append-heavy regime) and a mixed stream with 20% deletions.
func BatchThroughput(o Options, sizes ...int) *Table {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = DefaultBatchSizes
	}
	initial, fresh, cfg := batchSetup(o)
	streams := map[string][]topk.Op{
		"insert": insertStream(fresh),
		"mixed":  mixedStream(initial, fresh),
	}
	t := &Table{
		Title:  fmt.Sprintf("Batched update throughput (AntiCor, n=%d, d=%d, M=%d, r=%d)", len(initial), o.SynthD, o.M, cfg.R),
		Header: []string{"workload", "ops", "batch", "elapsed", "ops/s", "speedup", "allocs/op", "p50(µs)", "p99(µs)", "max(µs)", "result==seq"},
	}
	runStreams(t, o, initial, cfg, []string{"insert", "mixed"}, streams, sizes)
	t.Notes = append(t.Notes,
		"batch=1 is the sequential Insert/Delete path; larger batches use ApplyBatch",
		"the shard-parallel fan-out needs multiple CPUs to show its full speedup",
		"p50/p99/max are per-op latencies; at batch>1 each ApplyBatch call is one sample amortized over its ops",
		latResolutionNote)
	return t
}

// SlidingWindow measures the delete-heavy regimes that delete-run batching
// targets: a sliding window (every insertion evicts the oldest tuple, 50%
// deletions), bursts (blocks of 16 insertions then 16 evictions, so
// ApplyBatch segments long runs of both kinds), and a pure deletion stream
// (draining half the database in one long delete run).
func SlidingWindow(o Options, sizes ...int) *Table {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = DefaultBatchSizes
	}
	initial, fresh, cfg := batchSetup(o)
	streams := map[string][]topk.Op{
		"sliding": slidingStream(initial, fresh),
		"bursty":  burstyStream(initial, fresh, 16),
		"delete":  deleteStream(initial),
	}
	t := &Table{
		Title:  fmt.Sprintf("Sliding-window / delete-heavy throughput (AntiCor, n=%d, d=%d, M=%d, r=%d)", len(initial), o.SynthD, o.M, cfg.R),
		Header: []string{"workload", "ops", "batch", "elapsed", "ops/s", "speedup", "allocs/op", "p50(µs)", "p99(µs)", "max(µs)", "result==seq"},
	}
	runStreams(t, o, initial, cfg, []string{"sliding", "bursty", "delete"}, streams, sizes)
	t.Notes = append(t.Notes,
		"sliding: insert+evict pairs (50% deletes); bursty: alternating 16-op insert/delete runs; delete: one long drain",
		"batch=1 is the sequential Insert/Delete path; larger batches use ApplyBatch",
		"the shard-parallel fan-out needs multiple CPUs to show its full speedup",
		"p50/p99/max are per-op latencies; at batch>1 each ApplyBatch call is one sample amortized over its ops",
		latResolutionNote)
	return t
}

// insertStream turns fresh points into a pure insertion stream.
func insertStream(fresh []geom.Point) []topk.Op {
	ops := make([]topk.Op, len(fresh))
	for i, p := range fresh {
		ops[i] = topk.InsertOp(p)
	}
	return ops
}

// mixedStream interleaves one deletion of an initial tuple after every four
// insertions (20% deletes), deterministic in the stream position.
func mixedStream(initial, fresh []geom.Point) []topk.Op {
	ops := make([]topk.Op, 0, len(fresh)+len(fresh)/4)
	del := 0
	for i, p := range fresh {
		ops = append(ops, topk.InsertOp(p))
		if (i+1)%4 == 0 && del < len(initial) {
			ops = append(ops, topk.DeleteOp(initial[del].ID))
			del++
		}
	}
	return ops
}

// slidingStream keeps the window size constant: every insertion of a fresh
// tuple is followed by the eviction of the oldest live one (50% deletes).
func slidingStream(initial, fresh []geom.Point) []topk.Op {
	ops := make([]topk.Op, 0, 2*len(fresh))
	del := 0
	for _, p := range fresh {
		ops = append(ops, topk.InsertOp(p))
		if del < len(initial) {
			ops = append(ops, topk.DeleteOp(initial[del].ID))
			del++
		}
	}
	return ops
}

// burstyStream alternates blocks of blockLen insertions with blocks of
// blockLen evictions of the oldest live tuples, producing long runs of both
// kinds for the run-segmented batch path.
func burstyStream(initial, fresh []geom.Point, blockLen int) []topk.Op {
	ops := make([]topk.Op, 0, 2*len(fresh))
	del := 0
	for i := 0; i < len(fresh); i += blockLen {
		j := i + blockLen
		if j > len(fresh) {
			j = len(fresh)
		}
		for _, p := range fresh[i:j] {
			ops = append(ops, topk.InsertOp(p))
		}
		for b := 0; b < j-i && del < len(initial); b++ {
			ops = append(ops, topk.DeleteOp(initial[del].ID))
			del++
		}
	}
	return ops
}

// deleteStream drains half of the initial database in one long delete run.
func deleteStream(initial []geom.Point) []topk.Op {
	ops := make([]topk.Op, len(initial)/2)
	for i := range ops {
		ops[i] = topk.DeleteOp(initial[i].ID)
	}
	return ops
}
