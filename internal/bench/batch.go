package bench

import (
	"fmt"
	"reflect"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// DefaultBatchSizes is the batch-size grid of the throughput experiment.
var DefaultBatchSizes = []int{1, 16, 256}

// BatchThroughput measures FD-RMS update throughput on the anti-correlated
// synthetic workload at increasing batch sizes. Batch size 1 is the
// sequential path (one Insert/Delete per operation) and is the baseline the
// speedup column is relative to; larger sizes go through ApplyBatch. Two
// streams are timed per size: pure insertion (the paper's append-heavy
// regime and the acceptance metric of the batched pipeline) and a mixed
// stream with 20% deletions. Every run's final cover is compared against
// the sequential one, so the table doubles as an end-to-end equivalence
// check at bench scale.
func BatchThroughput(o Options, sizes ...int) *Table {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = DefaultBatchSizes
	}
	n := scaled(o.SynthN, o.Scale)
	streamLen := n / 10
	if streamLen < 512 {
		streamLen = 512
	}
	ds := dataset.AntiCor(n+streamLen, o.SynthD, o.Seed)
	initial := ds.Points[:n]
	fresh := ds.Points[n:]
	cfg := core.Config{K: 1, R: capR(defaultR("AntiCor"), n), Eps: 0.01, M: o.M, Seed: o.Seed}

	streams := map[string][]topk.Op{
		"insert": insertStream(fresh),
		"mixed":  mixedStream(initial, fresh),
	}

	t := &Table{
		Title:  fmt.Sprintf("Batched update throughput (AntiCor, n=%d, d=%d, M=%d, r=%d, stream=%d ops)", n, o.SynthD, o.M, cfg.R, streamLen),
		Header: []string{"workload", "batch", "elapsed", "ops/s", "speedup", "result==seq"},
	}
	for _, name := range []string{"insert", "mixed"} {
		ops := streams[name]
		// The reference is always the sequential path, regardless of which
		// batch sizes were requested: both the speedup column and the
		// result==seq equivalence column compare against it.
		run := func(size int) (time.Duration, []int) {
			f, err := core.New(o.SynthD, initial, cfg)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			if size <= 1 {
				for _, op := range ops {
					if op.Delete {
						f.Delete(op.ID)
					} else {
						f.Insert(op.Point)
					}
				}
			} else {
				for i := 0; i < len(ops); i += size {
					j := i + size
					if j > len(ops) {
						j = len(ops)
					}
					f.ApplyBatch(ops[i:j])
				}
			}
			return time.Since(start), f.ResultIDs()
		}
		seqElapsed, seqResult := run(1)
		baseline := float64(len(ops)) / seqElapsed.Seconds()
		for _, size := range sizes {
			elapsed, result := seqElapsed, seqResult
			if size > 1 {
				elapsed, result = run(size)
			}
			opsPerSec := float64(len(ops)) / elapsed.Seconds()
			t.AddRow(name, fmt.Sprintf("%d", size), fmtDur(elapsed),
				fmt.Sprintf("%.0f", opsPerSec),
				fmt.Sprintf("%.2fx", opsPerSec/baseline),
				fmt.Sprintf("%v", reflect.DeepEqual(result, seqResult)))
		}
	}
	t.Notes = append(t.Notes,
		"batch=1 is the sequential Insert/Delete path; larger batches use ApplyBatch",
		"the shard-parallel fan-out needs multiple CPUs to show its full speedup")
	return t
}

// insertStream turns fresh points into a pure insertion stream.
func insertStream(fresh []geom.Point) []topk.Op {
	ops := make([]topk.Op, len(fresh))
	for i, p := range fresh {
		ops[i] = topk.InsertOp(p)
	}
	return ops
}

// mixedStream interleaves one deletion of an initial tuple after every four
// insertions (20% deletes), deterministic in the stream position.
func mixedStream(initial, fresh []geom.Point) []topk.Op {
	ops := make([]topk.Op, 0, len(fresh)+len(fresh)/4)
	del := 0
	for i, p := range fresh {
		ops = append(ops, topk.InsertOp(p))
		if (i+1)%4 == 0 && del < len(initial) {
			ops = append(ops, topk.DeleteOp(initial[del].ID))
			del++
		}
	}
	return ops
}
