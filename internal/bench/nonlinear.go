package bench

import (
	"fmt"

	"fdrms/internal/baseline"
	"fdrms/internal/nonlinear"
	"fdrms/internal/workload"
)

// Nonlinear compares k-RMS answers across utility classes (the paper's
// future-work direction, implemented in internal/nonlinear): for each
// dataset it computes a class-aware answer per class and cross-scores every
// answer under every class, exposing how much regret a linear-tuned answer
// leaves under convex and multiplicative preferences.
func Nonlinear(o Options, names ...string) []*Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = []string{"Indep", "AntiCor"}
	}
	classes := []nonlinear.Class{
		nonlinear.Linear{},
		nonlinear.ConvexLq{Q: 2},
		nonlinear.ConvexLq{Q: 4},
		nonlinear.Multiplicative{},
	}
	var out []*Table
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(defaultR(name), ds.N())
		final := w.Snapshots()[workload.NumCheckpoints-1]

		evs := make([]*nonlinear.Evaluator, len(classes))
		for i, c := range classes {
			evs[i] = nonlinear.NewEvaluator(c, final, ds.Dim, 1, o.MRRSamples/4, o.Seed+700)
		}

		t := &Table{
			Title:  fmt.Sprintf("Extension: utility classes — %s (k=1, r=%d, final snapshot)", name, r),
			Header: []string{"answer tuned for", "mrr:linear", "mrr:convex-L2", "mrr:convex-L4", "mrr:multiplicative"},
			Notes: []string{
				"rows: which class the answer was computed for; columns: the class it is scored under",
			},
		}
		for _, tuned := range classes {
			q := nonlinear.Compute(tuned, final, ds.Dim, 1, r, 1500, o.Seed)
			row := []string{tuned.Name()}
			for i := range classes {
				row = append(row, fmtMRR(evs[i].MRR(q)))
			}
			t.Rows = append(t.Rows, row)
		}
		// Reference: the linear-world Sphere answer scored under every class.
		sphere := baseline.NewSphere(o.Seed).Compute(final, ds.Dim, 1, r)
		row := []string{"Sphere (linear)"}
		for i := range classes {
			row = append(row, fmtMRR(evs[i].MRR(sphere)))
		}
		t.Rows = append(t.Rows, row)
		out = append(out, t)
	}
	return out
}
