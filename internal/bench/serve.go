package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fdrms/internal/dataset"
	"fdrms/rms"
)

// serveBatch is the writer's batch size in the serving benchmark: large
// enough to engage the shard-parallel batch path, small enough to publish
// generations at a realistic ingestion cadence.
const serveBatch = 64

// serveSampleCap bounds the latency samples kept per reader and read kind;
// reads beyond the cap still count toward throughput. Point reads run in
// tens of nanoseconds, so an uncapped 2-second run would retain tens of
// millions of samples for no extra percentile fidelity.
const serveSampleCap = 1 << 17

// serveReader accumulates one goroutine's measurements, all thread-local
// until the writer finishes and the goroutine exits.
type serveReader struct {
	reads   [3]int
	samples [3][]time.Duration
	ok      bool
}

var serveKinds = [3]string{"result", "topk", "regret"}

// Serve measures the MVCC serving layer under concurrent load: one writer
// streams sliding-window batches through rms.Store.ApplyBatch while N
// reader goroutines hammer the lock-free read entry points — Result
// (answer snapshot), TopK (tuple query against the pinned index view), and
// RegretRatioFor (answer evaluation) — each read pinned to whatever
// generation is current when it starts. Reads never take a lock (the read
// path is one atomic pointer load), so the table's tail-to-median ratio
// p99/p50 is the whole story of reader/writer interference: with reads
// blocking on a writer lock it would track the multi-millisecond batch
// latency; lock-free it stays within a small constant.
func Serve(o Options) *Table {
	o = o.withDefaults()
	n := scaled(o.SynthN, o.Scale)
	nBatches := n / serveBatch
	if nBatches < 20 {
		nBatches = 20
	}
	streamLen := nBatches * serveBatch
	ds := dataset.AntiCor(n+streamLen, o.SynthD, o.Seed)
	r := capR(defaultR("AntiCor"), n)
	opts := rms.Options{K: 1, R: r, Epsilon: 0.01, MaxUtilities: o.M, Seed: o.Seed}

	probes := serveUtilities(o.SynthD, 32, o.Seed)
	t := &Table{
		Title: fmt.Sprintf("MVCC serving under concurrent writes (AntiCor, n=%d, d=%d, M=%d, r=%d, batch=%d)",
			n, o.SynthD, o.M, r, serveBatch),
		Header: []string{"readers", "kind", "reads", "reads/s", "p50(µs)", "p99(µs)", "max(µs)",
			"p99/p50", "write ops/s", "gens/s", "reads/gen", "consistent"},
	}
	for _, nReaders := range []int{1, 4} {
		initial := make([]rms.Point, n)
		for i, p := range ds.Points[:n] {
			initial[i] = rms.Point{ID: p.ID, Values: p.Coords}
		}
		store, err := rms.NewStore(o.SynthD, initial, opts)
		if err != nil {
			panic(err)
		}
		if o.Metrics != nil {
			store.SetTelemetry(rms.NewTelemetry(o.Metrics))
		}

		done := make(chan struct{})
		readers := make([]*serveReader, nReaders)
		var wg sync.WaitGroup
		for ri := range readers {
			rd := &serveReader{ok: true}
			readers[ri] = rd
			wg.Add(1)
			go func(ri int) {
				defer wg.Done()
				lastGen := uint64(0)
				for i := 0; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					g := store.Current()
					if g.ID() < lastGen {
						rd.ok = false
					}
					lastGen = g.ID()
					u := probes[(ri+i)%len(probes)]
					for kind := 0; kind < 3; kind++ {
						start := time.Now()
						switch kind {
						case 0:
							if len(store.Result()) > r {
								rd.ok = false
							}
						case 1:
							if _, err := store.TopK(u, 10); err != nil {
								rd.ok = false
							}
						case 2:
							if _, err := store.RegretRatioFor(u); err != nil {
								rd.ok = false
							}
						}
						d := time.Since(start)
						rd.reads[kind]++
						if len(rd.samples[kind]) < serveSampleCap {
							rd.samples[kind] = append(rd.samples[kind], d)
						}
					}
				}
			}(ri)
		}

		// The writer slides the window: every batch inserts serveBatch fresh
		// tuples and evicts the serveBatch oldest, so each ApplyBatch commit
		// publishes exactly one new generation under full reader load.
		window := make([]int, 0, n+serveBatch)
		for _, p := range ds.Points[:n] {
			window = append(window, p.ID)
		}
		fresh := ds.Points[n:]
		var writeOps atomic.Int64
		writeStart := time.Now()
		for b := 0; b < nBatches; b++ {
			batch := make([]rms.Update, 0, 2*serveBatch)
			for _, p := range fresh[b*serveBatch : (b+1)*serveBatch] {
				batch = append(batch, rms.Ins(rms.Point{ID: p.ID, Values: p.Coords}))
				window = append(window, p.ID)
			}
			for _, id := range window[:serveBatch] {
				batch = append(batch, rms.Del(id))
			}
			window = window[serveBatch:]
			if err := store.ApplyBatch(batch); err != nil {
				panic(err)
			}
			writeOps.Add(int64(len(batch)))
		}
		writeElapsed := time.Since(writeStart)
		close(done)
		wg.Wait()

		consistent := store.Current().ID() == uint64(nBatches+1)
		var samples [3][]time.Duration
		var reads [3]int
		for _, rd := range readers {
			consistent = consistent && rd.ok
			for kind := 0; kind < 3; kind++ {
				reads[kind] += rd.reads[kind]
				samples[kind] = append(samples[kind], rd.samples[kind]...)
			}
		}
		totalReads := reads[0] + reads[1] + reads[2]
		for kind, name := range serveKinds {
			lat := summarize(samples[kind])
			ratio := 0.0
			if lat.p50 > 0 {
				ratio = float64(lat.p99) / float64(lat.p50)
			}
			t.AddRow(fmt.Sprint(nReaders), name,
				fmt.Sprint(reads[kind]),
				fmt.Sprintf("%.0f", float64(reads[kind])/writeElapsed.Seconds()),
				fmtMicros(lat.p50), fmtMicros(lat.p99), fmtMicros(lat.max),
				fmt.Sprintf("%.1fx", ratio),
				fmt.Sprintf("%.0f", float64(writeOps.Load())/writeElapsed.Seconds()),
				fmt.Sprintf("%.0f", float64(nBatches)/writeElapsed.Seconds()),
				fmt.Sprintf("%.0f", float64(totalReads)/float64(nBatches)),
				fmt.Sprintf("%v", consistent))
		}
		store.Close()
	}
	t.Notes = append(t.Notes,
		"one writer streams sliding-window ApplyBatch commits for the whole run; readers never take a lock",
		"consistent = generation ids monotonic per reader, every read valid, final generation = initial + batches",
		"reads/s is per-kind (each reader cycles result, topk, regret every iteration)",
		"needs GOMAXPROCS > readers to show concurrency; single-core runs interleave rather than overlap",
		latResolutionNote)
	return t
}

// serveUtilities samples nonnegative unit-sum preference vectors for the
// query-serving read kinds.
func serveUtilities(d, count int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed + 7))
	out := make([][]float64, count)
	for i := range out {
		u := make([]float64, d)
		sum := 0.0
		for j := range u {
			u[j] = rng.Float64()
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
		out[i] = u
	}
	return out
}
