package bench

import (
	"time"

	"fdrms/internal/dataset"
	"fdrms/internal/obs"
)

// Options controls experiment scale. Zero values are replaced by defaults
// via withDefaults.
type Options struct {
	// Scale is the fraction of the paper's dataset sizes to use
	// (1.0 = full paper scale). Default 0.05.
	Scale float64
	// SynthN is the synthetic dataset size before scaling (paper: 100K).
	SynthN int
	// SynthD is the default synthetic dimensionality (paper: 6).
	SynthD int
	// MRRSamples is the utility test set size for quality evaluation
	// (paper: 500K). Default 20000.
	MRRSamples int
	// MaxRecomputes caps how many static recomputations are actually timed
	// per run (see workload.RunStatic). Default 10.
	MaxRecomputes int
	// StaticBudget skips a static algorithm on a dataset when a single
	// from-scratch run exceeds this duration (reported as "-", like the
	// paper's missing curves). Default 20s.
	StaticBudget time.Duration
	// M is the FD-RMS utility-sample upper bound. Default 2048.
	M int
	// Seed drives all sampling.
	Seed int64
	// Metrics, when set, instruments every benchmarked instance against this
	// registry (engine, cover, pool — and the serving layers where an
	// experiment builds them), accumulating across runs. Nil benchmarks
	// uninstrumented; the throughput delta between the two is itself a
	// measurement (see rmsbench -metrics).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.SynthN == 0 {
		o.SynthN = 100000
	}
	if o.SynthD == 0 {
		o.SynthD = 6
	}
	if o.MRRSamples == 0 {
		o.MRRSamples = 20000
	}
	if o.MaxRecomputes == 0 {
		o.MaxRecomputes = 10
	}
	if o.StaticBudget == 0 {
		o.StaticBudget = 20 * time.Second
	}
	if o.M == 0 {
		o.M = 2048
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// QuickOptions returns a tiny configuration for smoke benchmarks
// (bench_test.go): small datasets, few samples, still exercising every
// code path.
func QuickOptions() Options {
	return Options{
		Scale:         0.02,
		SynthN:        25000,
		SynthD:        6,
		MRRSamples:    2000,
		MaxRecomputes: 3,
		StaticBudget:  5 * time.Second,
		M:             1024,
		Seed:          1,
	}
}

// DatasetNames lists the six evaluation datasets in the paper's order.
var DatasetNames = []string{"BB", "AQ", "CT", "Movie", "Indep", "AntiCor"}

// loadDataset materializes a named dataset at the configured scale.
func loadDataset(name string, o Options) *dataset.Dataset {
	switch name {
	case "Indep":
		return dataset.Indep(scaled(o.SynthN, o.Scale), o.SynthD, o.Seed)
	case "AntiCor":
		return dataset.AntiCor(scaled(o.SynthN, o.Scale), o.SynthD, o.Seed)
	default:
		return dataset.Simulated(name, o.Scale, o.Seed)
	}
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 64 {
		v = 64
	}
	return v
}

// defaultR returns the paper's per-dataset result size for Figs. 5–8:
// r = 20 on BB (its regret hits zero above r = 25), r = 50 elsewhere.
func defaultR(name string) int {
	if name == "BB" {
		return 20
	}
	return 50
}

// capR bounds the result size to a twenty-fifth of the database so that
// smoke-scale runs stay meaningful — a cover of r sets needs at least r
// tuples that are extreme in some direction, which tiny samples lack. At
// the paper's scale the cap never binds (n/25 >> 100 for every
// configuration the paper uses).
func capR(r, n int) int {
	c := n / 25
	if c < 2 {
		c = 2
	}
	if r > c {
		return c
	}
	return r
}

// capRs maps a result-size grid through capR, deduplicating while keeping
// order (small smoke datasets can collapse several grid values to the cap).
func capRs(rs []int, n int) []int {
	var out []int
	seen := make(map[int]bool)
	for _, r := range rs {
		c := capR(r, n)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// fig7R returns Fig. 7's result sizes: r = 10 on BB and Indep, 50 elsewhere.
func fig7R(name string) int {
	if name == "BB" || name == "Indep" {
		return 10
	}
	return 50
}
