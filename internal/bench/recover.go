package bench

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/topk"
	"fdrms/internal/wal"
)

// Recovery measures the durability subsystem end to end on the
// anti-correlated workload: ingest throughput under both sync policies,
// checkpoint write and load cost, WAL replay throughput, and the headline
// comparison — time-to-recover (checkpoint load + tail replay) against
// cold re-initialization over the same final database, which is what a
// restart without durability would have to pay.
//
// The experiment builds the store, ingests one stream phase with per-batch
// fsync, checkpoints, ingests a second phase with syncing deferred (one
// fsync at the end), checkpoints again (the periodic checkpoint any durable
// deployment runs), ingests a final crash-gap phase — the updates that
// arrived since the last checkpoint, ~1.25% of the database — and then
// simulates a crash and recovers from the files. The recovered state is
// compared bit for bit against the pre-crash state (the "state==live"
// column), the same contract the unit tests enforce at every truncation
// offset.
func Recovery(o Options) *Table {
	o = o.withDefaults()
	initial, fresh, cfg := batchSetup(o)
	dim := o.SynthD
	const ingestBatch = 64
	third := len(initial) / 3
	a, b := (len(fresh)*9)/20, (len(fresh)*18)/20 // 45% / 45% / 10% split
	phase1 := mixedStream(initial, fresh[:a])
	phase2 := mixedStream(initial[third:], fresh[a:b])
	gap := mixedStream(initial[2*third:], fresh[b:])

	dir, err := os.MkdirTemp("", "fdrms-recover-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	t := &Table{
		Title: fmt.Sprintf("Durability: ingest, checkpoint, crash recovery (AntiCor, n=%d, d=%d, M=%d, r=%d)",
			len(initial), dim, o.M, cfg.R),
		Header: []string{"stage", "tuples", "ops", "elapsed", "ops/s", "vs cold re-init", "state==live"},
	}
	row := func(stage string, tuples, ops int, elapsed time.Duration, rate float64, vs, okCol string) {
		opsCell := "-"
		if ops >= 0 {
			opsCell = fmt.Sprint(ops)
		}
		t.AddRow(stage, fmt.Sprint(tuples), opsCell, fmtDur(elapsed), fmt.Sprintf("%.0f", rate), vs, okCol)
	}

	// Initialization of the store being made durable (also the genesis
	// checkpoint every durable directory starts with).
	start := time.Now()
	f, err := core.New(dim, initial, cfg)
	if err != nil {
		panic(err)
	}
	initElapsed := time.Since(start)
	row("init", len(initial), -1, initElapsed, float64(len(initial))/initElapsed.Seconds(), "-", "-")
	if err := wal.WriteCheckpoint(dir, 0, core.EncodeSnapshot(nil, f.Snapshot())); err != nil {
		panic(err)
	}

	// ingest measures one phase of log-before-apply ingestion.
	ingest := func(log *wal.Log, stream []topk.Op) time.Duration {
		start := time.Now()
		for i := 0; i < len(stream); i += ingestBatch {
			j := i + ingestBatch
			if j > len(stream) {
				j = len(stream)
			}
			if _, err := log.Append(stream[i:j]); err != nil {
				panic(err)
			}
			f.ApplyBatch(stream[i:j])
		}
		if err := log.Sync(); err != nil {
			panic(err)
		}
		return time.Since(start)
	}

	log, err := wal.Open(dir, wal.Options{SyncEveryAppend: true})
	if err != nil {
		panic(err)
	}
	elapsed := ingest(log, phase1)
	row("ingest fsync=batch", f.Len(), len(phase1), elapsed, float64(len(phase1))/elapsed.Seconds(), "-", "-")

	// Mid-stream checkpoint: capture + encode + atomic write + log prune.
	start = time.Now()
	ckptSeq := log.LastSeq()
	payload := core.EncodeSnapshot(nil, f.Snapshot())
	if err := wal.WriteCheckpoint(dir, ckptSeq, payload); err != nil {
		panic(err)
	}
	if err := log.Prune(ckptSeq); err != nil {
		panic(err)
	}
	ckptElapsed := time.Since(start)
	row("checkpoint", f.Len(), -1, ckptElapsed, float64(f.Len())/ckptElapsed.Seconds(), "-", "-")

	// Second phase with deferred syncing (one fsync at the end), so the
	// sync-per-batch cost is visible by contrast.
	if err := log.Close(); err != nil {
		panic(err)
	}
	log, err = wal.Open(dir, wal.Options{})
	if err != nil {
		panic(err)
	}
	elapsed = ingest(log, phase2)
	row("ingest fsync=off", f.Len(), len(phase2), elapsed, float64(len(phase2))/elapsed.Seconds(), "-", "-")

	// The periodic checkpoint, then the crash gap: the updates that arrive
	// between the last checkpoint and the crash are what recovery replays.
	ckptSeq = log.LastSeq()
	if err := wal.WriteCheckpoint(dir, ckptSeq, core.EncodeSnapshot(nil, f.Snapshot())); err != nil {
		panic(err)
	}
	if err := log.Prune(ckptSeq); err != nil {
		panic(err)
	}
	elapsed = ingest(log, gap)
	row("ingest crash gap", f.Len(), len(gap), elapsed, float64(len(gap))/elapsed.Seconds(), "-", "-")
	if err := log.Close(); err != nil {
		panic(err)
	}

	// The alternative to recovery: cold re-initialization over the final
	// database — the baseline of the "vs cold re-init" column.
	finalState := core.EncodeSnapshot(nil, f.Snapshot())
	finalPts := f.Points()
	start = time.Now()
	cold, err := core.New(dim, finalPts, cfg)
	if err != nil {
		panic(err)
	}
	reinitElapsed := time.Since(start)
	cold.Close()
	reinitRate := float64(len(finalPts)) / reinitElapsed.Seconds()
	row("cold re-init", len(finalPts), -1, reinitElapsed, reinitRate, "1.00x", "-")

	// Simulated crash: the in-memory structure is gone; recover from disk.
	f.Close()
	f = nil
	start = time.Now()
	seq, payload, ok, err := wal.NewestCheckpoint(dir)
	if err != nil || !ok {
		panic(fmt.Sprintf("no recoverable checkpoint: ok=%v err=%v", ok, err))
	}
	snap, err := core.DecodeSnapshot(payload)
	if err != nil {
		panic(err)
	}
	rec, err := core.Restore(snap, cfg.Shards)
	if err != nil {
		panic(err)
	}
	// The load allocated the whole engine; collect now so its GC debt is
	// billed to the load, not smeared over the (much smaller) replay phase.
	runtime.GC()
	loadElapsed := time.Since(start)
	row("checkpoint load", rec.Len(), -1, loadElapsed, float64(rec.Len())/loadElapsed.Seconds(),
		fmt.Sprintf("%.2fx", (float64(rec.Len())/loadElapsed.Seconds())/reinitRate), "-")

	log, err = wal.Open(dir, wal.Options{})
	if err != nil {
		panic(err)
	}
	start = time.Now()
	replayed := 0
	// The same coalesced replay path rms.OpenDurable recovery uses, so the
	// bench measures exactly what ships (4096-op coalescing, continuity
	// guard included).
	err = log.ReplayBatched(seq, 4096, func(ops []topk.Op) error {
		rec.ApplyBatch(ops)
		replayed += len(ops)
		return nil
	})
	if err != nil {
		panic(err)
	}
	replayElapsed := time.Since(start)
	if err := log.Close(); err != nil {
		panic(err)
	}
	replayRate := float64(replayed) / replayElapsed.Seconds()
	row("wal replay", rec.Len(), replayed, replayElapsed, replayRate,
		fmt.Sprintf("%.2fx", replayRate/reinitRate), "-")

	recovered := core.EncodeSnapshot(nil, rec.Snapshot())
	total := loadElapsed + replayElapsed
	row("recover total", rec.Len(), replayed, total, float64(replayed)/total.Seconds(),
		fmt.Sprintf("%.2fx", reinitElapsed.Seconds()/total.Seconds()),
		fmt.Sprint(bytes.Equal(recovered, finalState)))
	rec.Close()

	t.Notes = append(t.Notes,
		"vs cold re-init: rate rows compare tuples-or-ops/s against re-init's tuples/s; recover total compares wall time (re-init time / recover time)",
		"state==live: the recovered engine state (result, covers, counters) is byte-identical to the pre-crash snapshot",
		fmt.Sprintf("ingest batches of %d ops; fsync=batch syncs per batch, fsync=off once at phase end", ingestBatch),
		fmt.Sprintf("crash gap: %d ops arrived after the last periodic checkpoint; recovery = checkpoint load + replay of that gap", len(gap)))
	return t
}
