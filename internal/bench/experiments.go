package bench

import (
	"fmt"
	"math"
	"time"

	"fdrms/internal/baseline"
	"fdrms/internal/core"
	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/skyline"
	"fdrms/internal/tune"
	"fdrms/internal/workload"
)

// Table1 reproduces Table I: per-dataset n, d and skyline size, with the
// paper's full-scale numbers alongside for comparison.
func Table1(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title:  "Table I: statistics of datasets",
		Header: []string{"dataset", "n", "d", "#skylines", "sky%", "paper-n", "paper-#sky", "paper-sky%"},
		Notes: []string{
			fmt.Sprintf("real datasets simulated at scale %.2f (see DESIGN.md §1.2)", o.Scale),
		},
	}
	for _, name := range DatasetNames {
		ds := loadDataset(name, o)
		sky := len(skyline.Compute(ds.Points))
		row := []string{
			name,
			fmt.Sprintf("%d", ds.N()),
			fmt.Sprintf("%d", ds.Dim),
			fmt.Sprintf("%d", sky),
			fmt.Sprintf("%.2f%%", 100*float64(sky)/float64(ds.N())),
		}
		if spec, ok := dataset.RealSpecByName(name); ok {
			row = append(row,
				fmt.Sprintf("%d", spec.PaperN),
				fmt.Sprintf("%d", spec.PaperSky),
				fmt.Sprintf("%.2f%%", 100*float64(spec.PaperSky)/float64(spec.PaperN)))
		} else {
			row = append(row, "100K-1M", "see Fig.4", "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig4 reproduces Fig. 4: skyline sizes of the synthetic families, varying
// the dimensionality (left) and the dataset size (right).
func Fig4(o Options) []*Table {
	o = o.withDefaults()
	byD := &Table{
		Title:  "Fig 4 (left): skyline size vs dimensionality (n=" + fmt.Sprint(scaled(o.SynthN, o.Scale)) + ")",
		Header: []string{"d", "Indep", "AntiCor"},
	}
	n := scaled(o.SynthN, o.Scale)
	for d := 4; d <= 10; d++ {
		i := len(skyline.Compute(dataset.Indep(n, d, o.Seed).Points))
		a := len(skyline.Compute(dataset.AntiCor(n, d, o.Seed).Points))
		byD.AddRow(fmt.Sprint(d), fmt.Sprint(i), fmt.Sprint(a))
	}
	byN := &Table{
		Title:  "Fig 4 (right): skyline size vs dataset size (d=" + fmt.Sprint(o.SynthD) + ")",
		Header: []string{"n", "Indep", "AntiCor"},
	}
	for mult := 1; mult <= 10; mult++ {
		nn := scaled(o.SynthN*mult, o.Scale)
		i := len(skyline.Compute(dataset.Indep(nn, o.SynthD, o.Seed).Points))
		a := len(skyline.Compute(dataset.AntiCor(nn, o.SynthD, o.Seed).Points))
		byN.AddRow(fmt.Sprint(nn), fmt.Sprint(i), fmt.Sprint(a))
	}
	return []*Table{byD, byN}
}

// epsLadder is the paper's ε grid (Section III-C); see tune.EpsLadder.
func epsLadder() []float64 { return tune.EpsLadder() }

// Fig5 reproduces Fig. 5: FD-RMS update time and regret as ε sweeps the
// ladder, one table per dataset (k=1, r=20 on BB / 50 elsewhere).
func Fig5(o Options, names ...string) []*Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = DatasetNames
	}
	var out []*Table
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(defaultR(name), ds.N())
		evs := workload.NewEvaluators(w, 1, o.MRRSamples, o.Seed+100)
		t := &Table{
			Title:  fmt.Sprintf("Fig 5: effect of eps on FD-RMS — %s (k=1, r=%d)", name, r),
			Header: []string{"eps", "update-time", "mrr", "m"},
		}
		for _, eps := range epsLadder() {
			cfg := core.Config{K: 1, R: r, Eps: eps, M: o.M, Seed: o.Seed}
			stats, err := workload.RunFDRMS(w, cfg)
			if err != nil {
				t.AddRow(fmt.Sprintf("%g", eps), "error", err.Error(), "-")
				continue
			}
			t.AddRow(fmt.Sprintf("%g", eps), fmtDur(stats.AvgUpdate),
				fmtMRR(evs.MeanMRR(stats)), fmt.Sprint(stats.FinalStats.M))
			if stats.FinalStats.M >= o.M {
				t.Notes = append(t.Notes,
					fmt.Sprintf("eps=%g saturated m=M=%d; larger eps values use the same sample budget", eps, o.M))
				break // the paper stops growing eps once M is exhausted
			}
		}
		out = append(out, t)
	}
	return out
}

// TuneEps is the paper's trial-and-error ε selection; see tune.TuneEps
// (re-exported here so the experiment code reads like the paper's text).
func TuneEps(pts []geom.Point, dim, k, r, m int, seed int64) float64 {
	return tune.TuneEps(pts, dim, k, r, m, seed)
}

// staticFeasible estimates whether one from-scratch run of alg fits the
// budget, probing growing prefixes of the database and extrapolating.
// Skipped combinations mirror the paper's missing curves (e.g., GREEDY
// beyond r=80, DMM beyond d=7).
func staticFeasible(alg baseline.Algorithm, pts []geom.Point, dim, k, r int, budget time.Duration) bool {
	sizes := []int{250, 1000, 4000, len(pts)}
	var lastT time.Duration
	lastN := 0
	for _, n := range sizes {
		if n > len(pts) {
			n = len(pts)
		}
		if n <= lastN {
			continue
		}
		if lastN > 0 {
			// Extrapolate with the measured growth exponent (at least linear).
			alpha := 1.0
			if lastT > 0 {
				alpha = 2.0
			}
			proj := time.Duration(float64(lastT) * math.Pow(float64(n)/float64(lastN), alpha))
			if proj > budget {
				return false
			}
		}
		start := time.Now()
		alg.Compute(pts[:n], dim, k, r)
		lastT = time.Since(start)
		if lastT > budget {
			return false
		}
		lastN = n
	}
	return true
}

// runOne executes one (algorithm, workload) cell for the figure tables.
func runOne(name string, alg baseline.Algorithm, w *workload.Workload,
	evs *workload.Evaluators, k, r int, o Options, fdEps float64) (timeStr, mrrStr string) {
	if name == "FD-RMS" {
		cfg := core.Config{K: k, R: r, Eps: fdEps, M: o.M, Seed: o.Seed}
		stats, err := workload.RunFDRMS(w, cfg)
		if err != nil {
			return "error", "-"
		}
		return fmtDur(stats.AvgUpdate), fmtMRR(evs.MeanMRR(stats))
	}
	if !alg.SupportsK(k) {
		return "-", "-"
	}
	if !staticFeasible(alg, w.Initial, w.Dim, k, r, o.StaticBudget) {
		return "-", "-" // too slow at this scale, as in the paper's gaps
	}
	stats := workload.RunStatic(w, alg, k, r, o.MaxRecomputes)
	return fmtDur(stats.AvgUpdate), fmtMRR(evs.MeanMRR(stats))
}

// Fig6 reproduces Fig. 6: update time and regret of every algorithm as the
// result size r varies (k = 1), one table per dataset.
func Fig6(o Options, names ...string) []*Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = DatasetNames
	}
	algs := baseline.All(o.Seed)
	var out []*Table
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		evs := workload.NewEvaluators(w, 1, o.MRRSamples, o.Seed+200)
		rs := []int{10, 40, 70, 100}
		if name == "BB" {
			rs = []int{5, 10, 15, 20, 25}
		}
		rs = capRs(rs, ds.N())
		t := &Table{
			Title:  fmt.Sprintf("Fig 6: varying result size r — %s (k=1)", name),
			Header: []string{"r", "algorithm", "update-time", "mrr"},
		}
		for _, r := range rs {
			eps := TuneEps(w.Initial, w.Dim, 1, r, o.M, o.Seed)
			tm, mr := runOne("FD-RMS", nil, w, evs, 1, r, o, eps)
			t.AddRow(fmt.Sprint(r), "FD-RMS", tm, mr)
			for _, alg := range algs {
				tm, mr := runOne(alg.Name(), alg, w, evs, 1, r, o, eps)
				t.AddRow(fmt.Sprint(r), alg.Name(), tm, mr)
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig7 reproduces Fig. 7: update time and regret as k varies from 1 to 5,
// for the k-capable algorithms (FD-RMS, Greedy*, eps-Kernel, HS).
func Fig7(o Options, names ...string) []*Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = DatasetNames
	}
	algs := []baseline.Algorithm{
		baseline.NewGreedyStar(o.Seed),
		baseline.NewEpsKernel(o.Seed),
		baseline.NewHittingSet(o.Seed),
	}
	var out []*Table
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(fig7R(name), ds.N())
		t := &Table{
			Title:  fmt.Sprintf("Fig 7: varying k — %s (r=%d)", name, r),
			Header: []string{"k", "algorithm", "update-time", "mrr"},
		}
		for k := 1; k <= 5; k++ {
			evs := workload.NewEvaluators(w, k, o.MRRSamples, o.Seed+300+int64(k))
			eps := TuneEps(w.Initial, w.Dim, k, r, o.M, o.Seed)
			tm, mr := runOne("FD-RMS", nil, w, evs, k, r, o, eps)
			t.AddRow(fmt.Sprint(k), "FD-RMS", tm, mr)
			for _, alg := range algs {
				tm, mr := runOne(alg.Name(), alg, w, evs, k, r, o, eps)
				t.AddRow(fmt.Sprint(k), alg.Name(), tm, mr)
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig8 reproduces Fig. 8: scalability in the dimensionality d (tables a, b)
// and the dataset size n (tables c, d) on the synthetic families
// (k=1, r=50, all algorithms).
func Fig8(o Options) []*Table {
	return append(Fig8Dim(o), Fig8Size(o)...)
}

// Fig8Dim is the dimensionality half of Fig. 8 (tables a and b).
func Fig8Dim(o Options) []*Table {
	o = o.withDefaults()
	algs := baseline.All(o.Seed)
	r := 50
	var out []*Table
	for _, family := range []string{"Indep", "AntiCor"} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 8 (a/b): varying dimensionality d — %s (k=1, r=%d, n=%d)", family, r, scaled(o.SynthN, o.Scale)),
			Header: []string{"d", "algorithm", "update-time", "mrr"},
		}
		for d := 4; d <= 10; d += 2 {
			var ds *dataset.Dataset
			if family == "Indep" {
				ds = dataset.Indep(scaled(o.SynthN, o.Scale), d, o.Seed)
			} else {
				ds = dataset.AntiCor(scaled(o.SynthN, o.Scale), d, o.Seed)
			}
			w := workload.Generate(ds, o.Seed)
			evs := workload.NewEvaluators(w, 1, o.MRRSamples, o.Seed+400+int64(d))
			rr := capR(r, ds.N())
			eps := TuneEps(w.Initial, w.Dim, 1, rr, o.M, o.Seed)
			tm, mr := runOne("FD-RMS", nil, w, evs, 1, rr, o, eps)
			t.AddRow(fmt.Sprint(d), "FD-RMS", tm, mr)
			for _, alg := range algs {
				tm, mr := runOne(alg.Name(), alg, w, evs, 1, rr, o, eps)
				t.AddRow(fmt.Sprint(d), alg.Name(), tm, mr)
			}
		}
		out = append(out, t)
	}
	return out
}

// Fig8Size is the dataset-size half of Fig. 8 (tables c and d).
func Fig8Size(o Options) []*Table {
	o = o.withDefaults()
	algs := baseline.All(o.Seed)
	r := 50
	var out []*Table
	for _, family := range []string{"Indep", "AntiCor"} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 8 (c/d): varying dataset size n — %s (k=1, r=%d, d=%d)", family, r, o.SynthD),
			Header: []string{"n", "algorithm", "update-time", "mrr"},
		}
		for _, mult := range []int{1, 2, 5, 10} {
			n := scaled(o.SynthN*mult, o.Scale)
			var ds *dataset.Dataset
			if family == "Indep" {
				ds = dataset.Indep(n, o.SynthD, o.Seed)
			} else {
				ds = dataset.AntiCor(n, o.SynthD, o.Seed)
			}
			w := workload.Generate(ds, o.Seed)
			evs := workload.NewEvaluators(w, 1, o.MRRSamples, o.Seed+500+int64(mult))
			rr := capR(r, ds.N())
			eps := TuneEps(w.Initial, w.Dim, 1, rr, o.M, o.Seed)
			tm, mr := runOne("FD-RMS", nil, w, evs, 1, rr, o, eps)
			t.AddRow(fmt.Sprint(n), "FD-RMS", tm, mr)
			for _, alg := range algs {
				tm, mr := runOne(alg.Name(), alg, w, evs, 1, rr, o, eps)
				t.AddRow(fmt.Sprint(n), alg.Name(), tm, mr)
			}
		}
		out = append(out, t)
	}
	return out
}
