// Package bench regenerates every table and figure of the paper's
// evaluation (Section IV): Table I (dataset statistics), Fig. 4 (skyline
// sizes of the synthetic families), Fig. 5 (effect of ε on FD-RMS), Fig. 6
// (effect of the result size r across all algorithms), Fig. 7 (effect of
// k), and Fig. 8 (scalability in d and n) — plus the ablation studies
// called out in DESIGN.md.
//
// Datasets are scaled down from the paper's sizes by Options.Scale (default
// 1/20) so the whole suite runs on a laptop; the comparisons are relative
// (who wins, by what factor, where the crossovers are), which scaling
// preserves. Combinations whose static baseline would exceed the
// per-recompute cost budget are skipped and reported as "-", mirroring the
// paper's missing entries for algorithms that could not finish.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"fdrms/internal/topk"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// jsonTable is the machine-readable form of one table: rows become objects
// keyed by the column headers, so downstream tooling (perf-trajectory
// dashboards, CI gates) reads cells by name instead of position.
type jsonTable struct {
	Title  string              `json:"title"`
	Header []string            `json:"header"`
	Rows   []map[string]string `json:"rows"`
	Notes  []string            `json:"notes,omitempty"`
}

// jsonReport is the top-level document WriteJSON produces.
type jsonReport struct {
	Experiment string      `json:"experiment"`
	Meta       RunMeta     `json:"meta"`
	Tables     []jsonTable `json:"tables"`
}

// RunMeta identifies the code and machine state behind one BENCH_*.json, so
// reports from different commits and runners are comparable: a number
// without its git rev, GOMAXPROCS, and scale is noise.
type RunMeta struct {
	GitRev     string  `json:"git_rev,omitempty"` // short HEAD rev, "-dirty" suffixed
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Scale      float64 `json:"scale"`
	M          int     `json:"m"`
	Seed       int64   `json:"seed"`
	Timestamp  string  `json:"timestamp"` // RFC3339, UTC
}

// CollectMeta gathers the run metadata for o. The git revision is
// best-effort: absent git or a checkout, the field is simply omitted.
func CollectMeta(o Options) RunMeta {
	o = o.withDefaults()
	m := RunMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      o.Scale,
		M:          o.M,
		Seed:       o.Seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitRev = strings.TrimSpace(string(out))
		// Porcelain, not 'diff --quiet': untracked source files also make the
		// build differ from the named rev.
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err != nil || len(st) > 0 {
			m.GitRev += "-dirty"
		}
	}
	return m
}

// WriteJSON writes the tables of one experiment as an indented JSON
// document (see jsonTable for the shape) to path.
//
// Every row carries "gomaxprocs" and "shards" keys: tables that sweep them
// (the scaling experiment) provide their own columns; all other rows get the
// process-wide values stamped in, so a dashboard diffing ops/s across
// commits can always condition on the parallelism that produced the number.
func WriteJSON(path, experiment string, meta RunMeta, tables []*Table) error {
	gmp := fmt.Sprint(runtime.GOMAXPROCS(0))
	shards := fmt.Sprint(topk.DefaultShards())
	rep := jsonReport{Experiment: experiment, Meta: meta, Tables: make([]jsonTable, 0, len(tables))}
	for _, t := range tables {
		jt := jsonTable{Title: t.Title, Header: t.Header, Notes: t.Notes,
			Rows: make([]map[string]string, 0, len(t.Rows))}
		for _, row := range t.Rows {
			m := make(map[string]string, len(row)+2)
			for i, c := range row {
				if i < len(t.Header) {
					m[t.Header[i]] = c
				}
			}
			if _, ok := m["gomaxprocs"]; !ok {
				m["gomaxprocs"] = gmp
			}
			if _, ok := m["shards"]; !ok {
				m["shards"] = shards
			}
			jt.Rows = append(jt.Rows, m)
		}
		rep.Tables = append(rep.Tables, jt)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fmtDur renders a duration as the paper's millisecond axis.
func fmtDur(d time.Duration) string {
	ms := float64(d.Nanoseconds()) / 1e6
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2fms", ms)
	default:
		return fmt.Sprintf("%.4fms", ms)
	}
}

func fmtMRR(v float64) string { return fmt.Sprintf("%.4f", v) }
