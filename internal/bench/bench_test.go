package bench

import (
	"strings"
	"testing"
	"time"

	"fdrms/internal/baseline"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n1"}}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(1500 * time.Microsecond); got != "1.50ms" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(150 * time.Millisecond); got != "150ms" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(15 * time.Microsecond); got != "0.0150ms" {
		t.Fatalf("fmtDur = %q", got)
	}
}

func TestTable1Quick(t *testing.T) {
	tb := Table1(QuickOptions())
	if len(tb.Rows) != len(DatasetNames) {
		t.Fatalf("%d rows", len(tb.Rows))
	}
}

func TestFig4Quick(t *testing.T) {
	ts := Fig4(QuickOptions())
	if len(ts) != 2 {
		t.Fatalf("%d tables", len(ts))
	}
	if len(ts[0].Rows) != 7 || len(ts[1].Rows) != 10 {
		t.Fatalf("row counts: %d, %d", len(ts[0].Rows), len(ts[1].Rows))
	}
}

func TestFig5QuickSingleDataset(t *testing.T) {
	ts := Fig5(QuickOptions(), "Indep")
	if len(ts) != 1 {
		t.Fatalf("%d tables", len(ts))
	}
	if len(ts[0].Rows) < 3 {
		t.Fatalf("eps sweep too short: %d rows\n%s", len(ts[0].Rows), ts[0])
	}
}

func TestFig6QuickSingleDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full algorithm sweep is slow")
	}
	ts := Fig6(QuickOptions(), "Indep")
	if len(ts) != 1 {
		t.Fatalf("%d tables", len(ts))
	}
	// Each r value yields one row per algorithm (FD-RMS + 8 baselines); the
	// r grid itself depends on the smoke-scale cap.
	if n := len(ts[0].Rows); n%9 != 0 || n < 18 {
		t.Fatalf("%d rows\n%s", n, ts[0])
	}
}

func TestFig7QuickSingleDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("full k sweep is slow")
	}
	ts := Fig7(QuickOptions(), "Indep")
	if len(ts) != 1 {
		t.Fatalf("%d tables", len(ts))
	}
	if len(ts[0].Rows) != 5*4 {
		t.Fatalf("%d rows\n%s", len(ts[0].Rows), ts[0])
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := QuickOptions()
	if tb := AblationCone(o, "Indep"); len(tb.Rows) != 1 {
		t.Fatalf("cone ablation rows: %d", len(tb.Rows))
	}
	if tb := AblationTopK(o, "Indep"); len(tb.Rows) != 1 {
		t.Fatalf("topk ablation rows: %d", len(tb.Rows))
	}
	if tb := AblationCover(o, "Indep"); len(tb.Rows) != 2 {
		t.Fatalf("cover ablation rows: %d", len(tb.Rows))
	}
}

func TestStaticFeasible(t *testing.T) {
	o := QuickOptions()
	ds := loadDataset("Indep", o)
	// Sphere easily fits a generous budget...
	if !staticFeasible(newSphereForTest(), ds.Points, ds.Dim, 1, 10, 10*time.Second) {
		t.Fatal("Sphere should be feasible at smoke scale")
	}
	// ...and nothing fits a sub-microsecond budget.
	if staticFeasible(newSphereForTest(), ds.Points, ds.Dim, 1, 10, time.Microsecond) {
		t.Fatal("nothing is feasible in a microsecond")
	}
}

// The throughput tables double as equivalence checks: every batched run
// must report result==seq true. Tiny scale keeps this a smoke test.
func TestThroughputTablesEquivalent(t *testing.T) {
	o := QuickOptions()
	o.Scale = 0.01
	o.M = 256
	for _, tb := range []*Table{BatchThroughput(o, 1, 8), SlidingWindow(o, 1, 8)} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", tb.Title)
		}
		for _, row := range tb.Rows {
			if got := row[len(row)-1]; got != "true" {
				t.Fatalf("%s: row %v not equivalent to sequential", tb.Title, row)
			}
		}
	}
}

func TestCapR(t *testing.T) {
	if capR(50, 100000) != 50 {
		t.Fatal("cap must not bind at paper scale")
	}
	if got := capR(50, 500); got != 20 {
		t.Fatalf("capR(50, 500) = %d, want 20", got)
	}
	if got := capR(50, 10); got != 2 {
		t.Fatalf("capR floor = %d, want 2", got)
	}
	rs := capRs([]int{10, 40, 70, 100}, 500)
	if len(rs) != 2 || rs[0] != 10 || rs[1] != 20 {
		t.Fatalf("capRs = %v", rs)
	}
}

func TestNonlinearQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("nonlinear cross-scoring is slow")
	}
	ts := Nonlinear(QuickOptions(), "Indep")
	if len(ts) != 1 {
		t.Fatalf("%d tables", len(ts))
	}
	// 4 tuned classes + the Sphere reference row.
	if len(ts[0].Rows) != 5 {
		t.Fatalf("%d rows\n%s", len(ts[0].Rows), ts[0])
	}
}

func TestTuneEpsReturnsLadderValue(t *testing.T) {
	o := QuickOptions()
	ds := loadDataset("Indep", o)
	eps := TuneEps(ds.Points, ds.Dim, 1, 10, o.M, o.Seed)
	if eps <= 0 || eps > 0.2 {
		t.Fatalf("tuned eps = %v", eps)
	}
}

func newSphereForTest() baseline.Algorithm { return baseline.NewSphere(1) }

// The serving table doubles as a consistency check: every row must report
// consistent (monotonic generations, valid reads, expected final version).
func TestServeQuickConsistent(t *testing.T) {
	o := QuickOptions()
	o.Scale = 0.01
	o.M = 256
	tb := Serve(o)
	if len(tb.Rows) != 6 {
		t.Fatalf("serve table rows: %d, want 6 (2 reader counts x 3 kinds)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if got := row[len(row)-1]; got != "true" {
			t.Fatalf("serve row %v not consistent", row)
		}
	}
}
