package bench

import (
	"fmt"
	"time"

	"fdrms/internal/core"
	"fdrms/internal/workload"
)

// AblationCover compares FD-RMS's incremental stable-cover maintenance
// against a variant that re-runs GREEDY on the set system after every
// operation (DESIGN.md §4.1). Quality stays in the same approximation
// class; the time gap is the payoff of the stability machinery.
func AblationCover(o Options, names ...string) *Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = []string{"Indep", "AntiCor"}
	}
	t := &Table{
		Title:  "Ablation: stable-cover maintenance vs per-op re-greedy",
		Header: []string{"dataset", "variant", "update-time", "mrr"},
	}
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(defaultR(name), ds.N())
		eps := TuneEps(w.Initial, w.Dim, 1, r, o.M, o.Seed)
		cfg := core.Config{K: 1, R: r, Eps: eps, M: o.M, Seed: o.Seed}
		evs := workload.NewEvaluators(w, 1, o.MRRSamples, o.Seed+600)

		stats, err := workload.RunFDRMS(w, cfg)
		if err != nil {
			t.AddRow(name, "stable", "error", err.Error())
			continue
		}
		t.AddRow(name, "stable", fmtDur(stats.AvgUpdate), fmtMRR(evs.MeanMRR(stats)))

		re, err := runRegreedy(w, cfg)
		if err != nil {
			t.AddRow(name, "re-greedy", "error", err.Error())
			continue
		}
		t.AddRow(name, "re-greedy", fmtDur(re.AvgUpdate), fmtMRR(evs.MeanMRR(re)))
	}
	return t
}

// runRegreedy replays the workload rebuilding the cover from scratch after
// every operation.
func runRegreedy(w *workload.Workload, cfg core.Config) (*workload.RunStats, error) {
	f, err := core.New(w.Dim, w.Initial, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stats := &workload.RunStats{Algorithm: "FD-RMS-regreedy", TotalOps: len(w.Ops)}
	var total time.Duration
	cps := w.Checkpoints()
	next := 0
	for i, op := range w.Ops {
		start := time.Now()
		if op.Insert {
			f.Insert(op.Point)
		} else {
			f.Delete(op.ID)
		}
		f.RebuildCover()
		total += time.Since(start)
		if next < len(cps) && i+1 == cps[next] {
			stats.Checkpoints = append(stats.Checkpoints, workload.Checkpoint{OpIndex: i + 1, Result: f.Result()})
			next++
		}
	}
	if len(w.Ops) > 0 {
		stats.AvgUpdate = total / time.Duration(len(w.Ops))
	}
	return stats, nil
}

// AblationCone measures how many utilities the cone-tree utility index
// actually evaluates per insertion versus the total M the engine maintains
// (DESIGN.md §4.2). The gap is the pruning payoff of Section III-C's UI.
func AblationCone(o Options, names ...string) *Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = []string{"Indep", "AntiCor"}
	}
	t := &Table{
		Title:  "Ablation: cone-tree pruning on insertions",
		Header: []string{"dataset", "utilities(M)", "avg-visited", "avg-affected", "visited/M"},
	}
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(defaultR(name), ds.N())
		eps := TuneEps(w.Initial, w.Dim, 1, r, o.M, o.Seed)
		f, err := core.New(w.Dim, w.Initial, core.Config{K: 1, R: r, Eps: eps, M: o.M, Seed: o.Seed})
		if err != nil {
			continue
		}
		visited, inserts := 0, 0
		for _, op := range w.Ops {
			if op.Insert {
				visited += f.Engine().VisitedOnInsert(op.Point)
				inserts++
				f.Insert(op.Point)
			} else {
				f.Delete(op.ID)
			}
		}
		eng := f.Engine()
		avgVisited := float64(visited) / float64(max(1, inserts))
		avgAffected := float64(eng.AffectedTotal) / float64(max(1, eng.InsertOps+eng.DeleteOps))
		t.AddRow(name,
			fmt.Sprint(o.M),
			fmt.Sprintf("%.1f", avgVisited),
			fmt.Sprintf("%.1f", avgAffected),
			fmt.Sprintf("%.3f", avgVisited/float64(o.M)))
		f.Close()
	}
	return t
}

// AblationTopK reports the requery rate of the top-k maintenance fast paths
// (DESIGN.md §4.4): the fraction of operations that needed a fresh
// tuple-index query instead of an incremental repair.
func AblationTopK(o Options, names ...string) *Table {
	o = o.withDefaults()
	if len(names) == 0 {
		names = []string{"Indep", "AntiCor"}
	}
	t := &Table{
		Title:  "Ablation: top-k maintenance fast paths",
		Header: []string{"dataset", "ops", "affected-total", "requeries", "requery-rate"},
	}
	for _, name := range names {
		ds := loadDataset(name, o)
		w := workload.Generate(ds, o.Seed)
		r := capR(defaultR(name), ds.N())
		eps := TuneEps(w.Initial, w.Dim, 1, r, o.M, o.Seed)
		f, err := core.New(w.Dim, w.Initial, core.Config{K: 1, R: r, Eps: eps, M: o.M, Seed: o.Seed})
		if err != nil {
			continue
		}
		for _, op := range w.Ops {
			if op.Insert {
				f.Insert(op.Point)
			} else {
				f.Delete(op.ID)
			}
		}
		eng := f.Engine()
		ops := eng.InsertOps + eng.DeleteOps
		rate := 0.0
		if eng.AffectedTotal > 0 {
			rate = float64(eng.Requeries) / float64(eng.AffectedTotal)
		}
		t.AddRow(name, fmt.Sprint(ops), fmt.Sprint(eng.AffectedTotal),
			fmt.Sprint(eng.Requeries), fmt.Sprintf("%.4f", rate))
		f.Close()
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
