// Package skyline implements the skyline operator of Börzsönyi et al.
// (ICDE 2001) in both static and fully-dynamic form.
//
// The skyline (Pareto-optimal subset) of a database is the set of tuples not
// dominated by any other tuple, where p dominates q iff p is at least as
// good on every attribute and strictly better on one. Every k-RMS result is
// a subset of the skyline, and the static baselines in the paper's
// evaluation recompute their answer whenever an insertion or deletion
// changes the skyline — the Dynamic type in this package tells the harness
// exactly when that happens.
package skyline

import (
	"sort"

	"fdrms/internal/geom"
)

// Compute returns the skyline of pts using a sort-first-then-scan algorithm:
// points are ordered by decreasing coordinate sum, which guarantees that a
// point can only be dominated by points earlier in the order, so a single
// scan against the running skyline suffices.
//
// The returned slice is in decreasing coordinate-sum order. The input is not
// modified.
func Compute(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	order := make([]geom.Point, len(pts))
	copy(order, pts)
	sort.Slice(order, func(i, j int) bool {
		return coordSum(order[i]) > coordSum(order[j])
	})
	var sky []geom.Point
	for _, p := range order {
		dominated := false
		for _, s := range sky {
			if geom.Dominates(s, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return sky
}

func coordSum(p geom.Point) float64 {
	var s float64
	for _, x := range p.Coords {
		s += x
	}
	return s
}

// Dynamic maintains the skyline of a mutable database under tuple
// insertions and deletions. All points (skyline and dominated) are retained
// so that deleting a skyline tuple can promote the points it was shielding.
type Dynamic struct {
	points map[int]geom.Point // every live tuple by ID
	sky    map[int]geom.Point // current skyline members by ID
}

// NewDynamic builds the initial skyline over pts.
func NewDynamic(pts []geom.Point) *Dynamic {
	d := &Dynamic{
		points: make(map[int]geom.Point, len(pts)),
		sky:    make(map[int]geom.Point),
	}
	for _, p := range pts {
		d.points[p.ID] = p
	}
	for _, s := range Compute(pts) {
		d.sky[s.ID] = s
	}
	return d
}

// Len returns the number of live tuples.
func (d *Dynamic) Len() int { return len(d.points) }

// SkylineSize returns the current skyline cardinality.
func (d *Dynamic) SkylineSize() int { return len(d.sky) }

// Contains reports whether the tuple with the given id is live.
func (d *Dynamic) Contains(id int) bool {
	_, ok := d.points[id]
	return ok
}

// IsSkyline reports whether the tuple with the given id is currently on the
// skyline.
func (d *Dynamic) IsSkyline(id int) bool {
	_, ok := d.sky[id]
	return ok
}

// Skyline returns a copy of the current skyline.
func (d *Dynamic) Skyline() []geom.Point {
	out := make([]geom.Point, 0, len(d.sky))
	for _, p := range d.sky {
		out = append(out, p)
	}
	return out
}

// Points returns a copy of all live tuples.
func (d *Dynamic) Points() []geom.Point {
	out := make([]geom.Point, 0, len(d.points))
	for _, p := range d.points {
		out = append(out, p)
	}
	return out
}

// Insert adds p and reports whether the skyline changed. A new tuple joins
// the skyline iff no current skyline member dominates it; when it joins, any
// member it dominates drops out.
func (d *Dynamic) Insert(p geom.Point) (changed bool) {
	d.points[p.ID] = p
	for _, s := range d.sky {
		if geom.Dominates(s, p) {
			return false
		}
	}
	for id, s := range d.sky {
		if geom.Dominates(p, s) {
			delete(d.sky, id)
		}
	}
	d.sky[p.ID] = p
	return true
}

// Delete removes the tuple with the given id and reports whether the
// skyline changed. Deleting a non-skyline tuple never changes the skyline.
// Deleting a skyline tuple promotes every point that was dominated only by
// the removed tuple (among skyline members).
func (d *Dynamic) Delete(id int) (changed bool) {
	victim, live := d.points[id]
	if !live {
		return false
	}
	delete(d.points, id)
	if _, onSky := d.sky[id]; !onSky {
		return false
	}
	delete(d.sky, id)
	// Candidates for promotion are the points the victim dominated. A
	// candidate joins the skyline iff no remaining live point dominates it.
	// It suffices to test against the remaining skyline plus the other
	// candidates: any dominator q of a candidate is itself dominated by a
	// maximal element s (or is one), and by transitivity s dominates the
	// candidate too; every maximal element of the post-delete database lies
	// in (old skyline \ victim) ∪ candidates.
	var cands []geom.Point
	for _, p := range d.points {
		if !d.IsSkyline(p.ID) && geom.Dominates(victim, p) {
			cands = append(cands, p)
		}
	}
	for _, p := range cands {
		promoted := true
		for _, s := range d.sky {
			if geom.Dominates(s, p) {
				promoted = false
				break
			}
		}
		if promoted {
			for _, q := range cands {
				if q.ID != p.ID && geom.Dominates(q, p) {
					promoted = false
					break
				}
			}
		}
		if promoted {
			d.sky[p.ID] = p
		}
	}
	return true
}
