package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

// paperPoints is the 8-tuple database of Fig. 1 in the paper.
func paperPoints() []geom.Point {
	return []geom.Point{
		geom.NewPoint(1, 0.2, 1.0),
		geom.NewPoint(2, 0.6, 0.8),
		geom.NewPoint(3, 0.7, 0.5),
		geom.NewPoint(4, 1.0, 0.1),
		geom.NewPoint(5, 0.4, 0.3),
		geom.NewPoint(6, 0.2, 0.7),
		geom.NewPoint(7, 0.3, 0.9),
		geom.NewPoint(8, 0.6, 0.6),
	}
}

func idSet(pts []geom.Point) map[int]bool {
	s := make(map[int]bool, len(pts))
	for _, p := range pts {
		s[p.ID] = true
	}
	return s
}

func TestComputePaperExample(t *testing.T) {
	// In Fig. 1, p1, p2, p3, p4 are the maxima: p7 is dominated by nothing?
	// p7=(0.3,0.9) vs p1=(0.2,1.0): incomparable; vs p2=(0.6,0.8)? p2 has
	// x=0.6>0.3 but y=0.8<0.9 -> incomparable. So p7 is also on the skyline.
	got := idSet(Compute(paperPoints()))
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 7: true}
	if len(got) != len(want) {
		t.Fatalf("skyline = %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing skyline point p%d; got %v", id, got)
		}
	}
}

func TestComputeEmpty(t *testing.T) {
	if got := Compute(nil); got != nil {
		t.Fatalf("skyline of empty set = %v", got)
	}
}

func TestComputeSinglePoint(t *testing.T) {
	got := Compute([]geom.Point{geom.NewPoint(7, 0.5, 0.5)})
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("skyline = %v", got)
	}
}

func TestComputeDuplicatePoints(t *testing.T) {
	// Equal points do not dominate each other, so both stay.
	pts := []geom.Point{geom.NewPoint(0, 0.5, 0.5), geom.NewPoint(1, 0.5, 0.5)}
	if got := Compute(pts); len(got) != 2 {
		t.Fatalf("equal points should both be skyline, got %v", got)
	}
}

// bruteSkyline is the O(n^2) reference implementation.
func bruteSkyline(pts []geom.Point) map[int]bool {
	out := make(map[int]bool)
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.ID != p.ID && geom.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[p.ID] = true
		}
	}
	return out
}

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			// Coarse grid so dominance ties actually occur.
			v[j] = float64(rng.Intn(8)) / 7
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	return pts
}

func TestComputeMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(60), 1+rng.Intn(5))
		got := idSet(Compute(pts))
		want := bruteSkyline(pts)
		if len(got) != len(want) {
			return false
		}
		for id := range want {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicInsert(t *testing.T) {
	d := NewDynamic(paperPoints())
	if d.SkylineSize() != 5 {
		t.Fatalf("initial skyline size = %d, want 5", d.SkylineSize())
	}
	// p9 = (0.9, 0.6) from Fig. 3 dominates p3 (0.7,0.5) and p8 (0.6,0.6).
	changed := d.Insert(geom.NewPoint(9, 0.9, 0.6))
	if !changed {
		t.Fatal("inserting p9 must change the skyline")
	}
	if d.IsSkyline(3) {
		t.Error("p3 should be dominated by p9")
	}
	if !d.IsSkyline(9) {
		t.Error("p9 should be on the skyline")
	}
	// A dominated insert changes nothing.
	if d.Insert(geom.NewPoint(10, 0.1, 0.1)) {
		t.Error("dominated insert must not change the skyline")
	}
	if !d.Contains(10) {
		t.Error("dominated tuple must still be stored")
	}
}

func TestDynamicDeleteNonSkyline(t *testing.T) {
	d := NewDynamic(paperPoints())
	if d.Delete(5) {
		t.Error("deleting non-skyline p5 must not change the skyline")
	}
	if d.Contains(5) {
		t.Error("p5 should be gone")
	}
	if d.Delete(5) {
		t.Error("double delete must be a no-op")
	}
}

func TestDynamicDeletePromotes(t *testing.T) {
	d := NewDynamic(paperPoints())
	// p8=(0.6,0.6) is dominated only by p2=(0.6,0.8): deleting p2 promotes it.
	if !d.Delete(2) {
		t.Fatal("deleting skyline p2 must change the skyline")
	}
	if !d.IsSkyline(8) {
		t.Error("p8 should be promoted after p2 is gone")
	}
	// p6=(0.2,0.7) is dominated by p1, p2 and p7; once all three are gone it
	// joins the skyline.
	if !d.Delete(7) {
		t.Fatal("deleting skyline p7 must change the skyline")
	}
	if !d.Delete(1) {
		t.Fatal("deleting skyline p1 must change the skyline")
	}
	if !d.IsSkyline(6) {
		t.Error("p6 should be promoted after p1, p2, p7 are gone")
	}
}

// Property: after any random op sequence, Dynamic matches a fresh Compute.
func TestDynamicMatchesStaticQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dim := 4+rng.Intn(40), 1+rng.Intn(4)
		pts := randomPoints(rng, n, dim)
		dyn := NewDynamic(pts[:n/2])
		live := make(map[int]geom.Point)
		for _, p := range pts[:n/2] {
			live[p.ID] = p
		}
		next := n
		for op := 0; op < 40; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				v := make(geom.Vector, dim)
				for j := range v {
					v[j] = float64(rng.Intn(8)) / 7
				}
				p := geom.Point{ID: next, Coords: v}
				next++
				dyn.Insert(p)
				live[p.ID] = p
			} else {
				var victim int
				i, stop := 0, rng.Intn(len(live))
				for id := range live {
					if i == stop {
						victim = id
						break
					}
					i++
				}
				dyn.Delete(victim)
				delete(live, victim)
			}
			want := bruteSkyline(mapValues(live))
			if dyn.SkylineSize() != len(want) {
				return false
			}
			for id := range want {
				if !dyn.IsSkyline(id) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mapValues(m map[int]geom.Point) []geom.Point {
	out := make([]geom.Point, 0, len(m))
	for _, p := range m {
		out = append(out, p)
	}
	return out
}

func TestDynamicAccessors(t *testing.T) {
	d := NewDynamic(paperPoints())
	if d.Len() != 8 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := len(d.Skyline()); got != d.SkylineSize() {
		t.Fatalf("Skyline() length %d != SkylineSize %d", got, d.SkylineSize())
	}
	if got := len(d.Points()); got != 8 {
		t.Fatalf("Points() length = %d", got)
	}
}
