package kdtree

import (
	"math/rand"
	"testing"

	"fdrms/internal/geom"
)

// As-of reads inside a retain window must reproduce every intermediate
// database state of a delete run exactly, for all query kinds, even when
// the run tombstones more than half of the tree (which defers a rebuild to
// EndRetain).
func TestAsOfReadsDuringDeleteRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 3
	n := 40
	pts := gridPointsKD(rng, n, d, 0, 3) // grid: ties stress the ID tie-break too
	tr := New(d, pts)

	// Delete 30 of 40 points in one retained run, snapshotting the live set
	// before each tombstone.
	perm := rng.Perm(n)[:30]
	base := tr.BeginRetain()
	if base != tr.Epoch() {
		t.Fatal("BeginRetain must return the current epoch")
	}
	live := make(map[int]geom.Point, n)
	for _, p := range pts {
		live[p.ID] = p
	}
	snapshots := make([]map[int]geom.Point, 0, len(perm)+1)
	snap := func() map[int]geom.Point {
		c := make(map[int]geom.Point, len(live))
		for id, p := range live {
			c[id] = p
		}
		return c
	}
	snapshots = append(snapshots, snap()) // state at epoch base
	for _, i := range perm {
		if !tr.Delete(pts[i].ID) {
			t.Fatalf("Delete(%d) reported missing", pts[i].ID)
		}
		delete(live, pts[i].ID)
		snapshots = append(snapshots, snap())
	}
	if got, want := tr.Epoch(), base+uint64(len(perm)); got != want {
		t.Fatalf("epoch after run = %d, want %d", got, want)
	}

	for off, state := range snapshots {
		e := base + uint64(off)
		cur := make([]geom.Point, 0, len(state))
		for _, p := range state {
			cur = append(cur, p)
		}
		for q := 0; q < 6; q++ {
			u := randomUnit(rng, d)
			if !sameResults(tr.TopKAt(u, 5, e), bruteTopK(cur, u, 5)) {
				t.Fatalf("TopKAt mismatch at epoch offset %d", off)
			}
			tau := rng.Float64()
			got := make(map[int]bool)
			for _, r := range tr.AtLeastAt(u, tau, e) {
				got[r.Point.ID] = true
			}
			for _, p := range cur {
				if (geom.Score(u, p) >= tau) != got[p.ID] {
					t.Fatalf("AtLeastAt mismatch at epoch offset %d", off)
				}
			}
			if s, ok := tr.KthScoreAt(u, 5, e); ok {
				if want := bruteTopK(cur, u, 5); s != want[len(want)-1].Score {
					t.Fatalf("KthScoreAt mismatch at epoch offset %d", off)
				}
			} else if len(cur) > 0 {
				t.Fatalf("KthScoreAt !ok with %d live points", len(cur))
			}
		}
		for _, p := range pts {
			_, in := state[p.ID]
			if tr.ContainsAt(p.ID, e) != in {
				t.Fatalf("ContainsAt(%d, +%d) = %v, want %v", p.ID, off, !in, in)
			}
			got, ok := tr.PointByIDAt(p.ID, e)
			if ok != in {
				t.Fatalf("PointByIDAt(%d, +%d) ok = %v, want %v", p.ID, off, ok, in)
			}
			if in && got.ID != p.ID {
				t.Fatalf("PointByIDAt(%d, +%d) returned id %d", p.ID, off, got.ID)
			}
		}
	}

	// EndRetain compacts (30 tombstones > 10 live) and the present reads
	// must match the final state.
	tr.EndRetain()
	if tr.removed != 0 {
		t.Fatalf("deferred rebuild did not run: removed = %d", tr.removed)
	}
	cur := make([]geom.Point, 0, len(live))
	for _, p := range live {
		cur = append(cur, p)
	}
	for q := 0; q < 6; q++ {
		u := randomUnit(rng, d)
		if !sameResults(tr.TopK(u, 5), bruteTopK(cur, u, 5)) {
			t.Fatal("present TopK mismatch after EndRetain compaction")
		}
	}
}

// Epoch bookkeeping: every mutation advances the epoch; inserts after an
// as-of epoch are invisible to it.
func TestEpochVisibilityOfInserts(t *testing.T) {
	tr := New(2, []geom.Point{geom.NewPoint(0, 0.2, 0.2)})
	if tr.Epoch() != 0 {
		t.Fatalf("fresh tree epoch = %d", tr.Epoch())
	}
	tr.Insert(geom.NewPoint(1, 0.9, 0.9))
	e1 := tr.Epoch()
	if e1 != 1 {
		t.Fatalf("epoch after insert = %d", e1)
	}
	tr.Insert(geom.NewPoint(2, 1.0, 1.0))
	u := geom.Vector{1, 0}
	if got := tr.TopKAt(u, 1, e1); len(got) != 1 || got[0].Point.ID != 1 {
		t.Fatalf("as-of read sees later insert: %v", got)
	}
	if tr.ContainsAt(2, e1) {
		t.Fatal("ContainsAt sees later insert")
	}
	if !tr.ContainsAt(2, tr.Epoch()) {
		t.Fatal("present read misses live point")
	}
	// A replacing insert advances the epoch twice (delete + insert) and the
	// intermediate epoch sees neither copy... the deleted copy is only kept
	// inside a retain window, so open one.
	base := tr.BeginRetain()
	tr.Insert(geom.NewPoint(2, 0.1, 0.1))
	if got, want := tr.Epoch(), base+2; got != want {
		t.Fatalf("replace advanced epoch to %d, want %d", got, want)
	}
	if p, ok := tr.PointByIDAt(2, base); !ok || p.Coords[0] != 1.0 {
		t.Fatalf("old copy invisible at window base: %v %v", p, ok)
	}
	if tr.ContainsAt(2, base+1) {
		t.Fatal("intermediate epoch must see no copy of a replaced id")
	}
	if p, ok := tr.PointByIDAt(2, base+2); !ok || p.Coords[0] != 0.1 {
		t.Fatalf("new copy invisible after replace: %v %v", p, ok)
	}
	tr.EndRetain()
}
