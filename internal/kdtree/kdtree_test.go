package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	return pts
}

func randomUnit(rng *rand.Rand, d int) geom.Vector {
	u := make(geom.Vector, d)
	for i := range u {
		x := rng.NormFloat64()
		if x < 0 {
			x = -x
		}
		u[i] = x
	}
	return geom.Normalize(u)
}

// bruteTopK is the linear-scan reference.
func bruteTopK(pts []geom.Point, u geom.Vector, k int) []Result {
	res := make([]Result, 0, len(pts))
	for _, p := range pts {
		res = append(res, Result{p, geom.Score(u, p)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Point.ID < res[j].Point.ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Same score is enough: equal-score points are interchangeable in
		// every consumer, and ID order on ties makes this deterministic.
		if a[i].Point.ID != b[i].Point.ID {
			return false
		}
	}
	return true
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n, d := 1+rng.Intn(200), 2+rng.Intn(5)
		pts := randomPoints(rng, n, d)
		tr := New(d, pts)
		for q := 0; q < 10; q++ {
			u := randomUnit(rng, d)
			k := 1 + rng.Intn(10)
			got := tr.TopK(u, k)
			want := bruteTopK(pts, u, k)
			if !sameResults(got, want) {
				t.Fatalf("trial %d: TopK mismatch\n got %v\nwant %v", trial, got, want)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	tr := New(2, nil)
	if got := tr.TopK(geom.Vector{1, 0}, 3); got != nil {
		t.Fatalf("empty tree TopK = %v", got)
	}
	if got := tr.NearestK(geom.Vector{1, 0}, 3); got != nil {
		t.Fatalf("empty tree NearestK = %v", got)
	}
	tr.Insert(geom.NewPoint(0, 0.5, 0.5))
	if got := tr.TopK(geom.Vector{1, 0}, 0); got != nil {
		t.Fatalf("k=0 TopK = %v", got)
	}
	got := tr.TopK(geom.Vector{1, 0}, 5)
	if len(got) != 1 {
		t.Fatalf("k beyond size: got %d results", len(got))
	}
}

func TestAtLeastMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n, d := 1+rng.Intn(150), 2+rng.Intn(4)
		pts := randomPoints(rng, n, d)
		tr := New(d, pts)
		u := randomUnit(rng, d)
		tau := rng.Float64()
		got := make(map[int]bool)
		for _, r := range tr.AtLeast(u, tau) {
			got[r.Point.ID] = true
		}
		for _, p := range pts {
			in := geom.Score(u, p) >= tau
			if in != got[p.ID] {
				t.Fatalf("AtLeast mismatch at point %v (score %v, tau %v)", p, geom.Score(u, p), tau)
			}
		}
	}
}

func TestApproxTopKContainsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 300, 4)
	tr := New(4, pts)
	u := randomUnit(rng, 4)
	for _, k := range []int{1, 3, 10} {
		top := tr.TopK(u, k)
		approx := tr.ApproxTopK(u, k, 0.05)
		member := make(map[int]bool)
		for _, r := range approx {
			member[r.Point.ID] = true
		}
		for _, r := range top {
			if !member[r.Point.ID] {
				t.Fatalf("top-%d point %v missing from ApproxTopK", k, r.Point)
			}
		}
		// Every member satisfies the threshold.
		kth := top[len(top)-1].Score
		for _, r := range approx {
			if r.Score < (1-0.05)*kth-1e-12 {
				t.Fatalf("ApproxTopK member below threshold: %v < %v", r.Score, (1-0.05)*kth)
			}
		}
	}
}

func TestApproxTopKFewerThanK(t *testing.T) {
	pts := []geom.Point{geom.NewPoint(0, 0.9, 0.1), geom.NewPoint(1, 0.1, 0.9)}
	tr := New(2, pts)
	// k=5 > n=2: everything is a top-k member.
	res := tr.ApproxTopK(geom.Vector{1, 0}, 5, 0.1)
	if len(res) != 2 {
		t.Fatalf("want both points, got %v", res)
	}
}

func TestInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 3
	tr := New(d, nil)
	live := make(map[int]geom.Point)
	next := 0
	for op := 0; op < 2000; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			v := make(geom.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			p := geom.Point{ID: next, Coords: v}
			next++
			tr.Insert(p)
			live[p.ID] = p
		} else {
			var id int
			stop := rng.Intn(len(live))
			i := 0
			for k := range live {
				if i == stop {
					id = k
					break
				}
				i++
			}
			if !tr.Delete(id) {
				t.Fatalf("Delete(%d) reported missing", id)
			}
			delete(live, id)
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
		}
	}
	// Full queries after churn must match brute force.
	pts := make([]geom.Point, 0, len(live))
	for _, p := range live {
		pts = append(pts, p)
	}
	for q := 0; q < 20; q++ {
		u := randomUnit(rng, d)
		if !sameResults(tr.TopK(u, 7), bruteTopK(pts, u, 7)) {
			t.Fatal("TopK mismatch after churn")
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(2, []geom.Point{geom.NewPoint(0, 0.1, 0.2)})
	if tr.Delete(99) {
		t.Fatal("deleting a missing ID should report false")
	}
	if !tr.Delete(0) || tr.Delete(0) {
		t.Fatal("first delete true, second false expected")
	}
}

func TestInsertReplacesSameID(t *testing.T) {
	tr := New(2, []geom.Point{geom.NewPoint(0, 0.1, 0.2)})
	tr.Insert(geom.NewPoint(0, 0.9, 0.9))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	got := tr.TopK(geom.Vector{1, 0}, 1)
	if got[0].Point.Coords[0] != 0.9 {
		t.Fatalf("stale point after replace: %v", got[0].Point)
	}
}

func TestRebuildAfterManyDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 500, 3)
	tr := New(3, pts)
	for i := 0; i < 400; i++ {
		tr.Delete(i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	// Tree must have been rebuilt (tombstones purged) and stay correct.
	rest := pts[400:]
	u := randomUnit(rng, 3)
	if !sameResults(tr.TopK(u, 5), bruteTopK(rest, u, 5)) {
		t.Fatal("TopK mismatch after rebuild")
	}
	if tr.removed != 0 && tr.removed > tr.live {
		t.Fatalf("rebuild did not trigger: removed=%d live=%d", tr.removed, tr.live)
	}
}

func TestKthScore(t *testing.T) {
	pts := []geom.Point{
		geom.NewPoint(0, 1.0, 0),
		geom.NewPoint(1, 0.8, 0),
		geom.NewPoint(2, 0.6, 0),
	}
	tr := New(2, pts)
	u := geom.Vector{1, 0}
	if s, ok := tr.KthScore(u, 2); !ok || s != 0.8 {
		t.Fatalf("KthScore(2) = %v,%v", s, ok)
	}
	if s, ok := tr.KthScore(u, 10); !ok || s != 0.6 {
		t.Fatalf("KthScore(10) = %v,%v (want min score)", s, ok)
	}
	empty := New(2, nil)
	if _, ok := empty.KthScore(u, 1); ok {
		t.Fatal("empty tree KthScore should report !ok")
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n, d := 1+rng.Intn(200), 2+rng.Intn(4)
		pts := randomPoints(rng, n, d)
		tr := New(d, pts)
		q := make(geom.Vector, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		k := 1 + rng.Intn(8)
		got := tr.NearestK(q, k)
		want := make([]Result, 0, len(pts))
		for _, p := range pts {
			want = append(want, Result{p, geom.Dist(q, p.Coords)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Score != want[j].Score {
				return want[i].Score < want[j].Score
			}
			return want[i].Point.ID < want[j].Point.ID
		})
		if len(want) > k {
			want = want[:k]
		}
		if !sameResults(got, want) {
			t.Fatalf("NearestK mismatch\n got %v\nwant %v", got, want)
		}
	}
}

// The MIPS reduction must agree with direct branch-and-bound.
func TestTransformedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n, d := 5+rng.Intn(150), 2+rng.Intn(4)
		pts := randomPoints(rng, n, d)
		tr := New(d, pts)
		mips := NewTransformed(d, pts)
		for q := 0; q < 5; q++ {
			u := randomUnit(rng, d)
			k := 1 + rng.Intn(5)
			direct := tr.TopK(u, k)
			viaKNN := mips.TopK(u, k, tr)
			if !sameResults(direct, viaKNN) {
				t.Fatalf("MIPS reduction mismatch\n got %v\nwant %v", viaKNN, direct)
			}
		}
	}
}

// Property: liveCount bookkeeping stays consistent under random churn.
func TestLiveCountInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		tr := New(d, randomPoints(rng, 20, d))
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 {
				v := make(geom.Vector, d)
				for j := range v {
					v[j] = rng.Float64()
				}
				tr.Insert(geom.Point{ID: 1000 + op, Coords: v})
			} else {
				ids := tr.Points()
				if len(ids) > 0 {
					tr.Delete(ids[rng.Intn(len(ids))].ID)
				}
			}
		}
		var count func(idx int32) int
		count = func(idx int32) int {
			if idx == nilNode {
				return 0
			}
			n := &tr.nodes[idx]
			c := count(n.left) + count(n.right)
			if !n.deleted {
				c++
			}
			if n.liveCount != int32(c) {
				return -1 << 30
			}
			return c
		}
		return count(tr.root) == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 50000, 6)
	tr := New(6, pts)
	us := make([]geom.Vector, 64)
	for i := range us {
		us[i] = randomUnit(rng, 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TopK(us[i%len(us)], 10)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New(6, randomPoints(rng, 10000, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := make(geom.Vector, 6)
		for j := range v {
			v[j] = rng.Float64()
		}
		tr.Insert(geom.Point{ID: 100000 + i, Coords: v})
	}
}
