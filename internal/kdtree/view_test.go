package kdtree

import (
	"math/rand"
	"reflect"
	"testing"

	"fdrms/internal/geom"
)

// A view must keep answering with the point set of its capture instant while
// the live tree absorbs inserts, deletes, and rebuilds.
func TestViewPinnedAcrossMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 4
	pts := randomPoints(rng, 200, d)
	tr := New(d, pts)

	frozen := append([]geom.Point(nil), pts...)
	v := tr.View()
	if v.Len() != 200 || v.Epoch() != tr.Epoch() {
		t.Fatalf("view len/epoch: %d/%d", v.Len(), v.Epoch())
	}

	// Churn hard enough to force several rebuilds (delete > half, reinsert).
	for round := 0; round < 3; round++ {
		for id := 0; id < 150; id++ {
			tr.Delete(id)
		}
		for _, p := range randomPoints(rng, 150, d) {
			tr.Insert(p)
		}
	}

	us := geom.BasisThenRandom(d, 8, 7)
	for _, u := range us {
		for _, k := range []int{1, 3, 17} {
			got := v.TopK(u, k)
			want := bruteTopK(frozen, u, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("view TopK(k=%d) diverged after churn:\n got %v\nwant %v", k, got, want)
			}
			var sc QueryScratch
			kth, ok := v.KthScoreInto(u, k, &sc)
			if !ok || kth != want[min(k, len(want))-1].Score {
				t.Fatalf("view KthScore(k=%d) = %v,%v want %v", k, kth, ok, want[min(k, len(want))-1].Score)
			}
			al := copyResults(v.AtLeastInto(u, kth, &sc))
			for _, r := range al {
				if r.Score < kth {
					t.Fatalf("AtLeast returned score %v below threshold %v", r.Score, kth)
				}
			}
			if len(al) < k {
				t.Fatalf("AtLeast at kth score returned %d < k=%d points", len(al), k)
			}
		}
	}
}

// A view taken mid-life must observe tombstones recorded before the capture
// (deleted points invisible) without a retain window being open.
func TestViewSeesDeletesBeforeCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := 3
	pts := randomPoints(rng, 100, d)
	tr := New(d, pts)
	for id := 0; id < 30; id++ {
		tr.Delete(id)
	}
	v := tr.View()
	live := make([]geom.Point, 0, 70)
	for _, p := range pts {
		if p.ID >= 30 {
			live = append(live, p)
		}
	}
	u := geom.BasisThenRandom(d, 4, 3)[3]
	if got, want := v.TopK(u, 10), bruteTopK(live, u, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("view includes pre-capture tombstones:\n got %v\nwant %v", got, want)
	}
}

// Copy-on-write: a rebuild with an outstanding view must move the live tree
// to fresh backing arrays (and clear the shared flag), and repeated
// view-then-churn cycles must keep the live arena bounded — views never pin
// tombstones inside the live tree.
func TestViewRebuildCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := 3
	tr := New(d, randomPoints(rng, 128, d))

	var views []*View
	var lens []int
	maxArena := 0
	for round := 0; round < 10; round++ {
		views = append(views, tr.View())
		lens = append(lens, tr.Len())
		if !tr.arenaShared {
			t.Fatal("View() did not mark the arena shared")
		}
		old := &tr.pts[0]
		for id := round * 64; id < round*64+96; id++ {
			tr.Delete(id % 128)
		}
		for _, p := range randomPoints(rng, 96, d) {
			tr.Insert(p)
		}
		if tr.arenaShared {
			t.Fatalf("round %d: no rebuild happened under 96 deletes (arena still shared)", round)
		}
		if &tr.pts[0] == old {
			t.Fatalf("round %d: rebuild compacted in place while a view aliased the arena", round)
		}
		if len(tr.nodes) > maxArena {
			maxArena = len(tr.nodes)
		}
	}
	// The live arena never accumulates across rounds: it holds the live
	// points plus at most the tombstones of the current round.
	if maxArena > 3*tr.Len() {
		t.Fatalf("live arena grew to %d nodes for %d live points", maxArena, tr.Len())
	}
	// Every captured view still reports the live count of its capture
	// instant (its frozen arena was never compacted away under it).
	for i, v := range views {
		if v.Len() != lens[i] {
			t.Fatalf("view %d reports %d live points, want %d", i, v.Len(), lens[i])
		}
	}
}

// The deferred rebuild at EndRetain must also copy-on-write when a view is
// outstanding.
func TestViewSurvivesRetainWindowRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := 3
	pts := randomPoints(rng, 80, d)
	tr := New(d, pts)
	v := tr.View()

	tr.BeginRetain()
	for id := 0; id < 60; id++ {
		tr.Delete(id)
	}
	tr.EndRetain() // triggers the deferred rebuild

	u := geom.BasisThenRandom(d, 3, 5)[2]
	if got, want := v.TopK(u, 5), bruteTopK(pts, u, 5); !reflect.DeepEqual(got, want) {
		t.Fatalf("view diverged across a retain-window rebuild:\n got %v\nwant %v", got, want)
	}
	if tr.retaining {
		t.Fatal("retain window did not close")
	}
}

// View answers must be bit-identical to the live tree's answers when no
// mutation intervenes — same traversal, same tie handling, same floats.
func TestViewMatchesTreeAtCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := 5
	tr := New(d, randomPoints(rng, 300, d))
	for id := 0; id < 90; id++ {
		tr.Delete(id * 3)
	}
	v := tr.View()
	var sc QueryScratch
	for _, u := range geom.BasisThenRandom(d, 10, 9) {
		for _, k := range []int{1, 4, 32} {
			a := copyResults(tr.TopKInto(u, k, &sc))
			b := v.TopK(u, k)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("tree and view diverge at capture (k=%d):\n tree %v\n view %v", k, a, b)
			}
		}
	}
}
