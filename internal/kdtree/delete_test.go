package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

// gridPointsKD generates points on a coarse grid: duplicate coordinates and
// exact equal-on-axis values occur constantly, which is the adversarial
// regime for tombstoning (the equal-axis search-other-side branch) and for
// rebuild interleaving.
func gridPointsKD(rng *rand.Rand, n, d, idBase, levels int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = float64(rng.Intn(levels)) / float64(levels-1)
		}
		pts[i] = geom.Point{ID: idBase + i, Coords: v}
	}
	return pts
}

// checkTreeInvariants walks the arena and verifies liveCount and maxDel
// bookkeeping bottom-up.
func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(idx int32) (live int32, maxDel uint64)
	walk = func(idx int32) (int32, uint64) {
		if idx == nilNode {
			return 0, 0
		}
		n := &tr.nodes[idx]
		ll, lm := walk(n.left)
		rl, rm := walk(n.right)
		live, maxDel := ll+rl, lm
		if rm > maxDel {
			maxDel = rm
		}
		if n.deleted {
			if n.del > maxDel {
				maxDel = n.del
			}
		} else {
			live++
		}
		if n.liveCount != live {
			t.Fatalf("liveCount drift at node %d: stored %d, actual %d", tr.pts[idx].ID, n.liveCount, live)
		}
		if n.maxDel != maxDel {
			t.Fatalf("maxDel drift at node %d: stored %d, actual %d", tr.pts[idx].ID, n.maxDel, maxDel)
		}
		return live, maxDel
	}
	live, _ := walk(tr.root)
	if int(live) != tr.Len() {
		t.Fatalf("tree holds %d live nodes, Len() = %d", live, tr.Len())
	}
}

// Equal coordinates everywhere: deletions must find their tombstone even
// when an interleaved rebuild moved equal-axis points to the other side of
// a split, and delete-triggered rebuilds must keep every query exact.
func TestDeleteEqualCoordinatesChurnQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		levels := 2 + rng.Intn(2)
		tr := New(d, gridPointsKD(rng, 30, d, 0, levels))
		live := make(map[int]geom.Point)
		for _, p := range tr.Points() {
			live[p.ID] = p
		}
		next := 1000
		for op := 0; op < 120; op++ {
			// Delete-heavy (60%) so tombstones pile up and rebuilds trigger
			// repeatedly, interleaved with inserts of yet more duplicates.
			if rng.Intn(10) < 6 && len(live) > 0 {
				ids := make([]int, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				if !tr.Delete(id) {
					return false
				}
				delete(live, id)
			} else {
				p := gridPointsKD(rng, 1, d, next, levels)[0]
				next++
				tr.Insert(p)
				live[p.ID] = p
			}
			if tr.Len() != len(live) {
				return false
			}
		}
		pts := make([]geom.Point, 0, len(live))
		for _, p := range live {
			pts = append(pts, p)
		}
		for q := 0; q < 10; q++ {
			u := randomUnit(rng, d)
			if !sameResults(tr.TopK(u, 5), bruteTopK(pts, u, 5)) {
				return false
			}
			tau := rng.Float64()
			got := make(map[int]bool)
			for _, r := range tr.AtLeast(u, tau) {
				got[r.Point.ID] = true
			}
			for _, p := range pts {
				if (geom.Score(u, p) >= tau) != got[p.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Bookkeeping invariants hold through equal-coordinate churn.
func TestDeleteInvariantsEqualCoords(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := 3
	tr := New(d, gridPointsKD(rng, 50, d, 0, 2))
	next := 500
	for op := 0; op < 400; op++ {
		if rng.Intn(2) == 0 && tr.Len() > 0 {
			pts := tr.Points()
			tr.Delete(pts[rng.Intn(len(pts))].ID)
		} else {
			tr.Insert(gridPointsKD(rng, 1, d, next, 2)[0])
			next++
		}
		checkTreeInvariants(t, tr)
	}
}

// findNode locates the arena slot holding the live point with the given id
// (test helper for corrupting the tree); nilNode when absent.
func findNode(tr *Tree, idx int32, id int) int32 {
	if idx == nilNode {
		return nilNode
	}
	if tr.pts[idx].ID == id && !tr.nodes[idx].deleted {
		return idx
	}
	if f := findNode(tr, tr.nodes[idx].left, id); f != nilNode {
		return f
	}
	return findNode(tr, tr.nodes[idx].right, id)
}

// The defensive-rebuild branch: when the by-id map and the tree disagree
// (the tombstone search comes up empty for a live id), Delete must rebuild
// and land in a fully consistent state instead of leaving a phantom node.
func TestDeleteDefensiveRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := 3
	pts := randomPoints(rng, 60, d)
	tr := New(d, pts)

	// Corrupt: mark id 7's node deleted behind the tree's back, so the
	// coming tombstone search fails while byID still lists the point.
	n := findNode(tr, tr.root, 7)
	if n == nilNode {
		t.Fatal("setup: node 7 not found")
	}
	tr.nodes[n].deleted = true

	if !tr.Delete(7) {
		t.Fatal("Delete(7) reported missing")
	}
	if tr.Len() != len(pts)-1 {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pts)-1)
	}
	if tr.Contains(7) {
		t.Fatal("deleted id still Contains")
	}
	checkTreeInvariants(t, tr)
	rest := make([]geom.Point, 0, len(pts)-1)
	for _, p := range pts {
		if p.ID != 7 {
			rest = append(rest, p)
		}
	}
	for q := 0; q < 10; q++ {
		u := randomUnit(rng, d)
		if !sameResults(tr.TopK(u, 6), bruteTopK(rest, u, 6)) {
			t.Fatal("TopK mismatch after defensive rebuild")
		}
	}
	// Normal operation continues after the recovery.
	tr.Insert(geom.Point{ID: 7, Coords: geom.Vector{0.5, 0.5, 0.5}})
	if !tr.Contains(7) || tr.Len() != len(pts) {
		t.Fatal("insert after defensive rebuild broken")
	}
	checkTreeInvariants(t, tr)
}

// A defensive rebuild inside a retain window must keep the window's
// tombstones, so as-of reads issued before AND after the rebuild stay
// exact.
func TestDeleteDefensiveRebuildDuringRetain(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := 2
	pts := randomPoints(rng, 40, d)
	tr := New(d, pts)
	u := randomUnit(rng, d)

	base := tr.BeginRetain()
	tr.Delete(0)
	tr.Delete(1) // epochs base+1, base+2
	wantAfter1 := bruteTopK(pts[1:], u, 5)

	// Corrupt id 2's node and delete it: defensive rebuild, retaining.
	n := findNode(tr, tr.root, 2)
	if n == nilNode {
		t.Fatal("setup: node 2 not found")
	}
	tr.nodes[n].deleted = true
	if !tr.Delete(2) {
		t.Fatal("Delete(2) reported missing")
	}

	// The read at epoch base+1 (after the first delete only) must still see
	// ids 1 and 2 and miss id 0.
	if got := tr.TopKAt(u, 5, base+1); !sameResults(got, wantAfter1) {
		t.Fatalf("as-of read after defensive rebuild: got %v want %v", got, wantAfter1)
	}
	if tr.ContainsAt(0, base+1) {
		t.Fatal("id 0 visible after its tombstone epoch")
	}
	if !tr.ContainsAt(1, base+1) || !tr.ContainsAt(2, base+1) {
		t.Fatal("later-deleted ids invisible at earlier epoch")
	}
	tr.EndRetain()
	if !sameResults(tr.TopK(u, 5), bruteTopK(pts[3:], u, 5)) {
		t.Fatal("present read wrong after EndRetain")
	}
}
