package kdtree

import (
	"math/rand"
	"testing"

	"fdrms/internal/geom"
)

// Steady-state tree queries through a warmed-up QueryScratch must not
// allocate at all: the arena holds the nodes, the scratch holds the
// frontier/result/sweep buffers, and the typed inline heaps never box.
// This pins the tentpole property of the allocation-free query engine; a
// regression here means a heap, closure, or boxing crept back into the
// branch-and-bound inner loop.
func TestQueryScratchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, d, k = 20000, 6, 64
	pts := randomPoints(rng, n, d)
	tr := New(d, pts)
	us := make([]geom.Vector, 32)
	for i := range us {
		us[i] = randomUnit(rng, d)
	}
	var sc QueryScratch

	// Warm the scratch across every query vector so steady-state runs only
	// reuse capacity.
	taus := make([]float64, len(us))
	for i, u := range us {
		res := tr.TopKInto(u, k, &sc)
		taus[i] = 0.98 * res[len(res)-1].Score
		tr.AtLeastInto(u, taus[i], &sc)
		tr.KthScoreAtInto(u, k, tr.Epoch(), &sc)
	}

	i := 0
	if a := testing.AllocsPerRun(200, func() {
		tr.TopKInto(us[i%len(us)], k, &sc)
		i++
	}); a != 0 {
		t.Fatalf("TopKInto allocates %.1f per op, want 0", a)
	}
	i = 0
	if a := testing.AllocsPerRun(200, func() {
		tr.AtLeastInto(us[i%len(us)], taus[i%len(us)], &sc)
		i++
	}); a != 0 {
		t.Fatalf("AtLeastInto allocates %.1f per op, want 0", a)
	}
	i = 0
	if a := testing.AllocsPerRun(200, func() {
		tr.KthScoreAtInto(us[i%len(us)], k, tr.Epoch(), &sc)
		i++
	}); a != 0 {
		t.Fatalf("KthScoreAtInto allocates %.1f per op, want 0", a)
	}
}

// Zero-alloc queries must survive churn: tombstones, rebuilds, and retain
// windows go through the same arena, so a warmed scratch stays warm.
func TestQueryScratchZeroAllocsAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d, k = 4, 16
	tr := New(d, randomPoints(rng, 4000, d))
	for i := 0; i < 1500; i++ {
		tr.Delete(i)
	}
	for _, p := range randomPoints(rng, 1500, d) {
		p.ID += 100000
		tr.Insert(p)
	}
	u := randomUnit(rng, d)
	var sc QueryScratch
	tr.TopKInto(u, k, &sc)
	tr.AtLeastInto(u, 0.5, &sc)
	if a := testing.AllocsPerRun(200, func() {
		tr.TopKInto(u, k, &sc)
		tr.AtLeastInto(u, 0.5, &sc)
	}); a != 0 {
		t.Fatalf("post-churn queries allocate %.1f per op, want 0", a)
	}
}

// Randomized end-to-end check of the arena engine: under mixed churn inside
// a retain window, every scratch-reusing query at every epoch must agree
// with a brute-force scan of that epoch's snapshot. This is the referee for
// the arena layout (index links, SoA bounds, in-place rebuilds) across
// epoch-versioned reads.
func TestArenaQueriesMatchBruteForceAcrossEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(3)
		levels := 2 + rng.Intn(3) // coarse grid: exact ties everywhere
		tr := New(d, gridPointsKD(rng, 30, d, 0, levels))
		live := make(map[int]geom.Point)
		for _, p := range tr.Points() {
			live[p.ID] = p
		}

		snap := func() []geom.Point {
			out := make([]geom.Point, 0, len(live))
			for _, p := range live {
				out = append(out, p)
			}
			return out
		}

		base := tr.BeginRetain()
		snapshots := [][]geom.Point{snap()}
		next := 5000
		for op := 0; op < 40; op++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				var id int
				n := rng.Intn(len(live))
				for k := range live {
					if n == 0 {
						id = k
						break
					}
					n--
				}
				tr.Delete(id)
				delete(live, id)
			} else {
				p := gridPointsKD(rng, 1, d, next, levels)[0]
				next++
				// Replacing inserts advance the epoch twice; keep to fresh
				// ids so epochs map 1:1 onto snapshots.
				tr.Insert(p)
				live[p.ID] = p
			}
			snapshots = append(snapshots, snap())
		}

		var sc QueryScratch
		for off, state := range snapshots {
			e := base + uint64(off)
			for q := 0; q < 4; q++ {
				u := randomUnit(rng, d)
				k := 1 + rng.Intn(7)
				if got, want := tr.TopKAtInto(u, k, e, &sc), bruteTopK(state, u, k); !sameResults(got, want) {
					t.Fatalf("trial %d epoch +%d: TopKAtInto mismatch\n got %v\nwant %v", trial, off, got, want)
				}
				if s, ok := tr.KthScoreAtInto(u, k, e, &sc); ok {
					want := bruteTopK(state, u, k)
					if s != want[len(want)-1].Score {
						t.Fatalf("trial %d epoch +%d: KthScoreAtInto mismatch", trial, off)
					}
				} else if len(state) > 0 {
					t.Fatalf("trial %d epoch +%d: KthScoreAtInto !ok with %d live", trial, off, len(state))
				}
				tau := rng.Float64()
				got := make(map[int]bool)
				for _, r := range tr.AtLeastAtInto(u, tau, e, &sc) {
					got[r.Point.ID] = true
				}
				for _, p := range state {
					if (geom.Score(u, p) >= tau) != got[p.ID] {
						t.Fatalf("trial %d epoch +%d: AtLeastAtInto mismatch at %v", trial, off, p)
					}
				}
			}
		}
		tr.EndRetain()
	}
}

// BenchmarkTopKInto is the scratch-reusing query benchmark; CI gates on its
// "0 allocs/op" report (see .github/workflows/ci.yml).
func BenchmarkTopKInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 50000, 6)
	tr := New(6, pts)
	us := make([]geom.Vector, 64)
	for i := range us {
		us[i] = randomUnit(rng, 6)
	}
	var sc QueryScratch
	for _, u := range us {
		tr.TopKInto(u, 10, &sc)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TopKInto(us[i%len(us)], 10, &sc)
	}
}

// BenchmarkPoints pins the exact-preallocation snapshot path.
func BenchmarkPoints(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New(6, randomPoints(rng, 50000, 6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Points(); len(got) != 50000 {
			b.Fatal("short snapshot")
		}
	}
}
