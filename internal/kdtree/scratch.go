package kdtree

// QueryScratch holds the reusable buffers of one query stream: the
// branch-and-bound frontier, the result ranking heap, the threshold-sweep
// output, and the DFS stack. A scratch belongs to exactly one goroutine;
// the Into query variants reuse its storage, so a warmed-up scratch makes
// steady-state queries allocation-free. Results returned by Into variants
// alias the scratch and are valid only until the next query through it —
// copy them out to retain.
//
// The zero value is ready to use.
type QueryScratch struct {
	frontier []frontierEntry // max-heap of unexplored boxes by score UB
	results  []Result        // min-heap of the k best kept results
	out      []Result        // threshold-sweep / output buffer
	stack    []int32         // DFS stack of AtLeastAtInto
}

// frontierEntry is one unexplored subtree in the branch-and-bound frontier,
// keyed by its score upper bound.
type frontierEntry struct {
	ub  float64
	idx int32
}

// pushFrontier adds an entry to the max-heap (largest ub at the root).
func pushFrontier(h []frontierEntry, e frontierEntry) []frontierEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].ub >= h[i].ub {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// popFrontier removes and returns the max-ub entry.
func popFrontier(h []frontierEntry) (frontierEntry, []frontierEntry) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l].ub > h[m].ub {
			m = l
		}
		if r < n && h[r].ub > h[m].ub {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top, h
}

// resultWorse reports whether a ranks below b under the total order
// (score descending, then point ID ascending): among equal scores the
// larger id is the worse result and is evicted first, so the kept k-set is
// a deterministic function of the candidate set alone — not of the
// traversal order, which varies with the tree's structure.
func resultWorse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Point.ID > b.Point.ID
}

// pushResult adds r to the min-heap whose root is the WORST kept result.
func pushResult(h []Result, r Result) []Result {
	h = append(h, r)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !resultWorse(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// fixResultRoot restores the heap property after the root was replaced.
func fixResultRoot(h []Result) {
	n := len(h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && resultWorse(h[l], h[m]) {
			m = l
		}
		if r < n && resultWorse(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
