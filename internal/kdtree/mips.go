package kdtree

import (
	"math"

	"fdrms/internal/geom"
)

// This file implements the Euclidean-transformation reduction from maximum
// inner product search (MIPS) to k-nearest-neighbour search, following
// Bachrach et al. (RecSys 2014), the scheme Section III-C of the FD-RMS
// paper adopts for its tuple index. Each point p in R^d is lifted to
//
//	p* = (p, sqrt(Φ² − ‖p‖²)) in R^{d+1},  Φ = max_p ‖p‖,
//
// and a query u is lifted to u* = (u, 0). Then ‖u* − p*‖² =
// ‖u‖² + Φ² − 2·<u, p>, so for a fixed query the nearest lifted neighbour is
// exactly the point with the maximum inner product. The direct
// branch-and-bound in Tree.TopK exploits u ≥ 0 and is tighter in practice;
// this path exists because the paper cites it and because tests use it to
// cross-validate TopK.

// boxDistLB returns a lower bound on the Euclidean distance from q to any
// point inside the bounding box of slot idx.
func (t *Tree) boxDistLB(q geom.Vector, idx int32) float64 {
	base := int(idx) * t.dim
	bmin := t.boxMin[base:][:len(q)]
	bmax := t.boxMax[base:][:len(q)]
	var s float64
	for i, x := range q {
		if x < bmin[i] {
			d := bmin[i] - x
			s += d * d
		} else if x > bmax[i] {
			d := x - bmax[i]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// NearestK returns the k live points closest to q in Euclidean distance,
// ordered by increasing distance (ties by smaller ID).
func (t *Tree) NearestK(q geom.Vector, k int) []Result {
	if t.root == nilNode || k <= 0 {
		return nil
	}
	// Frontier reuse: store negative distance so the max-heap pops the
	// nearest box first.
	var frontier []frontierEntry
	frontier = pushFrontier(frontier, frontierEntry{-t.boxDistLB(q, t.root), t.root})
	// Max-heap on distance keeps the k closest seen so far. Like TopK, boxes
	// and points tying the kth distance are still considered so the ID
	// tie-break is honored regardless of the tree's shape.
	var best []Result // Score holds negative distance, so best[0] is the farthest kept
	for len(frontier) > 0 {
		var ent frontierEntry
		ent, frontier = popFrontier(frontier)
		if len(best) == k && -ent.ub > -best[0].Score {
			break
		}
		n := &t.nodes[ent.idx]
		if !n.deleted {
			d := geom.Dist(q, t.pts[ent.idx].Coords)
			if len(best) < k {
				best = pushResult(best, Result{t.pts[ent.idx], -d})
			} else if -d > best[0].Score || (-d == best[0].Score && t.pts[ent.idx].ID < best[0].Point.ID) {
				best[0] = Result{t.pts[ent.idx], -d}
				fixResultRoot(best)
			}
		}
		for _, c := range [2]int32{n.left, n.right} {
			if c == nilNode || t.nodes[c].liveCount == 0 {
				continue
			}
			lb := t.boxDistLB(q, c)
			if len(best) < k || -lb >= best[0].Score {
				frontier = pushFrontier(frontier, frontierEntry{-lb, c})
			}
		}
	}
	out := make([]Result, len(best))
	copy(out, best)
	for i := range out {
		out[i].Score = -out[i].Score // back to distances
	}
	// Ascending by distance, ties by smaller ID.
	sortResultsAsc(out)
	return out
}

// Transformed is a static MIPS index over the lifted (d+1)-dimensional
// points. It answers top-k inner-product queries through NearestK.
type Transformed struct {
	tree *Tree
	dim  int // original dimensionality
	phi  float64
}

// NewTransformed lifts pts to R^{d+1} and indexes them.
func NewTransformed(dim int, pts []geom.Point) *Transformed {
	phi := 0.0
	for _, p := range pts {
		if n := geom.Norm(p.Coords); n > phi {
			phi = n
		}
	}
	lifted := make([]geom.Point, len(pts))
	for i, p := range pts {
		v := make(geom.Vector, dim+1)
		copy(v, p.Coords)
		slack := phi*phi - geom.Dot(p.Coords, p.Coords)
		if slack < 0 {
			slack = 0
		}
		v[dim] = math.Sqrt(slack)
		lifted[i] = geom.Point{ID: p.ID, Coords: v}
	}
	return &Transformed{tree: New(dim+1, lifted), dim: dim, phi: phi}
}

// TopK returns the k points with the largest inner product <u, p>, computed
// through the kNN reduction. Scores are reported in the original space.
func (tr *Transformed) TopK(u geom.Vector, k int, original *Tree) []Result {
	q := make(geom.Vector, tr.dim+1)
	copy(q, u)
	nn := tr.tree.NearestK(q, k)
	out := make([]Result, 0, len(nn))
	for _, r := range nn {
		p, ok := original.PointByID(r.Point.ID)
		if !ok {
			continue
		}
		out = append(out, Result{p, geom.Score(u, p)})
	}
	sortResults(out)
	return out
}
