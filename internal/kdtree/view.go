package kdtree

import (
	"slices"

	"fdrms/internal/geom"
)

// View is an immutable snapshot of the tree pinned to the epoch at which it
// was taken: the score queries (TopKInto, AtLeastInto, KthScoreInto) answer
// exactly as the live tree would have at that epoch, no matter how many
// mutations, rebuilds, or retain windows happen afterwards. A View takes no
// locks and shares no mutable state with the tree, so any number of
// goroutines may query concurrent Views (each with its own QueryScratch)
// while a single writer keeps mutating the tree — the MVCC read surface of
// the serving layer.
//
// Capture cost and sharing: View() clones the node metadata and the boxMax
// rows (both mutated in place by Insert/Delete) and SHARES the point payload
// and flat coordinate arrays, which are append-only between rebuilds — the
// view reads only its frozen prefix, so concurrent appends past that prefix
// are race-free. A rebuild while a view is outstanding switches the tree to
// fresh backing arrays (copy-on-write, see Tree.rebuild) instead of
// compacting in place, so the view keeps its abandoned arrays. A dropped
// View is reclaimed by the garbage collector; holding one pins O(arena)
// memory of its capture instant, nothing of the live tree.
type View struct {
	arena
	epoch uint64
	live  int
}

// View captures an immutable snapshot of the current database. The caller
// must be the tree's (single) writer or be synchronized with it; the
// returned View itself is then safe for unsynchronized concurrent use.
func (t *Tree) View() *View {
	v := &View{
		arena: arena{
			dim:    t.dim,
			nodes:  slices.Clone(t.nodes),
			pts:    t.pts[:len(t.pts):len(t.pts)],
			coords: t.coords[:len(t.coords):len(t.coords)],
			boxMax: slices.Clone(t.boxMax),
			root:   t.root,
		},
		epoch: t.epoch,
		live:  t.live,
	}
	t.arenaShared = true
	return v
}

// Epoch returns the epoch the view is pinned to.
func (v *View) Epoch() uint64 { return v.epoch }

// Len returns the number of points live at the view's epoch.
func (v *View) Len() int { return v.live }

// Dim returns the view's dimensionality.
func (v *View) Dim() int { return v.dim }

// TopKInto is Tree.TopKInto evaluated at the view's pinned epoch: the k
// points with the largest score <u, p>, decreasing score, ties to smaller
// ID. The returned slice is backed by sc and valid only until the next
// query through it.
func (v *View) TopKInto(u geom.Vector, k int, sc *QueryScratch) []Result {
	return v.arena.topKAtInto(u, k, v.epoch, sc)
}

// TopK is TopKInto with a private scratch and caller-owned result memory.
func (v *View) TopK(u geom.Vector, k int) []Result {
	var sc QueryScratch
	return copyResults(v.TopKInto(u, k, &sc))
}

// AtLeastInto is Tree.AtLeastInto evaluated at the view's pinned epoch:
// every point with score >= tau, in unspecified order, backed by sc.
func (v *View) AtLeastInto(u geom.Vector, tau float64, sc *QueryScratch) []Result {
	return v.arena.atLeastAtInto(u, tau, v.epoch, sc)
}

// Points returns the points live at the view's pinned epoch, in unspecified
// order (callers that need a canonical order sort by ID). Visibility is
// decided per node, so the result is exact no matter how many mutations the
// live tree has absorbed since the capture: a node inserted before and not
// deleted by the view's epoch is visible exactly once — an insert that
// replaces a live id always tombstones the old node first, so no id has two
// nodes visible at any single epoch.
func (v *View) Points() []geom.Point {
	out := make([]geom.Point, 0, v.live)
	for i := range v.nodes {
		if v.nodes[i].visibleAt(v.epoch) {
			out = append(out, v.pts[i])
		}
	}
	return out
}

// KthScoreInto is Tree.KthScoreInto evaluated at the view's pinned epoch:
// the k-th largest score (ω_k), or the smallest live score when fewer than
// k points exist; ok is false on an empty database.
func (v *View) KthScoreInto(u geom.Vector, k int, sc *QueryScratch) (score float64, ok bool) {
	return v.arena.kthScoreAtInto(u, k, v.epoch, sc)
}
