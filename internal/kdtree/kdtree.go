// Package kdtree implements the tuple index (TI) of Section III-C: a k-d
// tree (Bentley 1975) over the database supporting the query mix FD-RMS
// needs under a dynamic workload:
//
//   - TopK: the k tuples with the highest linear-utility score, found by
//     best-first branch-and-bound on per-box score upper bounds (valid
//     because utility vectors are nonnegative);
//   - AtLeast: every tuple with score >= a threshold, which yields the
//     ε-approximate top-k set Φ_{k,ε};
//   - NearestK: Euclidean k-nearest-neighbours, used by the MIPS-to-kNN
//     reduction of Bachrach et al. (see mips.go) that the paper cites;
//   - Insert and Delete with tombstoning and automatic rebuilds.
//
// # Arena layout
//
// Nodes live in a flat arena, not a pointer graph: children are int32
// indices into a single node slice, and the per-node data the query inner
// loops stream — subtree bounding boxes and the point coordinates — sit in
// flat dim-strided float64 arrays (structure-of-arrays), so boxScoreUB and
// the score evaluation read contiguous memory instead of chasing heap
// pointers. Insertion appends to the arena; rebuilds compact it in place,
// reusing both the arena storage and a persistent record scratch, so
// steady-state maintenance does not allocate. The branch-and-bound frontier
// and the result ranking use typed inline heaps backed by caller-owned
// QueryScratch buffers (see scratch.go): a warmed-up TopKInto/AtLeastInto
// query performs zero allocations.
//
// # Epoch versioning
//
// Every mutation advances the tree's epoch: nodes carry the epoch of their
// insertion and (for tombstones) of their deletion, so a point is visible
// as of epoch e when ins <= e < del. The At-suffixed queries (TopKAt,
// AtLeastAt, ContainsAt, PointByIDAt, KthScoreAt) evaluate against the
// database as it stood after the mutation that produced epoch e, while the
// plain methods read the present. Historic reads need the relevant
// tombstones to still be physically present, which a retain window
// guarantees: between BeginRetain and EndRetain no tombstone is compacted
// (rebuilds are deferred and the defensive rebuild keeps retained
// tombstones), so reads at any epoch >= the BeginRetain epoch are exact.
// This is how the batched delete path of internal/topk replays a whole run
// of deletions in one parallel phase: the run is tombstoned up front and
// every worker requeries at its operation's epoch. Within one retain window
// each id may be deleted at most once (the batch pipeline guarantees this);
// reads at epochs before the window observe the present database instead.
package kdtree

import (
	"slices"

	"fdrms/internal/geom"
)

// nilNode marks an absent child in the arena.
const nilNode = int32(-1)

// node is the scalar metadata of one arena slot. The fields the query inner
// loops stream over many nodes — bounding boxes and point coordinates —
// live in the Tree's flat dim-strided arrays instead (structure-of-arrays).
type node struct {
	left, right int32
	axis        int32
	deleted     bool
	ins, del    uint64 // insertion / deletion epoch (del valid when deleted)
	maxDel      uint64 // max deletion epoch over the subtree (0: none)
	liveCount   int32
}

// arena is the flat node storage plus the fields the score-query read paths
// touch: slot i of every slice describes the same node. boxMin, boxMax and
// coords are flat dim-strided arrays (slot i occupies [i*dim, (i+1)*dim)),
// so the branch-and-bound upper-bound and score computations stream
// contiguous float64s. The query methods live on arena so a Tree (mutable,
// reading the present) and a View (immutable, pinned to one epoch) share
// one implementation.
type arena struct {
	dim    int
	nodes  []node
	pts    []geom.Point // node payload, returned in Results
	coords []float64    // flat copy of pts[i].Coords (hot score path)
	boxMin []float64    // subtree bounding boxes (nil in a View)
	boxMax []float64
	root   int32
}

// Tree is a dynamic k-d tree over points in R^d.
type Tree struct {
	arena
	live    int
	removed int
	byID    map[int]liveEntry

	recScratch []rec // reusable rebuild record buffer

	epoch       uint64 // advanced by every Insert and effective Delete
	retaining   bool
	retainFloor uint64        // epoch at BeginRetain (valid when retaining)
	graveyard   map[int]grave // retained tombstones by id (only while retaining)

	// arenaShared is set by View() and means an outstanding View aliases
	// pts/coords (and the next rebuild must therefore allocate fresh backing
	// arrays instead of compacting in place). Cleared by rebuild.
	arenaShared bool
}

// liveEntry is the by-id record of a live point.
type liveEntry struct {
	p   geom.Point
	ins uint64 // insertion epoch
}

// grave is the by-id record of a tombstone kept alive by a retain window.
type grave struct {
	p        geom.Point
	ins, del uint64
}

// rec is one point record handed to build: a live point or, during a
// retaining rebuild, a tombstone that must survive compaction.
type rec struct {
	p        geom.Point
	ins, del uint64
	deleted  bool
}

// New builds a balanced tree over pts by recursive median split.
// The input slice is not modified.
func New(dim int, pts []geom.Point) *Tree {
	t := &Tree{arena: arena{dim: dim, root: nilNode}, byID: make(map[int]liveEntry, len(pts))}
	recs := make([]rec, len(pts))
	for i, p := range pts {
		recs[i] = rec{p: p}
		t.byID[p.ID] = liveEntry{p: p}
	}
	t.growArena(len(recs))
	t.root = t.build(recs, 0)
	t.live = len(pts)
	return t
}

// growArena reserves arena capacity for n more nodes.
func (t *Tree) growArena(n int) {
	t.nodes = slices.Grow(t.nodes, n)
	t.pts = slices.Grow(t.pts, n)
	t.coords = slices.Grow(t.coords, n*t.dim)
	t.boxMin = slices.Grow(t.boxMin, n*t.dim)
	t.boxMax = slices.Grow(t.boxMax, n*t.dim)
}

// pushNode appends one node to the arena with its box initialized to the
// point itself and no children; liveCount/maxDel are set by refreshBounds.
func (t *Tree) pushNode(r rec, axis int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		left: nilNode, right: nilNode, axis: int32(axis),
		deleted: r.deleted, ins: r.ins, del: r.del,
	})
	t.pts = append(t.pts, r.p)
	t.coords = append(t.coords, r.p.Coords...)
	t.boxMin = append(t.boxMin, r.p.Coords...)
	t.boxMax = append(t.boxMax, r.p.Coords...)
	return idx
}

// build constructs a subtree over recs (recursive median split on axis),
// appending nodes to the arena, and returns the subtree root's index.
func (t *Tree) build(recs []rec, axis int) int32 {
	if len(recs) == 0 {
		return nilNode
	}
	mid := len(recs) / 2
	selectKth(recs, mid, axis)
	idx := t.pushNode(recs[mid], axis)
	next := (axis + 1) % t.dim
	// The arena may reallocate during recursion: write children through the
	// index, never through a held pointer.
	l := t.build(recs[:mid], next)
	r := t.build(recs[mid+1:], next)
	t.nodes[idx].left, t.nodes[idx].right = l, r
	t.refreshBounds(idx)
	return idx
}

// selectKth partially sorts recs so recs[k] is the k-th smallest on axis
// (quickselect with median-of-three pivoting).
func selectKth(recs []rec, k, axis int) {
	lo, hi := 0, len(recs)-1
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if recs[mid].p.Coords[axis] < recs[lo].p.Coords[axis] {
			recs[mid], recs[lo] = recs[lo], recs[mid]
		}
		if recs[hi].p.Coords[axis] < recs[lo].p.Coords[axis] {
			recs[hi], recs[lo] = recs[lo], recs[hi]
		}
		if recs[hi].p.Coords[axis] < recs[mid].p.Coords[axis] {
			recs[hi], recs[mid] = recs[mid], recs[hi]
		}
		pivot := recs[mid].p.Coords[axis]
		i, j := lo, hi
		for i <= j {
			for recs[i].p.Coords[axis] < pivot {
				i++
			}
			for recs[j].p.Coords[axis] > pivot {
				j--
			}
			if i <= j {
				recs[i], recs[j] = recs[j], recs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// refreshBounds recomputes the box, liveCount and maxDel of slot idx from
// its point and children.
func (t *Tree) refreshBounds(idx int32) {
	n := &t.nodes[idx]
	d := t.dim
	base := int(idx) * d
	copy(t.boxMin[base:base+d], t.coords[base:base+d])
	copy(t.boxMax[base:base+d], t.coords[base:base+d])
	n.liveCount = 0
	n.maxDel = 0
	if n.deleted {
		n.maxDel = n.del
	} else {
		n.liveCount = 1
	}
	for _, c := range [2]int32{n.left, n.right} {
		if c == nilNode {
			continue
		}
		cn := &t.nodes[c]
		n.liveCount += cn.liveCount
		if cn.maxDel > n.maxDel {
			n.maxDel = cn.maxDel
		}
		cb := int(c) * d
		for i := 0; i < d; i++ {
			if t.boxMin[cb+i] < t.boxMin[base+i] {
				t.boxMin[base+i] = t.boxMin[cb+i]
			}
			if t.boxMax[cb+i] > t.boxMax[base+i] {
				t.boxMax[base+i] = t.boxMax[cb+i]
			}
		}
	}
}

// visibleAt reports whether the node's point is part of the database as of
// epoch e.
func (n *node) visibleAt(e uint64) bool {
	return n.ins <= e && (!n.deleted || n.del > e)
}

// emptyAt reports whether the subtree can be pruned for an as-of-e read: no
// currently-live point and no tombstone deleted after e. (A subtree whose
// only visible points were inserted after e is still descended; the
// per-node visibility check rejects them.)
func (n *node) emptyAt(e uint64) bool {
	return n.liveCount == 0 && n.maxDel <= e
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.live }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Epoch returns the current epoch: the number of mutations applied so far.
// A read at this epoch observes the present database.
func (t *Tree) Epoch() uint64 { return t.epoch }

// BeginRetain opens a retain window at the current epoch and returns it.
// Until EndRetain, tombstones are kept (rebuilds deferred, deleted points
// parked in a graveyard for by-id reads), so every At-query with an epoch
// >= the returned value is exact even while later deletions are recorded.
// Windows do not nest.
func (t *Tree) BeginRetain() uint64 {
	t.retaining = true
	t.retainFloor = t.epoch
	if t.graveyard == nil {
		t.graveyard = make(map[int]grave)
	}
	return t.epoch
}

// EndRetain closes the retain window, drops the graveyard, and performs any
// deferred compaction.
func (t *Tree) EndRetain() {
	t.retaining = false
	clear(t.graveyard)
	if t.removed > t.live {
		t.rebuild()
	}
}

// Contains reports whether a live point with the given id exists.
func (t *Tree) Contains(id int) bool {
	_, ok := t.byID[id]
	return ok
}

// ContainsAt reports whether a point with the given id was live as of epoch e.
func (t *Tree) ContainsAt(id int, e uint64) bool {
	_, ok := t.PointByIDAt(id, e)
	return ok
}

// PointByID returns the live point with the given id.
func (t *Tree) PointByID(id int) (geom.Point, bool) {
	le, ok := t.byID[id]
	return le.p, ok
}

// PointByIDAt returns the point with the given id as it was live at epoch e.
// Deleted points are found only inside a retain window covering e.
func (t *Tree) PointByIDAt(id int, e uint64) (geom.Point, bool) {
	if le, ok := t.byID[id]; ok && le.ins <= e {
		return le.p, true
	}
	if g, ok := t.graveyard[id]; ok && g.ins <= e && g.del > e {
		return g.p, true
	}
	return geom.Point{}, false
}

// Points returns all live points in unspecified order. The slice is freshly
// allocated at exactly the live count.
func (t *Tree) Points() []geom.Point {
	out := make([]geom.Point, 0, t.live)
	for _, le := range t.byID {
		out = append(out, le.p)
	}
	return out
}

// Insert adds p to the tree. Inserting an ID that is already live replaces
// the old point (delete followed by insert).
func (t *Tree) Insert(p geom.Point) {
	if t.Contains(p.ID) {
		t.Delete(p.ID)
	}
	t.epoch++
	t.byID[p.ID] = liveEntry{p: p, ins: t.epoch}
	t.live++
	if t.root == nilNode {
		t.root = t.pushNode(rec{p: p, ins: t.epoch}, 0)
		t.refreshBounds(t.root)
		return
	}
	t.insertAt(t.root, p, t.epoch)
}

func (t *Tree) insertAt(idx int32, p geom.Point, ins uint64) {
	d := t.dim
	for {
		n := &t.nodes[idx]
		n.liveCount++
		base := int(idx) * d
		for i := 0; i < d; i++ {
			if p.Coords[i] < t.boxMin[base+i] {
				t.boxMin[base+i] = p.Coords[i]
			}
			if p.Coords[i] > t.boxMax[base+i] {
				t.boxMax[base+i] = p.Coords[i]
			}
		}
		axis := int(n.axis)
		next := (axis + 1) % d
		goLeft := p.Coords[axis] < t.coords[base+axis]
		child := n.right
		if goLeft {
			child = n.left
		}
		if child == nilNode {
			// pushNode may reallocate the arena: write the link through the
			// index, not through n.
			c := t.pushNode(rec{p: p, ins: ins}, next)
			if goLeft {
				t.nodes[idx].left = c
			} else {
				t.nodes[idx].right = c
			}
			t.refreshBounds(c)
			return
		}
		idx = child
	}
}

// Delete tombstones the point with the given id and reports whether it was
// present. When more than half of the stored nodes are tombstones the tree
// is rebuilt from the live points, keeping queries balanced; inside a
// retain window the rebuild is deferred to EndRetain so historic reads stay
// valid.
func (t *Tree) Delete(id int) bool {
	le, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	t.epoch++
	if t.retaining {
		t.graveyard[id] = grave{p: le.p, ins: le.ins, del: t.epoch}
	}
	if !t.tombstone(t.root, le.p, t.epoch) {
		// The map and tree disagree; rebuild defensively to restore the
		// invariant rather than leave a phantom live node. The rebuild keeps
		// retained tombstones, so open retain windows survive it.
		t.rebuild()
		return true
	}
	t.live--
	t.removed++
	if !t.retaining && t.removed > t.live {
		t.rebuild()
	}
	return true
}

// tombstone finds the node holding point p (matching by ID) and marks it
// deleted at epoch del, decrementing live counts along the path.
// Coordinates equal on the split axis may sit in either subtree, so both
// are searched when needed.
func (t *Tree) tombstone(idx int32, p geom.Point, del uint64) bool {
	if idx == nilNode {
		return false
	}
	d := t.dim
	base := int(idx) * d
	// Box pruning: p must be inside the subtree's bounding box.
	for i := 0; i < d; i++ {
		if p.Coords[i] < t.boxMin[base+i] || p.Coords[i] > t.boxMax[base+i] {
			return false
		}
	}
	n := &t.nodes[idx] // no arena growth during tombstoning: safe to hold
	if t.pts[idx].ID == p.ID && !n.deleted {
		n.deleted = true
		n.del = del
		if del > n.maxDel {
			n.maxDel = del
		}
		n.liveCount--
		return true
	}
	if p.Coords[n.axis] < t.coords[base+int(n.axis)] {
		if t.tombstone(n.left, p, del) {
			n.liveCount--
			if del > n.maxDel {
				n.maxDel = del
			}
			return true
		}
		return false
	}
	if t.tombstone(n.right, p, del) {
		n.liveCount--
		if del > n.maxDel {
			n.maxDel = del
		}
		return true
	}
	// Equal axis values historically went right, but an interleaved rebuild
	// may have placed them left of the median; search the other side too.
	if p.Coords[n.axis] == t.coords[base+int(n.axis)] && t.tombstone(n.left, p, del) {
		n.liveCount--
		if del > n.maxDel {
			n.maxDel = del
		}
		return true
	}
	return false
}

// rebuild reconstructs the tree from the live points (the by-id map is
// authoritative), keeping the tombstones of an open retain window so
// historic reads stay exact. The arena is compacted in place: its storage
// and the record scratch are reused across rebuilds, so steady-state
// compaction performs no allocation beyond amortized growth. When an
// outstanding View aliases the arena (arenaShared), compaction instead
// moves to fresh backing arrays — copy-on-write — so the View keeps reading
// its frozen prefix of the abandoned arrays while the live tree walks away.
func (t *Tree) rebuild() {
	recs := t.recScratch[:0]
	for _, le := range t.byID {
		recs = append(recs, rec{p: le.p, ins: le.ins})
	}
	removed := 0
	if t.retaining {
		for _, g := range t.graveyard {
			if g.del > t.retainFloor {
				recs = append(recs, rec{p: g.p, ins: g.ins, del: g.del, deleted: true})
				removed++
			}
		}
	}
	t.recScratch = recs
	if t.arenaShared {
		t.nodes, t.pts, t.coords, t.boxMin, t.boxMax = nil, nil, nil, nil, nil
		t.arenaShared = false
		t.growArena(len(recs))
	} else {
		t.nodes = t.nodes[:0]
		t.pts = t.pts[:0]
		t.coords = t.coords[:0]
		t.boxMin = t.boxMin[:0]
		t.boxMax = t.boxMax[:0]
	}
	t.root = t.build(recs, 0)
	t.live = len(t.byID)
	t.removed = removed
	// Drop stale point references from the reusable buffers so compaction
	// does not pin coordinate arrays of long-gone tuples.
	clear(recs)
	clear(t.pts[len(t.pts):cap(t.pts)])
}

// boxScoreUB returns an upper bound on <u, p> over every point in the box
// of slot idx. Utilities are nonnegative, so the per-axis maximum is tight.
// The box row is one contiguous stretch of the flat boxMax array.
func (a *arena) boxScoreUB(u geom.Vector, idx int32) float64 {
	box := a.boxMax[int(idx)*a.dim:][:len(u)]
	var s float64
	for i, ui := range u {
		s += ui * box[i]
	}
	return s
}

// scoreOf returns <u, p> for the point of slot idx from the arena's flat
// coordinate array.
func (a *arena) scoreOf(u geom.Vector, idx int32) float64 {
	c := a.coords[int(idx)*a.dim:][:len(u)]
	var s float64
	for i, ui := range u {
		s += ui * c[i]
	}
	return s
}

// Result is one scored tuple returned by TopK.
type Result struct {
	Point geom.Point
	Score float64
}

// TopK returns the k live points with the largest score <u, p>, in
// decreasing score order. Fewer than k points are returned when the tree
// holds fewer. Ties are broken by smaller point ID so results are stable:
// the answer is a deterministic function of the visible point set alone,
// never of the tree's internal shape (which rebuild timing perturbs).
// The slice is freshly allocated; hot paths should use TopKInto.
func (t *Tree) TopK(u geom.Vector, k int) []Result {
	return t.TopKAt(u, k, t.epoch)
}

// TopKAt is TopK against the database as of epoch e.
func (t *Tree) TopKAt(u geom.Vector, k int, e uint64) []Result {
	var sc QueryScratch
	return copyResults(t.TopKAtInto(u, k, e, &sc))
}

// TopKInto is TopK reusing the caller's scratch: the returned slice is
// backed by sc and valid only until the next query through it.
func (t *Tree) TopKInto(u geom.Vector, k int, sc *QueryScratch) []Result {
	return t.TopKAtInto(u, k, t.epoch, sc)
}

// TopKAtInto is TopKAt reusing the caller's scratch: the returned slice is
// backed by sc and valid only until the next query through it. A warmed-up
// scratch makes the query allocation-free.
//
// Two phases: a best-first branch-and-bound with strict pruning finds the
// k best SCORES (the score multiset is shape-independent, the identities of
// tuples tying the kth score are not — a pruned sibling box can hide an
// equal-scoring tuple with a smaller id). When anything was excluded at a
// value TYING the then-current kth score — a pruned box, a skipped point,
// an evicted tie — a threshold sweep at the final kth score collects every
// tying tuple and keeps the smallest ids. Exclusions strictly below the
// current kth can never reach the final kth (it only rises), so tie-free
// queries skip the sweep entirely; admitting ub == kth boxes into the heap
// search instead would explore the same region at far higher cost (clipped
// real datasets tie constantly).
func (t *Tree) TopKAtInto(u geom.Vector, k int, e uint64, sc *QueryScratch) []Result {
	return t.arena.topKAtInto(u, k, e, sc)
}

// topKAtInto is the shared Tree/View implementation of TopKAtInto.
func (a *arena) topKAtInto(u geom.Vector, k int, e uint64, sc *QueryScratch) []Result {
	best, ambiguous := a.searchTopK(u, k, e, sc)
	if len(best) == 0 {
		return nil
	}
	if len(best) == k && ambiguous {
		// Deterministic tie resolution at the kth-score boundary.
		out := a.atLeastAtInto(u, best[0].Score, e, sc)
		sortResults(out)
		return out[:k]
	}
	// Tie-free boundary (or fewer than k visible points, where the search
	// explored everything): the set itself is forced, so it is already
	// deterministic.
	sortResults(best)
	return best
}

// searchTopK is the phase-1 branch-and-bound: it returns k results whose
// SCORES are the exact k best as of epoch e (identities of tuples tying
// the kth score are traversal-dependent), plus whether any exclusion tied
// the then-current kth score — the signal that identity resolution needs
// the phase-2 sweep. The returned slice is backed by sc.results.
func (a *arena) searchTopK(u geom.Vector, k int, e uint64, sc *QueryScratch) (best []Result, ambiguous bool) {
	if a.root == nilNode || k <= 0 {
		clear(sc.results) // same anti-pinning hygiene as the non-empty path
		sc.results = sc.results[:0]
		return nil, false
	}
	prevResults := len(sc.results)
	frontier := sc.frontier[:0]
	best = sc.results[:0]
	frontier = pushFrontier(frontier, frontierEntry{a.boxScoreUB(u, a.root), a.root})
	for len(frontier) > 0 {
		var ent frontierEntry
		ent, frontier = popFrontier(frontier)
		if len(best) == k && ent.ub <= best[0].Score {
			// Remaining frontier entries bound no higher than this one.
			if ent.ub == best[0].Score {
				ambiguous = true
			}
			break
		}
		n := &a.nodes[ent.idx]
		if n.visibleAt(e) {
			s := a.scoreOf(u, ent.idx)
			if len(best) < k {
				best = pushResult(best, Result{a.pts[ent.idx], s})
			} else if s > best[0].Score {
				evicted := best[0].Score
				best[0] = Result{a.pts[ent.idx], s}
				fixResultRoot(best)
				if best[0].Score == evicted {
					ambiguous = true // the evicted point tied the surviving kth
				}
			} else if s == best[0].Score {
				ambiguous = true
			}
		}
		for _, c := range [2]int32{n.left, n.right} {
			if c == nilNode || a.nodes[c].emptyAt(e) {
				continue
			}
			ub := a.boxScoreUB(u, c)
			if len(best) < k || ub > best[0].Score {
				frontier = pushFrontier(frontier, frontierEntry{ub, c})
			} else if ub == best[0].Score {
				ambiguous = true
			}
		}
	}
	sc.frontier = frontier
	// Results hold geom.Points: zero the shrink gap so the scratch does not
	// pin coordinate arrays of tuples a previous, larger query returned.
	// (Equal caps mean append never reallocated, i.e. same backing array.)
	if n := len(best); n < prevResults && cap(best) == cap(sc.results) {
		clear(best[n:prevResults])
	}
	sc.results = best
	return best, ambiguous
}

// sortResults orders results by decreasing score, then increasing point ID.
func sortResults(out []Result) {
	slices.SortFunc(out, func(a, b Result) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Point.ID < b.Point.ID:
			return -1
		case a.Point.ID > b.Point.ID:
			return 1
		}
		return 0
	})
}

// sortResultsAsc orders results by increasing score, then increasing point
// ID (NearestK's distance ordering).
func sortResultsAsc(out []Result) {
	slices.SortFunc(out, func(a, b Result) int {
		switch {
		case a.Score < b.Score:
			return -1
		case a.Score > b.Score:
			return 1
		case a.Point.ID < b.Point.ID:
			return -1
		case a.Point.ID > b.Point.ID:
			return 1
		}
		return 0
	})
}

// copyResults clones a scratch-backed result slice into caller-owned memory.
func copyResults(res []Result) []Result {
	if res == nil {
		return nil
	}
	out := make([]Result, len(res))
	copy(out, res)
	return out
}

// KthScore returns the k-th largest score w.r.t. u (ω_k in the paper).
// When fewer than k live points exist it returns the smallest live score,
// so every point counts as a top-k member; ok is false on an empty tree.
func (t *Tree) KthScore(u geom.Vector, k int) (score float64, ok bool) {
	return t.KthScoreAt(u, k, t.epoch)
}

// KthScoreAt is KthScore against the database as of epoch e.
func (t *Tree) KthScoreAt(u geom.Vector, k int, e uint64) (score float64, ok bool) {
	var sc QueryScratch
	return t.KthScoreAtInto(u, k, e, &sc)
}

// KthScoreAtInto is KthScoreAt reusing the caller's scratch. Only the kth
// SCORE is needed, which phase 1 determines exactly, so the identity-
// resolving tie sweep of TopKAtInto is skipped entirely.
func (t *Tree) KthScoreAtInto(u geom.Vector, k int, e uint64, sc *QueryScratch) (score float64, ok bool) {
	return t.arena.kthScoreAtInto(u, k, e, sc)
}

// kthScoreAtInto is the shared Tree/View implementation of KthScoreAtInto.
func (a *arena) kthScoreAtInto(u geom.Vector, k int, e uint64, sc *QueryScratch) (score float64, ok bool) {
	best, _ := a.searchTopK(u, k, e, sc)
	if len(best) == 0 {
		return 0, false
	}
	// best[0] is the heap's worst kept result = the kth (or, with fewer
	// than k points, the smallest live) score.
	return best[0].Score, true
}

// AtLeast returns every live point with score <u, p> >= tau, in unspecified
// order. This realizes Φ_{k,ε} when tau = (1-ε)·ω_k. The slice is freshly
// allocated; hot paths should use AtLeastInto.
func (t *Tree) AtLeast(u geom.Vector, tau float64) []Result {
	return t.AtLeastAt(u, tau, t.epoch)
}

// AtLeastAt is AtLeast against the database as of epoch e.
func (t *Tree) AtLeastAt(u geom.Vector, tau float64, e uint64) []Result {
	var sc QueryScratch
	out := t.AtLeastAtInto(u, tau, e, &sc)
	if len(out) == 0 {
		return nil
	}
	return copyResults(out)
}

// AtLeastInto is AtLeast reusing the caller's scratch: the returned slice
// is backed by sc and valid only until the next query through it.
func (t *Tree) AtLeastInto(u geom.Vector, tau float64, sc *QueryScratch) []Result {
	return t.AtLeastAtInto(u, tau, t.epoch, sc)
}

// AtLeastAtInto is AtLeastAt reusing the caller's scratch: the returned
// slice is backed by sc and valid only until the next query through it.
// A warmed-up scratch makes the query allocation-free.
func (t *Tree) AtLeastAtInto(u geom.Vector, tau float64, e uint64, sc *QueryScratch) []Result {
	return t.arena.atLeastAtInto(u, tau, e, sc)
}

// atLeastAtInto is the shared Tree/View implementation of AtLeastAtInto.
func (a *arena) atLeastAtInto(u geom.Vector, tau float64, e uint64, sc *QueryScratch) []Result {
	prevOut := len(sc.out)
	out := sc.out[:0]
	if a.root == nilNode {
		clear(out[:prevOut])
		sc.out = out
		return out
	}
	stack := sc.stack[:0]
	stack = append(stack, a.root)
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &a.nodes[idx]
		if n.emptyAt(e) || a.boxScoreUB(u, idx) < tau {
			continue
		}
		if n.visibleAt(e) {
			if s := a.scoreOf(u, idx); s >= tau {
				out = append(out, Result{a.pts[idx], s})
			}
		}
		// Push right first so the left subtree is visited first (pre-order,
		// matching the historical recursive walk).
		if n.right != nilNode {
			stack = append(stack, n.right)
		}
		if n.left != nilNode {
			stack = append(stack, n.left)
		}
	}
	// Zero the shrink gap so the scratch does not pin coordinate arrays of
	// tuples a previous, larger sweep returned (same-backing check as in
	// searchTopK).
	if n := len(out); n < prevOut && cap(out) == cap(sc.out) {
		clear(out[n:prevOut])
	}
	sc.out = out
	sc.stack = stack
	return out
}

// ApproxTopK returns Φ_{k,ε}(u, P): all live points whose score is at least
// (1-ε)·ω_k(u, P). The slice is sorted by decreasing score.
func (t *Tree) ApproxTopK(u geom.Vector, k int, eps float64) []Result {
	var sc QueryScratch
	kth, ok := t.KthScoreAtInto(u, k, t.epoch, &sc)
	if !ok {
		return nil
	}
	out := copyResults(t.AtLeastAtInto(u, (1-eps)*kth, t.epoch, &sc))
	sortResults(out)
	return out
}
