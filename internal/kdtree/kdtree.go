// Package kdtree implements the tuple index (TI) of Section III-C: a k-d
// tree (Bentley 1975) over the database supporting the query mix FD-RMS
// needs under a dynamic workload:
//
//   - TopK: the k tuples with the highest linear-utility score, found by
//     best-first branch-and-bound on per-box score upper bounds (valid
//     because utility vectors are nonnegative);
//   - AtLeast: every tuple with score >= a threshold, which yields the
//     ε-approximate top-k set Φ_{k,ε};
//   - NearestK: Euclidean k-nearest-neighbours, used by the MIPS-to-kNN
//     reduction of Bachrach et al. (see mips.go) that the paper cites;
//   - Insert and Delete with tombstoning and automatic rebuilds.
//
// # Epoch versioning
//
// Every mutation advances the tree's epoch: nodes carry the epoch of their
// insertion and (for tombstones) of their deletion, so a point is visible
// as of epoch e when ins <= e < del. The At-suffixed queries (TopKAt,
// AtLeastAt, ContainsAt, PointByIDAt, KthScoreAt) evaluate against the
// database as it stood after the mutation that produced epoch e, while the
// plain methods read the present. Historic reads need the relevant
// tombstones to still be physically present, which a retain window
// guarantees: between BeginRetain and EndRetain no tombstone is compacted
// (rebuilds are deferred and the defensive rebuild keeps retained
// tombstones), so reads at any epoch >= the BeginRetain epoch are exact.
// This is how the batched delete path of internal/topk replays a whole run
// of deletions in one parallel phase: the run is tombstoned up front and
// every worker requeries at its operation's epoch. Within one retain window
// each id may be deleted at most once (the batch pipeline guarantees this);
// reads at epochs before the window observe the present database instead.
package kdtree

import (
	"container/heap"
	"sort"

	"fdrms/internal/geom"
)

// Tree is a dynamic k-d tree over points in R^d.
type Tree struct {
	root    *node
	dim     int
	live    int
	removed int
	byID    map[int]liveEntry

	epoch       uint64 // advanced by every Insert and effective Delete
	retaining   bool
	retainFloor uint64        // epoch at BeginRetain (valid when retaining)
	graveyard   map[int]grave // retained tombstones by id (only while retaining)
}

// liveEntry is the by-id record of a live point.
type liveEntry struct {
	p   geom.Point
	ins uint64 // insertion epoch
}

// grave is the by-id record of a tombstone kept alive by a retain window.
type grave struct {
	p        geom.Point
	ins, del uint64
}

type node struct {
	point          geom.Point
	axis           int
	deleted        bool
	ins, del       uint64 // insertion / deletion epoch (del valid when deleted)
	maxDel         uint64 // max deletion epoch over the subtree (0: none)
	left, right    *node
	boxMin, boxMax geom.Vector // bounding box of the whole subtree
	liveCount      int
}

// rec is one point record handed to build: a live point or, during a
// retaining rebuild, a tombstone that must survive compaction.
type rec struct {
	p        geom.Point
	ins, del uint64
	deleted  bool
}

// New builds a balanced tree over pts by recursive median split.
// The input slice is not modified.
func New(dim int, pts []geom.Point) *Tree {
	t := &Tree{dim: dim, byID: make(map[int]liveEntry, len(pts))}
	buf := make([]rec, len(pts))
	for i, p := range pts {
		buf[i] = rec{p: p}
		t.byID[p.ID] = liveEntry{p: p}
	}
	t.root = build(buf, 0, dim)
	t.live = len(pts)
	return t
}

func build(recs []rec, axis, dim int) *node {
	if len(recs) == 0 {
		return nil
	}
	mid := len(recs) / 2
	selectKth(recs, mid, axis)
	r := recs[mid]
	n := &node{point: r.p, axis: axis, ins: r.ins, del: r.del, deleted: r.deleted}
	next := (axis + 1) % dim
	n.left = build(recs[:mid], next, dim)
	n.right = build(recs[mid+1:], next, dim)
	n.refreshBounds(dim)
	return n
}

// selectKth partially sorts recs so recs[k] is the k-th smallest on axis
// (quickselect with median-of-three pivoting).
func selectKth(recs []rec, k, axis int) {
	lo, hi := 0, len(recs)-1
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if recs[mid].p.Coords[axis] < recs[lo].p.Coords[axis] {
			recs[mid], recs[lo] = recs[lo], recs[mid]
		}
		if recs[hi].p.Coords[axis] < recs[lo].p.Coords[axis] {
			recs[hi], recs[lo] = recs[lo], recs[hi]
		}
		if recs[hi].p.Coords[axis] < recs[mid].p.Coords[axis] {
			recs[hi], recs[mid] = recs[mid], recs[hi]
		}
		pivot := recs[mid].p.Coords[axis]
		i, j := lo, hi
		for i <= j {
			for recs[i].p.Coords[axis] < pivot {
				i++
			}
			for recs[j].p.Coords[axis] > pivot {
				j--
			}
			if i <= j {
				recs[i], recs[j] = recs[j], recs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

func (n *node) refreshBounds(dim int) {
	n.boxMin = n.point.Coords.Clone()
	n.boxMax = n.point.Coords.Clone()
	n.liveCount = 0
	n.maxDel = 0
	if n.deleted {
		n.maxDel = n.del
	} else {
		n.liveCount = 1
	}
	for _, c := range []*node{n.left, n.right} {
		if c == nil {
			continue
		}
		n.liveCount += c.liveCount
		if c.maxDel > n.maxDel {
			n.maxDel = c.maxDel
		}
		for i := 0; i < dim; i++ {
			if c.boxMin[i] < n.boxMin[i] {
				n.boxMin[i] = c.boxMin[i]
			}
			if c.boxMax[i] > n.boxMax[i] {
				n.boxMax[i] = c.boxMax[i]
			}
		}
	}
}

// visibleAt reports whether the node's point is part of the database as of
// epoch e.
func (n *node) visibleAt(e uint64) bool {
	return n.ins <= e && (!n.deleted || n.del > e)
}

// emptyAt reports whether the subtree can be pruned for an as-of-e read: no
// currently-live point and no tombstone deleted after e. (A subtree whose
// only visible points were inserted after e is still descended; the
// per-node visibility check rejects them.)
func (n *node) emptyAt(e uint64) bool {
	return n.liveCount == 0 && n.maxDel <= e
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.live }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Epoch returns the current epoch: the number of mutations applied so far.
// A read at this epoch observes the present database.
func (t *Tree) Epoch() uint64 { return t.epoch }

// BeginRetain opens a retain window at the current epoch and returns it.
// Until EndRetain, tombstones are kept (rebuilds deferred, deleted points
// parked in a graveyard for by-id reads), so every At-query with an epoch
// >= the returned value is exact even while later deletions are recorded.
// Windows do not nest.
func (t *Tree) BeginRetain() uint64 {
	t.retaining = true
	t.retainFloor = t.epoch
	if t.graveyard == nil {
		t.graveyard = make(map[int]grave)
	}
	return t.epoch
}

// EndRetain closes the retain window, drops the graveyard, and performs any
// deferred compaction.
func (t *Tree) EndRetain() {
	t.retaining = false
	clear(t.graveyard)
	if t.removed > t.live {
		t.rebuild()
	}
}

// Contains reports whether a live point with the given id exists.
func (t *Tree) Contains(id int) bool {
	_, ok := t.byID[id]
	return ok
}

// ContainsAt reports whether a point with the given id was live as of epoch e.
func (t *Tree) ContainsAt(id int, e uint64) bool {
	_, ok := t.PointByIDAt(id, e)
	return ok
}

// PointByID returns the live point with the given id.
func (t *Tree) PointByID(id int) (geom.Point, bool) {
	le, ok := t.byID[id]
	return le.p, ok
}

// PointByIDAt returns the point with the given id as it was live at epoch e.
// Deleted points are found only inside a retain window covering e.
func (t *Tree) PointByIDAt(id int, e uint64) (geom.Point, bool) {
	if le, ok := t.byID[id]; ok && le.ins <= e {
		return le.p, true
	}
	if g, ok := t.graveyard[id]; ok && g.ins <= e && g.del > e {
		return g.p, true
	}
	return geom.Point{}, false
}

// Points returns all live points in unspecified order.
func (t *Tree) Points() []geom.Point {
	out := make([]geom.Point, 0, t.live)
	for _, le := range t.byID {
		out = append(out, le.p)
	}
	return out
}

// Insert adds p to the tree. Inserting an ID that is already live replaces
// the old point (delete followed by insert).
func (t *Tree) Insert(p geom.Point) {
	if t.Contains(p.ID) {
		t.Delete(p.ID)
	}
	t.epoch++
	t.byID[p.ID] = liveEntry{p: p, ins: t.epoch}
	t.live++
	if t.root == nil {
		t.root = &node{point: p, axis: 0, ins: t.epoch}
		t.root.refreshBounds(t.dim)
		return
	}
	t.insertAt(t.root, p, t.epoch)
}

func (t *Tree) insertAt(n *node, p geom.Point, ins uint64) {
	n.liveCount++
	for i := 0; i < t.dim; i++ {
		if p.Coords[i] < n.boxMin[i] {
			n.boxMin[i] = p.Coords[i]
		}
		if p.Coords[i] > n.boxMax[i] {
			n.boxMax[i] = p.Coords[i]
		}
	}
	next := (n.axis + 1) % t.dim
	if p.Coords[n.axis] < n.point.Coords[n.axis] {
		if n.left == nil {
			n.left = &node{point: p, axis: next, ins: ins}
			n.left.refreshBounds(t.dim)
			return
		}
		t.insertAt(n.left, p, ins)
	} else {
		if n.right == nil {
			n.right = &node{point: p, axis: next, ins: ins}
			n.right.refreshBounds(t.dim)
			return
		}
		t.insertAt(n.right, p, ins)
	}
}

// Delete tombstones the point with the given id and reports whether it was
// present. When more than half of the stored nodes are tombstones the tree
// is rebuilt from the live points, keeping queries balanced; inside a
// retain window the rebuild is deferred to EndRetain so historic reads stay
// valid.
func (t *Tree) Delete(id int) bool {
	le, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	t.epoch++
	if t.retaining {
		t.graveyard[id] = grave{p: le.p, ins: le.ins, del: t.epoch}
	}
	if !t.tombstone(t.root, le.p, t.epoch) {
		// The map and tree disagree; rebuild defensively to restore the
		// invariant rather than leave a phantom live node. The rebuild keeps
		// retained tombstones, so open retain windows survive it.
		t.rebuild()
		return true
	}
	t.live--
	t.removed++
	if !t.retaining && t.removed > t.live {
		t.rebuild()
	}
	return true
}

// tombstone finds the node holding point p (matching by ID) and marks it
// deleted at epoch del, decrementing live counts along the path.
// Coordinates equal on the split axis may sit in either subtree, so both
// are searched when needed.
func (t *Tree) tombstone(n *node, p geom.Point, del uint64) bool {
	if n == nil {
		return false
	}
	// Box pruning: p must be inside the subtree's bounding box.
	for i := 0; i < t.dim; i++ {
		if p.Coords[i] < n.boxMin[i] || p.Coords[i] > n.boxMax[i] {
			return false
		}
	}
	if n.point.ID == p.ID && !n.deleted {
		n.deleted = true
		n.del = del
		if del > n.maxDel {
			n.maxDel = del
		}
		n.liveCount--
		return true
	}
	if p.Coords[n.axis] < n.point.Coords[n.axis] {
		if t.tombstone(n.left, p, del) {
			n.liveCount--
			if del > n.maxDel {
				n.maxDel = del
			}
			return true
		}
		return false
	}
	if t.tombstone(n.right, p, del) {
		n.liveCount--
		if del > n.maxDel {
			n.maxDel = del
		}
		return true
	}
	// Equal axis values historically went right, but an interleaved rebuild
	// may have placed them left of the median; search the other side too.
	if p.Coords[n.axis] == n.point.Coords[n.axis] && t.tombstone(n.left, p, del) {
		n.liveCount--
		if del > n.maxDel {
			n.maxDel = del
		}
		return true
	}
	return false
}

// rebuild reconstructs the tree from the live points (the by-id map is
// authoritative), keeping the tombstones of an open retain window so
// historic reads stay exact.
func (t *Tree) rebuild() {
	recs := make([]rec, 0, len(t.byID)+len(t.graveyard))
	for _, le := range t.byID {
		recs = append(recs, rec{p: le.p, ins: le.ins})
	}
	removed := 0
	if t.retaining {
		for _, g := range t.graveyard {
			if g.del > t.retainFloor {
				recs = append(recs, rec{p: g.p, ins: g.ins, del: g.del, deleted: true})
				removed++
			}
		}
	}
	t.root = build(recs, 0, t.dim)
	t.live = len(t.byID)
	t.removed = removed
}

// boxScoreUB returns an upper bound on <u, p> over every point in the box
// of n. Utilities are nonnegative, so the per-axis maximum is tight.
func boxScoreUB(u geom.Vector, n *node) float64 {
	var s float64
	for i, ui := range u {
		s += ui * n.boxMax[i]
	}
	return s
}

// Result is one scored tuple returned by TopK.
type Result struct {
	Point geom.Point
	Score float64
}

// nodePQ is a max-heap of nodes ordered by score upper bound.
type nodePQ []nodeEntry

type nodeEntry struct {
	n  *node
	ub float64
}

func (q nodePQ) Len() int            { return len(q) }
func (q nodePQ) Less(i, j int) bool  { return q[i].ub > q[j].ub }
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// resultHeap is a min-heap used to keep the best k results; the root is the
// WORST kept result under the total order (score descending, then point ID
// ascending), so among equal scores the largest id is evicted first and the
// returned k-set is a deterministic function of the candidate set alone —
// not of the traversal order, which varies with the tree's structure.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Point.ID > h[j].Point.ID
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns the k live points with the largest score <u, p>, in
// decreasing score order. Fewer than k points are returned when the tree
// holds fewer. Ties are broken by smaller point ID so results are stable:
// the answer is a deterministic function of the visible point set alone,
// never of the tree's internal shape (which rebuild timing perturbs).
func (t *Tree) TopK(u geom.Vector, k int) []Result {
	return t.TopKAt(u, k, t.epoch)
}

// TopKAt is TopK against the database as of epoch e.
//
// Two phases: a best-first branch-and-bound with strict pruning finds the
// k best SCORES (the score multiset is shape-independent, the identities of
// tuples tying the kth score are not — a pruned sibling box can hide an
// equal-scoring tuple with a smaller id). When anything was excluded at a
// value TYING the then-current kth score — a pruned box, a skipped point,
// an evicted tie — a threshold sweep at the final kth score collects every
// tying tuple and keeps the smallest ids. Exclusions strictly below the
// current kth can never reach the final kth (it only rises), so tie-free
// queries skip the sweep entirely; admitting ub == kth boxes into the heap
// search instead would explore the same region at far higher cost (clipped
// real datasets tie constantly).
func (t *Tree) TopKAt(u geom.Vector, k int, e uint64) []Result {
	best, ambiguous := t.searchTopK(u, k, e)
	if len(best) == 0 {
		return nil
	}
	if len(best) == k && ambiguous {
		// Deterministic tie resolution at the kth-score boundary.
		out := t.AtLeastAt(u, best[0].Score, e)
		sortResults(out)
		return out[:k:k]
	}
	// Tie-free boundary (or fewer than k visible points, where the search
	// explored everything): the set itself is forced, so it is already
	// deterministic.
	out := make([]Result, len(best))
	copy(out, best)
	sortResults(out)
	return out
}

// searchTopK is the phase-1 branch-and-bound: it returns k results whose
// SCORES are the exact k best as of epoch e (identities of tuples tying
// the kth score are traversal-dependent), plus whether any exclusion tied
// the then-current kth score — the signal that identity resolution needs
// the phase-2 sweep.
func (t *Tree) searchTopK(u geom.Vector, k int, e uint64) (best resultHeap, ambiguous bool) {
	if t.root == nil || k <= 0 {
		return nil, false
	}
	var frontier nodePQ
	heap.Push(&frontier, nodeEntry{t.root, boxScoreUB(u, t.root)})
	for frontier.Len() > 0 {
		ent := heap.Pop(&frontier).(nodeEntry)
		if len(best) == k && ent.ub <= best[0].Score {
			// Remaining frontier entries bound no higher than this one.
			if ent.ub == best[0].Score {
				ambiguous = true
			}
			break
		}
		n := ent.n
		if n.visibleAt(e) {
			s := geom.Score(u, n.point)
			if len(best) < k {
				heap.Push(&best, Result{n.point, s})
			} else if s > best[0].Score {
				evicted := best[0].Score
				best[0] = Result{n.point, s}
				heap.Fix(&best, 0)
				if best[0].Score == evicted {
					ambiguous = true // the evicted point tied the surviving kth
				}
			} else if s == best[0].Score {
				ambiguous = true
			}
		}
		for _, c := range []*node{n.left, n.right} {
			if c == nil || c.emptyAt(e) {
				continue
			}
			ub := boxScoreUB(u, c)
			if len(best) < k || ub > best[0].Score {
				heap.Push(&frontier, nodeEntry{c, ub})
			} else if ub == best[0].Score {
				ambiguous = true
			}
		}
	}
	return best, ambiguous
}

// sortResults orders results by decreasing score, then increasing point ID.
func sortResults(out []Result) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Point.ID < out[j].Point.ID
	})
}

// KthScore returns the k-th largest score w.r.t. u (ω_k in the paper).
// When fewer than k live points exist it returns the smallest live score,
// so every point counts as a top-k member; ok is false on an empty tree.
func (t *Tree) KthScore(u geom.Vector, k int) (score float64, ok bool) {
	return t.KthScoreAt(u, k, t.epoch)
}

// KthScoreAt is KthScore against the database as of epoch e. Only the kth
// SCORE is needed, which phase 1 determines exactly, so the identity-
// resolving tie sweep of TopKAt is skipped entirely.
func (t *Tree) KthScoreAt(u geom.Vector, k int, e uint64) (score float64, ok bool) {
	best, _ := t.searchTopK(u, k, e)
	if len(best) == 0 {
		return 0, false
	}
	// best[0] is the heap's worst kept result = the kth (or, with fewer
	// than k points, the smallest live) score.
	return best[0].Score, true
}

// AtLeast returns every live point with score <u, p> >= tau, in unspecified
// order. This realizes Φ_{k,ε} when tau = (1-ε)·ω_k.
func (t *Tree) AtLeast(u geom.Vector, tau float64) []Result {
	return t.AtLeastAt(u, tau, t.epoch)
}

// AtLeastAt is AtLeast against the database as of epoch e.
func (t *Tree) AtLeastAt(u geom.Vector, tau float64, e uint64) []Result {
	var out []Result
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.emptyAt(e) || boxScoreUB(u, n) < tau {
			return
		}
		if n.visibleAt(e) {
			if s := geom.Score(u, n.point); s >= tau {
				out = append(out, Result{n.point, s})
			}
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// ApproxTopK returns Φ_{k,ε}(u, P): all live points whose score is at least
// (1-ε)·ω_k(u, P). The slice is sorted by decreasing score.
func (t *Tree) ApproxTopK(u geom.Vector, k int, eps float64) []Result {
	kth, ok := t.KthScore(u, k)
	if !ok {
		return nil
	}
	out := t.AtLeast(u, (1-eps)*kth)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}
