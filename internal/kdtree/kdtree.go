// Package kdtree implements the tuple index (TI) of Section III-C: a k-d
// tree (Bentley 1975) over the database supporting the query mix FD-RMS
// needs under a dynamic workload:
//
//   - TopK: the k tuples with the highest linear-utility score, found by
//     best-first branch-and-bound on per-box score upper bounds (valid
//     because utility vectors are nonnegative);
//   - AtLeast: every tuple with score >= a threshold, which yields the
//     ε-approximate top-k set Φ_{k,ε};
//   - NearestK: Euclidean k-nearest-neighbours, used by the MIPS-to-kNN
//     reduction of Bachrach et al. (see mips.go) that the paper cites;
//   - Insert and Delete with tombstoning and automatic rebuilds.
package kdtree

import (
	"container/heap"
	"sort"

	"fdrms/internal/geom"
)

// Tree is a dynamic k-d tree over points in R^d.
type Tree struct {
	root    *node
	dim     int
	live    int
	removed int
	byID    map[int]geom.Point
}

type node struct {
	point          geom.Point
	axis           int
	deleted        bool
	left, right    *node
	boxMin, boxMax geom.Vector // bounding box of the whole subtree
	liveCount      int
}

// New builds a balanced tree over pts by recursive median split.
// The input slice is not modified.
func New(dim int, pts []geom.Point) *Tree {
	t := &Tree{dim: dim, byID: make(map[int]geom.Point, len(pts))}
	buf := make([]geom.Point, len(pts))
	copy(buf, pts)
	for _, p := range pts {
		t.byID[p.ID] = p
	}
	t.root = build(buf, 0, dim)
	t.live = len(pts)
	return t
}

func build(pts []geom.Point, axis, dim int) *node {
	if len(pts) == 0 {
		return nil
	}
	mid := len(pts) / 2
	selectKth(pts, mid, axis)
	n := &node{point: pts[mid], axis: axis}
	next := (axis + 1) % dim
	n.left = build(pts[:mid], next, dim)
	n.right = build(pts[mid+1:], next, dim)
	n.refreshBounds(dim)
	return n
}

// selectKth partially sorts pts so pts[k] is the k-th smallest on axis
// (quickselect with median-of-three pivoting).
func selectKth(pts []geom.Point, k, axis int) {
	lo, hi := 0, len(pts)-1
	for lo < hi {
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if pts[mid].Coords[axis] < pts[lo].Coords[axis] {
			pts[mid], pts[lo] = pts[lo], pts[mid]
		}
		if pts[hi].Coords[axis] < pts[lo].Coords[axis] {
			pts[hi], pts[lo] = pts[lo], pts[hi]
		}
		if pts[hi].Coords[axis] < pts[mid].Coords[axis] {
			pts[hi], pts[mid] = pts[mid], pts[hi]
		}
		pivot := pts[mid].Coords[axis]
		i, j := lo, hi
		for i <= j {
			for pts[i].Coords[axis] < pivot {
				i++
			}
			for pts[j].Coords[axis] > pivot {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

func (n *node) refreshBounds(dim int) {
	n.boxMin = n.point.Coords.Clone()
	n.boxMax = n.point.Coords.Clone()
	n.liveCount = 0
	if !n.deleted {
		n.liveCount = 1
	}
	for _, c := range []*node{n.left, n.right} {
		if c == nil {
			continue
		}
		n.liveCount += c.liveCount
		for i := 0; i < dim; i++ {
			if c.boxMin[i] < n.boxMin[i] {
				n.boxMin[i] = c.boxMin[i]
			}
			if c.boxMax[i] > n.boxMax[i] {
				n.boxMax[i] = c.boxMax[i]
			}
		}
	}
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.live }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Contains reports whether a live point with the given id exists.
func (t *Tree) Contains(id int) bool {
	_, ok := t.byID[id]
	return ok
}

// PointByID returns the live point with the given id.
func (t *Tree) PointByID(id int) (geom.Point, bool) {
	p, ok := t.byID[id]
	return p, ok
}

// Points returns all live points in unspecified order.
func (t *Tree) Points() []geom.Point {
	out := make([]geom.Point, 0, t.live)
	for _, p := range t.byID {
		out = append(out, p)
	}
	return out
}

// Insert adds p to the tree. Inserting an ID that is already live replaces
// the old point (delete followed by insert).
func (t *Tree) Insert(p geom.Point) {
	if t.Contains(p.ID) {
		t.Delete(p.ID)
	}
	t.byID[p.ID] = p
	t.live++
	if t.root == nil {
		t.root = &node{point: p, axis: 0}
		t.root.refreshBounds(t.dim)
		return
	}
	t.insertAt(t.root, p)
}

func (t *Tree) insertAt(n *node, p geom.Point) {
	n.liveCount++
	for i := 0; i < t.dim; i++ {
		if p.Coords[i] < n.boxMin[i] {
			n.boxMin[i] = p.Coords[i]
		}
		if p.Coords[i] > n.boxMax[i] {
			n.boxMax[i] = p.Coords[i]
		}
	}
	next := (n.axis + 1) % t.dim
	if p.Coords[n.axis] < n.point.Coords[n.axis] {
		if n.left == nil {
			n.left = &node{point: p, axis: next}
			n.left.refreshBounds(t.dim)
			return
		}
		t.insertAt(n.left, p)
	} else {
		if n.right == nil {
			n.right = &node{point: p, axis: next}
			n.right.refreshBounds(t.dim)
			return
		}
		t.insertAt(n.right, p)
	}
}

// Delete tombstones the point with the given id and reports whether it was
// present. When more than half of the stored nodes are tombstones the tree
// is rebuilt from the live points, keeping queries balanced.
func (t *Tree) Delete(id int) bool {
	p, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	if !t.tombstone(t.root, p) {
		// The map and tree disagree; rebuild defensively to restore the
		// invariant rather than leave a phantom live node.
		t.rebuild()
		t.live = len(t.byID)
		return true
	}
	t.live--
	t.removed++
	if t.removed > t.live {
		t.rebuild()
	}
	return true
}

// tombstone finds the node holding point p (matching by ID) and marks it
// deleted, decrementing live counts along the path. Coordinates equal on the
// split axis may sit in either subtree, so both are searched when needed.
func (t *Tree) tombstone(n *node, p geom.Point) bool {
	if n == nil {
		return false
	}
	// Box pruning: p must be inside the subtree's bounding box.
	for i := 0; i < t.dim; i++ {
		if p.Coords[i] < n.boxMin[i] || p.Coords[i] > n.boxMax[i] {
			return false
		}
	}
	if n.point.ID == p.ID && !n.deleted {
		n.deleted = true
		n.liveCount--
		return true
	}
	if p.Coords[n.axis] < n.point.Coords[n.axis] {
		if t.tombstone(n.left, p) {
			n.liveCount--
			return true
		}
		return false
	}
	if t.tombstone(n.right, p) {
		n.liveCount--
		return true
	}
	// Equal axis values historically went right, but an interleaved rebuild
	// may have placed them left of the median; search the other side too.
	if p.Coords[n.axis] == n.point.Coords[n.axis] && t.tombstone(n.left, p) {
		n.liveCount--
		return true
	}
	return false
}

func (t *Tree) rebuild() {
	pts := t.Points()
	t.root = build(pts, 0, t.dim)
	t.live = len(pts)
	t.removed = 0
}

// boxScoreUB returns an upper bound on <u, p> over every point in the box
// of n. Utilities are nonnegative, so the per-axis maximum is tight.
func boxScoreUB(u geom.Vector, n *node) float64 {
	var s float64
	for i, ui := range u {
		s += ui * n.boxMax[i]
	}
	return s
}

// Result is one scored tuple returned by TopK.
type Result struct {
	Point geom.Point
	Score float64
}

// nodePQ is a max-heap of nodes ordered by score upper bound.
type nodePQ []nodeEntry

type nodeEntry struct {
	n  *node
	ub float64
}

func (q nodePQ) Len() int            { return len(q) }
func (q nodePQ) Less(i, j int) bool  { return q[i].ub > q[j].ub }
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// resultHeap is a min-heap over scores used to keep the best k results.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns the k live points with the largest score <u, p>, in
// decreasing score order. Fewer than k points are returned when the tree
// holds fewer. Ties are broken by smaller point ID so results are stable.
func (t *Tree) TopK(u geom.Vector, k int) []Result {
	if t.root == nil || k <= 0 {
		return nil
	}
	var frontier nodePQ
	heap.Push(&frontier, nodeEntry{t.root, boxScoreUB(u, t.root)})
	var best resultHeap
	for frontier.Len() > 0 {
		e := heap.Pop(&frontier).(nodeEntry)
		if len(best) == k && e.ub <= best[0].Score {
			break // no node can beat the current kth score
		}
		n := e.n
		if !n.deleted {
			s := geom.Score(u, n.point)
			if len(best) < k {
				heap.Push(&best, Result{n.point, s})
			} else if s > best[0].Score {
				best[0] = Result{n.point, s}
				heap.Fix(&best, 0)
			}
		}
		for _, c := range []*node{n.left, n.right} {
			if c == nil || c.liveCount == 0 {
				continue
			}
			ub := boxScoreUB(u, c)
			if len(best) < k || ub > best[0].Score {
				heap.Push(&frontier, nodeEntry{c, ub})
			}
		}
	}
	out := make([]Result, len(best))
	copy(out, best)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}

// KthScore returns the k-th largest score w.r.t. u (ω_k in the paper).
// When fewer than k live points exist it returns the smallest live score,
// so every point counts as a top-k member; ok is false on an empty tree.
func (t *Tree) KthScore(u geom.Vector, k int) (score float64, ok bool) {
	res := t.TopK(u, k)
	if len(res) == 0 {
		return 0, false
	}
	return res[len(res)-1].Score, true
}

// AtLeast returns every live point with score <u, p> >= tau, in unspecified
// order. This realizes Φ_{k,ε} when tau = (1-ε)·ω_k.
func (t *Tree) AtLeast(u geom.Vector, tau float64) []Result {
	var out []Result
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.liveCount == 0 || boxScoreUB(u, n) < tau {
			return
		}
		if !n.deleted {
			if s := geom.Score(u, n.point); s >= tau {
				out = append(out, Result{n.point, s})
			}
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// ApproxTopK returns Φ_{k,ε}(u, P): all live points whose score is at least
// (1-ε)·ω_k(u, P). The slice is sorted by decreasing score.
func (t *Tree) ApproxTopK(u geom.Vector, k int, eps float64) []Result {
	kth, ok := t.KthScore(u, k)
	if !ok {
		return nil
	}
	out := t.AtLeast(u, (1-eps)*kth)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	return out
}
