package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	return pts
}

func TestExtreme(t *testing.T) {
	pts := []geom.Point{
		geom.NewPoint(0, 1.0, 0.0),
		geom.NewPoint(1, 0.0, 1.0),
		geom.NewPoint(2, 0.6, 0.6),
	}
	p, ok := Extreme(pts, geom.Vector{1, 0})
	if !ok || p.ID != 0 {
		t.Fatalf("Extreme x = %v", p)
	}
	p, _ = Extreme(pts, geom.Vector{0, 1})
	if p.ID != 1 {
		t.Fatalf("Extreme y = %v", p)
	}
	u := geom.Normalize(geom.Vector{1, 1})
	p, _ = Extreme(pts, u)
	if p.ID != 2 {
		t.Fatalf("Extreme diag = %v", p)
	}
	if _, ok := Extreme(nil, geom.Vector{1, 0}); ok {
		t.Fatal("Extreme of empty set should report !ok")
	}
}

func TestExtremeTieBreak(t *testing.T) {
	pts := []geom.Point{geom.NewPoint(5, 0.5, 0.5), geom.NewPoint(2, 0.5, 0.5)}
	p, _ := Extreme(pts, geom.Vector{1, 0})
	if p.ID != 2 {
		t.Fatalf("tie should break to smaller id, got %d", p.ID)
	}
}

func TestExtremePointsDedup(t *testing.T) {
	pts := []geom.Point{
		geom.NewPoint(0, 1.0, 1.0), // dominates everything: every direction's extreme
		geom.NewPoint(1, 0.5, 0.5),
	}
	out := ExtremePoints(pts, Net(2, 50, 1))
	if len(out) != 1 || out[0].ID != 0 {
		t.Fatalf("ExtremePoints = %v, want just point 0", out)
	}
}

func TestNet(t *testing.T) {
	net := Net(3, 10, 1)
	if len(net) != 13 {
		t.Fatalf("net size = %d, want 13", len(net))
	}
	for i := 0; i < 3; i++ {
		if net[i][i] != 1 {
			t.Fatalf("net[%d] should be a basis vector: %v", i, net[i])
		}
	}
}

func TestEpsKernelSizeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 500, 4)
	for _, budget := range []int{1, 5, 20, 100} {
		q := EpsKernel(pts, 4, budget, 3)
		if len(q) > budget {
			t.Fatalf("budget %d: coreset has %d points", budget, len(q))
		}
		if len(q) == 0 {
			t.Fatalf("budget %d: empty coreset", budget)
		}
	}
	if q := EpsKernel(pts, 4, 0, 3); q != nil {
		t.Fatal("zero budget should give nil")
	}
	if q := EpsKernel(nil, 4, 5, 3); q != nil {
		t.Fatal("empty input should give nil")
	}
}

// The kernel property: directional width is approximated in every sampled
// direction, and improves as the budget grows.
func TestEpsKernelWidthApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 800, 3)
	test := geom.NewUnitSampler(3, 99).SampleN(2000)
	worstFor := func(q []geom.Point) float64 {
		worst := 0.0
		for _, u := range test {
			wp, wq := Width(pts, u), Width(q, u)
			if wp <= 0 {
				continue
			}
			if loss := 1 - wq/wp; loss > worst {
				worst = loss
			}
		}
		return worst
	}
	small := worstFor(EpsKernel(pts, 3, 5, 1))
	large := worstFor(EpsKernel(pts, 3, 50, 1))
	if large > small+0.01 {
		t.Fatalf("width loss should shrink with budget: small=%v large=%v", small, large)
	}
	if large > 0.05 {
		t.Fatalf("50-point kernel of 800 points has width loss %v", large)
	}
}

func TestWidth(t *testing.T) {
	if Width(nil, geom.Vector{1, 0}) != 0 {
		t.Fatal("width of empty set should be 0")
	}
	pts := []geom.Point{geom.NewPoint(0, 0.3, 0.4)}
	if got := Width(pts, geom.Vector{0, 1}); got != 0.4 {
		t.Fatalf("Width = %v", got)
	}
}

// Property: every extreme point is on the skyline (undominated).
func TestExtremeUndominatedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 5+rng.Intn(100), 2+rng.Intn(3))
		d := pts[0].Dim()
		u := geom.NewUnitSampler(d, seed).Sample()
		// Strictly positive direction: the unique maximizer is undominated.
		for i := range u {
			if u[i] < 1e-6 {
				u[i] = 1e-6
			}
		}
		geom.Normalize(u)
		p, _ := Extreme(pts, u)
		for _, q := range pts {
			if q.ID != p.ID && geom.Dominates(q, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
