// Package kernel computes ε-kernel coresets (Agarwal, Har-Peled,
// Varadarajan 2004) and directional extreme points — the geometric
// machinery behind the ε-KERNEL and SPHERE baselines of the paper's
// evaluation and the "happy point" candidate set of GEOGREEDY.
//
// A subset Q ⊆ P is an ε-kernel when its directional width approximates
// P's in every direction:
//
//	ω(u, Q) >= (1 − ε) · ω(u, P)  for every u in the utility class U.
//
// For k-RMS over nonnegative linear utilities the one-sided version above
// (maxima only) is what matters, and the standard practical construction
// applies: place a δ-net of directions on the nonnegative unit sphere and
// keep the extreme point of each direction. A net of O((1/δ)^{d-1})
// directions yields an ε-kernel with ε = O(δ²) after the usual smoothing
// argument; the binary search in the baselines tunes the net size rather
// than relying on the constant.
package kernel

import (
	"sort"

	"fdrms/internal/geom"
)

// ExtremePoints returns, for each direction, the point of P with the
// maximum score, deduplicated and ordered by id. This is the direction-grid
// coreset: with directions forming a δ-net of U it is the practical
// ε-kernel construction.
func ExtremePoints(P []geom.Point, directions []geom.Vector) []geom.Point {
	seen := make(map[int]geom.Point)
	for _, u := range directions {
		best, ok := Extreme(P, u)
		if ok {
			seen[best.ID] = best
		}
	}
	out := make([]geom.Point, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Extreme returns the point with maximum score in direction u (ties broken
// by smaller id); ok is false when P is empty.
func Extreme(P []geom.Point, u geom.Vector) (geom.Point, bool) {
	if len(P) == 0 {
		return geom.Point{}, false
	}
	best := P[0]
	bestScore := geom.Score(u, best)
	for _, p := range P[1:] {
		s := geom.Score(u, p)
		if s > bestScore || (s == bestScore && p.ID < best.ID) {
			best = p
			bestScore = s
		}
	}
	return best, true
}

// Net returns a set of directions covering the nonnegative orthant of the
// unit sphere: the d basis vectors plus size uniformly sampled unit
// vectors. Deterministic in the seed.
func Net(dim, size int, seed int64) []geom.Vector {
	out := make([]geom.Vector, 0, dim+size)
	for i := 0; i < dim; i++ {
		out = append(out, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, seed)
	out = append(out, s.SampleN(size)...)
	return out
}

// EpsKernel computes a direction-grid ε-kernel of P whose size is at most
// maxSize, by shrinking the net until the coreset fits. It returns the
// coreset (never exceeding maxSize points for gridSizes >= 0).
func EpsKernel(P []geom.Point, dim, maxSize int, seed int64) []geom.Point {
	if maxSize <= 0 || len(P) == 0 {
		return nil
	}
	// The coreset size grows with the net, so binary search the largest net
	// whose extreme-point set still fits within maxSize.
	lo, hi := 0, 8192
	var best []geom.Point
	for lo <= hi {
		mid := (lo + hi) / 2
		cand := ExtremePoints(P, Net(dim, mid, seed))
		if len(cand) <= maxSize {
			best = cand
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best == nil {
		// Even the bare basis directions produced too many points; truncate.
		cand := ExtremePoints(P, Net(dim, 0, seed))
		if len(cand) > maxSize {
			cand = cand[:maxSize]
		}
		best = cand
	}
	return best
}

// Width returns the directional width ω(u, P) = max score (0 for empty P).
func Width(P []geom.Point, u geom.Vector) float64 {
	p, ok := Extreme(P, u)
	if !ok {
		return 0
	}
	return geom.Score(u, p)
}
