package conetree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

func randomItems(rng *rand.Rand, n, d int) []Item {
	items := make([]Item, n)
	for i := range items {
		u := make(geom.Vector, d)
		for j := range u {
			x := rng.NormFloat64()
			if x < 0 {
				x = -x
			}
			u[j] = x
		}
		geom.Normalize(u)
		items[i] = Item{ID: i, U: u, Threshold: 0.2 + rng.Float64()*0.8}
	}
	return items
}

func randomPoint(rng *rand.Rand, d int) geom.Point {
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = rng.Float64()
	}
	return geom.Point{ID: 0, Coords: v}
}

// bruteAffected is the linear-scan reference for Affected.
func bruteAffected(items map[int]Item, p geom.Point) []int {
	var out []int
	//fdrms:orderinvariant out is sorted before return
	for id, it := range items {
		if geom.Score(it.U, p) >= it.Threshold {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// sortedIDs returns the reference model's ids in ascending order. Churn
// tests pick their victims through it so a failing seed replays the exact
// same operation schedule instead of one sampled from map iteration order.
func sortedIDs(ref map[int]Item) []int {
	ids := make([]int, 0, len(ref))
	//fdrms:orderinvariant ids are sorted before return
	for id := range ref {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAffectedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(5)
		items := randomItems(rng, 1+rng.Intn(300), d)
		tr := New(d, items)
		ref := make(map[int]Item, len(items))
		for _, it := range items {
			ref[it.ID] = it
		}
		for q := 0; q < 10; q++ {
			p := randomPoint(rng, d)
			got := sortedCopy(tr.Affected(p))
			want := bruteAffected(ref, p)
			if !equalInts(got, want) {
				t.Fatalf("trial %d: Affected mismatch\n got %v\nwant %v", trial, got, want)
			}
		}
	}
}

func TestAffectedEmptyTree(t *testing.T) {
	tr := New(3, nil)
	if got := tr.Affected(geom.NewPoint(0, 1, 1, 1)); got != nil {
		t.Fatalf("empty tree Affected = %v", got)
	}
	if tr.Visited(geom.NewPoint(0, 1, 1, 1)) != 0 {
		t.Fatal("empty tree Visited != 0")
	}
}

func TestInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 4
	tr := New(d, nil)
	ref := make(map[int]Item)
	next := 0
	for op := 0; op < 1500; op++ {
		switch {
		case rng.Intn(3) != 0 || len(ref) == 0:
			it := randomItems(rng, 1, d)[0]
			it.ID = next
			next++
			tr.Insert(it)
			ref[it.ID] = it
		default:
			id := sortedIDs(ref)[rng.Intn(len(ref))]
			if !tr.Delete(id) {
				t.Fatalf("Delete(%d) reported missing", id)
			}
			delete(ref, id)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
		}
		if op%50 == 0 {
			p := randomPoint(rng, d)
			if !equalInts(sortedCopy(tr.Affected(p)), bruteAffected(ref, p)) {
				t.Fatalf("Affected mismatch after op %d", op)
			}
		}
	}
}

func TestSetThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 3
	items := randomItems(rng, 100, d)
	tr := New(d, items)
	ref := make(map[int]Item, len(items))
	for _, it := range items {
		ref[it.ID] = it
	}
	// Randomly mutate thresholds and recheck correctness each time.
	for i := 0; i < 300; i++ {
		id := rng.Intn(100)
		tau := rng.Float64() * 1.5
		tr.SetThreshold(id, tau)
		it := ref[id]
		it.Threshold = tau
		ref[id] = it
		if i%20 == 0 {
			p := randomPoint(rng, d)
			if !equalInts(sortedCopy(tr.Affected(p)), bruteAffected(ref, p)) {
				t.Fatalf("Affected mismatch after threshold update %d", i)
			}
		}
	}
	if tau, ok := tr.Threshold(5); !ok || tau != ref[5].Threshold {
		t.Fatalf("Threshold(5) = %v,%v want %v", tau, ok, ref[5].Threshold)
	}
	if _, ok := tr.Threshold(12345); ok {
		t.Fatal("Threshold of missing id should report !ok")
	}
	tr.SetThreshold(99999, 1) // must be a harmless no-op
}

func TestDeleteMissing(t *testing.T) {
	tr := New(2, []Item{{ID: 0, U: geom.Vector{1, 0}, Threshold: 0.5}})
	if tr.Delete(7) {
		t.Fatal("deleting missing id should report false")
	}
	if !tr.Delete(0) {
		t.Fatal("delete existing id should report true")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestInsertReplacesSameID(t *testing.T) {
	tr := New(2, []Item{{ID: 0, U: geom.Vector{1, 0}, Threshold: 0.5}})
	tr.Insert(Item{ID: 0, U: geom.Vector{0, 1}, Threshold: 0.1})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	// p scores 0.9 on axis y: only the new direction with threshold 0.1 matches.
	got := tr.Affected(geom.NewPoint(0, 0.0, 0.9))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Affected = %v", got)
	}
}

func TestIdenticalDirections(t *testing.T) {
	// Degenerate split: many copies of the same direction must still build.
	items := make([]Item, 40)
	for i := range items {
		items[i] = Item{ID: i, U: geom.Vector{1, 0}, Threshold: 0.5}
	}
	tr := New(2, items)
	got := tr.Affected(geom.NewPoint(0, 0.7, 0.0))
	if len(got) != 40 {
		t.Fatalf("Affected returned %d of 40 identical directions", len(got))
	}
}

// Visited must never be smaller than the number of affected utilities
// (pruning is conservative) and never larger than the index size.
func TestVisitedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 5
	items := randomItems(rng, 400, d)
	tr := New(d, items)
	for q := 0; q < 30; q++ {
		p := randomPoint(rng, d)
		visited := tr.Visited(p)
		affected := len(tr.Affected(p))
		if visited < affected {
			t.Fatalf("Visited %d < Affected %d", visited, affected)
		}
		if visited > tr.Len() {
			t.Fatalf("Visited %d > Len %d", visited, tr.Len())
		}
	}
}

// Pruning must actually help on clustered thresholds: with uniformly high
// thresholds and a weak point, almost everything should be pruned.
func TestPruningEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 4
	items := randomItems(rng, 1000, d)
	for i := range items {
		items[i].Threshold = 0.9
	}
	tr := New(d, items)
	weak := geom.NewPoint(0, 0.1, 0.1, 0.1, 0.1) // max possible score 0.2·sqrt(d) < 0.9
	if got := tr.Affected(weak); len(got) != 0 {
		t.Fatalf("weak point affected %d utilities", len(got))
	}
	if visited := tr.Visited(weak); visited > 100 {
		t.Errorf("pruning ineffective: visited %d of 1000 for a hopeless point", visited)
	}
}

// Property: Affected is exact under random mixed operations.
func TestAffectedExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		tr := New(d, nil)
		ref := make(map[int]Item)
		next := 0
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				it := randomItems(rng, 1, d)[0]
				it.ID = next
				next++
				tr.Insert(it)
				ref[it.ID] = it
			case 2:
				if len(ref) == 0 {
					continue
				}
				id := sortedIDs(ref)[rng.Intn(len(ref))]
				tr.Delete(id)
				delete(ref, id)
			case 3:
				if len(ref) == 0 {
					continue
				}
				id := sortedIDs(ref)[rng.Intn(len(ref))]
				tau := rng.Float64()
				tr.SetThreshold(id, tau)
				it := ref[id]
				it.Threshold = tau
				ref[id] = it
			}
		}
		p := randomPoint(rng, d)
		return equalInts(sortedCopy(tr.Affected(p)), bruteAffected(ref, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// New must deduplicate ids: building from a slice with repeated ids used to
// plant the same id in two leaf slots, and the first Delete left a phantom
// copy whose next refreshLeaf dereferenced the no-longer-mapped id (nil
// panic). The last item of a duplicated id wins, matching Insert's replace
// semantics.
func TestNewDuplicateIDs(t *testing.T) {
	items := []Item{
		{ID: 0, U: geom.Vector{1, 0}, Threshold: 0.9},
		{ID: 0, U: geom.Vector{0, 1}, Threshold: 0.1}, // replaces the first
		{ID: 1, U: geom.Vector{1, 0}, Threshold: 0.5},
	}
	tr := New(2, items)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct ids", tr.Len())
	}
	// Only the last copy of id 0 (direction y, threshold 0.1) may match.
	got := sortedCopy(tr.Affected(geom.NewPoint(0, 0.0, 0.8)))
	if !equalInts(got, []int{0}) {
		t.Fatalf("Affected = %v, want [0]", got)
	}
	// Deleting the duplicated id must not leave a phantom leaf entry: the
	// follow-up delete (and its refreshLeaf) used to nil-panic.
	if !tr.Delete(0) {
		t.Fatal("Delete(0) reported missing")
	}
	if !tr.Delete(1) {
		t.Fatal("Delete(1) reported missing")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if got := tr.Affected(geom.NewPoint(0, 1, 1)); got != nil {
		t.Fatalf("emptied tree Affected = %v", got)
	}
}

// Many duplicates spanning several leaves, checked against brute force
// after deleting the duplicated ids.
func TestNewDuplicateIDsManyLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := 3
	base := randomItems(rng, 40, d)
	items := append(append([]Item(nil), base...), base[:20]...) // 20 ids twice
	tr := New(d, items)
	if tr.Len() != 40 {
		t.Fatalf("Len = %d, want 40", tr.Len())
	}
	ref := make(map[int]Item, len(base))
	for _, it := range base {
		ref[it.ID] = it
	}
	for id := 0; id < 20; id++ {
		if !tr.Delete(id) {
			t.Fatalf("Delete(%d) reported missing", id)
		}
		delete(ref, id)
		p := randomPoint(rng, d)
		if !equalInts(sortedCopy(tr.Affected(p)), bruteAffected(ref, p)) {
			t.Fatalf("Affected mismatch after deleting %d", id)
		}
	}
}

func BenchmarkAffected(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 6
	items := randomItems(rng, 4096, d)
	tr := New(d, items)
	pts := make([]geom.Point, 64)
	for i := range pts {
		pts[i] = randomPoint(rng, d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Affected(pts[i%len(pts)])
	}
}

// Insert-driven leaf overflow must be repaired by a LOCAL re-split of the
// overflowing leaf, never by a whole-tree rebuild — the O(M log M) rebuild
// is what used to put utility-churn spikes in the update tail. Affected
// results must be exactly what a freshly built tree reports throughout.
func TestInsertOverflowResplitsLocally(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 5
	base := randomItems(rng, 64, d)
	tr := New(d, base)
	ref := make(map[int]Item, len(base))
	for _, it := range base {
		ref[it.ID] = it
	}
	if tr.Rebuilds != 0 {
		t.Fatalf("New counted %d rebuilds", tr.Rebuilds)
	}
	// Insert enough churn to overflow many leaves many times over.
	extra := randomItems(rng, 512, d)
	for i, it := range extra {
		it.ID = 1000 + i
		tr.Insert(it)
		ref[it.ID] = it
	}
	if tr.Rebuilds != 0 {
		t.Fatalf("insert churn triggered %d whole-tree rebuilds; overflow must re-split locally", tr.Rebuilds)
	}
	if tr.Resplits == 0 {
		t.Fatal("512 insertions never overflowed a leaf; the scenario lost its teeth")
	}
	for q := 0; q < 50; q++ {
		p := randomPoint(rng, d)
		if got, want := sortedCopy(tr.Affected(p)), bruteAffected(ref, p); !equalInts(got, want) {
			t.Fatalf("Affected mismatch after re-splits\n got %v\nwant %v", got, want)
		}
	}
	// The delete-churn threshold path must still rebuild the whole tree.
	for _, id := range sortedIDs(ref) {
		tr.Delete(id)
		delete(ref, id)
		if len(ref) < 64 {
			break
		}
	}
	if tr.Rebuilds == 0 {
		t.Fatal("delete churn past the threshold should still trigger a full rebuild")
	}
	p := randomPoint(rng, d)
	if got, want := sortedCopy(tr.Affected(p)), bruteAffected(ref, p); !equalInts(got, want) {
		t.Fatalf("Affected mismatch after churn rebuild\n got %v\nwant %v", got, want)
	}
}

// A degenerate leaf (identical directions) cannot split; the re-split
// attempt must leave the tree correct and not loop into a rebuild.
func TestInsertOverflowDegenerateLeaf(t *testing.T) {
	d := 3
	u := geom.Vector{1, 0, 0}
	var items []Item
	for i := 0; i < 4; i++ {
		items = append(items, Item{ID: i, U: append(geom.Vector(nil), u...), Threshold: 0.5})
	}
	tr := New(d, items)
	ref := make(map[int]Item)
	for _, it := range items {
		ref[it.ID] = it
	}
	for i := 4; i < 96; i++ {
		it := Item{ID: i, U: append(geom.Vector(nil), u...), Threshold: 0.5}
		tr.Insert(it)
		ref[i] = it
	}
	if tr.Rebuilds != 0 {
		t.Fatalf("degenerate overflow triggered %d whole-tree rebuilds", tr.Rebuilds)
	}
	p := geom.Point{ID: 0, Coords: geom.Vector{1, 1, 1}}
	if got, want := sortedCopy(tr.Affected(p)), bruteAffected(ref, p); !equalInts(got, want) {
		t.Fatalf("Affected mismatch on degenerate leaf\n got %v\nwant %v", got, want)
	}
	p = geom.Point{ID: 0, Coords: geom.Vector{0.1, 0.1, 0.1}}
	if got, want := sortedCopy(tr.Affected(p)), bruteAffected(ref, p); !equalInts(got, want) {
		t.Fatalf("Affected mismatch below threshold\n got %v\nwant %v", got, want)
	}
}
