// Package conetree implements the utility index (UI) of Section III-C: an
// angular binary-space-partitioning tree over the sampled utility vectors,
// following the cone tree of Ram & Gray (KDD 2012).
//
// Linear top-k results depend only on a utility vector's direction, so the
// tree clusters utilities with high cosine similarity. Each node keeps a
// unit center, the maximum angle from the center to any vector in its
// subtree, and the minimum pruning threshold of its subtree. For an
// inserted tuple p the score of any u in the node is bounded by
//
//	<u, p> <= ‖p‖ · cos(max(0, θ(center, p) − maxAngle)),
//
// (spherical triangle inequality), so whole clusters whose bound falls
// below their minimum threshold are skipped — this is how FD-RMS touches
// only the u(Δt) utilities whose approximate top-k results an insertion can
// change (the top-down scheme of Yu et al., SIGMOD 2012).
package conetree

import (
	"math"
	"sort"

	"fdrms/internal/geom"
)

const leafCapacity = 8

// Item is one indexed utility vector with its pruning threshold, typically
// (1-ε)·ω_k(u, P). A tuple p can affect u only when <u, p> >= Threshold.
type Item struct {
	ID        int
	U         geom.Vector
	Threshold float64
}

// Tree is a dynamic cone tree over utility vectors.
type Tree struct {
	root  *node
	dim   int
	items map[int]*entry
	churn int // structural deletions since the last rebuild

	// stack is the reusable DFS scratch of the probe path (AffectedInto,
	// Visited). The tree is single-writer/single-prober, matching the topk
	// engine's batch pipeline, which probes only between parallel phases.
	stack []*node

	// Maintenance counters: Rebuilds counts whole-tree rebuilds (the
	// delete-churn threshold path and structural fallbacks), Resplits the
	// localized leaf re-splits that replaced the insert-overflow rebuild.
	// Tests use them to pin the tail-latency contract: steady insertion
	// churn must not trigger whole-tree O(M log M) rebuilds.
	Rebuilds int
	Resplits int
}

type entry struct {
	item Item
	leaf *node
}

type node struct {
	parent      *node
	left, right *node
	center      geom.Vector // unit mean direction, conservative
	maxAngle    float64     // max angle(center, u) over the subtree
	minThresh   float64     // min Threshold over the subtree
	ids         []int       // leaf payload (nil for internal nodes)
	count       int
}

// New builds a cone tree over the given items.
func New(dim int, items []Item) *Tree {
	t := &Tree{dim: dim, items: make(map[int]*entry, len(items))}
	for _, it := range items {
		t.items[it.ID] = &entry{item: it} // duplicate ids: the last item wins
	}
	// One leaf slot per DISTINCT id (first-occurrence order keeps the build
	// deterministic). Planting a duplicated id in two leaves would leave a
	// phantom copy behind after Delete, and the next refreshLeaf of the
	// other leaf would dereference the no-longer-mapped id.
	ids := make([]int, 0, len(t.items))
	seen := make(map[int]bool, len(t.items))
	for _, it := range items {
		if seen[it.ID] {
			continue
		}
		seen[it.ID] = true
		ids = append(ids, it.ID)
	}
	t.root = t.build(nil, ids)
	return t
}

// Len returns the number of indexed utilities.
func (t *Tree) Len() int { return len(t.items) }

// build constructs a subtree over ids (splitting by two far-apart pivots, as
// in Algorithm 9 of Ram & Gray).
func (t *Tree) build(parent *node, ids []int) *node {
	if len(ids) == 0 {
		return nil
	}
	n := &node{parent: parent, count: len(ids)}
	if len(ids) <= leafCapacity {
		n.ids = append([]int(nil), ids...)
		for _, id := range ids {
			t.items[id].leaf = n
		}
		t.refreshLeaf(n)
		return n
	}
	// Pivot a: farthest (by angle) from ids[0]; pivot b: farthest from a.
	a := t.farthestFrom(ids, t.items[ids[0]].item.U)
	b := t.farthestFrom(ids, t.items[a].item.U)
	ua, ub := t.items[a].item.U, t.items[b].item.U
	var left, right []int
	for _, id := range ids {
		u := t.items[id].item.U
		if geom.CosAngle(u, ua) >= geom.CosAngle(u, ub) {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate (e.g., all identical directions): force a leaf chain.
		n.ids = append([]int(nil), ids...)
		for _, id := range ids {
			t.items[id].leaf = n
		}
		t.refreshLeaf(n)
		return n
	}
	n.left = t.build(n, left)
	n.right = t.build(n, right)
	t.refreshInternal(n)
	return n
}

func (t *Tree) farthestFrom(ids []int, u geom.Vector) int {
	best, bestCos := ids[0], math.Inf(1)
	for _, id := range ids {
		if c := geom.CosAngle(t.items[id].item.U, u); c < bestCos {
			bestCos = c
			best = id
		}
	}
	return best
}

// refreshLeaf recomputes a leaf's center, maxAngle, minThresh, and count
// from its payload.
func (t *Tree) refreshLeaf(n *node) {
	n.count = len(n.ids)
	if n.count == 0 {
		n.center = nil
		n.maxAngle = 0
		n.minThresh = math.Inf(1)
		return
	}
	center := make(geom.Vector, t.dim)
	for _, id := range n.ids {
		center = geom.Add(center, t.items[id].item.U)
	}
	geom.Normalize(center)
	n.center = center
	n.maxAngle = 0
	n.minThresh = math.Inf(1)
	for _, id := range n.ids {
		it := t.items[id].item
		if a := geom.Angle(center, it.U); a > n.maxAngle {
			n.maxAngle = a
		}
		if it.Threshold < n.minThresh {
			n.minThresh = it.Threshold
		}
	}
}

// refreshInternal recomputes an internal node's summary from its children.
// Children with count 0 are ignored.
func (t *Tree) refreshInternal(n *node) {
	n.count = 0
	n.minThresh = math.Inf(1)
	var weighted geom.Vector
	for _, c := range []*node{n.left, n.right} {
		if c == nil || c.count == 0 {
			continue
		}
		n.count += c.count
		if c.minThresh < n.minThresh {
			n.minThresh = c.minThresh
		}
		w := geom.Scale(c.center, float64(c.count))
		if weighted == nil {
			weighted = w
		} else {
			weighted = geom.Add(weighted, w)
		}
	}
	if n.count == 0 {
		n.center = nil
		n.maxAngle = 0
		return
	}
	geom.Normalize(weighted)
	n.center = weighted
	// Conservative bound: a child's members are within child.maxAngle of the
	// child center, which is within angle(center, child.center) of ours.
	n.maxAngle = 0
	for _, c := range []*node{n.left, n.right} {
		if c == nil || c.count == 0 {
			continue
		}
		if a := geom.Angle(n.center, c.center) + c.maxAngle; a > n.maxAngle {
			n.maxAngle = a
		}
	}
	if n.maxAngle > math.Pi {
		n.maxAngle = math.Pi
	}
}

// Insert adds a utility vector. Inserting an existing ID replaces it.
func (t *Tree) Insert(it Item) {
	if _, ok := t.items[it.ID]; ok {
		t.Delete(it.ID)
	}
	e := &entry{item: it}
	t.items[it.ID] = e
	if t.root == nil || t.root.count == 0 {
		t.rebuild()
		return
	}
	n := t.root
	for n.ids == nil {
		// Descend toward the child whose center is angularly closer,
		// enlarging the cone along the way so bounds stay valid.
		if a := geom.Angle(n.center, it.U); a > n.maxAngle {
			n.maxAngle = a
		}
		if it.Threshold < n.minThresh {
			n.minThresh = it.Threshold
		}
		n.count++
		l, r := n.left, n.right
		switch {
		case l == nil || l.count == 0:
			n = r
		case r == nil || r.count == 0:
			n = l
		case geom.CosAngle(l.center, it.U) >= geom.CosAngle(r.center, it.U):
			n = l
		default:
			n = r
		}
	}
	n.ids = append(n.ids, it.ID)
	e.leaf = n
	if a := geom.Angle(n.center, it.U); a > n.maxAngle {
		n.maxAngle = a
	}
	if it.Threshold < n.minThresh {
		n.minThresh = it.Threshold
	}
	n.count++
	if len(n.ids) > 4*leafCapacity {
		t.splitLeaf(n) // keep leaves from degenerating into linear scans
	}
}

// splitLeaf re-splits a single overflowing leaf into a fresh subtree built
// over its payload, splicing it in place and tightening the summaries along
// the leaf-to-root path. This replaces the whole-tree rebuild the insert
// path used to trigger on leaf overflow: the work is O(|leaf| log |leaf|)
// instead of O(M log M), bounding insert tail latency, while Affected
// results are unchanged — leaf checks are exact and the refreshed ancestor
// bounds stay conservative (they only tighten). The delete-churn threshold
// path keeps the full rebuild, which also re-balances the split hierarchy.
//
// A leaf whose members all share one direction cannot split (build falls
// back to a single oversized leaf); the attempt costs O(|leaf|) per insert
// past overflow — still strictly cheaper than the full rebuild this path
// used to run, which hit the same degeneracy at O(M) — and the rebuilt
// leaf is spliced in anyway, since build already repointed its members'
// entry.leaf and the splice is the O(1) way to keep them consistent.
// Resplits counts only attempts that actually split, so the tail-latency
// regression tests stay meaningful.
func (t *Tree) splitLeaf(leaf *node) {
	sub := t.build(leaf.parent, leaf.ids)
	if sub.ids == nil {
		t.Resplits++
	}
	if leaf.parent == nil {
		t.root = sub
	} else if leaf.parent.left == leaf {
		leaf.parent.left = sub
	} else {
		leaf.parent.right = sub
	}
	for n := sub.parent; n != nil; n = n.parent {
		t.refreshInternal(n)
	}
}

// Delete removes a utility vector by id; it reports whether it was present.
func (t *Tree) Delete(id int) bool {
	e, ok := t.items[id]
	if !ok {
		return false
	}
	delete(t.items, id)
	leaf := e.leaf
	for i, x := range leaf.ids {
		if x == id {
			leaf.ids = append(leaf.ids[:i], leaf.ids[i+1:]...)
			break
		}
	}
	t.refreshLeaf(leaf)
	for n := leaf.parent; n != nil; n = n.parent {
		t.refreshInternal(n)
	}
	t.churn++
	if t.churn > len(t.items)/2+leafCapacity {
		t.rebuild()
	}
	return true
}

// SetThreshold updates the pruning threshold for id and repairs subtree
// minima along the leaf-to-root path.
func (t *Tree) SetThreshold(id int, tau float64) {
	e, ok := t.items[id]
	if !ok {
		return
	}
	e.item.Threshold = tau
	leaf := e.leaf
	min := math.Inf(1)
	for _, x := range leaf.ids {
		if th := t.items[x].item.Threshold; th < min {
			min = th
		}
	}
	leaf.minThresh = min
	for n := leaf.parent; n != nil; n = n.parent {
		min = math.Inf(1)
		for _, c := range []*node{n.left, n.right} {
			if c != nil && c.count > 0 && c.minThresh < min {
				min = c.minThresh
			}
		}
		n.minThresh = min
	}
}

// Threshold returns the current threshold of id.
func (t *Tree) Threshold(id int) (float64, bool) {
	e, ok := t.items[id]
	if !ok {
		return 0, false
	}
	return e.item.Threshold, true
}

func (t *Tree) rebuild() {
	t.Rebuilds++
	ids := make([]int, 0, len(t.items))
	//fdrms:orderinvariant key collection only; sorted on the next line before any use
	for id := range t.items {
		ids = append(ids, id)
	}
	// Canonical input order: build() picks pivots positionally (ids[0],
	// scan-order ties in farthestFrom), so the tree SHAPE is a function of
	// the id order. Sorting makes every rebuild of the same id set produce
	// the same tree — probe order, visited counts, and perf are then
	// reproducible run to run instead of following map iteration order.
	sort.Ints(ids)
	t.root = t.build(nil, ids)
	t.churn = 0
}

// Affected returns the IDs of every indexed utility u with
// <u, p> >= Threshold(u), i.e., the utilities whose ε-approximate top-k
// result the insertion of p can change. Visited leaves check exactly;
// pruned subtrees are guaranteed to contain no match. The slice is freshly
// allocated; hot paths should use AffectedInto.
func (t *Tree) Affected(p geom.Point) []int {
	return t.AffectedInto(p, nil)
}

// AffectedInto is Affected appending into out (typically a reused buffer
// re-sliced to length zero), avoiding any allocation when both out and the
// tree's DFS scratch have warmed up. Matches are appended in leaf order
// (left subtree before right), the order the recursive walk produced.
func (t *Tree) AffectedInto(p geom.Point, out []int) []int {
	if t.root == nil || t.root.count == 0 {
		return out
	}
	normP := geom.Norm(p.Coords)
	stack := append(t.stack[:0], t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || n.count == 0 {
			continue
		}
		// Upper bound of <u, p> over the cone.
		theta := geom.Angle(n.center, p.Coords) - n.maxAngle
		if theta < 0 {
			theta = 0
		}
		if normP*math.Cos(theta) < n.minThresh {
			continue
		}
		if n.ids != nil {
			for _, id := range n.ids {
				it := t.items[id].item
				if geom.Score(it.U, p) >= it.Threshold {
					out = append(out, id)
				}
			}
			continue
		}
		stack = append(stack, n.right, n.left)
	}
	clear(stack[:cap(stack)]) // drop node references so rebuilds free old nodes
	t.stack = stack[:0]
	return out
}

// Visited counts the leaf items whose exact score would be evaluated for p;
// it is Affected without the final filter and exists for the cone-pruning
// ablation experiment.
func (t *Tree) Visited(p geom.Point) int {
	if t.root == nil || t.root.count == 0 {
		return 0
	}
	normP := geom.Norm(p.Coords)
	count := 0
	stack := append(t.stack[:0], t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || n.count == 0 {
			continue
		}
		theta := geom.Angle(n.center, p.Coords) - n.maxAngle
		if theta < 0 {
			theta = 0
		}
		if normP*math.Cos(theta) < n.minThresh {
			continue
		}
		if n.ids != nil {
			count += len(n.ids)
			continue
		}
		stack = append(stack, n.right, n.left)
	}
	clear(stack[:cap(stack)]) // drop node references so rebuilds free old nodes
	t.stack = stack[:0]
	return count
}
