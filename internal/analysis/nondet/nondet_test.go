package nondet_test

import (
	"testing"

	"fdrms/internal/analysis/analysistest"
	"fdrms/internal/analysis/nondet"
)

// TestNondet seeds a wall-clock read two hops below Snapshot, map-keyed
// formatting one hop below it, and a global math/rand call directly in
// ApplyBatch — and keeps a locally seeded *rand.Rand inside a root plus an
// unreachable time.Now as the negatives the reachability walk must skip.
func TestNondet(t *testing.T) {
	old := nondet.ContractPaths
	nondet.ContractPaths = []string{"fixture/nondet"}
	defer func() { nondet.ContractPaths = old }()
	analysistest.Run(t, "nondet", nondet.Analyzer)
}
