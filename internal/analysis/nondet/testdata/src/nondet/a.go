// Fixture for the nondet analyzer: the test points ContractPaths at this
// package, making Snapshot, ApplyBatch, and EncodeSeeded the determinism
// roots. Forbidden calls are flagged only when reachable from a root.
package a

import (
	"fmt"
	"math/rand"
	"time"
)

type engine struct{ m map[int]int }

func (e *engine) Snapshot() []byte {
	stamp()
	return e.encode()
}

func (e *engine) encode() []byte {
	fmt.Println(e.m) // want "map-ordered formatting"
	return nil
}

func stamp() {
	_ = time.Now() // want "wall clock"
}

func (e *engine) ApplyBatch(ops []int) {
	if rand.Intn(2) == 0 { // want "global math/rand"
		_ = ops
	}
}

func (e *engine) EncodeSeeded() []byte {
	r := rand.New(rand.NewSource(7)) // ok: locally seeded source
	_ = r.Intn(10)
	return nil
}

func helper() {
	_ = time.Now() // ok: not reachable from a determinism root
}
