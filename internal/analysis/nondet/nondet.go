// Package nondet walks the static call graph from the module's determinism
// roots — Snapshot, Encode*/Decode*, ApplyBatch*, AppendOps, Freeze,
// Restore* in the contract packages — and flags calls that can make two
// runs over the same input diverge:
//
//   - wall-clock reads (time.Now, time.Since, time.Until),
//   - the global math/rand source (package-level functions; a locally
//     seeded *rand.Rand is fine and so are rand.New/NewSource themselves),
//   - fmt/json/gob formatting of a map-typed value (output order is
//     formatter-defined, not contract-defined; snapshot and WAL bytes must
//     come from explicitly sorted iteration).
//
// The graph is built from every package in the module, so a root in
// internal/core that reaches time.Now through three helper hops in another
// package is still caught; each finding reports the call chain from its
// root. Dynamic calls (interface methods, function values) dead-end — the
// analyzer is a gate on the concrete deterministic pipeline, not an alias
// analysis.
package nondet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"fdrms/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "no wall clock, global randomness, or map-ordered formatting on paths reachable from the determinism roots",
	Mode: analysis.WholeProgram,
	Run:  run,
}

// ContractPaths are the packages whose exported entry points are
// determinism roots. Tests may override.
var ContractPaths = []string{
	"fdrms/internal/topk",
	"fdrms/internal/core",
	"fdrms/internal/setcover",
	"fdrms/internal/conetree",
	"fdrms/internal/wal",
}

// RootPattern matches the names of determinism-contract entry points.
// Tests may override.
var RootPattern = regexp.MustCompile(`^(Snapshot|Encode\w*|Decode\w*|ApplyBatch\w*|AppendOps|Freeze|Restore\w*)$`)

// forbiddenCall classifies one banned callee, or returns "".
func forbiddenCall(f *types.Func) string {
	full := f.FullName()
	switch full {
	case "time.Now", "time.Since", "time.Until":
		return "wall clock (" + full + ")"
	}
	if pkg := f.Pkg(); pkg != nil && pkg.Path() == "math/rand" && !strings.HasPrefix(full, "(") {
		switch f.Name() {
		case "New", "NewSource", "NewZipf":
			return "" // constructing a locally seeded source is deterministic
		}
		return "global math/rand source (" + full + ")"
	}
	return ""
}

// formatPkgs are the packages whose functions serialize values in an order
// the formatter, not the contract, chooses.
var formatPkgs = map[string]bool{"fmt": true, "encoding/json": true, "encoding/gob": true}

// callSite is one interesting call inside a function body.
type callSite struct {
	pos  token.Pos
	what string // non-empty for forbidden calls
	to   string // callee node key, "" when not a module function
}

// node is one declared function of the module.
type node struct {
	key   string
	calls []callSite
}

func run(pass *analysis.Pass) error {
	nodes := map[string]*node{}
	var roots []string
	rootSeen := map[string]bool{}

	for _, pkg := range pass.Prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				nd := &node{key: key}
				nodes[key] = nd
				collectCalls(pkg, fd, nd)
				if analysis.HasPath(ContractPaths, pkg.Path) && RootPattern.MatchString(fn.Name()) && !rootSeen[key] {
					rootSeen[key] = true
					roots = append(roots, key)
				}
			}
		}
	}
	sort.Strings(roots) // deterministic traversal → deterministic chains

	// BFS from the roots, remembering one shortest parent chain.
	parent := map[string]string{}
	var queue []string
	for _, r := range roots {
		if _, seen := parent[r]; !seen {
			parent[r] = ""
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		nd := nodes[key]
		if nd == nil {
			continue
		}
		for _, cs := range nd.calls {
			if cs.what != "" {
				pass.Reportf(cs.pos, "%s on deterministic path %s", cs.what, chain(parent, key))
			}
			if cs.to != "" {
				if _, seen := parent[cs.to]; !seen && nodes[cs.to] != nil {
					parent[cs.to] = key
					queue = append(queue, cs.to)
				}
			}
		}
	}
	return nil
}

// collectCalls records the interesting calls of one function body: edges to
// module functions (by key) and forbidden callees. Calls inside func
// literals are attributed to the declaring function — an overapproximation
// that errs toward flagging.
func collectCalls(pkg *analysis.Package, fd *ast.FuncDecl, nd *node) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pkg.Info, call)
		if f == nil {
			return true
		}
		cs := callSite{pos: call.Pos(), to: f.FullName()}
		if what := forbiddenCall(f); what != "" {
			cs.what = what
		} else if fp := f.Pkg(); fp != nil && formatPkgs[fp.Path()] {
			for _, arg := range call.Args {
				if tv, ok := pkg.Info.Types[arg]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						cs.what = fmt.Sprintf("map-ordered formatting (%s of %s)", f.FullName(), types.TypeString(tv.Type, nil))
						break
					}
				}
			}
		}
		nd.calls = append(nd.calls, cs)
		return true
	})
}

// chain renders the BFS path from a root to key, e.g.
// "reachable via (fdrms/internal/core.FDRMS).Snapshot → encodeUtils".
func chain(parent map[string]string, key string) string {
	var hops []string
	for k := key; k != ""; k = parent[k] {
		hops = append(hops, shortName(k))
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return "reachable via " + strings.Join(hops, " → ")
}

// shortName trims import-path noise from a node key for messages.
func shortName(key string) string {
	key = strings.ReplaceAll(key, "fdrms/internal/", "")
	return strings.ReplaceAll(key, "fdrms/", "")
}
