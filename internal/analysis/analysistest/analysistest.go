// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `// want` expectations in the fixture source —
// the same testing shape as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the module's own loader.
//
// A fixture line that should be flagged carries a trailing comment
//
//	x := f() // want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. The run
// fails on any diagnostic without a matching expectation and on any
// expectation no diagnostic matched. Fixtures live under
// testdata/src/<name>/ and are loaded as the import path "fixture/<name>";
// they may import both the standard library and fdrms packages.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fdrms/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern, keyed by file:line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<name> relative to the caller's package directory,
// runs the analyzer over it, and reports mismatches as test failures.
func Run(t *testing.T, name string, a *analysis.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(moduleDir)
	prog, err := loader.LoadDir("fixture/"+name, absDir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := collectWants(absDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no diagnostic at %s matched %q", key, w.raw)
			}
		}
	}
}

// collectWants parses the fixture files' comments for `// want` patterns.
func collectWants(dir string) (map[string][]*expectation, error) {
	out := map[string][]*expectation{}
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
					pat := strings.ReplaceAll(q[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, err
					}
					key := posKey(pos.Filename, pos.Line)
					out[key] = append(out[key], &expectation{re: re, raw: pat})
				}
			}
		}
	}
	return out, nil
}

func posKey(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
