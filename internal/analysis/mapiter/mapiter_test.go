package mapiter_test

import (
	"testing"

	"fdrms/internal/analysis/analysistest"
	"fdrms/internal/analysis/mapiter"
)

// TestMapiter seeds violations (an unannotated range, a reasonless
// annotation, a stale annotation) next to the legal shapes (annotation on
// the range line or the line above, non-map ranges).
func TestMapiter(t *testing.T) {
	old := mapiter.ContractPaths
	mapiter.ContractPaths = append([]string{"fixture/mapiter"}, old...)
	defer func() { mapiter.ContractPaths = old }()
	analysistest.Run(t, "mapiter", mapiter.Analyzer)
}

// TestMapiterNonContractPackage proves the analyzer stays silent outside
// the contract packages: the fixture ranges over a map with no annotation
// and expects no diagnostics.
func TestMapiterNonContractPackage(t *testing.T) {
	analysistest.Run(t, "nocontract", mapiter.Analyzer)
}
