// Package mapiter flags `range` over map types inside the determinism-
// contract packages. Go randomizes map iteration order per run, so any map
// range on a path that feeds emitted change groups, snapshot bytes, or the
// WAL would silently break the module's bit-exact batch≡sequential and
// recovery contracts. A loop that is provably order-invariant (commutative
// accumulation, or followed by a canonical sort before anything observes
// the order) may be annotated
//
//	//fdrms:orderinvariant <one-line proof>
//
// on the line of — or the line immediately above — the range statement.
// The reason is mandatory: every annotation is a reviewed, greppable audit
// record of WHY that iteration order cannot reach an observable output.
// Annotations that no longer sit on a map range are themselves flagged, so
// stale audit records cannot accumulate.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fdrms/internal/analysis"
)

// Marker is the annotation tag, without the comment slashes.
const Marker = "fdrms:orderinvariant"

// ContractPaths are the packages whose map ranges must be dispositioned:
// the deterministic maintenance pipeline (topk → core → setcover/conetree),
// the snapshot and WAL encoders, and the MVCC serving layer whose
// generations must equal a sequential twin. Tests may override.
var ContractPaths = []string{
	"fdrms/internal/topk",
	"fdrms/internal/core",
	"fdrms/internal/setcover",
	"fdrms/internal/conetree",
	"fdrms/internal/wal",
	"fdrms/rms",
}

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag range over maps in determinism-contract packages unless annotated //fdrms:orderinvariant <reason>",
	Run:  run,
}

// annot is one //fdrms:orderinvariant comment found in a file.
type annot struct {
	pos    token.Pos
	reason string
	used   bool
}

func run(pass *analysis.Pass) error {
	// External test packages (`pkg_test`) inherit the contract of the
	// package they test: a map-ordered loop in a test can mask — or
	// flakily exercise — the very nondeterminism the contract forbids.
	if !analysis.HasPath(ContractPaths, strings.TrimSuffix(pass.Pkg.Path, "_test")) {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Collect annotations by the line they sit on.
		anns := map[int]*annot{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimLeft(text, " \t")
				if !strings.HasPrefix(text, Marker) {
					continue
				}
				reason := strings.TrimPrefix(text, Marker)
				// Allow a nested trailing comment (used by the analysistest
				// fixtures' want expectations) without it counting as a reason.
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				reason = strings.TrimSpace(reason)
				line := pass.Fset.Position(c.Pos()).Line
				anns[line] = &annot{pos: c.Pos(), reason: reason}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pass.Fset.Position(rs.For).Line
			ann := anns[line]
			if ann == nil {
				ann = anns[line-1]
			}
			if ann == nil {
				pass.Reportf(rs.For, "range over %s in determinism-contract package %s: sort the keys, or annotate //%s <reason> if the order provably cannot reach an observable output",
					types.TypeString(tv.Type, nil), pass.Pkg.Path, Marker)
				return true
			}
			ann.used = true
			if ann.reason == "" {
				pass.Reportf(ann.pos, "//%s needs a reason: state why this map's iteration order cannot reach an observable output", Marker)
			}
			return true
		})
		for _, ann := range anns {
			if !ann.used {
				pass.Reportf(ann.pos, "//%s does not annotate a map range (it must sit on the range line or the line above); delete the stale audit record", Marker)
			}
		}
	}
	return nil
}
