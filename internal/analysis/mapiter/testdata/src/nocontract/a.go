// Fixture for the mapiter analyzer's package gate: this package is NOT in
// ContractPaths, so its map range must produce no diagnostics.
package a

func count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
