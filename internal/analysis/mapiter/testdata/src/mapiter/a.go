// Fixture for the mapiter analyzer: the test adds "fixture/mapiter" to
// ContractPaths, so every map range here must be annotated or flagged.
package a

import "sort"

//fdrms:orderinvariant no range here anymore // want "stale audit record"
var order = []int{1, 2, 3}

func unannotated(m map[int]int) int {
	s := 0
	for _, v := range m { // want "range over map"
		s += v
	}
	return s
}

func annotatedAbove(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//fdrms:orderinvariant key collection only; sorted below before return
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func annotatedSameLine(m map[int]bool) int {
	n := 0
	for range m { //fdrms:orderinvariant pure count, order-free
		n++
	}
	return n
}

func missingReason(m map[int]int) {
	//fdrms:orderinvariant // want "needs a reason"
	for range m {
	}
}

func sliceRangeIsFine(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t + order[0]
}
