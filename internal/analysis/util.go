package analysis

import (
	"go/ast"
	"go/types"
)

// WithStack walks root in depth-first order, calling fn with each node and
// the stack of its ancestors (stack[len-1] == n). Returning false skips the
// node's children.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// EnclosingFuncs returns the function nodes (FuncDecl or FuncLit) on the
// stack, outermost first.
func EnclosingFuncs(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			out = append(out, n)
		}
	}
	return out
}

// EnclosingFuncDecl returns the innermost FuncDecl on the stack, or nil.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// RootIdent returns the base identifier of a selector chain (a in a.b.c),
// unwrapping parens, stars, index and slice expressions; nil when the chain
// roots in something else (a call, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CalleeFunc resolves the static callee of a call expression to a
// *types.Func (package function or method), or nil for builtins, function
// values, conversions, and dynamic calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// HasPath reports whether path is in the list.
func HasPath(list []string, path string) bool {
	for _, p := range list {
		if p == path {
			return true
		}
	}
	return false
}
