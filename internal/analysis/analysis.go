// Package analysis is a self-contained static-analysis framework for the
// fdrms module, mirroring the shape of golang.org/x/tools/go/analysis on
// nothing but the standard library (this repository vendors no third-party
// code). It exists to turn the module's load-bearing conventions — the
// bit-exact batch≡sequential replay contract, the MVCC publish discipline,
// the caller-owned scratch-buffer ownership rules — into compile-time gates
// instead of review-time folklore.
//
// An Analyzer inspects type-checked packages and reports Diagnostics. The
// loader (see Load) resolves the whole module with `go list -export` so
// analyzers see the same types the compiler does. cmd/fdrmsvet is the
// multichecker binary that runs every analyzer over the module; the
// analysistest package runs a single analyzer over fixture packages with
// `// want` expectations, exactly like x/tools' analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Mode says how often an analyzer runs over a loaded program.
type Mode int

const (
	// PerPackage runs the analyzer once per module package, with
	// Pass.Pkg set to that package. The default.
	PerPackage Mode = iota
	// WholeProgram runs the analyzer exactly once with Pass.Pkg nil;
	// the analyzer walks Pass.Prog itself (used for cross-package
	// reachability like the nondet call-graph check).
	WholeProgram
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Mode Mode
	Run  func(*Pass) error
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded view of the module (or of a fixture package set).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	ByPath   map[string]*Package
}

// Diagnostic is one finding, position-resolved for printing and testing.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer invocation's inputs and its report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package // nil iff Analyzer.Mode == WholeProgram
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the program and returns every diagnostic,
// sorted by file, line, column, then analyzer name (a deterministic order:
// fdrmsvet output is itself diffable CI evidence).
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		switch a.Mode {
		case WholeProgram:
			pass := &Pass{Analyzer: a, Fset: prog.Fset, Prog: prog, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		default:
			for _, pkg := range prog.Packages {
				pass := &Pass{Analyzer: a, Fset: prog.Fset, Pkg: pkg, Prog: prog, diags: &diags}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
