package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Loader resolves packages against one module root. Imports are satisfied
// from compiler export data produced by `go list -export`, so analyzers see
// exactly the types the compiler builds — no source re-typechecking of
// dependencies, no drift between vet view and build view.
type Loader struct {
	ModuleDir string

	fset    *token.FileSet
	imp     types.ImporterFrom
	exports map[string]string // import path -> export data file
}

// NewLoader builds a loader rooted at the module directory (where go.mod
// lives). The loader shells out to the go command; it needs no network.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{ModuleDir: moduleDir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string // base import path, set on test-augmented variants
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
}

// goList runs `go list -e -export -json` for the given patterns in the
// module root and decodes the JSON stream.
func (l *Loader) goList(args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json=Dir,ImportPath,Name,ForTest,Export,Standard,GoFiles,Module"}, args...)...)
	cmd.Dir = l.ModuleDir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding: %v", strings.Join(args, " "), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// lookup feeds export data to the gc importer, resolving lazily through
// `go list -export` for paths not seen yet (fixture imports, test deps).
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	exp, ok := l.exports[path]
	if !ok {
		entries, err := l.goList(path)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				l.exports[e.ImportPath] = e.Export
			}
		}
		exp = l.exports[path]
	}
	if exp == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(exp)
}

// LoadModule loads every package of the module (`go list ./...`), fully
// parsed and type-checked, with all dependencies resolved from export data.
//
// Test files are in scope: `-test` adds, for each package with tests, a
// test-augmented variant (`pkg [pkg.test]`, GoFiles = regular + in-package
// _test.go files), the external test package (`pkg_test [pkg.test]`), and
// the synthesized test main (`pkg.test`, generated sources in the build
// cache). The test main is skipped; the other variants are folded down to
// one package per import path, keeping whichever entry carries more files —
// so analyzers see each determinism-contract package WITH its tests, under
// its plain path, and external test packages under `pkg_test`.
func (l *Loader) LoadModule() (*Program, error) {
	entries, err := l.goList("-deps", "-test", "./...")
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, ByPath: map[string]*Package{}}
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	// Fold the entry list down to one winner per plain import path,
	// preserving first-seen path order so the emitted package list stays
	// deterministic across runs.
	var order []string
	best := map[string]listEntry{}
	for _, e := range entries {
		if e.Module == nil || !e.Module.Main || len(e.GoFiles) == 0 {
			continue
		}
		path := e.ImportPath
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i] // strip the " [pkg.test]" build-variant suffix
		}
		if strings.HasSuffix(path, ".test") {
			continue // generated test main: cache-dir sources, nothing to vet
		}
		prev, seen := best[path]
		if !seen {
			order = append(order, path)
		}
		if !seen || len(e.GoFiles) > len(prev.GoFiles) {
			best[path] = e
		}
	}
	for _, path := range order {
		e := best[path]
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := l.loadFiles(path, files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkg.Path] = pkg
	}
	return prog, nil
}

// LoadDir loads the .go files of one directory as a single package under
// the given import path — the analysistest entry point for fixture
// packages that are deliberately outside the module's package list.
func (l *Loader) LoadDir(importPath, dir string) (*Program, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg, err := l.loadFiles(importPath, names)
	if err != nil {
		return nil, err
	}
	return &Program{
		Fset:     l.fset,
		Packages: []*Package{pkg},
		ByPath:   map[string]*Package{pkg.Path: pkg},
	}, nil
}

// loadFiles parses and type-checks one package from explicit file names.
func (l *Loader) loadFiles(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
