// Fixture for the scratchescape analyzer. The test configures
// fixture/scratchescape.Scratch as the owned type (standing in for
// kdtree.QueryScratch) and (*pool).view* as the fragment sources
// (standing in for slab.view and the kd-tree Into variants).
package a

type Scratch struct {
	buf []int
	out []int
}

type pool struct{ arena []int }

// view is a configured fragment source: returning its own alias is the
// contract, not a violation.
func (p *pool) view(n int) []int { return p.arena[:n] }

// viewTail derives from a source and is itself a source: the Into chain
// hands aliases to its callers by contract.
func (p *pool) viewTail(n int) []int {
	f := p.view(n)
	return f // ok: viewTail is itself a source
}

type holder struct {
	kept []int
	sc   *Scratch
	cb   func()
}

var global []int

func ret(sc *Scratch) *Scratch {
	return sc // want "returning caller-owned"
}

func retSlice(sc *Scratch) []int {
	return sc.buf // want "returning a slice of caller-owned"
}

func storePtr(h *holder, sc *Scratch) {
	h.sc = sc // want "into field sc"
}

func storeFrag(h *holder, p *pool) {
	f := p.view(3)
	h.kept = f // want "into field kept"
}

func storeGlobal(p *pool) {
	global = p.view(2) // want "into package variable global"
}

func retFragAlias(p *pool) []int {
	f := p.view(3)
	g := f[1:]
	return g // want "returning the result of view"
}

func handoff(sc *Scratch, ch chan int) {
	go worker(sc, ch) // want "to a goroutine"
}

func worker(sc *Scratch, ch chan int) { ch <- len(sc.buf) }

func captureGo(sc *Scratch) {
	go func() { // want "func literal capturing"
		_ = sc.buf
	}()
}

func captureReturn(sc *Scratch) func() int {
	return func() int { // want "func literal capturing"
		return len(sc.buf)
	}
}

func captureField(h *holder, sc *Scratch) {
	h.cb = func() { // want "func literal capturing"
		_ = sc.out
	}
}

func nested(sc *Scratch) {
	run(func() { // ok: called in place, does not escape
		inner := func() int { return len(sc.buf) } // want "func literal capturing"
		_ = inner
	})
}

func run(f func()) { f() }

func consume(sc *Scratch) int {
	n := 0
	for _, v := range sc.buf {
		n += v
	}
	return n // ok: scalar copy
}

func passDown(sc *Scratch) int {
	return consume(sc) // ok: passing down the call chain
}

func copyOut(p *pool) []int {
	f := p.view(4)
	out := make([]int, len(f))
	copy(out, f)
	return out // ok: a copy, not the fragment
}

func selfStore(sc *Scratch) {
	best := sc.buf[:0]
	sc.out = best // ok: reuse inside the same scratch
}
