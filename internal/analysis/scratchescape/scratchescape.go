// Package scratchescape enforces the caller-owned-buffer contract from the
// allocation-free query pipeline (PR 3): a *kdtree.QueryScratch handed to a
// function belongs to the caller for the duration of the call ONLY, and the
// slices returned by the kd-tree Into query variants and the setcover slab
// (fragments carved from the shared arena) alias reusable storage that the
// next query or slab operation will overwrite.
//
// Concretely, within any function, a value is "owned elsewhere" when it is
// a parameter of an owned pointer type (OwnedTypes) or flows from a call to
// a fragment source (SourceFuncs, matched on the callee's full name). Such
// a value, or any local alias / field read / subslice of it, must not
//
//   - be returned (unless the enclosing function is itself a fragment
//     source — the Into chain hands the alias to ITS caller by contract),
//   - be stored into a struct field, map or slice element, or package
//     variable,
//   - be captured by a func literal that escapes (returned, assigned,
//     placed in a composite literal, or started as a goroutine), or
//   - be passed to a goroutine.
//
// Everything transient — ranging over the result, copying it out, passing
// it (or the scratch) down the call chain — stays legal.
package scratchescape

import (
	"go/ast"
	"go/types"
	"regexp"

	"fdrms/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc:  "caller-owned scratch buffers and slab-fragment slices must not outlive the call that received them",
	Run:  run,
}

// OwnedTypes are named types T where a parameter of type *T is caller-owned
// for the duration of the call. Tests may override.
var OwnedTypes = []string{"fdrms/internal/kdtree.QueryScratch"}

// SourceFuncs match (*types.Func).FullName of functions whose slice results
// alias reusable internal storage. Tests may override.
var SourceFuncs = []*regexp.Regexp{
	regexp.MustCompile(`^\(\*fdrms/internal/setcover\.slab\)\.view$`),
	regexp.MustCompile(`^\(\*fdrms/internal/kdtree\.[\w]+\)\.[\w]*Into$`),
	// Phase-1 of the top-k search: documented as returning sc.results-backed
	// storage to its (in-package) callers.
	regexp.MustCompile(`^\(\*fdrms/internal/kdtree\.arena\)\.searchTopK$`),
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// isOwnedPtr reports whether t is *T for an owned named type T.
func isOwnedPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return analysis.HasPath(OwnedTypes, obj.Pkg().Path()+"."+obj.Name())
}

// isSource reports whether f is a fragment source.
func isSource(f *types.Func) bool {
	if f == nil {
		return false
	}
	full := f.FullName()
	for _, re := range SourceFuncs {
		if re.MatchString(full) {
			return true
		}
	}
	return false
}

// checkFunc analyzes one declared function (literals inside it included).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Seed the tracked set with owned-pointer parameters.
	tracked := map[types.Object]string{} // object -> description for messages
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isOwnedPtr(obj.Type()) {
					tracked[obj] = "caller-owned " + types.TypeString(obj.Type(), nil)
				}
			}
		}
	}
	enclosingIsSource := isSource(funcOf(info, fd))

	// Propagate: a local defined from a tracked value or a fragment-source
	// call becomes tracked. Iterate to a fixed point so chains of aliases
	// (a := view(...); b := a[1:]; c := b) are all seen regardless of
	// declaration order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || tracked[obj] != "" {
					continue
				}
				if desc := trackedValue(info, tracked, as.Rhs[i]); desc != "" {
					// Only locals: a tracked value stored into anything
					// non-local is reported by the escape walk below.
					if _, isVar := obj.(*types.Var); isVar {
						tracked[obj] = desc
						changed = true
					}
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}

	analysis.WithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if enclosingIsSource && innermostFunc(stack) == nil {
				break // the Into chain returns its alias by contract
			}
			for _, res := range n.Results {
				if desc := trackedValue(info, tracked, res); desc != "" {
					pass.Reportf(res.Pos(), "returning %s: it aliases storage the next query/operation reuses; copy it out instead", desc)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				desc := trackedValue(info, tracked, n.Rhs[i])
				if desc == "" {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// Storing scratch-backed storage back into the SAME
					// tracked owner (sc.results = best) is the reuse
					// contract working, not an escape.
					if root := analysis.RootIdent(target.X); root != nil {
						if obj := info.Uses[root]; obj != nil && tracked[obj] != "" {
							continue
						}
					}
					pass.Reportf(n.Pos(), "storing %s into field %s: scratch-backed storage must not outlive the call", desc, target.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(), "storing %s into an element: scratch-backed storage must not outlive the call", desc)
				case *ast.Ident:
					if obj := info.Uses[target]; obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
						pass.Reportf(n.Pos(), "storing %s into package variable %s: scratch-backed storage must not outlive the call", desc, target.Name)
					}
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if desc := trackedValue(info, tracked, arg); desc != "" {
					pass.Reportf(arg.Pos(), "passing %s to a goroutine: a scratch belongs to exactly one goroutine", desc)
				}
			}
		case *ast.FuncLit:
			if obj, capt := captures(info, n, tracked); capt != "" && escapes(n, stack) {
				pass.Reportf(n.Pos(), "func literal capturing %s (%s) escapes this call: scratch-backed storage must not outlive it", capt, obj.Name())
			}
		}
		return true
	})
}

// funcOf returns the *types.Func of a declaration, or nil.
func funcOf(info *types.Info, fd *ast.FuncDecl) *types.Func {
	f, _ := info.Defs[fd.Name].(*types.Func)
	return f
}

// innermostFunc returns the innermost FuncLit on the stack, or nil: a
// return inside a literal is not the enclosing declaration's return.
func innermostFunc(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// trackedValue reports whether e is a tracked value or a direct derivation
// of one (subslice, field read through a tracked pointer, fragment-source
// call), returning a description or "".
func trackedValue(info *types.Info, tracked map[types.Object]string, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return tracked[obj]
		}
	case *ast.SliceExpr:
		return trackedValue(info, tracked, e.X)
	case *ast.SelectorExpr:
		// A slice read out of a tracked pointer (sc.out) is scratch-backed.
		if root := analysis.RootIdent(e.X); root != nil {
			if obj := info.Uses[root]; obj != nil && tracked[obj] != "" {
				if _, isSlice := info.Types[e].Type.Underlying().(*types.Slice); isSlice {
					return "a slice of " + tracked[obj]
				}
			}
		}
	case *ast.CallExpr:
		if f := analysis.CalleeFunc(info, e); isSource(f) {
			return "the result of " + f.Name() + " (aliases reusable storage)"
		}
	}
	return ""
}

// captures returns a tracked object referenced inside the literal (declared
// outside it), if any.
func captures(info *types.Info, lit *ast.FuncLit, tracked map[types.Object]string) (types.Object, string) {
	var obj types.Object
	desc := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || desc != "" {
			return true
		}
		o := info.Uses[id]
		if o == nil || tracked[o] == "" {
			return true
		}
		if o.Pos() < lit.Pos() || o.Pos() > lit.End() {
			obj, desc = o, tracked[o]
		}
		return true
	})
	return obj, desc
}

// escapes reports whether the func literal leaves the enclosing function:
// returned, assigned, placed in a composite literal, or started as a
// goroutine (directly or as `go func(){...}()`). A literal that is only
// called in place or passed to an ordinary call (sort.Slice and friends)
// does not escape.
func escapes(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.GoStmt, *ast.ReturnStmt, *ast.AssignStmt, *ast.ValueSpec, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.CallExpr:
		// go func(){...}(): the literal's parent is the call, the call's
		// parent the go statement.
		if parent.Fun == lit && len(stack) >= 3 {
			if _, ok := stack[len(stack)-3].(*ast.GoStmt); ok {
				return true
			}
		}
	}
	return false
}
