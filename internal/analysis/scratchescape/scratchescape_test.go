package scratchescape_test

import (
	"regexp"
	"testing"

	"fdrms/internal/analysis/analysistest"
	"fdrms/internal/analysis/scratchescape"
)

// TestScratchescape retargets the ownership config at the fixture's own
// Scratch type and (*pool).view* sources, then checks every escape class
// (returns, field/element/global stores, goroutine handoff, escaping
// closures — including `go func(){...}()` and a nested closure inside a
// non-escaping one) against every legal shape (threading down the call
// chain, copying out, self-stores, in-place literals, source chains).
func TestScratchescape(t *testing.T) {
	oldTypes, oldSrc := scratchescape.OwnedTypes, scratchescape.SourceFuncs
	scratchescape.OwnedTypes = []string{"fixture/scratchescape.Scratch"}
	scratchescape.SourceFuncs = []*regexp.Regexp{
		regexp.MustCompile(`^\(\*fixture/scratchescape\.pool\)\.view\w*$`),
	}
	defer func() {
		scratchescape.OwnedTypes, scratchescape.SourceFuncs = oldTypes, oldSrc
	}()
	analysistest.Run(t, "scratchescape", scratchescape.Analyzer)
}
