package lockdiscipline_test

import (
	"testing"

	"fdrms/internal/analysis/analysistest"
	"fdrms/internal/analysis/lockdiscipline"
)

// TestLockdiscipline seeds every violation class — Store/Swap/
// CompareAndSwap outside the publish helper, address-taking of the
// published pointer, unguarded writes and increments, a closure that
// escapes without the lock — next to every sanctioned shape: the helper
// itself, a lexically held lock, the Locked suffix, a constructor's local
// receiver, and a literal handed to a lock-running helper. The contracts
// come from the fixture's own marker comments, so no overrides are needed.
func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, "lockdiscipline", lockdiscipline.Analyzer)
}
