// Package lockdiscipline enforces the module's two write-side locking
// contracts by call-graph position instead of convention:
//
//  1. Publish discipline. A struct field of type sync/atomic.Pointer[T]
//     whose declaration carries the marker comment
//
//     published only by <helper>
//
//     may be written (Store/Swap/CompareAndSwap, or address-taken) only
//     inside the named helper method of the owning struct. This is the
//     rms.Store generation pointer: every committed write must go through
//     publishLocked so readers can never observe a half-built generation.
//
//  2. Guarded fields. A field whose declaration carries
//
//     guarded by <mutex>
//
//     (mutex being a sibling sync.Mutex/RWMutex field) may be written only
//     where the analyzer can see the lock held: lexically after a
//     <recv>.<mutex>.Lock() call in an enclosing function body, or inside
//     a function whose name ends in "Locked" (the repo's callee-holds-lock
//     convention), or inside a func literal passed to a *Lock* helper
//     (withWriteLock), or on a receiver that is a local, not-yet-shared
//     variable (constructors).
//
// Reads are deliberately out of scope: the MVCC design makes lock-free
// reads the whole point; it is unsynchronized WRITES that corrupt it.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"fdrms/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "atomic generation pointers stored only via their publish helper; guarded fields written only under their mutex",
	Run:  run,
}

var (
	guardedRe   = regexp.MustCompile(`guarded by (\w+)`)
	publishedRe = regexp.MustCompile(`published only by (\w+)`)
)

// atomicStoreMethods are the mutating methods of sync/atomic.Pointer.
var atomicStoreMethods = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true}

// fieldContract is the parsed marker of one struct field.
type fieldContract struct {
	owner   string // struct type name, for messages
	guard   string // sibling mutex field name ("" if none)
	publish string // designated publish helper ("" if none)
}

func run(pass *analysis.Pass) error {
	contracts := collectContracts(pass)
	if len(contracts) == 0 {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkPublishCall(pass, contracts, n, stack)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, contracts, lhs, n.Pos(), stack)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, contracts, n.X, n.Pos(), stack)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					checkAddr(pass, contracts, n, stack)
				}
			}
			return true
		})
	}
	return nil
}

// collectContracts scans the package's struct declarations for marker
// comments and resolves them to field objects.
func collectContracts(pass *analysis.Pass) map[*types.Var]fieldContract {
	info := pass.Pkg.Info
	out := map[*types.Var]fieldContract{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				fc := fieldContract{owner: ts.Name.Name}
				if m := guardedRe.FindStringSubmatch(text); m != nil {
					fc.guard = m[1]
				}
				if m := publishedRe.FindStringSubmatch(text); m != nil {
					fc.publish = m[1]
				}
				if fc.guard == "" && fc.publish == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = fc
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldObj resolves a selector expression to the field object it selects,
// or nil.
func fieldObj(info *types.Info, e ast.Expr) (*types.Var, *ast.SelectorExpr) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v, sel
	}
	return nil, nil
}

// checkPublishCall flags x.field.Store/Swap/CompareAndSwap when field is a
// publish-marked atomic pointer and the enclosing named function is not the
// designated helper.
func checkPublishCall(pass *analysis.Pass, contracts map[*types.Var]fieldContract, call *ast.CallExpr, stack []ast.Node) {
	method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicStoreMethods[method.Sel.Name] {
		return
	}
	v, _ := fieldObj(pass.Pkg.Info, method.X)
	if v == nil {
		return
	}
	fc, ok := contracts[v]
	if !ok || fc.publish == "" {
		return
	}
	if fd := analysis.EnclosingFuncDecl(stack); fd == nil || fd.Name.Name != fc.publish {
		pass.Reportf(call.Pos(), "%s.%s is published only by %s: %s here bypasses the publish helper",
			fc.owner, v.Name(), fc.publish, method.Sel.Name)
	}
}

// checkAddr flags &x.field for publish-marked fields outside the helper
// (an alias would let the pointer be stored anywhere, unseen).
func checkAddr(pass *analysis.Pass, contracts map[*types.Var]fieldContract, ue *ast.UnaryExpr, stack []ast.Node) {
	v, _ := fieldObj(pass.Pkg.Info, ue.X)
	if v == nil {
		return
	}
	fc, ok := contracts[v]
	if !ok || fc.publish == "" {
		return
	}
	if fd := analysis.EnclosingFuncDecl(stack); fd == nil || fd.Name.Name != fc.publish {
		pass.Reportf(ue.Pos(), "%s.%s is published only by %s: taking its address here could smuggle stores past the publish helper",
			fc.owner, v.Name(), fc.publish)
	}
}

// checkWrite flags writes to guarded fields outside the guard.
func checkWrite(pass *analysis.Pass, contracts map[*types.Var]fieldContract, lhs ast.Expr, writePos token.Pos, stack []ast.Node) {
	v, sel := fieldObj(pass.Pkg.Info, lhs)
	if v == nil {
		return
	}
	fc, ok := contracts[v]
	if !ok || fc.guard == "" {
		return
	}
	root := analysis.RootIdent(sel.X)
	if root == nil {
		return
	}
	rootObj := pass.Pkg.Info.Uses[root]
	if rootObj == nil {
		rootObj = pass.Pkg.Info.Defs[root]
	}
	funcs := analysis.EnclosingFuncs(stack)
	if lockHeld(pass, fc, root, rootObj, writePos, funcs) {
		return
	}
	pass.Reportf(writePos, "write to %s.%s (guarded by %s) without %s.%s.Lock() in scope",
		fc.owner, v.Name(), fc.guard, root.Name, fc.guard)
}

// lockHeld reports whether the analyzer can see the guard held at the
// write: a Locked-suffix function, a local (unshared) receiver, a lexically
// preceding Lock() on the same receiver and mutex, or a func literal handed
// to a *Lock* runner.
func lockHeld(pass *analysis.Pass, fc fieldContract, root *ast.Ident, rootObj types.Object, writePos token.Pos, funcs []ast.Node) bool {
	for _, fn := range funcs {
		if fd, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
			return true // callee-holds-lock convention: callers are checked at their own Lock sites
		}
	}
	// Constructor exemption: the receiver is a variable local to the
	// innermost function body — the struct is not shared yet.
	if v, ok := rootObj.(*types.Var); ok && len(funcs) > 0 {
		inner := funcs[len(funcs)-1]
		var body *ast.BlockStmt
		switch f := inner.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil && v.Pos() >= body.Pos() && v.Pos() < body.End() {
			return true
		}
	}
	// A lexically preceding <root>.<guard>.Lock() in an enclosing body that
	// is not superseded by a later Unlock of the same mutex. Tracking only
	// the Lock would bless unlock-then-write — code that locks, unlocks
	// early, and keeps writing — so the scan keeps the LAST Lock and Unlock
	// positions before the write and requires the Lock to win. A deferred
	// Unlock runs at function exit, after every write in the body, so defer
	// statements are skipped entirely; nested func literals (not enclosing
	// the write) are skipped too — their lock calls act in their own frame,
	// and their bodies get their own pass through funcs.
	for _, fn := range funcs {
		var body *ast.BlockStmt
		switch f := fn.(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body == nil {
			continue
		}
		var lastLock, lastUnlock token.Pos
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && (writePos < lit.Pos() || writePos >= lit.End()) {
				return false
			}
			if _, ok := n.(*ast.DeferStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() >= writePos {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
				return true
			}
			mutexSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok || mutexSel.Sel.Name != fc.guard {
				return true
			}
			if mr := analysis.RootIdent(mutexSel.X); mr != nil && sameObject(pass, mr, root) {
				if sel.Sel.Name == "Lock" {
					lastLock = call.Pos()
				} else {
					lastUnlock = call.Pos()
				}
			}
			return true
		})
		if lastLock != token.NoPos && lastLock > lastUnlock {
			return true
		}
	}
	// A func literal passed to a lock-running helper (withWriteLock et al).
	for i := len(funcs) - 1; i >= 0; i-- {
		lit, ok := funcs[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if callee := enclosingCallee(pass, lit); callee != "" && strings.Contains(callee, "Lock") {
			return true
		}
	}
	return false
}

// sameObject reports whether two identifiers resolve to the same object.
func sameObject(pass *analysis.Pass, a, b *ast.Ident) bool {
	info := pass.Pkg.Info
	ao := info.Uses[a]
	if ao == nil {
		ao = info.Defs[a]
	}
	bo := info.Uses[b]
	if bo == nil {
		bo = info.Defs[b]
	}
	return ao != nil && ao == bo
}

// enclosingCallee returns the name of the function a literal is passed to
// as a direct call argument, or "".
func enclosingCallee(pass *analysis.Pass, lit *ast.FuncLit) string {
	name := ""
	for _, file := range pass.Pkg.Files {
		if lit.Pos() < file.Pos() || lit.End() > file.End() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if arg == lit {
					switch fun := ast.Unparen(call.Fun).(type) {
					case *ast.Ident:
						name = fun.Name
					case *ast.SelectorExpr:
						name = fun.Sel.Name
					}
				}
			}
			return true
		})
	}
	return name
}
