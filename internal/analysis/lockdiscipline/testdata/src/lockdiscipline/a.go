// Fixture for the lockdiscipline analyzer. The contracts come from the
// marker comments on the struct fields below, exactly as in rms.Store.
package a

import (
	"sync"
	"sync/atomic"
)

type gen struct{ v int }

type store struct {
	mu  sync.Mutex
	gen atomic.Pointer[gen] // published only by publish
	n   int                 // guarded by mu
}

func (s *store) publish(g *gen) {
	s.gen.Store(g) // ok: the designated helper
}

func (s *store) directStore(g *gen) {
	s.gen.Store(g) // want "bypasses the publish helper"
}

func (s *store) directSwap(g *gen) {
	_ = s.gen.Swap(g) // want "bypasses the publish helper"
}

func (s *store) directCAS(old, next *gen) {
	s.gen.CompareAndSwap(old, next) // want "bypasses the publish helper"
}

func (s *store) alias() {
	p := &s.gen // want "taking its address"
	_ = p
}

func (s *store) lockedWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 1 // ok: lock lexically held
}

func (s *store) unlockedWrite() {
	s.n = 2 // want "guarded by mu"
}

func (s *store) unlockedIncr() {
	s.n++ // want "guarded by mu"
}

func (s *store) applyLocked() {
	s.n = 3 // ok: Locked-suffix convention, callers hold mu
}

func newStore() *store {
	s := &store{}
	s.n = 7 // ok: local receiver, not shared yet
	return s
}

func (s *store) withMyLock(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

func (s *store) viaRunner() {
	s.withMyLock(func() {
		s.n = 4 // ok: literal handed to a lock-running helper
	})
}

func (s *store) escapedClosure() {
	f := func() { s.n = 5 } // want "guarded by mu"
	f()
}

func (s *store) unlockThenWrite() {
	s.mu.Lock()
	s.n = 8 // ok: between Lock and Unlock
	s.mu.Unlock()
	s.n = 9 // want "guarded by mu"
}

func (s *store) relockAfterUnlock() {
	s.mu.Lock()
	s.n = 10 // ok
	s.mu.Unlock()
	s.mu.Lock()
	s.n = 11 // ok: the re-Lock supersedes the Unlock
	s.mu.Unlock()
}

func (s *store) deferredUnlockStillHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if true {
		s.n = 12 // ok: the deferred Unlock runs after this write
	}
	s.n = 13 // ok
}

func (s *store) nestedLitUnlockDoesNotLeak() {
	s.mu.Lock()
	f := func() {
		s.mu.Unlock() // the literal's calls act in its own frame...
		s.mu.Lock()
	}
	_ = f
	s.n = 14 // ok: ...so the enclosing body's Lock still counts here
	s.mu.Unlock()
}

func (s *store) nestedLitLockDoesNotLeak() {
	f := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	_ = f
	s.n = 15 // want "guarded by mu"
}
