package workload

import (
	"fdrms/internal/regret"
)

// Evaluators holds one regret estimator per checkpoint, built once per
// workload so that every algorithm is scored against identical utility test
// sets and database snapshots (the paper records mrr_k at each checkpoint
// and reports the average of the ten values).
type Evaluators struct {
	evs []*regret.Evaluator
}

// NewEvaluators builds the per-checkpoint estimators with the given test
// set size.
func NewEvaluators(w *Workload, k, samples int, seed int64) *Evaluators {
	snaps := w.Snapshots()
	evs := make([]*regret.Evaluator, len(snaps))
	for i, snap := range snaps {
		evs[i] = regret.NewEvaluator(snap, w.Dim, k, samples, seed+int64(i))
	}
	return &Evaluators{evs: evs}
}

// MeanMRR returns the average maximum k-regret ratio of the recorded
// checkpoint results, the paper's reported quality metric.
func (e *Evaluators) MeanMRR(stats *RunStats) float64 {
	if len(stats.Checkpoints) == 0 {
		return 1
	}
	var sum float64
	n := 0
	for i, cp := range stats.Checkpoints {
		if i >= len(e.evs) {
			break
		}
		sum += e.evs[i].MRR(cp.Result)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
