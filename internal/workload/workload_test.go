package workload

import (
	"testing"

	"fdrms/internal/baseline"
	"fdrms/internal/core"
	"fdrms/internal/dataset"
)

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	return Generate(dataset.Indep(200, 3, 1), 42)
}

func TestGenerateShape(t *testing.T) {
	w := testWorkload(t)
	if len(w.Initial) != 100 {
		t.Fatalf("|P0| = %d, want 100", len(w.Initial))
	}
	inserts, deletes := 0, 0
	for _, op := range w.Ops {
		if op.Insert {
			inserts++
		} else {
			deletes++
		}
	}
	if inserts != 100 || deletes != 100 {
		t.Fatalf("inserts=%d deletes=%d, want 100/100", inserts, deletes)
	}
	// Inserts come before deletes (paper's phase order).
	firstDelete := -1
	for i, op := range w.Ops {
		if !op.Insert {
			firstDelete = i
			break
		}
	}
	for i := firstDelete; i < len(w.Ops); i++ {
		if w.Ops[i].Insert {
			t.Fatal("insert found after the delete phase began")
		}
	}
	cps := w.Checkpoints()
	if len(cps) != NumCheckpoints {
		t.Fatalf("%d checkpoints, want %d", len(cps), NumCheckpoints)
	}
	if cps[len(cps)-1] != len(w.Ops) {
		t.Fatalf("last checkpoint %d != total ops %d", cps[len(cps)-1], len(w.Ops))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(dataset.Indep(100, 3, 7), 5)
	b := Generate(dataset.Indep(100, 3, 7), 5)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("op counts differ")
	}
	for i := range a.Ops {
		if a.Ops[i].Insert != b.Ops[i].Insert || a.Ops[i].ID != b.Ops[i].ID {
			t.Fatal("ops differ under the same seed")
		}
	}
}

func TestSnapshots(t *testing.T) {
	w := testWorkload(t)
	snaps := w.Snapshots()
	if len(snaps) != NumCheckpoints {
		t.Fatalf("%d snapshots", len(snaps))
	}
	// The final snapshot has n/2 tuples (all inserted, half deleted).
	if got := len(snaps[len(snaps)-1]); got != 100 {
		t.Fatalf("final snapshot size = %d, want 100", got)
	}
	// Lazy caching returns the same slices.
	again := w.Snapshots()
	if &again[0][0] != &snaps[0][0] {
		t.Fatal("snapshots not cached")
	}
}

func TestRunFDRMS(t *testing.T) {
	w := testWorkload(t)
	stats, err := RunFDRMS(w, core.Config{K: 1, R: 8, Eps: 0.02, M: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm != "FD-RMS" || stats.TotalOps != len(w.Ops) {
		t.Fatalf("stats header wrong: %+v", stats)
	}
	if len(stats.Checkpoints) != NumCheckpoints {
		t.Fatalf("%d checkpoints", len(stats.Checkpoints))
	}
	for _, cp := range stats.Checkpoints {
		if len(cp.Result) > 8 {
			t.Fatalf("checkpoint %d: |Q| = %d > r", cp.OpIndex, len(cp.Result))
		}
	}
	if stats.AvgUpdate <= 0 {
		t.Fatal("AvgUpdate not measured")
	}
	ev := NewEvaluators(w, 1, 3000, 1)
	if mrr := ev.MeanMRR(stats); mrr < 0 || mrr > 0.3 {
		t.Fatalf("mean mrr = %v, out of plausible range", mrr)
	}
}

func TestRunStatic(t *testing.T) {
	w := testWorkload(t)
	stats := RunStatic(w, baseline.NewSphere(1), 1, 8, 0)
	if stats.SkylineChanges == 0 {
		t.Fatal("no skyline changes recorded")
	}
	if stats.Recomputes != stats.SkylineChanges {
		t.Fatalf("uncapped run: recomputes %d != changes %d", stats.Recomputes, stats.SkylineChanges)
	}
	if len(stats.Checkpoints) != NumCheckpoints {
		t.Fatalf("%d checkpoints", len(stats.Checkpoints))
	}
	ev := NewEvaluators(w, 1, 3000, 1)
	if mrr := ev.MeanMRR(stats); mrr > 0.3 {
		t.Fatalf("Sphere mean mrr = %v", mrr)
	}
}

func TestRunStaticSampledRecomputes(t *testing.T) {
	w := testWorkload(t)
	full := RunStatic(w, baseline.NewSphere(1), 1, 8, 0)
	capped := RunStatic(w, baseline.NewSphere(1), 1, 8, 10)
	if capped.Recomputes > 10+1 {
		t.Fatalf("capped run recomputed %d times", capped.Recomputes)
	}
	if capped.SkylineChanges != full.SkylineChanges {
		t.Fatal("skyline change counts must agree")
	}
	// Quality of the sampled run stays close: results only go slightly stale.
	ev := NewEvaluators(w, 1, 3000, 1)
	if d := ev.MeanMRR(capped) - ev.MeanMRR(full); d > 0.1 {
		t.Fatalf("sampled recomputation degraded quality by %v", d)
	}
}

// The headline claim at reproduction scale: FD-RMS updates are much faster
// than recomputing even the fastest static baseline.
func TestFDRMSFasterThanStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is slow")
	}
	w := Generate(dataset.AntiCor(2000, 4, 3), 11)
	fd, err := RunFDRMS(w, core.Config{K: 1, R: 10, Eps: 0.01, M: 512, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp := RunStatic(w, baseline.NewSphere(1), 1, 10, 25)
	if fd.AvgUpdate >= sp.AvgUpdate {
		t.Fatalf("FD-RMS avg update %v not faster than Sphere %v", fd.AvgUpdate, sp.AvgUpdate)
	}
	// And quality stays comparable (within 0.05 absolute mrr).
	ev := NewEvaluators(w, 1, 5000, 2)
	fdm, spm := ev.MeanMRR(fd), ev.MeanMRR(sp)
	if fdm > spm+0.05 {
		t.Fatalf("FD-RMS mrr %v much worse than Sphere %v", fdm, spm)
	}
}

func TestSkylineChangesCachedAndConsistent(t *testing.T) {
	w := testWorkload(t)
	a := w.SkylineChanges()
	b := w.SkylineChanges()
	if &a[0] != &b[0] {
		t.Fatal("SkylineChanges not cached")
	}
	if len(a) != len(w.Ops) {
		t.Fatalf("%d flags for %d ops", len(a), len(w.Ops))
	}
	changes := 0
	for _, c := range a {
		if c {
			changes++
		}
	}
	if changes == 0 || changes == len(a) {
		t.Fatalf("implausible change count %d of %d", changes, len(a))
	}
	// Two static runs must agree on the change schedule.
	s1 := RunStatic(w, baseline.NewSphere(1), 1, 5, 3)
	s2 := RunStatic(w, baseline.NewEpsKernel(1), 1, 5, 3)
	if s1.SkylineChanges != changes || s2.SkylineChanges != changes {
		t.Fatalf("runs disagree on changes: %d vs %d vs %d", s1.SkylineChanges, s2.SkylineChanges, changes)
	}
}

func TestMeanMRREmptyStats(t *testing.T) {
	w := testWorkload(t)
	ev := NewEvaluators(w, 1, 500, 1)
	if got := ev.MeanMRR(&RunStats{}); got != 1 {
		t.Fatalf("MeanMRR of empty stats = %v, want 1", got)
	}
}
