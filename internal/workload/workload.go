// Package workload generates and runs the fully-dynamic benchmark workload
// of Section IV-A: a random half of the dataset forms the initial database
// P_0, the remaining half is inserted one tuple at a time, and then a random
// half of the tuples is deleted one at a time. Results are recorded at ten
// checkpoints (after each 10% of the operations), and every algorithm sees
// the identical operation order.
//
// FD-RMS processes each operation incrementally. Static baselines are re-run
// from scratch whenever an operation changes the skyline — and only the
// k-RMS computation time is charged, not skyline maintenance, exactly as the
// paper prescribes. Because a full static re-run at every skyline change is
// infeasible at reproduction scale for the slowest baselines, the runner
// times a bounded sample of evenly spaced recomputations and charges
// avg-recompute-time × change-rate; this preserves the reported quantity
// (average update time) while keeping the suite laptop-sized.
package workload

import (
	"math/rand"
	"time"

	"fdrms/internal/baseline"
	"fdrms/internal/core"
	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/skyline"
)

// Op is one database operation.
type Op struct {
	Insert bool
	Point  geom.Point // the tuple to insert (valid when Insert)
	ID     int        // the tuple to delete (valid when !Insert)
}

// Workload is a reproducible operation sequence with checkpointing.
type Workload struct {
	Name    string
	Dim     int
	Initial []geom.Point
	Ops     []Op

	checkpoints []int          // op indices (1-based count) at which to record
	snapshots   [][]geom.Point // database state at each checkpoint (lazy)
	skyChanges  []bool         // per-op: did the skyline change? (lazy, shared)
}

// NumCheckpoints is the paper's recording frequency: 10 times per run.
const NumCheckpoints = 10

// Generate builds the paper's workload over the dataset: shuffle, take half
// as P_0, insert the rest, then delete a random half of all tuples.
func Generate(ds *dataset.Dataset, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, len(ds.Points))
	copy(pts, ds.Points)
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	half := len(pts) / 2
	w := &Workload{Name: ds.Name, Dim: ds.Dim, Initial: pts[:half]}
	for _, p := range pts[half:] {
		w.Ops = append(w.Ops, Op{Insert: true, Point: p})
	}
	// Delete a random half of all tuples.
	perm := rng.Perm(len(pts))
	for _, i := range perm[:len(pts)/2] {
		w.Ops = append(w.Ops, Op{Insert: false, ID: pts[i].ID})
	}
	for i := 1; i <= NumCheckpoints; i++ {
		idx := i * len(w.Ops) / NumCheckpoints
		if idx == 0 {
			idx = 1
		}
		w.checkpoints = append(w.checkpoints, idx)
	}
	return w
}

// Checkpoints returns the operation counts at which results are recorded.
func (w *Workload) Checkpoints() []int {
	out := make([]int, len(w.checkpoints))
	copy(out, w.checkpoints)
	return out
}

// Snapshots returns the database contents at each checkpoint, computed once
// by replaying the operations, so every algorithm is evaluated against the
// identical database states.
func (w *Workload) Snapshots() [][]geom.Point {
	if w.snapshots != nil {
		return w.snapshots
	}
	live := make(map[int]geom.Point, len(w.Initial)+len(w.Ops))
	for _, p := range w.Initial {
		live[p.ID] = p
	}
	next := 0
	for i, op := range w.Ops {
		if op.Insert {
			live[op.Point.ID] = op.Point
		} else {
			delete(live, op.ID)
		}
		if next < len(w.checkpoints) && i+1 == w.checkpoints[next] {
			snap := make([]geom.Point, 0, len(live))
			for _, p := range live {
				snap = append(snap, p)
			}
			w.snapshots = append(w.snapshots, snap)
			next++
		}
	}
	return w.snapshots
}

// Checkpoint is one recorded result.
type Checkpoint struct {
	OpIndex int
	Result  []geom.Point
}

// RunStats summarizes one algorithm's pass over a workload.
type RunStats struct {
	Algorithm      string
	TotalOps       int
	AvgUpdate      time.Duration // average k-RMS maintenance time per operation
	Checkpoints    []Checkpoint
	SkylineChanges int // operations that changed the skyline (static runners)
	Recomputes     int // from-scratch recomputations actually timed
	FinalStats     core.Stats
}

// RunFDRMS replays the workload through the fully-dynamic algorithm.
// Initialization on P_0 is not charged to the update time (it is the
// static build both worlds need once).
func RunFDRMS(w *Workload, cfg core.Config) (*RunStats, error) {
	f, err := core.New(w.Dim, w.Initial, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	stats := &RunStats{Algorithm: "FD-RMS", TotalOps: len(w.Ops)}
	var total time.Duration
	next := 0
	for i, op := range w.Ops {
		start := time.Now()
		if op.Insert {
			f.Insert(op.Point)
		} else {
			f.Delete(op.ID)
		}
		total += time.Since(start)
		if next < len(w.checkpoints) && i+1 == w.checkpoints[next] {
			stats.Checkpoints = append(stats.Checkpoints, Checkpoint{OpIndex: i + 1, Result: f.Result()})
			next++
		}
	}
	if len(w.Ops) > 0 {
		stats.AvgUpdate = total / time.Duration(len(w.Ops))
	}
	stats.FinalStats = f.Stats()
	return stats, nil
}

// SkylineChanges returns, per operation, whether it changed the skyline.
// It is computed once per workload by incremental skyline maintenance and
// shared by every static runner — the paper charges static algorithms for
// k-RMS recomputation only, never for skyline maintenance.
func (w *Workload) SkylineChanges() []bool {
	if w.skyChanges != nil {
		return w.skyChanges
	}
	sky := skyline.NewDynamic(w.Initial)
	w.skyChanges = make([]bool, len(w.Ops))
	for i, op := range w.Ops {
		if op.Insert {
			w.skyChanges[i] = sky.Insert(op.Point)
		} else {
			w.skyChanges[i] = sky.Delete(op.ID)
		}
	}
	return w.skyChanges
}

// RunStatic replays the workload for a static baseline: the algorithm is
// recomputed from scratch when an operation changes the skyline (skyline
// maintenance itself is precomputed and untimed, per the paper). At most
// maxRecomputes recomputations are actually executed and timed, evenly
// spaced across the skyline-change events; the average update time is the
// measured average recompute cost amortized over all operations at the
// true change rate. maxRecomputes <= 0 means recompute at every change.
func RunStatic(w *Workload, alg baseline.Algorithm, k, r, maxRecomputes int) *RunStats {
	stats := &RunStats{Algorithm: alg.Name(), TotalOps: len(w.Ops)}
	changed := w.SkylineChanges()
	changes := 0
	for _, c := range changed {
		if c {
			changes++
		}
	}
	stats.SkylineChanges = changes
	every := 1
	if maxRecomputes > 0 && changes > maxRecomputes {
		every = (changes + maxRecomputes - 1) / maxRecomputes
	}

	live := make(map[int]geom.Point, len(w.Initial)+len(w.Ops))
	for _, p := range w.Initial {
		live[p.ID] = p
	}
	livePoints := func() []geom.Point {
		out := make([]geom.Point, 0, len(live))
		for _, p := range live {
			out = append(out, p)
		}
		return out
	}

	var spent time.Duration
	var current []geom.Point
	compute := func() {
		pts := livePoints()
		start := time.Now()
		current = alg.Compute(pts, w.Dim, k, r)
		spent += time.Since(start)
		stats.Recomputes++
	}
	compute() // initial result on P_0 (not charged to update time)
	spent = 0
	stats.Recomputes = 0

	changeSeen := 0
	next := 0
	for i, op := range w.Ops {
		if op.Insert {
			live[op.Point.ID] = op.Point
		} else {
			delete(live, op.ID)
		}
		if changed[i] {
			if changeSeen%every == 0 {
				compute()
			}
			changeSeen++
		}
		if next < len(w.checkpoints) && i+1 == w.checkpoints[next] {
			snap := make([]geom.Point, len(current))
			copy(snap, current)
			stats.Checkpoints = append(stats.Checkpoints, Checkpoint{OpIndex: i + 1, Result: snap})
			next++
		}
	}
	if len(w.Ops) > 0 && stats.Recomputes > 0 {
		avgRecompute := spent / time.Duration(stats.Recomputes)
		// Amortize: every skyline change would trigger one recomputation.
		stats.AvgUpdate = avgRecompute * time.Duration(changes) / time.Duration(len(w.Ops))
	}
	return stats
}
