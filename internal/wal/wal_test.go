package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// testBatch builds a deterministic mixed batch whose shape varies with i.
func testBatch(i int) []topk.Op {
	ops := []topk.Op{
		topk.InsertOp(geom.Point{ID: 10*i + 1, Coords: geom.Vector{0.1 * float64(i), 0.5, 0.25}}),
		topk.InsertOp(geom.Point{ID: 10*i + 2, Coords: geom.Vector{0.9, 0.01 * float64(i), 0}}),
	}
	if i%2 == 0 {
		ops = append(ops, topk.DeleteOp(10*(i-1)+1))
	}
	return ops
}

func TestOpsRoundTrip(t *testing.T) {
	batches := [][]topk.Op{
		nil,
		{topk.DeleteOp(-7)},
		{topk.InsertOp(geom.Point{ID: 0, Coords: geom.Vector{}})},
		testBatch(1), testBatch(2), testBatch(3),
	}
	for i, ops := range batches {
		payload := AppendOps(nil, uint64(i+1), ops)
		seq, got, err := DecodeOps(payload)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d: seq %d, want %d", i, seq, i+1)
		}
		if len(got) != len(ops) {
			t.Fatalf("batch %d: %d ops, want %d", i, len(got), len(ops))
		}
		for j := range ops {
			if !reflect.DeepEqual(normalizeOp(got[j]), normalizeOp(ops[j])) {
				t.Fatalf("batch %d op %d: %+v != %+v", i, j, got[j], ops[j])
			}
		}
	}
}

// normalizeOp maps empty and nil coordinate slices to one representation.
func normalizeOp(op topk.Op) topk.Op {
	if !op.Delete && len(op.Point.Coords) == 0 {
		op.Point.Coords = nil
	}
	return op
}

func TestDecodeOpsRejectsDamage(t *testing.T) {
	payload := AppendOps(nil, 7, testBatch(2))
	cases := map[string][]byte{
		"empty":        {},
		"short header": payload[:6],
		"trailing":     append(append([]byte{}, payload...), 0xAB),
		"bad kind":     flipByte(payload, 12), // first op's kind byte
		"truncated":    payload[:len(payload)-3],
	}
	// A count larger than the payload can back.
	huge := AppendU64(nil, 1)
	huge = AppendU32(huge, 1<<30)
	cases["huge count"] = huge
	//fdrms:orderinvariant each corruption case is asserted independently
	for name, data := range cases {
		if _, _, err := DecodeOps(data); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xFF
	return out
}

// appendN appends batches i in [from, to) and returns the expected batches.
func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		seq, err := l.Append(testBatch(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
}

// replayAll collects every batch with seq > after.
func replayAll(t *testing.T, l *Log, after uint64) map[uint64][]topk.Op {
	t.Helper()
	got := map[uint64][]topk.Op{}
	err := l.Replay(after, func(seq uint64, ops []topk.Op) error {
		got[seq] = ops
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestLogAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l.LastSeq())
	}
	appendN(t, l, 6, 9)
	got := replayAll(t, l, 3)
	if len(got) != 5 {
		t.Fatalf("replayed %d batches, want 5", len(got))
	}
	for i := 4; i <= 8; i++ {
		want := testBatch(i)
		if !reflect.DeepEqual(got[uint64(i)], want) {
			t.Fatalf("batch %d mismatch: %+v != %+v", i, got[uint64(i)], want)
		}
	}
}

func TestLogRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every batch or two forces a rotation.
	l, err := Open(dir, Options{SegmentBytes: 128, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 20)
	names, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	if got := replayAll(t, l, 0); len(got) != 19 {
		t.Fatalf("replayed %d batches, want 19", len(got))
	}

	// A checkpoint at seq 10 makes every fully-covered segment removable.
	if err := l.Prune(10); err != nil {
		t.Fatal(err)
	}
	pruned, _ := segments(dir)
	if len(pruned) >= len(names) {
		t.Fatalf("prune removed nothing: %d -> %d segments", len(names), len(pruned))
	}
	got := replayAll(t, l, 10)
	for i := 11; i < 20; i++ {
		if !reflect.DeepEqual(got[uint64(i)], testBatch(i)) {
			t.Fatalf("post-prune batch %d missing or wrong", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after pruning: numbering continues.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 19 {
		t.Fatalf("LastSeq after reopen = %d, want 19", l.LastSeq())
	}
}

func TestTornTailTruncation(t *testing.T) {
	// Build a clean log, then chop bytes off the last segment at every
	// offset inside the final record: Open must land on the durable prefix.
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 4)
	cleanLen := l.size
	appendN(t, l, 4, 5) // the final record
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := cleanLen; cut < int64(len(full)); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with tail cut at %d: %v", cut, err)
			}
			if l.LastSeq() != 3 {
				t.Fatalf("cut %d: LastSeq = %d, want 3 (durable prefix)", cut, l.LastSeq())
			}
			if got := replayAll(t, l, 0); len(got) != 3 {
				t.Fatalf("cut %d: replayed %d, want 3", cut, len(got))
			}
			// The log must keep working after repair.
			if seq, err := l.Append(testBatch(4)); err != nil || seq != 4 {
				t.Fatalf("cut %d: append after repair: seq %d err %v", cut, seq, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, full, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCorruptionInOlderSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %v", segs)
	}
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xFF // damage inside the first (older) segment
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupted older segment")
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := NewestCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	payloads := map[uint64][]byte{
		0:  []byte("genesis"),
		10: bytes.Repeat([]byte{0xA5}, 1000),
		25: []byte("newest"),
	}
	//fdrms:orderinvariant NewestCheckpoint scans the directory for the max seq; write order immaterial
	for seq, p := range payloads {
		if err := WriteCheckpoint(dir, seq, p); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, ok, err := NewestCheckpoint(dir)
	if err != nil || !ok || seq != 25 || !bytes.Equal(payload, payloads[25]) {
		t.Fatalf("newest: seq=%d ok=%v err=%v", seq, ok, err)
	}

	// Corrupt the newest: recovery falls back to seq 10.
	path := filepath.Join(dir, ckptName(25))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err = NewestCheckpoint(dir)
	if err != nil || !ok || seq != 10 || !bytes.Equal(payload, payloads[10]) {
		t.Fatalf("fallback: seq=%d ok=%v err=%v", seq, ok, err)
	}

	// Truncated newest (torn write that dodged the atomic rename) also falls
	// back.
	if err := os.WriteFile(path, data[:ckptHdrLen-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if seq, _, ok, _ := NewestCheckpoint(dir); !ok || seq != 10 {
		t.Fatalf("truncated fallback: seq=%d ok=%v", seq, ok)
	}

	if err := PruneCheckpoints(dir, 1); err != nil {
		t.Fatal(err)
	}
	names, _ := checkpointFiles(dir)
	if len(names) != 1 {
		t.Fatalf("after prune: %v", names)
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if ok, err := HasState(filepath.Join(dir, "missing")); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	if ok, err := HasState(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := WriteCheckpoint(dir, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if ok, err := HasState(dir); err != nil || !ok {
		t.Fatalf("dir with checkpoint: ok=%v err=%v", ok, err)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 3)
	// One insert whose coordinates alone exceed the record limit: the append
	// must fail up front — an oversized record would be unreadable (treated
	// as a torn tail) at recovery.
	huge := topk.InsertOp(geom.Point{ID: 9, Coords: make(geom.Vector, maxRecordBytes/8+1)})
	if _, err := l.Append([]topk.Op{huge}); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d after rejected append, want 2", l.LastSeq())
	}
	// The log must remain fully usable and replayable.
	appendN(t, l, 3, 5)
	if got := replayAll(t, l, 0); len(got) != 4 {
		t.Fatalf("replayed %d batches, want 4", len(got))
	}
}
