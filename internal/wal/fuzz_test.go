package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// FuzzDecodeOps hammers the record payload decoder with arbitrary bytes: it
// must never panic or over-allocate, and everything it accepts must
// re-encode to the identical byte string (the encoding is canonical).
// Seed corpus: testdata/fuzz/FuzzDecodeOps (checked in).
func FuzzDecodeOps(f *testing.F) {
	f.Add(AppendOps(nil, 1, nil))
	f.Add(AppendOps(nil, 2, []topk.Op{topk.DeleteOp(42)}))
	f.Add(AppendOps(nil, 3, []topk.Op{
		topk.InsertOp(geom.Point{ID: 7, Coords: geom.Vector{0.25, 0.5, 0.75}}),
		topk.DeleteOp(-1),
	}))
	f.Add(AppendOps(nil, 1<<63, []topk.Op{
		topk.InsertOp(geom.Point{ID: 0, Coords: geom.Vector{}}),
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ops, err := DecodeOps(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		re := AppendOps(nil, seq, ops)
		if string(re) != string(data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the segment scanner as the newest
// segment of a log: Open must either repair (torn tail) or reject
// (corruption), never panic, and after a successful Open the log must accept
// appends and replay cleanly.
// Seed corpus: testdata/fuzz/FuzzSegmentScan (checked in).
func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add([]byte("FDRMSWL1\x00\x00\x00\x00"))
	f.Add([]byte{})
	clean := func(batches int) []byte {
		dir := f.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i := 1; i <= batches; i++ {
			if _, err := l.Append(testBatchF(i)); err != nil {
				f.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			f.Fatal(err)
		}
		names, _ := segments(dir)
		data, err := os.ReadFile(filepath.Join(dir, names[0]))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(clean(1))
	full := clean(3)
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail

	// Tailer-shaped seeds: the damage classes the replication tailer splits
	// into "primary still writing" (pending) vs real corruption.
	f.Add(full[:len(segMagic)+recHdrBytes+3])       // truncated mid-record, inside the first payload
	f.Add(append(clean(2), 0xAA, 0x00, 0x00, 0x00)) // torn header after a clean prefix
	flipped := append([]byte{}, full...)
	flipped[len(segMagic)+recHdrBytes+1] ^= 0x01 // byte flip inside a framed record
	f.Add(flipped)
	gapped := []byte(segMagic) // valid CRCs, seq 1 then 3: a gap, always fatal
	gapped = frameRecord(gapped, 1, testBatchF(1))
	gapped = frameRecord(gapped, 3, testBatchF(3))
	f.Add(gapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Tail the PRISTINE bytes from a second dir (Open may repair the
		// first copy in place). Whatever the input, the tailer must not
		// panic, and its terminal state is checked against Open's verdict
		// below.
		tailDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tailDir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		tl := NewTailer(tailDir, 0, nil)
		var tailSeqs []uint64
		var tailErr error
		for i := 0; i < 1000; i++ {
			_, n, perr := tl.Poll(1 << 20)
			if n > 0 {
				for s := tl.LastSeq() - uint64(n) + 1; s <= tl.LastSeq(); s++ {
					tailSeqs = append(tailSeqs, s)
				}
			}
			if perr != nil || n == 0 {
				tailErr = perr
				break
			}
		}

		l, err := Open(dir, Options{})
		if err != nil {
			return // rejected as corrupt: fine (tailer must only not panic)
		}
		// Open accepted (possibly repairing a torn tail). The tailer must
		// agree: it consumes exactly the records Open kept, and classifies
		// any trailing damage as pending (an active segment being written),
		// never as corruption — that split is what keeps a live follower
		// from quarantining its primary's in-flight write.
		var kept []uint64
		if rerr := l.Replay(0, func(seq uint64, _ []topk.Op) error {
			kept = append(kept, seq)
			return nil
		}); rerr != nil {
			t.Fatalf("replay of accepted log: %v", rerr)
		}
		if len(kept) > 0 && kept[0] > 1 {
			// Open tolerates a first seq above the segment's name; re-anchor
			// the tailer there for the comparison.
			tl = NewTailer(tailDir, kept[0]-1, nil)
			tailSeqs, tailErr = nil, nil
			for i := 0; i < 1000; i++ {
				_, n, perr := tl.Poll(1 << 20)
				if n > 0 {
					for s := tl.LastSeq() - uint64(n) + 1; s <= tl.LastSeq(); s++ {
						tailSeqs = append(tailSeqs, s)
					}
				}
				if perr != nil || n == 0 {
					tailErr = perr
					break
				}
			}
		}
		if tailErr != nil {
			var pend *PendingError
			if !errors.As(tailErr, &pend) {
				t.Fatalf("Open accepted but tailer reported %v (want nil or pending)", tailErr)
			}
		}
		if len(tailSeqs) != len(kept) {
			t.Fatalf("tailer consumed %d records, Open kept %d (%v vs %v)", len(tailSeqs), len(kept), tailSeqs, kept)
		}
		for i := range kept {
			if tailSeqs[i] != kept[i] {
				t.Fatalf("tailer seq %d at %d, Open kept %d", tailSeqs[i], i, kept[i])
			}
		}
		recovered := l.LastSeq()
		appended, err := l.Append(testBatchF(1))
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if appended != recovered+1 {
			t.Fatalf("append assigned seq %d after recovering %d", appended, recovered)
		}
		// Replaying past the recovered prefix must yield exactly the batch
		// just appended.
		n := 0
		if err := l.Replay(recovered, func(seq uint64, _ []topk.Op) error {
			if seq != appended {
				t.Fatalf("replayed seq %d, want %d", seq, appended)
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay after repair: %v", err)
		}
		if n != 1 {
			t.Fatalf("replayed %d batches past the recovered prefix, want 1", n)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// testBatchF mirrors testBatch but always yields a valid op sequence for any
// positive i (no deletes of negative ids needed).
func testBatchF(i int) []topk.Op {
	return []topk.Op{
		topk.InsertOp(geom.Point{ID: i, Coords: geom.Vector{float64(i) * 0.5, 0.125}}),
	}
}
