package wal

import (
	"os"
	"path/filepath"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// FuzzDecodeOps hammers the record payload decoder with arbitrary bytes: it
// must never panic or over-allocate, and everything it accepts must
// re-encode to the identical byte string (the encoding is canonical).
// Seed corpus: testdata/fuzz/FuzzDecodeOps (checked in).
func FuzzDecodeOps(f *testing.F) {
	f.Add(AppendOps(nil, 1, nil))
	f.Add(AppendOps(nil, 2, []topk.Op{topk.DeleteOp(42)}))
	f.Add(AppendOps(nil, 3, []topk.Op{
		topk.InsertOp(geom.Point{ID: 7, Coords: geom.Vector{0.25, 0.5, 0.75}}),
		topk.DeleteOp(-1),
	}))
	f.Add(AppendOps(nil, 1<<63, []topk.Op{
		topk.InsertOp(geom.Point{ID: 0, Coords: geom.Vector{}}),
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ops, err := DecodeOps(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		re := AppendOps(nil, seq, ops)
		if string(re) != string(data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the segment scanner as the newest
// segment of a log: Open must either repair (torn tail) or reject
// (corruption), never panic, and after a successful Open the log must accept
// appends and replay cleanly.
// Seed corpus: testdata/fuzz/FuzzSegmentScan (checked in).
func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add([]byte("FDRMSWL1\x00\x00\x00\x00"))
	f.Add([]byte{})
	clean := func(batches int) []byte {
		dir := f.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i := 1; i <= batches; i++ {
			if _, err := l.Append(testBatchF(i)); err != nil {
				f.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			f.Fatal(err)
		}
		names, _ := segments(dir)
		data, err := os.ReadFile(filepath.Join(dir, names[0]))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(clean(1))
	full := clean(3)
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			return // rejected as corrupt: fine
		}
		recovered := l.LastSeq()
		appended, err := l.Append(testBatchF(1))
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if appended != recovered+1 {
			t.Fatalf("append assigned seq %d after recovering %d", appended, recovered)
		}
		// Replaying past the recovered prefix must yield exactly the batch
		// just appended.
		n := 0
		if err := l.Replay(recovered, func(seq uint64, _ []topk.Op) error {
			if seq != appended {
				t.Fatalf("replayed seq %d, want %d", seq, appended)
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay after repair: %v", err)
		}
		if n != 1 {
			t.Fatalf("replayed %d batches past the recovered prefix, want 1", n)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// testBatchF mirrors testBatch but always yields a valid op sequence for any
// positive i (no deletes of negative ids needed).
func testBatchF(i int) []topk.Op {
	return []topk.Op{
		topk.InsertOp(geom.Point{ID: i, Coords: geom.Vector{float64(i) * 0.5, 0.125}}),
	}
}
