// WAL metrics: obs mirrors of append/sync/rotation traffic. The wal
// package sits outside the engine's determinism contract (it already owns
// wall-clock sync pacing), so fsync latency is timed here directly; the
// nil-receiver mirrors keep an uninstrumented log at one branch per site.
package wal

import "fdrms/internal/obs"

// Metrics holds the log's obs handles. Construct with NewMetrics and
// install with SetMetrics; a nil *Metrics disables mirroring.
type Metrics struct {
	Appends       *obs.Counter   // fdrms_wal_appends_total
	AppendedBytes *obs.Counter   // fdrms_wal_appended_bytes_total
	Fsyncs        *obs.Counter   // fdrms_wal_fsyncs_total
	FsyncNs       *obs.Histogram // fdrms_wal_fsync_ns
	Rotations     *obs.Counter   // fdrms_wal_rotations_total
	SegmentBytes  *obs.Gauge     // fdrms_wal_segment_bytes
}

// NewMetrics registers the log's metric families on r and returns the
// handle set, or nil when r is nil.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Appends:       r.Counter("fdrms_wal_appends_total", "update batches appended to the log"),
		AppendedBytes: r.Counter("fdrms_wal_appended_bytes_total", "record bytes appended (header included)"),
		Fsyncs:        r.Counter("fdrms_wal_fsyncs_total", "fsyncs of the active segment"),
		FsyncNs:       r.Histogram("fdrms_wal_fsync_ns", "latency of one segment fsync, nanoseconds"),
		Rotations:     r.Counter("fdrms_wal_rotations_total", "segment rotations (first open included)"),
		SegmentBytes:  r.Gauge("fdrms_wal_segment_bytes", "bytes in the active segment, header included"),
	}
}

// SetMetrics installs (or, with nil, removes) the log's metric mirrors.
// Like every Log method it must not race appends; install before serving.
func (l *Log) SetMetrics(m *Metrics) { l.met = m }
