// Checkpoint snapshot files.
//
// A checkpoint captures the full engine state as of a WAL seq S, so recovery
// loads the newest valid checkpoint and replays only the batches with
// seq > S. Files are self-validating and written atomically:
//
//	checkpoint-<16-hex-digit seq>.ckpt
//	  8 bytes magic "FDRMSCK1"
//	  u32  format version (1)
//	  u64  seq (the last WAL batch the snapshot includes; 0 = genesis)
//	  u64  payload length
//	  u32  CRC-32C of the payload
//	  payload (opaque to this package; see core.EncodeSnapshot)
//
// WriteCheckpoint stages the bytes in a temp file, fsyncs, then renames into
// place — a crash mid-write leaves at worst a stale temp file, never a
// half-valid checkpoint. NewestCheckpoint walks candidates newest first and
// skips any file that fails validation, so one corrupt checkpoint degrades
// recovery to the previous one (plus a longer replay) instead of failing it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	ckptMagic   = "FDRMSCK1"
	ckptVersion = 1
	ckptPrefix  = "checkpoint-"
	ckptSuffix  = ".ckpt"
	ckptHdrLen  = len(ckptMagic) + 4 + 8 + 8 + 4
)

// ckptName returns the checkpoint file name for a seq.
func ckptName(seq uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix) }

// checkpointFiles lists checkpoint file names in dir, oldest first.
func checkpointFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// WriteCheckpoint atomically writes a checkpoint file for seq in dir.
func WriteCheckpoint(dir string, seq uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, ckptHdrLen+len(payload))
	buf = append(buf, ckptMagic...)
	buf = AppendU32(buf, ckptVersion)
	buf = AppendU64(buf, seq)
	buf = AppendU64(buf, uint64(len(payload)))
	buf = AppendU32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(dir, ".tmp-"+ckptPrefix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ckptName(seq))); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// readCheckpoint validates one checkpoint file and returns its seq and
// payload.
func readCheckpoint(path string) (seq uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	return parseCheckpoint(filepath.Base(path), data)
}

// parseCheckpoint validates the raw bytes of a checkpoint file (base names
// the file in errors) and returns its seq and payload. Shared between the
// direct reader above and the TailFS-routed reader in tail.go.
func parseCheckpoint(base string, data []byte) (seq uint64, payload []byte, err error) {
	if len(data) < ckptHdrLen || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, fmt.Errorf("wal: %s: bad checkpoint magic", base)
	}
	off := len(ckptMagic)
	if v := binary.LittleEndian.Uint32(data[off:]); v != ckptVersion {
		return 0, nil, fmt.Errorf("wal: %s: unsupported checkpoint version %d", base, v)
	}
	seq = binary.LittleEndian.Uint64(data[off+4:])
	plen := binary.LittleEndian.Uint64(data[off+12:])
	crc := binary.LittleEndian.Uint32(data[off+20:])
	if plen != uint64(len(data)-ckptHdrLen) {
		return 0, nil, fmt.Errorf("wal: %s: payload length %d does not match file size", base, plen)
	}
	payload = data[ckptHdrLen:]
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, fmt.Errorf("wal: %s: checkpoint CRC mismatch", base)
	}
	return seq, payload, nil
}

// NewestCheckpoint returns the newest checkpoint in dir that validates,
// skipping corrupt or torn files. ok is false when none exists. A fresh
// (nonexistent) directory is not an error.
func NewestCheckpoint(dir string) (seq uint64, payload []byte, ok bool, err error) {
	names, err := checkpointFiles(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		seq, payload, err := readCheckpoint(filepath.Join(dir, names[i]))
		if err != nil {
			continue // fall back to the previous checkpoint
		}
		return seq, payload, true, nil
	}
	return 0, nil, false, nil
}

// OldestCheckpointSeq returns the seq of the oldest checkpoint file present
// (by file name; validation happens when one is actually read). Log segments
// must only be pruned up to THIS seq, not the newest one: recovery may fall
// back to the oldest retained checkpoint, and everything it would replay has
// to still exist.
func OldestCheckpointSeq(dir string) (uint64, bool, error) {
	names, err := checkpointFiles(dir)
	if err != nil || len(names) == 0 {
		return 0, false, err
	}
	var seq uint64
	if _, err := fmt.Sscanf(names[0], ckptPrefix+"%016x"+ckptSuffix, &seq); err != nil {
		return 0, false, fmt.Errorf("wal: unparseable checkpoint name %q", names[0])
	}
	return seq, true, nil
}

// PruneCheckpoints removes the oldest checkpoint files so that at most keep
// remain (keep < 1 is treated as 1: the newest checkpoint is never removed).
func PruneCheckpoints(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := checkpointFiles(dir)
	if err != nil {
		return err
	}
	if len(names) <= keep {
		return nil
	}
	for _, n := range names[:len(names)-keep] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// HasState reports whether dir holds any durable state (segments or
// checkpoints) — the discriminator between a fresh store and a recovery.
func HasState(dir string) (bool, error) {
	segs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(segs) > 0 {
		return true, nil
	}
	ckpts, err := checkpointFiles(dir)
	if err != nil {
		return false, err
	}
	return len(ckpts) > 0, nil
}
