// Binary encoding of WAL record payloads and the shared little-endian
// primitives the checkpoint snapshot encoding reuses (package core).
//
// A record payload is one durable update batch:
//
//	u64  seq        batch sequence number (1-based, strictly increasing)
//	u32  nops       operations in the batch
//	nops × op:
//	  u8   kind     0 = insert, 1 = delete
//	  i64  id       tuple id
//	  insert only:
//	    u32  dim
//	    dim × f64 coordinates (IEEE-754 bits, so replay is bit-exact)
//
// Everything is fixed-width little-endian: trivially seekable, cheap to
// decode, and easy to fuzz. Framing (length prefix + CRC) lives one layer
// up, in the segment format (wal.go); the decoder here still validates
// every count against the remaining byte budget so that a corrupted payload
// that slipped past the CRC — or a fuzzer-made one — is rejected instead of
// causing huge allocations or panics.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

const (
	opInsert = 0
	opDelete = 1

	// maxDim bounds the per-point dimensionality a decoder accepts. Real
	// databases are low-dimensional (the paper evaluates d <= 10); the bound
	// only rejects corrupt records before they allocate.
	maxDim = 1 << 16
)

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends an int64 as its two's-complement little-endian bits.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends the IEEE-754 bits of a float64.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// Dec is a bounds-checked little-endian reader over one payload. The first
// out-of-bounds read latches the error; subsequent reads return zero values,
// so decoders can be written straight-line and check Err once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b (which is not copied).
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// fail latches the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("wal: payload truncated: need %d bytes at offset %d, have %d", n, d.off, d.Remaining())
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if s := d.take(1); s != nil {
		return s[0]
	}
	return 0
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if s := d.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if s := d.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Count reads a u32 element count and validates it against the remaining
// byte budget assuming each element occupies at least elemBytes, so corrupt
// counts are rejected before they size an allocation.
func (d *Dec) Count(elemBytes int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if int64(n)*int64(elemBytes) > int64(d.Remaining()) {
		d.fail("wal: payload truncated: count %d × %d bytes exceeds remaining %d", n, elemBytes, d.Remaining())
		return 0
	}
	return int(n)
}

// AppendOps encodes one update batch as a record payload, appending to buf.
func AppendOps(buf []byte, seq uint64, ops []topk.Op) []byte {
	buf = AppendU64(buf, seq)
	buf = AppendU32(buf, uint32(len(ops)))
	for _, op := range ops {
		if op.Delete {
			buf = append(buf, opDelete)
			buf = AppendI64(buf, int64(op.ID))
			continue
		}
		buf = append(buf, opInsert)
		buf = AppendI64(buf, int64(op.Point.ID))
		buf = AppendU32(buf, uint32(len(op.Point.Coords)))
		for _, c := range op.Point.Coords {
			buf = AppendF64(buf, c)
		}
	}
	return buf
}

// DecodeOps decodes a record payload produced by AppendOps. It rejects
// trailing garbage, unknown op kinds, and any count that exceeds the payload
// size, and never panics on arbitrary input.
func DecodeOps(payload []byte) (seq uint64, ops []topk.Op, err error) {
	d := NewDec(payload)
	seq = d.U64()
	n := d.Count(9) // 1 kind byte + 8 id bytes minimum per op
	if d.Err() != nil {
		return 0, nil, d.Err()
	}
	ops = make([]topk.Op, 0, n)
	for i := 0; i < n; i++ {
		switch kind := d.U8(); kind {
		case opDelete:
			ops = append(ops, topk.DeleteOp(int(d.I64())))
		case opInsert:
			id := int(d.I64())
			dim := d.Count(8)
			if d.Err() == nil && dim > maxDim {
				d.fail("wal: op %d: dimension %d exceeds limit %d", i, dim, maxDim)
			}
			if d.Err() != nil {
				return 0, nil, d.Err()
			}
			coords := make(geom.Vector, dim)
			for j := range coords {
				coords[j] = d.F64()
			}
			ops = append(ops, topk.InsertOp(geom.Point{ID: id, Coords: coords}))
		default:
			if d.Err() == nil {
				d.fail("wal: op %d: unknown kind %d", i, kind)
			}
		}
		if d.Err() != nil {
			return 0, nil, d.Err()
		}
	}
	if d.Remaining() != 0 {
		return 0, nil, fmt.Errorf("wal: payload has %d trailing bytes", d.Remaining())
	}
	return seq, ops, nil
}
