// WAL tailing: the replica-side reader of the segment format.
//
// A Tailer consumes a log directory the way a follower process does — through
// the filesystem only, concurrently with a primary that is still appending.
// That changes what each kind of damage means compared to Open's crash
// recovery:
//
//   - A short or CRC-broken tail on the NEWEST segment is usually not a torn
//     write at all — it is the primary's buffered writer mid-flush. The tailer
//     reports it as pending (ErrKind: back off and re-poll); if the primary
//     really did crash there, Open on the primary side repairs it and the
//     next poll sees the truncated file.
//   - The same damage in a SEALED segment (any segment a newer one follows)
//     can never heal: sealed segments are closed after a clean final record.
//     That is corruption — the tailer quarantines instead of guessing.
//   - A seq discontinuity under a valid CRC is corruption wherever it occurs
//     (a torn write cannot fabricate a checksum around the wrong seq).
//   - A segment whose records the tailer still needs disappearing from the
//     directory (pruned by the primary, see Log.SetRetainFloor) — or a
//     consumed byte range shrinking or being rewritten — is a Gap: the
//     follower cannot continue from its position and must re-bootstrap from
//     a newer checkpoint.
//
// All reads go through a TailFS so a fault-injection layer (internal/replica)
// can truncate mid-record, delay visibility, or flip bytes deterministically.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fdrms/internal/topk"
)

// TailFS is the filesystem surface a Tailer (and follower bootstrap) reads
// through. The production implementation is OSFS; tests and the bench inject
// fault layers. Implementations must be safe for concurrent use.
type TailFS interface {
	// ReadDir lists the file names in dir (directories excluded).
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the current contents of path.
	ReadFile(path string) ([]byte, error)
}

// OSFS is the passthrough TailFS over the real filesystem.
type OSFS struct{}

// ReadDir lists the plain files in dir.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// ReadFile reads path in full.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// PendingError reports a condition that the primary's normal forward progress
// resolves: a torn tail on the active segment, a half-visible header, or a
// directory/file that has not appeared yet. The caller backs off and re-polls.
type PendingError struct {
	Reason string
}

func (e *PendingError) Error() string { return "wal tail pending: " + e.Reason }

// CorruptError reports structural damage that waiting cannot fix: a CRC or
// decode failure inside a sealed segment, or a sequence discontinuity under a
// valid checksum. The follower quarantines the feed and alarms.
type CorruptError struct {
	Segment string
	Offset  int64
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal tail corrupt: segment %s offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// GapError reports that the log no longer contains the tailer's position:
// the needed records were pruned, or already-consumed bytes were rewritten
// (a primary crash discarded an unsynced suffix the tailer had read). The
// follower must re-bootstrap from a checkpoint at or past Need-1.
type GapError struct {
	Need   uint64 // first seq the tailer still needs
	Reason string
}

func (e *GapError) Error() string {
	return fmt.Sprintf("wal tail gap: need seq %d: %s", e.Need, e.Reason)
}

// Tailer incrementally reads a WAL directory that another process appends to.
// Not safe for concurrent use; the follower's replay loop owns it.
type Tailer struct {
	dir string
	fs  TailFS

	lastSeq uint64 // last record seq consumed (records <= lastSeq are skipped)
	seg     string // segment the cursor sits in; "" = reattach by seq
	off     int64  // byte offset of the next unread record in seg

	// Fingerprint of the last consumed record: if the same bytes later hold a
	// different CRC, the primary rewrote history under us (crash recovery of
	// an unsynced suffix we had already read) — a Gap, not silent divergence.
	fpOff int64 // start offset of the last consumed record in seg; 0 = none
	fpCRC uint32
}

// NewTailer positions a tailer to deliver every record with seq > after from
// the log in dir, reading through fs (nil means the real filesystem).
func NewTailer(dir string, after uint64, fs TailFS) *Tailer {
	if fs == nil {
		fs = OSFS{}
	}
	return &Tailer{dir: dir, fs: fs, lastSeq: after}
}

// LastSeq returns the seq of the last record delivered by Poll (or the
// starting position when none has been yet).
func (t *Tailer) LastSeq() uint64 { return t.lastSeq }

// nameSeq parses the first-record seq a segment file name encodes.
func nameSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, segPrefix+"%016x"+segSuffix, &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment file names visible through the tailer's
// FS, in seq order.
func (t *Tailer) listSegments() ([]string, error) {
	ents, err := t.fs.ReadDir(t.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range ents {
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Poll reads forward from the cursor, appending decoded operations of each
// consecutive record to a fresh slice, until it reaches the end of the log,
// accumulates at least maxOps operations, or hits damage. It returns the
// operations in log order plus the number of records they came from.
//
// The error taxonomy is the contract (see the package comment): nil with
// records == 0 means cleanly caught up; *PendingError means back off and
// re-poll; *CorruptError means quarantine; *GapError means re-bootstrap.
// An error is only ever returned with zero records for THIS call — when
// damage follows a valid prefix, the prefix is delivered first and the next
// Poll reports the classification.
func (t *Tailer) Poll(maxOps int) (ops []topk.Op, records int, err error) {
	if maxOps < 1 {
		maxOps = 1
	}
	names, err := t.listSegments()
	if err != nil {
		// The directory not existing (or being hidden by a fault layer) is
		// indistinguishable from a primary that has not started yet.
		return nil, 0, &PendingError{Reason: fmt.Sprintf("listing segments: %v", err)}
	}
	if len(names) == 0 {
		// Either a fresh log or everything up to a checkpoint was pruned; in
		// both cases there is nothing to read and nothing proves loss.
		return nil, 0, nil
	}
	idx := -1
	if t.seg != "" {
		for i, n := range names {
			if n == t.seg {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Our segment vanished. If it was pruned because a checkpoint
			// covers it, reattach finds the successor; otherwise it reports
			// the gap.
			t.seg, t.off, t.fpOff = "", 0, 0
		}
	}
	if idx < 0 {
		idx, err = t.attach(names)
		if err != nil {
			return nil, 0, err
		}
	}
	for {
		active := idx == len(names)-1
		name := names[idx]
		data, rerr := t.fs.ReadFile(filepath.Join(t.dir, name))
		if rerr != nil {
			// Listed a moment ago but unreadable now: pruned between the two
			// calls, or a fault layer is delaying visibility. Re-poll.
			return t.deliver(ops, records, &PendingError{Reason: fmt.Sprintf("segment %s unreadable: %v", name, rerr)})
		}
		size := int64(len(data))
		if size < int64(len(segMagic)) || string(data[:len(segMagic)]) != segMagic {
			if active {
				// The primary created the file but its header write is not
				// fully visible yet.
				return t.deliver(ops, records, &PendingError{Reason: fmt.Sprintf("segment %s header not fully written", name)})
			}
			return t.deliver(ops, records, &CorruptError{Segment: name, Offset: 0, Reason: "missing or short segment header in sealed segment"})
		}
		if t.off == 0 {
			t.seg, t.off = name, int64(len(segMagic))
		}
		if t.off > size {
			return t.deliver(ops, records, &GapError{Need: t.lastSeq + 1, Reason: fmt.Sprintf("segment %s shrank below the consumed offset %d", name, t.off)})
		}
		if t.fpOff > 0 && t.fpOff+recHdrBytes <= size {
			if crc := binary.LittleEndian.Uint32(data[t.fpOff+4:]); crc != t.fpCRC {
				// The record we already consumed now holds different bytes:
				// the primary recovered from a crash and rewrote an unsynced
				// suffix we had read ahead of durability.
				return t.deliver(ops, records, &GapError{Need: t.lastSeq + 1, Reason: fmt.Sprintf("segment %s rewrote the record at offset %d", name, t.fpOff)})
			}
		}
		for t.off < size {
			recOff := t.off
			if size-recOff < recHdrBytes {
				return t.deliver(ops, records, t.tailDamage(active, name, recOff, "short record header"))
			}
			plen := int64(binary.LittleEndian.Uint32(data[recOff:]))
			crc := binary.LittleEndian.Uint32(data[recOff+4:])
			if plen == 0 || plen > maxRecordBytes || recOff+recHdrBytes+plen > size {
				return t.deliver(ops, records, t.tailDamage(active, name, recOff, "record length out of bounds"))
			}
			payload := data[recOff+recHdrBytes : recOff+recHdrBytes+plen]
			if crc32.Checksum(payload, crcTable) != crc {
				return t.deliver(ops, records, t.tailDamage(active, name, recOff, "payload CRC mismatch"))
			}
			seq, batch, derr := DecodeOps(payload)
			if derr != nil {
				// Valid CRC around an undecodable payload: match Open's
				// lenient stance on the newest segment (the primary may be
				// mid-write of a larger buffered flush), fatal when sealed.
				return t.deliver(ops, records, t.tailDamage(active, name, recOff, derr.Error()))
			}
			switch {
			case seq <= t.lastSeq:
				// Already applied (a reattach landed mid-segment): skip.
			case seq == t.lastSeq+1:
				ops = append(ops, batch...)
				records++
				t.lastSeq = seq
			default:
				return t.deliver(ops, records, &CorruptError{Segment: name, Offset: recOff, Reason: fmt.Sprintf("sequence gap: record %d follows %d", seq, t.lastSeq)})
			}
			t.off = recOff + recHdrBytes + plen
			t.fpOff, t.fpCRC = recOff, crc
			if len(ops) >= maxOps {
				return ops, records, nil
			}
		}
		if active {
			return ops, records, nil
		}
		// Sealed segment finished cleanly: continuity to the next one is
		// checked by name (its name encodes its first seq) so a pruned-away
		// middle segment surfaces as a gap, not a silent skip.
		next := names[idx+1]
		nseq, okName := nameSeq(next)
		if !okName {
			return t.deliver(ops, records, &CorruptError{Segment: next, Offset: 0, Reason: "unparseable segment name"})
		}
		if nseq > t.lastSeq+1 {
			return t.deliver(ops, records, &GapError{Need: t.lastSeq + 1, Reason: fmt.Sprintf("next segment %s starts at %d", next, nseq)})
		}
		idx++
		t.seg, t.off, t.fpOff = next, int64(len(segMagic)), 0
	}
}

// attach finds the segment holding seq lastSeq+1 by file name. The fixed
// invariant of Prune (a segment is removed only when its successor starts at
// or before the covered seq + 1) makes "the last segment whose name is <=
// target" the unique candidate.
func (t *Tailer) attach(names []string) (int, error) {
	target := t.lastSeq + 1
	idx := -1
	for i, n := range names {
		seq, ok := nameSeq(n)
		if !ok {
			continue
		}
		if seq <= target {
			idx = i
		}
	}
	if idx < 0 {
		return 0, &GapError{Need: target, Reason: fmt.Sprintf("oldest segment %s starts past the needed record", names[0])}
	}
	t.seg, t.off, t.fpOff = names[idx], 0, 0
	return idx, nil
}

// tailDamage classifies record-level damage by where it sits: repairable/
// in-progress on the active segment, corruption in a sealed one.
func (t *Tailer) tailDamage(active bool, name string, off int64, reason string) error {
	if active {
		return &PendingError{Reason: fmt.Sprintf("segment %s incomplete at offset %d (%s)", name, off, reason)}
	}
	return &CorruptError{Segment: name, Offset: off, Reason: reason}
}

// deliver enforces the progress-first contract: a valid prefix read in this
// call is returned with a nil error (the cursor already points at the damage,
// so the NEXT poll returns the classification with zero records).
func (t *Tailer) deliver(ops []topk.Op, records int, err error) ([]topk.Op, int, error) {
	if records > 0 {
		return ops, records, nil
	}
	return nil, 0, err
}

// NewestCheckpointFS is NewestCheckpoint reading through a TailFS, so the
// follower's bootstrap observes the same (possibly fault-injected) view of
// the primary's directory as its tailer. Corrupt or torn checkpoint files
// are skipped in favor of older ones, exactly like the recovery path.
func NewestCheckpointFS(fs TailFS, dir string) (seq uint64, payload []byte, ok bool, err error) {
	if fs == nil {
		fs = OSFS{}
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	var names []string
	for _, n := range ents {
		if strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		data, rerr := fs.ReadFile(filepath.Join(dir, names[i]))
		if rerr != nil {
			continue
		}
		seq, payload, perr := parseCheckpoint(names[i], data)
		if perr != nil {
			continue // fall back to the previous checkpoint
		}
		return seq, payload, true, nil
	}
	return 0, nil, false, nil
}
