// Package wal is the durability layer of the dynamic k-RMS store: a
// write-ahead log of update batches plus checkpoint snapshot files.
//
// The log is a directory of segment files, each
//
//	wal-<16-hex-digit first seq>.seg
//
// holding an 8-byte magic header followed by length-prefixed records:
//
//	u32  payload length
//	u32  CRC-32C (Castagnoli) of the payload
//	payload (see codec.go: one update batch, carrying its own seq)
//
// Records never span segments; a segment whose size exceeds the rotation
// threshold is closed and a new one started. Sequence numbers are assigned
// by the log, start at 1, and increase by exactly 1 per appended batch —
// a gap or repeat found during recovery is corruption, not a torn tail.
//
// Recovery semantics (Open): every segment is scanned front to back. A
// record that fails its length or CRC check in the NEWEST segment is a torn
// tail — the bytes a crash cut short — and the segment is truncated to the
// last valid record, which is exactly the durable prefix. The same damage
// in an older segment cannot be a torn write (older segments are only ever
// closed after a clean final record) and aborts recovery with an error.
//
// Checkpoint snapshot files (checkpoint.go) live in the same directory;
// Prune removes the segments a checkpoint has made redundant.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fdrms/internal/topk"
)

const (
	segMagic    = "FDRMSWL1"
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	recHdrBytes = 8 // u32 length + u32 crc

	// maxRecordBytes bounds a single record's payload: a length prefix above
	// it is treated as corruption (or a torn tail) rather than allocated.
	maxRecordBytes = 64 << 20

	// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
	// is zero.
	DefaultSegmentBytes = 8 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the size a segment may reach before the next append
	// rotates to a fresh file. Zero means DefaultSegmentBytes.
	SegmentBytes int64

	// SyncEveryAppend fsyncs after every appended batch: nothing acknowledged
	// is ever lost, at the cost of one fsync per batch.
	SyncEveryAppend bool

	// SyncInterval, when SyncEveryAppend is false, bounds how stale the
	// durable prefix may grow: an append fsyncs when this much time has
	// passed since the last sync. Zero defers syncing to rotation and Close.
	SyncInterval time.Duration

	// RetainSegments, when positive, keeps at least this many of the newest
	// segment files through Prune regardless of checkpoint coverage — a
	// static cushion for followers tailing the directory (see SetRetainFloor
	// for the precise, feedback-driven variant). Zero keeps only what
	// checkpoints require.
	RetainSegments int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Log is an append-only, CRC-checked, segmented record log. It is not safe
// for concurrent use; the durable store serializes writers.
type Log struct {
	dir string
	opt Options

	f        *os.File      // active segment (nil until the first append)
	w        *bufio.Writer // buffered writer over f
	size     int64         // bytes in the active segment, header included
	next     uint64        // seq of the next appended batch
	dirty    bool          // unsynced appends pending
	lastSync time.Time

	enc []byte // payload scratch, reused across appends

	// floor, when nonzero, is the oldest seq a replica still needs: Prune
	// keeps every segment that holds (or could hold) records >= floor even
	// when a checkpoint already covers them. Written only via SetRetainFloor.
	floor uint64

	// met, when set, mirrors append/sync/rotation traffic into obs handles
	// (see metrics.go). Written only via SetMetrics.
	met *Metrics
}

// segName returns the file name of a segment whose first record is seq.
func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }

// segments lists the segment file names in dir, in seq order (the fixed-width
// hex name makes lexicographic order the seq order).
func segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open scans (and, for the newest segment, repairs) the log in dir, creating
// the directory if needed, and returns a log positioned to append after the
// last durable record. LastSeq reports what survived.
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt.withDefaults(), next: 1, lastSync: time.Now()}
	names, err := segments(dir)
	if err != nil {
		return nil, err
	}
	expect := uint64(0) // last seq seen; 0 = none yet
	for i, name := range names {
		path := filepath.Join(dir, name)
		last := i == len(names)-1
		_, lastSeq, valid, n, err := scanSegment(path, expect)
		if err != nil && !(last && isTorn(err)) {
			// Tail damage is only repairable on the newest segment; anywhere
			// else — and for seq gaps everywhere — it is corruption.
			return nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if n > 0 {
			expect = lastSeq
		}
		if last {
			if valid < int64(len(segMagic)) {
				// The crash tore even the header write: the segment holds
				// nothing durable. Drop it; the next append starts a fresh one.
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				if err := syncDir(dir); err != nil {
					return nil, err
				}
				break
			}
			// Truncate the torn tail (a no-op when the segment ended cleanly)
			// and reopen for appending.
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			st, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, err
			}
			if st.Size() > valid {
				if err := f.Truncate(valid); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, err
				}
			}
			if _, err := f.Seek(valid, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.f = f
			l.w = bufio.NewWriter(f)
			l.size = valid
		}
	}
	if expect > 0 {
		l.next = expect + 1
	}
	return l, nil
}

// scanSegment walks one segment, verifying the header, every record's length
// prefix and CRC, and seq continuity (prevSeq is the last seq of the previous
// segment; 0 means this is the first). It returns the first and last record
// seqs, the byte offset just past the last valid record, and the record
// count. A corrupt or short tail is NOT an error — the caller decides whether
// truncating at valid is legitimate (newest segment) or fatal (older
// segment); for older segments any valid < file size is fatal, which the
// caller detects by err == errTornTail.
func scanSegment(path string, prevSeq uint64) (first, last uint64, valid int64, n int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// A crash can tear even the header write of a fresh segment; an older
		// segment with a bad header is real corruption. Callers treat a
		// zero-valid result on a non-newest segment as fatal via tornError.
		return 0, 0, 0, 0, tornError(path, len(data), 0, "missing or short segment header")
	}
	off := int64(len(segMagic))
	size := int64(len(data))
	expect := prevSeq
	for off < size {
		if size-off < recHdrBytes {
			return first, expect, off, n, tornError(path, int(size), off, "short record header")
		}
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen == 0 || plen > maxRecordBytes || off+recHdrBytes+plen > size {
			return first, expect, off, n, tornError(path, int(size), off, "record length out of bounds")
		}
		payload := data[off+recHdrBytes : off+recHdrBytes+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return first, expect, off, n, tornError(path, int(size), off, "payload CRC mismatch")
		}
		seq, _, derr := DecodeOps(payload)
		if derr != nil {
			return first, expect, off, n, tornError(path, int(size), off, derr.Error())
		}
		if expect != 0 && seq != expect+1 {
			// A torn write cannot fabricate a valid CRC around the wrong seq;
			// a gap means records were lost or reordered. Always fatal.
			return first, expect, off, n, fmt.Errorf("sequence gap: record %d follows %d", seq, expect)
		}
		if n == 0 {
			first = seq
		}
		expect = seq
		n++
		off += recHdrBytes + plen
	}
	return first, expect, off, n, nil
}

// tornTailError marks damage that is legitimate at the end of the newest
// segment (and fatal anywhere else).
type tornTailError struct {
	path   string
	size   int
	offset int64
	reason string
}

func (e *tornTailError) Error() string {
	return fmt.Sprintf("torn record at offset %d of %d (%s)", e.offset, e.size, e.reason)
}

func tornError(path string, size int, off int64, reason string) error {
	return &tornTailError{path: path, size: size, offset: off, reason: reason}
}

// isTorn reports whether err marks tail damage (repairable on the newest
// segment) rather than structural corruption.
func isTorn(err error) bool {
	_, ok := err.(*tornTailError)
	return ok
}

// LastSeq returns the seq of the last appended (or recovered) batch; 0 when
// the log is empty.
func (l *Log) LastSeq() uint64 { return l.next - 1 }

// EnsureNextSeq raises the next assigned seq to at least min. The durable
// store calls this after loading a checkpoint newer than every surviving
// segment (all were pruned), so new appends continue the numbering the
// checkpoint recorded instead of reusing it.
func (l *Log) EnsureNextSeq(min uint64) {
	if l.next < min {
		l.next = min
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append encodes one update batch as a record, writes it to the active
// segment (rotating first when the segment is full), applies the sync
// policy, and returns the batch's seq.
func (l *Log) Append(ops []topk.Op) (uint64, error) {
	if l.f == nil || l.size >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	seq := l.next
	l.enc = AppendOps(l.enc[:0], seq, ops)
	if len(l.enc) > maxRecordBytes {
		// Never write a record recovery would refuse to read: scanSegment
		// treats an oversized length prefix as a torn tail, so an oversized
		// record, once acknowledged, would be silently truncated away (or
		// strand every record after it). Reject before any byte is written;
		// callers split pathological batches.
		return 0, fmt.Errorf("wal: batch encodes to %d bytes, exceeding the %d-byte record limit; split the batch", len(l.enc), maxRecordBytes)
	}
	var hdr [recHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(l.enc)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(l.enc, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(l.enc); err != nil {
		return 0, err
	}
	l.size += int64(recHdrBytes + len(l.enc))
	l.next = seq + 1
	l.dirty = true
	if m := l.met; m != nil {
		m.Appends.Inc()
		m.AppendedBytes.Add(uint64(recHdrBytes + len(l.enc)))
		m.SegmentBytes.Set(l.size)
	}
	if l.opt.SyncEveryAppend ||
		(l.opt.SyncInterval > 0 && time.Since(l.lastSync) >= l.opt.SyncInterval) {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes buffered records and fsyncs the active segment, making every
// appended batch durable.
func (l *Log) Sync() error {
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.dirty {
		var start time.Time
		if l.met != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if m := l.met; m != nil {
			m.Fsyncs.Inc()
			m.FsyncNs.Observe(int64(time.Since(start)))
		}
		l.dirty = false
	}
	l.lastSync = time.Now()
	return nil
}

// rotate closes the active segment (after a final sync) and starts a fresh
// one named after the next seq.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(l.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = int64(len(segMagic))
	l.dirty = false
	if m := l.met; m != nil {
		m.Rotations.Inc()
		m.SegmentBytes.Set(l.size)
	}
	return nil
}

// Close syncs and closes the active segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	if err := l.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay invokes fn for every durable batch with seq > after, in order.
// It reads the segment files from disk (flushing the active writer first),
// so it observes exactly what recovery after a crash would.
func (l *Log) Replay(after uint64, fn func(seq uint64, ops []topk.Op) error) error {
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return err
		}
	}
	names, err := segments(l.dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(l.dir, name))
		if err != nil {
			return err
		}
		off := int64(len(segMagic))
		size := int64(len(data))
		for off+recHdrBytes <= size {
			plen := int64(binary.LittleEndian.Uint32(data[off:]))
			if plen == 0 || plen > maxRecordBytes || off+recHdrBytes+plen > size {
				break // torn tail already handled by Open; stop cleanly
			}
			seq, ops, err := DecodeOps(data[off+recHdrBytes : off+recHdrBytes+plen])
			if err != nil {
				return fmt.Errorf("wal: segment %s: %w", name, err)
			}
			if seq > after {
				if err := fn(seq, ops); err != nil {
					return err
				}
			}
			off += recHdrBytes + plen
		}
	}
	return nil
}

// ReplayBatched replays every durable batch with seq > after, coalescing
// consecutive records into batches of up to maxOps operations before handing
// them to apply — recovery's fast path, since the engine's ApplyBatch is
// bit-identical across batch sizes and ingests long runs fastest. It also
// enforces seq continuity: the first replayed record must be after+1 and
// each next one consecutive, so a recovery whose base checkpoint predates
// the surviving segments (pruned or lost batches in between) fails loudly
// instead of silently skipping acknowledged updates.
func (l *Log) ReplayBatched(after uint64, maxOps int, apply func(ops []topk.Op) error) error {
	if maxOps < 1 {
		maxOps = 1
	}
	buf := make([]topk.Op, 0, maxOps)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := apply(buf)
		buf = buf[:0]
		return err
	}
	expect := after + 1
	err := l.Replay(after, func(seq uint64, ops []topk.Op) error {
		if seq != expect {
			return fmt.Errorf("wal: log gap: expected batch %d after the base at %d, found %d — batches in between were pruned or lost", expect, after, seq)
		}
		expect++
		buf = append(buf, ops...)
		if len(buf) >= maxOps {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// firstSeqOf reads the seq of a segment's first record; ok is false for an
// empty (header-only) segment.
func firstSeqOf(path string) (seq uint64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var buf [len(segMagic) + recHdrBytes + 8]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return 0, false, nil // header-only or torn: no first record
	}
	return binary.LittleEndian.Uint64(buf[len(segMagic)+recHdrBytes:]), true, nil
}

// SetRetainFloor pins the prune horizon: every record with seq >= seq stays
// replayable until the floor is raised again. The durable store forwards a
// follower's applied seq here so checkpoint-driven pruning can never delete
// a segment a known replica has not consumed yet. Zero clears the floor.
// Not safe concurrently with Append/Prune; callers hold the writer lock.
func (l *Log) SetRetainFloor(seq uint64) { l.floor = seq }

// Prune removes segments made redundant by a checkpoint covering every batch
// with seq <= upTo: a segment can go once the NEXT segment starts at or
// before upTo+1 (so the next segment already holds the first record a
// recovery could need). The active segment is never removed, the retention
// floor (SetRetainFloor) caps how far pruning may reach, and
// Options.RetainSegments newest segments are always kept.
func (l *Log) Prune(upTo uint64) error {
	if l.floor > 0 {
		if l.floor == 1 {
			return nil // everything from the first record is still needed
		}
		if upTo > l.floor-1 {
			upTo = l.floor - 1
		}
	}
	names, err := segments(l.dir)
	if err != nil {
		return err
	}
	left := len(names)
	for i := 0; i+1 < len(names); i++ {
		if l.opt.RetainSegments > 0 && left <= l.opt.RetainSegments {
			break
		}
		next, ok, err := firstSeqOf(filepath.Join(l.dir, names[i+1]))
		if err != nil {
			return err
		}
		if !ok || next > upTo+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, names[i])); err != nil {
			return err
		}
		left--
	}
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
// Some platforms reject fsync on directories, so the sync itself is
// best-effort; only failing to open the directory is reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
