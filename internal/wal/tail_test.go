package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/topk"
)

// frameRecord appends one fully framed record (header + CRC + payload) for a
// hand-built segment.
func frameRecord(buf []byte, seq uint64, ops []topk.Op) []byte {
	payload := AppendOps(nil, seq, ops)
	var hdr [recHdrBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// drain polls until the tailer reports caught-up or an error, returning the
// total records consumed and the terminal error (nil when caught up).
func drain(t *testing.T, tl *Tailer) (int, error) {
	t.Helper()
	total := 0
	for i := 0; i < 10000; i++ {
		_, n, err := tl.Poll(64)
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
	}
	t.Fatal("tailer did not converge in 10000 polls")
	return 0, nil
}

func TestTailerFollowsLiveLogAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tl := NewTailer(dir, 0, nil)
	var got []topk.Op
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
		// Interleave: poll after every append, like a live follower.
		ops, _, err := tl.Poll(1 << 20)
		if err != nil {
			t.Fatalf("poll after append %d: %v", i, err)
		}
		got = append(got, ops...)
	}
	if names, _ := segments(dir); len(names) < 2 {
		t.Fatalf("expected rotations, got %d segments", len(names))
	}
	if tl.LastSeq() != 40 || len(got) != 40 {
		t.Fatalf("tailed to seq %d with %d ops, want 40/40", tl.LastSeq(), len(got))
	}
	for i, op := range got {
		if op.Point.ID != i+1 {
			t.Fatalf("op %d has id %d, want %d (order broken)", i, op.Point.ID, i+1)
		}
	}
	// Caught up: clean empty poll.
	if _, n, err := tl.Poll(64); err != nil || n != 0 {
		t.Fatalf("caught-up poll: n=%d err=%v, want 0/nil", n, err)
	}
}

func TestTailerTornActiveTailIsPendingThenResumes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segments(dir)
	path := filepath.Join(dir, names[0])
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record: a header promising more bytes than the file holds.
	torn := append(append([]byte{}, clean...), 0xFF, 0x00, 0x00, 0x00, 0xEE, 0xEE)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(dir, 0, nil)
	// Progress-first: the valid prefix arrives with no error...
	_, n, err := tl.Poll(1 << 20)
	if err != nil || n != 3 {
		t.Fatalf("first poll: n=%d err=%v, want 3/nil", n, err)
	}
	// ...and only the empty follow-up classifies the tail as pending.
	_, n, err = tl.Poll(1 << 20)
	var pend *PendingError
	if n != 0 || !errors.As(err, &pend) {
		t.Fatalf("torn active tail: n=%d err=%v, want PendingError", n, err)
	}

	// The primary finishes the write (here: the torn bytes become a full
	// record): the follower resumes with no resync.
	fixed := frameRecord(append([]byte{}, clean...), 4, testBatchF(4))
	if err := os.WriteFile(path, fixed, 0o644); err != nil {
		t.Fatal(err)
	}
	ops, n, err := tl.Poll(1 << 20)
	if err != nil || n != 1 || len(ops) != 1 || tl.LastSeq() != 4 {
		t.Fatalf("post-repair poll: n=%d err=%v lastSeq=%d, want 1/nil/4", n, err, tl.LastSeq())
	}
}

func TestTailerSealedSegmentDamageIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := segments(dir)
	if len(names) < 2 {
		t.Fatalf("need rotations, got %d segments", len(names))
	}
	// Flip one payload byte in the FIRST (sealed) segment.
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte{}, data...)
	damaged[len(damaged)-1] ^= 0x01
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(dir, 0, nil)
	_, cerr := drain(t, tl)
	var corrupt *CorruptError
	if !errors.As(cerr, &corrupt) {
		t.Fatalf("sealed-segment damage: err=%v, want CorruptError", cerr)
	}
	if corrupt.Segment != names[0] {
		t.Fatalf("corruption blamed on %s, want %s", corrupt.Segment, names[0])
	}

	// The fault heals (operator restores the segment): tailing resumes from
	// the quarantine point and converges.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if total, err := drain(t, tl); err != nil || tl.LastSeq() != 10 {
		t.Fatalf("after heal: consumed %d err=%v lastSeq=%d, want lastSeq 10", total, err, tl.LastSeq())
	}
}

func TestTailerSeqGapUnderValidCRCIsCorruption(t *testing.T) {
	dir := t.TempDir()
	seg := []byte(segMagic)
	seg = frameRecord(seg, 1, testBatchF(1))
	seg = frameRecord(seg, 3, testBatchF(3)) // 2 is missing
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0, nil)
	total, err := drain(t, tl)
	var corrupt *CorruptError
	if total != 1 || !errors.As(err, &corrupt) {
		t.Fatalf("seq gap: consumed %d err=%v, want 1 record then CorruptError", total, err)
	}
}

func TestTailerReportsGapWhenPositionPruned(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 12; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := segments(dir)
	if len(names) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(names))
	}
	// A fresh follower positioned before the first surviving record, after
	// the log pruned everything a checkpoint covered.
	last := l.LastSeq()
	if err := l.Prune(last); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0, nil)
	_, _, err = tl.Poll(64)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("pruned-behind poll: err=%v, want GapError", err)
	}
	if gap.Need != 1 {
		t.Fatalf("gap.Need = %d, want 1", gap.Need)
	}

	// A follower already past the prune horizon keeps tailing untouched.
	tl2 := NewTailer(dir, last, nil)
	if _, n, err := tl2.Poll(64); err != nil || n != 0 {
		t.Fatalf("caught-up follower after prune: n=%d err=%v", n, err)
	}
}

func TestTailerMidTailPruneSurfacesAsGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 12; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	tl := NewTailer(dir, 0, nil)
	// Consume only the first record, leaving the cursor in the oldest
	// segment.
	if _, n, err := tl.Poll(1); err != nil || n != 1 {
		t.Fatalf("first poll: n=%d err=%v", n, err)
	}
	if err := l.Prune(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	_, _, err = tl.Poll(64)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("mid-tail prune: err=%v, want GapError", err)
	}
}

func TestTailerDetectsRewrittenHistory(t *testing.T) {
	dir := t.TempDir()
	seg := []byte(segMagic)
	seg = frameRecord(seg, 1, testBatchF(1))
	withTwo := frameRecord(append([]byte{}, seg...), 2, testBatchF(2))
	path := filepath.Join(dir, segName(1))
	if err := os.WriteFile(path, withTwo, 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0, nil)
	if total, err := drain(t, tl); err != nil || total != 2 {
		t.Fatalf("initial drain: %d records err=%v", total, err)
	}
	// The primary crashes, loses record 2 (it was never synced), restarts,
	// and writes a DIFFERENT record 2. Same seq, same offset, different
	// bytes.
	rewritten := frameRecord(append([]byte{}, seg...), 2, testBatchF(99))
	if err := os.WriteFile(path, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := tl.Poll(64)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("rewritten history: err=%v, want GapError (forces resync)", err)
	}
}

func TestTailerHeaderOnlyActiveSegmentIsCaughtUp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(segMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0, nil)
	if _, n, err := tl.Poll(64); err != nil || n != 0 {
		t.Fatalf("header-only active segment: n=%d err=%v, want clean caught-up", n, err)
	}
}

func TestTailerMissingDirectoryIsPending(t *testing.T) {
	tl := NewTailer(filepath.Join(t.TempDir(), "not-yet"), 0, nil)
	_, _, err := tl.Poll(64)
	var pend *PendingError
	if !errors.As(err, &pend) {
		t.Fatalf("missing dir: err=%v, want PendingError", err)
	}
}

func TestPruneRespectsRetainFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 12; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := segments(dir)
	if len(before) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(before))
	}
	// Floor at 1: nothing may go.
	l.SetRetainFloor(1)
	if err := l.Prune(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if after, _ := segments(dir); len(after) != len(before) {
		t.Fatalf("floor 1 pruned %d segments", len(before)-len(after))
	}
	// Floor in the middle: records >= floor stay replayable.
	const floor = 6
	l.SetRetainFloor(floor)
	if err := l.Prune(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, floor-1, nil)
	total, terr := drain(t, tl)
	if terr != nil || total != 12-(floor-1) {
		t.Fatalf("post-prune tail from floor: %d records err=%v, want %d", total, terr, 12-(floor-1))
	}
	// Clearing the floor releases everything up to the covered seq.
	l.SetRetainFloor(0)
	if err := l.Prune(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if after, _ := segments(dir); len(after) != 1 {
		t.Fatalf("cleared floor left %d segments, want only the active one", len(after))
	}
}

func TestPruneKeepsLastNSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEveryAppend: true, RetainSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(testBatchF(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := segments(dir)
	if len(before) <= 3 {
		t.Fatalf("need > 3 segments, got %d", len(before))
	}
	if err := l.Prune(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	after, _ := segments(dir)
	if len(after) != 3 {
		t.Fatalf("RetainSegments=3 left %d segments, want 3", len(after))
	}
}

// hideFS hides one file name from a TailFS — the minimal fault layer for
// checkpoint fallback (the full FaultFS lives in internal/replica).
type hideFS struct {
	inner TailFS
	name  string
}

func (h hideFS) ReadDir(dir string) ([]string, error) {
	names, err := h.inner.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := names[:0]
	for _, n := range names {
		if n != h.name {
			out = append(out, n)
		}
	}
	return out, nil
}

func (h hideFS) ReadFile(path string) ([]byte, error) {
	if filepath.Base(path) == h.name {
		return nil, os.ErrNotExist
	}
	return h.inner.ReadFile(path)
}

func TestNewestCheckpointFSFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 5, []byte("old-state")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, 9, []byte("new-state")); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err := NewestCheckpointFS(nil, dir)
	if err != nil || !ok || seq != 9 || string(payload) != "new-state" {
		t.Fatalf("newest: seq=%d ok=%v err=%v", seq, ok, err)
	}
	// Newest hidden (delayed visibility): fall back to the older one, like
	// recovery does for corrupt files.
	seq, payload, ok, err = NewestCheckpointFS(hideFS{inner: OSFS{}, name: ckptName(9)}, dir)
	if err != nil || !ok || seq != 5 || string(payload) != "old-state" {
		t.Fatalf("fallback: seq=%d ok=%v err=%v", seq, ok, err)
	}
	// Corrupt newest on disk: same fallback through the FS-routed reader.
	if err := os.WriteFile(filepath.Join(dir, ckptName(9)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, _, ok, err = NewestCheckpointFS(nil, dir)
	if err != nil || !ok || seq != 5 {
		t.Fatalf("corrupt-newest fallback: seq=%d ok=%v err=%v", seq, ok, err)
	}
	// Nothing at all.
	_, _, ok, err = NewestCheckpointFS(nil, filepath.Join(dir, "missing"))
	if err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestTailerUsesTestBatchOps(t *testing.T) {
	// Guard the assumption the other tests lean on: testBatchF(i) produces
	// exactly one insert with ID i.
	ops := testBatchF(7)
	if len(ops) != 1 || ops[0].Delete || ops[0].Point.ID != 7 {
		t.Fatalf("testBatchF shape changed: %+v", ops)
	}
	_ = geom.Point{}
}
