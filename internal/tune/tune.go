// Package tune holds the ε parameter-selection rule of FD-RMS (the paper's
// trial-and-error procedure, Section III-C). It lives below both the public
// rms package (whose Options default to it) and the bench harness (whose ε
// sweep walks the same ladder), so neither has to depend on the other.
package tune

import (
	"math"

	"fdrms/internal/core"
	"fdrms/internal/geom"
	"fdrms/internal/regret"
)

// EpsLadder is the paper's ε grid (Section III-C): powers of two times 1e-4.
func EpsLadder() []float64 {
	out := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		out = append(out, 1e-4*math.Pow(2, float64(i)))
	}
	return out
}

// TuneEps mirrors the paper's trial-and-error parameter selection
// (Section III-C): walk the ε ladder, build FD-RMS on the initial database,
// and keep the ε with the best estimated regret that does not saturate M.
// Large databases are probed through a subsample — the tuned ε transfers
// because it tracks the optimal regret level, which is a property of the
// data distribution, not of n.
func TuneEps(pts []geom.Point, dim, k, r, m int, seed int64) float64 {
	const tuneCap = 4000
	if len(pts) > tuneCap {
		pts = pts[:tuneCap]
	}
	probeM := m
	if probeM > 1024 {
		probeM = 1024
	}
	if probeM <= r {
		probeM = m
	}
	ev := regret.NewEvaluator(pts, dim, k, 2000, seed+999)
	bestEps, bestMRR := 0.0, math.Inf(1)
	for _, eps := range EpsLadder() {
		cfg := core.Config{K: k, R: r, Eps: eps, M: probeM, Seed: seed}
		f, err := core.New(dim, pts, cfg)
		if err != nil {
			continue
		}
		mrr := ev.MRR(f.Result())
		exhausted := f.Stats().M >= probeM
		f.Close()
		if mrr < bestMRR-1e-9 {
			bestEps, bestMRR = eps, mrr
		}
		if exhausted {
			break // sample budget exhausted; larger eps cannot help
		}
	}
	if bestEps == 0 {
		bestEps = 0.0016
	}
	return bestEps
}
