// Package nonlinear extends k-regret minimizing sets beyond linear
// utilities — the direction the FD-RMS paper names as future work
// (Section VI), following the function classes studied in the literature:
//
//   - convex Lq utilities f(p) = (Σ (u_i·p_i)^q)^{1/q}, q >= 1
//     (Faulkner, Brackenbury, Lall: "k-Regret Queries with Nonlinear
//     Utilities", PVLDB 2015);
//   - multiplicative (Cobb-Douglas) utilities f(p) = Π p_i^{u_i},
//     Σ u_i = 1 (Qi, Zuo, Samet, Yao: "k-Regret Queries Using
//     Multiplicative Utility Functions", TODS 2018).
//
// Every class here is monotone: improving an attribute never lowers the
// score, so k-RMS answers remain subsets of the skyline and the sampled
// hitting-set reduction applies unchanged — sample utilities from the
// class, build the ε-approximate top-k set of each, and pick the smallest
// tuple set hitting all of them, binary-searching ε to meet the size
// budget. Compute implements exactly that for any Class.
package nonlinear

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fdrms/internal/geom"
	"fdrms/internal/skyline"
)

// Utility is one concrete utility function.
type Utility interface {
	// Score returns the (nonnegative) utility of a tuple.
	Score(p geom.Point) float64
}

// Class is a family of utility functions that can be sampled.
type Class interface {
	// Name identifies the class.
	Name() string
	// Sample draws n utilities from the class for databases of the given
	// dimensionality, deterministically in rng.
	Sample(rng *rand.Rand, dim, n int) []Utility
}

// --- linear (the baseline class, for cross-checking) -------------------------

// LinearUtility scores by inner product with a unit weight vector.
type LinearUtility struct{ W geom.Vector }

// Score implements Utility.
func (u LinearUtility) Score(p geom.Point) float64 { return geom.Dot(u.W, p.Coords) }

// Linear is the class of linear utilities of Section II of the paper.
type Linear struct{}

// Name implements Class.
func (Linear) Name() string { return "linear" }

// Sample implements Class.
func (Linear) Sample(rng *rand.Rand, dim, n int) []Utility {
	out := make([]Utility, n)
	for i := range out {
		w := make(geom.Vector, dim)
		for j := range w {
			w[j] = math.Abs(rng.NormFloat64())
		}
		geom.Normalize(w)
		out[i] = LinearUtility{W: w}
	}
	return out
}

// --- convex Lq utilities ------------------------------------------------------

// LqUtility scores by the weighted q-norm (Σ (w_i·p_i)^q)^{1/q}.
type LqUtility struct {
	W geom.Vector
	Q float64
}

// Score implements Utility.
func (u LqUtility) Score(p geom.Point) float64 {
	var s float64
	for i, w := range u.W {
		s += math.Pow(w*p.Coords[i], u.Q)
	}
	return math.Pow(s, 1/u.Q)
}

// ConvexLq is the class of convex Lq utilities with a fixed exponent
// (q = 1 recovers linear; q -> infinity approaches max).
type ConvexLq struct{ Q float64 }

// Name implements Class.
func (c ConvexLq) Name() string { return fmt.Sprintf("convex-L%g", c.Q) }

// Sample implements Class.
func (c ConvexLq) Sample(rng *rand.Rand, dim, n int) []Utility {
	q := c.Q
	if q < 1 {
		q = 1
	}
	out := make([]Utility, n)
	for i := range out {
		w := make(geom.Vector, dim)
		for j := range w {
			w[j] = math.Abs(rng.NormFloat64())
		}
		geom.Normalize(w)
		out[i] = LqUtility{W: w, Q: q}
	}
	return out
}

// --- multiplicative (Cobb-Douglas) utilities ----------------------------------

// MultiplicativeUtility scores by Π p_i^{w_i} with Σ w_i = 1. Zero
// attribute values are floored at a small constant so a single zero does
// not erase every other attribute (the standard smoothing in the
// multiplicative-utility literature).
type MultiplicativeUtility struct{ W geom.Vector }

const multFloor = 1e-3

// Score implements Utility.
func (u MultiplicativeUtility) Score(p geom.Point) float64 {
	var logSum float64
	for i, w := range u.W {
		x := p.Coords[i]
		if x < multFloor {
			x = multFloor
		}
		logSum += w * math.Log(x)
	}
	return math.Exp(logSum)
}

// Multiplicative is the Cobb-Douglas class of Qi et al.
type Multiplicative struct{}

// Name implements Class.
func (Multiplicative) Name() string { return "multiplicative" }

// Sample implements Class: exponents are a uniform Dirichlet draw.
func (Multiplicative) Sample(rng *rand.Rand, dim, n int) []Utility {
	out := make([]Utility, n)
	for i := range out {
		w := make(geom.Vector, dim)
		var sum float64
		for j := range w {
			w[j] = rng.ExpFloat64()
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
		out[i] = MultiplicativeUtility{W: w}
	}
	return out
}

// --- regret under a sampled class ---------------------------------------------

// Evaluator estimates the maximum k-regret ratio under a utility class
// with a fixed sample of utilities (the nonlinear analogue of
// regret.Evaluator).
type Evaluator struct {
	utils []Utility
	kth   []float64
	k     int
}

// NewEvaluator samples the class and precomputes ω_k(f, P) per utility.
func NewEvaluator(class Class, P []geom.Point, dim, k, samples int, seed int64) *Evaluator {
	rng := rand.New(rand.NewSource(seed))
	ev := &Evaluator{utils: class.Sample(rng, dim, samples), k: k}
	ev.kth = make([]float64, len(ev.utils))
	for i, u := range ev.utils {
		ev.kth[i] = kthScore(u, P, k)
	}
	return ev
}

// MRR estimates the maximum k-regret ratio of Q.
func (ev *Evaluator) MRR(Q []geom.Point) float64 {
	worst := 0.0
	for i, u := range ev.utils {
		if ev.kth[i] <= 0 {
			continue
		}
		best := 0.0
		for _, q := range Q {
			if s := u.Score(q); s > best {
				best = s
			}
		}
		if r := 1 - best/ev.kth[i]; r > worst {
			worst = r
		}
	}
	return worst
}

func kthScore(u Utility, P []geom.Point, k int) float64 {
	if len(P) == 0 {
		return 0
	}
	if k > len(P) {
		k = len(P)
	}
	scores := make([]float64, len(P))
	for i, p := range P {
		scores[i] = u.Score(p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	return scores[k-1]
}

// --- the sampled hitting-set algorithm ------------------------------------------

// Compute returns a size-<=r (k, ε)-regret set of P for the utility class,
// with ε minimized by binary search over the sampled hitting-set
// reduction. All classes here are monotone, so the candidate pool is the
// skyline for k = 1 and the full database otherwise, as in the linear
// case.
func Compute(class Class, P []geom.Point, dim, k, r, samples int, seed int64) []geom.Point {
	if len(P) == 0 || r <= 0 {
		return nil
	}
	pool := P
	if k == 1 {
		pool = skyline.Compute(P)
	}
	rng := rand.New(rand.NewSource(seed))
	utils := class.Sample(rng, dim, samples)

	// Score matrix over the pool and ω_k over the full database.
	kth := make([]float64, len(utils))
	scores := make([][]float64, len(utils))
	for i, u := range utils {
		kth[i] = kthScore(u, P, k)
		row := make([]float64, len(pool))
		for j, p := range pool {
			row[j] = u.Score(p)
		}
		scores[i] = row
	}

	feasible := func(eps float64) []int {
		memberOf := make([][]int, len(pool))
		needed := 0
		hit := make([]bool, len(utils))
		for i := range utils {
			if kth[i] <= 0 {
				hit[i] = true
				continue
			}
			tau := (1 - eps) * kth[i]
			any := false
			for j := range pool {
				if scores[i][j] >= tau {
					memberOf[j] = append(memberOf[j], i)
					any = true
				}
			}
			if !any {
				hit[i] = true // unreachable at this eps; widen via the search
				continue
			}
			needed++
		}
		var sel []int
		for needed > 0 {
			if len(sel) == r {
				return nil
			}
			bestJ, bestCount := -1, 0
			for j := range pool {
				c := 0
				for _, i := range memberOf[j] {
					if !hit[i] {
						c++
					}
				}
				if c > bestCount {
					bestJ, bestCount = j, c
				}
			}
			if bestJ < 0 {
				return nil
			}
			sel = append(sel, bestJ)
			for _, i := range memberOf[bestJ] {
				if !hit[i] {
					hit[i] = true
					needed--
				}
			}
		}
		return sel
	}

	lo, hi := 0.0, 1.0
	var best []int
	for iter := 0; iter < 24; iter++ {
		eps := (lo + hi) / 2
		if sel := feasible(eps); sel != nil {
			best = sel
			hi = eps
		} else {
			lo = eps
		}
	}
	if best == nil {
		best = feasible(1.0)
	}
	out := make([]geom.Point, 0, len(best))
	for _, j := range best {
		out = append(out, pool[j])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
