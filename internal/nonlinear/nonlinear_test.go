package nonlinear

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fdrms/internal/dataset"
	"fdrms/internal/geom"
	"fdrms/internal/regret"
)

func allClasses() []Class {
	return []Class{Linear{}, ConvexLq{Q: 2}, ConvexLq{Q: 4}, Multiplicative{}}
}

func TestClassNames(t *testing.T) {
	want := map[string]bool{"linear": true, "convex-L2": true, "convex-L4": true, "multiplicative": true}
	for _, c := range allClasses() {
		if !want[c.Name()] {
			t.Errorf("unexpected class name %q", c.Name())
		}
	}
}

// Property: every sampled utility is monotone — improving one coordinate
// never lowers the score.
func TestMonotonicityQuick(t *testing.T) {
	for _, class := range allClasses() {
		class := class
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			dim := 2 + rng.Intn(4)
			u := class.Sample(rng, dim, 1)[0]
			v := make(geom.Vector, dim)
			for j := range v {
				v[j] = 0.05 + 0.9*rng.Float64()
			}
			p := geom.Point{ID: 0, Coords: v}
			base := u.Score(p)
			w := v.Clone()
			j := rng.Intn(dim)
			w[j] += 0.05 + rng.Float64()*0.05
			q := geom.Point{ID: 1, Coords: w}
			return u.Score(q) >= base-1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", class.Name(), err)
		}
	}
}

// Lq with q = 1 must coincide with the linear score.
func TestLqOneIsLinear(t *testing.T) {
	w := geom.Normalize(geom.Vector{0.3, 0.5, 0.8})
	lin := LinearUtility{W: w}
	lq := LqUtility{W: w, Q: 1}
	p := geom.NewPoint(0, 0.2, 0.9, 0.4)
	if math.Abs(lin.Score(p)-lq.Score(p)) > 1e-12 {
		t.Fatalf("L1 score %v != linear score %v", lq.Score(p), lin.Score(p))
	}
}

// Multiplicative utilities are scale-bounded: score of a [0,1] tuple never
// exceeds 1 and the ordering is dominated by the heavier exponent.
func TestMultiplicativeBasics(t *testing.T) {
	u := MultiplicativeUtility{W: geom.Vector{0.9, 0.1}}
	strongFirst := geom.NewPoint(0, 0.9, 0.2)
	strongSecond := geom.NewPoint(1, 0.2, 0.9)
	if u.Score(strongFirst) <= u.Score(strongSecond) {
		t.Fatal("exponent weighting not respected")
	}
	if u.Score(geom.NewPoint(2, 1, 1)) > 1+1e-12 {
		t.Fatal("score of the all-ones tuple must be <= 1")
	}
	// Zero flooring keeps scores positive.
	if u.Score(geom.NewPoint(3, 0, 0.5)) <= 0 {
		t.Fatal("floored score must stay positive")
	}
}

func TestComputeContracts(t *testing.T) {
	ds := dataset.Indep(300, 4, 1)
	for _, class := range allClasses() {
		for _, r := range []int{1, 5, 15} {
			Q := Compute(class, ds.Points, 4, 1, r, 500, 2)
			if len(Q) == 0 || len(Q) > r {
				t.Errorf("%s r=%d: |Q| = %d", class.Name(), r, len(Q))
			}
		}
		if got := Compute(class, nil, 4, 1, 5, 100, 1); got != nil {
			t.Errorf("%s: empty P should give nil", class.Name())
		}
	}
}

// Quality improves with r under every class.
func TestQualityMonotoneInR(t *testing.T) {
	ds := dataset.AntiCor(400, 4, 3)
	for _, class := range allClasses() {
		ev := NewEvaluator(class, ds.Points, 4, 1, 3000, 7)
		prev := 1.1
		for _, r := range []int{2, 6, 20} {
			Q := Compute(class, ds.Points, 4, 1, r, 800, 5)
			m := ev.MRR(Q)
			if m > prev+0.03 {
				t.Errorf("%s: mrr at r=%d is %v, worse than smaller r (%v)", class.Name(), r, m, prev)
			}
			prev = m
		}
	}
}

// The linear class must agree with the linear-regret machinery: the
// nonlinear evaluator and the standard sampled evaluator see comparable
// regret for the same answer set.
func TestLinearClassMatchesLinearEvaluator(t *testing.T) {
	ds := dataset.Indep(300, 3, 9)
	Q := Compute(Linear{}, ds.Points, 3, 1, 8, 2000, 3)
	nl := NewEvaluator(Linear{}, ds.Points, 3, 1, 20000, 11).MRR(Q)
	lin := regret.NewEvaluator(ds.Points, 3, 1, 20000, 11).MRR(Q)
	if math.Abs(nl-lin) > 0.03 {
		t.Fatalf("nonlinear-eval %v vs linear-eval %v disagree", nl, lin)
	}
}

// k > 1 lowers the bar and hence the regret.
func TestKSoftensRegret(t *testing.T) {
	ds := dataset.Indep(300, 3, 13)
	for _, class := range []Class{ConvexLq{Q: 2}, Multiplicative{}} {
		Q := Compute(class, ds.Points, 3, 1, 6, 800, 5)
		r1 := NewEvaluator(class, ds.Points, 3, 1, 3000, 17).MRR(Q)
		r3 := NewEvaluator(class, ds.Points, 3, 3, 3000, 17).MRR(Q)
		if r3 > r1+1e-9 {
			t.Errorf("%s: mrr_3 %v exceeds mrr_1 %v", class.Name(), r3, r1)
		}
	}
}

// The whole database always has zero regret against itself.
func TestFullDatabaseZeroRegret(t *testing.T) {
	ds := dataset.Indep(100, 3, 21)
	for _, class := range allClasses() {
		if m := NewEvaluator(class, ds.Points, 3, 1, 1000, 23).MRR(ds.Points); m > 1e-9 {
			t.Errorf("%s: mrr of P against P = %v", class.Name(), m)
		}
	}
}

func BenchmarkComputeConvex(b *testing.B) {
	ds := dataset.Indep(2000, 4, 1)
	for i := 0; i < b.N; i++ {
		Compute(ConvexLq{Q: 2}, ds.Points, 4, 1, 10, 1000, 1)
	}
}
