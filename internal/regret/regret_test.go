package regret

import (
	"math"
	"math/rand"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/skyline"
)

// paperPoints is the 8-tuple database of Fig. 1.
func paperPoints() []geom.Point {
	return []geom.Point{
		geom.NewPoint(1, 0.2, 1.0),
		geom.NewPoint(2, 0.6, 0.8),
		geom.NewPoint(3, 0.7, 0.5),
		geom.NewPoint(4, 1.0, 0.1),
		geom.NewPoint(5, 0.4, 0.3),
		geom.NewPoint(6, 0.2, 0.7),
		geom.NewPoint(7, 0.3, 0.9),
		geom.NewPoint(8, 0.6, 0.6),
	}
}

func pick(pts []geom.Point, ids ...int) []geom.Point {
	var out []geom.Point
	for _, id := range ids {
		for _, p := range pts {
			if p.ID == id {
				out = append(out, p)
			}
		}
	}
	return out
}

// Example 1 of the paper: rr_2(u1, Q1) = 1 − 0.749/0.98 ≈ 0.236.
func TestPaperExample1RegretRatio(t *testing.T) {
	P := paperPoints()
	Q1 := pick(P, 3, 4)
	u1 := geom.Vector{0.42, 0.91}
	got := RatioForUtility(u1, P, Q1, 2)
	want := 1 - 0.749/0.98
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rr_2(u1, Q1) = %v, want %v", got, want)
	}
}

// Example 1: mrr_2(Q1) ≈ 0.444, attained at u = (0, 1).
func TestPaperExample1MaxRegret(t *testing.T) {
	P := paperPoints()
	Q1 := pick(P, 3, 4)
	// At the basis vector (0,1): ω_2 = 0.9 (p7), ω(Q1) = 0.5 (p3).
	u := geom.Vector{0, 1}
	got := RatioForUtility(u, P, Q1, 2)
	want := 1.0 - 0.5/0.9
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rr_2((0,1), Q1) = %v, want %v", got, want)
	}
	// The estimator includes basis vectors, so it must find at least this.
	ev := NewEvaluator(P, 2, 2, 2000, 1)
	est := ev.MRR(Q1)
	if est < want-1e-9 {
		t.Fatalf("estimated mrr %v below the basis-vector bound %v", est, want)
	}
	if est > want+0.02 {
		t.Fatalf("estimated mrr %v too far above the known maximum %v", est, want)
	}
}

// Example 1: Q2 = {p1, p2, p4} is a (2, 0)-regret set: mrr_2(Q2) = 0.
func TestPaperExample1ZeroRegretSet(t *testing.T) {
	P := paperPoints()
	Q2 := pick(P, 1, 2, 4)
	ev := NewEvaluator(P, 2, 2, 5000, 2)
	if got := ev.MRR(Q2); got > 1e-9 {
		t.Fatalf("mrr_2(Q2) = %v, want 0", got)
	}
}

// Example 2: Q* = {p1, p4} has ε*_{2,2} = mrr_2(Q*) ≈ 0.05.
func TestPaperExample2OptimalValue(t *testing.T) {
	P := paperPoints()
	Q := pick(P, 1, 4)
	ev := NewEvaluator(P, 2, 2, 20000, 3)
	got := ev.MRR(Q)
	if math.Abs(got-0.05) > 0.015 {
		t.Fatalf("mrr_2({p1,p4}) = %v, want ≈ 0.05", got)
	}
}

// Example 2 continued. The paper claims Q* = {p1, p4} with ε*_{2,2} ≈ 0.05.
// Exact analysis shows {p4, p7} is in fact marginally better (mrr_2 ≈ 0.044
// at the direction where p4 and p7 tie, versus ≈ 0.049 for {p1, p4}) — the
// example in the paper is rounded. We therefore assert the slightly weaker,
// exactly-true statement: the best pair's regret is ≈ 0.044-0.05 and
// {p1, p4} is within 0.01 of it.
func TestPaperExample2OptimalSubset(t *testing.T) {
	P := paperPoints()
	ev := NewEvaluator(P, 2, 2, 5000, 4)
	best := math.Inf(1)
	var bestPair [2]int
	for i := 0; i < len(P); i++ {
		for j := i + 1; j < len(P); j++ {
			v := ev.MRR([]geom.Point{P[i], P[j]})
			if v < best {
				best = v
				bestPair = [2]int{P[i].ID, P[j].ID}
			}
		}
	}
	if math.Abs(best-0.046) > 0.01 {
		t.Fatalf("best pair %v has mrr %v, want ≈ 0.044-0.05", bestPair, best)
	}
	paperChoice := ev.MRR(pick(P, 1, 4))
	if paperChoice-best > 0.01 {
		t.Fatalf("{p1,p4} (mrr %v) should be within 0.01 of the optimum %v", paperChoice, best)
	}
}

func TestRatioEdgeCases(t *testing.T) {
	P := paperPoints()
	u := geom.Vector{0.6, 0.8}
	// Empty Q: total regret.
	if got := RatioForUtility(u, P, nil, 1); got != 1 {
		t.Fatalf("rr with empty Q = %v, want 1", got)
	}
	// Q containing the top tuple: zero regret.
	if got := RatioForUtility(u, P, P, 1); got != 0 {
		t.Fatalf("rr with Q = P is %v, want 0", got)
	}
	// Empty P.
	if got := RatioForUtility(u, nil, nil, 1); got != 0 {
		t.Fatalf("rr with empty P = %v, want 0", got)
	}
	// k larger than |P| falls back to the minimum score.
	if got := RatioForUtility(u, P[:2], P[:1], 5); got < 0 || got > 1 {
		t.Fatalf("rr out of range: %v", got)
	}
}

func TestEvaluatorMonotoneInQ(t *testing.T) {
	P := paperPoints()
	ev := NewEvaluator(P, 2, 1, 3000, 5)
	q1 := pick(P, 4)
	q2 := pick(P, 4, 1)
	q3 := pick(P, 4, 1, 2)
	a, b, c := ev.MRR(q1), ev.MRR(q2), ev.MRR(q3)
	if b > a+1e-12 || c > b+1e-12 {
		t.Fatalf("mrr must be monotone nonincreasing in Q: %v %v %v", a, b, c)
	}
}

func TestExactMRR1FullSkylineIsZero(t *testing.T) {
	P := paperPoints()
	sky := skyline.Compute(P)
	got, err := ExactMRR1(P, sky)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-7 {
		t.Fatalf("mrr_1(skyline) = %v, want 0", got)
	}
}

func TestExactMRR1EmptyQ(t *testing.T) {
	P := paperPoints()
	got, err := ExactMRR1(P, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-7 {
		t.Fatalf("mrr_1(∅) = %v, want 1", got)
	}
}

// The exact LP value must upper-bound the sampled estimate and the sampled
// estimate must converge to it.
func TestExactVsSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(2)
		n := 20 + rng.Intn(40)
		P := make([]geom.Point, n)
		for i := range P {
			v := make(geom.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			P[i] = geom.Point{ID: i, Coords: v}
		}
		Q := P[:3]
		exact, err := ExactMRR1(P, Q)
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(P, d, 1, 30000, int64(trial))
		est := ev.MRR(Q)
		if est > exact+1e-6 {
			t.Fatalf("trial %d: sampled %v exceeds exact %v", trial, est, exact)
		}
		if exact-est > 0.05 {
			t.Fatalf("trial %d: sampled %v too far below exact %v", trial, est, exact)
		}
	}
}

func BenchmarkEvaluatorMRR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, n := 6, 10000
	P := make([]geom.Point, n)
	for i := range P {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		P[i] = geom.Point{ID: i, Coords: v}
	}
	ev := NewEvaluator(P, d, 1, 10000, 2)
	Q := P[:50]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.MRR(Q)
	}
}
