// Package regret computes k-regret ratios — the quality measure of the
// k-RMS problem (Section II of the paper).
//
// For a utility vector u, the k-regret ratio of Q over P is
//
//	rr_k(u, Q) = max(0, 1 − ω(u, Q) / ω_k(u, P)),
//
// the relative loss of replacing the k-th ranked tuple of P with the best
// tuple of Q. The maximum k-regret ratio mrr_k(Q) maximizes rr_k over the
// whole utility class U. The package provides
//
//   - the sampled estimator the paper's evaluation uses (a fixed test set of
//     random utility vectors; the paper uses 500K), and
//   - the exact LP formulation of Nanongkai et al. for k = 1, used by the
//     GREEDY and GEOGREEDY baselines and to validate the estimator.
package regret

import (
	"math"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
	"fdrms/internal/lp"
	"fdrms/internal/skyline"
)

// RatioForUtility computes rr_k(u, Q) over P by brute force.
// It returns 0 when P has fewer than k tuples with positive k-th score.
func RatioForUtility(u geom.Vector, P, Q []geom.Point, k int) float64 {
	kth := kthScore(u, P, k)
	if kth <= 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, q := range Q {
		if s := geom.Score(u, q); s > best {
			best = s
		}
	}
	if len(Q) == 0 {
		return 1
	}
	r := 1 - best/kth
	if r < 0 {
		return 0
	}
	return r
}

func kthScore(u geom.Vector, P []geom.Point, k int) float64 {
	if len(P) == 0 {
		return 0
	}
	if k > len(P) {
		k = len(P)
	}
	// Partial selection of the k largest scores.
	top := make([]float64, 0, k)
	for _, p := range P {
		s := geom.Score(u, p)
		if len(top) < k {
			top = append(top, s)
			up(top)
		} else if s > top[0] {
			top[0] = s
			down(top)
		}
	}
	return top[0]
}

// up/down maintain a min-heap of float64 rooted at index 0.
func up(h []float64) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func down(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l] < h[small] {
			small = l
		}
		if r < len(h) && h[r] < h[small] {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Evaluator estimates mrr_k(Q) over a fixed database P using a fixed test
// set of sampled utility vectors, mirroring the paper's methodology
// (Section IV-A: "a test set of 500K random utility vectors"). The k-th
// scores ω_k(u, P) are computed once through a k-d tree and cached, so many
// candidate sets Q can be scored cheaply against the same database.
type Evaluator struct {
	k       int
	samples []geom.Vector
	kth     []float64 // ω_k(u_i, P) per sample
}

// NewEvaluator builds an estimator over P with the given number of sampled
// utility vectors (the d standard basis vectors are always included, on top
// of numSamples random ones).
func NewEvaluator(P []geom.Point, dim, k, numSamples int, seed int64) *Evaluator {
	ev := &Evaluator{k: k}
	ev.samples = make([]geom.Vector, 0, numSamples+dim)
	for i := 0; i < dim; i++ {
		ev.samples = append(ev.samples, geom.Basis(dim, i))
	}
	s := geom.NewUnitSampler(dim, seed)
	ev.samples = append(ev.samples, s.SampleN(numSamples)...)

	ev.kth = make([]float64, len(ev.samples))
	tree := kdtree.New(dim, P)
	for i, u := range ev.samples {
		if s, ok := tree.KthScore(u, k); ok {
			ev.kth[i] = s
		}
	}
	return ev
}

// NumSamples returns the size of the utility test set.
func (ev *Evaluator) NumSamples() int { return len(ev.samples) }

// MRR estimates mrr_k(Q) as the maximum sampled regret ratio.
func (ev *Evaluator) MRR(Q []geom.Point) float64 {
	worst := 0.0
	for i, u := range ev.samples {
		if ev.kth[i] <= 0 {
			continue
		}
		best := 0.0
		for _, q := range Q {
			if s := geom.Score(u, q); s > best {
				best = s
			}
		}
		r := 1 - best/ev.kth[i]
		if r > worst {
			worst = r
		}
	}
	return worst
}

// ExactMRR1 computes the exact maximum 1-regret ratio of Q over P by
// solving, for every skyline tuple p of P, the LP of Nanongkai et al.:
//
//	maximize δ   s.t.  <u, q> <= <u, p> − δ  for all q in Q,
//	                   <u, p> <= 1,  u >= 0, δ >= 0.
//
// At the optimum <u, p> = 1, so δ equals 1 − ω(u, Q)/<u, p>; maximizing
// over skyline tuples yields mrr_1 because the top-1 tuple of any
// nonnegative utility lies on the skyline.
func ExactMRR1(P, Q []geom.Point) (float64, error) {
	if len(P) == 0 {
		return 0, nil
	}
	sky := skyline.Compute(P)
	worst := 0.0
	for _, p := range sky {
		delta, err := regretLP(p, Q)
		if err != nil {
			return 0, err
		}
		if delta > worst {
			worst = delta
		}
	}
	return worst, nil
}

// PointRegretLP solves the single-tuple LP of ExactMRR1 for one tuple p:
// the maximum 1-regret ratio that p alone can inflict on Q over all
// nonnegative utilities. The GREEDY and GEOGREEDY baselines call this for
// every candidate at every iteration.
func PointRegretLP(p geom.Point, Q []geom.Point) (float64, error) {
	return regretLP(p, Q)
}

// regretLP solves the single-tuple LP above; variables are (u_1..u_d, δ).
func regretLP(p geom.Point, Q []geom.Point) (float64, error) {
	d := p.Dim()
	obj := make([]float64, d+1)
	obj[d] = 1 // maximize δ
	prob := lp.NewProblem(obj)
	for _, q := range Q {
		coeffs := make([]float64, d+1)
		for i := 0; i < d; i++ {
			coeffs[i] = q.Coords[i] - p.Coords[i]
		}
		coeffs[d] = 1
		prob.AddConstraint(coeffs, lp.LE, 0)
	}
	coeffs := make([]float64, d+1)
	copy(coeffs, p.Coords)
	prob.AddConstraint(coeffs, lp.LE, 1)
	// δ <= 1 keeps the LP bounded when Q is empty.
	capDelta := make([]float64, d+1)
	capDelta[d] = 1
	prob.AddConstraint(capDelta, lp.LE, 1)
	sol, err := lp.Solve(prob)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil
	}
	return sol.Objective, nil
}
