package geom

import "math/rand"

// UnitSampler draws utility vectors uniformly at random from the
// nonnegative orthant of the unit sphere U = {u in R^d_+ : ||u|| = 1},
// the utility class of Section II of the paper.
//
// Uniformity on the orthant follows from the rotational symmetry of the
// Gaussian: sample d independent standard normals, take absolute values,
// and normalize.
type UnitSampler struct {
	d   int
	rng *rand.Rand
}

// NewUnitSampler returns a sampler for dimension d seeded deterministically,
// so experiment runs are reproducible.
func NewUnitSampler(d int, seed int64) *UnitSampler {
	return &UnitSampler{d: d, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws one utility vector.
func (s *UnitSampler) Sample() Vector {
	v := make(Vector, s.d)
	for {
		for i := range v {
			x := s.rng.NormFloat64()
			if x < 0 {
				x = -x
			}
			v[i] = x
		}
		if Norm(v) > 1e-12 {
			break
		}
	}
	return Normalize(v)
}

// SampleN draws n utility vectors.
func (s *UnitSampler) SampleN(n int) []Vector {
	out := make([]Vector, n)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}

// BasisThenRandom returns m utility vectors where the first d are the
// standard basis of R^d_+ and the remaining m-d are drawn uniformly from U,
// exactly as Line 1 of Algorithm 2 (INITIALIZATION) prescribes.
// It panics if m < d.
func BasisThenRandom(d, m int, seed int64) []Vector {
	if m < d {
		panic("geom: BasisThenRandom requires m >= d")
	}
	out := make([]Vector, 0, m)
	for i := 0; i < d; i++ {
		out = append(out, Basis(d, i))
	}
	s := NewUnitSampler(d, seed)
	out = append(out, s.SampleN(m-d)...)
	return out
}
