package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := Dot(v, w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNormAndNormalize(t *testing.T) {
	v := Vector{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	Normalize(v)
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Fatalf("normalized norm = %v, want 1", Norm(v))
	}
	zero := Vector{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("normalizing zero vector changed it: %v", zero)
	}
}

func TestAddSubScaleDist(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 5}
	if got := Add(v, w); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(w, v); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Scale(v, 2); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := Dist(v, w); math.Abs(got-math.Sqrt(13)) > 1e-12 {
		t.Fatalf("Dist = %v", got)
	}
}

func TestAngle(t *testing.T) {
	x := Vector{1, 0}
	y := Vector{0, 1}
	if got := Angle(x, y); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("Angle = %v, want pi/2", got)
	}
	if got := Angle(x, x); got > 1e-7 {
		t.Fatalf("Angle(x,x) = %v, want 0", got)
	}
	// Clamping: nearly parallel vectors must not produce NaN.
	a := Vector{1, 1e-9}
	Normalize(a)
	if got := Angle(a, Vector{math.Sqrt(0.5), math.Sqrt(0.5)}); math.IsNaN(got) {
		t.Fatal("Angle returned NaN")
	}
}

func TestBasis(t *testing.T) {
	b := Basis(4, 2)
	want := Vector{0, 0, 1, 0}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Basis(4,2) = %v", b)
		}
	}
}

func TestDominates(t *testing.T) {
	p := NewPoint(0, 0.5, 0.5)
	q := NewPoint(1, 0.5, 0.4)
	r := NewPoint(2, 0.4, 0.6)
	if !Dominates(p, q) {
		t.Error("p should dominate q")
	}
	if Dominates(q, p) {
		t.Error("q should not dominate p")
	}
	if Dominates(p, r) || Dominates(r, p) {
		t.Error("p and r are incomparable")
	}
	if Dominates(p, p) {
		t.Error("a point must not dominate itself")
	}
}

func TestUnitSamplerProperties(t *testing.T) {
	s := NewUnitSampler(5, 42)
	for i := 0; i < 200; i++ {
		u := s.Sample()
		if len(u) != 5 {
			t.Fatalf("dimension = %d", len(u))
		}
		if math.Abs(Norm(u)-1) > 1e-9 {
			t.Fatalf("norm = %v, want 1", Norm(u))
		}
		for _, x := range u {
			if x < 0 {
				t.Fatalf("negative component %v in %v", x, u)
			}
		}
	}
}

func TestUnitSamplerDeterministic(t *testing.T) {
	a := NewUnitSampler(3, 7).SampleN(10)
	b := NewUnitSampler(3, 7).SampleN(10)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed must give identical samples")
			}
		}
	}
}

func TestBasisThenRandom(t *testing.T) {
	vs := BasisThenRandom(3, 8, 1)
	if len(vs) != 8 {
		t.Fatalf("len = %d, want 8", len(vs))
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if vs[i][j] != want {
				t.Fatalf("vector %d is not basis: %v", i, vs[i])
			}
		}
	}
	for _, u := range vs[3:] {
		if math.Abs(Norm(u)-1) > 1e-9 {
			t.Fatalf("random vector not unit: %v", u)
		}
	}
}

func TestBasisThenRandomPanicsWhenTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < d")
		}
	}()
	BasisThenRandom(5, 3, 0)
}

func TestScaleToUnitBox(t *testing.T) {
	pts := []Point{
		NewPoint(0, 10, 5, 7),
		NewPoint(1, 20, 5, 3),
		NewPoint(2, 15, 5, 11),
	}
	ScaleToUnitBox(pts)
	for _, p := range pts {
		for i, x := range p.Coords {
			if x < 0 || x > 1 {
				t.Fatalf("coordinate %d of %v out of [0,1]", i, p)
			}
		}
	}
	// Constant attribute maps to 1.
	for _, p := range pts {
		if p.Coords[1] != 1 {
			t.Fatalf("constant attribute should map to 1, got %v", p.Coords[1])
		}
	}
	if pts[0].Coords[0] != 0 || pts[1].Coords[0] != 1 {
		t.Fatalf("min/max not mapped to 0/1: %v %v", pts[0], pts[1])
	}
}

func TestCloneAndString(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone must not alias the original")
	}
	p := NewPoint(3, 0.5, 0.25)
	if got := p.String(); got != "p3[0.5 0.25]" {
		t.Fatalf("String = %q", got)
	}
}

func TestMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Add(Vector{1}, Vector{1, 2}) },
		func() { Sub(Vector{1}, Vector{1, 2}) },
		func() { Dist(Vector{1}, Vector{1, 2}) },
		func() { Dominates(NewPoint(0, 1), NewPoint(1, 1, 2)) },
		func() { Basis(2, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestScaleToUnitBoxEmpty(t *testing.T) {
	if got := ScaleToUnitBox(nil); got != nil {
		t.Fatalf("ScaleToUnitBox(nil) = %v", got)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotPropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		v, w := make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			v[i], w[i] = r.NormFloat64(), r.NormFloat64()
		}
		c := r.NormFloat64()
		sym := math.Abs(Dot(v, w)-Dot(w, v)) < 1e-9
		lin := math.Abs(Dot(Scale(v, c), w)-c*Dot(v, w)) < 1e-6*(1+math.Abs(c*Dot(v, w)))
		return sym && lin
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Dist.
func TestDistTriangleQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a, b, c := make(Vector, d), make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = r.Float64(), r.Float64(), r.Float64()
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is transitive and antisymmetric.
func TestDominanceTransitiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(4)
		mk := func(id int) Point {
			v := make(Vector, d)
			for i := range v {
				v[i] = math.Round(r.Float64()*4) / 4 // coarse grid to force ties
			}
			return Point{ID: id, Coords: v}
		}
		p, q, s := mk(0), mk(1), mk(2)
		if Dominates(p, q) && Dominates(q, p) {
			return false
		}
		if Dominates(p, q) && Dominates(q, s) && !Dominates(p, s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
