// Package geom provides the geometric primitives underlying the k-regret
// minimizing set problem: tuples as points in the nonnegative orthant of R^d,
// linear utility functions as unit vectors, dot-product scores, and sampling
// of utility vectors from the nonnegative part of the unit sphere.
//
// All utility-space conventions follow Section II of the FD-RMS paper
// (Wang et al., ICDE 2021): attribute values are scaled to [0, 1], utility
// vectors are normalized to unit Euclidean norm, and the utility class U is
// the nonnegative orthant of the (d-1)-sphere.
package geom

import (
	"fmt"
	"math"
)

// Vector is a d-dimensional real vector. It is used both for tuple
// coordinates and for utility directions.
type Vector []float64

// Point is a database tuple: an identifier plus nonnegative coordinates.
// IDs are assigned by the caller and must be unique within a database.
type Point struct {
	ID     int
	Coords Vector
}

// NewPoint returns a point with the given id and coordinates.
func NewPoint(id int, coords ...float64) Point {
	return Point{ID: id, Coords: coords}
}

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p.Coords) }

// String renders the point as "p<ID>(c1, c2, ...)".
func (p Point) String() string {
	return fmt.Sprintf("p%d%v", p.ID, []float64(p.Coords))
}

// Dot returns the inner product <v, w>. The two vectors must have equal
// length; Dot panics otherwise, since a dimension mismatch is always a
// programming error in this codebase.
func Dot(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("geom: dot product dimension mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Score is the utility score <u, p.Coords> of tuple p under utility vector u.
func Score(u Vector, p Point) float64 { return Dot(u, p.Coords) }

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit Euclidean norm and returns it.
// The zero vector is returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Add returns v + w as a new vector.
func Add(v, w Vector) Vector {
	if len(v) != len(w) {
		panic("geom: add dimension mismatch")
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func Sub(v, w Vector) Vector {
	if len(v) != len(w) {
		panic("geom: sub dimension mismatch")
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v as a new vector.
func Scale(v Vector, c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vector) float64 {
	if len(v) != len(w) {
		panic("geom: dist dimension mismatch")
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosAngle returns the cosine of the angle between v and w, clamped to
// [-1, 1] to protect downstream acos calls from rounding noise.
// It returns 1 if either vector is zero.
func CosAngle(v, w Vector) float64 {
	nv, nw := Norm(v), Norm(w)
	if nv == 0 || nw == 0 {
		return 1
	}
	c := Dot(v, w) / (nv * nw)
	return clamp(c, -1, 1)
}

// Angle returns the angle between v and w in radians, in [0, pi].
func Angle(v, w Vector) float64 { return math.Acos(CosAngle(v, w)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Basis returns the i-th standard basis vector of R^d.
func Basis(d, i int) Vector {
	if i < 0 || i >= d {
		panic(fmt.Sprintf("geom: basis index %d out of range for dimension %d", i, d))
	}
	v := make(Vector, d)
	v[i] = 1
	return v
}

// Dominates reports whether p dominates q: p is at least as good as q on
// every attribute and strictly better on at least one (larger is better).
func Dominates(p, q Point) bool {
	if len(p.Coords) != len(q.Coords) {
		panic("geom: dominance dimension mismatch")
	}
	strict := false
	for i, x := range p.Coords {
		y := q.Coords[i]
		if x < y {
			return false
		}
		if x > y {
			strict = true
		}
	}
	return strict
}

// ScaleToUnitBox rescales every attribute of the given points to [0, 1]
// independently (min-max normalization), in place. Attributes that are
// constant across all points are mapped to 1. It returns the points for
// chaining. The maximum k-regret ratio is scale-invariant, so this matches
// the paper's preprocessing without changing any result.
func ScaleToUnitBox(pts []Point) []Point {
	if len(pts) == 0 {
		return pts
	}
	d := pts[0].Dim()
	mins := make([]float64, d)
	maxs := make([]float64, d)
	for i := 0; i < d; i++ {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for _, p := range pts {
		for i, x := range p.Coords {
			if x < mins[i] {
				mins[i] = x
			}
			if x > maxs[i] {
				maxs[i] = x
			}
		}
	}
	for _, p := range pts {
		for i := range p.Coords {
			if maxs[i] > mins[i] {
				p.Coords[i] = (p.Coords[i] - mins[i]) / (maxs[i] - mins[i])
			} else {
				p.Coords[i] = 1
			}
		}
	}
	return pts
}
