// Package dataset generates the databases used in the paper's evaluation
// (Section IV-A): the synthetic Indep and AntiCor families of Börzsönyi et
// al. ("The skyline operator", ICDE 2001), and calibrated synthetic
// stand-ins for the four real datasets (BB, AQ, CT, Movie) that the original
// experiments downloaded from the web.
//
// Every generator is deterministic given its seed, and every dataset is
// scaled to the unit hypercube as Section II assumes.
package dataset

import (
	"fmt"
	"math/rand"

	"fdrms/internal/geom"
)

// Dataset is a named collection of tuples together with the generation
// parameters, so experiment harnesses can report Table I-style statistics.
type Dataset struct {
	Name   string
	Points []geom.Point
	Dim    int
}

// N returns the number of tuples.
func (d *Dataset) N() int { return len(d.Points) }

// Indep generates n uniform points on the unit hypercube [0,1]^d with
// independent attributes, as described in the skyline paper.
func Indep(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	return &Dataset{Name: fmt.Sprintf("Indep(n=%d,d=%d)", n, d), Points: pts, Dim: d}
}

// AntiCor generates n points with anti-correlated attributes following the
// construction of Börzsönyi et al.: each point's attribute total is drawn
// from a tight normal distribution, and the total is split across the d
// attributes by a symmetric Dirichlet draw, so a high value on one attribute
// forces low values on the others. Points concentrate near the simplex
// sum(x_i) = const, where they are pairwise incomparable, which maximizes
// skyline size — the defining property of the AntiCor family in Fig. 4.
func AntiCor(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: i, Coords: antiCorVector(rng, d)}
	}
	geom.ScaleToUnitBox(pts)
	return &Dataset{Name: fmt.Sprintf("AntiCor(n=%d,d=%d)", n, d), Points: pts, Dim: d}
}

// antiCorVector draws the attribute total T ~ N(d/2, d/16) and splits it by
// a Dirichlet(1, ..., 1) weight vector (normalized unit-rate exponentials).
func antiCorVector(rng *rand.Rand, d int) geom.Vector {
	total := normClamped(rng, float64(d)/2, float64(d)/16, 0, float64(d))
	v := make(geom.Vector, d)
	var sum float64
	for j := range v {
		v[j] = rng.ExpFloat64()
		sum += v[j]
	}
	for j := range v {
		v[j] = total * v[j] / sum
		if v[j] > 1 {
			v[j] = 1 // mass beyond the unit box is clipped, as in the original generator
		}
	}
	return v
}

// Correlated generates n points whose attributes share a common latent
// factor with weight rho in [0,1); rho=0 reduces to Indep, rho close to 1
// yields strongly correlated attributes and hence tiny skylines.
func Correlated(n, d int, rho float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		base := rng.Float64()
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rho*base + (1-rho)*rng.Float64()
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	geom.ScaleToUnitBox(pts)
	return &Dataset{Name: fmt.Sprintf("Correlated(n=%d,d=%d,rho=%.2f)", n, d, rho), Points: pts, Dim: d}
}

func normClamped(rng *rand.Rand, mean, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := mean + sd*rng.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return mean
}
