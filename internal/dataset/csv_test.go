package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Indep(50, 4, 3)
	var buf bytes.Buffer
	if err := SaveCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != orig.N() || got.Dim != orig.Dim {
		t.Fatalf("n=%d d=%d, want n=%d d=%d", got.N(), got.Dim, orig.N(), orig.Dim)
	}
	for i, p := range got.Points {
		if p.ID != orig.Points[i].ID {
			t.Fatalf("row %d id %d, want %d", i, p.ID, orig.Points[i].ID)
		}
		for j, x := range p.Coords {
			if x != orig.Points[i].Coords[j] {
				t.Fatalf("row %d coord %d: %v != %v", i, j, x, orig.Points[i].Coords[j])
			}
		}
	}
}

func TestLoadCSVWithoutHeader(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader("0,0.5,0.2\n1,0.1,0.9\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Dim != 2 {
		t.Fatalf("n=%d d=%d", ds.N(), ds.Dim)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"header only":    "id,attr1\n",
		"bad id":         "id,attr1\nxx,0.5\n",
		"bad value":      "0,zzz\n",
		"negative":       "0,-1.5\n",
		"ragged row":     "0,0.5,0.5\n1,0.5\n",
		"duplicate id":   "0,0.5\n0,0.7\n",
		"id only column": "0\n1\n",
	}
	for name, in := range cases {
		if _, err := LoadCSV(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNormalize(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader("0,10,100\n1,20,300\n2,15,200\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	ds.Normalize()
	for _, p := range ds.Points {
		for _, x := range p.Coords {
			if x < 0 || x > 1 {
				t.Fatalf("normalized coordinate %v out of range", x)
			}
		}
	}
	if ds.Points[0].Coords[0] != 0 || ds.Points[1].Coords[0] != 1 {
		t.Fatal("min/max not mapped to 0/1")
	}
}
