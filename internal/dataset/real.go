package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"fdrms/internal/geom"
)

// The paper evaluates on four real datasets that are not redistributable
// here (downloaded from basketball-reference.com, the UCI repository and
// MovieLens). Per the reproduction's substitution rule, each is simulated by
// a synthetic generator calibrated against the characteristics from Table I
// that actually drive the algorithms: the dimensionality d and the skyline
// fraction #skylines/n. The skyline fraction controls both the input size of
// every static baseline (they run on the skyline) and how often an update
// changes the skyline (their recomputation frequency), so matching it
// preserves the paper's relative comparisons.
//
// Paper statistics (Table I):
//
//	BB:    n=21,961  d=5   #skylines=200     (0.9%)
//	AQ:    n=382,168 d=9   #skylines=21,065  (5.5%)
//	CT:    n=581,012 d=8   #skylines=77,217  (13.3%)
//	Movie: n=13,176  d=12  #skylines=3,293   (25.0%)
//
// Default sizes are the paper's n divided by 10 so the full experiment suite
// runs on a laptop; pass scale=1.0 for the original sizes.

// RealSpec describes one simulated real-world dataset.
type RealSpec struct {
	Name       string
	PaperN     int     // tuples in the original dataset
	Dim        int     // attributes used in the paper
	PaperSky   int     // skyline size reported in Table I
	rho        float64 // latent-factor correlation of the simulator
	skew       float64 // per-attribute power transform (1 = none)
	noiseScale float64 // heteroscedastic noise to mimic measured data
}

// RealSpecs lists the four simulated datasets in the paper's order.
var RealSpecs = []RealSpec{
	{Name: "BB", PaperN: 21961, Dim: 5, PaperSky: 200, rho: 0.90, skew: 1.0, noiseScale: 0.02},
	{Name: "AQ", PaperN: 382168, Dim: 9, PaperSky: 21065, rho: 0.55, skew: 1.3, noiseScale: 0.10},
	{Name: "CT", PaperN: 581012, Dim: 8, PaperSky: 77217, rho: 0.05, skew: 1.0, noiseScale: 0.10},
	{Name: "Movie", PaperN: 13176, Dim: 12, PaperSky: 3293, rho: 0.60, skew: 1.0, noiseScale: 0.08},
}

// RealSpecByName returns the spec with the given name, or false.
func RealSpecByName(name string) (RealSpec, bool) {
	for _, s := range RealSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return RealSpec{}, false
}

// Simulated generates the stand-in for the named real dataset at the given
// scale (fraction of the paper's n, in (0, 1]). It panics on unknown names;
// the caller chooses from RealSpecs.
func Simulated(name string, scale float64, seed int64) *Dataset {
	spec, ok := RealSpecByName(name)
	if !ok {
		panic(fmt.Sprintf("dataset: unknown real dataset %q", name))
	}
	n := int(math.Round(float64(spec.PaperN) * scale))
	if n < 1 {
		n = 1
	}
	return simulate(spec, n, seed)
}

func simulate(spec RealSpec, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		// One latent "overall quality" factor plus per-attribute noise,
		// optionally skewed. This mimics, e.g., better basketball players
		// scoring high across points/rebounds/assists simultaneously.
		base := rng.Float64()
		v := make(geom.Vector, spec.Dim)
		for j := range v {
			x := spec.rho*base + (1-spec.rho)*rng.Float64()
			x += spec.noiseScale * rng.NormFloat64()
			if x < 0 {
				x = 0
			}
			if spec.skew != 1.0 {
				x = math.Pow(x, spec.skew)
			}
			v[j] = x
		}
		pts[i] = geom.Point{ID: i, Coords: v}
	}
	geom.ScaleToUnitBox(pts)
	return &Dataset{Name: spec.Name, Points: pts, Dim: spec.Dim}
}
