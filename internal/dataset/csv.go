package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fdrms/internal/geom"
)

// SaveCSV writes the dataset as CSV with an "id,attr1,...,attrD" header.
func SaveCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, ds.Dim+1)
	header[0] = "id"
	for i := 1; i <= ds.Dim; i++ {
		header[i] = fmt.Sprintf("attr%d", i)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, ds.Dim+1)
	for _, p := range ds.Points {
		row[0] = strconv.Itoa(p.ID)
		for i, x := range p.Coords {
			row[i+1] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV reads a dataset from CSV. The first column is the integer tuple
// id, the remaining columns are numeric attributes (larger = better). A
// first row whose second cell does not parse as a number is treated as a
// header and skipped. All records must have the same number of columns.
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	start := 0
	if len(records[0]) >= 2 {
		if _, err := strconv.ParseFloat(records[0][1], 64); err != nil {
			start = 1 // header row
		}
	}
	if start >= len(records) {
		return nil, fmt.Errorf("dataset: CSV has a header but no data rows")
	}
	dim := len(records[start]) - 1
	if dim < 1 {
		return nil, fmt.Errorf("dataset: rows need an id plus at least one attribute, got %d columns", dim+1)
	}
	ds := &Dataset{Name: name, Dim: dim}
	seen := make(map[int]bool, len(records)-start)
	for lineNo, rec := range records[start:] {
		if len(rec) != dim+1 {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", lineNo+start+1, len(rec), dim+1)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad id %q: %w", lineNo+start+1, rec[0], err)
		}
		if seen[id] {
			return nil, fmt.Errorf("dataset: duplicate id %d at row %d", id, lineNo+start+1)
		}
		seen[id] = true
		v := make(geom.Vector, dim)
		for i := 0; i < dim; i++ {
			x, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d, column %d: %w", lineNo+start+1, i+2, err)
			}
			if x < 0 {
				return nil, fmt.Errorf("dataset: row %d, column %d: negative attribute %v (larger-is-better scores must be nonnegative)", lineNo+start+1, i+2, x)
			}
			v[i] = x
		}
		ds.Points = append(ds.Points, geom.Point{ID: id, Coords: v})
	}
	return ds, nil
}

// Normalize rescales every attribute to [0, 1] in place (min-max), the
// preprocessing Section II assumes. Regret ratios are scale-invariant, so
// answers do not change.
func (d *Dataset) Normalize() *Dataset {
	geom.ScaleToUnitBox(d.Points)
	return d
}
