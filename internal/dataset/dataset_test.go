package dataset

import (
	"math"
	"testing"

	"fdrms/internal/geom"
	"fdrms/internal/skyline"
)

func inUnitBox(t *testing.T, ds *Dataset) {
	t.Helper()
	for _, p := range ds.Points {
		if p.Dim() != ds.Dim {
			t.Fatalf("%s: point %v has dim %d, want %d", ds.Name, p, p.Dim(), ds.Dim)
		}
		for i, x := range p.Coords {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("%s: coordinate %d of %v outside [0,1]", ds.Name, i, p)
			}
		}
	}
}

func uniqueIDs(t *testing.T, ds *Dataset) {
	t.Helper()
	seen := make(map[int]bool, ds.N())
	for _, p := range ds.Points {
		if seen[p.ID] {
			t.Fatalf("%s: duplicate ID %d", ds.Name, p.ID)
		}
		seen[p.ID] = true
	}
}

func TestIndep(t *testing.T) {
	ds := Indep(500, 4, 1)
	if ds.N() != 500 || ds.Dim != 4 {
		t.Fatalf("n=%d d=%d", ds.N(), ds.Dim)
	}
	inUnitBox(t, ds)
	uniqueIDs(t, ds)
}

func TestAntiCor(t *testing.T) {
	ds := AntiCor(500, 4, 1)
	if ds.N() != 500 || ds.Dim != 4 {
		t.Fatalf("n=%d d=%d", ds.N(), ds.Dim)
	}
	inUnitBox(t, ds)
	uniqueIDs(t, ds)
}

func TestCorrelated(t *testing.T) {
	ds := Correlated(500, 4, 0.8, 1)
	inUnitBox(t, ds)
	uniqueIDs(t, ds)
}

func TestDeterministic(t *testing.T) {
	a := Indep(100, 3, 42)
	b := Indep(100, 3, 42)
	for i := range a.Points {
		for j := range a.Points[i].Coords {
			if a.Points[i].Coords[j] != b.Points[i].Coords[j] {
				t.Fatal("same seed must reproduce the dataset")
			}
		}
	}
	c := Indep(100, 3, 43)
	same := true
	for i := range a.Points {
		for j := range a.Points[i].Coords {
			if a.Points[i].Coords[j] != c.Points[i].Coords[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

// The defining property of the AntiCor family (paper Fig. 4): its skylines
// are much larger than Indep's at the same n and d.
func TestAntiCorSkylineExceedsIndep(t *testing.T) {
	for _, d := range []int{4, 6, 8} {
		indep := len(skyline.Compute(Indep(3000, d, 7).Points))
		anti := len(skyline.Compute(AntiCor(3000, d, 7).Points))
		if anti <= indep {
			t.Errorf("d=%d: AntiCor skyline %d should exceed Indep skyline %d", d, anti, indep)
		}
	}
}

// Skyline size must grow with dimensionality for both families (Fig. 4 left).
func TestSkylineGrowsWithDimension(t *testing.T) {
	prevIndep, prevAnti := 0, 0
	for _, d := range []int{4, 6, 8} {
		i := len(skyline.Compute(Indep(3000, d, 9).Points))
		a := len(skyline.Compute(AntiCor(3000, d, 9).Points))
		if i <= prevIndep {
			t.Errorf("Indep skyline did not grow at d=%d (%d <= %d)", d, i, prevIndep)
		}
		if a <= prevAnti {
			t.Errorf("AntiCor skyline did not grow at d=%d (%d <= %d)", d, a, prevAnti)
		}
		prevIndep, prevAnti = i, a
	}
}

// Correlation must shrink the skyline.
func TestCorrelationShrinksSkyline(t *testing.T) {
	loose := len(skyline.Compute(Correlated(3000, 5, 0.0, 11).Points))
	tight := len(skyline.Compute(Correlated(3000, 5, 0.9, 11).Points))
	if tight >= loose {
		t.Errorf("rho=0.9 skyline %d should be smaller than rho=0 skyline %d", tight, loose)
	}
}

// The simulated real datasets must land near the Table I skyline fractions;
// a factor-2 band is enough to preserve the algorithmic comparisons.
func TestSimulatedSkylineFractions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator calibration check is slow")
	}
	for _, spec := range RealSpecs {
		ds := Simulated(spec.Name, 0.1, 1)
		frac := float64(len(skyline.Compute(ds.Points))) / float64(ds.N())
		paper := float64(spec.PaperSky) / float64(spec.PaperN)
		if frac < paper/2 || frac > paper*2 {
			t.Errorf("%s: skyline fraction %.4f not within 2x of paper's %.4f", spec.Name, frac, paper)
		}
		if ds.Dim != spec.Dim {
			t.Errorf("%s: dim %d, want %d", spec.Name, ds.Dim, spec.Dim)
		}
		inUnitBox(t, ds)
	}
}

func TestSimulatedScale(t *testing.T) {
	ds := Simulated("BB", 0.01, 2)
	want := int(math.Round(21961 * 0.01))
	if ds.N() != want {
		t.Fatalf("scaled n = %d, want %d", ds.N(), want)
	}
}

func TestSimulatedUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dataset")
		}
	}()
	Simulated("NOPE", 1, 0)
}

func TestRealSpecByName(t *testing.T) {
	if _, ok := RealSpecByName("AQ"); !ok {
		t.Fatal("AQ should exist")
	}
	if _, ok := RealSpecByName("XX"); ok {
		t.Fatal("XX should not exist")
	}
}

// Anti-correlation sanity: average pairwise attribute correlation must be
// negative.
func TestAntiCorNegativeCorrelation(t *testing.T) {
	ds := AntiCor(4000, 4, 5)
	d := ds.Dim
	n := float64(ds.N())
	mean := make([]float64, d)
	for _, p := range ds.Points {
		for i, x := range p.Coords {
			mean[i] += x / n
		}
	}
	var corrSum float64
	var pairs int
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			var cov, vi, vj float64
			for _, p := range ds.Points {
				a, b := p.Coords[i]-mean[i], p.Coords[j]-mean[j]
				cov += a * b
				vi += a * a
				vj += b * b
			}
			corrSum += cov / math.Sqrt(vi*vj)
			pairs++
		}
	}
	if avg := corrSum / float64(pairs); avg >= 0 {
		t.Errorf("average pairwise correlation %.3f should be negative", avg)
	}
}

var sinkPoints []geom.Point

func BenchmarkIndepGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkPoints = Indep(10000, 6, int64(i)).Points
	}
}

func BenchmarkAntiCorGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkPoints = AntiCor(10000, 6, int64(i)).Points
	}
}
