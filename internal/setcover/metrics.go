// Solver metrics: obs mirrors of the stabilization counters and the slab's
// allocation traffic. Every mirror is one padded atomic add behind a nil
// check, so the instrumented cover path keeps its zero-allocation contract
// (the alloc gate benchmarks run unchanged with metrics installed) and an
// uninstrumented solver pays one branch per site.
package setcover

import "fdrms/internal/obs"

// Metrics holds the solver's obs handles. Construct with NewMetrics and
// install with SetMetrics; a nil *Metrics disables mirroring.
type Metrics struct {
	Takeovers     *obs.Counter // fdrms_setcover_takeovers_total
	Reassignments *obs.Counter // fdrms_setcover_reassignments_total

	// Slab traffic: the freelist-hit ratio is AllocReuse/(AllocReuse +
	// AllocFresh); utilization is SlabLiveWords/SlabWords.
	AllocReuse    *obs.Counter // fdrms_setcover_slab_alloc_total{src="freelist"}
	AllocFresh    *obs.Counter // fdrms_setcover_slab_alloc_total{src="fresh"}
	Releases      *obs.Counter // fdrms_setcover_slab_releases_total
	SlabWords     *obs.Gauge   // fdrms_setcover_slab_words
	SlabLiveWords *obs.Gauge   // fdrms_setcover_slab_live_words
}

// NewMetrics registers the solver's metric families on r and returns the
// handle set, or nil when r is nil.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Takeovers:     r.Counter("fdrms_setcover_takeovers_total", "STABILIZE takeover steps executed"),
		Reassignments: r.Counter("fdrms_setcover_reassignments_total", "element reassignments due to set-member removals"),
		AllocReuse:    r.Counter("fdrms_setcover_slab_alloc_total", "slab fragment allocations", obs.L("src", "freelist")),
		AllocFresh:    r.Counter("fdrms_setcover_slab_alloc_total", "slab fragment allocations", obs.L("src", "fresh")),
		Releases:      r.Counter("fdrms_setcover_slab_releases_total", "slab fragments threaded back onto freelists"),
		SlabWords:     r.Gauge("fdrms_setcover_slab_words", "int32 words carved from the slab tail (never shrinks)"),
		SlabLiveWords: r.Gauge("fdrms_setcover_slab_live_words", "int32 words in fragments currently allocated"),
	}
}

// SetMetrics installs (or, with nil, removes) the solver's metric mirrors.
// Must be called by the solver's single writer before concurrent scraping
// of anything derived from it.
func (sv *Solver) SetMetrics(m *Metrics) {
	sv.metrics = m
	sv.arena.met = m
}

// mirrorTakeover counts one STABILIZE takeover step.
func (m *Metrics) mirrorTakeover() {
	if m == nil {
		return
	}
	m.Takeovers.Inc()
}

// mirrorReassignment counts one element reassignment.
func (m *Metrics) mirrorReassignment() {
	if m == nil {
		return
	}
	m.Reassignments.Inc()
}
