package setcover

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildSystem registers sets from a map of set id -> elements, in ascending
// set-id order: ensureSet assigns internal indices in call order, so sorted
// registration keeps the solver's tie-breaking identical across runs.
func buildSystem(sv *Solver, sets map[int][]int, universe []int) {
	ids := make([]int, 0, len(sets))
	//fdrms:orderinvariant ids are sorted before use
	for s := range sets {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	for _, s := range ids {
		elems := sets[s]
		si := sv.ensureSet(s)
		for _, e := range elems {
			// Membership registration without universe side effects first.
			ei := sv.ensureElem(e)
			if sv.arena.insert(&sv.sets[si].members, ei) {
				sv.arena.insert(&sv.elems[ei].contains, si)
			}
		}
	}
	for _, e := range universe {
		ei := sv.ensureElem(e)
		if !sv.elems[ei].inU {
			sv.elems[ei].inU = true
			sv.nUniverse++
		}
	}
}

// universeIDs returns the external ids of the current universe (test helper).
func (sv *Solver) universeIDs() []int {
	out := make([]int, 0, sv.nUniverse)
	for i := range sv.elems {
		if sv.elems[i].inU {
			out = append(out, sv.elems[i].id)
		}
	}
	return out
}

// isOrphan reports whether external element e is an orphan (test helper).
func (sv *Solver) isOrphan(e int) bool {
	ei, ok := sv.elemIdx[e]
	return ok && sv.orphan(ei)
}

// containsN returns |{S : e ∈ S}| for external element e (test helper).
func (sv *Solver) containsN(e int) int {
	if ei, ok := sv.elemIdx[e]; ok {
		return int(sv.elems[ei].contains.n)
	}
	return 0
}

// levelOfSet returns the level of a chosen set (test helper).
func (sv *Solver) levelOfSet(s int) int {
	return int(sv.sets[sv.setIdx[s]].level)
}

func checkCovered(t *testing.T, sv *Solver) {
	t.Helper()
	for _, e := range sv.universeIDs() {
		if sv.isOrphan(e) {
			continue
		}
		if _, ok := sv.AssignedSet(e); !ok {
			t.Fatalf("element %d not covered", e)
		}
	}
	if err := sv.CheckStable(); err != nil {
		t.Fatalf("unstable solution: %v", err)
	}
}

func TestLevelOf(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	//fdrms:orderinvariant each case is asserted independently
	for n, want := range cases {
		if got := levelOf(n); got != want {
			t.Errorf("levelOf(%d) = %d, want %d", n, got, want)
		}
	}
	if levelOf(0) != 0 {
		t.Error("levelOf(0) should be 0")
	}
}

func TestGreedySimple(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{
		1: {10, 11, 12},
		2: {12, 13},
		3: {14},
		4: {10, 11, 12, 13, 14},
	}, []int{10, 11, 12, 13, 14})
	sv.Greedy()
	// Set 4 covers everything alone.
	if sv.Size() != 1 || !sv.InSolution(4) {
		t.Fatalf("solution = %v, want [4]", sv.Solution())
	}
	checkCovered(t, sv)
	if sv.levelOfSet(4) != 2 { // |cov| = 5 -> level 2
		t.Fatalf("level of set 4 = %d, want 2", sv.levelOfSet(4))
	}
}

func TestGreedyDisjoint(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{
		1: {1, 2},
		2: {3, 4},
		3: {5},
	}, []int{1, 2, 3, 4, 5})
	sv.Greedy()
	if sv.Size() != 3 {
		t.Fatalf("|C| = %d, want 3", sv.Size())
	}
	checkCovered(t, sv)
}

func TestGreedyEmptyUniverse(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1, 2}}, nil)
	sv.Greedy()
	if sv.Size() != 0 {
		t.Fatalf("|C| = %d, want 0", sv.Size())
	}
	checkCovered(t, sv)
}

func TestGreedyOrphans(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}}, []int{1, 99})
	sv.Greedy()
	checkCovered(t, sv)
	orphans := sv.Orphans()
	if len(orphans) != 1 || orphans[0] != 99 {
		t.Fatalf("orphans = %v, want [99]", orphans)
	}
}

// bruteOPT finds the optimal cover size by exhaustive search (small inputs).
func bruteOPT(sets map[int][]int, universe []int) int {
	ids := make([]int, 0, len(sets))
	//fdrms:orderinvariant best is a minimum over all 2^n subsets, invariant of enumeration order
	for s := range sets {
		ids = append(ids, s)
	}
	need := make(map[int]bool, len(universe))
	for _, e := range universe {
		need[e] = true
	}
	best := len(ids) + 1
	for mask := 0; mask < 1<<len(ids); mask++ {
		if bits.OnesCount(uint(mask)) >= best {
			continue
		}
		covered := make(map[int]bool)
		for i, s := range ids {
			if mask&(1<<i) != 0 {
				for _, e := range sets[s] {
					covered[e] = true
				}
			}
		}
		ok := true
		//fdrms:orderinvariant conjunction over the universe, any order
		for e := range need {
			if !covered[e] {
				ok = false
				break
			}
		}
		if ok {
			best = bits.OnesCount(uint(mask))
		}
	}
	return best
}

// Theorem 1: a stable solution is within (2 + 2·log2 m)·OPT.
func TestStableApproximationBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10) // universe size
		ns := 2 + rng.Intn(8) // sets
		universe := make([]int, m)
		for i := range universe {
			universe[i] = i
		}
		sets := make(map[int][]int, ns)
		for s := 0; s < ns; s++ {
			var elems []int
			for _, e := range universe {
				if rng.Intn(2) == 0 {
					elems = append(elems, e)
				}
			}
			sets[s] = elems
		}
		// Guarantee feasibility with one big set sometimes; otherwise allow
		// orphans and restrict the check to coverable elements.
		sv := NewSolver()
		buildSystem(sv, sets, universe)
		sv.Greedy()
		if err := sv.CheckStable(); err != nil {
			return false
		}
		coverable := make([]int, 0, m)
		for _, e := range universe {
			if sv.containsN(e) > 0 {
				coverable = append(coverable, e)
			}
		}
		if len(coverable) == 0 {
			return sv.Size() == 0
		}
		opt := bruteOPT(sets, coverable)
		bound := float64(2+2*bits.Len(uint(m))) * float64(opt)
		return float64(sv.Size()) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveElement(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{
		1: {1, 2, 3},
		2: {3, 4},
	}, []int{1, 2})
	sv.Greedy()
	checkCovered(t, sv)

	sv.AddElement(3)
	checkCovered(t, sv)
	if _, ok := sv.AssignedSet(3); !ok {
		t.Fatal("element 3 should be covered")
	}

	sv.AddElement(4)
	checkCovered(t, sv)
	if s, _ := sv.AssignedSet(4); s != 2 {
		t.Fatalf("element 4 assigned to %d, want 2 (only containing set)", s)
	}

	sv.RemoveElement(4)
	checkCovered(t, sv)
	if sv.InSolution(2) {
		t.Fatal("set 2 should have left the solution after losing its only element")
	}
	sv.RemoveElement(4) // no-op
	checkCovered(t, sv)
}

func TestAddElementOrphanThenCoverable(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}}, []int{1})
	sv.Greedy()
	sv.AddElement(50) // contained in nothing yet
	if len(sv.Orphans()) != 1 {
		t.Fatalf("orphans = %v", sv.Orphans())
	}
	sv.AddSetMember(1, 50) // now coverable
	if len(sv.Orphans()) != 0 {
		t.Fatalf("orphans should be empty, got %v", sv.Orphans())
	}
	checkCovered(t, sv)
}

func TestRemoveSetMemberReassigns(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{
		1: {1, 2},
		2: {1, 3},
	}, []int{1, 2, 3})
	sv.Greedy()
	checkCovered(t, sv)
	s, _ := sv.AssignedSet(1)
	// Remove element 1's membership from its assigned set; it must move to
	// the other containing set.
	sv.RemoveSetMember(s, 1)
	checkCovered(t, sv)
	s2, ok := sv.AssignedSet(1)
	if !ok || s2 == s {
		t.Fatalf("element 1 still assigned to %d", s2)
	}
	if sv.Reassignments == 0 {
		t.Fatal("reassignment counter should have advanced")
	}
}

func TestRemoveSetMemberOrphanFallback(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}}, []int{1})
	sv.Greedy()
	sv.RemoveSetMember(1, 1)
	if len(sv.Orphans()) != 1 {
		t.Fatalf("orphans = %v, want [1]", sv.Orphans())
	}
	if err := sv.CheckStable(); err != nil {
		t.Fatalf("unstable: %v", err)
	}
	// Re-adding membership must repair the orphan.
	sv.AddSetMember(1, 1)
	checkCovered(t, sv)
	if len(sv.Orphans()) != 0 {
		t.Fatal("orphan should have been repaired")
	}
}

// A growing super-set must eventually trigger a takeover (STABILIZE) and
// shrink the solution.
func TestStabilizeTakeover(t *testing.T) {
	sv := NewSolver()
	// 8 singleton sets cover 8 elements (levels L0), plus an initially
	// element-free big set.
	sets := map[int][]int{}
	var universe []int
	for e := 0; e < 8; e++ {
		sets[e+1] = []int{e}
		universe = append(universe, e)
	}
	buildSystem(sv, sets, universe)
	sv.Greedy()
	if sv.Size() != 8 {
		t.Fatalf("|C| = %d, want 8", sv.Size())
	}
	// Grow set 100 one membership at a time. Condition (2) forbids
	// |S ∩ A_0| >= 2, so the first two memberships already violate it and
	// STABILIZE lets set 100 take the elements over.
	sv.RegisterSet(100)
	for e := 0; e < 8; e++ {
		sv.AddSetMember(100, e)
		checkCovered(t, sv)
	}
	if !sv.InSolution(100) {
		t.Fatal("the big set should have entered the solution")
	}
	if sv.Size() >= 8 {
		t.Fatalf("|C| = %d, expected shrink below 8", sv.Size())
	}
	if sv.Takeovers == 0 {
		t.Fatal("takeover counter should have advanced")
	}
}

func TestDropSetIfEmpty(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}, 2: {1}}, []int{1})
	sv.Greedy()
	target := 2
	if s, _ := sv.AssignedSet(1); s == 2 {
		target = 1
	}
	// target is the set NOT covering element 1.
	sv.RemoveSetMember(target, 1)
	if !sv.DropSetIfEmpty(target) {
		t.Fatal("empty set should drop")
	}
	if sv.DropSetIfEmpty(target) {
		t.Fatal("double drop should report false")
	}
	if sv.HasSet(target) {
		t.Fatal("set should be unregistered")
	}
	checkCovered(t, sv)
}

func TestDropSetIfEmptyNonEmpty(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}}, []int{1})
	sv.Greedy()
	if sv.DropSetIfEmpty(1) {
		t.Fatal("non-empty set must not drop")
	}
}

func TestAccessors(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{7: {1, 2}}, []int{1, 2})
	sv.Greedy()
	if !sv.HasSet(7) || sv.SetSize(7) != 2 || sv.NumSets() != 1 {
		t.Fatal("set accessors wrong")
	}
	if !sv.InUniverse(1) || sv.InUniverse(9) || sv.UniverseSize() != 2 {
		t.Fatal("universe accessors wrong")
	}
	if sv.CoverSize(7) != 2 {
		t.Fatalf("CoverSize = %d", sv.CoverSize(7))
	}
	if got := sv.Solution(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Solution = %v", got)
	}
}

func TestAddSetMemberIdempotent(t *testing.T) {
	sv := NewSolver()
	buildSystem(sv, map[int][]int{1: {1}}, []int{1})
	sv.Greedy()
	sv.AddSetMember(1, 1) // already a member
	checkCovered(t, sv)
	if sv.SetSize(1) != 1 {
		t.Fatalf("SetSize = %d", sv.SetSize(1))
	}
	sv.RemoveSetMember(9, 9) // unknown set: no-op
	checkCovered(t, sv)
}

// Property: stability and coverage hold after arbitrary operation streams.
func TestRandomOpsStableQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sv := NewSolver()
		nSets := 3 + rng.Intn(10)
		nElems := 3 + rng.Intn(20)
		// Random initial system; every element in at least one set.
		sets := make(map[int][]int)
		for s := 0; s < nSets; s++ {
			sets[s] = nil
		}
		for e := 0; e < nElems; e++ {
			owner := rng.Intn(nSets)
			sets[owner] = append(sets[owner], e)
			for s := 0; s < nSets; s++ {
				if s != owner && rng.Intn(3) == 0 {
					sets[s] = append(sets[s], e)
				}
			}
		}
		universe := make([]int, 0, nElems)
		for e := 0; e < nElems; e++ {
			if rng.Intn(2) == 0 {
				universe = append(universe, e)
			}
		}
		buildSystem(sv, sets, universe)
		sv.Greedy()
		if err := sv.CheckStable(); err != nil {
			return false
		}
		for op := 0; op < 80; op++ {
			s := rng.Intn(nSets)
			e := rng.Intn(nElems)
			switch rng.Intn(4) {
			case 0:
				sv.AddSetMember(s, e)
			case 1:
				sv.RemoveSetMember(s, e)
			case 2:
				sv.AddElement(e)
			case 3:
				sv.RemoveElement(e)
			}
			if err := sv.CheckStable(); err != nil {
				return false
			}
			// Coverage of non-orphans.
			for _, u := range sv.universeIDs() {
				if !sv.isOrphan(u) {
					if _, ok := sv.AssignedSet(u); !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after random ops, re-running Greedy never yields a wildly
// smaller solution than the maintained one (both are O(log m)-approximate).
func TestMaintainedVsGreedyQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		sv := NewSolver()
		nSets, nElems := 20, 60
		sets := make(map[int][]int)
		for e := 0; e < nElems; e++ {
			owner := rng.Intn(nSets)
			sets[owner] = append(sets[owner], e)
			for s := 0; s < nSets; s++ {
				if s != owner && rng.Intn(4) == 0 {
					sets[s] = append(sets[s], e)
				}
			}
		}
		universe := make([]int, nElems)
		for e := range universe {
			universe[e] = e
		}
		buildSystem(sv, sets, universe)
		sv.Greedy()
		for op := 0; op < 200; op++ {
			s, e := rng.Intn(nSets), rng.Intn(nElems)
			switch rng.Intn(4) {
			case 0:
				sv.AddSetMember(s, e)
			case 1:
				sv.RemoveSetMember(s, e)
			case 2:
				sv.AddElement(e)
			case 3:
				sv.RemoveElement(e)
			}
		}
		maintained := sv.Size()
		sv.Greedy()
		fresh := sv.Size()
		if maintained > 4*fresh+4 {
			t.Fatalf("trial %d: maintained %d vs fresh greedy %d — maintenance degraded too far", trial, maintained, fresh)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sv := NewSolver()
	nSets, nElems := 2000, 1024
	sets := make(map[int][]int)
	for e := 0; e < nElems; e++ {
		for s := 0; s < nSets; s++ {
			if rng.Intn(100) == 0 {
				sets[s] = append(sets[s], e)
			}
		}
		sets[rng.Intn(nSets)] = append(sets[rng.Intn(nSets)], e)
	}
	universe := make([]int, nElems)
	for e := range universe {
		universe[e] = e
	}
	buildSystem(sv, sets, universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Greedy()
	}
}

func BenchmarkSigmaOps(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sv := NewSolver()
	nSets, nElems := 500, 512
	sets := make(map[int][]int)
	for e := 0; e < nElems; e++ {
		sets[rng.Intn(nSets)] = append(sets[rng.Intn(nSets)], e)
		for s := 0; s < 8; s++ {
			sets[rng.Intn(nSets)] = append(sets[rng.Intn(nSets)], e)
		}
	}
	universe := make([]int, nElems)
	for e := range universe {
		universe[e] = e
	}
	buildSystem(sv, sets, universe)
	sv.Greedy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, e := rng.Intn(nSets), rng.Intn(nElems)
		switch rng.Intn(4) {
		case 0:
			sv.AddSetMember(s, e)
		case 1:
			sv.RemoveSetMember(s, e)
		case 2:
			sv.AddElement(e)
		case 3:
			sv.RemoveElement(e)
		}
	}
}

// collapseScenario drives the solver into a stable state (found by seeded
// search) where removing the single universe element 11 empties several
// chosen sets at once through a takeover cascade. It returns the solver
// with universe {0..11} and |C| = 4. The same recipe backs the updateM
// regression test in internal/core, which relies on exactly this collapse.
func collapseScenario(tb testing.TB) *Solver {
	tb.Helper()
	rng := rand.New(rand.NewSource(79))
	nSets := 4 + rng.Intn(12) // = 15
	M := 10 + rng.Intn(30)    // = 32
	sv := NewSolver()
	for s := 0; s < nSets; s++ {
		sv.RegisterSet(100 + s)
		for e := 0; e < M; e++ {
			if rng.Intn(3) == 0 {
				sv.AddSetMember(100+s, e)
			}
		}
	}
	m := M/2 + rng.Intn(M/2) // = 30
	elems := make([]int, m)
	for i := range elems {
		elems[i] = i
	}
	sv.ResetUniverse(elems)
	// Drift the solution away from the greedy start with membership churn.
	for i := 0; i < 60; i++ {
		s := 100 + rng.Intn(nSets)
		e := rng.Intn(M)
		if rng.Intn(2) == 0 {
			sv.AddSetMember(s, e)
		} else {
			sv.RemoveSetMember(s, e)
		}
	}
	for m > 12 {
		m--
		sv.RemoveElement(m)
	}
	if err := sv.CheckStable(); err != nil {
		tb.Fatalf("scenario not stable: %v", err)
	}
	if got := sv.Size(); got != 4 {
		tb.Fatalf("scenario drifted: |C| = %d, want 4 (solver behaviour changed; re-run the seed search)", got)
	}
	return sv
}

// One RemoveElement may empty SEVERAL chosen sets: unassigning the element
// shrinks its set, the relevel rebuckets survivors at a lower level, and
// the resulting takeover cascade can merge multiple covers. Consumers that
// assume |C| moves by at most one per element step (updateM's shrink walk
// did) are wrong — this pins the collapse primitive.
func TestRemoveElementCanCollapseSeveralSets(t *testing.T) {
	sv := collapseScenario(t)
	before := sv.Size()
	sv.RemoveElement(11)
	after := sv.Size()
	if err := sv.CheckStable(); err != nil {
		t.Fatal(err)
	}
	if before-after < 2 {
		t.Fatalf("|C| went %d -> %d; scenario no longer collapses (solver behaviour changed; re-run the seed search)", before, after)
	}
}
