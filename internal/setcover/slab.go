// A shared int32 arena with size-classed fragments and intrusive freelists —
// the backing store for every per-set and per-element collection of the
// solver (member lists, covers, bucket contents, element→set transposes).
//
// Motivation: the solver used to keep all of those as nested
// map[int]map[int]bool, which made every element move and cover handoff a
// chain of map inserts/deletes — the dominant source of steady-state
// allocations and cache misses in the FD-RMS update path. Here each
// collection is a sorted []int32 fragment ("span") carved from one shared
// slab; fragments grow by size class and freed fragments are recycled
// through a per-class freelist threaded through the slab itself (the first
// word of a free fragment holds the offset of the next free fragment), so a
// warmed solver recycles storage instead of allocating. The slab only ever
// grows at the tail; offsets stay valid across growth.
package setcover

import (
	"math"
	"math/bits"
	"slices"
)

// slabClasses bounds the size-class ladder: class c (1-based) holds
// fragments of capacity 2<<c (4, 8, 16, ... ~2^28 values).
const slabClasses = 28

// span is one fragment of the slab: a sorted run of n int32 values starting
// at off, with capacity 2<<cls. The zero span is empty and owns no storage
// (cls == 0).
type span struct {
	off int32
	n   int32
	cls int8
}

// spanCap returns the capacity of a size class (0 for the storage-free
// class 0).
func spanCap(cls int8) int {
	if cls == 0 {
		return 0
	}
	return 2 << cls
}

// classFor returns the smallest class whose capacity holds n values.
func classFor(n int) int8 {
	if n <= 4 {
		return 1
	}
	cls := int8(bits.Len(uint(n-1)) - 1)
	if cls >= slabClasses {
		panic("setcover: collection exceeds the slab capacity ladder (2^28 values)")
	}
	return cls
}

// slab is the shared arena. data grows only at the tail (amortized, via
// slices.Grow), so span offsets remain valid forever; free[c] heads the
// intrusive freelist of class c (-1 when empty).
//
// The header is padded onto exclusive cache lines: the data slice header is
// rewritten on every fresh carve and the freelist heads on every alloc/
// release, making these the hottest write targets of cover maintenance.
// The slab is embedded at the head of Solver, so without the padding those
// writes share cache lines with the solver's id-translation maps — read on
// every operation, including by whatever runs concurrently with the solver
// on other cores (frozen-stats readers above, topk shard workers whose
// engine the caller lays out next to the solver). 64-byte alignment of the
// struct itself is up to the allocator, but separating the write-hot words
// from everything read-hot removes the systematic ping-pong; the three
// lines of padding cost nothing at one slab per solver.
type slab struct {
	data []int32
	_    [40]byte // data's slice header alone on its cache line

	free [slabClasses]int32
	_    [16]byte // round the freelist heads up to whole cache lines

	// met, when set, mirrors allocation traffic into obs handles. Read-only
	// after SetMetrics, so it rides after the padded hot words without
	// re-introducing the sharing the padding exists to prevent.
	met *Metrics
}

func (a *slab) init() {
	for i := range a.free {
		a.free[i] = -1
	}
}

// alloc hands out a fragment of the given class: recycled from the class
// freelist when possible, carved fresh from the tail otherwise.
func (a *slab) alloc(cls int8) int32 {
	if h := a.free[cls]; h >= 0 {
		a.free[cls] = a.data[h]
		if m := a.met; m != nil {
			m.AllocReuse.Inc()
			m.SlabLiveWords.Add(int64(spanCap(cls)))
		}
		return h
	}
	n := spanCap(cls)
	off := len(a.data)
	if off+n > math.MaxInt32 {
		// Offsets are int32; past ~2^31 total values a truncated offset
		// would silently alias another fragment. Fail loudly instead.
		panic("setcover: slab exceeds the int32 offset range")
	}
	if cap(a.data)-off < n {
		a.data = slices.Grow(a.data, n)
	}
	a.data = a.data[:off+n]
	if m := a.met; m != nil {
		m.AllocFresh.Inc()
		m.SlabWords.Set(int64(len(a.data)))
		m.SlabLiveWords.Add(int64(n))
	}
	return int32(off)
}

// release threads a fragment onto its class freelist.
func (a *slab) release(off int32, cls int8) {
	a.data[off] = a.free[cls]
	a.free[cls] = off
	if m := a.met; m != nil {
		m.Releases.Inc()
		m.SlabLiveWords.Add(-int64(spanCap(cls)))
	}
}

// view returns the live values of sp. The slice aliases the slab: it stays
// value-correct across tail growth (the old backing array survives), but
// callers must not mutate sp itself while iterating.
func (a *slab) view(sp span) []int32 {
	return a.data[sp.off : sp.off+sp.n]
}

// grow moves sp into the next size class, preserving contents (class 0, the
// storage-free zero span, grows into class 1 like any other increment).
func (a *slab) grow(sp *span) {
	ncls := sp.cls + 1
	if ncls >= slabClasses {
		panic("setcover: collection exceeds the slab capacity ladder (2^28 values)")
	}
	noff := a.alloc(ncls)
	copy(a.data[noff:noff+sp.n], a.data[sp.off:sp.off+sp.n])
	if sp.cls != 0 {
		a.release(sp.off, sp.cls)
	}
	sp.off, sp.cls = noff, ncls
}

// insert adds v to the sorted fragment, reporting whether it was absent.
func (a *slab) insert(sp *span, v int32) bool {
	i, found := slices.BinarySearch(a.view(*sp), v)
	if found {
		return false
	}
	if int(sp.n) == spanCap(sp.cls) {
		a.grow(sp)
	}
	s := a.data[sp.off : sp.off+sp.n+1]
	copy(s[i+1:], s[i:])
	s[i] = v
	sp.n++
	return true
}

// remove deletes v from the sorted fragment, reporting whether it was
// present. An emptied fragment releases its storage.
func (a *slab) remove(sp *span, v int32) bool {
	s := a.view(*sp)
	i, found := slices.BinarySearch(s, v)
	if !found {
		return false
	}
	copy(s[i:], s[i+1:])
	sp.n--
	if sp.n == 0 {
		a.freeSpan(sp)
	}
	return true
}

// has reports whether v is in the fragment.
func (a *slab) has(sp span, v int32) bool {
	_, found := slices.BinarySearch(a.view(sp), v)
	return found
}

// freeSpan releases the fragment's storage and resets it to the zero span.
func (a *slab) freeSpan(sp *span) {
	if sp.cls != 0 {
		a.release(sp.off, sp.cls)
	}
	*sp = span{}
}

// allocN returns an empty span whose capacity holds at least n values —
// the bulk-load entry (LoadSet fills it unsorted, then sorts in place).
func (a *slab) allocN(n int) span {
	if n == 0 {
		return span{}
	}
	cls := classFor(n)
	return span{off: a.alloc(cls), n: 0, cls: cls}
}
