package setcover

import (
	"math/rand"
	"testing"
)

// allocScenario builds a moderately dense warmed solver: sets over a few
// hundred elements with overlap, the universe covering half of them.
func allocScenario(tb testing.TB) *Solver {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	sv := NewSolver()
	nSets, nElems := 120, 256
	for s := 0; s < nSets; s++ {
		sv.RegisterSet(s)
	}
	for e := 0; e < nElems; e++ {
		sv.AddSetMember(rng.Intn(nSets), e)
		for i := 0; i < 4; i++ {
			sv.AddSetMember(rng.Intn(nSets), e)
		}
	}
	elems := make([]int, nElems/2)
	for i := range elems {
		elems[i] = i
	}
	sv.ResetUniverse(elems)
	if err := sv.CheckStable(); err != nil {
		tb.Fatal(err)
	}
	return sv
}

// The slab-backed hot path — element moves (universe churn) and cover
// handoffs (membership churn forcing reassignment) on a warmed solver —
// must allocate NOTHING: fragments recycle through the slab freelists, the
// dirty heap and takeover scratch reuse their storage, and no map beyond
// the boundary id lookups is touched.
func TestSetCoverHotPathZeroAllocs(t *testing.T) {
	sv := allocScenario(t)
	const e = 40 // a covered universe element with several containing sets
	if sv.containsN(e) < 2 {
		t.Fatalf("element %d has %d containing sets; scenario needs >= 2", e, sv.containsN(e))
	}
	move := func() { // element move: leave and rejoin the universe
		sv.RemoveElement(e)
		sv.AddElement(e)
	}
	handoff := func() { // cover handoff: drop the assigned membership, reassign, restore
		s, ok := sv.AssignedSet(e)
		if !ok {
			t.Fatal("element lost coverage")
		}
		sv.RemoveSetMember(s, e)
		sv.AddSetMember(s, e)
	}
	for i := 0; i < 50; i++ { // warm every fragment class and scratch buffer
		move()
		handoff()
	}
	if allocs := testing.AllocsPerRun(100, move); allocs != 0 {
		t.Fatalf("element move allocates %.1f per cycle, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, handoff); allocs != 0 {
		t.Fatalf("cover handoff allocates %.1f per cycle, want 0", allocs)
	}
	if err := sv.CheckStable(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCoverMaintenance is the CI allocation gate of the slab layout:
// a warmed element-move + cover-handoff cycle must report literally
// "0 allocs/op" (the workflow greps for it, like BenchmarkTopKInto).
func BenchmarkCoverMaintenance(b *testing.B) {
	sv := allocScenario(b)
	const e = 40
	for i := 0; i < 50; i++ {
		sv.RemoveElement(e)
		sv.AddElement(e)
		if s, ok := sv.AssignedSet(e); ok {
			sv.RemoveSetMember(s, e)
			sv.AddSetMember(s, e)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.RemoveElement(e)
		sv.AddElement(e)
		if s, ok := sv.AssignedSet(e); ok {
			sv.RemoveSetMember(s, e)
			sv.AddSetMember(s, e)
		}
	}
}
