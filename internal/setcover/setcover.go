// Package setcover implements the dynamic set cover algorithm of Section
// III-A of the FD-RMS paper (Algorithm 1), built around the notion of a
// stable set-cover solution.
//
// A solution C assigns every universe element u to exactly one chosen set
// φ(u) containing it; cov(S) is the set of elements assigned to S. Sets in C
// are organized into levels: S sits in level L_j when 2^j <= |cov(S)| <
// 2^{j+1}. Definition 2 calls C stable when
//
//  1. every S in C sits in the level matching |cov(S)|, and
//  2. no set S (chosen or not) could take over 2^{j+1} or more elements
//     currently assigned at level j, i.e. |S ∩ A_j| < 2^{j+1} for all j,
//
// and Theorem 1 shows every stable solution is a (2 + 2·log2 m)
// approximation of the optimal cover. The four update operations of the
// paper — (u,S,−), (u,S,+), (u,U,+), (u,U,−) — are provided as
// RemoveSetMember, AddSetMember, AddElement, and RemoveElement; each runs
// RELEVEL on the affected sets and then STABILIZE, which repeatedly lets a
// violating set take over an entire level's worth of its elements until
// Definition 2 holds again (Lemma 2 bounds this by O(m log m) steps).
package setcover

import (
	"container/heap"
	"fmt"
	"math/bits"
	"sort"
)

// Solver maintains a set system Σ = (U, S) and a stable set-cover solution
// over it. Element and set identifiers are arbitrary ints chosen by the
// caller (utility ids and tuple ids in FD-RMS).
type Solver struct {
	// The set system. sets may contain elements outside the universe (the
	// paper's UpdateM registers memberships of utilities beyond u_m); only
	// universe elements participate in covering.
	sets     map[int]map[int]bool // set id -> member elements
	contains map[int]map[int]bool // element -> ids of sets containing it
	universe map[int]bool

	// The solution: φ, cov, and the level hierarchy.
	assign map[int]int          // φ: universe element -> chosen set
	cov    map[int]map[int]bool // set in C -> cover set
	level  map[int]int          // set in C -> level index
	levels map[int]map[int]bool // level index -> sets at that level

	// buckets[s][j] is S ∩ A_j for every registered set s: the elements of
	// s whose assigned set currently sits at level j. Bucket sizes give the
	// stability condition in O(1); bucket contents feed takeovers.
	buckets map[int]map[int]map[int]bool

	// orphans are universe elements contained in no set. They cannot be
	// covered; FD-RMS never produces them in a settled state, but the solver
	// tolerates them transiently during multi-step updates.
	orphans map[int]bool

	dirty dirtyQueue // candidate stability violations, min (level, set) first

	// Stats counters for the ablation harness.
	Takeovers     int // STABILIZE takeover steps executed
	Reassignments int // element reassignments due to set-member removals
}

type dirtyEntry struct{ set, level int }

// dirtyQueue is a min-heap of candidate violations ordered by (level, set),
// so STABILIZE processes them in a deterministic order at O(log n) per
// push/pop. Duplicate entries are tolerated: a second pop of the same
// candidate fails the staleness check after the first takeover handled it.
type dirtyQueue []dirtyEntry

func (q dirtyQueue) Len() int { return len(q) }
func (q dirtyQueue) Less(i, j int) bool {
	if q[i].level != q[j].level {
		return q[i].level < q[j].level
	}
	return q[i].set < q[j].set
}
func (q dirtyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *dirtyQueue) Push(x interface{}) { *q = append(*q, x.(dirtyEntry)) }
func (q *dirtyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		sets:     make(map[int]map[int]bool),
		contains: make(map[int]map[int]bool),
		universe: make(map[int]bool),
		assign:   make(map[int]int),
		cov:      make(map[int]map[int]bool),
		level:    make(map[int]int),
		levels:   make(map[int]map[int]bool),
		buckets:  make(map[int]map[int]map[int]bool),
		orphans:  make(map[int]bool),
	}
}

// levelOf returns the level index j with 2^j <= n < 2^{j+1}.
func levelOf(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}

// --- set system bookkeeping -------------------------------------------------

// RegisterSet ensures an (empty) set with the given id exists.
func (sv *Solver) RegisterSet(s int) {
	if sv.sets[s] == nil {
		sv.sets[s] = make(map[int]bool)
	}
}

// HasSet reports whether the set id is registered.
func (sv *Solver) HasSet(s int) bool { return sv.sets[s] != nil }

// SetSize returns |S| (members inside and outside the universe).
func (sv *Solver) SetSize(s int) int { return len(sv.sets[s]) }

// InUniverse reports whether the element is part of U.
func (sv *Solver) InUniverse(e int) bool { return sv.universe[e] }

// UniverseSize returns |U|.
func (sv *Solver) UniverseSize() int { return len(sv.universe) }

// NumSets returns |S|, the number of registered sets.
func (sv *Solver) NumSets() int { return len(sv.sets) }

// --- solution accessors -----------------------------------------------------

// Size returns |C|.
func (sv *Solver) Size() int { return len(sv.cov) }

// Solution returns the chosen set ids in ascending order.
func (sv *Solver) Solution() []int {
	out := make([]int, 0, len(sv.cov))
	for s := range sv.cov {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// InSolution reports whether set s is chosen.
func (sv *Solver) InSolution(s int) bool { return sv.cov[s] != nil }

// CoverSize returns |cov(S)| for a chosen set (0 otherwise).
func (sv *Solver) CoverSize(s int) int { return len(sv.cov[s]) }

// AssignedSet returns φ(e) for a covered universe element.
func (sv *Solver) AssignedSet(e int) (int, bool) {
	s, ok := sv.assign[e]
	return s, ok
}

// Orphans returns the universe elements currently contained in no set.
func (sv *Solver) Orphans() []int {
	out := make([]int, 0, len(sv.orphans))
	for e := range sv.orphans {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// --- primitive mutations ----------------------------------------------------

// bucketAdd places element e (assigned at level j) into the (t, j) bucket of
// every set t containing e, queueing stability checks as sizes grow.
func (sv *Solver) bucketAdd(e, j int) {
	for t := range sv.contains[e] {
		bs := sv.buckets[t]
		if bs == nil {
			bs = make(map[int]map[int]bool)
			sv.buckets[t] = bs
		}
		b := bs[j]
		if b == nil {
			b = make(map[int]bool)
			bs[j] = b
		}
		b[e] = true
		if len(b) >= 1<<(j+1) {
			heap.Push(&sv.dirty, dirtyEntry{t, j})
		}
	}
}

// bucketRemove removes element e (assigned at level j) from the buckets of
// every set containing e.
func (sv *Solver) bucketRemove(e, j int) {
	for t := range sv.contains[e] {
		if bs := sv.buckets[t]; bs != nil {
			if b := bs[j]; b != nil {
				delete(b, e)
				if len(b) == 0 {
					delete(bs, j)
				}
			}
		}
	}
}

// ensureChosen puts s into C with an empty cover at level 0.
func (sv *Solver) ensureChosen(s int) {
	if sv.cov[s] != nil {
		return
	}
	sv.cov[s] = make(map[int]bool)
	sv.level[s] = 0
	if sv.levels[0] == nil {
		sv.levels[0] = make(map[int]bool)
	}
	sv.levels[0][s] = true
}

// assignTo makes φ(e) = s (e must be unassigned), bucketing e at s's
// current level. Callers must RELEVEL s afterwards.
func (sv *Solver) assignTo(e, s int) {
	sv.ensureChosen(s)
	sv.assign[e] = s
	sv.cov[s][e] = true
	sv.bucketAdd(e, sv.level[s])
}

// unassign removes e from its chosen set's cover and from all buckets.
// It returns the former set; callers must RELEVEL it afterwards.
func (sv *Solver) unassign(e int) (int, bool) {
	s, ok := sv.assign[e]
	if !ok {
		return 0, false
	}
	delete(sv.assign, e)
	delete(sv.cov[s], e)
	sv.bucketRemove(e, sv.level[s])
	return s, true
}

// relevel implements RELEVEL(S) of Algorithm 1: drop S from C when its
// cover emptied, otherwise move it to the level matching |cov(S)| and
// rebucket every covered element.
func (sv *Solver) relevel(s int) {
	c, chosen := sv.cov[s]
	if !chosen {
		return
	}
	old := sv.level[s]
	if len(c) == 0 {
		delete(sv.cov, s)
		delete(sv.level, s)
		delete(sv.levels[old], s)
		return
	}
	j := levelOf(len(c))
	if j == old {
		return
	}
	delete(sv.levels[old], s)
	if sv.levels[j] == nil {
		sv.levels[j] = make(map[int]bool)
	}
	sv.levels[j][s] = true
	sv.level[s] = j
	for e := range c {
		sv.bucketRemove(e, old)
		sv.bucketAdd(e, j)
	}
}

// chooseSetFor picks the set a newly uncovered element should be assigned
// to: a chosen set containing it with the largest cover (stays closest to
// the existing hierarchy), falling back to any containing set. Ties break on
// smaller id for determinism.
func (sv *Solver) chooseSetFor(e int) (int, bool) {
	best, bestCov, found := 0, -1, false
	for t := range sv.contains[e] {
		if c := sv.cov[t]; c != nil {
			if len(c) > bestCov || (len(c) == bestCov && t < best) {
				best, bestCov, found = t, len(c), true
			}
		}
	}
	if found {
		return best, true
	}
	// No chosen set contains e: open the largest containing set.
	bestSize := -1
	for t := range sv.contains[e] {
		if n := len(sv.sets[t]); n > bestSize || (n == bestSize && t < best) {
			best, bestSize, found = t, n, true
		}
	}
	return best, found
}

// --- the four σ operations ---------------------------------------------------

// AddSetMember applies σ = (e, S, +): element e joins set s. The assignment
// φ is unchanged, but the new membership can violate stability (s may now
// overlap a level too much), so STABILIZE runs.
func (sv *Solver) AddSetMember(s, e int) {
	sv.RegisterSet(s)
	if sv.sets[s][e] {
		return
	}
	sv.sets[s][e] = true
	if sv.contains[e] == nil {
		sv.contains[e] = make(map[int]bool)
	}
	sv.contains[e][s] = true
	if sv.universe[e] {
		if sv.orphans[e] {
			// The element finally became coverable.
			delete(sv.orphans, e)
			sv.assignTo(e, s)
			sv.relevel(s)
		} else if as, ok := sv.assign[e]; ok {
			j := sv.level[as]
			bs := sv.buckets[s]
			if bs == nil {
				bs = make(map[int]map[int]bool)
				sv.buckets[s] = bs
			}
			if bs[j] == nil {
				bs[j] = make(map[int]bool)
			}
			bs[j][e] = true
			if len(bs[j]) >= 1<<(j+1) {
				heap.Push(&sv.dirty, dirtyEntry{s, j})
			}
		}
	}
	sv.stabilize()
}

// RemoveSetMember applies σ = (e, S, −): element e leaves set s. When e was
// assigned to s it is reassigned to another containing set (Lines 2–5 of
// Algorithm 1), then STABILIZE runs.
func (sv *Solver) RemoveSetMember(s, e int) {
	if sv.sets[s] == nil || !sv.sets[s][e] {
		return
	}
	wasAssigned := sv.universe[e] && !sv.orphans[e]
	var j int
	if wasAssigned {
		j = sv.level[sv.assign[e]]
	}
	delete(sv.sets[s], e)
	delete(sv.contains[e], s)
	if len(sv.contains[e]) == 0 {
		delete(sv.contains, e)
	}
	if !sv.universe[e] {
		return
	}
	if sv.orphans[e] {
		return
	}
	// Drop e from s's buckets (membership is gone).
	if bs := sv.buckets[s]; bs != nil {
		if b := bs[j]; b != nil {
			delete(b, e)
			if len(b) == 0 {
				delete(bs, j)
			}
		}
	}
	if sv.assign[e] == s {
		old, _ := sv.unassign(e)
		if s2, ok := sv.chooseSetFor(e); ok {
			sv.assignTo(e, s2)
			sv.relevel(s2)
			sv.Reassignments++
		} else {
			sv.orphans[e] = true
		}
		sv.relevel(old)
	}
	sv.stabilize()
}

// AddElement applies σ = (e, U, +): e joins the universe and is assigned to
// a containing set.
func (sv *Solver) AddElement(e int) {
	if sv.universe[e] {
		return
	}
	sv.universe[e] = true
	if s, ok := sv.chooseSetFor(e); ok {
		sv.assignTo(e, s)
		sv.relevel(s)
	} else {
		sv.orphans[e] = true
	}
	sv.stabilize()
}

// RemoveElement applies σ = (e, U, −): e leaves the universe; its former
// chosen set shrinks (and leaves C when emptied).
func (sv *Solver) RemoveElement(e int) {
	if !sv.universe[e] {
		return
	}
	delete(sv.universe, e)
	if sv.orphans[e] {
		delete(sv.orphans, e)
		return
	}
	old, _ := sv.unassign(e)
	sv.relevel(old)
	sv.stabilize()
}

// DropSetIfEmpty unregisters a set that no longer has members (used after a
// tuple deletion finished removing every membership of S(p)).
func (sv *Solver) DropSetIfEmpty(s int) bool {
	if m, ok := sv.sets[s]; ok && len(m) == 0 {
		delete(sv.sets, s)
		delete(sv.buckets, s)
		return true
	}
	return false
}

// ResetUniverse replaces the universe wholesale and rebuilds the solution
// with GREEDY. FD-RMS initialization uses this while binary-searching the
// sample size m (Algorithm 2, Lines 3–14).
func (sv *Solver) ResetUniverse(elems []int) {
	sv.universe = make(map[int]bool, len(elems))
	for _, e := range elems {
		sv.universe[e] = true
	}
	sv.Greedy()
}

// --- STABILIZE ---------------------------------------------------------------

// stabilize restores Definition 2: while some set s could take over all
// elements of a level j with |s ∩ A_j| >= 2^{j+1}, it does (Lines 28–32 of
// Algorithm 1), moving those elements into cov(s) and releveling every
// touched set. Each takeover strictly raises the level of the moved
// elements, so the loop terminates (Lemma 2).
//
// Candidates are queued by bucketAdd from map iteration, so when several
// violations coexist the queue order is arbitrary — but takeover order
// picks which of multiple valid stable solutions we land on. Selecting the
// smallest (level, set) violation each round makes the whole solver a
// deterministic function of its operation sequence, which the batched
// update path (and its equivalence tests) relies on.
func (sv *Solver) stabilize() {
	for len(sv.dirty) > 0 {
		d := heap.Pop(&sv.dirty).(dirtyEntry)
		b := sv.buckets[d.set][d.level]
		if len(b) < 1<<(d.level+1) {
			continue // stale entry
		}
		sv.Takeovers++
		// Take over every element of S ∩ A_j.
		moved := make([]int, 0, len(b))
		for e := range b {
			moved = append(moved, e)
		}
		sort.Ints(moved) // determinism
		touched := make(map[int]bool)
		for _, e := range moved {
			if sv.assign[e] == d.set {
				continue
			}
			old, _ := sv.unassign(e)
			touched[old] = true
			sv.assignTo(e, d.set)
		}
		sv.relevel(d.set)
		for s := range touched {
			sv.relevel(s)
		}
	}
}

// --- GREEDY -------------------------------------------------------------------

// Greedy discards the current solution and rebuilds it with the classic
// greedy algorithm (Lines 13–19 of Algorithm 1), assigning each chosen set
// to the level matching its cover size. Lemma 1 guarantees the result is
// stable. Orphan elements (contained in no set) are skipped.
func (sv *Solver) Greedy() {
	sv.assign = make(map[int]int)
	sv.cov = make(map[int]map[int]bool)
	sv.level = make(map[int]int)
	sv.levels = make(map[int]map[int]bool)
	sv.buckets = make(map[int]map[int]map[int]bool)
	sv.orphans = make(map[int]bool)
	sv.dirty = nil

	// Uncovered-count per set, restricted to the universe.
	counts := make(map[int]int)
	for s, members := range sv.sets {
		n := 0
		for e := range members {
			if sv.universe[e] {
				n++
			}
		}
		if n > 0 {
			counts[s] = n
		}
	}
	uncovered := make(map[int]bool, len(sv.universe))
	for e := range sv.universe {
		if len(sv.contains[e]) == 0 {
			sv.orphans[e] = true
			continue
		}
		uncovered[e] = true
	}

	for len(uncovered) > 0 {
		best, bestCount := 0, 0
		for s, n := range counts {
			if n > bestCount || (n == bestCount && n > 0 && s < best) {
				best, bestCount = s, n
			}
		}
		if bestCount == 0 {
			break // only orphans remain (unreachable: orphans were excluded)
		}
		covered := make([]int, 0, bestCount)
		for e := range sv.sets[best] {
			if uncovered[e] {
				covered = append(covered, e)
			}
		}
		sort.Ints(covered)
		c := make(map[int]bool, len(covered))
		for _, e := range covered {
			c[e] = true
			sv.assign[e] = best
			delete(uncovered, e)
			for t := range sv.contains[e] {
				if counts[t] > 0 {
					counts[t]--
					if counts[t] == 0 {
						delete(counts, t)
					}
				}
			}
		}
		sv.cov[best] = c
		j := levelOf(len(c))
		sv.level[best] = j
		if sv.levels[j] == nil {
			sv.levels[j] = make(map[int]bool)
		}
		sv.levels[j][best] = true
	}

	// Rebuild buckets from the fresh assignment.
	for e, s := range sv.assign {
		sv.bucketAdd(e, sv.level[s])
	}
	// Greedy solutions are stable (Lemma 1), but bucketAdd may have queued
	// candidates; clear them through the standard check for safety.
	sv.stabilize()
}

// --- invariant checking --------------------------------------------------------

// CheckStable verifies Definition 2 plus the structural invariants of the
// solution and returns a descriptive error on the first violation. Intended
// for tests and debugging; it runs in O(total membership) time.
func (sv *Solver) CheckStable() error {
	// Every non-orphan universe element is assigned to a containing chosen set.
	for e := range sv.universe {
		if sv.orphans[e] {
			if len(sv.contains[e]) != 0 {
				return fmt.Errorf("orphan %d is contained in %d sets", e, len(sv.contains[e]))
			}
			continue
		}
		s, ok := sv.assign[e]
		if !ok {
			return fmt.Errorf("universe element %d unassigned", e)
		}
		if !sv.sets[s][e] {
			return fmt.Errorf("element %d assigned to set %d that does not contain it", e, s)
		}
		if !sv.cov[s][e] {
			return fmt.Errorf("element %d missing from cov(%d)", e, s)
		}
	}
	// Covers partition the assigned elements.
	seen := make(map[int]int)
	for s, c := range sv.cov {
		if len(c) == 0 {
			return fmt.Errorf("chosen set %d has empty cover", s)
		}
		for e := range c {
			if prev, dup := seen[e]; dup {
				return fmt.Errorf("element %d covered by both %d and %d", e, prev, s)
			}
			seen[e] = s
			if sv.assign[e] != s {
				return fmt.Errorf("cov(%d) holds %d but φ(%d) = %d", s, e, e, sv.assign[e])
			}
		}
		// Condition (1): level matches cover size.
		j := sv.level[s]
		if len(c) < 1<<j || len(c) >= 1<<(j+1) {
			return fmt.Errorf("set %d at level %d has |cov| = %d", s, j, len(c))
		}
		if !sv.levels[j][s] {
			return fmt.Errorf("set %d missing from levels[%d]", s, j)
		}
	}
	// Condition (2): no set can take over a level.
	levelElems := make(map[int]map[int]bool)
	for e, s := range sv.assign {
		j := sv.level[s]
		if levelElems[j] == nil {
			levelElems[j] = make(map[int]bool)
		}
		levelElems[j][e] = true
	}
	for s, members := range sv.sets {
		perLevel := make(map[int]int)
		for e := range members {
			if as, ok := sv.assign[e]; ok {
				perLevel[sv.level[as]]++
			}
		}
		for j, n := range perLevel {
			if n >= 1<<(j+1) {
				return fmt.Errorf("instability: |S_%d ∩ A_%d| = %d >= %d", s, j, n, 1<<(j+1))
			}
			// Cross-check the maintained buckets.
			if got := len(sv.buckets[s][j]); got != n {
				return fmt.Errorf("bucket drift for set %d level %d: bucket %d, actual %d", s, j, got, n)
			}
		}
	}
	return nil
}
