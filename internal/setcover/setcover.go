// Package setcover implements the dynamic set cover algorithm of Section
// III-A of the FD-RMS paper (Algorithm 1), built around the notion of a
// stable set-cover solution.
//
// A solution C assigns every universe element u to exactly one chosen set
// φ(u) containing it; cov(S) is the set of elements assigned to S. Sets in C
// are organized into levels: S sits in level L_j when 2^j <= |cov(S)| <
// 2^{j+1}. Definition 2 calls C stable when
//
//  1. every S in C sits in the level matching |cov(S)|, and
//  2. no set S (chosen or not) could take over 2^{j+1} or more elements
//     currently assigned at level j, i.e. |S ∩ A_j| < 2^{j+1} for all j,
//
// and Theorem 1 shows every stable solution is a (2 + 2·log2 m)
// approximation of the optimal cover. The four update operations of the
// paper — (u,S,−), (u,S,+), (u,U,+), (u,U,−) — are provided as
// RemoveSetMember, AddSetMember, AddElement, and RemoveElement; each runs
// RELEVEL on the affected sets and then STABILIZE, which repeatedly lets a
// violating set take over an entire level's worth of its elements until
// Definition 2 holds again (Lemma 2 bounds this by O(m log m) steps).
//
// Storage layout: external set and element ids are mapped once, at the API
// boundary, to dense int32 indices into two flat record slices; every
// collection a record owns (member list, cover, per-level bucket contents,
// element→set transpose) is a sorted int32 fragment carved from one shared
// slab with per-class freelists (see slab.go). A warmed solver therefore
// runs element moves and cover handoffs with zero allocations — fragments
// recycle through the freelists — and the inner loops stream contiguous
// int32 runs instead of chasing map buckets.
//
// Determinism: the solver is a deterministic function of its operation
// sequence. Every choice point orders candidates by EXTERNAL ids — the
// dirty-queue pops by (level, set id), takeover processing by element id,
// greedy and reassignment tie-breaks by set id — so no answer depends on
// the dense index assignment or any iteration order. (Transient duplicate
// dirty-queue entries can differ between storage layouts, but duplicates
// only ever fail the staleness re-check; they change no state and no
// counter.) The batched update path and its equivalence tests rely on this.
package setcover

import (
	"cmp"
	"fmt"
	"math/bits"
	"slices"
)

// Solver maintains a set system Σ = (U, S) and a stable set-cover solution
// over it. Element and set identifiers are arbitrary ints chosen by the
// caller (utility ids and tuple ids in FD-RMS).
type Solver struct {
	arena slab // shared storage behind every span below

	setIdx  map[int]int32 // external set id -> slot in sets
	elemIdx map[int]int32 // external element id -> slot in elems
	sets    []setRec
	elems   []elemRec
	freeSet []int32 // recycled set slots (DropSetIfEmpty)

	// levels[j] holds the chosen set slots at level j (unordered; membership
	// only — every ordered decision re-sorts by external id).
	levels [][]int32

	nUniverse int
	nOrphans  int // universe elements contained in no set
	nChosen   int // |C|

	// dirty is a min-heap of candidate stability violations ordered by
	// (level, external set id), so STABILIZE processes them in a
	// deterministic order. Duplicate entries are tolerated: a second pop of
	// the same candidate fails the staleness check after the first takeover
	// handled it.
	dirty []dirtyEntry

	// Scratch reused across operations (takeover element lists, greedy
	// rounds), so steady-state stabilization allocates nothing.
	moved   []int32
	touched []int32
	counts  []int32

	// Stats counters for the ablation harness.
	Takeovers     int // STABILIZE takeover steps executed
	Reassignments int // element reassignments due to set-member removals

	// metrics, when set, mirrors the counters above and the slab traffic
	// into obs handles (see metrics.go). Written only via SetMetrics.
	metrics *Metrics
}

// setRec is the per-set state. cover and level are meaningful while chosen;
// buckets[j] is S ∩ A_j — the members of this set whose assigned set
// currently sits at level j — giving the stability condition in O(1) from
// its length and the takeover contents without any search.
type setRec struct {
	id       int
	members  span   // element slots, ascending
	cover    span   // element slots, ascending (chosen only)
	buckets  []span // level j -> S ∩ A_j element slots, ascending
	level    int32
	levelPos int32 // position inside levels[level] (chosen only)
	chosen   bool
	live     bool
}

// elemRec is the per-element state. An element with inU set and assign < 0
// is an orphan: contained in no set, tolerated transiently (FD-RMS never
// produces one in a settled state).
type elemRec struct {
	id       int
	contains span  // slots of sets containing the element, ascending
	assign   int32 // chosen-set slot covering it, -1 when unassigned
	inU      bool
}

type dirtyEntry struct {
	level int32
	set   int32 // dense set slot
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	sv := &Solver{
		setIdx:  make(map[int]int32),
		elemIdx: make(map[int]int32),
	}
	sv.arena.init()
	return sv
}

// levelOf returns the level index j with 2^j <= n < 2^{j+1}.
func levelOf(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}

// --- dense index management --------------------------------------------------

// ensureSet returns the slot of set s, registering it if needed.
func (sv *Solver) ensureSet(s int) int32 {
	if i, ok := sv.setIdx[s]; ok {
		return i
	}
	var i int32
	if n := len(sv.freeSet); n > 0 {
		i = sv.freeSet[n-1]
		sv.freeSet = sv.freeSet[:n-1]
		buckets := sv.sets[i].buckets[:0] // keep the directory storage
		sv.sets[i] = setRec{id: s, buckets: buckets, live: true}
	} else {
		i = int32(len(sv.sets))
		sv.sets = append(sv.sets, setRec{id: s, live: true})
	}
	sv.setIdx[s] = i
	return i
}

// ensureElem returns the slot of element e, creating its record if needed.
// Element records are never recycled (FD-RMS element ids are the bounded
// utility sample).
func (sv *Solver) ensureElem(e int) int32 {
	if i, ok := sv.elemIdx[e]; ok {
		return i
	}
	i := int32(len(sv.elems))
	sv.elems = append(sv.elems, elemRec{id: e, assign: -1})
	sv.elemIdx[e] = i
	return i
}

func (sv *Solver) orphan(ei int32) bool {
	return sv.elems[ei].inU && sv.elems[ei].assign < 0
}

// --- set system bookkeeping -------------------------------------------------

// RegisterSet ensures an (empty) set with the given id exists.
func (sv *Solver) RegisterSet(s int) { sv.ensureSet(s) }

// HasSet reports whether the set id is registered.
func (sv *Solver) HasSet(s int) bool {
	_, ok := sv.setIdx[s]
	return ok
}

// SetSize returns |S| (members inside and outside the universe).
func (sv *Solver) SetSize(s int) int {
	if i, ok := sv.setIdx[s]; ok {
		return int(sv.sets[i].members.n)
	}
	return 0
}

// InUniverse reports whether the element is part of U.
func (sv *Solver) InUniverse(e int) bool {
	if i, ok := sv.elemIdx[e]; ok {
		return sv.elems[i].inU
	}
	return false
}

// UniverseSize returns |U|.
func (sv *Solver) UniverseSize() int { return sv.nUniverse }

// NumSets returns |S|, the number of registered sets.
func (sv *Solver) NumSets() int { return len(sv.setIdx) }

// --- solution accessors -----------------------------------------------------

// Size returns |C|.
func (sv *Solver) Size() int { return sv.nChosen }

// Solution returns the chosen set ids in ascending order. The levels table
// holds exactly the chosen slots, so this is O(|C| log |C|), not a scan of
// every registered set.
func (sv *Solver) Solution() []int {
	out := make([]int, 0, sv.nChosen)
	for _, l := range sv.levels {
		for _, si := range l {
			out = append(out, sv.sets[si].id)
		}
	}
	slices.Sort(out)
	return out
}

// InSolution reports whether set s is chosen.
func (sv *Solver) InSolution(s int) bool {
	if i, ok := sv.setIdx[s]; ok {
		return sv.sets[i].chosen
	}
	return false
}

// CoverSize returns |cov(S)| for a chosen set (0 otherwise).
func (sv *Solver) CoverSize(s int) int {
	if i, ok := sv.setIdx[s]; ok && sv.sets[i].chosen {
		return int(sv.sets[i].cover.n)
	}
	return 0
}

// AssignedSet returns φ(e) for a covered universe element.
func (sv *Solver) AssignedSet(e int) (int, bool) {
	if i, ok := sv.elemIdx[e]; ok && sv.elems[i].assign >= 0 {
		return sv.sets[sv.elems[i].assign].id, true
	}
	return 0, false
}

// Orphans returns the universe elements currently contained in no set.
func (sv *Solver) Orphans() []int {
	out := make([]int, 0, sv.nOrphans)
	for i := range sv.elems {
		if sv.orphan(int32(i)) {
			out = append(out, sv.elems[i].id)
		}
	}
	slices.Sort(out)
	return out
}

// --- the dirty queue --------------------------------------------------------

func (sv *Solver) dirtyLess(a, b dirtyEntry) bool {
	if a.level != b.level {
		return a.level < b.level
	}
	return sv.sets[a.set].id < sv.sets[b.set].id
}

func (sv *Solver) pushDirty(d dirtyEntry) {
	h := append(sv.dirty, d)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !sv.dirtyLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	sv.dirty = h
}

func (sv *Solver) popDirty() dirtyEntry {
	h := sv.dirty
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && sv.dirtyLess(h[l], h[m]) {
			m = l
		}
		if r < n && sv.dirtyLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	sv.dirty = h
	return top
}

// --- primitive mutations ----------------------------------------------------

// bucketAddOne places element ei into the (ti, j) bucket, queueing a
// stability check when the bucket crosses the takeover threshold.
func (sv *Solver) bucketAddOne(ti, ei, j int32) {
	t := &sv.sets[ti]
	for int(j) >= len(t.buckets) {
		t.buckets = append(t.buckets, span{})
	}
	b := &t.buckets[j]
	sv.arena.insert(b, ei)
	if int(b.n) >= 1<<(j+1) {
		sv.pushDirty(dirtyEntry{level: j, set: ti})
	}
}

// bucketAdd places element ei (assigned at level j) into the (t, j) bucket
// of every set t containing it, queueing stability checks as sizes grow.
func (sv *Solver) bucketAdd(ei, j int32) {
	for _, ti := range sv.arena.view(sv.elems[ei].contains) {
		sv.bucketAddOne(ti, ei, j)
	}
}

// bucketRemove removes element ei (assigned at level j) from the buckets of
// every set containing it.
func (sv *Solver) bucketRemove(ei, j int32) {
	for _, ti := range sv.arena.view(sv.elems[ei].contains) {
		t := &sv.sets[ti]
		if int(j) < len(t.buckets) {
			sv.arena.remove(&t.buckets[j], ei)
		}
	}
}

// ensureChosen puts the set into C with an empty cover at level 0.
func (sv *Solver) ensureChosen(si int32) {
	t := &sv.sets[si]
	if t.chosen {
		return
	}
	t.chosen = true
	t.cover = span{}
	t.level = 0
	sv.levelAdd(0, si)
	sv.nChosen++
}

func (sv *Solver) levelAdd(j, si int32) {
	for int(j) >= len(sv.levels) {
		sv.levels = append(sv.levels, nil)
	}
	sv.sets[si].levelPos = int32(len(sv.levels[j]))
	sv.levels[j] = append(sv.levels[j], si)
}

// levelRemove swap-removes si from levels[j] in O(1) via the maintained
// position index, repointing the displaced set.
func (sv *Solver) levelRemove(j, si int32) {
	l := sv.levels[j]
	pos := sv.sets[si].levelPos
	last := int32(len(l) - 1)
	l[pos] = l[last]
	sv.sets[l[pos]].levelPos = pos
	sv.levels[j] = l[:last]
}

func (sv *Solver) levelHas(j, si int32) bool {
	if int(j) >= len(sv.levels) {
		return false
	}
	pos := sv.sets[si].levelPos
	return int(pos) < len(sv.levels[j]) && sv.levels[j][pos] == si
}

// assignTo makes φ(e) = s (e must be unassigned), bucketing e at s's
// current level. Callers must RELEVEL s afterwards.
func (sv *Solver) assignTo(ei, si int32) {
	sv.ensureChosen(si)
	sv.elems[ei].assign = si
	sv.arena.insert(&sv.sets[si].cover, ei)
	sv.bucketAdd(ei, sv.sets[si].level)
}

// unassign removes e from its chosen set's cover and from all buckets.
// It returns the former set's slot; callers must RELEVEL it afterwards.
func (sv *Solver) unassign(ei int32) (int32, bool) {
	si := sv.elems[ei].assign
	if si < 0 {
		return 0, false
	}
	sv.elems[ei].assign = -1
	sv.arena.remove(&sv.sets[si].cover, ei)
	sv.bucketRemove(ei, sv.sets[si].level)
	return si, true
}

// relevel implements RELEVEL(S) of Algorithm 1: drop S from C when its
// cover emptied, otherwise move it to the level matching |cov(S)| and
// rebucket every covered element.
func (sv *Solver) relevel(si int32) {
	t := &sv.sets[si]
	if !t.chosen {
		return
	}
	old := t.level
	if t.cover.n == 0 {
		t.chosen = false
		t.level = 0
		sv.levelRemove(old, si)
		sv.nChosen--
		return
	}
	j := int32(levelOf(int(t.cover.n)))
	if j == old {
		return
	}
	sv.levelRemove(old, si)
	sv.levelAdd(j, si)
	t.level = j
	for _, ei := range sv.arena.view(t.cover) {
		sv.bucketRemove(ei, old)
		sv.bucketAdd(ei, j)
	}
}

// chooseSetFor picks the set a newly uncovered element should be assigned
// to: a chosen set containing it with the largest cover (stays closest to
// the existing hierarchy), falling back to any containing set. Ties break on
// smaller external id for determinism.
func (sv *Solver) chooseSetFor(ei int32) (int32, bool) {
	cont := sv.arena.view(sv.elems[ei].contains)
	best := int32(-1)
	bestCov := int32(-1)
	bestID := 0
	for _, ti := range cont {
		t := &sv.sets[ti]
		if !t.chosen {
			continue
		}
		if best < 0 || t.cover.n > bestCov || (t.cover.n == bestCov && t.id < bestID) {
			best, bestCov, bestID = ti, t.cover.n, t.id
		}
	}
	if best >= 0 {
		return best, true
	}
	// No chosen set contains e: open the largest containing set.
	bestSize := int32(-1)
	for _, ti := range cont {
		t := &sv.sets[ti]
		if best < 0 || t.members.n > bestSize || (t.members.n == bestSize && t.id < bestID) {
			best, bestSize, bestID = ti, t.members.n, t.id
		}
	}
	return best, best >= 0
}

// --- the four σ operations ---------------------------------------------------

// AddSetMember applies σ = (e, S, +): element e joins set s. The assignment
// φ is unchanged, but the new membership can violate stability (s may now
// overlap a level too much), so STABILIZE runs.
func (sv *Solver) AddSetMember(s, e int) {
	si := sv.ensureSet(s)
	ei := sv.ensureElem(e)
	if !sv.arena.insert(&sv.sets[si].members, ei) {
		return
	}
	sv.arena.insert(&sv.elems[ei].contains, si)
	if sv.elems[ei].inU {
		if sv.elems[ei].assign < 0 {
			// The element finally became coverable.
			sv.nOrphans--
			sv.assignTo(ei, si)
			sv.relevel(si)
		} else {
			// Only s's bucket grows: the element is already bucketed at its
			// assigned level in every other containing set.
			sv.bucketAddOne(si, ei, sv.sets[sv.elems[ei].assign].level)
		}
	}
	sv.stabilize()
}

// RemoveSetMember applies σ = (e, S, −): element e leaves set s. When e was
// assigned to s it is reassigned to another containing set (Lines 2–5 of
// Algorithm 1), then STABILIZE runs.
func (sv *Solver) RemoveSetMember(s, e int) {
	si, ok := sv.setIdx[s]
	if !ok {
		return
	}
	ei, ok := sv.elemIdx[e]
	if !ok {
		return
	}
	if !sv.arena.remove(&sv.sets[si].members, ei) {
		return
	}
	sv.arena.remove(&sv.elems[ei].contains, si)
	if !sv.elems[ei].inU || sv.elems[ei].assign < 0 {
		return
	}
	j := sv.sets[sv.elems[ei].assign].level
	// Drop e from s's buckets (membership is gone).
	if t := &sv.sets[si]; int(j) < len(t.buckets) {
		sv.arena.remove(&t.buckets[j], ei)
	}
	if sv.elems[ei].assign == si {
		old, _ := sv.unassign(ei)
		if s2, ok := sv.chooseSetFor(ei); ok {
			sv.assignTo(ei, s2)
			sv.relevel(s2)
			sv.Reassignments++
			sv.metrics.mirrorReassignment()
		} else {
			sv.nOrphans++
		}
		sv.relevel(old)
	}
	sv.stabilize()
}

// AddElement applies σ = (e, U, +): e joins the universe and is assigned to
// a containing set.
func (sv *Solver) AddElement(e int) {
	ei := sv.ensureElem(e)
	if sv.elems[ei].inU {
		return
	}
	sv.elems[ei].inU = true
	sv.nUniverse++
	if si, ok := sv.chooseSetFor(ei); ok {
		sv.assignTo(ei, si)
		sv.relevel(si)
	} else {
		sv.nOrphans++
	}
	sv.stabilize()
}

// RemoveElement applies σ = (e, U, −): e leaves the universe; its former
// chosen set shrinks (and leaves C when emptied).
func (sv *Solver) RemoveElement(e int) {
	ei, ok := sv.elemIdx[e]
	if !ok || !sv.elems[ei].inU {
		return
	}
	sv.elems[ei].inU = false
	sv.nUniverse--
	if sv.elems[ei].assign < 0 {
		sv.nOrphans--
		return
	}
	old, _ := sv.unassign(ei)
	sv.relevel(old)
	sv.stabilize()
}

// DropSetIfEmpty unregisters a set that no longer has members (used after a
// tuple deletion finished removing every membership of S(p)). The slot and
// its storage are recycled.
func (sv *Solver) DropSetIfEmpty(s int) bool {
	si, ok := sv.setIdx[s]
	if !ok || sv.sets[si].members.n != 0 {
		return false
	}
	t := &sv.sets[si]
	// No members ⇒ no cover (cov ⊆ S) and all buckets empty (bucket ⊆ S);
	// empties released their storage already, so only the directory resets.
	t.buckets = t.buckets[:0]
	t.id = -1
	t.live = false
	delete(sv.setIdx, s)
	sv.freeSet = append(sv.freeSet, si)
	return true
}

// ResetUniverse replaces the universe wholesale and rebuilds the solution
// with GREEDY. FD-RMS initialization uses this while binary-searching the
// sample size m (Algorithm 2, Lines 3–14).
func (sv *Solver) ResetUniverse(elems []int) {
	for i := range sv.elems {
		sv.elems[i].inU = false
	}
	sv.nUniverse = 0
	for _, e := range elems {
		ei := sv.ensureElem(e)
		if !sv.elems[ei].inU {
			sv.elems[ei].inU = true
			sv.nUniverse++
		}
	}
	sv.Greedy()
}

// --- STABILIZE ---------------------------------------------------------------

// stabilize restores Definition 2: while some set s could take over all
// elements of a level j with |s ∩ A_j| >= 2^{j+1}, it does (Lines 28–32 of
// Algorithm 1), moving those elements into cov(s) and releveling every
// touched set. Each takeover strictly raises the level of the moved
// elements, so the loop terminates (Lemma 2).
//
// Takeover order picks which of multiple valid stable solutions we land on;
// selecting the smallest (level, set id) violation each round — and moving
// its elements in ascending element id — makes the whole solver a
// deterministic function of its operation sequence, which the batched
// update path (and its equivalence tests) relies on.
func (sv *Solver) stabilize() {
	for len(sv.dirty) > 0 {
		d := sv.popDirty()
		t := &sv.sets[d.set]
		var b span
		if int(d.level) < len(t.buckets) {
			b = t.buckets[d.level]
		}
		if int(b.n) < 1<<(d.level+1) {
			continue // stale entry
		}
		sv.Takeovers++
		sv.metrics.mirrorTakeover()
		// Take over every element of S ∩ A_j, in ascending element id.
		moved := append(sv.moved[:0], sv.arena.view(b)...)
		slices.SortFunc(moved, func(x, y int32) int {
			return cmp.Compare(sv.elems[x].id, sv.elems[y].id)
		})
		touched := sv.touched[:0]
		for _, ei := range moved {
			if sv.elems[ei].assign == d.set {
				continue
			}
			old, _ := sv.unassign(ei)
			touched = append(touched, old)
			sv.assignTo(ei, d.set)
		}
		sv.moved = moved[:0]
		sv.relevel(d.set)
		slices.Sort(touched)
		prev := int32(-1)
		for _, si := range touched {
			if si == prev {
				continue
			}
			prev = si
			sv.relevel(si)
		}
		sv.touched = touched[:0]
	}
}

// --- GREEDY -------------------------------------------------------------------

// Greedy discards the current solution and rebuilds it with the classic
// greedy algorithm (Lines 13–19 of Algorithm 1), assigning each chosen set
// to the level matching its cover size. Lemma 1 guarantees the result is
// stable. Orphan elements (contained in no set) are skipped.
func (sv *Solver) Greedy() {
	// Discard the current solution, releasing cover and bucket storage.
	for i := range sv.sets {
		t := &sv.sets[i]
		if !t.live {
			continue
		}
		sv.arena.freeSpan(&t.cover)
		for j := range t.buckets {
			sv.arena.freeSpan(&t.buckets[j])
		}
		t.buckets = t.buckets[:0]
		t.chosen = false
		t.level = 0
	}
	for i := range sv.elems {
		sv.elems[i].assign = -1
	}
	for j := range sv.levels {
		sv.levels[j] = sv.levels[j][:0]
	}
	sv.nChosen = 0
	sv.nOrphans = 0
	sv.dirty = sv.dirty[:0]

	// Uncovered-count per set, restricted to the universe.
	counts := sv.counts
	if cap(counts) < len(sv.sets) {
		counts = make([]int32, len(sv.sets))
	}
	counts = counts[:len(sv.sets)]
	clear(counts)
	// cand holds exactly the set slots with a nonzero uncovered count and
	// shrinks as rounds zero them out, so each greedy round scans the live
	// candidates rather than every registered slot (at bench scale one slot
	// exists per tuple while only the Φ-transpose of the m-element universe
	// can cover anything).
	cand := sv.touched[:0]
	remaining := 0
	for i := range sv.elems {
		el := &sv.elems[i]
		if !el.inU {
			continue
		}
		if el.contains.n == 0 {
			sv.nOrphans++
			continue
		}
		remaining++
		for _, ti := range sv.arena.view(el.contains) {
			if counts[ti] == 0 {
				cand = append(cand, ti)
			}
			counts[ti]++
		}
	}

	for remaining > 0 {
		best := int32(-1)
		bestCount := int32(0)
		bestID := 0
		w := 0
		for _, i := range cand {
			n := counts[i]
			if n == 0 {
				continue // exhausted in an earlier round; drop from cand
			}
			cand[w] = i
			w++
			if n > bestCount || (n == bestCount && sv.sets[i].id < bestID) {
				best, bestCount, bestID = i, n, sv.sets[i].id
			}
		}
		cand = cand[:w]
		if best < 0 {
			break // only orphans remain (unreachable: orphans were excluded)
		}
		covered := sv.moved[:0]
		for _, ei := range sv.arena.view(sv.sets[best].members) {
			el := &sv.elems[ei]
			if el.inU && el.assign < 0 && el.contains.n > 0 {
				covered = append(covered, ei)
			}
		}
		slices.SortFunc(covered, func(x, y int32) int {
			return cmp.Compare(sv.elems[x].id, sv.elems[y].id)
		})
		t := &sv.sets[best]
		t.chosen = true
		sv.nChosen++
		for _, ei := range covered {
			sv.elems[ei].assign = best
			sv.arena.insert(&t.cover, ei)
			remaining--
			for _, ti := range sv.arena.view(sv.elems[ei].contains) {
				if counts[ti] > 0 {
					counts[ti]--
				}
			}
		}
		j := int32(levelOf(int(t.cover.n)))
		t.level = j
		sv.levelAdd(j, best)
		sv.moved = covered[:0]
	}
	sv.counts = counts[:0]
	sv.touched = cand[:0]

	// Rebuild buckets from the fresh assignment.
	for i := range sv.elems {
		if si := sv.elems[i].assign; si >= 0 {
			sv.bucketAdd(int32(i), sv.sets[si].level)
		}
	}
	// Greedy solutions are stable (Lemma 1), but bucketAdd may have queued
	// candidates; clear them through the standard check for safety.
	sv.stabilize()
}

// --- invariant checking --------------------------------------------------------

// CheckStable verifies Definition 2 plus the structural invariants of the
// solution and returns a descriptive error on the first violation. Intended
// for tests and debugging; it runs in O(total membership) time.
func (sv *Solver) CheckStable() error {
	// Every non-orphan universe element is assigned to a containing chosen set.
	orphans := 0
	for i := range sv.elems {
		el := &sv.elems[i]
		if !el.inU {
			if el.assign >= 0 {
				return fmt.Errorf("element %d assigned but outside the universe", el.id)
			}
			continue
		}
		if el.assign < 0 {
			if el.contains.n != 0 {
				return fmt.Errorf("universe element %d unassigned", el.id)
			}
			orphans++
			continue
		}
		si := el.assign
		if !sv.arena.has(sv.sets[si].members, int32(i)) {
			return fmt.Errorf("element %d assigned to set %d that does not contain it", el.id, sv.sets[si].id)
		}
		if !sv.arena.has(sv.sets[si].cover, int32(i)) {
			return fmt.Errorf("element %d missing from cov(%d)", el.id, sv.sets[si].id)
		}
	}
	if orphans != sv.nOrphans {
		return fmt.Errorf("orphan count drift: counted %d, maintained %d", orphans, sv.nOrphans)
	}
	// Covers partition the assigned elements.
	chosen := 0
	for i := range sv.sets {
		t := &sv.sets[i]
		if !t.live || !t.chosen {
			continue
		}
		chosen++
		c := int(t.cover.n)
		if c == 0 {
			return fmt.Errorf("chosen set %d has empty cover", t.id)
		}
		for _, ei := range sv.arena.view(t.cover) {
			if sv.elems[ei].assign != int32(i) {
				return fmt.Errorf("cov(%d) holds %d but φ(%d) = %d", t.id, sv.elems[ei].id, sv.elems[ei].id, sv.elems[ei].assign)
			}
		}
		// Condition (1): level matches cover size.
		j := t.level
		if c < 1<<j || c >= 1<<(j+1) {
			return fmt.Errorf("set %d at level %d has |cov| = %d", t.id, j, c)
		}
		if !sv.levelHas(j, int32(i)) {
			return fmt.Errorf("set %d missing from levels[%d]", t.id, j)
		}
	}
	if chosen != sv.nChosen {
		return fmt.Errorf("chosen count drift: counted %d, maintained %d", chosen, sv.nChosen)
	}
	// Condition (2): no set can take over a level; cross-check the
	// maintained buckets against a fresh per-level count of S ∩ A_j.
	for i := range sv.sets {
		t := &sv.sets[i]
		if !t.live {
			continue
		}
		var perLevel [64]int
		maxJ := len(t.buckets) - 1 // also sweep maintained buckets beyond maxJ for stale entries
		for _, ei := range sv.arena.view(t.members) {
			if si := sv.elems[ei].assign; si >= 0 {
				j := int(sv.sets[si].level)
				perLevel[j]++
				if j > maxJ {
					maxJ = j
				}
			}
		}
		for j := 0; j <= maxJ; j++ {
			n := perLevel[j]
			if n >= 1<<(j+1) {
				return fmt.Errorf("instability: |S_%d ∩ A_%d| = %d >= %d", t.id, j, n, 1<<(j+1))
			}
			got := 0
			if j < len(t.buckets) {
				got = int(t.buckets[j].n)
			}
			if got != n {
				return fmt.Errorf("bucket drift for set %d level %d: bucket %d, actual %d", t.id, j, got, n)
			}
		}
	}
	return nil
}
