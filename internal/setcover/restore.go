// Snapshot capture and restore of the solution state.
//
// The set SYSTEM (memberships) is derivable from the top-k engine, but the
// stable SOLUTION is path-dependent: two solvers fed the same system can
// settle on different (equally valid) covers depending on the operation
// order that built them. Durability therefore persists the assignment φ and
// the stats counters verbatim; everything else about the solution — covers,
// levels, buckets, orphans — is a deterministic function of φ and the set
// system, rebuilt here on restore. Recovery that must be bit-identical to
// the uninterrupted run depends on this exactness (see core.Snapshot).
package setcover

import (
	"fmt"
	"sort"
)

// LoadSet registers set s with exactly the given members in one step — the
// bulk equivalent of RegisterSet followed by AddSetMember per member, valid
// only while the universe (and hence the solution) is empty, i.e. during a
// restore. It sizes the member map exactly and skips the per-membership
// stability machinery, which has nothing to check on an empty universe;
// restoring a checkpoint at bench scale reloads ~10^5 sets, so the per-call
// overhead is what time-to-recover is made of.
func (sv *Solver) LoadSet(s int, members []int) {
	if len(sv.universe) != 0 {
		panic("setcover: LoadSet with a non-empty universe")
	}
	m := sv.sets[s]
	if m == nil {
		m = make(map[int]bool, len(members))
		sv.sets[s] = m
	}
	for _, e := range members {
		m[e] = true
		c := sv.contains[e]
		if c == nil {
			c = make(map[int]bool)
			sv.contains[e] = c
		}
		c[s] = true
	}
}

// Assignment returns a copy of φ as a map from universe element to its
// chosen set. Orphans (and only orphans) are absent.
func (sv *Solver) Assignment() map[int]int {
	out := make(map[int]int, len(sv.assign))
	for e, s := range sv.assign {
		out[e] = s
	}
	return out
}

// RestoreSolution installs a previously captured solution: the universe
// becomes elems and every element is assigned per assign (elements absent
// from assign must be orphans — contained in no registered set). The set
// system must already be loaded (RegisterSet/AddSetMember with an empty
// universe records pure membership without touching any solution state).
//
// The rebuilt covers, levels, and buckets are the unique ones matching a
// stable φ, so a solver restored from a stable snapshot is indistinguishable
// from the one that wrote it. A φ that is not a stable solution of the
// loaded system — an element assigned to a set that does not contain it, a
// non-orphan left unassigned, or a level takeover left pending — is
// rejected, leaving the solver in an undefined state fit only for disposal.
func (sv *Solver) RestoreSolution(elems []int, assign map[int]int) error {
	if len(sv.universe) != 0 || len(sv.assign) != 0 || len(sv.cov) != 0 {
		return fmt.Errorf("setcover: RestoreSolution on a non-pristine solver")
	}
	sv.universe = make(map[int]bool, len(elems))
	for _, e := range elems {
		sv.universe[e] = true
	}
	if len(sv.universe) != len(elems) {
		return fmt.Errorf("setcover: duplicate universe elements in snapshot")
	}

	// Covers and levels first: bucketAdd needs every chosen set's level.
	for e, s := range assign {
		if !sv.universe[e] {
			return fmt.Errorf("setcover: assignment of %d outside the universe", e)
		}
		if sv.sets[s] == nil || !sv.sets[s][e] {
			return fmt.Errorf("setcover: element %d assigned to set %d that does not contain it", e, s)
		}
		sv.assign[e] = s
		if sv.cov[s] == nil {
			sv.cov[s] = make(map[int]bool)
		}
		sv.cov[s][e] = true
	}
	for s, c := range sv.cov {
		j := levelOf(len(c))
		sv.level[s] = j
		if sv.levels[j] == nil {
			sv.levels[j] = make(map[int]bool)
		}
		sv.levels[j][s] = true
	}
	// Buckets in deterministic element order (bucket maps are rebuilt from
	// scratch, so order only matters for reproducible failure modes).
	ordered := make([]int, 0, len(assign))
	for e := range assign {
		ordered = append(ordered, e)
	}
	sort.Ints(ordered)
	for _, e := range ordered {
		sv.bucketAdd(e, sv.level[sv.assign[e]])
	}
	for _, e := range elems {
		if _, ok := sv.assign[e]; ok {
			continue
		}
		if len(sv.contains[e]) != 0 {
			return fmt.Errorf("setcover: unassigned element %d is coverable (snapshot not stable)", e)
		}
		sv.orphans[e] = true
	}
	// A stable solution never has a pending takeover; bucketAdd queueing one
	// means the snapshot was not stable.
	if len(sv.dirty) > 0 {
		sv.dirty = nil
		return fmt.Errorf("setcover: restored solution violates stability")
	}
	return nil
}
