// Snapshot capture and restore of the solution state.
//
// The set SYSTEM (memberships) is derivable from the top-k engine, but the
// stable SOLUTION is path-dependent: two solvers fed the same system can
// settle on different (equally valid) covers depending on the operation
// order that built them. Durability therefore persists the assignment φ and
// the stats counters verbatim; everything else about the solution — covers,
// levels, buckets, orphans — is a deterministic function of φ and the set
// system, rebuilt here on restore. Recovery that must be bit-identical to
// the uninterrupted run depends on this exactness (see core.Snapshot).
package setcover

import (
	"fmt"
	"slices"
)

// LoadSet registers set s with exactly the given members in one step — the
// bulk equivalent of RegisterSet followed by AddSetMember per member, valid
// only while the universe (and hence the solution) is empty, i.e. during a
// restore. The member list is written unsorted into one exactly-classed
// slab fragment and sorted in place, skipping both the per-membership
// sorted-insert memmoves and the stability machinery (which has nothing to
// check on an empty universe); restoring a checkpoint at bench scale
// reloads ~10^5 sets, so the per-call overhead is what time-to-recover is
// made of.
func (sv *Solver) LoadSet(s int, members []int) {
	if sv.nUniverse != 0 {
		panic("setcover: LoadSet with a non-empty universe")
	}
	si := sv.ensureSet(s)
	if sv.sets[si].members.n == 0 && len(members) > 0 {
		sp := sv.arena.allocN(len(members))
		n := int32(0)
		for _, e := range members {
			ei := sv.ensureElem(e)
			sv.arena.data[sp.off+n] = ei
			n++
			sv.arena.insert(&sv.elems[ei].contains, si)
		}
		sp.n = n
		v := sv.arena.view(sp)
		slices.Sort(v)
		sp.n = int32(len(slices.Compact(v))) // tolerate duplicate members
		sv.sets[si].members = sp
		return
	}
	for _, e := range members {
		ei := sv.ensureElem(e)
		if sv.arena.insert(&sv.sets[si].members, ei) {
			sv.arena.insert(&sv.elems[ei].contains, si)
		}
	}
}

// Assignment returns a copy of φ as a map from universe element to its
// chosen set. Orphans (and only orphans) are absent.
func (sv *Solver) Assignment() map[int]int {
	out := make(map[int]int, sv.nUniverse-sv.nOrphans)
	for i := range sv.elems {
		if si := sv.elems[i].assign; si >= 0 {
			out[sv.elems[i].id] = sv.sets[si].id
		}
	}
	return out
}

// RestoreSolution installs a previously captured solution: the universe
// becomes elems and every element is assigned per assign (elements absent
// from assign must be orphans — contained in no registered set). The set
// system must already be loaded (LoadSet, or RegisterSet/AddSetMember with
// an empty universe, records pure membership without touching any solution
// state).
//
// The rebuilt covers, levels, and buckets are the unique ones matching a
// stable φ, so a solver restored from a stable snapshot is indistinguishable
// from the one that wrote it. A φ that is not a stable solution of the
// loaded system — an element assigned to a set that does not contain it, a
// non-orphan left unassigned, or a level takeover left pending — is
// rejected, leaving the solver in an undefined state fit only for disposal.
func (sv *Solver) RestoreSolution(elems []int, assign map[int]int) error {
	if sv.nUniverse != 0 || sv.nChosen != 0 {
		return fmt.Errorf("setcover: RestoreSolution on a non-pristine solver")
	}
	for _, e := range elems {
		ei := sv.ensureElem(e)
		if sv.elems[ei].inU {
			return fmt.Errorf("setcover: duplicate universe elements in snapshot")
		}
		sv.elems[ei].inU = true
		sv.nUniverse++
	}

	// One canonical order for everything below: ascending element id. The
	// cover install, the level fill, and the bucket rebuild all walk it, so
	// slab layout, counters, and — on a corrupt snapshot — WHICH violation
	// is reported all come out identical on every restore of the same
	// snapshot, instead of following map iteration order.
	keys := make([]int, 0, len(assign))
	//fdrms:orderinvariant key collection only; sorted on the next line before any validation or use
	for e := range assign {
		keys = append(keys, e)
	}
	slices.Sort(keys)

	// Covers and levels first: bucketAdd needs every chosen set's level.
	for _, e := range keys {
		s := assign[e]
		ei, ok := sv.elemIdx[e]
		if !ok || !sv.elems[ei].inU {
			return fmt.Errorf("setcover: assignment of %d outside the universe", e)
		}
		si, ok := sv.setIdx[s]
		if !ok || !sv.arena.has(sv.sets[si].members, ei) {
			return fmt.Errorf("setcover: element %d assigned to set %d that does not contain it", e, s)
		}
		sv.elems[ei].assign = si
		t := &sv.sets[si]
		if !t.chosen {
			t.chosen = true
			t.cover = span{}
			sv.nChosen++
		}
		sv.arena.insert(&t.cover, ei)
	}
	for i := range sv.sets {
		t := &sv.sets[i]
		if !t.live || !t.chosen {
			continue
		}
		j := int32(levelOf(int(t.cover.n)))
		t.level = j
		sv.levelAdd(j, int32(i))
	}
	// Buckets in the same canonical element order (buckets are rebuilt from
	// scratch, so order only matters for reproducible failure modes).
	for _, e := range keys {
		ei := sv.elemIdx[e]
		sv.bucketAdd(ei, sv.sets[sv.elems[ei].assign].level)
	}
	for _, e := range elems {
		ei := sv.elemIdx[e]
		if sv.elems[ei].assign >= 0 {
			continue
		}
		if sv.elems[ei].contains.n != 0 {
			return fmt.Errorf("setcover: unassigned element %d is coverable (snapshot not stable)", e)
		}
		sv.nOrphans++
	}
	// A stable solution never has a pending takeover; bucketAdd queueing one
	// means the snapshot was not stable.
	if len(sv.dirty) > 0 {
		sv.dirty = sv.dirty[:0]
		return fmt.Errorf("setcover: restored solution violates stability")
	}
	return nil
}
