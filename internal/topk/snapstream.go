// Streaming (non-blocking) snapshot capture.
//
// Snapshot() copies the whole engine state in one call, which its callers
// historically ran under their writer lock — an O(state) stop-the-world
// pause that grows with the database and shows up as a p99/max latency
// cliff whenever a checkpoint fires. The session API here splits the
// capture into an O(utilities + arena-clone) ARM step plus bounded chunks,
// so a durability layer can interleave writer batches between chunks and
// still obtain a snapshot bit-identical to what Snapshot() would have
// returned at the arm point:
//
//	sess := e.StartSnapshot()       // under the writer lock: pin
//	for !e.SnapshotChunk(1024) {}   // under the writer lock, between batches
//	snap := e.FinishSnapshot()      // OFF the writer lock: sort + assemble
//
// Correctness rests on two pins. The TUPLE side is the kd-tree's epoch MVCC:
// StartSnapshot captures a View, whose visibleAt(epoch) node filter yields
// exactly the arm-point database regardless of later mutations. The UTILITY
// side is a copy-on-first-write overlay: while a session is armed, the first
// mutation that would touch a utility's state (insert-phase admission,
// delete-phase repair, or RemoveUtility) first deep-copies that utility's
// pre-image into its shard's overlay map. SnapshotChunk then reads the
// overlay when present and the live state otherwise — a live state not in
// the overlay is untouched since the arm, so both reads observe the
// arm-point value. Workers only ever touch their own shard's overlay, so
// the hooks add no synchronization to the parallel phase.
//
// All three entry points and every mutation must be serialized by the
// engine's single-writer contract (in the serving stack: the store's writer
// lock) — only FinishSnapshot and AbortSnapshot's result assembly run off
// that lock. At most one session can be armed at a time.
package topk

import (
	"sort"

	"fdrms/internal/kdtree"
)

// snapCapture is the deep-copied arm-point maintenance state of one
// utility. Phi is in map-iteration order until FinishSnapshot sorts it.
type snapCapture struct {
	phi  []PhiEntry
	topk []int // runner-up buffer ids, buffer order
}

// rawUtilState pairs a captured state with its utility id.
type rawUtilState struct {
	uid int
	cap snapCapture
}

// snapSession is the engine's armed streaming capture, if any.
type snapSession struct {
	armed bool
	uids  []int          // utilities live at arm, unsorted
	next  int            // first uids index not yet captured
	raw   []rawUtilState // captured states, unsorted
	view  *kdtree.View   // tuple index pinned at the arm epoch
	out   *EngineSnapshot
}

// captureState deep-copies one utility's maintenance state.
func captureState(st *uState) snapCapture {
	c := snapCapture{
		phi:  make([]PhiEntry, 0, len(st.phi)),
		topk: make([]int, len(st.topk)),
	}
	//fdrms:orderinvariant pid keys are unique and the entries are sorted by PointID in FinishSnapshot before the snapshot is observable
	for pid, score := range st.phi {
		c.phi = append(c.phi, PhiEntry{PointID: pid, Score: score})
	}
	for i, r := range st.topk {
		c.topk[i] = r.Point.ID
	}
	return c
}

// snapTouch preserves uid's pre-image before its first mutation of an armed
// session. Idempotent per (session, utility); called only on the goroutine
// that owns sh for the current phase.
func (sh *shard) snapTouch(uid int, st *uState) {
	if _, done := sh.overlay[uid]; done {
		return
	}
	sh.overlay[uid] = captureState(st)
}

// SnapshotSession captures an immutable handle on the tuple side of an
// armed session: the epoch-pinned view backing the final point set.
// (Utility captures accumulate inside the engine; the handle exists so
// callers can read the pinned epoch.)
type SnapshotSession struct {
	Epoch uint64
}

// StartSnapshot arms a streaming capture of the current state: counters and
// the tuple index are pinned immediately (O(arena) view clone), utility
// states lazily via the copy-on-first-write overlay. Must be called by the
// engine's single writer; panics if a session is already armed.
func (e *Engine) StartSnapshot() SnapshotSession {
	if e.snap.armed {
		panic("topk: StartSnapshot with a session already armed")
	}
	e.snap.view = e.tree.View()
	e.snap.out = &EngineSnapshot{
		Dim:           e.dim,
		K:             e.k,
		Eps:           e.eps,
		InsertOps:     e.InsertOps,
		DeleteOps:     e.DeleteOps,
		AffectedTotal: e.AffectedTotal,
		Requeries:     e.Requeries,
	}
	e.snap.uids = e.snap.uids[:0]
	for si := range e.shards {
		sh := &e.shards[si]
		//fdrms:orderinvariant collects live utility ids only; the captured states are sorted by id in FinishSnapshot before the snapshot is observable
		for uid := range sh.slots {
			e.snap.uids = append(e.snap.uids, uid)
		}
		if sh.overlay == nil {
			sh.overlay = make(map[int]snapCapture)
		}
	}
	e.snap.next = 0
	e.snap.raw = e.snap.raw[:0]
	e.snap.armed = true
	return SnapshotSession{Epoch: e.snap.view.Epoch()}
}

// SnapshotChunk captures up to n more utilities and reports whether the
// capture is complete. Must be called by the engine's single writer (i.e.
// between batches); a bounded n bounds the writer pause per call. Once the
// last utility is captured the session disarms — later mutations stop
// paying the overlay copy — and FinishSnapshot may run off the writer lock.
func (e *Engine) SnapshotChunk(n int) bool {
	if !e.snap.armed {
		panic("topk: SnapshotChunk without an armed session")
	}
	end := e.snap.next + n
	if end > len(e.snap.uids) {
		end = len(e.snap.uids)
	}
	for _, uid := range e.snap.uids[e.snap.next:end] {
		sh := &e.shards[e.shardFor(uid)]
		if c, ok := sh.overlay[uid]; ok {
			e.snap.raw = append(e.snap.raw, rawUtilState{uid: uid, cap: c})
			continue
		}
		// Not in the overlay ⇒ untouched since the arm: the live state IS
		// the arm-point state.
		e.snap.raw = append(e.snap.raw, rawUtilState{uid: uid, cap: captureState(sh.state(uid))})
	}
	e.snap.next = end
	if end < len(e.snap.uids) {
		return false
	}
	e.disarm()
	return true
}

// FinishSnapshot assembles the captured session into a snapshot
// bit-identical to what Snapshot() would have returned at the arm point.
// Safe to call WITHOUT writer synchronization — every input is already
// immutable (the pinned view's point set, the deep-copied states) — so the
// O(state log state) sorting runs off the writer lock. Panics unless the
// capture completed (SnapshotChunk returned true).
func (e *Engine) FinishSnapshot() *EngineSnapshot {
	if e.snap.out == nil || e.snap.armed {
		panic("topk: FinishSnapshot before the capture completed")
	}
	s := e.snap.out
	s.Points = e.snap.view.Points()
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].ID < s.Points[j].ID })
	raw := e.snap.raw
	sort.Slice(raw, func(i, j int) bool { return raw[i].uid < raw[j].uid })
	s.Utilities = make([]UtilityState, len(raw))
	for i := range raw {
		phi := raw[i].cap.phi
		sort.Slice(phi, func(a, b int) bool { return phi[a].PointID < phi[b].PointID })
		s.Utilities[i] = UtilityState{ID: raw[i].uid, Phi: phi, TopK: raw[i].cap.topk}
	}
	e.snap.out = nil
	e.snap.raw = nil // captured slices are handed to the snapshot
	e.snap.view = nil
	e.snap.uids = e.snap.uids[:0]
	return s
}

// AbortSnapshot discards an in-flight session (armed or captured-but-not-
// finished). Must be called by the engine's single writer. No-op without a
// session.
func (e *Engine) AbortSnapshot() {
	if e.snap.armed {
		e.disarm()
	}
	e.snap.out = nil
	e.snap.raw = nil
	e.snap.view = nil
	e.snap.uids = e.snap.uids[:0]
}

// disarm stops overlay capture and drops the pre-images.
func (e *Engine) disarm() {
	e.snap.armed = false
	for si := range e.shards {
		clear(e.shards[si].overlay)
	}
}
