package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d, idBase int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = geom.Point{ID: idBase + i, Coords: v}
	}
	return pts
}

func randomUtilities(rng *rand.Rand, m, d int) []Utility {
	out := make([]Utility, m)
	for i := range out {
		u := make(geom.Vector, d)
		for j := range u {
			x := rng.NormFloat64()
			if x < 0 {
				x = -x
			}
			u[j] = x
		}
		geom.Normalize(u)
		out[i] = Utility{ID: i, U: u}
	}
	return out
}

// pickLive selects a deterministic random victim from the live-point map:
// the keys are sorted first so a failing seed replays the exact same
// operation schedule instead of one sampled from map iteration order.
func pickLive(rng *rand.Rand, live map[int]geom.Point) int {
	ids := make([]int, 0, len(live))
	//fdrms:orderinvariant ids are sorted before use
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

// brutePhi computes Φ_{k,ε}(u, pts) by linear scan.
func brutePhi(u geom.Vector, pts []geom.Point, k int, eps float64) map[int]bool {
	out := make(map[int]bool)
	if len(pts) == 0 {
		return out
	}
	scores := make([]float64, len(pts))
	for i, p := range pts {
		scores[i] = geom.Score(u, p)
	}
	sorted := append([]float64(nil), scores...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var kth float64
	if len(sorted) < k {
		kth = math.Inf(-1)
	} else {
		kth = sorted[k-1]
	}
	tau := (1 - eps) * kth
	if math.IsInf(kth, -1) {
		tau = math.Inf(-1)
	}
	for i, p := range pts {
		if scores[i] >= tau {
			out[p.ID] = true
		}
	}
	return out
}

// checkEngine verifies every utility's Φ against brute force and the
// inverted sets against Φ.
func checkEngine(t *testing.T, e *Engine, utilities []Utility, pts []geom.Point) {
	t.Helper()
	for _, ut := range utilities {
		want := brutePhi(ut.U, pts, e.K(), e.Epsilon())
		got := e.Members(ut.ID)
		if len(got) != len(want) {
			t.Fatalf("utility %d: |Φ| = %d, want %d", ut.ID, len(got), len(want))
		}
		//fdrms:orderinvariant conjunctive membership check, any order
		for pid := range want {
			if _, ok := got[pid]; !ok {
				t.Fatalf("utility %d: missing member %d", ut.ID, pid)
			}
		}
	}
	// Inverted index consistency.
	for _, p := range pts {
		for _, uid := range e.SetOf(p.ID) {
			if _, ok := e.Members(uid)[p.ID]; !ok {
				t.Fatalf("S(p%d) contains u%d but Φ(u%d) misses p%d", p.ID, uid, uid, p.ID)
			}
		}
	}
}

func TestInitialState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, k, eps := 3, 2, 0.05
	pts := randomPoints(rng, 100, d, 0)
	utils := randomUtilities(rng, 20, d)
	e := NewEngine(d, k, eps, pts, utils)
	checkEngine(t, e, utils, pts)
	if e.Len() != 100 || e.NumUtilities() != 20 {
		t.Fatalf("Len=%d NumUtilities=%d", e.Len(), e.NumUtilities())
	}
}

func TestInsertDeleteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, k, eps := 3, 3, 0.1
	pts := randomPoints(rng, 60, d, 0)
	utils := randomUtilities(rng, 15, d)
	e := NewEngine(d, k, eps, pts, utils)

	live := make(map[int]geom.Point, len(pts))
	for _, p := range pts {
		live[p.ID] = p
	}
	next := 1000
	for op := 0; op < 300; op++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			p := randomPoints(rng, 1, d, next)[0]
			next++
			e.Insert(p)
			live[p.ID] = p
		} else {
			id := pickLive(rng, live)
			e.Delete(id)
			delete(live, id)
		}
		if op%25 == 0 {
			cur := make([]geom.Point, 0, len(live))
			//fdrms:orderinvariant brutePhi's result is a threshold set, independent of input order
			for _, p := range live {
				cur = append(cur, p)
			}
			checkEngine(t, e, utils, cur)
		}
	}
}

// Changes must be a correct delta: replaying them over the previous
// membership snapshot yields the new membership.
func TestChangesAreExactDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, k, eps := 4, 2, 0.08
	pts := randomPoints(rng, 80, d, 0)
	utils := randomUtilities(rng, 12, d)
	e := NewEngine(d, k, eps, pts, utils)

	snapshot := func() map[int]map[int]bool {
		out := make(map[int]map[int]bool)
		for _, ut := range utils {
			m := make(map[int]bool)
			//fdrms:orderinvariant building a set, insertion order immaterial
			for pid := range e.Members(ut.ID) {
				m[pid] = true
			}
			out[ut.ID] = m
		}
		return out
	}

	prev := snapshot()
	live := make(map[int]geom.Point)
	for _, p := range pts {
		live[p.ID] = p
	}
	next := 5000
	for op := 0; op < 150; op++ {
		var changes []Change
		if rng.Intn(2) == 0 || len(live) == 0 {
			p := randomPoints(rng, 1, d, next)[0]
			next++
			changes = e.Insert(p)
			live[p.ID] = p
		} else {
			id := pickLive(rng, live)
			changes = e.Delete(id)
			delete(live, id)
		}
		for _, c := range changes {
			if c.Added {
				if prev[c.UtilityID][c.PointID] {
					t.Fatalf("op %d: add change for existing member u%d/p%d", op, c.UtilityID, c.PointID)
				}
				prev[c.UtilityID][c.PointID] = true
			} else {
				if !prev[c.UtilityID][c.PointID] {
					t.Fatalf("op %d: remove change for non-member u%d/p%d", op, c.UtilityID, c.PointID)
				}
				delete(prev[c.UtilityID], c.PointID)
			}
		}
		now := snapshot()
		//fdrms:orderinvariant each utility is checked independently; pass/fail does not depend on order
		for uid, m := range now {
			if len(m) != len(prev[uid]) {
				t.Fatalf("op %d: replayed membership of u%d has %d members, engine has %d", op, uid, len(prev[uid]), len(m))
			}
			//fdrms:orderinvariant conjunctive membership check, any order
			for pid := range m {
				if !prev[uid][pid] {
					t.Fatalf("op %d: replay misses u%d/p%d", op, uid, pid)
				}
			}
		}
	}
}

func TestDeleteMissingIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 10, 2, 0)
	e := NewEngine(2, 1, 0.05, pts, randomUtilities(rng, 3, 2))
	if got := e.Delete(999); got != nil {
		t.Fatalf("Delete(missing) = %v", got)
	}
}

func TestInsertReplacesExistingID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 2
	pts := randomPoints(rng, 20, d, 0)
	utils := randomUtilities(rng, 5, d)
	e := NewEngine(d, 2, 0.05, pts, utils)
	p := geom.NewPoint(3, 0.99, 0.99) // replaces id 3 with a dominant point
	e.Insert(p)
	cur := []geom.Point{p}
	for _, q := range pts {
		if q.ID != 3 {
			cur = append(cur, q)
		}
	}
	checkEngine(t, e, utils, cur)
	if e.Len() != 20 {
		t.Fatalf("Len = %d, want 20", e.Len())
	}
}

func TestFewerPointsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, k := 2, 5
	utils := randomUtilities(rng, 4, d)
	e := NewEngine(d, k, 0.1, nil, utils)
	if e.Len() != 0 {
		t.Fatal("expected empty engine")
	}
	// With fewer than k tuples, every tuple is a member for every utility.
	var pts []geom.Point
	for i := 0; i < 3; i++ {
		p := randomPoints(rng, 1, d, i)[0]
		e.Insert(p)
		pts = append(pts, p)
		checkEngine(t, e, utils, pts)
		for _, ut := range utils {
			if len(e.Members(ut.ID)) != i+1 {
				t.Fatalf("after %d inserts, |Φ| = %d", i+1, len(e.Members(ut.ID)))
			}
		}
	}
	// KthScore must report !ok below k tuples.
	if _, ok := e.KthScore(utils[0].ID); ok {
		t.Fatal("KthScore should be !ok with fewer than k tuples")
	}
}

func TestAddRemoveUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 3
	pts := randomPoints(rng, 50, d, 0)
	utils := randomUtilities(rng, 6, d)
	e := NewEngine(d, 2, 0.05, pts, utils)

	nu := randomUtilities(rng, 1, d)[0]
	nu.ID = 100
	changes := e.AddUtility(nu)
	want := brutePhi(nu.U, pts, 2, 0.05)
	if len(changes) != len(want) {
		t.Fatalf("AddUtility changes = %d, want %d", len(changes), len(want))
	}
	for _, c := range changes {
		if !c.Added || c.UtilityID != 100 || !want[c.PointID] {
			t.Fatalf("bad change %+v", c)
		}
	}
	if e.NumUtilities() != 7 {
		t.Fatalf("NumUtilities = %d", e.NumUtilities())
	}

	removed := e.RemoveUtility(100)
	if len(removed) != len(want) {
		t.Fatalf("RemoveUtility changes = %d, want %d", len(removed), len(want))
	}
	if e.NumUtilities() != 6 {
		t.Fatalf("NumUtilities = %d after removal", e.NumUtilities())
	}
	if e.Members(100) != nil {
		t.Fatal("membership should be gone")
	}
	if e.RemoveUtility(100) != nil {
		t.Fatal("removing a missing utility should return nil")
	}
}

func TestTopKAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, k := 3, 4
	pts := randomPoints(rng, 40, d, 0)
	utils := randomUtilities(rng, 5, d)
	e := NewEngine(d, k, 0.05, pts, utils)
	for _, ut := range utils {
		topk := e.TopK(ut.ID)
		if len(topk) != k {
			t.Fatalf("topk length = %d", len(topk))
		}
		// Must equal brute-force top-k scores.
		scores := make([]float64, len(pts))
		for i, p := range pts {
			scores[i] = geom.Score(ut.U, p)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		for i := 0; i < k; i++ {
			if math.Abs(topk[i].Score-scores[i]) > 1e-12 {
				t.Fatalf("topk[%d] = %v, want %v", i, topk[i].Score, scores[i])
			}
		}
	}
	if e.TopK(12345) != nil {
		t.Fatal("TopK of unknown utility should be nil")
	}
}

// Property: membership stays exact under arbitrary mixed operations,
// including utility churn.
func TestEngineExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		eps := rng.Float64() * 0.2
		pts := randomPoints(rng, 10+rng.Intn(30), d, 0)
		utils := randomUtilities(rng, 3+rng.Intn(8), d)
		e := NewEngine(d, k, eps, pts, utils)
		live := make(map[int]geom.Point)
		for _, p := range pts {
			live[p.ID] = p
		}
		next := 1000
		activeUtils := append([]Utility(nil), utils...)
		nextU := 100
		for op := 0; op < 50; op++ {
			switch rng.Intn(5) {
			case 0, 1:
				p := randomPoints(rng, 1, d, next)[0]
				next++
				e.Insert(p)
				live[p.ID] = p
			case 2:
				if len(live) == 0 {
					continue
				}
				id := pickLive(rng, live)
				e.Delete(id)
				delete(live, id)
			case 3:
				u := randomUtilities(rng, 1, d)[0]
				u.ID = nextU
				nextU++
				e.AddUtility(u)
				activeUtils = append(activeUtils, u)
			case 4:
				if len(activeUtils) <= 1 {
					continue
				}
				i := rng.Intn(len(activeUtils))
				e.RemoveUtility(activeUtils[i].ID)
				activeUtils = append(activeUtils[:i], activeUtils[i+1:]...)
			}
		}
		cur := make([]geom.Point, 0, len(live))
		//fdrms:orderinvariant brutePhi's result is a threshold set, independent of input order
		for _, p := range live {
			cur = append(cur, p)
		}
		for _, ut := range activeUtils {
			want := brutePhi(ut.U, cur, k, eps)
			got := e.Members(ut.ID)
			if len(got) != len(want) {
				return false
			}
			//fdrms:orderinvariant conjunctive membership check, any order
			for pid := range want {
				if _, ok := got[pid]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, k := 6, 1
	pts := randomPoints(rng, 20000, d, 0)
	utils := randomUtilities(rng, 1024, d)
	e := NewEngine(d, k, 0.01, pts, utils)
	ins := randomPoints(rng, b.N, d, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Insert(ins[i])
	}
}

func BenchmarkEngineDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d, k := 6, 1
	pts := randomPoints(rng, b.N+20000, d, 0)
	utils := randomUtilities(rng, 1024, d)
	e := NewEngine(d, k, 0.01, pts, utils)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Delete(i)
	}
}
