package topk

import (
	"math/rand"
	"reflect"
	"testing"
)

// streamTwins builds two identically-seeded engines and churns both with the
// same prefix, so either can serve as the other's stop-the-world reference.
func streamTwins(t *testing.T, seed int64, shards int) (a, b *Engine, utils []Utility, rng *rand.Rand) {
	t.Helper()
	rng = rand.New(rand.NewSource(seed))
	d, k, eps := 4, 2, 0.1
	pts := randomPoints(rng, 150, d, 0)
	utils = randomUtilities(rng, 48, d)
	prefix := randomOps(rng, pts, 300, d, 1000)
	a = NewEngineShards(d, k, eps, pts, utils, shards)
	b = NewEngineShards(d, k, eps, pts, utils, shards)
	a.ApplyBatch(prefix)
	b.ApplyBatch(prefix)
	return a, b, utils, rng
}

// The streaming-capture contract: a session armed at some point and drained
// in small chunks WHILE the engine keeps mutating must assemble a snapshot
// deep-equal to the stop-the-world Snapshot() at the arm point, and the
// mutations that ran through the armed overlay must leave the engine in
// exactly the state the same mutations produce on an unarmed twin —
// identical emitted change groups, identical final snapshot.
func TestStreamingSnapshotMatchesStopTheWorld(t *testing.T) {
	for _, shards := range []int{1, 4} {
		a, b, utils, rng := streamTwins(t, 61, shards)
		d := 4

		// b is frozen at the arm point just long enough to capture the
		// reference; afterwards it replays everything a does.
		stw := b.Snapshot()
		sess := a.StartSnapshot()
		if sess.Epoch == 0 {
			t.Fatalf("shards=%d: armed session reports epoch 0", shards)
		}

		mid := randomOps(rng, nil, 200, d, 2000)
		fresh := randomUtilities(rng, 1, d)[0]
		fresh.ID = 99 // not live at arm: must NOT appear in the capture
		done := false
		step := func() {
			if !done {
				done = a.SnapshotChunk(3)
			}
		}
		for i := 0; i < len(mid); {
			n := 1 + rng.Intn(9)
			if i+n > len(mid) {
				n = len(mid) - i
			}
			batch := mid[i : i+n]
			i += n
			step()
			ga, gb := a.ApplyBatch(batch), b.ApplyBatch(batch)
			if !reflect.DeepEqual(ga, gb) {
				t.Fatalf("shards=%d: changes diverged while armed after %d ops", shards, i)
			}
			// Exercise every overlay hook: insert/delete run through the
			// workers above; remove, re-add, and a brand-new utility here.
			switch i / 50 {
			case 1:
				a.RemoveUtility(utils[5].ID)
				b.RemoveUtility(utils[5].ID)
			case 2:
				a.AddUtility(utils[5])
				b.AddUtility(utils[5])
			case 3:
				a.AddUtility(fresh)
				b.AddUtility(fresh)
			}
		}
		for !done {
			step()
		}
		snap := a.FinishSnapshot()

		if !reflect.DeepEqual(snap, stw) {
			t.Fatalf("shards=%d: streamed capture differs from the stop-the-world capture at the arm point", shards)
		}
		if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("shards=%d: mutations applied while armed perturbed the engine", shards)
		}
	}
}

// Aborting a session — after chunks have run and mutations have paid the
// overlay copy — must leave the engine indistinguishable from a twin that
// was never armed, and must leave it re-armable.
func TestAbortSnapshotLeavesEngineIntact(t *testing.T) {
	a, b, _, rng := streamTwins(t, 71, 4)

	sess := a.StartSnapshot()
	_ = sess
	a.SnapshotChunk(4)
	mid := randomOps(rng, nil, 60, 4, 3000)
	ga, gb := a.ApplyBatch(mid), b.ApplyBatch(mid)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("changes diverged while armed")
	}
	a.AbortSnapshot()

	more := randomOps(rng, nil, 60, 4, 4000)
	ga, gb = a.ApplyBatch(more), b.ApplyBatch(more)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("changes diverged after abort")
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("aborted session left residue in the engine state")
	}

	// Re-arm and drain with no interleaved writes: the capture must equal a
	// plain Snapshot of the current state.
	want := a.Snapshot()
	a.StartSnapshot()
	for !a.SnapshotChunk(7) {
	}
	if got := a.FinishSnapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("re-armed capture after abort differs from Snapshot()")
	}
}
