// Batched, shard-parallel update path of the engine.
//
// ApplyBatch segments an operation sequence into maximal runs of pure
// insertions (distinct, not-yet-live ids) and pure deletions (distinct live
// ids); each run executes its per-utility Φ maintenance in ONE parallel
// phase across the utility shards, and every worker replays its utilities'
// operations in batch order against shard-local state, so the final Φ, the
// change lists, and every counter match the sequential path exactly.
//
// Insert runs: the cone tree is probed once per tuple against the
// thresholds at run start — a superset of each operation's exact affected
// set, because thresholds only rise while inserting — and stale candidates
// are discarded by an exact threshold re-check inside the worker.
//
// Delete runs: the whole run is tombstoned up front inside a tuple-index
// retain window (epoch-versioned tombstones, see package kdtree), and each
// shard's task list is the union of the inverted index entries S(id) over
// the run's ids at run start. That union is exactly the set of utilities
// any replay can touch: deleting a tuple outside Φ(u) changes neither
// ω_k(u) nor the membership of u (the exact top-k is a subset of Φ), so a
// utility's state first changes at the first run operation whose tuple is
// in its current Φ — which the inverted index knows before the run starts.
// Tuples admitted into Φ(u) by earlier operations of the same run and
// deleted again later are handled inside the worker, which scans the whole
// run in op order against its own Φ and issues requeries at each
// operation's epoch, observing exactly the database state the sequential
// path would.
//
// The tuple index is mutated only between parallel phases; workers issue
// read-only (as-of-epoch) queries against it. Cone-tree threshold repairs
// are deferred to the end of each phase and applied once per touched
// utility, which both keeps the workers lock-free and collapses up to |run|
// path repairs into one.
//
// Steady-state allocation discipline: run segmentation, task lists, worker
// change buffers, replay heaps, and tuple-index query scratch all live in
// the engine (or its shards) and are reused across batches; each shard
// worker owns a persistent kdtree.QueryScratch, so requeries are
// allocation-free once warmed up. The only per-run allocation is the
// emitted change groups — they are handed to the caller, who may retain
// them indefinitely, so each run carves its groups out of one fresh backing
// slice — plus genuine Φ/buffer growth.
package topk

import (
	"cmp"
	"slices"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Op is one database mutation for ApplyBatch: the insertion of Point when
// Delete is false, or the deletion of tuple ID when Delete is true.
type Op struct {
	Point  geom.Point // tuple to insert (Delete == false)
	ID     int        // tuple to delete (Delete == true)
	Delete bool
}

// InsertOp returns the Op inserting p.
func InsertOp(p geom.Point) Op { return Op{Point: p} }

// DeleteOp returns the Op deleting tuple id.
func DeleteOp(id int) Op { return Op{ID: id, Delete: true} }

// parallelMinTasks is the per-phase task count below which the shard
// fan-out is not worth the goroutine overhead and the work runs inline.
const parallelMinTasks = 32

// taggedChange is a Change tagged with the position of the operation that
// produced it inside the current run.
type taggedChange struct {
	pos int
	ch  Change
}

// shardResult collects one worker's output for a parallel phase. Result
// slots live side by side in one engine-owned slice and are written
// concurrently by different workers, so each slot is padded out to two
// cache lines: without the padding, two workers appending to adjacent
// slots' change lists invalidate each other's cache line on every counter
// bump (false sharing), which profiles as memory stalls precisely on the
// multi-core path this fan-out exists for.
type shardResult struct {
	changes    []taggedChange
	touched    []int // utilities whose threshold changed (dupes allowed)
	processed  int   // exact affected-utility count, summed over operations
	requeries  int   // fresh tuple-index top-k queries issued (delete phases)
	promotions int   // top-k vacancies filled by a buffered runner-up
	busyNanos  int64 // worker wall time this phase (phase profiling only)

	_ [48]byte // pad to 128 bytes: no two slots share a cache line
}

// ApplyBatch applies the operations in order and returns the concatenated
// membership changes. The change order is deterministic: operation order,
// then utility id, then point id. Equivalent to calling Insert/Delete one
// by one, but the per-utility maintenance of consecutive insertions — and,
// symmetrically, of consecutive deletions — is executed in one
// shard-parallel phase per run.
func (e *Engine) ApplyBatch(ops []Op) []Change {
	var out []Change
	e.ApplyBatchFunc(ops, func(_ Op, ch []Change) { out = append(out, ch...) })
	return out
}

// ApplyBatchFunc applies the operations in order, invoking emit once per
// effective operation with that operation's membership changes (sorted by
// utility id, then point id). Deletions of ids that are not live are
// skipped and produce no emit call, mirroring Delete's no-op contract.
// An insertion that replaces a live id emits the changes of the implicit
// deletion followed by those of the insertion, as a single group.
// Emitted change groups are caller-owned and stay valid indefinitely.
func (e *Engine) ApplyBatchFunc(ops []Op, emit func(op Op, changes []Change)) {
	sc := &e.scratch
	if sc.pendingIns == nil {
		sc.pendingIns = make(map[int]bool)
		sc.pendingDel = make(map[int]bool)
	}
	sc.insRun = sc.insRun[:0]
	sc.delRun = sc.delRun[:0]
	clear(sc.pendingIns)
	clear(sc.pendingDel)
	// At most one run is open at any moment: a delete op flushes the insert
	// run before queueing and vice versa, so liveness checks against the
	// tuple index only need to account for the run of their own kind.
	for _, op := range ops {
		if op.Delete {
			e.flushIns(emit)
			if e.tree.Contains(op.ID) && !sc.pendingDel[op.ID] {
				sc.delRun = append(sc.delRun, op)
				sc.pendingDel[op.ID] = true
			}
			continue
		}
		e.flushDel(emit)
		id := op.Point.ID
		if sc.pendingIns[id] {
			// The run already inserts this id; the new op must observe it
			// live and replace it.
			e.flushIns(emit)
		}
		if e.tree.Contains(id) {
			e.flushIns(emit)
			pre := e.deleteLive(id)
			sc.repl[0] = insOp{op: op}
			e.flushInsertRun(sc.repl[:1], func(o Op, ch []Change) {
				emit(o, mergeReplaceChanges(pre, ch))
			})
			sc.repl[0] = insOp{} // don't pin the tuple past the run
			continue
		}
		sc.insRun = append(sc.insRun, insOp{op: op})
		sc.pendingIns[id] = true
	}
	e.flushIns(emit)
	e.flushDel(emit)
}

// mergeReplaceChanges merges the implicit deletion's change group (pre) with
// the insertion's (ch) into one replace group, cancelling entries for any
// (utility, point) pair present in both: the old tuple's removal against the
// new tuple's addition under the same id (net: still a member), and a
// transiently admitted tuple's addition against its eviction (net: never a
// member). Without the cancellation a consumer that replays additions before
// removals — as FD-RMS Algorithm 3 requires for groups whose pairs are
// distinct — would apply the Added as a no-op and then strip the membership
// with the Removed, leaving its set system disagreeing with Φ. A pair in
// both groups always carries opposite signs (removals in pre all name the
// replaced id, additions in ch all name the inserted id), so presence in
// both IS the cancellation condition, and since each group arrives sorted by
// (utility, point) a two-pointer merge needs no maps and no re-sort. The
// output is a fresh slice, as every emitted group must be (caller-owned).
func mergeReplaceChanges(pre, ch []Change) []Change {
	if len(pre) == 0 {
		return ch
	}
	if len(ch) == 0 {
		return pre
	}
	less := func(a, b Change) bool {
		if a.UtilityID != b.UtilityID {
			return a.UtilityID < b.UtilityID
		}
		return a.PointID < b.PointID
	}
	out := make([]Change, 0, len(pre)+len(ch))
	i, j := 0, 0
	for i < len(pre) && j < len(ch) {
		switch {
		case pre[i].UtilityID == ch[j].UtilityID && pre[i].PointID == ch[j].PointID:
			i++ // same pair in both groups: opposite signs cancel
			j++
		case less(pre[i], ch[j]):
			out = append(out, pre[i])
			i++
		default:
			out = append(out, ch[j])
			j++
		}
	}
	out = append(out, pre[i:]...)
	return append(out, ch[j:]...)
}

// flushIns closes the open insert run, if any.
func (e *Engine) flushIns(emit func(op Op, changes []Change)) {
	sc := &e.scratch
	if len(sc.insRun) == 0 {
		return
	}
	e.flushInsertRun(sc.insRun, emit)
	clear(sc.insRun) // drop Point references so deleted tuples can be collected
	sc.insRun = sc.insRun[:0]
	clear(sc.pendingIns)
}

// flushDel closes the open delete run, if any.
func (e *Engine) flushDel(emit func(op Op, changes []Change)) {
	sc := &e.scratch
	if len(sc.delRun) == 0 {
		return
	}
	e.flushDeleteRun(sc.delRun, emit)
	sc.delRun = sc.delRun[:0]
	clear(sc.pendingDel)
}

// insOp is one queued insertion of the current run.
type insOp struct {
	op       Op
	affected []int // cone-tree candidates at run start (exact superset)
}

// insTask is one (operation, utility) pair assigned to a shard worker.
type insTask struct {
	pos int // index into the run
	uid int
}

// delTask is one utility assigned to a delete-phase worker, with the run
// positions whose tuples are in its Φ at run start. Positions that become
// relevant mid-run (a requery admits a tuple that a later operation
// deletes) are discovered by the worker itself.
type delTask struct {
	uid  int
	poss []int // ascending
}

// posHeap is a min-heap of run positions pending for one utility, stored in
// a plain slice with inline sift operations (no boxing).
type posHeap []int

// pushPos adds x to the min-heap.
func pushPos(h posHeap, x int) posHeap {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// popPos removes and returns the smallest position.
func popPos(h posHeap) (int, posHeap) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h[l] < h[m] {
			m = l
		}
		if r < n && h[r] < h[m] {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top, h
}

// phaseScratch returns the engine's reusable per-phase buffers, emptied.
func (e *Engine) phaseScratch() (tasks [][]insTask, results []shardResult) {
	sc := &e.scratch
	if sc.tasks == nil {
		sc.tasks = make([][]insTask, len(e.shards))
		sc.results = make([]shardResult, len(e.shards))
		sc.cursors = make([]int, len(e.shards))
	}
	for s := range sc.tasks {
		sc.tasks[s] = sc.tasks[s][:0]
		sc.results[s].changes = sc.results[s].changes[:0]
		sc.results[s].touched = sc.results[s].touched[:0]
		sc.results[s].processed = 0
		sc.results[s].requeries = 0
		sc.results[s].promotions = 0
		sc.results[s].busyNanos = 0
		sc.cursors[s] = 0
	}
	return sc.tasks, sc.results
}

// flushInsertRun applies a run of insertions of distinct, previously
// not-live ids and emits each operation's changes in order.
func (e *Engine) flushInsertRun(run []insOp, emit func(op Op, changes []Change)) {
	sc := &e.scratch
	t0 := e.now()
	// Probe the utility index before mutating any state: with insertions
	// only, thresholds are non-decreasing, so candidates computed at run
	// start are a superset of the exact affected set of every operation.
	// Candidate lists live in per-position buffers reused across runs.
	for len(sc.affected) < len(run) {
		sc.affected = append(sc.affected, nil)
	}
	for i := range run {
		sc.affected[i] = e.ui.AffectedInto(run[i].op.Point, sc.affected[i][:0])
		run[i].affected = sc.affected[i]
	}
	t1 := e.now()
	for i := range run {
		e.tree.Insert(run[i].op.Point)
	}
	e.InsertOps += len(run)
	e.metrics.mirrorOps(false, len(run))
	t2 := e.now()

	tasks, results := e.phaseScratch()
	total := 0
	for pos := range run {
		for _, uid := range run[pos].affected {
			s := e.shardFor(uid)
			tasks[s] = append(tasks[s], insTask{pos: pos, uid: uid})
			total++
		}
	}
	t3 := e.now()
	e.runPhase(false, run, nil, 0, nil, total)
	t4 := e.now()
	e.mergePhase(results)
	t5 := e.now()
	e.emitRunGroups(len(run), run, nil, results, emit)
	e.recordPhase(t0, t1, t2, t3, t4, t5, e.now())
}

// flushDeleteRun applies a run of deletions of distinct live ids and emits
// each operation's changes in order. The run is tombstoned up front inside
// a retain window of the tuple index; workers then replay the run per
// utility, requerying at each operation's epoch (see the package comment
// for why the run-start inverted index yields the complete task list).
func (e *Engine) flushDeleteRun(run []Op, emit func(op Op, changes []Change)) {
	t0 := e.now()
	_, results := e.phaseScratch()
	sc := &e.scratch
	if sc.dtasks == nil {
		sc.dtasks = make([][]delTask, len(e.shards))
	}
	if sc.runPos == nil {
		sc.runPos = make(map[int]int, len(run))
	}
	tasks := sc.dtasks
	runPos := sc.runPos
	for s := range tasks {
		tasks[s] = tasks[s][:0]
	}
	clear(runPos)
	for pos, op := range run {
		runPos[op.ID] = pos
	}

	// Group the run positions by affected utility, walking operations in
	// order so each task's position list is ascending. Task order (first
	// appearance over run order × sorted inverted-index entries) is
	// deterministic.
	if sc.didx == nil {
		sc.didx = make([]map[int]int, len(e.shards))
	}
	total := 0
	for s := range e.shards {
		sh := &e.shards[s]
		var idx map[int]int // uid -> slot in tasks[s], for runs touching a utility twice
		for pos, op := range run {
			for _, uid := range sh.sets[op.ID] {
				i := -1
				if idx != nil {
					if j, ok := idx[uid]; ok {
						i = j
					}
				}
				if i < 0 {
					i = len(tasks[s])
					// Grow within capacity where possible so recycled slots
					// keep their poss backing arrays across runs.
					if i < cap(tasks[s]) {
						tasks[s] = tasks[s][:i+1]
						tasks[s][i].uid = uid
						tasks[s][i].poss = tasks[s][i].poss[:0]
					} else {
						tasks[s] = append(tasks[s], delTask{uid: uid})
					}
					if len(run) > 1 {
						if idx == nil {
							if sc.didx[s] == nil {
								sc.didx[s] = make(map[int]int)
							}
							idx = sc.didx[s]
						}
						idx[uid] = i
					}
				}
				tasks[s][i].poss = append(tasks[s][i].poss, pos)
				total++
			}
		}
		if idx != nil {
			clear(idx)
		}
	}

	t1 := e.now()
	base := e.tree.BeginRetain()
	for _, op := range run {
		e.tree.Delete(op.ID)
	}
	e.DeleteOps += len(run)
	e.metrics.mirrorOps(true, len(run))
	t2 := e.now()

	e.runPhase(true, nil, run, base, runPos, total)
	e.tree.EndRetain()
	t3 := e.now()
	e.mergePhase(results)
	t4 := e.now()
	e.emitRunGroups(len(run), nil, run, results, emit)
	// Task grouping is the delete path's candidate discovery; there is no
	// separate build step after tombstoning, so that slot is passed empty.
	e.recordPhase(t0, t1, t2, t2, t3, t4, e.now())
}

// deleteLive removes a live tuple as a single-operation delete run and
// returns the changes sorted by utility then point id.
func (e *Engine) deleteLive(id int) []Change {
	var out []Change
	sc := &e.scratch
	sc.delRun = append(sc.delRun[:0], DeleteOp(id))
	e.flushDeleteRun(sc.delRun, func(_ Op, ch []Change) { out = ch })
	sc.delRun = sc.delRun[:0]
	return out
}

// runPhase executes one run's workers over every shard with a nonempty
// task list — concurrently when the engine is sharded and the phase is
// large enough to amortize the fan-out, inline otherwise. Output is
// identical either way: workers only touch their own shard and result
// slot. Exactly one of insRun/delRun carries the run; the flag-based
// dispatch (rather than callbacks) keeps the inline single-op path free of
// closure allocations. Parallel phases dispatch to the engine's persistent
// per-shard worker pool (see pool.go), started lazily on the first phase
// that goes parallel; after Close every phase runs inline.
func (e *Engine) runPhase(del bool, insRun []insOp, delRun []Op, base uint64, runPos map[int]int, total int) {
	active := 0
	for s := range e.shards {
		if e.phaseTasks(del, s) > 0 {
			active++
		}
	}
	if active <= 1 || total < parallelMinTasks || !e.ensurePool() {
		for s := range e.shards {
			if e.phaseTasks(del, s) > 0 {
				e.phaseWork(del, s, insRun, delRun, base, runPos)
			}
		}
		return
	}
	e.prof.Parallel++
	e.metrics.mirrorParallel()
	e.dispatch(phaseJob{del: del, insRun: insRun, delRun: delRun, base: base, runPos: runPos}, active)
}

// phaseTasks returns the task count of shard s for the phase kind.
func (e *Engine) phaseTasks(del bool, s int) int {
	if del {
		return len(e.scratch.dtasks[s])
	}
	return len(e.scratch.tasks[s])
}

// phaseWork runs shard s's worker for the phase kind. The busy-time stamp
// feeds the per-shard balance column of the phase profile; the clock hook
// must be safe for concurrent calls (see SetPhaseClock).
func (e *Engine) phaseWork(del bool, s int, insRun []insOp, delRun []Op, base uint64, runPos map[int]int) {
	sc := &e.scratch
	start := e.now()
	if del {
		e.deleteWorker(&e.shards[s], delRun, base, runPos, sc.dtasks[s], &sc.results[s])
	} else {
		e.insertWorker(&e.shards[s], insRun, sc.tasks[s], &sc.results[s])
	}
	if e.clock != nil {
		sc.results[s].busyNanos = e.now() - start
	}
}

// insertWorker replays the run's insertions for the utilities of one shard,
// in batch order, against shard-local state only.
func (e *Engine) insertWorker(sh *shard, run []insOp, tasks []insTask, res *shardResult) {
	for _, t := range tasks {
		st := sh.state(t.uid)
		p := run[t.pos].op.Point
		s := geom.Score(st.u, p)
		oldThresh := e.threshold(st)
		if s < oldThresh {
			continue // stale candidate: the threshold rose earlier in the run
		}
		if e.snap.armed {
			sh.snapTouch(t.uid, st) // preserve the pre-image for the armed capture
		}
		res.processed++

		// Repair the runner-up buffer incrementally: admit p when it
		// outranks the buffer minimum (or the buffer is below k). The gate
		// must also admit a tuple tying the minimum's score with a smaller
		// id — fresh tuple-index queries break score ties by smaller point
		// ID, and the maintained prefix has to match them bit for bit. A
		// tuple ranking below a shrunken buffer's minimum must NOT be
		// appended: earlier truncations may have dropped tuples that
		// outrank it, and only the relative order of surviving entries is
		// known to be preserved.
		if n := len(st.topk); n < e.k ||
			s > st.topk[n-1].Score ||
			(s == st.topk[n-1].Score && p.ID < st.topk[n-1].Point.ID) {
			st.topk = insertSorted(st.topk, kdtree.Result{Point: p, Score: s}, e.maxTopK())
		}
		newThresh := e.threshold(st)

		// p joins Φ(u): it scored >= oldThresh, and if the threshold rose, p
		// is in the new top-k so it clears the new one as well.
		st.phi[p.ID] = s
		sh.addToSet(p.ID, t.uid)
		res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: p.ID, Added: true}})

		// A raised threshold can evict old members — from Φ and from the
		// buffer tail, which must stay inside Φ so the delete path (which
		// visits only the utilities whose Φ holds the tuple) never leaves a
		// dead tuple buffered.
		if newThresh > oldThresh {
			//fdrms:orderinvariant each pid is visited once and evicted iff score < newThresh (a per-entry predicate); the emitted changes are re-sorted by (pos, utility, point) at the end of this worker before any caller sees them
			for pid, score := range st.phi {
				if score < newThresh {
					delete(st.phi, pid)
					sh.removeFromSet(pid, t.uid)
					res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: pid, Added: false}})
				}
			}
			st.topk = clampTail(st.topk, e.k, newThresh)
			res.touched = append(res.touched, t.uid)
		}
	}
	// Leave the shard's lane fully sorted by (pos, utility, point) — the
	// emit phase is a pure k-way merge of pre-sorted lanes, so this sort
	// (the only O(n log n) step) runs in parallel inside the workers instead
	// of serialized in the merge. Task order is pos-major but uids within a
	// position follow cone-tree probe order, and map-order eviction entries
	// need sorting anyway.
	sortTagged(res.changes)
}

// deleteWorker repairs one shard's utilities after a run of deletions,
// replaying each owned utility's relevant operations in op order. The
// tuple index is only queried — at each operation's epoch — never mutated,
// so workers may run concurrently while later tombstones are already
// recorded. All requeries reuse the shard's persistent query scratch.
//
// The positions pending for one utility start as the task's list (members
// at run start) and grow when a requery admits a tuple that a later run
// operation deletes — an admitted tuple's deletion position is always
// AFTER the admitting one, because the as-of query at an earlier epoch
// cannot see tuples already tombstoned. A min-heap keeps the replay in op
// order without scanning the whole run per utility.
func (e *Engine) deleteWorker(sh *shard, run []Op, base uint64, runPos map[int]int, tasks []delTask, res *shardResult) {
	pending := sh.pending
	for _, t := range tasks {
		st := sh.state(t.uid)
		// An ascending slice already satisfies the min-heap invariant.
		pending = append(pending[:0], t.poss...)
		for len(pending) > 0 {
			var pos int
			pos, pending = popPos(pending)
			op := run[pos]
			if _, in := st.phi[op.ID]; !in {
				continue // defensive: queued candidates are always members
			}
			if e.snap.armed {
				sh.snapTouch(t.uid, st) // preserve the pre-image for the armed capture
			}
			res.processed++
			delete(st.phi, op.ID)
			sh.removeFromSet(op.ID, t.uid)
			res.changes = append(res.changes, taggedChange{pos, Change{UtilityID: t.uid, PointID: op.ID, Added: false}})

			if rank := indexOf(st.topk, op.ID); rank >= 0 {
				oldThresh := e.threshold(st)
				st.topk = append(st.topk[:rank], st.topk[rank+1:]...)
				if rank >= e.k {
					continue // a buffered runner-up left: ω_k is untouched
				}
				// A top-k member left: a buffered runner-up takes its place
				// (the buffer is the exact live top-L, so the promotion is
				// exact). Only when deletions have exhausted the buffer is
				// it rebuilt — from Φ while it still holds k members (every
				// tuple scoring >= the threshold is a member, so no outside
				// tuple can beat one), and otherwise from the tuple index,
				// queried as of the epoch right after this operation's
				// tombstone so the replay observes exactly the database
				// state the sequential path would.
				asOf := base + uint64(pos) + 1
				if len(st.topk) < e.k {
					if len(st.phi) >= e.k {
						st.topk = e.topKFromPhi(st, asOf, st.topk[:0])
					} else {
						res.requeries++
						fresh := e.tree.TopKAtInto(st.u, e.maxTopK(), asOf, &sh.qs)
						st.topk = append(st.topk[:0], fresh...)
					}
				} else {
					res.promotions++ // the buffered runner-up filled the vacancy
				}
				newThresh := e.threshold(st)
				if newThresh < oldThresh {
					// ω_k dropped: admit every tuple now clearing the
					// threshold.
					for _, r := range e.tree.AtLeastAtInto(st.u, newThresh, asOf, &sh.qs) {
						if _, in := st.phi[r.Point.ID]; !in {
							st.phi[r.Point.ID] = r.Score
							sh.addToSet(r.Point.ID, t.uid)
							res.changes = append(res.changes, taggedChange{pos, Change{UtilityID: t.uid, PointID: r.Point.ID, Added: true}})
							if dp, ok := runPos[r.Point.ID]; ok && dp > pos {
								pending = pushPos(pending, dp)
							}
						}
					}
					res.touched = append(res.touched, t.uid)
				}
				// An index rebuild can buffer sub-threshold tuples; clamp
				// so the buffer stays inside Φ (members all score >= the
				// threshold, so none are lost).
				st.topk = clampTail(st.topk, e.k, newThresh)
			}
		}
	}
	sh.pending = pending[:0]
	// Replay order is utility-major; the emit phase merges pre-sorted
	// lanes, so leave this shard's lane fully ordered by (pos, utility,
	// point) — the sort runs inside the parallel phase, off the serial
	// merge path.
	sortTagged(res.changes)
}

// sortTagged orders one worker's change lane by (run position, utility id,
// point id) — the global emission order restricted to this shard. A single
// operation never produces two changes for the same (utility, point) pair,
// so the key is unique within a lane and the order total.
func sortTagged(chs []taggedChange) {
	slices.SortFunc(chs, func(a, b taggedChange) int {
		if c := cmp.Compare(a.pos, b.pos); c != 0 {
			return c
		}
		if c := cmp.Compare(a.ch.UtilityID, b.ch.UtilityID); c != 0 {
			return c
		}
		return cmp.Compare(a.ch.PointID, b.ch.PointID)
	})
}

// emitRunGroups groups the workers' tagged changes per operation and emits
// them in run order. Exactly one of insRun/delRun carries the run's
// operations. Each shard's lane arrives FULLY sorted by (pos, utility id,
// point id) — the workers sort in parallel before handing off — so the
// serial tail of the run is a pure k-way tournament merge: O(total · log
// shards) comparisons through a loser tree instead of the former
// concat-then-sort-per-group, whose O(total · log total) comparisons all
// ran on one core after the fan-out had finished. Cross-lane keys never
// tie (shards own disjoint utility ids), so the merge output is exactly
// the sequential emission order, bit for bit.
//
// All groups are carved out of ONE freshly allocated backing slice —
// emitted groups are caller-owned and may be retained indefinitely, so
// they cannot live in engine scratch — and materialized before the first
// emit call so callbacks see the scratch buffers released.
func (e *Engine) emitRunGroups(n int, insRun []insOp, delRun []Op, results []shardResult, emit func(op Op, changes []Change)) {
	sc := &e.scratch
	total := 0
	for s := range results {
		total += len(results[s].changes)
	}
	e.Changes += total
	e.metrics.mirrorChanges(total)
	var backing []Change
	if total > 0 {
		backing = make([]Change, 0, total)
	}
	offs := sc.groupOffs[:0]
	backing, offs = e.mergeLanes(backing, offs, n, total, results)
	sc.groupOffs = offs
	prev := 0
	for pos := 0; pos < n; pos++ {
		end := offs[pos]
		var group []Change
		if end > prev {
			group = backing[prev:end:end]
		}
		op := Op{}
		if insRun != nil {
			op = insRun[pos].op
		} else {
			op = delRun[pos]
		}
		emit(op, group)
		prev = end
	}
}

// laneLess reports whether lane a's current head precedes lane b's in the
// emission order (pos, utility, point). An exhausted lane — cursor past its
// end, or a padding lane beyond the real shard count — sorts after
// everything; two exhausted lanes tie-break on index so the order stays
// total (live heads never tie across lanes: shards own disjoint uids).
func laneLess(results []shardResult, cursors []int, a, b int) bool {
	ae := a >= len(results) || cursors[a] >= len(results[a].changes)
	be := b >= len(results) || cursors[b] >= len(results[b].changes)
	if ae || be {
		return !ae && be || ae == be && a < b
	}
	x, y := &results[a].changes[cursors[a]], &results[b].changes[cursors[b]]
	if x.pos != y.pos {
		return x.pos < y.pos
	}
	if x.ch.UtilityID != y.ch.UtilityID {
		return x.ch.UtilityID < y.ch.UtilityID
	}
	return x.ch.PointID < y.ch.PointID
}

// mergeLanes drains the shards' sorted change lanes into backing through a
// loser tree, recording each run position's end offset in offs (one entry
// per position, as emitRunGroups expects). The tree holds lane indices:
// leaves are lanes (padded to a power of two with permanently exhausted
// ones), each internal node remembers the LOSER of its match, and the
// overall winner is kept aside — so replacing the winner's head replays
// exactly one root-to-leaf path of log₂(lanes) matches, each against a
// precomputed loser, instead of a full scan per element.
func (e *Engine) mergeLanes(backing []Change, offs []int, n, total int, results []shardResult) ([]Change, []int) {
	sc := &e.scratch
	cursors := sc.cursors
	cur := 0
	if total > 0 && len(results) == 1 {
		// Single lane (one shard, or an inline run): already in emission
		// order, no tournament needed.
		for _, tc := range results[0].changes {
			for cur < tc.pos {
				offs = append(offs, len(backing))
				cur++
			}
			backing = append(backing, tc.ch)
		}
		cursors[0] = len(results[0].changes)
	} else if total > 0 {
		width := 1
		for width < len(results) {
			width <<= 1
		}
		// Build a winner tree bottom-up in win (leaves at win[width:]),
		// then derive each node's loser: of the two child winners, the one
		// that is not the node's winner — arithmetic, since the node's
		// winner IS one of the two.
		win := sc.mergeWin
		if cap(win) < 2*width {
			win = make([]int, 2*width)
		}
		win = win[:2*width]
		loser := sc.mergeLoser
		if cap(loser) < width {
			loser = make([]int, width)
		}
		loser = loser[:width]
		for s := 0; s < width; s++ {
			win[width+s] = s
		}
		for i := width - 1; i >= 1; i-- {
			l, r := win[2*i], win[2*i+1]
			if laneLess(results, cursors, l, r) {
				win[i] = l
			} else {
				win[i] = r
			}
			loser[i] = l + r - win[i]
		}
		sc.mergeWin, sc.mergeLoser = win, loser
		winner := win[1]
		for emitted := 0; emitted < total; emitted++ {
			tc := &results[winner].changes[cursors[winner]]
			for cur < tc.pos {
				offs = append(offs, len(backing))
				cur++
			}
			backing = append(backing, tc.ch)
			cursors[winner]++
			// Replay the winner's path: at each ancestor the new head plays
			// the stored loser; the match loser stays, the winner moves up.
			for t := (width + winner) / 2; t >= 1; t /= 2 {
				if laneLess(results, cursors, loser[t], winner) {
					loser[t], winner = winner, loser[t]
				}
			}
		}
	}
	for cur < n {
		offs = append(offs, len(backing))
		cur++
	}
	return backing, offs
}

// mergePhase folds the workers' counters into the engine and repairs the
// cone tree's thresholds, once per touched utility (the cone tree is not
// safe for concurrent mutation, so this runs after the parallel phase).
func (e *Engine) mergePhase(results []shardResult) {
	var affected, requeries, promotions int
	var busy int64
	for s := range results {
		affected += results[s].processed
		requeries += results[s].requeries
		promotions += results[s].promotions
		busy += results[s].busyNanos
		if e.clock != nil && e.prof.Busy != nil {
			e.prof.Busy[s] += results[s].busyNanos
		}
		for _, uid := range results[s].touched {
			tau := e.threshold(e.stateOf(uid))
			if cur, ok := e.ui.Threshold(uid); ok && tau != cur {
				e.ui.SetThreshold(uid, tau)
			}
		}
	}
	e.AffectedTotal += affected
	e.Requeries += requeries
	e.Promotions += promotions
	e.metrics.mirrorMerge(affected, requeries, promotions, busy)
}
