// Batched, shard-parallel update path of the engine.
//
// ApplyBatch segments an operation sequence into runs of pure insertions
// (distinct, not-yet-live ids) separated by deletions. For an insert run
// the cone tree is probed once per tuple against the thresholds at run
// start — a superset of each operation's exact affected set, because
// thresholds only rise while inserting — then the per-utility Φ maintenance
// of the whole run fans out to the shard workers in a single parallel
// phase. Each worker replays its utilities' operations in batch order
// against shard-local state, so the final Φ, the change lists, and every
// counter match the sequential path exactly; stale cone-tree candidates are
// discarded by an exact threshold re-check inside the worker. Deletions
// touch few utilities (only those whose Φ contains the tuple) and are
// processed one at a time, with the same shard fan-out for the requery
// work.
//
// The tuple index is mutated only between parallel phases; workers issue
// read-only queries against it. Cone-tree threshold repairs are deferred to
// the end of each phase and applied once per touched utility, which both
// keeps the workers lock-free and collapses up to |run| path repairs into
// one.
package topk

import (
	"sort"
	"sync"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Op is one database mutation for ApplyBatch: the insertion of Point when
// Delete is false, or the deletion of tuple ID when Delete is true.
type Op struct {
	Point  geom.Point // tuple to insert (Delete == false)
	ID     int        // tuple to delete (Delete == true)
	Delete bool
}

// InsertOp returns the Op inserting p.
func InsertOp(p geom.Point) Op { return Op{Point: p} }

// DeleteOp returns the Op deleting tuple id.
func DeleteOp(id int) Op { return Op{ID: id, Delete: true} }

// parallelMinTasks is the per-phase task count below which the shard
// fan-out is not worth the goroutine overhead and the work runs inline.
const parallelMinTasks = 32

// taggedChange is a Change tagged with the position of the operation that
// produced it inside the current insert run.
type taggedChange struct {
	pos int
	ch  Change
}

// shardResult collects one worker's output for a parallel phase.
type shardResult struct {
	changes   []taggedChange
	touched   []int // utilities whose threshold changed (dupes allowed)
	processed int   // exact affected-utility count (insert phases)
	requeries int   // fresh top-k queries issued (delete phases)
}

// ApplyBatch applies the operations in order and returns the concatenated
// membership changes. The change order is deterministic: operation order,
// then utility id, then point id. Equivalent to calling Insert/Delete one
// by one, but the per-utility maintenance of consecutive insertions is
// executed in one shard-parallel phase.
func (e *Engine) ApplyBatch(ops []Op) []Change {
	var out []Change
	e.ApplyBatchFunc(ops, func(_ Op, ch []Change) { out = append(out, ch...) })
	return out
}

// ApplyBatchFunc applies the operations in order, invoking emit once per
// effective operation with that operation's membership changes (sorted by
// utility id, then point id). Deletions of ids that are not live are
// skipped and produce no emit call, mirroring Delete's no-op contract.
// An insertion that replaces a live id emits the changes of the implicit
// deletion followed by those of the insertion, as a single group.
func (e *Engine) ApplyBatchFunc(ops []Op, emit func(op Op, changes []Change)) {
	run := make([]insOp, 0, len(ops))
	pending := make(map[int]bool) // ids inserted by the current run
	flush := func() {
		if len(run) == 0 {
			return
		}
		e.flushInsertRun(run, emit)
		run = run[:0]
		clear(pending)
	}
	for _, op := range ops {
		if op.Delete {
			flush()
			if e.tree.Contains(op.ID) {
				emit(op, e.deleteLive(op.ID))
			}
			continue
		}
		id := op.Point.ID
		if pending[id] {
			// The run already inserts this id; the new op must observe it
			// live and replace it.
			flush()
		}
		if e.tree.Contains(id) {
			flush()
			pre := e.deleteLive(id)
			e.flushInsertRun([]insOp{{op: op}}, func(o Op, ch []Change) {
				emit(o, append(pre, ch...))
			})
			continue
		}
		run = append(run, insOp{op: op})
		pending[id] = true
	}
	flush()
}

// insOp is one queued insertion of the current run.
type insOp struct {
	op       Op
	affected []int // cone-tree candidates at run start (exact superset)
}

// insTask is one (operation, utility) pair assigned to a shard worker.
type insTask struct {
	pos int // index into the run
	uid int
}

// phaseScratch returns the engine's reusable per-phase buffers, emptied.
func (e *Engine) phaseScratch() (tasks [][]insTask, results []shardResult) {
	sc := &e.scratch
	if sc.tasks == nil {
		sc.tasks = make([][]insTask, len(e.shards))
		sc.results = make([]shardResult, len(e.shards))
		sc.cursors = make([]int, len(e.shards))
	}
	for s := range sc.tasks {
		sc.tasks[s] = sc.tasks[s][:0]
		sc.results[s].changes = sc.results[s].changes[:0]
		sc.results[s].touched = sc.results[s].touched[:0]
		sc.results[s].processed = 0
		sc.results[s].requeries = 0
		sc.cursors[s] = 0
	}
	return sc.tasks, sc.results
}

// flushInsertRun applies a run of insertions of distinct, previously
// not-live ids and emits each operation's changes in order.
func (e *Engine) flushInsertRun(run []insOp, emit func(op Op, changes []Change)) {
	// Probe the utility index before mutating any state: with insertions
	// only, thresholds are non-decreasing, so candidates computed at run
	// start are a superset of the exact affected set of every operation.
	for i := range run {
		run[i].affected = e.ui.Affected(run[i].op.Point)
	}
	for i := range run {
		e.tree.Insert(run[i].op.Point)
	}
	e.InsertOps += len(run)

	tasks, results := e.phaseScratch()
	total := 0
	for pos := range run {
		for _, uid := range run[pos].affected {
			s := e.shardFor(uid)
			tasks[s] = append(tasks[s], insTask{pos: pos, uid: uid})
			total++
		}
	}
	e.runShards(total, tasks, func(s int) {
		e.insertWorker(&e.shards[s], run, tasks[s], &results[s])
	})
	e.mergePhase(results)

	// Group the tagged changes per operation. Each worker emitted its
	// changes in run order, so a cursor per shard suffices. All groups are
	// materialized before the first emit call so callbacks see the scratch
	// buffers released (groups copy the Change values out).
	cursors := e.scratch.cursors
	var groups [][]Change
	if len(run) > 1 {
		groups = make([][]Change, 0, len(run))
	}
	for pos := range run {
		var group []Change
		for s := range results {
			chs := results[s].changes
			for cursors[s] < len(chs) && chs[cursors[s]].pos == pos {
				group = append(group, chs[cursors[s]].ch)
				cursors[s]++
			}
		}
		sortChanges(group)
		if len(run) == 1 {
			emit(run[0].op, group)
			return
		}
		groups = append(groups, group)
	}
	for pos := range run {
		emit(run[pos].op, groups[pos])
	}
}

// insertWorker replays the run's insertions for the utilities of one shard,
// in batch order, against shard-local state only.
func (e *Engine) insertWorker(sh *shard, run []insOp, tasks []insTask, res *shardResult) {
	for _, t := range tasks {
		st := sh.state(t.uid)
		p := run[t.pos].op.Point
		s := geom.Score(st.u, p)
		oldThresh := e.threshold(st)
		if s < oldThresh {
			continue // stale candidate: the threshold rose earlier in the run
		}
		res.processed++

		// Repair the exact top-k incrementally.
		if len(st.topk) < e.k || s > st.topk[len(st.topk)-1].Score {
			st.topk = insertSorted(st.topk, kdtree.Result{Point: p, Score: s}, e.k)
		}
		newThresh := e.threshold(st)

		// p joins Φ(u): it scored >= oldThresh, and if the threshold rose, p
		// is in the new top-k so it clears the new one as well.
		st.phi[p.ID] = s
		sh.addToSet(p.ID, t.uid)
		res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: p.ID, Added: true}})

		// A raised threshold can evict old members.
		if newThresh > oldThresh {
			for pid, score := range st.phi {
				if score < newThresh {
					delete(st.phi, pid)
					sh.removeFromSet(pid, t.uid)
					res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: pid, Added: false}})
				}
			}
			res.touched = append(res.touched, t.uid)
		}
	}
}

// deleteLive removes a live tuple, fanning the per-utility repair out to
// the shards, and returns the changes sorted by utility then point id.
func (e *Engine) deleteLive(id int) []Change {
	tasks, results := e.phaseScratch()
	total := 0
	for s := range e.shards {
		// Only utilities whose Φ contains the tuple can change: the exact
		// top-k is a subset of Φ, so for every other utility both ω_k and
		// the membership set survive the deletion untouched.
		for _, uid := range e.shards[s].sets[id] {
			tasks[s] = append(tasks[s], insTask{uid: uid})
			total++
		}
	}
	e.tree.Delete(id)
	e.DeleteOps++
	e.AffectedTotal += total

	e.runShards(total, tasks, func(s int) {
		e.deleteWorker(&e.shards[s], id, tasks[s], &results[s])
	})
	e.mergePhase(results)

	var out []Change
	for s := range results {
		for _, tc := range results[s].changes {
			out = append(out, tc.ch)
		}
	}
	sortChanges(out)
	return out
}

// deleteWorker repairs one shard's utilities after the deletion of tuple
// id. The tuple index is only queried, never mutated, so workers may run
// concurrently.
func (e *Engine) deleteWorker(sh *shard, id int, tasks []insTask, res *shardResult) {
	for _, t := range tasks {
		st := sh.state(t.uid)
		delete(st.phi, id)
		sh.removeFromSet(id, t.uid)
		res.changes = append(res.changes, taggedChange{0, Change{UtilityID: t.uid, PointID: id, Added: false}})

		if indexOf(st.topk, id) >= 0 {
			// A top-k member left: ω_k can drop, which can admit new members.
			oldThresh := e.threshold(st)
			res.requeries++
			st.topk = e.tree.TopK(st.u, e.k)
			newThresh := e.threshold(st)
			if newThresh < oldThresh {
				for _, r := range e.tree.AtLeast(st.u, newThresh) {
					if _, in := st.phi[r.Point.ID]; !in {
						st.phi[r.Point.ID] = r.Score
						sh.addToSet(r.Point.ID, t.uid)
						res.changes = append(res.changes, taggedChange{0, Change{UtilityID: t.uid, PointID: r.Point.ID, Added: true}})
					}
				}
				res.touched = append(res.touched, t.uid)
			}
		}
	}
}

// runShards executes work(s) for every shard s with a nonempty task list —
// concurrently when the engine is sharded and the phase is large enough to
// amortize the fan-out, inline otherwise. Output is identical either way:
// workers only touch their own shard and result slot.
func (e *Engine) runShards(total int, tasks [][]insTask, work func(s int)) {
	active := 0
	for s := range tasks {
		if len(tasks[s]) > 0 {
			active++
		}
	}
	if active <= 1 || total < parallelMinTasks {
		for s := range tasks {
			if len(tasks[s]) > 0 {
				work(s)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for s := range tasks {
		if len(tasks[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			work(s)
		}(s)
	}
	wg.Wait()
}

// mergePhase folds the workers' counters into the engine and repairs the
// cone tree's thresholds, once per touched utility (the cone tree is not
// safe for concurrent mutation, so this runs after the parallel phase).
func (e *Engine) mergePhase(results []shardResult) {
	for s := range results {
		e.AffectedTotal += results[s].processed
		e.Requeries += results[s].requeries
		for _, uid := range results[s].touched {
			tau := e.threshold(e.stateOf(uid))
			if cur, ok := e.ui.Threshold(uid); ok && tau != cur {
				e.ui.SetThreshold(uid, tau)
			}
		}
	}
}

// sortChanges orders a change list by utility id, then point id. A single
// operation never produces two changes for the same (utility, point) pair,
// so the order is total.
func sortChanges(chs []Change) {
	sort.Slice(chs, func(i, j int) bool {
		if chs[i].UtilityID != chs[j].UtilityID {
			return chs[i].UtilityID < chs[j].UtilityID
		}
		return chs[i].PointID < chs[j].PointID
	})
}
