// Batched, shard-parallel update path of the engine.
//
// ApplyBatch segments an operation sequence into maximal runs of pure
// insertions (distinct, not-yet-live ids) and pure deletions (distinct live
// ids); each run executes its per-utility Φ maintenance in ONE parallel
// phase across the utility shards, and every worker replays its utilities'
// operations in batch order against shard-local state, so the final Φ, the
// change lists, and every counter match the sequential path exactly.
//
// Insert runs: the cone tree is probed once per tuple against the
// thresholds at run start — a superset of each operation's exact affected
// set, because thresholds only rise while inserting — and stale candidates
// are discarded by an exact threshold re-check inside the worker.
//
// Delete runs: the whole run is tombstoned up front inside a tuple-index
// retain window (epoch-versioned tombstones, see package kdtree), and each
// shard's task list is the union of the inverted index entries S(id) over
// the run's ids at run start. That union is exactly the set of utilities
// any replay can touch: deleting a tuple outside Φ(u) changes neither
// ω_k(u) nor the membership of u (the exact top-k is a subset of Φ), so a
// utility's state first changes at the first run operation whose tuple is
// in its current Φ — which the inverted index knows before the run starts.
// Tuples admitted into Φ(u) by earlier operations of the same run and
// deleted again later are handled inside the worker, which scans the whole
// run in op order against its own Φ and issues requeries at each
// operation's epoch, observing exactly the database state the sequential
// path would.
//
// The tuple index is mutated only between parallel phases; workers issue
// read-only (as-of-epoch) queries against it. Cone-tree threshold repairs
// are deferred to the end of each phase and applied once per touched
// utility, which both keeps the workers lock-free and collapses up to |run|
// path repairs into one.
package topk

import (
	"container/heap"
	"sort"
	"sync"

	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Op is one database mutation for ApplyBatch: the insertion of Point when
// Delete is false, or the deletion of tuple ID when Delete is true.
type Op struct {
	Point  geom.Point // tuple to insert (Delete == false)
	ID     int        // tuple to delete (Delete == true)
	Delete bool
}

// InsertOp returns the Op inserting p.
func InsertOp(p geom.Point) Op { return Op{Point: p} }

// DeleteOp returns the Op deleting tuple id.
func DeleteOp(id int) Op { return Op{ID: id, Delete: true} }

// parallelMinTasks is the per-phase task count below which the shard
// fan-out is not worth the goroutine overhead and the work runs inline.
const parallelMinTasks = 32

// taggedChange is a Change tagged with the position of the operation that
// produced it inside the current run.
type taggedChange struct {
	pos int
	ch  Change
}

// shardResult collects one worker's output for a parallel phase.
type shardResult struct {
	changes   []taggedChange
	touched   []int // utilities whose threshold changed (dupes allowed)
	processed int   // exact affected-utility count, summed over operations
	requeries int   // fresh tuple-index top-k queries issued (delete phases)
}

// ApplyBatch applies the operations in order and returns the concatenated
// membership changes. The change order is deterministic: operation order,
// then utility id, then point id. Equivalent to calling Insert/Delete one
// by one, but the per-utility maintenance of consecutive insertions — and,
// symmetrically, of consecutive deletions — is executed in one
// shard-parallel phase per run.
func (e *Engine) ApplyBatch(ops []Op) []Change {
	var out []Change
	e.ApplyBatchFunc(ops, func(_ Op, ch []Change) { out = append(out, ch...) })
	return out
}

// ApplyBatchFunc applies the operations in order, invoking emit once per
// effective operation with that operation's membership changes (sorted by
// utility id, then point id). Deletions of ids that are not live are
// skipped and produce no emit call, mirroring Delete's no-op contract.
// An insertion that replaces a live id emits the changes of the implicit
// deletion followed by those of the insertion, as a single group.
func (e *Engine) ApplyBatchFunc(ops []Op, emit func(op Op, changes []Change)) {
	insRun := make([]insOp, 0, len(ops))
	var delRun []Op
	pendingIns := make(map[int]bool) // ids inserted by the current insert run
	pendingDel := make(map[int]bool) // ids deleted by the current delete run
	flushIns := func() {
		if len(insRun) == 0 {
			return
		}
		e.flushInsertRun(insRun, emit)
		insRun = insRun[:0]
		clear(pendingIns)
	}
	flushDel := func() {
		if len(delRun) == 0 {
			return
		}
		e.flushDeleteRun(delRun, emit)
		delRun = delRun[:0]
		clear(pendingDel)
	}
	// At most one run is open at any moment: a delete op flushes the insert
	// run before queueing and vice versa, so liveness checks against the
	// tuple index only need to account for the run of their own kind.
	for _, op := range ops {
		if op.Delete {
			flushIns()
			if e.tree.Contains(op.ID) && !pendingDel[op.ID] {
				delRun = append(delRun, op)
				pendingDel[op.ID] = true
			}
			continue
		}
		flushDel()
		id := op.Point.ID
		if pendingIns[id] {
			// The run already inserts this id; the new op must observe it
			// live and replace it.
			flushIns()
		}
		if e.tree.Contains(id) {
			flushIns()
			pre := e.deleteLive(id)
			e.flushInsertRun([]insOp{{op: op}}, func(o Op, ch []Change) {
				emit(o, append(pre, ch...))
			})
			continue
		}
		insRun = append(insRun, insOp{op: op})
		pendingIns[id] = true
	}
	flushIns()
	flushDel()
}

// insOp is one queued insertion of the current run.
type insOp struct {
	op       Op
	affected []int // cone-tree candidates at run start (exact superset)
}

// insTask is one (operation, utility) pair assigned to a shard worker.
type insTask struct {
	pos int // index into the run
	uid int
}

// delTask is one utility assigned to a delete-phase worker, with the run
// positions whose tuples are in its Φ at run start. Positions that become
// relevant mid-run (a requery admits a tuple that a later operation
// deletes) are discovered by the worker itself.
type delTask struct {
	uid  int
	poss []int // ascending
}

// posHeap is a min-heap of run positions pending for one utility.
type posHeap []int

func (h posHeap) Len() int            { return len(h) }
func (h posHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h posHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *posHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *posHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// phaseScratch returns the engine's reusable per-phase buffers, emptied.
func (e *Engine) phaseScratch() (tasks [][]insTask, results []shardResult) {
	sc := &e.scratch
	if sc.tasks == nil {
		sc.tasks = make([][]insTask, len(e.shards))
		sc.results = make([]shardResult, len(e.shards))
		sc.cursors = make([]int, len(e.shards))
	}
	for s := range sc.tasks {
		sc.tasks[s] = sc.tasks[s][:0]
		sc.results[s].changes = sc.results[s].changes[:0]
		sc.results[s].touched = sc.results[s].touched[:0]
		sc.results[s].processed = 0
		sc.results[s].requeries = 0
		sc.cursors[s] = 0
	}
	return sc.tasks, sc.results
}

// flushInsertRun applies a run of insertions of distinct, previously
// not-live ids and emits each operation's changes in order.
func (e *Engine) flushInsertRun(run []insOp, emit func(op Op, changes []Change)) {
	// Probe the utility index before mutating any state: with insertions
	// only, thresholds are non-decreasing, so candidates computed at run
	// start are a superset of the exact affected set of every operation.
	for i := range run {
		run[i].affected = e.ui.Affected(run[i].op.Point)
	}
	for i := range run {
		e.tree.Insert(run[i].op.Point)
	}
	e.InsertOps += len(run)

	tasks, results := e.phaseScratch()
	total := 0
	for pos := range run {
		for _, uid := range run[pos].affected {
			s := e.shardFor(uid)
			tasks[s] = append(tasks[s], insTask{pos: pos, uid: uid})
			total++
		}
	}
	e.runShards(total, func(s int) bool { return len(tasks[s]) > 0 }, func(s int) {
		e.insertWorker(&e.shards[s], run, tasks[s], &results[s])
	})
	e.mergePhase(results)
	e.emitRunGroups(len(run), results, func(i int) Op { return run[i].op }, emit)
}

// flushDeleteRun applies a run of deletions of distinct live ids and emits
// each operation's changes in order. The run is tombstoned up front inside
// a retain window of the tuple index; workers then replay the run per
// utility, requerying at each operation's epoch (see the package comment
// for why the run-start inverted index yields the complete task list).
func (e *Engine) flushDeleteRun(run []Op, emit func(op Op, changes []Change)) {
	_, results := e.phaseScratch()
	sc := &e.scratch
	if sc.dtasks == nil {
		sc.dtasks = make([][]delTask, len(e.shards))
	}
	if sc.runPos == nil {
		sc.runPos = make(map[int]int, len(run))
	}
	tasks := sc.dtasks
	runPos := sc.runPos
	for s := range tasks {
		tasks[s] = tasks[s][:0]
	}
	clear(runPos)
	for pos, op := range run {
		runPos[op.ID] = pos
	}

	// Group the run positions by affected utility, walking operations in
	// order so each task's position list is ascending. Task order (first
	// appearance over run order × sorted inverted-index entries) is
	// deterministic.
	total := 0
	for s := range e.shards {
		sh := &e.shards[s]
		var idx map[int]int // uid -> slot in tasks[s], for runs touching a utility twice
		for pos, op := range run {
			for _, uid := range sh.sets[op.ID] {
				i := -1
				if idx != nil {
					if j, ok := idx[uid]; ok {
						i = j
					}
				}
				if i < 0 {
					i = len(tasks[s])
					tasks[s] = append(tasks[s], delTask{uid: uid})
					if len(run) > 1 {
						if idx == nil {
							idx = make(map[int]int)
						}
						idx[uid] = i
					}
				}
				tasks[s][i].poss = append(tasks[s][i].poss, pos)
				total++
			}
		}
	}

	base := e.tree.BeginRetain()
	for _, op := range run {
		e.tree.Delete(op.ID)
	}
	e.DeleteOps += len(run)

	e.runShards(total, func(s int) bool { return len(tasks[s]) > 0 }, func(s int) {
		e.deleteWorker(&e.shards[s], run, base, runPos, tasks[s], &results[s])
	})
	e.tree.EndRetain()
	e.mergePhase(results)
	e.emitRunGroups(len(run), results, func(i int) Op { return run[i] }, emit)
}

// deleteLive removes a live tuple as a single-operation delete run and
// returns the changes sorted by utility then point id.
func (e *Engine) deleteLive(id int) []Change {
	var out []Change
	e.flushDeleteRun([]Op{DeleteOp(id)}, func(_ Op, ch []Change) { out = ch })
	return out
}

// insertWorker replays the run's insertions for the utilities of one shard,
// in batch order, against shard-local state only.
func (e *Engine) insertWorker(sh *shard, run []insOp, tasks []insTask, res *shardResult) {
	for _, t := range tasks {
		st := sh.state(t.uid)
		p := run[t.pos].op.Point
		s := geom.Score(st.u, p)
		oldThresh := e.threshold(st)
		if s < oldThresh {
			continue // stale candidate: the threshold rose earlier in the run
		}
		res.processed++

		// Repair the runner-up buffer incrementally: admit p when it
		// outranks the buffer minimum (or the buffer is below k). The gate
		// must also admit a tuple tying the minimum's score with a smaller
		// id — fresh tuple-index queries break score ties by smaller point
		// ID, and the maintained prefix has to match them bit for bit. A
		// tuple ranking below a shrunken buffer's minimum must NOT be
		// appended: earlier truncations may have dropped tuples that
		// outrank it, and only the relative order of surviving entries is
		// known to be preserved.
		if n := len(st.topk); n < e.k ||
			s > st.topk[n-1].Score ||
			(s == st.topk[n-1].Score && p.ID < st.topk[n-1].Point.ID) {
			st.topk = insertSorted(st.topk, kdtree.Result{Point: p, Score: s}, e.maxTopK())
		}
		newThresh := e.threshold(st)

		// p joins Φ(u): it scored >= oldThresh, and if the threshold rose, p
		// is in the new top-k so it clears the new one as well.
		st.phi[p.ID] = s
		sh.addToSet(p.ID, t.uid)
		res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: p.ID, Added: true}})

		// A raised threshold can evict old members — from Φ and from the
		// buffer tail, which must stay inside Φ so the delete path (which
		// visits only the utilities whose Φ holds the tuple) never leaves a
		// dead tuple buffered.
		if newThresh > oldThresh {
			for pid, score := range st.phi {
				if score < newThresh {
					delete(st.phi, pid)
					sh.removeFromSet(pid, t.uid)
					res.changes = append(res.changes, taggedChange{t.pos, Change{UtilityID: t.uid, PointID: pid, Added: false}})
				}
			}
			st.topk = clampTail(st.topk, e.k, newThresh)
			res.touched = append(res.touched, t.uid)
		}
	}
}

// deleteWorker repairs one shard's utilities after a run of deletions,
// replaying each owned utility's relevant operations in op order. The
// tuple index is only queried — at each operation's epoch — never mutated,
// so workers may run concurrently while later tombstones are already
// recorded.
//
// The positions pending for one utility start as the task's list (members
// at run start) and grow when a requery admits a tuple that a later run
// operation deletes — an admitted tuple's deletion position is always
// AFTER the admitting one, because the as-of query at an earlier epoch
// cannot see tuples already tombstoned. A min-heap keeps the replay in op
// order without scanning the whole run per utility.
func (e *Engine) deleteWorker(sh *shard, run []Op, base uint64, runPos map[int]int, tasks []delTask, res *shardResult) {
	var pending posHeap
	for _, t := range tasks {
		st := sh.state(t.uid)
		// An ascending slice already satisfies the min-heap invariant.
		pending = append(pending[:0], t.poss...)
		for len(pending) > 0 {
			pos := heap.Pop(&pending).(int)
			op := run[pos]
			if _, in := st.phi[op.ID]; !in {
				continue // defensive: queued candidates are always members
			}
			res.processed++
			delete(st.phi, op.ID)
			sh.removeFromSet(op.ID, t.uid)
			res.changes = append(res.changes, taggedChange{pos, Change{UtilityID: t.uid, PointID: op.ID, Added: false}})

			if rank := indexOf(st.topk, op.ID); rank >= 0 {
				oldThresh := e.threshold(st)
				st.topk = append(st.topk[:rank], st.topk[rank+1:]...)
				if rank >= e.k {
					continue // a buffered runner-up left: ω_k is untouched
				}
				// A top-k member left: a buffered runner-up takes its place
				// (the buffer is the exact live top-L, so the promotion is
				// exact). Only when deletions have exhausted the buffer is
				// it rebuilt — from Φ while it still holds k members (every
				// tuple scoring >= the threshold is a member, so no outside
				// tuple can beat one), and otherwise from the tuple index,
				// queried as of the epoch right after this operation's
				// tombstone so the replay observes exactly the database
				// state the sequential path would.
				asOf := base + uint64(pos) + 1
				if len(st.topk) < e.k {
					if len(st.phi) >= e.k {
						st.topk = e.topKFromPhi(st, asOf, st.topk[:0])
					} else {
						res.requeries++
						st.topk = e.tree.TopKAt(st.u, e.maxTopK(), asOf)
					}
				}
				newThresh := e.threshold(st)
				if newThresh < oldThresh {
					// ω_k dropped: admit every tuple now clearing the
					// threshold.
					for _, r := range e.tree.AtLeastAt(st.u, newThresh, asOf) {
						if _, in := st.phi[r.Point.ID]; !in {
							st.phi[r.Point.ID] = r.Score
							sh.addToSet(r.Point.ID, t.uid)
							res.changes = append(res.changes, taggedChange{pos, Change{UtilityID: t.uid, PointID: r.Point.ID, Added: true}})
							if dp, ok := runPos[r.Point.ID]; ok && dp > pos {
								heap.Push(&pending, dp)
							}
						}
					}
					res.touched = append(res.touched, t.uid)
				}
				// An index rebuild can buffer sub-threshold tuples; clamp
				// so the buffer stays inside Φ (members all score >= the
				// threshold, so none are lost).
				st.topk = clampTail(st.topk, e.k, newThresh)
			}
		}
	}
	// Replay order is utility-major; the per-operation group merge needs
	// the changes op-major. Order within one operation is irrelevant (each
	// group is re-sorted), so a plain sort by position suffices.
	sort.Slice(res.changes, func(i, j int) bool { return res.changes[i].pos < res.changes[j].pos })
}

// emitRunGroups groups the workers' tagged changes per operation and emits
// them in run order. Each shard's changes arrive sorted by position, so one
// cursor per shard suffices. All groups are materialized before the first
// emit call so callbacks see the scratch buffers released (groups copy the
// Change values out).
func (e *Engine) emitRunGroups(n int, results []shardResult, opAt func(int) Op, emit func(op Op, changes []Change)) {
	cursors := e.scratch.cursors
	var groups [][]Change
	if n > 1 {
		groups = make([][]Change, 0, n)
	}
	for pos := 0; pos < n; pos++ {
		var group []Change
		for s := range results {
			chs := results[s].changes
			for cursors[s] < len(chs) && chs[cursors[s]].pos == pos {
				group = append(group, chs[cursors[s]].ch)
				cursors[s]++
			}
		}
		sortChanges(group)
		if n == 1 {
			emit(opAt(0), group)
			return
		}
		groups = append(groups, group)
	}
	for pos := 0; pos < n; pos++ {
		emit(opAt(pos), groups[pos])
	}
}

// runShards executes work(s) for every shard s with a nonempty task list —
// concurrently when the engine is sharded and the phase is large enough to
// amortize the fan-out, inline otherwise. Output is identical either way:
// workers only touch their own shard and result slot.
func (e *Engine) runShards(total int, hasWork func(s int) bool, work func(s int)) {
	active := 0
	for s := range e.shards {
		if hasWork(s) {
			active++
		}
	}
	if active <= 1 || total < parallelMinTasks {
		for s := range e.shards {
			if hasWork(s) {
				work(s)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for s := range e.shards {
		if !hasWork(s) {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			work(s)
		}(s)
	}
	wg.Wait()
}

// mergePhase folds the workers' counters into the engine and repairs the
// cone tree's thresholds, once per touched utility (the cone tree is not
// safe for concurrent mutation, so this runs after the parallel phase).
func (e *Engine) mergePhase(results []shardResult) {
	for s := range results {
		e.AffectedTotal += results[s].processed
		e.Requeries += results[s].requeries
		for _, uid := range results[s].touched {
			tau := e.threshold(e.stateOf(uid))
			if cur, ok := e.ui.Threshold(uid); ok && tau != cur {
				e.ui.SetThreshold(uid, tau)
			}
		}
	}
}

// sortChanges orders a change list by utility id, then point id. A single
// operation never produces two changes for the same (utility, point) pair,
// so the order is total.
func sortChanges(chs []Change) {
	sort.Slice(chs, func(i, j int) bool {
		if chs[i].UtilityID != chs[j].UtilityID {
			return chs[i].UtilityID < chs[j].UtilityID
		}
		return chs[i].PointID < chs[j].PointID
	})
}
