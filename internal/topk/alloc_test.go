package topk

import (
	"math/rand"
	"testing"
)

// nopEmit is a package-level func value so passing it to ApplyBatchFunc
// allocates nothing.
func nopEmit(Op, []Change) {}

// Steady-state ApplyBatch must stay within a small documented allocation
// budget: run segmentation, task lists, worker buffers, replay heaps, and
// tuple-index query scratch are all engine-resident and reused, so the only
// recurring allocations are (a) the caller-owned change-group backing, one
// per run, and (b) genuine state churn — inverted-index fragments for
// tuples whose membership set empties and refills, map bucket movements,
// and occasional index rebuild growth. Empirically a delete+reinsert cycle
// costs ~0.5 allocations per operation (measured on the seed workload
// below; dominated by S(p) fragments of re-admitted tuples). The budget was
// 4.0 while the set-cover layer still allocated; with the whole pipeline on
// reused storage it is pinned at 1.5 — loose enough for map-internal
// variance, tight enough that any per-op allocation creeping back into the
// maintenance path (which alone used to cost hundreds per op) fails loudly.
const maxApplyBatchAllocsPerOp = 1.5

func TestApplyBatchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d, k, eps := 4, 2, 0.1
	pts := randomPoints(rng, 400, d, 0)
	utils := randomUtilities(rng, 64, d)
	// One shard: the inline phase path, so the measurement excludes the
	// goroutine fan-out (which amortizes over large parallel phases and is
	// absent at steady-state single-op granularity).
	e := NewEngineShards(d, k, eps, pts, utils, 1)

	churn := pts[:50]
	delOps := make([]Op, len(churn))
	insOps := make([]Op, len(churn))
	for i, p := range churn {
		delOps[i] = DeleteOp(p.ID)
		insOps[i] = InsertOp(p)
	}
	cycle := func() {
		e.ApplyBatchFunc(delOps, nopEmit)
		e.ApplyBatchFunc(insOps, nopEmit)
	}
	for i := 0; i < 4; i++ {
		cycle() // warm every scratch, map, and buffer
	}
	allocs := testing.AllocsPerRun(10, cycle)
	perOp := allocs / float64(len(delOps)+len(insOps))
	t.Logf("steady-state ApplyBatch: %.1f allocs per cycle, %.2f per op", allocs, perOp)
	if perOp > maxApplyBatchAllocsPerOp {
		t.Fatalf("steady-state ApplyBatch allocates %.2f per op, budget %.1f", perOp, maxApplyBatchAllocsPerOp)
	}
}

// The sequential single-op path shares every scratch with the batched one;
// a delete+reinsert pair must stay within the same per-op budget.
func TestSequentialSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d, k, eps := 4, 2, 0.1
	pts := randomPoints(rng, 300, d, 0)
	utils := randomUtilities(rng, 48, d)
	e := NewEngineShards(d, k, eps, pts, utils, 1)

	p := pts[7]
	for i := 0; i < 4; i++ {
		e.Delete(p.ID)
		e.Insert(p)
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.Delete(p.ID)
		e.Insert(p)
	})
	t.Logf("sequential delete+insert pair: %.1f allocs", allocs)
	// Two ops per run, plus the caller-owned change groups the wrappers
	// return (one backing slice per run) and the wrapper closures; measured
	// at 6.0 on the seed workload, budgeted with headroom for map-internal
	// variance.
	const maxSequentialPairAllocs = 9.0
	if allocs > maxSequentialPairAllocs {
		t.Fatalf("sequential pair allocates %.1f, budget %.1f", allocs, maxSequentialPairAllocs)
	}
}

// BenchmarkSetOf pins the exact-preallocation inverted-index read: the
// fragments are presorted per shard, so the common case skips the sort.
func BenchmarkSetOf(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	d, k, eps := 4, 2, 0.05
	pts := randomPoints(rng, 500, d, 0)
	utils := randomUtilities(rng, 256, d)
	e := NewEngineShards(d, k, eps, pts, utils, 4)
	// Pick the live tuple with the largest set so the benchmark measures
	// real merging work.
	best, bestLen := pts[0].ID, -1
	for _, p := range pts {
		if n := len(e.SetOf(p.ID)); n > bestLen {
			best, bestLen = p.ID, n
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.SetOf(best); len(got) != bestLen {
			b.Fatal("set size changed")
		}
	}
}
