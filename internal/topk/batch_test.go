package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

// randomOps builds a mixed operation stream over an engine seeded with pts:
// fresh inserts, deletes of live ids, replacing inserts, and deletes of
// missing ids, tracking liveness so the mix stays meaningful.
func randomOps(rng *rand.Rand, pts []geom.Point, n, d, idBase int) []Op {
	live := make([]int, 0, len(pts)+n)
	for _, p := range pts {
		live = append(live, p.ID)
	}
	next := idBase
	ops := make([]Op, 0, n)
	for len(ops) < n {
		switch r := rng.Intn(10); {
		case r < 5: // fresh insert
			ops = append(ops, InsertOp(randomPoints(rng, 1, d, next)[0]))
			live = append(live, next)
			next++
		case r < 7 && len(live) > 0: // delete a live id
			i := rng.Intn(len(live))
			ops = append(ops, DeleteOp(live[i]))
			live = append(live[:i], live[i+1:]...)
		case r < 9 && len(live) > 0: // replacing insert
			id := live[rng.Intn(len(live))]
			p := randomPoints(rng, 1, d, 0)[0]
			p.ID = id
			ops = append(ops, InsertOp(p))
		default: // delete a missing id
			ops = append(ops, DeleteOp(next+100000))
		}
	}
	return ops
}

type opGroup struct {
	op      Op
	changes []Change
}

func collectGroups(e *Engine, ops []Op, batchSize int) []opGroup {
	var out []opGroup
	for i := 0; i < len(ops); i += batchSize {
		j := i + batchSize
		if j > len(ops) {
			j = len(ops)
		}
		e.ApplyBatchFunc(ops[i:j], func(op Op, ch []Change) {
			out = append(out, opGroup{op, ch})
		})
	}
	return out
}

func membersSnapshot(e *Engine, utils []Utility) map[int][]int {
	out := make(map[int][]int, len(utils))
	for _, ut := range utils {
		var ids []int
		//fdrms:orderinvariant ids are sorted before use
		for pid := range e.Members(ut.ID) {
			ids = append(ids, pid)
		}
		sort.Ints(ids)
		out[ut.ID] = ids
	}
	return out
}

// The batched path must be indistinguishable from the sequential path:
// identical per-operation change groups, identical final membership,
// identical counters — for every batch size, with the parallel fan-out
// active (4 shards).
func TestApplyBatchMatchesSequential(t *testing.T) {
	for _, batchSize := range []int{1, 3, 16, 64, 512} {
		rng := rand.New(rand.NewSource(int64(17 + batchSize)))
		d, k, eps := 4, 2, 0.1
		pts := randomPoints(rng, 150, d, 0)
		utils := randomUtilities(rng, 48, d)
		ops := randomOps(rng, pts, 400, d, 1000)

		batched := NewEngineShards(d, k, eps, pts, utils, 4)
		sequential := NewEngineShards(d, k, eps, pts, utils, 4)

		got := collectGroups(batched, ops, batchSize)
		var want []opGroup
		for _, op := range ops {
			var ch []Change
			if op.Delete {
				if !sequential.Contains(op.ID) {
					continue // missing delete: batched path skips it too
				}
				ch = sequential.Delete(op.ID)
			} else {
				ch = sequential.Insert(op.Point)
			}
			want = append(want, opGroup{op, ch})
		}

		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d emitted groups, want %d", batchSize, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].op, want[i].op) {
				t.Fatalf("batch=%d group %d: op %+v, want %+v", batchSize, i, got[i].op, want[i].op)
			}
			if !reflect.DeepEqual(got[i].changes, want[i].changes) {
				t.Fatalf("batch=%d group %d (%+v): changes\n%v\nwant\n%v", batchSize, i, got[i].op, got[i].changes, want[i].changes)
			}
		}
		if a, b := membersSnapshot(batched, utils), membersSnapshot(sequential, utils); !reflect.DeepEqual(a, b) {
			t.Fatalf("batch=%d: final memberships diverge", batchSize)
		}
		if batched.InsertOps != sequential.InsertOps || batched.DeleteOps != sequential.DeleteOps ||
			batched.AffectedTotal != sequential.AffectedTotal || batched.Requeries != sequential.Requeries {
			t.Fatalf("batch=%d: counters diverge: %+v vs %+v",
				batchSize,
				[4]int{batched.InsertOps, batched.DeleteOps, batched.AffectedTotal, batched.Requeries},
				[4]int{sequential.InsertOps, sequential.DeleteOps, sequential.AffectedTotal, sequential.Requeries})
		}
	}
}

// burstyOps builds an operation stream of alternating insert and delete
// BLOCKS, so ApplyBatch segments long runs of each kind: sliding-window
// style delete bursts (oldest ids first), plus occasional deletes of
// missing ids and repeated deletes inside one block.
func burstyOps(rng *rand.Rand, pts []geom.Point, blocks, blockLen, d, idBase int) []Op {
	live := make([]int, 0, len(pts)+blocks*blockLen)
	for _, p := range pts {
		live = append(live, p.ID)
	}
	next := idBase
	var ops []Op
	for b := 0; b < blocks; b++ {
		if b%2 == 0 {
			for i := 0; i < blockLen; i++ {
				ops = append(ops, InsertOp(randomPoints(rng, 1, d, next)[0]))
				live = append(live, next)
				next++
			}
			continue
		}
		for i := 0; i < blockLen && len(live) > 0; i++ {
			switch rng.Intn(8) {
			case 0: // missing id: skipped by both paths
				ops = append(ops, DeleteOp(next+500000))
			case 1: // duplicate delete within the block
				if len(ops) > 0 && ops[len(ops)-1].Delete {
					ops = append(ops, ops[len(ops)-1])
					continue
				}
				fallthrough
			default: // delete the oldest live id (sliding window)
				ops = append(ops, DeleteOp(live[0]))
				live = live[1:]
			}
		}
	}
	return ops
}

// Delete runs must be bit-identical to the sequential path too: per-op
// change groups, final membership, and counters, across batch sizes that
// split runs at every boundary, with the parallel fan-out active.
func TestApplyBatchDeleteRunsMatchSequential(t *testing.T) {
	for _, batchSize := range []int{1, 2, 5, 16, 64, 512} {
		rng := rand.New(rand.NewSource(int64(101 + batchSize)))
		d, k, eps := 4, 2, 0.1
		pts := randomPoints(rng, 120, d, 0)
		utils := randomUtilities(rng, 48, d)
		ops := burstyOps(rng, pts, 12, 40, d, 1000)

		batched := NewEngineShards(d, k, eps, pts, utils, 4)
		sequential := NewEngineShards(d, k, eps, pts, utils, 4)

		got := collectGroups(batched, ops, batchSize)
		var want []opGroup
		for _, op := range ops {
			var ch []Change
			if op.Delete {
				if !sequential.Contains(op.ID) {
					continue
				}
				ch = sequential.Delete(op.ID)
			} else {
				ch = sequential.Insert(op.Point)
			}
			want = append(want, opGroup{op, ch})
		}

		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d emitted groups, want %d", batchSize, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].op, want[i].op) {
				t.Fatalf("batch=%d group %d: op %+v, want %+v", batchSize, i, got[i].op, want[i].op)
			}
			if !reflect.DeepEqual(got[i].changes, want[i].changes) {
				t.Fatalf("batch=%d group %d (%+v): changes\n%v\nwant\n%v", batchSize, i, got[i].op, got[i].changes, want[i].changes)
			}
		}
		if a, b := membersSnapshot(batched, utils), membersSnapshot(sequential, utils); !reflect.DeepEqual(a, b) {
			t.Fatalf("batch=%d: final memberships diverge", batchSize)
		}
		if batched.InsertOps != sequential.InsertOps || batched.DeleteOps != sequential.DeleteOps ||
			batched.AffectedTotal != sequential.AffectedTotal || batched.Requeries != sequential.Requeries {
			t.Fatalf("batch=%d: counters diverge: %+v vs %+v",
				batchSize,
				[4]int{batched.InsertOps, batched.DeleteOps, batched.AffectedTotal, batched.Requeries},
				[4]int{sequential.InsertOps, sequential.DeleteOps, sequential.AffectedTotal, sequential.Requeries})
		}
	}
}

// A whole-database delete run (drain) followed by a refill run crosses the
// fewer-than-k boundary inside one batch; tie-heavy grid data stresses the
// per-epoch requeries.
func TestApplyBatchDrainRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, k, eps := 3, 2, 0.1
	pts := gridPoints(rng, 60, d, 0, 3)
	utils := gridUtilities(d, 12)
	var ops []Op
	for _, p := range pts {
		ops = append(ops, DeleteOp(p.ID))
	}
	for _, p := range gridPoints(rng, 60, d, 4000, 3) {
		ops = append(ops, InsertOp(p))
	}

	batched := NewEngineShards(d, k, eps, pts, utils, 4)
	sequential := NewEngineShards(d, k, eps, pts, utils, 4)
	got := collectGroups(batched, ops, len(ops)) // one giant batch
	var want []opGroup
	for _, op := range ops {
		if op.Delete {
			want = append(want, opGroup{op, sequential.Delete(op.ID)})
		} else {
			want = append(want, opGroup{op, sequential.Insert(op.Point)})
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("drain+refill batch diverges from sequential")
	}
	if a, b := membersSnapshot(batched, utils), membersSnapshot(sequential, utils); !reflect.DeepEqual(a, b) {
		t.Fatal("final memberships diverge")
	}
}

// Φ_{k,ε} is a function of the live point set alone, so any interleaving
// of operations on distinct ids must land every utility on the same
// membership — the property that lets batches reorder work internally.
func TestApplyBatchShuffleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		eps := rng.Float64() * 0.15
		pts := randomPoints(rng, 40+rng.Intn(40), d, 0)
		utils := randomUtilities(rng, 4+rng.Intn(8), d)

		// Distinct-id ops: inserts of new ids plus deletes of initial ids.
		var ops []Op
		for i, p := range randomPoints(rng, 25, d, 1000) {
			_ = i
			ops = append(ops, InsertOp(p))
		}
		for _, p := range pts[:10] {
			ops = append(ops, DeleteOp(p.ID))
		}

		a := NewEngineShards(d, k, eps, pts, utils, 3)
		b := NewEngineShards(d, k, eps, pts, utils, 3)
		a.ApplyBatch(ops)
		shuffled := append([]Op(nil), ops...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b.ApplyBatch(shuffled)

		return reflect.DeepEqual(membersSnapshot(a, utils), membersSnapshot(b, utils))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Changes returned by ApplyBatch replay to the same membership as the
// engine reports, and missing deletes emit nothing.
func TestApplyBatchChangeReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d, k, eps := 3, 2, 0.08
	pts := randomPoints(rng, 80, d, 0)
	utils := randomUtilities(rng, 20, d)
	e := NewEngineShards(d, k, eps, pts, utils, 4)

	replayed := make(map[int]map[int]bool)
	for _, ut := range utils {
		m := make(map[int]bool)
		//fdrms:orderinvariant building a set, insertion order immaterial
		for pid := range e.Members(ut.ID) {
			m[pid] = true
		}
		replayed[ut.ID] = m
	}

	ops := randomOps(rng, pts, 300, d, 5000)
	for i := 0; i < len(ops); i += 37 {
		j := i + 37
		if j > len(ops) {
			j = len(ops)
		}
		for _, c := range e.ApplyBatch(ops[i:j]) {
			if c.Added {
				if replayed[c.UtilityID][c.PointID] {
					t.Fatalf("add change for existing member u%d/p%d", c.UtilityID, c.PointID)
				}
				replayed[c.UtilityID][c.PointID] = true
			} else {
				if !replayed[c.UtilityID][c.PointID] {
					t.Fatalf("remove change for non-member u%d/p%d", c.UtilityID, c.PointID)
				}
				delete(replayed[c.UtilityID], c.PointID)
			}
		}
	}
	for _, ut := range utils {
		m := e.Members(ut.ID)
		if len(m) != len(replayed[ut.ID]) {
			t.Fatalf("u%d: replayed %d members, engine has %d", ut.ID, len(replayed[ut.ID]), len(m))
		}
		//fdrms:orderinvariant conjunctive membership check, any order
		for pid := range m {
			if !replayed[ut.ID][pid] {
				t.Fatalf("u%d: replay misses p%d", ut.ID, pid)
			}
		}
	}

	if got := e.ApplyBatch([]Op{DeleteOp(987654), DeleteOp(987655)}); got != nil {
		t.Fatalf("missing deletes produced changes: %v", got)
	}
}
