package topk

// PhaseProfile is the accumulated wall-time breakdown of the batched
// update path, split along the pipeline stages of one run:
//
//	Candidate — utility-index probes and task-list construction
//	Index     — tuple-index mutation (inserts or tombstoning)
//	Fanout    — the parallel per-shard Φ maintenance phase
//	Merge     — counter folding and cone-tree threshold repair
//	Emit      — the k-way change merge and group emission
//
// Busy holds per-shard worker wall time summed over parallel phases; the
// spread between max(Busy) and mean(Busy) is the load-imbalance signal the
// scaling experiment reports. All times are deltas of the installed phase
// clock (SetPhaseClock) and zero when no clock is installed.
type PhaseProfile struct {
	Phases   int // runs executed (insert + delete)
	Parallel int // runs whose fan-out went through the worker pool

	CandidateNanos int64
	IndexNanos     int64
	FanoutNanos    int64
	MergeNanos     int64
	EmitNanos      int64

	Busy []int64 // per-shard worker time across parallel + inline phases
}

// SetPhaseClock installs (or, with nil, removes) the timestamp source for
// phase profiling. The clock returns monotonic nanoseconds and MUST be safe
// for concurrent calls: shard workers stamp their busy time from pool
// goroutines.
//
// The engine deliberately takes the clock as an injected function value
// instead of reading the wall clock itself: every timing feeds only the
// profiling report, never state, changes, or snapshots, and the injection
// point keeps the package's determinism contract machine-checkable — the
// nondet analyzer walks the static call graph from ApplyBatch and would
// flag a direct time.Now in it, while a caller-supplied hook is an audited
// boundary the analyzer (correctly) treats as opaque. Must be called by the
// engine's single writer, like every mutating entry point.
func (e *Engine) SetPhaseClock(clock func() int64) {
	e.clock = clock
	if clock != nil && e.prof.Busy == nil {
		e.prof.Busy = make([]int64, len(e.shards))
	}
}

// PhaseProfile returns a copy of the accumulated breakdown.
func (e *Engine) PhaseProfile() PhaseProfile {
	p := e.prof
	if p.Busy != nil {
		p.Busy = append([]int64(nil), p.Busy...)
	}
	return p
}

// PhaseTotals returns the accumulated per-phase nanosecond counters
// without copying the per-shard busy slice — the allocation-free form the
// serving telemetry snapshots around every batch. Caller must hold the
// engine's single-writer role, like PhaseProfile.
func (e *Engine) PhaseTotals() (candidate, index, fanout, merge, emit int64) {
	return e.prof.CandidateNanos, e.prof.IndexNanos, e.prof.FanoutNanos, e.prof.MergeNanos, e.prof.EmitNanos
}

// ResetPhaseProfile zeroes the accumulated breakdown (the installed clock
// stays).
func (e *Engine) ResetPhaseProfile() {
	busy := e.prof.Busy
	e.prof = PhaseProfile{}
	if busy != nil {
		clear(busy)
		e.prof.Busy = busy
	}
}

// now returns the phase-clock timestamp, or 0 with no clock installed.
func (e *Engine) now() int64 {
	if e.clock == nil {
		return 0
	}
	return e.clock()
}

// recordPhase folds one run's boundary timestamps into the profile.
// The seven stamps bracket, in order: candidate probing, index mutation,
// task building, the parallel fan-out, the merge, and group emission.
func (e *Engine) recordPhase(probe0, probe1, index1, build1, fanout1, merge1, emit1 int64) {
	e.prof.Phases++
	if e.clock == nil {
		e.metrics.mirrorPhase(0, 0, 0, 0, 0)
		return
	}
	cand := (probe1 - probe0) + (build1 - index1)
	index := index1 - probe1
	fanout := fanout1 - build1
	merge := merge1 - fanout1
	emit := emit1 - merge1
	e.prof.CandidateNanos += cand
	e.prof.IndexNanos += index
	e.prof.FanoutNanos += fanout
	e.prof.MergeNanos += merge
	e.prof.EmitNanos += emit
	e.metrics.mirrorPhase(cand, index, fanout, merge, emit)
}
