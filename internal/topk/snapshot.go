// Snapshot capture and restore of the per-utility maintenance state.
//
// What must be persisted verbatim and what is derivable was chosen for
// bit-identical recovery:
//
//   - Φ membership (id → score) is path-dependent — the ε-slack admits
//     tuples lazily and evicts them only when the threshold rises — so the
//     member sets and their scores are captured exactly (scores as IEEE-754
//     bits, sidestepping any question of recomputation order).
//   - The runner-up buffer is path-dependent in LENGTH (rebuild timing
//     decides how many runners-up are in stock), and its length decides when
//     the next rebuild or requery happens, so the buffer's id sequence is
//     captured; entry scores are resolved from Φ (the buffer-⊆-Φ invariant).
//   - The tuple index and the cone tree are rebuilt from the live points and
//     utility states: every query answer is tree-shape independent (the
//     deterministic tie-break contract of package kdtree), and cone-tree
//     pruning is a candidate pre-filter that workers re-check exactly, so
//     neither rebuild can change any emitted change or maintained counter.
//   - The inverted index (S(p) fragments) is the transpose of Φ.
//
// Utility VECTORS are not captured here: FD-RMS derives them from the
// configured seed, and the caller supplies them on restore.
package topk

import (
	"fmt"
	"sort"

	"fdrms/internal/conetree"
	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// PhiEntry is one member of a utility's Φ_{k,ε}: a point id and its score
// under the utility, captured bit-exactly.
type PhiEntry struct {
	PointID int
	Score   float64
}

// UtilityState is the captured maintenance state of one utility.
type UtilityState struct {
	ID   int
	Phi  []PhiEntry // ascending PointID
	TopK []int      // runner-up buffer point ids, in buffer order
}

// EngineSnapshot is the complete persistent state of an Engine. Together
// with the utility vectors (derived from the seed by the caller) it rebuilds
// an engine whose every future answer and counter matches the original.
type EngineSnapshot struct {
	Dim int
	K   int
	Eps float64

	Points    []geom.Point   // live tuples, ascending id
	Utilities []UtilityState // ascending utility id

	InsertOps     int
	DeleteOps     int
	AffectedTotal int
	Requeries     int
}

// Snapshot captures the engine state. The returned snapshot shares no
// mutable storage with the engine except the point coordinate slices, which
// the engine never mutates in place — callers that outlive the engine can
// serialize without copying them.
func (e *Engine) Snapshot() *EngineSnapshot {
	s := &EngineSnapshot{
		Dim:           e.dim,
		K:             e.k,
		Eps:           e.eps,
		Points:        e.tree.Points(),
		InsertOps:     e.InsertOps,
		DeleteOps:     e.DeleteOps,
		AffectedTotal: e.AffectedTotal,
		Requeries:     e.Requeries,
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].ID < s.Points[j].ID })
	s.Utilities = make([]UtilityState, 0, e.numUtils)
	for si := range e.shards {
		sh := &e.shards[si]
		//fdrms:orderinvariant collects per-utility states only; s.Utilities is sorted by ID below before the snapshot is returned
		for uid := range sh.slots {
			st := sh.state(uid)
			us := UtilityState{
				ID:   uid,
				Phi:  make([]PhiEntry, 0, len(st.phi)),
				TopK: make([]int, len(st.topk)),
			}
			//fdrms:orderinvariant pid keys are unique and us.Phi is sorted by PointID on the line after the loop
			for pid, score := range st.phi {
				us.Phi = append(us.Phi, PhiEntry{PointID: pid, Score: score})
			}
			sort.Slice(us.Phi, func(i, j int) bool { return us.Phi[i].PointID < us.Phi[j].PointID })
			for i, r := range st.topk {
				us.TopK[i] = r.Point.ID
			}
			s.Utilities = append(s.Utilities, us)
		}
	}
	sort.Slice(s.Utilities, func(i, j int) bool { return s.Utilities[i].ID < s.Utilities[j].ID })
	return s
}

// RestoreEngine rebuilds an engine from a snapshot plus the utility vectors
// (which must cover exactly the snapshot's utility ids). nshards <= 0 picks
// the DefaultShards count; the value never affects any answer.
func RestoreEngine(s *EngineSnapshot, utilities []Utility, nshards int) (*Engine, error) {
	if nshards < 1 {
		nshards = DefaultShards()
	}
	vecs := make(map[int]geom.Vector, len(utilities))
	maxID := 0
	for _, ut := range utilities {
		if _, dup := vecs[ut.ID]; dup {
			return nil, fmt.Errorf("topk: duplicate utility id %d", ut.ID)
		}
		vecs[ut.ID] = ut.U
		if ut.ID > maxID {
			maxID = ut.ID
		}
	}
	if len(vecs) != len(s.Utilities) {
		return nil, fmt.Errorf("topk: snapshot has %d utilities, caller supplied %d vectors", len(s.Utilities), len(vecs))
	}
	// Snapshots are canonical: points and utilities strictly ascending by id.
	// Enforcing that here rejects duplicate ids (which would silently
	// collapse in the tree's id map or double-count numUtils) along with any
	// other hand-mangled ordering.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].ID <= s.Points[i-1].ID {
			return nil, fmt.Errorf("topk: snapshot points not strictly ascending at index %d (id %d after %d)", i, s.Points[i].ID, s.Points[i-1].ID)
		}
	}
	for i := 1; i < len(s.Utilities); i++ {
		if s.Utilities[i].ID <= s.Utilities[i-1].ID {
			return nil, fmt.Errorf("topk: snapshot utilities not strictly ascending at index %d (id %d after %d)", i, s.Utilities[i].ID, s.Utilities[i-1].ID)
		}
	}
	e := &Engine{
		k:             s.K,
		eps:           s.Eps,
		dim:           s.Dim,
		tree:          kdtree.New(s.Dim, s.Points),
		shards:        make([]shard, nshards),
		InsertOps:     s.InsertOps,
		DeleteOps:     s.DeleteOps,
		AffectedTotal: s.AffectedTotal,
		Requeries:     s.Requeries,
	}
	e.shardBlock = (maxID + nshards) / nshards
	if e.shardBlock < 1 {
		e.shardBlock = 1
	}
	for i := range e.shards {
		e.shards[i] = shard{slots: make(map[int]int), sets: make(map[int][]int)}
	}
	items := make([]conetree.Item, 0, len(s.Utilities))
	for _, us := range s.Utilities {
		u, ok := vecs[us.ID]
		if !ok {
			return nil, fmt.Errorf("topk: no vector for snapshot utility %d", us.ID)
		}
		st := uState{u: u, phi: make(map[int]float64, len(us.Phi))}
		for _, pe := range us.Phi {
			st.phi[pe.PointID] = pe.Score
		}
		if len(st.phi) != len(us.Phi) {
			return nil, fmt.Errorf("topk: utility %d: duplicate Φ member", us.ID)
		}
		st.topk = make([]kdtree.Result, len(us.TopK))
		for i, pid := range us.TopK {
			score, member := st.phi[pid]
			if !member {
				return nil, fmt.Errorf("topk: utility %d: buffered tuple %d outside Φ", us.ID, pid)
			}
			p, live := e.tree.PointByID(pid)
			if !live {
				return nil, fmt.Errorf("topk: utility %d: buffered tuple %d is not live", us.ID, pid)
			}
			st.topk[i] = kdtree.Result{Point: p, Score: score}
		}
		sh := &e.shards[e.shardFor(us.ID)]
		sh.put(us.ID, st)
		e.numUtils++
		for _, pe := range us.Phi {
			if !e.tree.Contains(pe.PointID) {
				return nil, fmt.Errorf("topk: utility %d: Φ member %d is not live", us.ID, pe.PointID)
			}
			sh.addToSet(pe.PointID, us.ID)
		}
		items = append(items, conetree.Item{ID: us.ID, U: u, Threshold: e.thresholdOf(st.topk)})
	}
	e.ui = conetree.New(s.Dim, items)
	return e, nil
}
