// Package topk maintains the ε-approximate top-k results Φ_{k,ε}(u, P_t) of
// many utility vectors over a fully-dynamic database — the dual-tree scheme
// of Section III-C of the FD-RMS paper.
//
// The tuple index (a k-d tree, package kdtree) answers top-k and threshold
// queries on the current database; the utility index (a cone tree, package
// conetree) finds which utilities an inserted tuple can affect. For each
// utility the engine stores the exact top-k list and the approximate member
// set, and uses the fast paths described in the paper:
//
//   - an inserted tuple scoring below (1-ε)·ω_k is pruned inside the cone
//     tree and costs nothing for that utility;
//   - one scoring between the threshold and ω_k joins Φ without a requery
//     (ω_k is unchanged);
//   - one scoring above ω_k shifts the exact top-k, which is repaired
//     incrementally; only deletions of top-k members force a fresh index
//     query.
//
// Every mutation returns the resulting membership changes, which FD-RMS
// Algorithm 3 translates into dynamic set cover operations: the member sets
// of this engine ARE the sets S(p) of the paper's set system Σ = (U, S).
package topk

import (
	"math"
	"sort"

	"fdrms/internal/conetree"
	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Utility is one identified utility vector.
type Utility struct {
	ID int
	U  geom.Vector
}

// Change records one membership transition of the set system: tuple PointID
// joined (Added) or left Φ_{k,ε}(u) for utility UtilityID.
type Change struct {
	UtilityID int
	PointID   int
	Added     bool
}

// uState is the maintained per-utility state.
type uState struct {
	u    geom.Vector
	topk []kdtree.Result // exact top-k, score-descending
	phi  map[int]float64 // member id -> score (Φ_{k,ε})
}

// Engine maintains Φ_{k,ε} for a set of utilities over a dynamic database.
type Engine struct {
	k   int
	eps float64
	dim int

	tree  *kdtree.Tree
	ui    *conetree.Tree
	state map[int]*uState

	// sets[pid] is S(p): the utilities whose approximate top-k contains p.
	sets map[int]map[int]bool

	// Counters for the ablation experiments.
	InsertOps     int // Insert calls processed
	DeleteOps     int // Delete calls processed
	AffectedTotal int // utilities whose Φ changed, summed over operations
	Requeries     int // fresh tuple-index top-k queries during maintenance
}

// NewEngine indexes the initial database and computes Φ_{k,ε} for every
// utility. k must be >= 1 and eps in [0, 1).
func NewEngine(dim, k int, eps float64, points []geom.Point, utilities []Utility) *Engine {
	e := &Engine{
		k:     k,
		eps:   eps,
		dim:   dim,
		tree:  kdtree.New(dim, points),
		state: make(map[int]*uState, len(utilities)),
		sets:  make(map[int]map[int]bool, len(points)),
	}
	items := make([]conetree.Item, 0, len(utilities))
	for _, ut := range utilities {
		st := e.freshState(ut.U)
		e.state[ut.ID] = st
		for pid := range st.phi {
			e.addToSet(pid, ut.ID)
		}
		items = append(items, conetree.Item{ID: ut.ID, U: ut.U, Threshold: e.threshold(st)})
	}
	e.ui = conetree.New(dim, items)
	return e
}

// freshState queries the tuple index from scratch for one utility.
func (e *Engine) freshState(u geom.Vector) *uState {
	st := &uState{u: u, phi: make(map[int]float64)}
	st.topk = e.tree.TopK(u, e.k)
	for _, r := range e.tree.AtLeast(u, e.thresholdOf(st.topk)) {
		st.phi[r.Point.ID] = r.Score
	}
	return st
}

// thresholdOf computes (1-ε)·ω_k for a top-k list; with fewer than k live
// tuples every tuple is a top-k member, so the threshold is -Inf.
func (e *Engine) thresholdOf(topk []kdtree.Result) float64 {
	if len(topk) < e.k {
		return math.Inf(-1)
	}
	return (1 - e.eps) * topk[len(topk)-1].Score
}

func (e *Engine) threshold(st *uState) float64 { return e.thresholdOf(st.topk) }

func (e *Engine) addToSet(pid, uid int) {
	s, ok := e.sets[pid]
	if !ok {
		s = make(map[int]bool)
		e.sets[pid] = s
	}
	s[uid] = true
}

func (e *Engine) removeFromSet(pid, uid int) {
	if s, ok := e.sets[pid]; ok {
		delete(s, uid)
		if len(s) == 0 {
			delete(e.sets, pid)
		}
	}
}

// K returns the rank depth k.
func (e *Engine) K() int { return e.k }

// Epsilon returns the approximation factor ε.
func (e *Engine) Epsilon() float64 { return e.eps }

// Len returns the number of live tuples.
func (e *Engine) Len() int { return e.tree.Len() }

// NumUtilities returns the number of maintained utilities.
func (e *Engine) NumUtilities() int { return len(e.state) }

// Contains reports whether tuple id is live.
func (e *Engine) Contains(id int) bool { return e.tree.Contains(id) }

// PointByID returns the live tuple with the given id.
func (e *Engine) PointByID(id int) (geom.Point, bool) { return e.tree.PointByID(id) }

// Points returns all live tuples.
func (e *Engine) Points() []geom.Point { return e.tree.Points() }

// Members returns Φ_{k,ε}(u) for the utility as a set of point ids.
// The returned map is live engine state: callers must not mutate it.
func (e *Engine) Members(uid int) map[int]float64 {
	if st, ok := e.state[uid]; ok {
		return st.phi
	}
	return nil
}

// SetOf returns S(p): the ids of utilities whose approximate top-k contains
// the tuple. The returned map is live engine state: callers must not mutate
// it.
func (e *Engine) SetOf(pid int) map[int]bool { return e.sets[pid] }

// KthScore returns ω_k(u, P_t) for the utility; ok is false when the
// database holds fewer than k tuples.
func (e *Engine) KthScore(uid int) (float64, bool) {
	st, ok := e.state[uid]
	if !ok || len(st.topk) < e.k {
		return 0, false
	}
	return st.topk[len(st.topk)-1].Score, true
}

// TopK returns the maintained exact top-k list of the utility.
func (e *Engine) TopK(uid int) []kdtree.Result {
	if st, ok := e.state[uid]; ok {
		return st.topk
	}
	return nil
}

// VisitedOnInsert reports how many utilities the cone tree would evaluate
// exactly for an insertion of p (ablation instrumentation).
func (e *Engine) VisitedOnInsert(p geom.Point) int { return e.ui.Visited(p) }

// Insert adds tuple p and returns the membership changes across all
// utilities. Inserting an existing id replaces the old tuple.
func (e *Engine) Insert(p geom.Point) []Change {
	var changes []Change
	if e.tree.Contains(p.ID) {
		changes = e.Delete(p.ID)
	}
	affected := e.ui.Affected(p) // exact: score(u,p) >= current threshold(u)
	e.tree.Insert(p)
	e.InsertOps++
	e.AffectedTotal += len(affected)
	for _, uid := range affected {
		st := e.state[uid]
		s := geom.Score(st.u, p)
		oldThresh := e.threshold(st)

		// Repair the exact top-k incrementally.
		if len(st.topk) < e.k || s > st.topk[len(st.topk)-1].Score {
			st.topk = insertSorted(st.topk, kdtree.Result{Point: p, Score: s}, e.k)
		}
		newThresh := e.threshold(st)

		// p joins Φ(u): it scored >= oldThresh, and if the threshold rose, p
		// is in the new top-k so it clears the new one as well.
		st.phi[p.ID] = s
		e.addToSet(p.ID, uid)
		changes = append(changes, Change{UtilityID: uid, PointID: p.ID, Added: true})

		// A raised threshold can evict old members.
		if newThresh > oldThresh {
			for pid, score := range st.phi {
				if score < newThresh {
					delete(st.phi, pid)
					e.removeFromSet(pid, uid)
					changes = append(changes, Change{UtilityID: uid, PointID: pid, Added: false})
				}
			}
			e.ui.SetThreshold(uid, newThresh)
		}
	}
	return changes
}

// insertSorted places r into a score-descending top-k list, truncating to k.
func insertSorted(topk []kdtree.Result, r kdtree.Result, k int) []kdtree.Result {
	i := sort.Search(len(topk), func(i int) bool {
		if topk[i].Score != r.Score {
			return topk[i].Score < r.Score
		}
		return topk[i].Point.ID > r.Point.ID
	})
	topk = append(topk, kdtree.Result{})
	copy(topk[i+1:], topk[i:])
	topk[i] = r
	if len(topk) > k {
		topk = topk[:k]
	}
	return topk
}

// Delete removes the tuple with the given id and returns the membership
// changes. Deleting a missing id is a no-op.
func (e *Engine) Delete(id int) []Change {
	if !e.tree.Contains(id) {
		return nil
	}
	// Only utilities whose Φ contains the tuple can change: the exact top-k
	// is a subset of Φ, so for every other utility both ω_k and the
	// membership set survive the deletion untouched.
	var uids []int
	for uid := range e.sets[id] {
		uids = append(uids, uid)
	}
	sort.Ints(uids) // deterministic change order
	e.tree.Delete(id)
	e.DeleteOps++
	e.AffectedTotal += len(uids)

	var changes []Change
	for _, uid := range uids {
		st := e.state[uid]
		delete(st.phi, id)
		e.removeFromSet(id, uid)
		changes = append(changes, Change{UtilityID: uid, PointID: id, Added: false})

		if idx := indexOf(st.topk, id); idx >= 0 {
			// A top-k member left: ω_k can drop, which can admit new members.
			oldThresh := e.threshold(st)
			e.Requeries++
			st.topk = e.tree.TopK(st.u, e.k)
			newThresh := e.threshold(st)
			if newThresh < oldThresh {
				for _, r := range e.tree.AtLeast(st.u, newThresh) {
					if _, in := st.phi[r.Point.ID]; !in {
						st.phi[r.Point.ID] = r.Score
						e.addToSet(r.Point.ID, uid)
						changes = append(changes, Change{UtilityID: uid, PointID: r.Point.ID, Added: true})
					}
				}
				e.ui.SetThreshold(uid, newThresh)
			}
		}
	}
	return changes
}

func indexOf(topk []kdtree.Result, id int) int {
	for i, r := range topk {
		if r.Point.ID == id {
			return i
		}
	}
	return -1
}

// AddUtility registers a new utility (Algorithm 4 growing the universe) and
// returns one Added change per member of its fresh Φ.
func (e *Engine) AddUtility(ut Utility) []Change {
	if _, ok := e.state[ut.ID]; ok {
		e.RemoveUtility(ut.ID)
	}
	st := e.freshState(ut.U)
	e.state[ut.ID] = st
	e.ui.Insert(conetree.Item{ID: ut.ID, U: ut.U, Threshold: e.threshold(st)})
	changes := make([]Change, 0, len(st.phi))
	for pid := range st.phi {
		e.addToSet(pid, ut.ID)
		changes = append(changes, Change{UtilityID: ut.ID, PointID: pid, Added: true})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].PointID < changes[j].PointID })
	return changes
}

// RemoveUtility drops a utility (Algorithm 4 shrinking the universe) and
// returns one Removed change per former member.
func (e *Engine) RemoveUtility(uid int) []Change {
	st, ok := e.state[uid]
	if !ok {
		return nil
	}
	changes := make([]Change, 0, len(st.phi))
	for pid := range st.phi {
		e.removeFromSet(pid, uid)
		changes = append(changes, Change{UtilityID: uid, PointID: pid, Added: false})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].PointID < changes[j].PointID })
	delete(e.state, uid)
	e.ui.Delete(uid)
	return changes
}
