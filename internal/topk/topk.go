// Package topk maintains the ε-approximate top-k results Φ_{k,ε}(u, P_t) of
// many utility vectors over a fully-dynamic database — the dual-tree scheme
// of Section III-C of the FD-RMS paper.
//
// The tuple index (a k-d tree, package kdtree) answers top-k and threshold
// queries on the current database; the utility index (a cone tree, package
// conetree) finds which utilities an inserted tuple can affect. For each
// utility the engine stores the exact top-k list and the approximate member
// set, and uses the fast paths described in the paper:
//
//   - an inserted tuple scoring below (1-ε)·ω_k is pruned inside the cone
//     tree and costs nothing for that utility;
//   - one scoring between the threshold and ω_k joins Φ without a requery
//     (ω_k is unchanged);
//   - one scoring above ω_k shifts the exact top-k, which is repaired
//     incrementally inside a runner-up buffer (the exact live top-L,
//     L up to 2k+8, see uState); the deletion of a top-k member promotes a
//     buffered runner-up, an exhausted buffer is rebuilt from Φ while it
//     still holds k members (every tuple scoring at least the threshold is
//     a member, so none outside Φ can qualify), and only an underfull Φ
//     forces a fresh index query.
//
// Per-utility maintenance is embarrassingly parallel, so the engine
// partitions utility state into shards (several per available CPU by
// default — shards are the load-balancing unit of the worker pool, see
// DefaultShards), each owning contiguous blocks of utility IDs with its own
// slice-backed state storage and its own fragment of the inverted
// membership index. The
// batch entry point ApplyBatch fans the Φ maintenance of each operation out
// to the shards and merges their change lists deterministically (see
// batch.go); Insert and Delete are single-element batches.
//
// Every mutation returns the resulting membership changes, which FD-RMS
// Algorithm 3 translates into dynamic set cover operations: the member sets
// of this engine ARE the sets S(p) of the paper's set system Σ = (U, S).
package topk

import (
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"

	"fdrms/internal/conetree"
	"fdrms/internal/geom"
	"fdrms/internal/kdtree"
)

// Utility is one identified utility vector.
type Utility struct {
	ID int
	U  geom.Vector
}

// Change records one membership transition of the set system: tuple PointID
// joined (Added) or left Φ_{k,ε}(u) for utility UtilityID.
type Change struct {
	UtilityID int
	PointID   int
	Added     bool
}

// uState is the maintained per-utility state. States live by value inside
// their shard's slice; take fresh pointers via stateOf and never hold one
// across a structural mutation (AddUtility may grow the slice).
//
// topk is a RUNNER-UP BUFFER: the exact top-L of the live database under
// (score descending, point ID ascending), with k <= L <= maxTopK() while
// at least that many members exist. The first k entries are the exact
// top-k; the tail entries are insurance, so the deletion of a top-k member
// usually promotes a buffered runner-up instead of recomputing — the
// recompute (from Φ, or from the tuple index when Φ is underfull) runs
// only when deletions exhaust the buffer, amortizing one scan over up to
// maxTopK()-k+1 top-k deletions. Two invariants keep promotions sound:
// every buffer entry is a member of Φ (so the delete path, which visits
// exactly the utilities whose Φ contains the tuple, never leaves a dead
// tuple buffered), and every non-buffered live tuple ranks below the
// buffer minimum (pairwise order is static, so this survives deletions).
type uState struct {
	u    geom.Vector
	topk []kdtree.Result // exact top-L prefix of the live ranking
	phi  map[int]float64 // member id -> score (Φ_{k,ε})
}

// shard owns the state of a contiguous-block partition of the utility IDs.
// During the parallel phase of a batch, each worker touches exactly one
// shard, so no field here needs locking — including the worker scratch,
// which persists across batches so steady-state maintenance does not
// allocate.
type shard struct {
	states []uState      // slice-backed storage, indexed by slot
	slots  map[int]int   // utility id -> slot in states
	free   []int         // recycled slots
	sets   map[int][]int // pid -> sorted uids (this shard's part of S(p))

	qs      kdtree.QueryScratch // per-shard tuple-index query scratch
	pending posHeap             // delete-worker replay heap

	// overlay preserves pre-image state for an armed streaming snapshot
	// (see snapstream.go): the first mutation of a utility after
	// StartSnapshot captures its state here, so SnapshotChunk can emit the
	// arm-point value no matter how far the writer has since advanced.
	// Nil or empty when no snapshot session is armed.
	overlay map[int]snapCapture
}

func (sh *shard) state(uid int) *uState {
	if slot, ok := sh.slots[uid]; ok {
		return &sh.states[slot]
	}
	return nil
}

// put stores st under uid, reusing a free slot when available.
func (sh *shard) put(uid int, st uState) {
	if slot, ok := sh.slots[uid]; ok {
		sh.states[slot] = st
		return
	}
	if n := len(sh.free); n > 0 {
		slot := sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.states[slot] = st
		sh.slots[uid] = slot
		return
	}
	sh.slots[uid] = len(sh.states)
	sh.states = append(sh.states, st)
}

func (sh *shard) drop(uid int) {
	slot, ok := sh.slots[uid]
	if !ok {
		return
	}
	sh.states[slot] = uState{}
	sh.free = append(sh.free, slot)
	delete(sh.slots, uid)
}

func (sh *shard) addToSet(pid, uid int) {
	s := sh.sets[pid]
	i := sort.SearchInts(s, uid)
	if i < len(s) && s[i] == uid {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = uid
	sh.sets[pid] = s
}

func (sh *shard) removeFromSet(pid, uid int) {
	s := sh.sets[pid]
	i := sort.SearchInts(s, uid)
	if i >= len(s) || s[i] != uid {
		return
	}
	s = append(s[:i], s[i+1:]...)
	if len(s) == 0 {
		delete(sh.sets, pid)
	} else {
		sh.sets[pid] = s
	}
}

// Engine maintains Φ_{k,ε} for a set of utilities over a dynamic database.
type Engine struct {
	k   int
	eps float64
	dim int

	tree *kdtree.Tree
	ui   *conetree.Tree

	shards     []shard
	shardBlock int // utilities per contiguous id block
	numUtils   int

	// pool is the persistent per-shard worker fleet of the batched update
	// path (see pool.go): started lazily by the first parallel phase, torn
	// down by Close.
	pool pool

	// Per-phase scratch, reused across operations so steady-state batches
	// (and the single-op wrappers, which are one-element batches) allocate
	// only for genuine state growth and the emitted change groups. Guarded
	// by the engine's single-writer contract.
	scratch struct {
		insRun     []insOp      // current insert run
		delRun     []Op         // current delete run
		pendingIns map[int]bool // ids inserted by the current insert run
		pendingDel map[int]bool // ids deleted by the current delete run
		affected   [][]int      // per-position cone-tree candidate buffers
		repl       [1]insOp     // single-op run of a replacing insert
		tasks      [][]insTask
		dtasks     [][]delTask
		didx       []map[int]int // per-shard uid->task-slot of the current delete run
		runPos     map[int]int
		results    []shardResult
		cursors    []int
		groupOffs  []int               // per-position change-group boundaries
		mergeWin   []int               // loser-tree build scratch (winner tree)
		mergeLoser []int               // loser-tree internal nodes
		qs         kdtree.QueryScratch // sequential-path query scratch
	}

	// clock, when set, timestamps the batch phases for the profiling report
	// (see SetPhaseClock); prof accumulates the per-phase breakdown.
	clock func() int64
	prof  PhaseProfile

	// metrics, when set, mirrors the counters and phase deltas into obs
	// handles at run granularity (see metrics.go). Written only by the
	// single writer via SetMetrics.
	metrics *Metrics

	// snap is the armed streaming-snapshot session, if any (snapstream.go).
	snap snapSession

	// Counters for the ablation experiments and the serving telemetry.
	InsertOps     int // insert operations processed
	DeleteOps     int // delete operations processed
	AffectedTotal int // utilities whose Φ changed, summed over operations
	Requeries     int // fresh tuple-index top-k queries during maintenance
	Promotions    int // top-k vacancies filled by a buffered runner-up
	Changes       int // membership changes emitted across runs
}

// NewEngine indexes the initial database and computes Φ_{k,ε} for every
// utility, sharding the utility state across the available CPUs. k must be
// >= 1 and eps in [0, 1).
func NewEngine(dim, k int, eps float64, points []geom.Point, utilities []Utility) *Engine {
	return NewEngineShards(dim, k, eps, points, utilities, DefaultShards())
}

// DefaultShards returns the shard count NewEngine uses: FOUR contiguous id
// blocks per available CPU, overridable through the FDRMS_SHARDS
// environment variable. Over-partitioning matters because shards are the
// unit of load balancing, not of parallelism: the worker pool (pool.go)
// hands whole shards to whichever worker is free, so with exactly one
// shard per CPU a clustered workload — all of a phase's tasks landing in
// one utility-id block — degenerates to single-core throughput. At ~4
// blocks per CPU the largest-first dispatch keeps every worker busy until
// the phase tail while per-shard fixed costs stay negligible. The env
// override exists so CI (and operators of small machines) can force the
// cross-shard parallel path — every answer is independent of the shard
// count, only ApplyBatch parallelism changes.
func DefaultShards() int {
	if s := os.Getenv("FDRMS_SHARDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 4 * runtime.GOMAXPROCS(0)
}

// NewEngineShards is NewEngine with an explicit shard count (tests force
// cross-shard parallelism regardless of the host; servers can pin it).
func NewEngineShards(dim, k int, eps float64, points []geom.Point, utilities []Utility, nshards int) *Engine {
	if nshards < 1 {
		nshards = 1
	}
	e := &Engine{
		k:      k,
		eps:    eps,
		dim:    dim,
		tree:   kdtree.New(dim, points),
		shards: make([]shard, nshards),
	}
	maxID := 0
	for _, ut := range utilities {
		if ut.ID > maxID {
			maxID = ut.ID
		}
	}
	// Contiguous blocks: the initial IDs 0..maxID split into nshards ranges.
	e.shardBlock = (maxID + nshards) / nshards
	if e.shardBlock < 1 {
		e.shardBlock = 1
	}
	for i := range e.shards {
		e.shards[i] = shard{slots: make(map[int]int), sets: make(map[int][]int)}
	}
	items := make([]conetree.Item, 0, len(utilities))
	for _, ut := range utilities {
		st := e.freshState(ut.U)
		sh := &e.shards[e.shardFor(ut.ID)]
		if sh.state(ut.ID) == nil {
			e.numUtils++
		}
		sh.put(ut.ID, st)
		//fdrms:orderinvariant each pid is visited once and addToSet does a sorted insert into pid's own disjoint list; no cross-pid state exists
		for pid := range st.phi {
			sh.addToSet(pid, ut.ID)
		}
		items = append(items, conetree.Item{ID: ut.ID, U: ut.U, Threshold: e.thresholdOf(st.topk)})
	}
	e.ui = conetree.New(dim, items)
	return e
}

// shardFor maps a utility id to its owning shard: contiguous blocks of
// shardBlock ids, wrapping round-robin beyond the initial range.
func (e *Engine) shardFor(uid int) int {
	s := (uid / e.shardBlock) % len(e.shards)
	if s < 0 {
		s += len(e.shards)
	}
	return s
}

func (e *Engine) stateOf(uid int) *uState {
	return e.shards[e.shardFor(uid)].state(uid)
}

// maxTopK returns the runner-up buffer capacity L_max = 2k+8.
func (e *Engine) maxTopK() int { return 2*e.k + 8 }

// freshState queries the tuple index from scratch for one utility.
func (e *Engine) freshState(u geom.Vector) uState {
	st := uState{u: u, phi: make(map[int]float64)}
	qs := &e.scratch.qs
	res := e.tree.TopKInto(u, e.maxTopK(), qs)
	st.topk = append(make([]kdtree.Result, 0, len(res)), res...)
	tau := e.thresholdOf(st.topk)
	for _, r := range e.tree.AtLeastInto(u, tau, qs) {
		st.phi[r.Point.ID] = r.Score
	}
	st.topk = clampTail(st.topk, e.k, tau) // buffer ⊆ Φ
	return st
}

// thresholdOf computes (1-ε)·ω_k from a top-k (or longer runner-up) list;
// with fewer than k live tuples every tuple is a top-k member, so the
// threshold is -Inf.
func (e *Engine) thresholdOf(topk []kdtree.Result) float64 {
	if len(topk) < e.k {
		return math.Inf(-1)
	}
	return (1 - e.eps) * topk[e.k-1].Score
}

// clampTail drops runner-up entries scoring below tau, never shortening
// the exact top-k prefix (prefix scores are >= ω_k >= any valid tau).
// It restores the buffer-⊆-Φ invariant after index refills, whose tail can
// reach below the membership threshold.
func clampTail(topk []kdtree.Result, k int, tau float64) []kdtree.Result {
	n := len(topk)
	for n > k && topk[n-1].Score < tau {
		n--
	}
	return topk[:n]
}

func (e *Engine) threshold(st *uState) float64 { return e.thresholdOf(st.topk) }

// K returns the rank depth k.
func (e *Engine) K() int { return e.k }

// Epsilon returns the approximation factor ε.
func (e *Engine) Epsilon() float64 { return e.eps }

// NumShards returns the number of utility-state shards.
func (e *Engine) NumShards() int { return len(e.shards) }

// Len returns the number of live tuples.
func (e *Engine) Len() int { return e.tree.Len() }

// NumUtilities returns the number of maintained utilities.
func (e *Engine) NumUtilities() int { return e.numUtils }

// Contains reports whether tuple id is live.
func (e *Engine) Contains(id int) bool { return e.tree.Contains(id) }

// PointByID returns the live tuple with the given id.
func (e *Engine) PointByID(id int) (geom.Point, bool) { return e.tree.PointByID(id) }

// TreeEpoch returns the tuple index's current epoch (see kdtree.Tree.Epoch).
func (e *Engine) TreeEpoch() uint64 { return e.tree.Epoch() }

// TreeView captures an immutable epoch-pinned snapshot of the tuple index
// (see kdtree.Tree.View) — the read surface of the MVCC serving layer.
// Like every mutating entry point, it must be called by the engine's single
// writer (or synchronized with it); the returned view is then lock-free and
// safe for any number of concurrent readers.
func (e *Engine) TreeView() *kdtree.View { return e.tree.View() }

// Points returns all live tuples.
func (e *Engine) Points() []geom.Point { return e.tree.Points() }

// Members returns Φ_{k,ε}(u) for the utility as a set of point ids.
// The returned map is live engine state: callers must not mutate it.
func (e *Engine) Members(uid int) map[int]float64 {
	if st := e.stateOf(uid); st != nil {
		return st.phi
	}
	return nil
}

// SetOf returns S(p), the ids of utilities whose approximate top-k contains
// the tuple, in ascending order. The slice is freshly allocated at exactly
// the set size; each shard's fragment is already sorted, so the final sort
// runs only when the concatenation actually interleaves (with one shard —
// or id blocks that happen to stack in order — it never does).
func (e *Engine) SetOf(pid int) []int {
	total := 0
	for i := range e.shards {
		total += len(e.shards[i].sets[pid])
	}
	if total == 0 {
		return nil
	}
	out := make([]int, 0, total)
	sorted := true
	for i := range e.shards {
		frag := e.shards[i].sets[pid]
		if len(frag) == 0 {
			continue
		}
		if len(out) > 0 && frag[0] < out[len(out)-1] {
			sorted = false
		}
		out = append(out, frag...)
	}
	if !sorted {
		sort.Ints(out)
	}
	return out
}

// KthScore returns ω_k(u, P_t) for the utility; ok is false when the
// database holds fewer than k tuples.
func (e *Engine) KthScore(uid int) (float64, bool) {
	st := e.stateOf(uid)
	if st == nil || len(st.topk) < e.k {
		return 0, false
	}
	return st.topk[e.k-1].Score, true
}

// TopK returns the maintained exact top-k list of the utility (the prefix
// of the runner-up buffer).
func (e *Engine) TopK(uid int) []kdtree.Result {
	st := e.stateOf(uid)
	if st == nil {
		return nil
	}
	if len(st.topk) > e.k {
		return st.topk[:e.k:e.k]
	}
	return st.topk
}

// VisitedOnInsert reports how many utilities the cone tree would evaluate
// exactly for an insertion of p (ablation instrumentation).
func (e *Engine) VisitedOnInsert(p geom.Point) int { return e.ui.Visited(p) }

// Insert adds tuple p and returns the membership changes across all
// utilities, ordered by utility then point id. Inserting an existing id
// replaces the old tuple.
func (e *Engine) Insert(p geom.Point) []Change {
	var out []Change
	e.ApplyBatchFunc([]Op{InsertOp(p)}, func(_ Op, ch []Change) { out = ch })
	return out
}

// Delete removes the tuple with the given id and returns the membership
// changes, ordered by utility then point id. Deleting a missing id is a
// no-op.
func (e *Engine) Delete(id int) []Change {
	var out []Change
	e.ApplyBatchFunc([]Op{DeleteOp(id)}, func(_ Op, ch []Change) { out = ch })
	return out
}

// topKFromPhi rebuilds the runner-up buffer from the membership map alone —
// valid whenever |Φ| >= k, because every tuple scoring at least the
// threshold is a member, so no outside tuple can beat a member and the
// best min(|Φ|, maxTopK()) members ARE the live top-L. The result is
// ordered by (score descending, point ID ascending) and independent of map
// iteration order; buf (typically the old buffer, reused) backs the
// output. Point data is resolved through the tuple index at the given
// epoch, which inside a delete run still knows members that later
// operations tombstone.
func (e *Engine) topKFromPhi(st *uState, asOf uint64, buf []kdtree.Result) []kdtree.Result {
	out := buf[:0]
	max := e.maxTopK()
	//fdrms:orderinvariant top-k accumulation under the total order (score desc, id asc): the kept set is the best max elements of the candidate set, and the skip-when-full test only drops candidates strictly worse than the current kth — independent of visit order (see doc above)
	for pid, score := range st.phi {
		if len(out) == max {
			last := out[len(out)-1]
			if score < last.Score || (score == last.Score && pid > last.Point.ID) {
				continue
			}
		}
		p, ok := e.tree.PointByIDAt(pid, asOf)
		if !ok {
			// Unreachable: members are visible at their replay epoch.
			continue
		}
		out = insertSorted(out, kdtree.Result{Point: p, Score: score}, max)
	}
	return out
}

// insertSorted places r into a score-descending top-k list, truncating to k.
func insertSorted(topk []kdtree.Result, r kdtree.Result, k int) []kdtree.Result {
	i := sort.Search(len(topk), func(i int) bool {
		if topk[i].Score != r.Score {
			return topk[i].Score < r.Score
		}
		return topk[i].Point.ID > r.Point.ID
	})
	topk = append(topk, kdtree.Result{})
	copy(topk[i+1:], topk[i:])
	topk[i] = r
	if len(topk) > k {
		topk = topk[:k]
	}
	return topk
}

func indexOf(topk []kdtree.Result, id int) int {
	for i, r := range topk {
		if r.Point.ID == id {
			return i
		}
	}
	return -1
}

// AddUtility registers a new utility (Algorithm 4 growing the universe) and
// returns one Added change per member of its fresh Φ.
func (e *Engine) AddUtility(ut Utility) []Change {
	if e.stateOf(ut.ID) != nil {
		e.RemoveUtility(ut.ID)
	}
	st := e.freshState(ut.U)
	sh := &e.shards[e.shardFor(ut.ID)]
	sh.put(ut.ID, st)
	e.numUtils++
	e.ui.Insert(conetree.Item{ID: ut.ID, U: ut.U, Threshold: e.thresholdOf(st.topk)})
	changes := make([]Change, 0, len(st.phi))
	//fdrms:orderinvariant addToSet sorted-inserts into disjoint per-pid lists and changes are sorted by PointID on the line after the loop
	for pid := range st.phi {
		sh.addToSet(pid, ut.ID)
		changes = append(changes, Change{UtilityID: ut.ID, PointID: pid, Added: true})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].PointID < changes[j].PointID })
	return changes
}

// RemoveUtility drops a utility (Algorithm 4 shrinking the universe) and
// returns one Removed change per former member.
func (e *Engine) RemoveUtility(uid int) []Change {
	sh := &e.shards[e.shardFor(uid)]
	st := sh.state(uid)
	if st == nil {
		return nil
	}
	if e.snap.armed {
		sh.snapTouch(uid, st) // preserve the pre-image for the armed capture
	}
	changes := make([]Change, 0, len(st.phi))
	//fdrms:orderinvariant removeFromSet edits disjoint per-pid lists and changes are sorted by PointID on the line after the loop
	for pid := range st.phi {
		sh.removeFromSet(pid, uid)
		changes = append(changes, Change{UtilityID: uid, PointID: pid, Added: false})
	}
	sort.Slice(changes, func(i, j int) bool { return changes[i].PointID < changes[j].PointID })
	sh.drop(uid)
	e.numUtils--
	e.ui.Delete(uid)
	return changes
}
