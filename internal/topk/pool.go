// Persistent per-shard worker pool for the batched update path.
//
// ApplyBatch used to spawn one goroutine per shard per parallel run, paying
// goroutine creation and stack setup on every run — a fixed tax that the
// fan-out only amortizes on large phases. The pool replaces that with one
// LONG-LIVED goroutine per shard, created lazily the first time a run
// actually goes parallel and parked on a per-shard job channel between
// phases. Dispatching a phase is then one channel send per active shard and
// one shared WaitGroup wait, with no allocation and no scheduler churn
// beyond waking parked goroutines.
//
// Worker s only ever touches shard s and its result slot — exactly the
// footprint of the goroutines it replaces — so the memory model of the
// phase is unchanged: the channel send happens-before the worker's reads,
// and the worker's writes happen-before wg.Wait returns.
//
// Close tears the pool down (idempotent, safe if the pool never started).
// A closed engine falls back to inline phase execution rather than
// panicking, so read paths and stray late batches keep working.
package topk

import "sync"

// phaseJob describes one parallel phase dispatch to a shard worker.
// Exactly one of insRun/delRun is non-nil, mirroring runPhase.
type phaseJob struct {
	del    bool
	insRun []insOp
	delRun []Op
	base   uint64
	runPos map[int]int
}

// pool is the engine's persistent worker pool. Fields are written by the
// engine's single writer; the channels carry the cross-goroutine handoff.
type pool struct {
	jobs    []chan phaseJob // one per shard, buffered(1)
	wg      sync.WaitGroup  // counts in-flight shard jobs of the current phase
	started bool
	closed  bool
}

// ensurePool lazily starts one worker per shard on first parallel use.
func (e *Engine) ensurePool() bool {
	if e.pool.closed {
		return false
	}
	if !e.pool.started {
		e.pool.jobs = make([]chan phaseJob, len(e.shards))
		for s := range e.pool.jobs {
			e.pool.jobs[s] = make(chan phaseJob, 1)
			go e.shardWorker(s)
		}
		e.pool.started = true
	}
	return true
}

// shardWorker is the long-lived goroutine of shard s: it drains phase jobs
// until the engine closes its channel.
func (e *Engine) shardWorker(s int) {
	for job := range e.pool.jobs[s] {
		e.phaseWork(job.del, s, job.insRun, job.delRun, job.base, job.runPos)
		e.pool.wg.Done()
	}
}

// Close tears down the worker pool. It is idempotent, safe to call on an
// engine whose pool never started, and must not race a concurrent
// ApplyBatch (the engine is single-writer by contract). After Close the
// engine remains fully usable; parallel phases simply run inline.
func (e *Engine) Close() {
	if e.pool.closed {
		return
	}
	e.pool.closed = true
	if !e.pool.started {
		return
	}
	for _, ch := range e.pool.jobs {
		close(ch)
	}
	e.pool.jobs = nil
	e.pool.started = false
}
