// Persistent worker pool for the batched update path.
//
// ApplyBatch used to spawn one goroutine per shard per parallel run, paying
// goroutine creation and stack setup on every run — a fixed tax that the
// fan-out only amortizes on large phases. The pool replaces that with a
// fixed fleet of LONG-LIVED goroutines, created lazily the first time a run
// actually goes parallel and parked on one shared job queue between phases.
//
// The queue carries SHARD INDICES, not work descriptions: the dispatching
// writer stores the phase descriptor in pool.cur, enqueues every active
// shard, and waits on the shared WaitGroup. Decoupling workers from shards
// is what balances skewed phases: with one goroutine pinned per shard
// (the previous design), a phase whose tasks cluster in one contiguous id
// block ran at the speed of that one shard while the other workers idled.
// Here any free worker picks up the next pending shard, and the dispatcher
// enqueues shards LARGEST FIRST (longest-processing-time order), the
// classic greedy bound for makespan — combined with the over-partitioned
// default shard count (see DefaultShards) this keeps every core busy until
// the tail of the phase. Whichever worker runs a shard, it is the only
// goroutine touching that shard and its result slot for the phase, so the
// memory model is unchanged: the channel send happens-before the worker's
// reads, and the worker's writes happen-before wg.Wait returns.
//
// Close tears the pool down (idempotent, safe if the pool never started).
// A closed engine falls back to inline phase execution rather than
// panicking, so read paths and stray late batches keep working.
package topk

import (
	"runtime"
	"sync"
)

// phaseJob describes one parallel phase dispatch. Exactly one of
// insRun/delRun is non-nil, mirroring runPhase.
type phaseJob struct {
	del    bool
	insRun []insOp
	delRun []Op
	base   uint64
	runPos map[int]int
}

// pool is the engine's persistent worker fleet. Fields are written by the
// engine's single writer between phases; the queue carries the
// cross-goroutine handoff.
type pool struct {
	queue   chan int       // shard indices of the in-flight phase
	wg      sync.WaitGroup // counts in-flight shard jobs of the current phase
	cur     phaseJob       // current phase; written before any send, cleared after wg.Wait
	order   []int          // dispatch-order scratch (largest shard first)
	workers int
	started bool
	closed  bool
}

// ensurePool lazily starts the worker fleet on first parallel use: one
// worker per available CPU, never more than one per shard (extra goroutines
// could only contend for the queue).
func (e *Engine) ensurePool() bool {
	if e.pool.closed {
		return false
	}
	if !e.pool.started {
		w := runtime.GOMAXPROCS(0)
		if w < 2 {
			// Keep two workers even on a single-core host so the pooled
			// hand-off path (and its synchronization) is exercised — and
			// race-tested — everywhere, not only on big machines.
			w = 2
		}
		if w > len(e.shards) {
			w = len(e.shards)
		}
		e.pool.workers = w
		e.pool.queue = make(chan int, len(e.shards))
		for i := 0; i < w; i++ {
			// The queue is passed by value: a worker that stays idle until
			// Close would otherwise read e.pool.queue unsynchronized against
			// Close's nil-ing of the field (goroutine creation orders the
			// argument read; nothing orders a later field read).
			go e.poolWorker(e.pool.queue)
		}
		e.pool.started = true
	}
	return true
}

// poolWorker is one long-lived fleet goroutine: it drains shard indices
// until the engine closes the queue. The read of pool.cur is ordered after
// the dispatcher's write by the channel receive, and the previous phase's
// wg.Wait orders that write after every read of the prior descriptor.
func (e *Engine) poolWorker(queue chan int) {
	for s := range queue {
		job := e.pool.cur
		e.phaseWork(job.del, s, job.insRun, job.delRun, job.base, job.runPos)
		e.pool.wg.Done()
	}
}

// dispatch runs one parallel phase over the active shards through the pool:
// the phase descriptor is published, the active shards are enqueued largest
// task-count first, and the call returns once every shard's worker is done.
func (e *Engine) dispatch(job phaseJob, active int) {
	order := e.pool.order[:0]
	for s := range e.shards {
		if e.phaseTasks(job.del, s) > 0 {
			order = append(order, s)
		}
	}
	// Insertion sort by descending task count (stable on shard index):
	// shard counts are small, and this avoids any closure or interface
	// boxing on the steady-state path.
	for i := 1; i < len(order); i++ {
		s, n := order[i], e.phaseTasks(job.del, order[i])
		j := i - 1
		for j >= 0 && e.phaseTasks(job.del, order[j]) < n {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = s
	}
	e.pool.order = order
	e.pool.cur = job
	e.metrics.mirrorDispatch(active)
	e.pool.wg.Add(active)
	for _, s := range order {
		e.pool.queue <- s
	}
	e.pool.wg.Wait()
	e.pool.cur = phaseJob{} // don't pin the run's tuples past the phase
	e.metrics.mirrorDrained()
}

// Close tears down the worker pool. It is idempotent, safe to call on an
// engine whose pool never started, and must not race a concurrent
// ApplyBatch (the engine is single-writer by contract). After Close the
// engine remains fully usable; parallel phases simply run inline.
func (e *Engine) Close() {
	if e.pool.closed {
		return
	}
	e.pool.closed = true
	if !e.pool.started {
		return
	}
	close(e.pool.queue)
	e.pool.queue = nil
	e.pool.started = false
}
