package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fdrms/internal/geom"
)

// gridPoints generates points on a coarse grid so exact score ties and
// duplicate coordinates occur constantly — the adversarial regime for
// incremental top-k maintenance, where "did p enter the top-k?" decisions
// sit exactly on the boundary.
func gridPoints(rng *rand.Rand, n, d, idBase, levels int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = float64(rng.Intn(levels)) / float64(levels-1)
		}
		pts[i] = geom.Point{ID: idBase + i, Coords: v}
	}
	return pts
}

// gridUtilities uses axis-aligned and rational directions that produce
// exactly equal scores on grid points.
func gridUtilities(dim, n int) []Utility {
	out := make([]Utility, 0, n)
	for i := 0; i < dim && len(out) < n; i++ {
		out = append(out, Utility{ID: len(out), U: geom.Basis(dim, i)})
	}
	// Pairwise equal-weight diagonals: ties galore.
	for a := 0; a < dim && len(out) < n; a++ {
		for b := a + 1; b < dim && len(out) < n; b++ {
			u := make(geom.Vector, dim)
			u[a], u[b] = 1, 1
			out = append(out, Utility{ID: len(out), U: geom.Normalize(u)})
		}
	}
	for len(out) < n {
		u := make(geom.Vector, dim)
		for j := range u {
			u[j] = 1
		}
		out = append(out, Utility{ID: len(out), U: geom.Normalize(u)})
	}
	return out
}

// Membership must match brute force even when scores tie exactly.
func TestTiesMembershipExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)
		eps := 0.05
		pts := gridPoints(rng, 15+rng.Intn(25), d, 0, 4)
		utils := gridUtilities(d, 6)
		e := NewEngine(d, k, eps, pts, utils)
		live := make(map[int]geom.Point)
		for _, p := range pts {
			live[p.ID] = p
		}
		next := 1000
		for op := 0; op < 60; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				p := gridPoints(rng, 1, d, next, 4)[0]
				next++
				e.Insert(p)
				live[p.ID] = p
			} else {
				id := pickLive(rng, live)
				e.Delete(id)
				delete(live, id)
			}
		}
		cur := make([]geom.Point, 0, len(live))
		//fdrms:orderinvariant brutePhi's result is a threshold set, independent of input order
		for _, p := range live {
			cur = append(cur, p)
		}
		for _, ut := range utils {
			want := brutePhi(ut.U, cur, k, eps)
			got := e.Members(ut.ID)
			if len(got) != len(want) {
				return false
			}
			//fdrms:orderinvariant conjunctive membership check, any order
			for pid := range want {
				if _, ok := got[pid]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Identical tuples (same coordinates, different IDs) must all be members
// together, and deleting one must not evict its twins.
func TestDuplicateCoordinates(t *testing.T) {
	d := 3
	same := geom.Vector{0.8, 0.8, 0.8}
	pts := []geom.Point{
		{ID: 0, Coords: same.Clone()},
		{ID: 1, Coords: same.Clone()},
		{ID: 2, Coords: same.Clone()},
		{ID: 3, Coords: geom.Vector{0.1, 0.1, 0.1}},
	}
	utils := gridUtilities(d, 4)
	e := NewEngine(d, 1, 0.05, pts, utils)
	for _, ut := range utils {
		m := e.Members(ut.ID)
		for id := 0; id <= 2; id++ {
			if _, ok := m[id]; !ok {
				t.Fatalf("twin %d missing from Φ(u%d)", id, ut.ID)
			}
		}
	}
	changes := e.Delete(1)
	if len(changes) == 0 {
		t.Fatal("deleting a member twin must emit changes")
	}
	for _, ut := range utils {
		m := e.Members(ut.ID)
		if _, gone := m[1]; gone {
			t.Fatal("deleted twin still a member")
		}
		for _, id := range []int{0, 2} {
			if _, ok := m[id]; !ok {
				t.Fatalf("surviving twin %d evicted from Φ(u%d)", id, ut.ID)
			}
		}
	}
}

// The maintained exact top-k list must match a fresh tuple-index query BIT
// FOR BIT — identities included — under tie-heavy churn. Fresh queries
// break score ties by smaller point ID, and the incremental insert gate
// used to skip a tuple scoring exactly ω_k with a smaller id than the
// incumbent, leaving the maintained list on the wrong tie member.
func TestTiesTopKMatchesFreshQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, k := 3, 3
	pts := gridPoints(rng, 30, d, 0, 3)
	utils := gridUtilities(d, 6)
	e := NewEngineShards(d, k, 0.1, pts, utils, 4)
	next := 2000
	live := make([]int, 0, len(pts))
	for _, p := range pts {
		live = append(live, p.ID)
	}
	for op := 0; op < 300; op++ {
		if rng.Intn(3) != 0 || len(live) <= k {
			// Monotone fresh ids can never tie with a SMALLER id than the
			// incumbent, so also replace live small ids: the replacement
			// re-inserts an id below the current tie members, which is the
			// case the old gate got wrong.
			var p geom.Point
			if rng.Intn(4) == 0 && len(live) > 0 {
				p = gridPoints(rng, 1, d, live[rng.Intn(len(live))], 3)[0]
			} else {
				p = gridPoints(rng, 1, d, next, 3)[0]
				next++
			}
			e.Insert(p)
			if !containsInt(live, p.ID) {
				live = append(live, p.ID)
			}
		} else {
			i := rng.Intn(len(live))
			e.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		for _, ut := range utils {
			got := e.TopK(ut.ID)
			want := e.tree.TopK(ut.U, k)
			if len(got) != len(want) {
				t.Fatalf("op %d u%d: maintained top-k has %d entries, fresh query %d", op, ut.ID, len(got), len(want))
			}
			for i := range got {
				if got[i].Point.ID != want[i].Point.ID || got[i].Score != want[i].Score {
					t.Fatalf("op %d u%d rank %d: maintained (id %d, %v), fresh (id %d, %v)",
						op, ut.ID, i, got[i].Point.ID, got[i].Score, want[i].Point.ID, want[i].Score)
				}
			}
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// The maintained exact top-k scores must match brute force under tie-heavy
// churn (scores, not identities: equal-scoring tuples are interchangeable).
func TestTiesTopKScores(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, k := 3, 4
	pts := gridPoints(rng, 40, d, 0, 3)
	utils := gridUtilities(d, 5)
	e := NewEngine(d, k, 0.1, pts, utils)
	live := map[int]geom.Point{}
	for _, p := range pts {
		live[p.ID] = p
	}
	next := 500
	for op := 0; op < 200; op++ {
		if rng.Intn(2) == 0 || len(live) <= k {
			p := gridPoints(rng, 1, d, next, 3)[0]
			next++
			e.Insert(p)
			live[p.ID] = p
		} else {
			id := pickLive(rng, live)
			e.Delete(id)
			delete(live, id)
		}
		if op%20 != 0 {
			continue
		}
		for _, ut := range utils {
			var scores []float64
			//fdrms:orderinvariant scores are sorted before comparison
			for _, p := range live {
				scores = append(scores, geom.Dot(ut.U, p.Coords))
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
			topk := e.TopK(ut.ID)
			kk := k
			if kk > len(scores) {
				kk = len(scores)
			}
			if len(topk) != kk {
				t.Fatalf("op %d u%d: topk length %d, want %d", op, ut.ID, len(topk), kk)
			}
			for i := 0; i < kk; i++ {
				if math.Abs(topk[i].Score-scores[i]) > 1e-12 {
					t.Fatalf("op %d u%d rank %d: score %v, want %v", op, ut.ID, i, topk[i].Score, scores[i])
				}
			}
		}
	}
}
