// Engine metrics: obs mirrors of the maintenance counters and the phase
// clock, updated at RUN granularity, not per operation — every mirror
// update folds an already-computed per-run delta into a padded atomic, so
// the instrumented hot path costs a handful of atomic adds per run and
// zero allocations, and a nil *Metrics costs one branch per site.
//
// Timing never comes from this package reading a clock: the per-phase
// nanosecond mirrors republish deltas of the caller-injected phase clock
// (SetPhaseClock), keeping the nondet determinism contract intact — with
// no clock installed the phase mirrors simply stay zero.
package topk

import "fdrms/internal/obs"

// Metrics holds the engine's obs handles. Construct with NewMetrics and
// install with SetMetrics; a nil *Metrics disables mirroring entirely.
type Metrics struct {
	// Maintenance counters (mirror the exported Engine counters).
	InsertOps  *obs.Counter // fdrms_topk_ops_total{kind="insert"}
	DeleteOps  *obs.Counter // fdrms_topk_ops_total{kind="delete"}
	Affected   *obs.Counter // fdrms_topk_affected_total
	Requeries  *obs.Counter // fdrms_topk_requeries_total
	Promotions *obs.Counter // fdrms_topk_promotions_total
	Changes    *obs.Counter // fdrms_topk_changes_total

	// Run/phase accounting.
	Runs         *obs.Counter // fdrms_topk_runs_total
	ParallelRuns *obs.Counter // fdrms_topk_parallel_runs_total
	CandNs       *obs.Counter // fdrms_topk_phase_ns_total{phase="candidate"}
	IndexNs      *obs.Counter // fdrms_topk_phase_ns_total{phase="index"}
	FanoutNs     *obs.Counter // fdrms_topk_phase_ns_total{phase="fanout"}
	MergeNs      *obs.Counter // fdrms_topk_phase_ns_total{phase="merge"}
	EmitNs       *obs.Counter // fdrms_topk_phase_ns_total{phase="emit"}

	// Worker pool.
	PoolDispatches *obs.Counter // fdrms_pool_dispatches_total
	PoolShardJobs  *obs.Counter // fdrms_pool_shard_jobs_total
	PoolBusyNs     *obs.Counter // fdrms_pool_busy_ns_total
	PoolQueueDepth *obs.Gauge   // fdrms_pool_queue_depth
}

// NewMetrics registers the engine's metric families on r and returns the
// handle set, or nil when r is nil. Get-or-create registration means every
// engine sharing one registry shares one set of accumulators.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	phase := func(p string) *obs.Counter {
		return r.Counter("fdrms_topk_phase_ns_total",
			"nanoseconds per batch pipeline phase (injected phase clock; 0 without one)",
			obs.L("phase", p))
	}
	return &Metrics{
		InsertOps:  r.Counter("fdrms_topk_ops_total", "operations processed by the engine", obs.L("kind", "insert")),
		DeleteOps:  r.Counter("fdrms_topk_ops_total", "operations processed by the engine", obs.L("kind", "delete")),
		Affected:   r.Counter("fdrms_topk_affected_total", "utilities whose Phi changed, summed over operations"),
		Requeries:  r.Counter("fdrms_topk_requeries_total", "fresh tuple-index top-k queries during maintenance"),
		Promotions: r.Counter("fdrms_topk_promotions_total", "top-k vacancies filled by a buffered runner-up (no requery)"),
		Changes:    r.Counter("fdrms_topk_changes_total", "membership changes emitted to the set-cover layer"),

		Runs:         r.Counter("fdrms_topk_runs_total", "insert/delete runs executed by the batch path"),
		ParallelRuns: r.Counter("fdrms_topk_parallel_runs_total", "runs whose fan-out went through the worker pool"),
		CandNs:       phase("candidate"),
		IndexNs:      phase("index"),
		FanoutNs:     phase("fanout"),
		MergeNs:      phase("merge"),
		EmitNs:       phase("emit"),

		PoolDispatches: r.Counter("fdrms_pool_dispatches_total", "parallel phases dispatched to the worker pool"),
		PoolShardJobs:  r.Counter("fdrms_pool_shard_jobs_total", "shard jobs enqueued across pool dispatches"),
		PoolBusyNs:     r.Counter("fdrms_pool_busy_ns_total", "summed worker wall time across phases (injected phase clock)"),
		PoolQueueDepth: r.Gauge("fdrms_pool_queue_depth", "shard jobs of the in-flight phase (0 between phases)"),
	}
}

// SetMetrics installs (or, with nil, removes) the engine's metric mirrors.
// Must be called by the engine's single writer, like every mutating entry
// point; the handles themselves are safe for concurrent scraping.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// The mirror* methods are the engine's per-run update sites: each is a
// nil-receiver no-op, so an uninstrumented engine pays one branch per run
// phase and nothing else.

// mirrorOps folds one run's operation count.
func (m *Metrics) mirrorOps(del bool, n int) {
	if m == nil {
		return
	}
	if del {
		m.DeleteOps.Add(uint64(n))
	} else {
		m.InsertOps.Add(uint64(n))
	}
}

// mirrorMerge folds one run's per-shard worker counters (already summed by
// mergePhase).
func (m *Metrics) mirrorMerge(affected, requeries, promotions int, busyNanos int64) {
	if m == nil {
		return
	}
	m.Affected.Add(uint64(affected))
	m.Requeries.Add(uint64(requeries))
	m.Promotions.Add(uint64(promotions))
	m.PoolBusyNs.Add(uint64(busyNanos))
}

// mirrorChanges folds one run's emitted change count.
func (m *Metrics) mirrorChanges(n int) {
	if m == nil {
		return
	}
	m.Changes.Add(uint64(n))
}

// mirrorPhase folds one run's phase-clock deltas (all zero with no clock).
func (m *Metrics) mirrorPhase(cand, index, fanout, merge, emit int64) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.CandNs.Add(uint64(cand))
	m.IndexNs.Add(uint64(index))
	m.FanoutNs.Add(uint64(fanout))
	m.MergeNs.Add(uint64(merge))
	m.EmitNs.Add(uint64(emit))
}

// mirrorParallel marks one run as pool-dispatched.
func (m *Metrics) mirrorParallel() {
	if m == nil {
		return
	}
	m.ParallelRuns.Inc()
}

// mirrorDispatch records one pool dispatch of active shard jobs; the queue
// depth gauge holds the phase's job count until mirrorDrained resets it.
func (m *Metrics) mirrorDispatch(active int) {
	if m == nil {
		return
	}
	m.PoolDispatches.Inc()
	m.PoolShardJobs.Add(uint64(active))
	m.PoolQueueDepth.Set(int64(active))
}

// mirrorDrained marks the in-flight phase complete.
func (m *Metrics) mirrorDrained() {
	if m == nil {
		return
	}
	m.PoolQueueDepth.Set(0)
}
