// Package obs is the repo's stdlib-only metrics core: padded atomic
// counters and gauges, fixed-bucket log₂-scale histograms, a registry with
// Prometheus text-format exposition, and a fixed-size per-batch trace ring.
//
// The design contract, shared with the engine's scratch/slab reuse story,
// is ZERO ALLOCATIONS ON THE HOT PATH: Counter.Add, Gauge.Set,
// Histogram.Observe and TraceRing.Record never allocate (CI-gated by
// AllocsPerRun tests), and every handle is nil-safe — a nil *Counter's Add
// is a single branch, so uninstrumented runs pay one predictable compare
// per site and no registry needs to exist. Allocation and locking are
// confined to registration and scrape time, which are cold by definition.
//
// Instrumented packages hold typed handles (obtained once from a Registry
// via get-or-create) rather than the registry itself, so the per-update
// path is an atomic add on a cache-line-padded word with no map lookups,
// no label formatting, and no interface boxing.
package obs

import "sync/atomic"

// Counter is a monotonically increasing uint64, padded to its own cache
// line so independently updated counters never false-share. All methods
// are safe on a nil receiver (they no-op / return 0).
type Counter struct {
	v atomic.Uint64
	_ [56]byte // pad to 64B: hot counters must not share a line
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Counters are monotone; deltas are unsigned by design.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64, padded like Counter. All methods are safe on
// a nil receiver.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label is one name="value" pair. Labels are plain structs (not maps) so
// building a label set never allocates beyond the slice literal at
// registration time.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{Key: k, Value: v} at registration sites.
func L(k, v string) Label { return Label{Key: k, Value: v} }
