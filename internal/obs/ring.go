package obs

import "sync"

// BatchTrace is one per-batch record: what the batch was, what it changed,
// and where its nanoseconds went (per-phase values come from the engine's
// injected PhaseProfile clock and are zero when no clock is installed).
// Field names are the JSON wire format served by /debug/vars.
type BatchTrace struct {
	Seq        uint64 `json:"seq"`        // monotone record number (never wraps)
	Generation uint64 `json:"generation"` // generation id the batch published
	Ops        int    `json:"ops"`        // total operations in the batch
	Inserts    int    `json:"inserts"`
	Deletes    int    `json:"deletes"`
	Changes    int    `json:"changes"`   // top-k membership changes emitted
	Requeries  int    `json:"requeries"` // index requeries (delete repair)
	CandNs     int64  `json:"candidate_ns"`
	IndexNs    int64  `json:"index_ns"`
	FanoutNs   int64  `json:"fanout_ns"`
	MergeNs    int64  `json:"merge_ns"`
	EmitNs     int64  `json:"emit_ns"`
	TotalNs    int64  `json:"total_ns"` // wall time of the whole write
}

// TraceRing is a fixed-size ring of the most recent batch traces. Record
// copies into a preallocated slot under a mutex — no allocation, and the
// critical section is a struct copy, so the writer's batch path pays
// nanoseconds, not milliseconds. Snapshot (scrape path) allocates a fresh
// ordered copy. All methods are safe on a nil receiver.
type TraceRing struct {
	mu  sync.Mutex
	buf []BatchTrace
	n   uint64 // total records ever written
}

// NewTraceRing returns a ring holding the last size traces (minimum 1).
func NewTraceRing(size int) *TraceRing {
	if size < 1 {
		size = 1
	}
	return &TraceRing{buf: make([]BatchTrace, size)}
}

// Record appends *t, stamping its Seq. The pointer is not retained.
func (r *TraceRing) Record(t *BatchTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	t.Seq = r.n
	r.buf[r.n%uint64(len(r.buf))] = *t
	r.n++
	r.mu.Unlock()
}

// Total returns the number of traces ever recorded.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained traces, oldest first. The result is a
// fresh slice safe to hold across further Records.
func (r *TraceRing) Snapshot() []BatchTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	kept := r.n
	if kept > size {
		kept = size
	}
	out := make([]BatchTrace, 0, kept)
	for i := r.n - kept; i < r.n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}
