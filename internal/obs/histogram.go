package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log₂ octaves refined into 16 linear sub-buckets.
//
// Values 0..15 land in their own exact bucket. A value v ≥ 16 with highest
// set bit e (e = bits.Len64(v)-1 ≥ 4) lands in octave e, sub-bucket
// (v >> (e-4)) & 15 — the four bits below the leading bit — covering
// [(16+sub) << (e-4), (17+sub) << (e-4)). Bucket widths therefore grow
// geometrically but any bucket's width is at most 1/16 of its lower edge,
// which bounds the RELATIVE quantile resolution error at 6.25%: Quantile
// reports a bucket's inclusive upper edge, so it never understates a
// latency and overstates it by less than 1/16. Max is tracked exactly on
// the side and clips every quantile, so max (and any quantile that falls
// in the max's bucket) is exact.
//
// 16 exact buckets + 60 octaves × 16 sub-buckets = 976 buckets (~7.6 KiB
// of atomics per histogram) cover the full uint64 range — nanosecond
// observations never saturate or clamp at the top.
const (
	histSubBuckets = 16
	histBuckets    = histSubBuckets + (64-4)*histSubBuckets // 976
)

// Histogram is a fixed-bucket concurrent histogram. Observe is lock-free
// (one atomic add per field it touches), allocation-free, and safe on a
// nil receiver. Readout methods are for scrape time: they walk the bucket
// array on the stack and may observe a torn view under concurrent writes
// (count/sum/buckets each internally consistent, mutually off by in-flight
// observations) — fine for monitoring, documented here so nobody builds an
// invariant on top.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
	_     [40]byte // keep the hot triple off the bucket array's lines
	bkt   [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram. (Histograms embedded in other
// structs need no constructor; the zero value is ready.)
func NewHistogram() *Histogram { return new(Histogram) }

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := bits.Len64(v) - 1 // ≥ 4
	sub := (v >> uint(e-4)) & (histSubBuckets - 1)
	return (e-3)*histSubBuckets + int(sub)
}

// bucketUpper returns the inclusive upper edge of bucket b. The top bucket
// computes (32 << 59) - 1, which wraps to exactly MaxUint64.
func bucketUpper(b int) uint64 {
	if b < histSubBuckets {
		return uint64(b)
	}
	e := uint(b/histSubBuckets + 3)
	sub := uint64(b % histSubBuckets)
	return ((histSubBuckets+sub+1)<<(e-4) - 1)
}

// Observe records one value. Negative observations (a clock that stepped
// backwards) clamp to 0 rather than corrupting the unsigned accounting.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.bkt[bucketOf(u)].Add(1)
	for {
		old := h.max.Load()
		if u <= old || h.max.CompareAndSwap(old, u) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact maximum observed value (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// observed values: the inclusive upper edge of the bucket holding the
// rank-⌈q·count⌉ observation, clipped to the exact max. The bound is tight
// to within the 6.25% bucket resolution (see the layout comment above);
// values below 16 are exact. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	// One consistent pass: snapshot the buckets on the stack, derive the
	// total from the snapshot itself so rank and cumulative counts agree
	// even under concurrent Observes.
	var snap [histBuckets]uint64
	var total uint64
	for i := range h.bkt {
		c := h.bkt[i].Load()
		snap[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range snap {
		cum += snap[i]
		if cum >= rank {
			hi := bucketUpper(i)
			if mx := h.max.Load(); mx > 0 && hi > mx {
				return mx
			}
			return hi
		}
	}
	return h.max.Load() // unreachable unless racing; max is the safe answer
}
