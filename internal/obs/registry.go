package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates a family's exposition shape.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "summary"
	}
	return "untyped"
}

// series is one labeled instance within a family. Exactly one of the value
// fields is set, per the family's kind.
type series struct {
	labels []Label // sorted by key at registration
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series // registration order (deterministic: single registrar)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is get-or-create: asking twice for the
// same (name, labels) returns the SAME handle, so independently constructed
// components (e.g. successive bench cells) can share accumulators without
// coordination. All constructors are safe on a nil *Registry and return
// nil handles — the universal "instrumentation off" path.
//
// Registration and scrape take a mutex; neither is a hot path. The handles
// they return are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names for deterministic exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter named name with the given labels, creating
// family and series as needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(kindCounter, name, help, labels)
	if s.c == nil {
		s.c = new(Counter)
	}
	r.mu.Unlock()
	return s.c
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(kindGauge, name, help, labels)
	if s.g == nil {
		s.g = new(Gauge)
	}
	r.mu.Unlock()
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by f at scrape time.
// f must be safe to call from the scraper goroutine at any moment — it may
// only read atomically published or immutable state. Re-registering the
// same (name, labels) REPLACES the function (last writer wins), which is
// what sequential component lifecycles (close one store, open another
// against the same registry) want.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(kindGaugeFunc, name, help, labels)
	s.f = f
	r.mu.Unlock()
}

// Histogram returns the histogram named name with the given labels. It is
// exposed as a Prometheus summary (quantile series + _sum/_count) plus a
// companion <name>_max gauge family holding the exact maximum.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(kindHistogram, name, help, labels)
	if s.h == nil {
		s.h = new(Histogram)
	}
	r.mu.Unlock()
	return s.h
}

// lookup returns the series for (name, labels), creating family and series
// slots as needed. It returns WITH r.mu HELD so the caller can fill the
// value slot before unlocking; a kind clash with an existing family is a
// programmer error and panics.
func (r *Registry) lookup(kind metricKind, name, help string, labels []Label) *series {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	r.mu.Lock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.families[name] = fam
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if fam.kind != kind {
		r.mu.Unlock()
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	for _, s := range fam.series {
		if labelsEqual(s.labels, sorted) {
			return s
		}
	}
	s := &series{labels: sorted}
	fam.series = append(fam.series, s)
	return s
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// histQuantiles are the summary quantiles every histogram exposes.
var histQuantiles = []struct {
	tag string
	q   float64
}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}}

// WriteText renders every family in the Prometheus text exposition format,
// families in name order, series in registration order. Safe to call while
// writers hammer the handles: values are atomic loads.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.names {
		fam := r.families[name]
		writeHeader(&b, fam.name, fam.help, fam.kind.String())
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				writeSample(&b, fam.name, "", s.labels, "", strconv.FormatUint(s.c.Load(), 10))
			case kindGauge:
				writeSample(&b, fam.name, "", s.labels, "", strconv.FormatInt(s.g.Load(), 10))
			case kindGaugeFunc:
				v := 0.0
				if s.f != nil {
					v = s.f()
				}
				writeSample(&b, fam.name, "", s.labels, "", strconv.FormatFloat(v, 'g', -1, 64))
			case kindHistogram:
				for _, hq := range histQuantiles {
					writeSample(&b, fam.name, "", s.labels, hq.tag, strconv.FormatUint(s.h.Quantile(hq.q), 10))
				}
				writeSample(&b, fam.name, "_sum", s.labels, "", strconv.FormatUint(s.h.Sum(), 10))
				writeSample(&b, fam.name, "_count", s.labels, "", strconv.FormatUint(s.h.Count(), 10))
			}
		}
		if fam.kind == kindHistogram {
			// The exact maximum rides along as a sibling gauge family: the
			// summary proper has no max slot, and clipping quantiles to an
			// exposed max keeps tail readings honest.
			writeHeader(&b, fam.name+"_max", fam.help+" (exact maximum)", "gauge")
			for _, s := range fam.series {
				writeSample(&b, fam.name, "_max", s.labels, "", strconv.FormatUint(s.h.Max(), 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(help)
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// writeSample emits one `name suffix{labels,quantile="q"} value` line.
func writeSample(b *strings.Builder, name, suffix string, labels []Label, quantile, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || quantile != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			escapeLabel(b, l.Value)
			b.WriteByte('"')
		}
		if quantile != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`quantile="`)
			b.WriteString(quantile)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeLabel writes v with the three characters the text format reserves
// in label values (backslash, double quote, newline) escaped.
func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// ServeHTTP exposes the registry as a Prometheus scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r == nil {
		return
	}
	_ = r.WriteText(w)
}
