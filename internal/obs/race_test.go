package obs

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentScrape is the registry's race gate: N writer goroutines
// hammer one counter, one per-writer counter, a shared histogram and the
// trace ring while a scraper loops over the text exposition. Run under
// -race this exercises every handle's concurrency contract; the assertions
// check the scraper's view is monotone and the final totals are exact.
func TestConcurrentScrape(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	reg := NewRegistry()
	shared := reg.Counter("fdrms_race_shared_total", "shared across writers")
	hist := reg.Histogram("fdrms_race_lat_ns", "shared histogram")
	ring := NewTraceRing(32)
	perWriter := make([]*Counter, writers)
	for i := range perWriter {
		perWriter[i] = reg.Counter("fdrms_race_writer_total", "per-writer", L("writer", string(rune('a'+i))))
	}
	reg.GaugeFunc("fdrms_race_func", "scrape-time func", func() float64 { return float64(shared.Load()) })

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perW; i++ {
				shared.Inc()
				perWriter[w].Add(2)
				hist.Observe(int64(i))
				ring.Record(&BatchTrace{Ops: i, Generation: uint64(w)})
			}
		}(w)
	}

	// Scraper: full text exposition in a tight loop, plus monotonicity of
	// the shared counter and sanity of the histogram totals mid-flight.
	scrapeDone := make(chan error, 1)
	go func() {
		var last uint64
		var lastCount uint64
		for !stop.Load() {
			if err := reg.WriteText(io.Discard); err != nil {
				scrapeDone <- err
				return
			}
			cur := shared.Load()
			if cur < last {
				t.Errorf("shared counter went backwards: %d -> %d", last, cur)
			}
			last = cur
			cnt, sum, mx := hist.Count(), hist.Sum(), hist.Max()
			if cnt < lastCount {
				t.Errorf("histogram count went backwards: %d -> %d", lastCount, cnt)
			}
			lastCount = cnt
			if mx > perW {
				t.Errorf("histogram max %d exceeds any observed value", mx)
			}
			if sum > uint64(writers)*perW*(perW+1)/2 {
				t.Errorf("histogram sum %d exceeds the final total", sum)
			}
			_ = hist.Quantile(0.99)
			_ = ring.Snapshot()
		}
		scrapeDone <- nil
	}()

	wg.Wait()
	stop.Store(true)
	if err := <-scrapeDone; err != nil {
		t.Fatalf("scrape error: %v", err)
	}

	if got := shared.Load(); got != writers*perW {
		t.Fatalf("shared counter = %d, want %d", got, writers*perW)
	}
	for w, c := range perWriter {
		if got := c.Load(); got != 2*perW {
			t.Fatalf("writer %d counter = %d, want %d", w, got, 2*perW)
		}
	}
	if got := hist.Count(); got != writers*perW {
		t.Fatalf("histogram count = %d, want %d", got, writers*perW)
	}
	if got := hist.Sum(); got != uint64(writers)*perW*(perW+1)/2 {
		t.Fatalf("histogram sum = %d", got)
	}
	if got := hist.Max(); got != perW {
		t.Fatalf("histogram max = %d, want %d", got, perW)
	}
	if got := ring.Total(); got != writers*perW {
		t.Fatalf("ring total = %d, want %d", got, writers*perW)
	}

	// The final exposition must contain every family with exact values.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fdrms_race_shared_total 40000") {
		t.Fatalf("final scrape missing exact shared total:\n%s", sb.String())
	}
}
