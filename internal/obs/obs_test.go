package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestNilHandlesNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *TraceRing
	var reg *Registry
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	r.Record(&BatchTrace{})
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || r.Total() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if reg.Counter("x", "") != nil || reg.Gauge("x", "") != nil || reg.Histogram("x", "") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	reg.GaugeFunc("x", "", func() float64 { return 1 })
	if err := reg.WriteText(nil); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil ring snapshot must be nil")
	}
}

func TestBucketMapping(t *testing.T) {
	// Exact small values.
	for v := uint64(0); v < 16; v++ {
		if b := bucketOf(v); b != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, b, v)
		}
		if u := bucketUpper(int(v)); u != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, u, v)
		}
	}
	// Buckets tile the range: every value's bucket upper edge is >= the
	// value, the previous bucket's edge is < the value, and edges are
	// strictly increasing.
	prev := uint64(0)
	for b := 1; b < histBuckets; b++ {
		u := bucketUpper(b)
		if u <= prev {
			t.Fatalf("bucket edges not increasing at %d: %d <= %d", b, u, prev)
		}
		prev = u
	}
	if bucketUpper(histBuckets-1) != math.MaxUint64 {
		t.Fatalf("top bucket edge = %d, want MaxUint64", bucketUpper(histBuckets-1))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		b := bucketOf(v)
		if hi := bucketUpper(b); v > hi {
			t.Fatalf("v=%d above its bucket %d edge %d", v, b, hi)
		}
		if b > 0 {
			if lo := bucketUpper(b - 1); v <= lo {
				t.Fatalf("v=%d at or below previous bucket edge %d (bucket %d)", v, lo, b)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..10000: true p50=5000, p99=9900, max=10000.
	for v := int64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 10000*10001/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 10000 {
		t.Fatalf("max = %d", h.Max())
	}
	check := func(q float64, truth uint64) {
		t.Helper()
		got := h.Quantile(q)
		if got < truth {
			t.Fatalf("q%.3f = %d understates true %d", q, got, truth)
		}
		if float64(got) > float64(truth)*(1+1.0/16)+1 {
			t.Fatalf("q%.3f = %d exceeds %d by more than the 6.25%% bound", q, got, truth)
		}
	}
	check(0.5, 5000)
	check(0.99, 9900)
	check(0.999, 9990)
	if got := h.Quantile(1); got != 10000 {
		t.Fatalf("q1 = %d, want exact max 10000", got)
	}
	// Negative observations clamp to zero.
	h2 := NewHistogram()
	h2.Observe(-5)
	if h2.Quantile(0.5) != 0 || h2.Sum() != 0 || h2.Count() != 1 {
		t.Fatal("negative observation must clamp to 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("fdrms_test_total", "help", Label{"kind", "x"})
	b := reg.Counter("fdrms_test_total", "help", Label{"kind", "x"})
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	c := reg.Counter("fdrms_test_total", "help", Label{"kind", "y"})
	if a == c {
		t.Fatal("different labels must return distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	reg.Gauge("fdrms_test_total", "help")
}

func TestRegistryText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fdrms_b_total", "b help", Label{"kind", "x"}).Add(3)
	reg.Gauge("fdrms_a_gauge", "a help").Set(-2)
	reg.GaugeFunc("fdrms_f", "f help", func() float64 { return 1.5 })
	h := reg.Histogram("fdrms_lat_ns", "lat help", Label{"op", `q"uo\te`})
	h.Observe(100)
	h.Observe(200)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE fdrms_a_gauge gauge",
		"fdrms_a_gauge -2",
		"# TYPE fdrms_b_total counter",
		`fdrms_b_total{kind="x"} 3`,
		"fdrms_f 1.5",
		"# TYPE fdrms_lat_ns summary",
		`quantile="0.5"`,
		`quantile="0.999"`,
		`fdrms_lat_ns_sum{op="q\"uo\\te"} 300`,
		`fdrms_lat_ns_count{op="q\"uo\\te"} 2`,
		"# TYPE fdrms_lat_ns_max gauge",
		`fdrms_lat_ns_max{op="q\"uo\\te"} 200`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must come out name-sorted (deterministic exposition).
	if strings.Index(out, "fdrms_a_gauge") > strings.Index(out, "fdrms_b_total") {
		t.Fatal("families not sorted by name")
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("fdrms_age", "", func() float64 { return 1 })
	reg.GaugeFunc("fdrms_age", "", func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fdrms_age 2") {
		t.Fatalf("GaugeFunc re-registration must replace the function:\n%s", sb.String())
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 6; i++ {
		r.Record(&BatchTrace{Ops: i})
	}
	snap := r.Snapshot()
	if len(snap) != 4 || r.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4/6", len(snap), r.Total())
	}
	for i, tr := range snap {
		if tr.Ops != i+2 || tr.Seq != uint64(i+2) {
			t.Fatalf("slot %d = ops %d seq %d, want oldest-first window 2..5", i, tr.Ops, tr.Seq)
		}
	}
}

// TestHotPathZeroAllocs is the CI gate for the package's core contract:
// counter adds, gauge sets, histogram observes and trace records allocate
// NOTHING per operation.
func TestHotPathZeroAllocs(t *testing.T) {
	c := new(Counter)
	g := new(Gauge)
	h := NewHistogram()
	r := NewTraceRing(64)
	tr := BatchTrace{Ops: 1, CandNs: 5}
	var v int64
	cases := []struct {
		name string
		f    func()
	}{
		{"counter-add", func() { c.Add(3) }},
		{"counter-inc", func() { c.Inc() }},
		{"gauge-set", func() { v++; g.Set(v) }},
		{"gauge-add", func() { g.Add(-1) }},
		{"histogram-observe", func() { v++; h.Observe(v) }},
		{"ring-record", func() { r.Record(&tr) }},
		{"nil-counter-add", func() { (*Counter)(nil).Add(1) }},
		{"nil-histogram-observe", func() { (*Histogram)(nil).Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
