package main

import (
	"os"
	"path/filepath"
	"testing"

	"fdrms/internal/analysis"
)

// TestModuleIsClean runs every analyzer over the whole module, so `go test
// ./...` enforces the same gate CI does: zero findings, with all contract
// annotations and markers in force.
func TestModuleIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(root)
	prog, err := loader.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(prog, all)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
