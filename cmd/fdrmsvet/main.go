// Command fdrmsvet is the module's multichecker: it loads every package of
// the fdrms module and runs the project-specific analyzers that turn the
// repository's correctness conventions into compile-time gates —
//
//	mapiter        no unannotated map iteration in determinism-contract
//	               packages (//fdrms:orderinvariant <reason> is the audited
//	               escape hatch)
//	lockdiscipline generation pointers published only via their publish
//	               helper; mutex-guarded fields written only under the lock
//	scratchescape  caller-owned QueryScratch and slab-fragment slices never
//	               outlive the call that received them
//	nondet         no wall clock, global randomness, or map-ordered
//	               formatting reachable from Snapshot/Encode/ApplyBatch
//
// Usage:
//
//	fdrmsvet [-C moduledir] [analyzer ...]
//
// With no analyzer names, every analyzer runs. Exits 1 when any diagnostic
// is reported, 2 on loading errors — the CI static-analysis job runs it
// blocking, like a compiler.
package main

import (
	"flag"
	"fmt"
	"os"

	"fdrms/internal/analysis"
	"fdrms/internal/analysis/lockdiscipline"
	"fdrms/internal/analysis/mapiter"
	"fdrms/internal/analysis/nondet"
	"fdrms/internal/analysis/scratchescape"
)

var all = []*analysis.Analyzer{
	mapiter.Analyzer,
	lockdiscipline.Analyzer,
	scratchescape.Analyzer,
	nondet.Analyzer,
}

func main() {
	moduleDir := flag.String("C", ".", "module root directory (where go.mod lives)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if args := flag.Args(); len(args) > 0 {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range args {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "fdrmsvet: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	loader := analysis.NewLoader(*moduleDir)
	prog, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdrmsvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdrmsvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fdrmsvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
