// Command rmsbench regenerates the tables and figures of the FD-RMS paper's
// evaluation (Section IV) on scaled datasets, printing aligned text tables.
//
// Usage:
//
//	rmsbench -exp table1                 # Table I: dataset statistics
//	rmsbench -exp fig4                   # skyline sizes of synthetic data
//	rmsbench -exp fig5 -datasets Indep   # effect of eps on FD-RMS
//	rmsbench -exp fig6                   # effect of result size r (all algorithms)
//	rmsbench -exp fig7                   # effect of k
//	rmsbench -exp fig8                   # scalability in d and n
//	rmsbench -exp ablation-cover         # stable cover vs per-op re-greedy
//	rmsbench -exp ablation-cone          # cone-tree pruning effectiveness
//	rmsbench -exp ablation-topk          # top-k fast-path requery rate
//	rmsbench -exp batch                  # batched vs sequential update throughput
//	rmsbench -exp window                 # sliding-window / delete-heavy throughput
//	rmsbench -exp recover                # WAL ingest, checkpoint, crash recovery
//	rmsbench -exp serve                  # concurrent readers vs writer batches (MVCC)
//	rmsbench -exp scaling                # GOMAXPROCS × shards sweep with phase breakdown
//	rmsbench -exp all                    # everything above
//
// With -json, each experiment additionally writes BENCH_<exp>.json — the
// same tables with rows keyed by column name (ops/s, speedup, allocs/op,
// result==seq, ...), plus run metadata (git rev, Go version, GOMAXPROCS,
// scale, timestamp), so the performance trajectory is machine-readable and
// comparable across commits and runners. Every JSON row carries the
// gomaxprocs and shards that produced it.
//
// With -metrics, every benchmarked instance is instrumented against one
// obs registry and its Prometheus text dump is printed after each
// experiment — both a way to eyeball internals (requery rates, slab reuse,
// phase breakdown) and the live half of the instrumentation-overhead
// comparison: run an experiment with and without -metrics and diff the
// throughput columns.
//
// Profiling hooks for the multi-core work: -cpuprofile, -memprofile and
// -mutexprofile write pprof profiles covering the selected experiments
// (mutex profiling is only enabled when requested — it taxes every lock).
//
// Flags -scale, -samples, -m, -recomputes, -budget and -seed control the
// reproduction scale; see EXPERIMENTS.md for the settings used to produce
// the recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fdrms/internal/bench"
	"fdrms/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1 | fig4 | fig5 | fig6 | fig7 | fig8 | ablation-cover | ablation-cone | ablation-topk | nonlinear | batch | window | recover | serve | replicate | scaling | all")
		batches    = flag.String("batches", "", "comma-separated batch sizes for -exp batch, window and scaling (default 1,16,256; scaling: 1,64,256)")
		scale      = flag.Float64("scale", 0.05, "fraction of the paper's dataset sizes (1.0 = full scale)")
		samples    = flag.Int("samples", 20000, "mrr test-set size (paper: 500000)")
		m          = flag.Int("m", 2048, "FD-RMS utility sample upper bound M")
		recomputes = flag.Int("recomputes", 10, "timed recomputations per static run (0 = every skyline change)")
		budget     = flag.Duration("budget", 20*time.Second, "per-recompute budget before a static algorithm is skipped")
		seed       = flag.Int64("seed", 1, "random seed")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
		jsonOut    = flag.Bool("json", false, "also write BENCH_<exp>.json with machine-readable rows")
		metrics    = flag.Bool("metrics", false, "instrument benchmarked instances and print the metrics registry after each experiment")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	)
	flag.Parse()

	if *mutexProf != "" {
		// Sampled, and only when asked for: fraction accounting costs every
		// contended lock acquisition in the process.
		runtime.SetMutexProfileFraction(100)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmsbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rmsbench: cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf != "" {
			writeProfile("heap", *memProf)
		}
		if *mutexProf != "" {
			writeProfile("mutex", *mutexProf)
		}
	}()

	opt := bench.Options{
		Scale:         *scale,
		MRRSamples:    *samples,
		M:             *m,
		MaxRecomputes: *recomputes,
		StaticBudget:  *budget,
		Seed:          *seed,
	}
	if *metrics {
		opt.Metrics = obs.NewRegistry()
	}
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	// emit prints a table immediately (so long sweeps show progress) and
	// collects it for the optional JSON report.
	var collected []*bench.Table
	emit := func(ts ...*bench.Table) {
		for _, t := range ts {
			t.Fprint(os.Stdout)
			collected = append(collected, t)
		}
	}

	// parseSizes resolves the -batches grid; empty means the experiment's
	// own default (DefaultBatchSizes / DefaultScalingBatchSizes).
	parseSizes := func() []int {
		if *batches == "" {
			return nil
		}
		var sizes []int
		for _, s := range strings.Split(*batches, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "rmsbench: bad batch size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
		return sizes
	}

	// perDataset streams one table per dataset.
	perDataset := func(f func(bench.Options, ...string) []*bench.Table) {
		list := names
		if len(list) == 0 {
			list = bench.DatasetNames
		}
		for _, name := range list {
			emit(f(opt, name)...)
		}
	}

	run := func(e string) {
		start := time.Now()
		collected = collected[:0]
		switch e {
		case "table1":
			emit(bench.Table1(opt))
		case "fig4":
			emit(bench.Fig4(opt)...)
		case "fig5":
			perDataset(bench.Fig5)
		case "fig6":
			perDataset(bench.Fig6)
		case "fig7":
			perDataset(bench.Fig7)
		case "fig8":
			emit(bench.Fig8(opt)...)
		case "ablation-cover":
			emit(bench.AblationCover(opt, names...))
		case "ablation-cone":
			emit(bench.AblationCone(opt, names...))
		case "ablation-topk":
			emit(bench.AblationTopK(opt, names...))
		case "nonlinear":
			emit(bench.Nonlinear(opt, names...)...)
		case "batch":
			emit(bench.BatchThroughput(opt, parseSizes()...))
		case "window":
			emit(bench.SlidingWindow(opt, parseSizes()...))
		case "scaling":
			emit(bench.Scaling(opt, parseSizes()...))
		case "recover":
			emit(bench.Recovery(opt))
		case "serve":
			emit(bench.Serve(opt))
		case "replicate":
			emit(bench.Replicate(opt))
		default:
			fmt.Fprintf(os.Stderr, "rmsbench: unknown experiment %q\n", e)
			flag.Usage()
			os.Exit(2)
		}
		if *jsonOut {
			path := fmt.Sprintf("BENCH_%s.json", e)
			if err := bench.WriteJSON(path, e, bench.CollectMeta(opt), collected); err != nil {
				fmt.Fprintf(os.Stderr, "rmsbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
		}
		if opt.Metrics != nil {
			fmt.Printf("--- metrics after %s ---\n", e)
			opt.Metrics.WriteText(os.Stdout)
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", e, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8",
			"ablation-cover", "ablation-cone", "ablation-topk", "nonlinear", "batch", "window", "recover", "serve", "replicate", "scaling"} {
			run(e)
		}
		return
	}
	run(*exp)
}

// writeProfile dumps one named runtime profile, forcing a GC first for the
// heap profile so it reflects live objects rather than garbage.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmsbench: %v\n", err)
		return
	}
	defer f.Close()
	if name == "heap" {
		runtime.GC()
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "rmsbench: %s profile: %v\n", name, err)
	}
}
