package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fdrms/internal/obs"
	"fdrms/rms"
)

func testStore(t *testing.T, n, d int) *rms.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]rms.Point, n)
	for i := range pts {
		vals := make([]float64, d)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		pts[i] = rms.Point{ID: i, Values: vals}
	}
	store, err := rms.NewStore(d, pts, rms.Options{K: 1, R: 5, Epsilon: 0.05, MaxUtilities: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	return store
}

func get(t *testing.T, srv *httptest.Server, path string, wantCode int) map[string]any {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil && wantCode == 200 {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
	return body
}

func TestServeEndpoints(t *testing.T) {
	store := testStore(t, 200, 3)
	srv := httptest.NewServer(newMux(memBackend{store: store}, nil, nil, false))
	defer srv.Close()

	if resp, err := srv.Client().Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}

	res := get(t, srv, "/result", 200)
	if res["generation"].(float64) != 1 {
		t.Fatalf("initial generation = %v, want 1", res["generation"])
	}
	answer := res["result"].([]any)
	if len(answer) == 0 || len(answer) > 5 {
		t.Fatalf("answer size %d, want 1..5", len(answer))
	}

	st := get(t, srv, "/stats", 200)
	if st["n"].(float64) != 200 {
		t.Fatalf("stats n = %v, want 200", st["n"])
	}

	top := get(t, srv, "/topk?u=0.5,0.3,0.2&k=7", 200)
	tuples := top["topk"].([]any)
	if len(tuples) != 7 {
		t.Fatalf("topk returned %d tuples, want 7", len(tuples))
	}
	prev := tuples[0].(map[string]any)["score"].(float64)
	for _, tu := range tuples[1:] {
		s := tu.(map[string]any)["score"].(float64)
		if s > prev {
			t.Fatal("topk scores not in decreasing order")
		}
		prev = s
	}

	reg := get(t, srv, "/regret?u=0.5,0.3,0.2", 200)
	ratio := reg["regret_ratio"].(float64)
	if ratio < 0 || ratio > 1 {
		t.Fatalf("regret ratio %v outside [0, 1]", ratio)
	}

	// Bad inputs map to 400, not 500.
	get(t, srv, "/topk?u=0.5,0.3", 400)      // wrong dimension
	get(t, srv, "/topk?u=0.5,0.3,nope", 400) // unparsable
	get(t, srv, "/topk?u=0.5,0.3,0.2&k=bad", 400)
	get(t, srv, "/topk?u=0.5,0.3,0.2&k=0", 400)
	get(t, srv, "/regret?u=-1,0.3,0.2", 400) // negative component
	get(t, srv, "/regret", 400)              // missing u
}

func TestServeUpdateAdvancesGeneration(t *testing.T) {
	store := testStore(t, 100, 2)
	srv := httptest.NewServer(newMux(memBackend{store: store}, nil, nil, false))
	defer srv.Close()

	body := `{"insert": [{"id": 1000, "values": [2.0, 2.0]}], "delete": [0, 1]}`
	resp, err := srv.Client().Post(srv.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("update: status %d, body %v", resp.StatusCode, out)
	}
	if out["generation"].(float64) != 2 || out["n"].(float64) != 99 {
		t.Fatalf("update response %v, want generation 2 and n 99", out)
	}

	// The dominating insert must now appear in the answer and in top-1.
	top := get(t, srv, "/topk?u=0.5,0.5&k=1", 200)
	first := top["topk"].([]any)[0].(map[string]any)
	if first["id"].(float64) != 1000 {
		t.Fatalf("top-1 id = %v, want the dominating insert 1000", first["id"])
	}
	if top["generation"].(float64) != 2 {
		t.Fatalf("topk generation = %v, want 2", top["generation"])
	}

	// A malformed batch changes nothing.
	resp2, err := srv.Client().Post(srv.URL+"/update", "application/json",
		strings.NewReader(`{"insert": [{"id": 1001, "values": [1.0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("malformed update: status %d, want 400", resp2.StatusCode)
	}
	if g := get(t, srv, "/result", 200); g["generation"].(float64) != 2 {
		t.Fatalf("generation advanced to %v after a rejected batch", g["generation"])
	}
}

func TestServeConcurrentReadsDuringUpdates(t *testing.T) {
	store := testStore(t, 150, 2)
	srv := httptest.NewServer(newMux(memBackend{store: store}, nil, nil, false))
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		for b := 0; b < 10; b++ {
			body := fmt.Sprintf(`{"insert": [{"id": %d, "values": [0.5, 0.5]}], "delete": [%d]}`, 2000+b, b)
			resp, err := srv.Client().Post(srv.URL+"/update", "application/json", strings.NewReader(body))
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				done <- fmt.Errorf("update %d: status %d", b, resp.StatusCode)
				return
			}
		}
		done <- nil
	}()

	lastGen := 0.0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if g := get(t, srv, "/result", 200); g["generation"].(float64) != 11 {
				t.Fatalf("final generation = %v, want 11", g["generation"])
			}
			return
		default:
		}
		res := get(t, srv, "/regret?u=0.6,0.4", 200)
		if g := res["generation"].(float64); g < lastGen {
			t.Fatalf("generation went backwards: %v after %v", g, lastGen)
		} else {
			lastGen = g
		}
	}
}

// A wrong method on a registered path must answer 405 with an Allow header
// and the server's JSON error shape — not a bare 404.
func TestServeMethodNotAllowed(t *testing.T) {
	store := testStore(t, 50, 2)
	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	store.SetTelemetry(tel)
	srv := httptest.NewServer(newMux(memBackend{store: store}, tel, reg, false))
	defer srv.Close()

	cases := []struct {
		method, path, allow string
	}{
		{"POST", "/result", "GET"},
		{"DELETE", "/topk", "GET"},
		{"POST", "/healthz", "GET"},
		{"GET", "/update", "POST"},
		{"PUT", "/metrics", "GET"},
		{"POST", "/debug/vars", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: non-JSON 405 body: %v", c.method, c.path, err)
		}
		resp.Body.Close()
		if body["error"] == "" {
			t.Fatalf("%s %s: 405 body carries no error message", c.method, c.path)
		}
	}

	// Unknown paths still 404.
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

// /metrics must expose every instrumented layer's families and /debug/vars
// the batch traces, after traffic has flowed through the store.
func TestServeMetricsAndDebugVars(t *testing.T) {
	store := testStore(t, 100, 2)
	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	store.SetTelemetry(tel)
	srv := httptest.NewServer(newMux(memBackend{store: store}, tel, reg, false))
	defer srv.Close()

	body := `{"insert": [{"id": 3000, "values": [1.5, 1.5]}], "delete": [0]}`
	resp, err := srv.Client().Post(srv.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("update: status %d", resp.StatusCode)
	}
	get(t, srv, "/topk?u=0.5,0.5&k=3", 200)

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("metrics: status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(raw)
	for _, prefix := range []string{"fdrms_topk_", "fdrms_pool_", "fdrms_setcover_", "fdrms_wal_", "fdrms_store_"} {
		if !strings.Contains(scrape, prefix) {
			t.Fatalf("scrape is missing family prefix %q", prefix)
		}
	}
	if !strings.Contains(scrape, "fdrms_store_publishes_total 1") {
		t.Fatal("scrape does not count the committed update")
	}

	dv := get(t, srv, "/debug/vars", 200)
	traces, ok := dv["traces"].([]any)
	if !ok || len(traces) != 1 {
		t.Fatalf("debug/vars traces = %v, want exactly one record", dv["traces"])
	}
	tr := traces[0].(map[string]any)
	if tr["ops"].(float64) != 2 || tr["inserts"].(float64) != 1 || tr["deletes"].(float64) != 1 {
		t.Fatalf("trace record %v, want ops 2 / inserts 1 / deletes 1", tr)
	}
	phase, ok := dv["phase"].(map[string]any)
	if !ok || phase["runs"].(float64) == 0 {
		t.Fatalf("debug/vars phase = %v, want a run counted", dv["phase"])
	}
}

// -pprof mounts the profiling handlers; without it the paths are 404.
func TestServePprofOptIn(t *testing.T) {
	store := testStore(t, 30, 2)
	on := httptest.NewServer(newMux(memBackend{store: store}, nil, nil, true))
	defer on.Close()
	resp, err := on.Client().Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline with -pprof: status %d, want 200", resp.StatusCode)
	}

	off := httptest.NewServer(newMux(memBackend{store: store}, nil, nil, false))
	defer off.Close()
	resp, err = off.Client().Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof cmdline without -pprof: status %d, want 404", resp.StatusCode)
	}
}
