// Command rmsserve exposes a dynamic k-regret minimizing set over HTTP —
// the serving half of the FD-RMS reproduction. It loads a synthetic
// anti-correlated database, maintains its k-RMS under updates, and answers
// every query lock-free from the newest committed generation (see
// rms.Store): queries never wait on ingestion, and each response reports
// the generation it was served from so clients can reason about versions.
//
// Endpoints:
//
//	GET  /result                  the current k-RMS answer
//	GET  /topk?u=0.3,0.7&k=5      top-k tuples under a preference vector
//	GET  /regret?u=0.3,0.7        k-regret ratio of the answer for one user
//	GET  /stats                   database size, answer size, maintenance stats
//	GET  /healthz                 liveness probe
//	GET  /metrics                 Prometheus text exposition of every layer's metrics
//	GET  /debug/vars              recent batch traces + cumulative phase breakdown, JSON
//	POST /update                  JSON batch: {"insert": [{"id":..,"values":[..]}], "delete": [ids]}
//
// With -pprof, the standard net/http/pprof profiling handlers are mounted
// under /debug/pprof/. A request hitting a registered path with the wrong
// method gets 405 with an Allow header rather than 404.
//
// Example:
//
//	rmsserve -addr :8080 -n 10000 -d 4 -r 20
//	curl 'localhost:8080/topk?u=0.5,0.5,0.2,0.1&k=3'
//	curl 'localhost:8080/metrics'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"fdrms/internal/dataset"
	"fdrms/internal/obs"
	"fdrms/rms"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		n        = flag.Int("n", 10000, "initial synthetic database size")
		d        = flag.Int("d", 4, "attribute count")
		k        = flag.Int("k", 1, "regret rank k")
		r        = flag.Int("r", 20, "maximum answer size r")
		m        = flag.Int("m", 2048, "utility sample upper bound M")
		eps      = flag.Float64("eps", 0, "top-k slack epsilon (0 = auto-tune)")
		seed     = flag.Int64("seed", 1, "random seed")
		usePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	ds := dataset.AntiCor(*n, *d, *seed)
	initial := make([]rms.Point, len(ds.Points))
	for i, p := range ds.Points {
		initial[i] = rms.Point{ID: p.ID, Values: p.Coords}
	}
	store, err := rms.NewStore(*d, initial, rms.Options{
		K: *k, R: *r, Epsilon: *eps, MaxUtilities: *m, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("rmsserve: %v", err)
	}
	defer store.Close()

	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	store.SetTelemetry(tel)

	log.Printf("rmsserve: serving n=%d d=%d k=%d r=%d on %s (generation %d)",
		store.Len(), *d, *k, *r, *addr, store.Current().ID())
	log.Fatal(http.ListenAndServe(*addr, newMux(store, tel, reg, *usePprof)))
}

// pointJSON is the wire form of a tuple.
type pointJSON struct {
	ID     int       `json:"id"`
	Values []float64 `json:"values"`
}

func toJSON(ps []rms.Point) []pointJSON {
	out := make([]pointJSON, len(ps))
	for i, p := range ps {
		out[i] = pointJSON{ID: p.ID, Values: p.Values}
	}
	return out
}

// updateRequest is the POST /update body: insertions then deletions,
// applied as one atomic batch (readers see before or after, never between).
type updateRequest struct {
	Insert []pointJSON `json:"insert"`
	Delete []int       `json:"delete"`
}

// newMux wires the read and update handlers around a store. Every read
// handler pins ONE generation for its whole response, so the fields of a
// single response are mutually consistent even while batches commit.
//
// tel and reg are optional: a nil reg skips /metrics, a nil tel skips
// /debug/vars. Routes are registered through a method table so a wrong
// method on a known path answers 405 with an Allow header — the JSON error
// convention of this server, guaranteed here rather than inherited from
// whatever the stdlib mux of the moment does.
func newMux(store *rms.Store, tel *rms.Telemetry, reg *obs.Registry, usePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	allowed := map[string][]string{}
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+path, h)
		allowed[path] = append(allowed[path], method)
	}

	handle(http.MethodGet, "/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
	})

	handle(http.MethodGet, "/result", func(w http.ResponseWriter, req *http.Request) {
		g := store.Current()
		writeOK(w, map[string]any{
			"generation": g.ID(),
			"result":     toJSON(g.Result()),
		})
	})

	handle(http.MethodGet, "/stats", func(w http.ResponseWriter, req *http.Request) {
		g := store.Current()
		st := g.Stats()
		writeOK(w, map[string]any{
			"generation":  g.ID(),
			"n":           g.Len(),
			"result_size": len(g.Result()),
			"epoch":       g.Epoch(),
			"stats":       st,
		})
	})

	handle(http.MethodGet, "/topk", func(w http.ResponseWriter, req *http.Request) {
		u, ok := parseUtility(w, req)
		if !ok {
			return
		}
		k := 10
		if s := req.URL.Query().Get("k"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad k: %v", err)
				return
			}
			k = v
		}
		g := store.Current()
		res, err := g.TopK(u, k)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		type scored struct {
			pointJSON
			Score float64 `json:"score"`
		}
		out := make([]scored, len(res))
		for i, s := range res {
			out[i] = scored{pointJSON{ID: s.Point.ID, Values: s.Point.Values}, s.Score}
		}
		writeOK(w, map[string]any{"generation": g.ID(), "topk": out})
	})

	handle(http.MethodGet, "/regret", func(w http.ResponseWriter, req *http.Request) {
		u, ok := parseUtility(w, req)
		if !ok {
			return
		}
		g := store.Current()
		ratio, err := g.RegretRatioFor(u)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeOK(w, map[string]any{
			"generation":   g.ID(),
			"regret_ratio": ratio,
			"result_size":  len(g.Result()),
		})
	})

	handle(http.MethodPost, "/update", func(w http.ResponseWriter, req *http.Request) {
		var ur updateRequest
		if err := json.NewDecoder(req.Body).Decode(&ur); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		batch := make([]rms.Update, 0, len(ur.Insert)+len(ur.Delete))
		for _, p := range ur.Insert {
			batch = append(batch, rms.Ins(rms.Point{ID: p.ID, Values: p.Values}))
		}
		for _, id := range ur.Delete {
			batch = append(batch, rms.Del(id))
		}
		if err := store.ApplyBatch(batch); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		g := store.Current()
		writeOK(w, map[string]any{
			"generation": g.ID(),
			"applied":    len(batch),
			"n":          g.Len(),
		})
	})

	if reg != nil {
		handle(http.MethodGet, "/metrics", reg.ServeHTTP)
	}
	if tel != nil {
		handle(http.MethodGet, "/debug/vars", func(w http.ResponseWriter, req *http.Request) {
			writeOK(w, tel.DebugVars())
		})
	}
	if usePprof {
		// Registered without method patterns and outside the 405 table: the
		// pprof handlers do their own method handling (symbol accepts POST).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Bare-path fallbacks: a method pattern is more specific than the
	// method-less pattern for the same path, so these catch exactly the
	// wrong-method hits.
	for path, methods := range allowed {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Allow", allow)
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s", req.Method, req.URL.Path)
		})
	}

	return mux
}

// parseUtility reads the u=v1,v2,... query parameter.
func parseUtility(w http.ResponseWriter, req *http.Request) ([]float64, bool) {
	s := req.URL.Query().Get("u")
	if s == "" {
		httpError(w, http.StatusBadRequest, "missing utility parameter u=v1,v2,...")
		return nil, false
	}
	parts := strings.Split(s, ",")
	u := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad utility component %q: %v", p, err)
			return nil, false
		}
		u[i] = v
	}
	return u, true
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rmsserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
