// Command rmsserve exposes a dynamic k-regret minimizing set over HTTP —
// the serving half of the FD-RMS reproduction. It runs in three modes:
//
//   - memory (default): loads a synthetic anti-correlated database and
//     serves it from a purely in-memory rms.Store.
//   - primary (-wal-dir): same serving surface backed by rms.DurableStore —
//     every update is WAL-logged before it is applied, checkpoints run
//     automatically, and the WAL directory doubles as the replication feed
//     followers tail.
//   - follower (-follow): bootstraps from the newest checkpoint in a
//     primary's WAL directory and tails its segments (internal/replica),
//     serving the same lock-free read API read-only with an applied seq and
//     staleness annotation on every response; /update answers 403.
//
// Endpoints:
//
//	GET  /result                  the current k-RMS answer
//	GET  /topk?u=0.3,0.7&k=5      top-k tuples under a preference vector
//	GET  /regret?u=0.3,0.7        k-regret ratio of the answer for one user
//	GET  /stats                   database size, answer size, maintenance stats
//	GET  /healthz                 liveness: 200 while the process serves, with state JSON
//	GET  /readyz                  readiness: 503 until bootstrap/recovery completes and staleness <= bound
//	GET  /metrics                 Prometheus text exposition of every layer's metrics
//	GET  /debug/vars              recent batch traces + cumulative phase breakdown, JSON
//	POST /update                  JSON batch: {"insert": [{"id":..,"values":[..]}], "delete": [ids]}
//
// Every read response carries the generation it was served from plus the
// backend's replication position (state, applied_seq, staleness_ms where
// meaningful), so clients and routers can reason about versions and lag.
//
// With -pprof, the standard net/http/pprof profiling handlers are mounted
// under /debug/pprof/. A request hitting a registered path with the wrong
// method gets 405 with an Allow header rather than 404.
//
// Example:
//
//	rmsserve -addr :8080 -n 10000 -d 4 -r 20 -wal-dir /data/rms   # primary
//	rmsserve -addr :8081 -follow /data/rms                        # follower
//	curl 'localhost:8081/topk?u=0.5,0.5,0.2,0.1&k=3'
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"fdrms/internal/dataset"
	"fdrms/internal/obs"
	"fdrms/internal/replica"
	"fdrms/rms"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		n        = flag.Int("n", 10000, "initial synthetic database size")
		d        = flag.Int("d", 4, "attribute count")
		k        = flag.Int("k", 1, "regret rank k")
		r        = flag.Int("r", 20, "maximum answer size r")
		m        = flag.Int("m", 2048, "utility sample upper bound M")
		eps      = flag.Float64("eps", 0, "top-k slack epsilon (0 = auto-tune)")
		seed     = flag.Int64("seed", 1, "random seed")
		usePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		walDir   = flag.String("wal-dir", "", "serve as a durable primary rooted at this WAL directory")
		follow   = flag.String("follow", "", "serve as a read-only follower tailing this primary WAL directory")
		stale    = flag.Duration("staleness-bound", 5*time.Second, "follower staleness past which /readyz degrades")
		poll     = flag.Duration("poll", 25*time.Millisecond, "follower poll interval for new WAL records")
		syncEach = flag.Bool("sync", true, "primary: fsync the WAL after every batch")
		ckptOps  = flag.Int("ckpt-ops", 50000, "primary: auto-checkpoint after this many applied ops (0 = off)")
	)
	flag.Parse()
	if *walDir != "" && *follow != "" {
		log.Fatal("rmsserve: -wal-dir and -follow are mutually exclusive")
	}

	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	opts := rms.Options{K: *k, R: *r, Epsilon: *eps, MaxUtilities: *m, Seed: *seed}

	var b backend
	switch {
	case *follow != "":
		fol := replica.Open(*follow, replica.Options{
			PollInterval:   *poll,
			StalenessBound: *stale,
			Metrics:        replica.NewMetrics(reg),
			Telemetry:      tel,
		})
		defer fol.Close()
		b = &followerBackend{fol: fol}
		log.Printf("rmsserve: following %s on %s (staleness bound %v)", *follow, *addr, *stale)
	case *walDir != "":
		ds, err := rms.OpenDurable(*walDir, *d, synthetic(*n, *d, *seed), opts, rms.DurableOptions{
			SyncEveryBatch:     *syncEach,
			CheckpointEveryOps: *ckptOps,
			RetainSegments:     2,
		})
		if err != nil {
			log.Fatalf("rmsserve: %v", err)
		}
		defer ds.Close()
		ds.SetTelemetry(tel)
		b = &durableBackend{ds: ds}
		log.Printf("rmsserve: durable primary at %s, n=%d on %s (applied seq %d)",
			*walDir, ds.Len(), *addr, ds.AppliedSeq())
	default:
		store, err := rms.NewStore(*d, synthetic(*n, *d, *seed), opts)
		if err != nil {
			log.Fatalf("rmsserve: %v", err)
		}
		defer store.Close()
		store.SetTelemetry(tel)
		b = memBackend{store: store}
		log.Printf("rmsserve: serving n=%d d=%d k=%d r=%d on %s (generation %d)",
			store.Len(), *d, *k, *r, *addr, store.Current().ID())
	}

	log.Fatal(http.ListenAndServe(*addr, newMux(b, tel, reg, *usePprof)))
}

// synthetic builds the default anti-correlated initial database.
func synthetic(n, d int, seed int64) []rms.Point {
	ds := dataset.AntiCor(n, d, seed)
	initial := make([]rms.Point, len(ds.Points))
	for i, p := range ds.Points {
		initial[i] = rms.Point{ID: p.ID, Values: p.Coords}
	}
	return initial
}

// meta is a backend's replication position, annotated onto every read
// response and both health endpoints.
type meta struct {
	State        string // "serving" | "bootstrapping" | "following" | "degraded"
	AppliedSeq   uint64
	HasSeq       bool
	StalenessMS  int64
	HasStaleness bool
	Reason       string // why not ready / degraded; "" otherwise
}

// backend abstracts what the HTTP surface serves from: an in-memory store,
// a durable primary, or a replication follower. Gen may return nil while a
// follower bootstraps.
type backend interface {
	Gen() *rms.Generation
	Meta() meta
	Ready() (bool, meta)
	Apply(batch []rms.Update) (*rms.Generation, error)
}

// errReadOnly marks backends that do not accept writes.
var errReadOnly = errors.New("read-only follower: send updates to the primary")

// memBackend serves a plain rms.Store (no durability, no replication).
type memBackend struct{ store *rms.Store }

func (b memBackend) Gen() *rms.Generation { return b.store.Current() }
func (b memBackend) Meta() meta           { return meta{State: "serving"} }
func (b memBackend) Ready() (bool, meta)  { return true, b.Meta() }
func (b memBackend) Apply(batch []rms.Update) (*rms.Generation, error) {
	if err := b.store.ApplyBatch(batch); err != nil {
		return nil, err
	}
	return b.store.Current(), nil
}

// durableBackend serves a durable primary; reads annotate the lock-free
// applied-seq mirror.
type durableBackend struct{ ds *rms.DurableStore }

func (b *durableBackend) Gen() *rms.Generation { return b.ds.Current() }
func (b *durableBackend) Meta() meta {
	return meta{State: "serving", AppliedSeq: b.ds.AppliedSeq(), HasSeq: true}
}
func (b *durableBackend) Ready() (bool, meta) { return true, b.Meta() }
func (b *durableBackend) Apply(batch []rms.Update) (*rms.Generation, error) {
	err := b.ds.ApplyBatch(batch)
	if err != nil && errors.Is(err, rms.ErrAutoCheckpoint) {
		// The write IS applied and durable; only the background checkpoint
		// failed. Alarm, serve the success — retrying the batch would
		// double-apply it.
		log.Printf("rmsserve: %v", err)
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return b.ds.Current(), nil
}

// followerBackend serves a replication follower read-only.
type followerBackend struct{ fol *replica.Follower }

func (b *followerBackend) Gen() *rms.Generation {
	g, _ := b.fol.Current()
	return g
}

func (b *followerBackend) Meta() meta {
	st := b.fol.Status()
	return meta{
		State:        st.State.String(),
		AppliedSeq:   st.AppliedSeq,
		HasSeq:       true,
		StalenessMS:  st.Staleness.Milliseconds(),
		HasStaleness: true,
		Reason:       st.Reason,
	}
}

func (b *followerBackend) Ready() (bool, meta) {
	mt := b.Meta()
	if mt.State != replica.StateFollowing.String() {
		if mt.Reason == "" {
			mt.Reason = "replication not live (state " + mt.State + ")"
		}
		return false, mt
	}
	return true, mt
}

func (b *followerBackend) Apply([]rms.Update) (*rms.Generation, error) {
	return nil, errReadOnly
}

// pointJSON is the wire form of a tuple.
type pointJSON struct {
	ID     int       `json:"id"`
	Values []float64 `json:"values"`
}

func toJSON(ps []rms.Point) []pointJSON {
	out := make([]pointJSON, len(ps))
	for i, p := range ps {
		out[i] = pointJSON{ID: p.ID, Values: p.Values}
	}
	return out
}

// updateRequest is the POST /update body: insertions then deletions,
// applied as one atomic batch (readers see before or after, never between).
type updateRequest struct {
	Insert []pointJSON `json:"insert"`
	Delete []int       `json:"delete"`
}

// annotate merges the backend's replication position into a response body.
func annotate(body map[string]any, mt meta) map[string]any {
	body["state"] = mt.State
	if mt.HasSeq {
		body["applied_seq"] = mt.AppliedSeq
	}
	if mt.HasStaleness {
		body["staleness_ms"] = mt.StalenessMS
	}
	if mt.Reason != "" {
		body["reason"] = mt.Reason
	}
	return body
}

// healthBody is the document both health endpoints serve (and the router's
// prober parses).
func healthBody(g *rms.Generation, mt meta) map[string]any {
	body := map[string]any{"generation": uint64(0)}
	if g != nil {
		body["generation"] = g.ID()
	}
	return annotate(body, mt)
}

// newMux wires the read and update handlers around a backend. Every read
// handler pins ONE generation for its whole response, so the fields of a
// single response are mutually consistent even while batches commit.
//
// tel and reg are optional: a nil reg skips /metrics, a nil tel skips
// /debug/vars. Routes are registered through a method table so a wrong
// method on a known path answers 405 with an Allow header — the JSON error
// convention of this server, guaranteed here rather than inherited from
// whatever the stdlib mux of the moment does.
func newMux(b backend, tel *rms.Telemetry, reg *obs.Registry, usePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	allowed := map[string][]string{}
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" "+path, h)
		allowed[path] = append(allowed[path], method)
	}

	// requireGen loads the serving generation or answers 503 (a follower
	// that has not bootstrapped yet has nothing consistent to serve).
	requireGen := func(w http.ResponseWriter) (*rms.Generation, bool) {
		g := b.Gen()
		if g == nil {
			httpError(w, http.StatusServiceUnavailable, "no generation yet: backend is %s", b.Meta().State)
			return nil, false
		}
		return g, true
	}

	// Liveness: 200 as long as the process serves requests — a degraded
	// follower is still alive (and still serving its last consistent
	// generation); orchestrators must not restart it for lag.
	handle(http.MethodGet, "/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeOK(w, healthBody(b.Gen(), b.Meta()))
	})

	// Readiness: 503 until recovery/bootstrap completed AND replication
	// staleness is within bound — the signal routers and load balancers eject
	// on.
	handle(http.MethodGet, "/readyz", func(w http.ResponseWriter, req *http.Request) {
		ready, mt := b.Ready()
		body := healthBody(b.Gen(), mt)
		body["ready"] = ready
		if !ready {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(body)
			return
		}
		writeOK(w, body)
	})

	handle(http.MethodGet, "/result", func(w http.ResponseWriter, req *http.Request) {
		g, ok := requireGen(w)
		if !ok {
			return
		}
		writeOK(w, annotate(map[string]any{
			"generation": g.ID(),
			"result":     toJSON(g.Result()),
		}, b.Meta()))
	})

	handle(http.MethodGet, "/stats", func(w http.ResponseWriter, req *http.Request) {
		g, ok := requireGen(w)
		if !ok {
			return
		}
		st := g.Stats()
		writeOK(w, annotate(map[string]any{
			"generation":  g.ID(),
			"n":           g.Len(),
			"result_size": len(g.Result()),
			"epoch":       g.Epoch(),
			"stats":       st,
		}, b.Meta()))
	})

	handle(http.MethodGet, "/topk", func(w http.ResponseWriter, req *http.Request) {
		u, ok := parseUtility(w, req)
		if !ok {
			return
		}
		k := 10
		if s := req.URL.Query().Get("k"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad k: %v", err)
				return
			}
			k = v
		}
		g, ok := requireGen(w)
		if !ok {
			return
		}
		res, err := g.TopK(u, k)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		type scored struct {
			pointJSON
			Score float64 `json:"score"`
		}
		out := make([]scored, len(res))
		for i, s := range res {
			out[i] = scored{pointJSON{ID: s.Point.ID, Values: s.Point.Values}, s.Score}
		}
		writeOK(w, annotate(map[string]any{"generation": g.ID(), "topk": out}, b.Meta()))
	})

	handle(http.MethodGet, "/regret", func(w http.ResponseWriter, req *http.Request) {
		u, ok := parseUtility(w, req)
		if !ok {
			return
		}
		g, ok := requireGen(w)
		if !ok {
			return
		}
		ratio, err := g.RegretRatioFor(u)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeOK(w, annotate(map[string]any{
			"generation":   g.ID(),
			"regret_ratio": ratio,
			"result_size":  len(g.Result()),
		}, b.Meta()))
	})

	handle(http.MethodPost, "/update", func(w http.ResponseWriter, req *http.Request) {
		var ur updateRequest
		if err := json.NewDecoder(req.Body).Decode(&ur); err != nil {
			httpError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		batch := make([]rms.Update, 0, len(ur.Insert)+len(ur.Delete))
		for _, p := range ur.Insert {
			batch = append(batch, rms.Ins(rms.Point{ID: p.ID, Values: p.Values}))
		}
		for _, id := range ur.Delete {
			batch = append(batch, rms.Del(id))
		}
		g, err := b.Apply(batch)
		if errors.Is(err, errReadOnly) {
			httpError(w, http.StatusForbidden, "%v", err)
			return
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeOK(w, annotate(map[string]any{
			"generation": g.ID(),
			"applied":    len(batch),
			"n":          g.Len(),
		}, b.Meta()))
	})

	if reg != nil {
		handle(http.MethodGet, "/metrics", reg.ServeHTTP)
	}
	if tel != nil {
		handle(http.MethodGet, "/debug/vars", func(w http.ResponseWriter, req *http.Request) {
			writeOK(w, tel.DebugVars())
		})
	}
	if usePprof {
		// Registered without method patterns and outside the 405 table: the
		// pprof handlers do their own method handling (symbol accepts POST).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// Bare-path fallbacks: a method pattern is more specific than the
	// method-less pattern for the same path, so these catch exactly the
	// wrong-method hits.
	for path, methods := range allowed {
		sort.Strings(methods)
		allow := strings.Join(methods, ", ")
		mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Allow", allow)
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed on %s", req.Method, req.URL.Path)
		})
	}

	return mux
}

// parseUtility reads the u=v1,v2,... query parameter.
func parseUtility(w http.ResponseWriter, req *http.Request) ([]float64, bool) {
	s := req.URL.Query().Get("u")
	if s == "" {
		httpError(w, http.StatusBadRequest, "missing utility parameter u=v1,v2,...")
		return nil, false
	}
	parts := strings.Split(s, ",")
	u := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad utility component %q: %v", p, err)
			return nil, false
		}
		u[i] = v
	}
	return u, true
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("rmsserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
