package main

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"fdrms/internal/replica"
	"fdrms/rms"
)

// waitReady polls a server's /readyz until it answers 200.
func waitReady(t *testing.T, srv *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func TestServeLivenessReadinessSplit(t *testing.T) {
	// A follower pointed at a primary that does not exist: alive (the
	// process serves) but NOT ready (nothing consistent to serve yet).
	fol := replica.Open(filepath.Join(t.TempDir(), "nope"), replica.Options{
		PollInterval: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	defer fol.Close()
	srv := httptest.NewServer(newMux(&followerBackend{fol: fol}, nil, nil, false))
	defer srv.Close()

	live := get(t, srv, "/healthz", http.StatusOK)
	if live["state"] != "bootstrapping" {
		t.Fatalf("healthz state = %v, want bootstrapping", live["state"])
	}
	notReady := get(t, srv, "/readyz", http.StatusServiceUnavailable)
	if notReady["ready"] != false || notReady["reason"] == nil {
		t.Fatalf("readyz while bootstrapping: %v", notReady)
	}
	// Reads have no generation to pin yet: 503, not a wrong answer.
	get(t, srv, "/result", http.StatusServiceUnavailable)

	// The in-memory backend is ready the moment it exists.
	mem := httptest.NewServer(newMux(memBackend{store: testStore(t, 50, 3)}, nil, nil, false))
	defer mem.Close()
	ready := get(t, mem, "/readyz", http.StatusOK)
	if ready["ready"] != true || ready["state"] != "serving" {
		t.Fatalf("memory readyz: %v", ready)
	}
}

func TestServeFollowerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ds, err := rms.OpenDurable(dir, 3, synthetic(120, 3, 7),
		rms.Options{K: 1, R: 5, Epsilon: 0.05, MaxUtilities: 128, Seed: 1},
		rms.DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	primary := httptest.NewServer(newMux(&durableBackend{ds: ds}, nil, nil, false))
	defer primary.Close()

	fol := replica.Open(dir, replica.Options{
		PollInterval: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	defer fol.Close()
	follower := httptest.NewServer(newMux(&followerBackend{fol: fol}, nil, nil, false))
	defer follower.Close()

	// Write through the PRIMARY's HTTP surface; the follower must become
	// ready and serve the identical answer set.
	body := `{"insert":[{"id":9001,"values":[0.99,0.99,0.99]},{"id":9002,"values":[0.98,0.01,0.97]}],"delete":[0]}`
	resp, err := primary.Client().Post(primary.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary update: status %d", resp.StatusCode)
	}
	waitReady(t, follower)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rb := get(t, follower, "/readyz", http.StatusOK)
		if uint64(rb["applied_seq"].(float64)) >= ds.AppliedSeq() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at applied_seq %v, primary at %d", rb["applied_seq"], ds.AppliedSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}

	resultIDs := func(srv *httptest.Server) []int {
		doc := get(t, srv, "/result", http.StatusOK)
		var ids []int
		for _, it := range doc["result"].([]any) {
			ids = append(ids, int(it.(map[string]any)["id"].(float64)))
		}
		sort.Ints(ids)
		return ids
	}
	p, f := resultIDs(primary), resultIDs(follower)
	if len(p) == 0 || len(p) != len(f) {
		t.Fatalf("result sets differ in size: primary %v, follower %v", p, f)
	}
	for i := range p {
		if p[i] != f[i] {
			t.Fatalf("result sets differ: primary %v, follower %v", p, f)
		}
	}

	// Follower reads are annotated with the replication position.
	doc := get(t, follower, "/result", http.StatusOK)
	if doc["state"] != "following" || doc["applied_seq"] == nil || doc["staleness_ms"] == nil {
		t.Fatalf("follower read missing replication annotations: %v", doc)
	}

	// Writes against a follower are refused, not queued, not applied.
	resp, err = follower.Client().Post(follower.URL+"/update", "application/json",
		strings.NewReader(`{"insert":[{"id":1,"values":[0.5,0.5,0.5]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower update: status %d, want 403", resp.StatusCode)
	}
}
