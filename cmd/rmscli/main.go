// Command rmscli runs k-regret minimizing set computation over CSV files —
// the end-user entry point of the library.
//
// Compute a representative set (CSV columns: id, attr1..attrD,
// larger = better):
//
//	rmscli -input hotels.csv -algo FD-RMS -k 1 -r 10
//	rmscli -input hotels.csv -algo Sphere -r 10 -mrr
//
// Generate a synthetic dataset to play with:
//
//	rmscli -generate anticor -n 10000 -d 6 > anticor.csv
//
// Print the skyline instead of a regret set:
//
//	rmscli -input hotels.csv -skyline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fdrms/internal/dataset"
	"fdrms/rms"
)

func main() {
	var (
		input    = flag.String("input", "", "input CSV file (id,attr1,...,attrD; larger = better)")
		algo     = flag.String("algo", "FD-RMS", "algorithm: FD-RMS | "+strings.Join(rms.Algorithms(), " | "))
		k        = flag.Int("k", 1, "regret rank k")
		r        = flag.Int("r", 10, "result size r")
		mrr      = flag.Bool("mrr", false, "also estimate the maximum k-regret ratio of the result")
		samples  = flag.Int("samples", 100000, "utility samples for -mrr")
		seed     = flag.Int64("seed", 1, "random seed")
		sky      = flag.Bool("skyline", false, "print the skyline instead of a regret set")
		generate = flag.String("generate", "", "emit a synthetic dataset instead: indep | anticor")
		n        = flag.Int("n", 10000, "tuples for -generate")
		d        = flag.Int("d", 6, "attributes for -generate")
	)
	flag.Parse()

	if *generate != "" {
		var ds *dataset.Dataset
		switch *generate {
		case "indep":
			ds = dataset.Indep(*n, *d, *seed)
		case "anticor":
			ds = dataset.AntiCor(*n, *d, *seed)
		default:
			fatalf("unknown generator %q (use indep or anticor)", *generate)
		}
		if err := dataset.SaveCSV(os.Stdout, ds); err != nil {
			fatalf("writing CSV: %v", err)
		}
		return
	}

	if *input == "" {
		fmt.Fprintln(os.Stderr, "rmscli: -input or -generate is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	ds, err := dataset.LoadCSV(f, *input)
	if err != nil {
		fatalf("%v", err)
	}
	ds.Normalize()
	pts := make([]rms.Point, ds.N())
	for i, p := range ds.Points {
		pts[i] = rms.Point{ID: p.ID, Values: p.Coords}
	}

	if *sky {
		for _, p := range rms.Skyline(pts) {
			printPoint(p)
		}
		return
	}

	start := time.Now()
	var result []rms.Point
	if *algo == "FD-RMS" {
		dyn, err := rms.NewDynamic(ds.Dim, pts, rms.Options{K: *k, R: *r, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		result = dyn.Result()
	} else {
		result, err = rms.Compute(*algo, pts, ds.Dim, *k, *r, *seed)
		if err != nil {
			fatalf("%v", err)
		}
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "rmscli: %s picked %d of %d tuples in %v\n",
		*algo, len(result), len(pts), elapsed.Round(time.Millisecond))
	for _, p := range result {
		printPoint(p)
	}
	if *mrr {
		v := rms.MaxRegretRatio(pts, result, ds.Dim, *k, *samples, *seed)
		fmt.Fprintf(os.Stderr, "rmscli: estimated maximum %d-regret ratio: %.4f (%d samples)\n", *k, v, *samples)
	}
}

func printPoint(p rms.Point) {
	cells := make([]string, 0, len(p.Values)+1)
	cells = append(cells, fmt.Sprint(p.ID))
	for _, x := range p.Values {
		cells = append(cells, fmt.Sprintf("%.4f", x))
	}
	fmt.Println(strings.Join(cells, ","))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rmscli: "+format+"\n", args...)
	os.Exit(1)
}
