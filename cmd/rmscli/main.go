// Command rmscli runs k-regret minimizing set computation over CSV files —
// the end-user entry point of the library.
//
// Compute a representative set (CSV columns: id, attr1..attrD,
// larger = better):
//
//	rmscli -input hotels.csv -algo FD-RMS -k 1 -r 10
//	rmscli -input hotels.csv -algo Sphere -r 10 -mrr
//
// Generate a synthetic dataset to play with:
//
//	rmscli -generate anticor -n 10000 -d 6 > anticor.csv
//
// Print the skyline instead of a regret set:
//
//	rmscli -input hotels.csv -skyline
//
// Run a DURABLE store: with -wal-dir, FD-RMS state lives in a write-ahead
// log + checkpoint directory and survives restarts. A fresh directory is
// initialized from the input CSV; an existing one is recovered first and the
// CSV (if any) is ingested as logged updates on top:
//
//	rmscli -input hotels.csv -wal-dir ./state        # init or ingest
//	rmscli -wal-dir ./state -restore                 # recover, print result
//	rmscli checkpoint -wal-dir ./state               # snapshot + prune log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fdrms/internal/dataset"
	"fdrms/rms"
)

func main() {
	// Verb-style invocation: "rmscli checkpoint -wal-dir DIR".
	args := os.Args[1:]
	verb := ""
	if len(args) > 0 && args[0] == "checkpoint" {
		verb = args[0]
		args = args[1:]
	}
	var (
		input    = flag.String("input", "", "input CSV file (id,attr1,...,attrD; larger = better)")
		algo     = flag.String("algo", "FD-RMS", "algorithm: FD-RMS | "+strings.Join(rms.Algorithms(), " | "))
		k        = flag.Int("k", 1, "regret rank k")
		r        = flag.Int("r", 10, "result size r")
		mrr      = flag.Bool("mrr", false, "also estimate the maximum k-regret ratio of the result")
		samples  = flag.Int("samples", 100000, "utility samples for -mrr")
		seed     = flag.Int64("seed", 1, "random seed")
		sky      = flag.Bool("skyline", false, "print the skyline instead of a regret set")
		generate = flag.String("generate", "", "emit a synthetic dataset instead: indep | anticor")
		n        = flag.Int("n", 10000, "tuples for -generate")
		d        = flag.Int("d", 6, "attributes for -generate")
		walDir   = flag.String("wal-dir", "", "durability directory: log updates to a WAL and recover state across runs (FD-RMS only)")
		restore  = flag.Bool("restore", false, "with -wal-dir: recover the persisted state and print its result (no -input needed)")
		sync     = flag.Bool("sync", true, "with -wal-dir: fsync the log after every batch")
	)
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(2)
	}

	if verb == "checkpoint" || *restore {
		if *walDir == "" {
			fatalf("checkpoint / -restore require -wal-dir")
		}
		if ok, err := rms.HasDurableState(*walDir); err != nil {
			fatalf("%v", err)
		} else if !ok {
			fatalf("%s holds no durable store (initialize one with -input ... -wal-dir %s)", *walDir, *walDir)
		}
		ds, err := rms.OpenDurable(*walDir, 0, nil, rms.Options{}, rms.DurableOptions{SyncEveryBatch: *sync})
		if err != nil {
			fatalf("%v", err)
		}
		defer ds.Close()
		if verb == "checkpoint" {
			start := time.Now()
			seq, err := ds.Checkpoint()
			if err != nil {
				fatalf("checkpoint: %v", err)
			}
			fmt.Fprintf(os.Stderr, "rmscli: checkpointed %d tuples at seq %d in %v (%s)\n",
				ds.Len(), seq, time.Since(start).Round(time.Millisecond), *walDir)
			return
		}
		fmt.Fprintf(os.Stderr, "rmscli: recovered %d tuples (last seq %d) from %s\n",
			ds.Len(), ds.LastSeq(), *walDir)
		for _, p := range ds.Result() {
			printPoint(p)
		}
		return
	}

	if *generate != "" {
		var ds *dataset.Dataset
		switch *generate {
		case "indep":
			ds = dataset.Indep(*n, *d, *seed)
		case "anticor":
			ds = dataset.AntiCor(*n, *d, *seed)
		default:
			fatalf("unknown generator %q (use indep or anticor)", *generate)
		}
		if err := dataset.SaveCSV(os.Stdout, ds); err != nil {
			fatalf("writing CSV: %v", err)
		}
		return
	}

	if *input == "" {
		fmt.Fprintln(os.Stderr, "rmscli: -input or -generate is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	ds, err := dataset.LoadCSV(f, *input)
	if err != nil {
		fatalf("%v", err)
	}
	// Ingesting into an EXISTING durable store must not re-normalize: the
	// per-file min/max scaling would put this file's tuples on a different
	// scale than the tuples already in the store (normalization bounds are
	// not part of the durable state). The caller provides consistently
	// scaled data across incremental loads; everywhere else the usual
	// normalize-to-unit-box applies.
	ingestExisting := false
	if *algo == "FD-RMS" && *walDir != "" && !*sky {
		if ingestExisting, err = rms.HasDurableState(*walDir); err != nil {
			fatalf("%v", err)
		}
	}
	if ingestExisting {
		fmt.Fprintf(os.Stderr, "rmscli: ingesting %s into existing store %s without re-normalizing (scale your data consistently across loads)\n", *input, *walDir)
	} else {
		ds.Normalize()
	}
	pts := make([]rms.Point, ds.N())
	for i, p := range ds.Points {
		pts[i] = rms.Point{ID: p.ID, Values: p.Coords}
	}

	if *sky {
		for _, p := range rms.Skyline(pts) {
			printPoint(p)
		}
		return
	}

	start := time.Now()
	var result []rms.Point
	if *algo == "FD-RMS" && *walDir != "" {
		var store *rms.DurableStore
		if ingestExisting {
			// Recover first, then ingest the CSV as durable updates.
			store, err = rms.OpenDurable(*walDir, 0, nil, rms.Options{}, rms.DurableOptions{SyncEveryBatch: *sync})
			if err != nil {
				fatalf("%v", err)
			}
			// Chunked so arbitrarily large CSVs never exceed the WAL's
			// per-record size limit (one batch = one log record).
			const chunk = 4096
			for i := 0; i < len(pts); i += chunk {
				j := i + chunk
				if j > len(pts) {
					j = len(pts)
				}
				batch := make([]rms.Update, j-i)
				for k, p := range pts[i:j] {
					batch[k] = rms.Ins(p)
				}
				if err := store.ApplyBatch(batch); err != nil {
					fatalf("%v", err)
				}
			}
		} else {
			store, err = rms.OpenDurable(*walDir, ds.Dim, pts, rms.Options{K: *k, R: *r, Seed: *seed},
				rms.DurableOptions{SyncEveryBatch: *sync})
			if err != nil {
				fatalf("%v", err)
			}
		}
		defer store.Close()
		result = store.Result()
	} else if *algo == "FD-RMS" {
		dyn, err := rms.NewDynamic(ds.Dim, pts, rms.Options{K: *k, R: *r, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		result = dyn.Result()
	} else {
		result, err = rms.Compute(*algo, pts, ds.Dim, *k, *r, *seed)
		if err != nil {
			fatalf("%v", err)
		}
	}
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stderr, "rmscli: %s picked %d of %d tuples in %v\n",
		*algo, len(result), len(pts), elapsed.Round(time.Millisecond))
	for _, p := range result {
		printPoint(p)
	}
	if *mrr {
		v := rms.MaxRegretRatio(pts, result, ds.Dim, *k, *samples, *seed)
		fmt.Fprintf(os.Stderr, "rmscli: estimated maximum %d-regret ratio: %.4f (%d samples)\n", *k, v, *samples)
	}
}

func printPoint(p rms.Point) {
	cells := make([]string, 0, len(p.Values)+1)
	cells = append(cells, fmt.Sprint(p.ID))
	for _, x := range p.Values {
		cells = append(cells, fmt.Sprintf("%.4f", x))
	}
	fmt.Println(strings.Join(cells, ","))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rmscli: "+format+"\n", args...)
	os.Exit(1)
}
