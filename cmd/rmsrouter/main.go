// Command rmsrouter fans reads across a replication fleet: one durable
// primary (rmsserve -wal-dir) and any number of WAL-tailing followers
// (rmsserve -follow). It probes every backend's /readyz, routes reads to
// followers that are ready and within the staleness bound (round-robin,
// with one retry against a different follower and failover to the primary),
// and forwards writes to the primary exactly once — never retried, because
// a double-applied batch changes a path-dependent FD-RMS answer.
//
//	rmsrouter -addr :8090 \
//	  -primary http://10.0.0.1:8080 \
//	  -followers http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	  -staleness-bound 2s
//
// GET /routerz reports the router's own health and the per-backend table.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"fdrms/internal/replica"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		primary   = flag.String("primary", "http://localhost:8080", "primary base URL (writes and read failover)")
		followers = flag.String("followers", "", "comma-separated follower base URLs")
		stale     = flag.Duration("staleness-bound", 5*time.Second, "eject followers reporting staleness past this bound")
		probe     = flag.Duration("probe-interval", 250*time.Millisecond, "health probe cadence")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-attempt forward timeout")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*followers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	r := replica.NewRouter(*primary, urls, replica.RouterOptions{
		ProbeInterval:  *probe,
		StalenessBound: *stale,
		RequestTimeout: *timeout,
	})
	r.Start()
	defer r.Close()

	log.Printf("rmsrouter: routing on %s — primary %s, %d followers, staleness bound %v",
		*addr, *primary, len(urls), *stale)
	log.Fatal(http.ListenAndServe(*addr, r))
}
