// Package fdrms ties one testing.B benchmark to every table and figure of
// the paper's evaluation (Section IV). Each benchmark regenerates its
// artifact end-to-end at smoke scale (bench.QuickOptions); the full-scale
// sweeps that produced EXPERIMENTS.md are driven by cmd/rmsbench.
//
//	go test -bench=. -benchmem
package fdrms

import (
	"testing"

	"fdrms/internal/bench"
)

// BenchmarkTable1DatasetStats regenerates Table I (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.Table1(bench.QuickOptions()); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4SkylineSizes regenerates Fig. 4 (skyline sizes of the
// synthetic dataset families).
func BenchmarkFig4SkylineSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig4(bench.QuickOptions()); len(ts) != 2 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkFig5EpsilonSweep regenerates Fig. 5 (effect of ε on FD-RMS) on
// the Indep dataset.
func BenchmarkFig5EpsilonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig5(bench.QuickOptions(), "Indep"); len(ts) != 1 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkFig6ResultSize regenerates Fig. 6 (effect of the result size r,
// all algorithms) on the Indep dataset.
func BenchmarkFig6ResultSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig6(bench.QuickOptions(), "Indep"); len(ts) != 1 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkFig7KSweep regenerates Fig. 7 (effect of k, the k-capable
// algorithms) on the Indep dataset.
func BenchmarkFig7KSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig7(bench.QuickOptions(), "Indep"); len(ts) != 1 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkFig8Dimensionality regenerates Fig. 8a/8b (scalability in d).
func BenchmarkFig8Dimensionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig8Dim(bench.QuickOptions()); len(ts) != 2 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkFig8DatasetSize regenerates Fig. 8c/8d (scalability in n).
func BenchmarkFig8DatasetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ts := bench.Fig8Size(bench.QuickOptions()); len(ts) != 2 {
			b.Fatal("unexpected table count")
		}
	}
}

// BenchmarkAblationCover regenerates the stable-cover-vs-re-greedy ablation
// (DESIGN.md §4.1).
func BenchmarkAblationCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.AblationCover(bench.QuickOptions(), "Indep"); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationCone regenerates the cone-tree pruning ablation
// (DESIGN.md §4.2).
func BenchmarkAblationCone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.AblationCone(bench.QuickOptions(), "Indep"); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAblationTopK regenerates the top-k fast-path ablation
// (DESIGN.md §4.4).
func BenchmarkAblationTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.AblationTopK(bench.QuickOptions(), "Indep"); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkBatchThroughput regenerates the batched-vs-sequential update
// throughput table on the anti-correlated workload.
func BenchmarkBatchThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.BatchThroughput(bench.QuickOptions()); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSlidingWindow regenerates the sliding-window / delete-heavy
// throughput table, exercising the run-segmented delete batching.
func BenchmarkSlidingWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.SlidingWindow(bench.QuickOptions()); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkRecovery runs the durability experiment end to end at smoke
// scale: WAL ingest under both sync policies, checkpoint, simulated crash,
// and bit-exact recovery (the table itself fails the state==live check by
// reporting false, which CI greps for).
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Recovery(bench.QuickOptions())
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
		last := t.Rows[len(t.Rows)-1]
		if last[len(last)-1] != "true" {
			b.Fatalf("recovered state diverged: %v", last)
		}
	}
}
