// Quickstart: the worked example of the FD-RMS paper (Figs. 1 and 3) on an
// 8-tuple two-dimensional database — build a dynamic k-RMS structure, read
// the representative set, then watch it adapt to an insertion and a
// deletion.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fdrms/rms"
)

func main() {
	// The database of Fig. 1: 8 tuples with two scores in [0, 1].
	db := []rms.Point{
		{ID: 1, Values: []float64{0.2, 1.0}},
		{ID: 2, Values: []float64{0.6, 0.8}},
		{ID: 3, Values: []float64{0.7, 0.5}},
		{ID: 4, Values: []float64{1.0, 0.1}},
		{ID: 5, Values: []float64{0.4, 0.3}},
		{ID: 6, Values: []float64{0.2, 0.7}},
		{ID: 7, Values: []float64{0.3, 0.9}},
		{ID: 8, Values: []float64{0.6, 0.6}},
	}

	// RMS(1, 3): keep 3 tuples such that every linear preference finds one
	// of them nearly as good as its true favourite.
	d, err := rms.NewDynamic(2, db, rms.Options{K: 1, R: 3, Epsilon: 0.002, MaxUtilities: 64, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	report := func(stage string, P []rms.Point) {
		res := d.Result()
		mrr := rms.MaxRegretRatio(P, res, 2, 1, 20000, 1)
		fmt.Printf("%-22s result=%v  max 1-regret ratio=%.4f\n", stage, ids(res), mrr)
	}
	report("initial (Fig. 3b)", db)

	// Fig. 3c: insert p9 = (0.9, 0.6). It dominates p3 and p8 and becomes a
	// strong representative immediately.
	p9 := rms.Point{ID: 9, Values: []float64{0.9, 0.6}}
	if err := d.Insert(p9); err != nil {
		log.Fatal(err)
	}
	db = append(db, p9)
	report("after inserting p9", db)

	// Fig. 3d: delete p1 = (0.2, 1.0), the best tuple for rating-focused
	// users; the structure promotes a replacement.
	d.Delete(1)
	db = remove(db, 1)
	report("after deleting p1", db)

	// The skyline for reference: every answer is drawn from it.
	fmt.Printf("%-22s %v\n", "skyline", ids(rms.Skyline(db)))
}

func ids(ps []rms.Point) []int {
	out := make([]int, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func remove(ps []rms.Point, id int) []rms.Point {
	out := ps[:0]
	for _, p := range ps {
		if p.ID != id {
			out = append(out, p)
		}
	}
	return out
}
