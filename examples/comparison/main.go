// Comparison: FD-RMS against the static k-RMS algorithms from the paper's
// evaluation, on one dynamic workload. The static algorithms must recompute
// whenever the skyline changes; FD-RMS updates incrementally. This is a
// single-dataset, human-readable miniature of the full harness
// (cmd/rmsbench regenerates the paper's figures).
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fdrms/rms"
)

func main() {
	const (
		n   = 4000
		dim = 4
		r   = 10
	)
	rng := rand.New(rand.NewSource(11))
	pts := make([]rms.Point, n)
	for i := range pts {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = rms.Point{ID: i, Values: v}
	}
	initial, inserts := pts[:n/2], pts[n/2:]

	// Dynamic: initialize once, then insert the second half.
	d, err := rms.NewDynamic(dim, initial, rms.Options{K: 1, R: r, Epsilon: 0.008, Seed: 5})
	if err != nil {
		fmt.Println("init error:", err)
		return
	}
	start := time.Now()
	for _, p := range inserts {
		if err := d.Insert(p); err != nil {
			fmt.Println("insert error:", err)
			return
		}
	}
	dynTotal := time.Since(start)
	dynMRR := rms.MaxRegretRatio(pts, d.Result(), dim, 1, 50000, 9)

	fmt.Printf("database: %d tuples, %d attributes; r = %d, k = 1\n", n, dim, r)
	fmt.Printf("%-12s %14s %14s %8s\n", "algorithm", "total-time", "per-insert", "mrr")
	fmt.Printf("%-12s %14v %14v %8.4f   (incremental over %d inserts)\n",
		"FD-RMS", dynTotal.Round(time.Microsecond),
		(dynTotal / time.Duration(len(inserts))).Round(time.Microsecond), dynMRR, len(inserts))

	// Static algorithms: one full recomputation on the final database, the
	// cost they would pay at EVERY skyline-changing update.
	for _, name := range []string{"Sphere", "HS", "eps-Kernel", "DMM-Greedy", "Greedy"} {
		start := time.Now()
		q, err := rms.Compute(name, pts, dim, 1, r, 5)
		if err != nil {
			fmt.Printf("%-12s error: %v\n", name, err)
			continue
		}
		dt := time.Since(start)
		mrr := rms.MaxRegretRatio(pts, q, dim, 1, 50000, 9)
		fmt.Printf("%-12s %14v %14s %8.4f   (one from-scratch run)\n",
			name, dt.Round(time.Microsecond), "-", mrr)
	}
	fmt.Println("\nA static algorithm pays its from-scratch cost at every skyline change;")
	fmt.Println("FD-RMS pays the per-insert cost above. See cmd/rmsbench for the full study.")
}
