// Hotels: the multi-criteria decision-making scenario from the paper's
// introduction. A booking site scores every hotel on price, rating,
// location and amenities, and wants to surface a page of representatives
// such that EVERY user — whatever their priorities — finds something close
// to their personal best. Prices and availability change constantly, so the
// representative set is maintained with FD-RMS rather than recomputed.
//
// Run with: go run ./examples/hotels
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdrms/rms"
)

type hotel struct {
	name string
	// price (cheaper=better, already inverted), rating, location, amenities
	scores []float64
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// A city with 2000 hotels: quality correlates across attributes
	// (well-run hotels score high on rating AND amenities), with noise.
	hotels := make([]hotel, 2000)
	pts := make([]rms.Point, len(hotels))
	for i := range hotels {
		quality := rng.Float64()
		mk := func() float64 {
			v := 0.55*quality + 0.45*rng.Float64()
			if v > 1 {
				v = 1
			}
			return v
		}
		// Price fights quality: better hotels cost more.
		price := 1 - 0.6*quality - 0.4*rng.Float64()
		if price < 0 {
			price = 0
		}
		hotels[i] = hotel{
			name:   fmt.Sprintf("hotel-%04d", i),
			scores: []float64{price, mk(), rng.Float64(), mk()},
		}
		pts[i] = rms.Point{ID: i, Values: hotels[i].scores}
	}

	// One front page of 8 hotels; k=2 means "as good as anyone's 2nd pick".
	d, err := rms.NewDynamic(4, pts, rms.Options{K: 2, R: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show := func(stage string) {
		fmt.Printf("--- %s ---\n", stage)
		for _, p := range d.Result() {
			h := hotels[p.ID]
			fmt.Printf("  %s  price=%.2f rating=%.2f location=%.2f amenities=%.2f\n",
				h.name, h.scores[0], h.scores[1], h.scores[2], h.scores[3])
		}
	}
	show(fmt.Sprintf("front page over %d hotels", len(pts)))

	// A flash sale: 50 random hotels drop their price (update = delete +
	// insert with the same ID, as the paper prescribes).
	for i := 0; i < 50; i++ {
		id := rng.Intn(len(hotels))
		s := append([]float64(nil), hotels[id].scores...)
		s[0] = 0.9 + 0.1*rng.Float64() // near-best price
		hotels[id].scores = s
		if err := d.Insert(rms.Point{ID: id, Values: s}); err != nil {
			log.Fatal(err)
		}
	}
	show("after a 50-hotel flash sale")

	// 100 hotels sell out and disappear from inventory.
	removed := 0
	for removed < 100 {
		id := rng.Intn(len(hotels))
		if d.Contains(id) {
			d.Delete(id)
			removed++
		}
	}
	show("after 100 hotels sold out")

	st := d.Stats()
	fmt.Printf("\nmaintenance state: m=%d utility samples, cover=%d sets, %d stabilize takeovers\n",
		st.M, st.CoverSize, st.Takeovers)
}
