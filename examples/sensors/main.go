// Sensors: the IoT scenario from the paper's introduction. A fleet of
// sensors streams multi-dimensional health statistics (throughput, battery,
// uptime, signal, coverage, accuracy) to a gateway; devices connect,
// disconnect and re-report constantly. The gateway keeps a k-RMS panel of
// representative devices — useful for dashboards and for picking probe
// targets — and FD-RMS keeps the panel current at microsecond-level cost
// per event instead of recomputing on every change.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fdrms/rms"
)

const dim = 6

func reading(rng *rand.Rand, id int) rms.Point {
	v := make([]float64, dim)
	for j := range v {
		v[j] = rng.Float64()
	}
	return rms.Point{ID: id, Values: v}
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// 5000 sensors online at start.
	initial := make([]rms.Point, 5000)
	for i := range initial {
		initial[i] = reading(rng, i)
	}
	start := time.Now()
	d, err := rms.NewDynamic(dim, initial, rms.Options{K: 1, R: 12, Epsilon: 0.004, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initialized over %d sensors in %v\n", len(initial), time.Since(start).Round(time.Millisecond))

	// Simulate a day of churn: connects, disconnects, and metric updates.
	const events = 20000
	nextID := len(initial)
	live := make([]int, len(initial))
	for i := range live {
		live[i] = i
	}
	var busiest time.Duration
	t0 := time.Now()
	for e := 0; e < events; e++ {
		s := time.Now()
		switch rng.Intn(3) {
		case 0: // a new sensor joins
			if err := d.Insert(reading(rng, nextID)); err != nil {
				log.Fatal(err)
			}
			live = append(live, nextID)
			nextID++
		case 1: // a sensor drops off
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			d.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // a sensor re-reports its stats (update = delete + insert)
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			if err := d.Insert(reading(rng, id)); err != nil {
				log.Fatal(err)
			}
		}
		if dt := time.Since(s); dt > busiest {
			busiest = dt
		}
	}
	elapsed := time.Since(t0)
	fmt.Printf("processed %d events in %v (avg %v/event, worst %v)\n",
		events, elapsed.Round(time.Millisecond),
		(elapsed / events).Round(time.Microsecond), busiest.Round(time.Microsecond))

	fmt.Printf("%d sensors online; representative panel:\n", d.Len())
	for _, p := range d.Result() {
		fmt.Printf("  sensor-%05d  %v\n", p.ID, rounded(p.Values))
	}
	st := d.Stats()
	fmt.Printf("maintenance state: m=%d utility samples, cover=%d, reassignments=%d\n",
		st.M, st.CoverSize, st.Reassignments)
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*100)) / 100
	}
	return out
}
