package rms

import (
	"slices"
	"testing"
)

// TestNextIDs pins the merge semantics of the membership-delta fold: the
// last operation on an id within one write wins, results stay sorted and
// duplicate-free, and the order the deltas arrived in (which follows batch
// order, not id order) cannot change the outcome.
func TestNextIDs(t *testing.T) {
	cases := []struct {
		name  string
		prev  []int
		delta []idDelta
		want  []int
	}{
		{"empty delta", []int{1, 3, 5}, nil, []int{1, 3, 5}},
		{"insert new", []int{1, 3}, []idDelta{{id: 2, live: true}}, []int{1, 2, 3}},
		{"insert existing is idempotent", []int{1, 3}, []idDelta{{id: 3, live: true}}, []int{1, 3}},
		{"delete", []int{1, 3, 5}, []idDelta{{id: 3, live: false}}, []int{1, 5}},
		{"delete absent is a no-op", []int{1, 5}, []idDelta{{id: 3, live: false}}, []int{1, 5}},
		{
			"insert then delete same id: delete wins",
			[]int{1},
			[]idDelta{{id: 2, live: true}, {id: 2, live: false}},
			[]int{1},
		},
		{
			"delete then reinsert same id: insert wins",
			[]int{1, 2},
			[]idDelta{{id: 2, live: false}, {id: 2, live: true}},
			[]int{1, 2},
		},
		{
			"unsorted batch order",
			[]int{2, 4, 6},
			[]idDelta{{id: 7, live: true}, {id: 4, live: false}, {id: 1, live: true}},
			[]int{1, 2, 6, 7},
		},
	}
	for _, tc := range cases {
		got := nextIDs(tc.prev, tc.delta)
		if !slices.Equal(got, tc.want) {
			t.Errorf("%s: nextIDs(%v, %v) = %v, want %v", tc.name, tc.prev, tc.delta, got, tc.want)
		}
	}
}
