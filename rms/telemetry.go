// Serving telemetry: one Telemetry value aggregates the obs handles of
// every layer under a store — engine (topk), cover (setcover), WAL,
// checkpoints, and the store's own publish/read accounting — plus the
// per-batch trace ring behind /debug/vars.
//
// NewTelemetry registers EVERY family up front, so a scrape of a freshly
// attached store already exposes all five layer prefixes (fdrms_topk_,
// fdrms_pool_, fdrms_setcover_, fdrms_wal_, fdrms_store_) at zero rather
// than families popping into existence with traffic — monitoring rules can
// be written against a fixed set.
//
// The rms package sits outside the engine's determinism contract, so it
// may read the wall clock; timings cross into the contract-bound engine
// only through the audited SetPhaseClock injection boundary (see
// core.Instrument).
package rms

import (
	"time"

	"fdrms/internal/obs"
	"fdrms/internal/setcover"
	"fdrms/internal/topk"
	"fdrms/internal/wal"
)

// processStart anchors the process-local monotonic clock. Durations derived
// from it are immune to wall-clock steps.
var processStart = time.Now()

// monotonicNanos is the phase clock injected into the engine and the
// timestamp source for every rms-level timing. Safe for concurrent calls.
func monotonicNanos() int64 { return int64(time.Since(processStart)) }

// traceRingSize is how many recent batch traces /debug/vars retains.
const traceRingSize = 256

// Telemetry is the handle bundle one registry's worth of store
// instrumentation. Build it once with NewTelemetry and attach it with
// Store.SetTelemetry (or DurableStore.SetTelemetry, which also wires the
// WAL); several sequential stores may share one Telemetry.
type Telemetry struct {
	reg *obs.Registry

	// Per-layer handle sets, installed into the respective components.
	Engine *topk.Metrics
	Cover  *setcover.Metrics
	WAL    *wal.Metrics

	publishes *obs.Counter

	readResultNs *obs.Histogram
	readTopKNs   *obs.Histogram
	readRegretNs *obs.Histogram

	checkpoints *obs.Counter
	ckptNs      *obs.Histogram
	ckptChunks  *obs.Counter
	ckptStallNs *obs.Histogram

	traces *obs.TraceRing
}

// NewTelemetry registers every layer's metric families on reg and returns
// the bundle, or nil when reg is nil (instrumentation off).
func NewTelemetry(reg *obs.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	readNs := func(kind string) *obs.Histogram {
		return reg.Histogram("fdrms_store_read_ns", "latency of one lock-free store read, nanoseconds", obs.L("kind", kind))
	}
	return &Telemetry{
		reg:    reg,
		Engine: topk.NewMetrics(reg),
		Cover:  setcover.NewMetrics(reg),
		WAL:    wal.NewMetrics(reg),

		publishes: reg.Counter("fdrms_store_publishes_total", "generations published (committed writes)"),

		readResultNs: readNs("result"),
		readTopKNs:   readNs("topk"),
		readRegretNs: readNs("regret"),

		checkpoints: reg.Counter("fdrms_store_checkpoints_total", "checkpoints persisted"),
		ckptNs:      reg.Histogram("fdrms_store_checkpoint_ns", "wall time of one whole streaming checkpoint, nanoseconds"),
		ckptChunks:  reg.Counter("fdrms_store_checkpoint_chunks_total", "streaming-capture chunk windows taken under the writer lock"),
		ckptStallNs: reg.Histogram("fdrms_store_checkpoint_stall_ns", "writer-lock hold time of one capture chunk window, nanoseconds"),

		traces: obs.NewTraceRing(traceRingSize),
	}
}

// Trace returns the per-batch trace ring (nil on a nil Telemetry).
func (t *Telemetry) Trace() *obs.TraceRing {
	if t == nil {
		return nil
	}
	return t.traces
}

// PhaseVars is the phase breakdown served by /debug/vars, read from the
// engine's atomic mirrors (safe against a concurrent writer).
type PhaseVars struct {
	Runs         uint64 `json:"runs"`
	ParallelRuns uint64 `json:"parallel_runs"`
	CandidateNs  uint64 `json:"candidate_ns"`
	IndexNs      uint64 `json:"index_ns"`
	FanoutNs     uint64 `json:"fanout_ns"`
	MergeNs      uint64 `json:"merge_ns"`
	EmitNs       uint64 `json:"emit_ns"`
}

// DebugVars is the JSON document served by /debug/vars: the recent batch
// traces plus the cumulative phase breakdown.
type DebugVars struct {
	TracesTotal uint64           `json:"traces_total"`
	Traces      []obs.BatchTrace `json:"traces"`
	Phase       PhaseVars        `json:"phase"`
}

// DebugVars assembles the current /debug/vars document. Safe to call from
// any goroutine.
func (t *Telemetry) DebugVars() DebugVars {
	if t == nil {
		return DebugVars{}
	}
	return DebugVars{
		TracesTotal: t.traces.Total(),
		Traces:      t.traces.Snapshot(),
		Phase: PhaseVars{
			Runs:         t.Engine.Runs.Load(),
			ParallelRuns: t.Engine.ParallelRuns.Load(),
			CandidateNs:  t.Engine.CandNs.Load(),
			IndexNs:      t.Engine.IndexNs.Load(),
			FanoutNs:     t.Engine.FanoutNs.Load(),
			MergeNs:      t.Engine.MergeNs.Load(),
			EmitNs:       t.Engine.EmitNs.Load(),
		},
	}
}

// SetTelemetry attaches the bundle to the store: metric mirrors and the
// phase clock go into the engine and cover solver, and gauges for the
// published generation (id, age, live tuples) are registered against this
// store (re-attaching another store to the same Telemetry repoints them —
// last writer wins, matching sequential store lifecycles). A nil Telemetry
// detaches instrumentation. Reads pick the change up atomically; writers
// must not race the call, so attach before heavy ingestion starts.
func (s *Store) SetTelemetry(t *Telemetry) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if t == nil {
		s.tel.Store(nil)
		s.d.f.Instrument(nil, nil, nil)
		return
	}
	s.d.f.Instrument(t.Engine, t.Cover, monotonicNanos)
	t.reg.GaugeFunc("fdrms_store_generation", "id of the newest published generation", func() float64 {
		if g := s.gen.Load(); g != nil {
			return float64(g.id)
		}
		return 0
	})
	t.reg.GaugeFunc("fdrms_store_generation_age_seconds", "age of the newest published generation", func() float64 {
		if g := s.gen.Load(); g != nil {
			return float64(monotonicNanos()-g.born) / 1e9
		}
		return 0
	})
	t.reg.GaugeFunc("fdrms_store_live_tuples", "database size of the newest published generation", func() float64 {
		if g := s.gen.Load(); g != nil {
			return float64(g.Len())
		}
		return 0
	})
	s.tel.Store(t)
}

// traceSnap is the pre-write snapshot behind one BatchTrace: engine
// counters and phase totals before the batch, so the record carries exact
// per-batch deltas. The zero value means "tracing off".
type traceSnap struct {
	on        bool
	t0        int64
	requeries int
	changes   int
	cand      int64
	index     int64
	fanout    int64
	merge     int64
	emit      int64
}

// traceBegin snapshots the engine counters before a write; wmu must be
// held. Free (one branch) when no telemetry is attached.
func (s *Store) traceBegin() traceSnap {
	t := s.tel.Load()
	if t == nil {
		return traceSnap{}
	}
	e := s.d.f.Engine()
	ts := traceSnap{on: true, t0: monotonicNanos(), requeries: e.Requeries, changes: e.Changes}
	ts.cand, ts.index, ts.fanout, ts.merge, ts.emit = e.PhaseTotals()
	return ts
}

// traceEnd records one committed write into the trace ring and counts the
// publish; wmu must still be held (the engine counters and the published
// generation are read in writer context).
func (s *Store) traceEnd(ts traceSnap, inserts, deletes int) {
	t := s.tel.Load()
	if t == nil || !ts.on {
		return
	}
	t.publishes.Inc()
	e := s.d.f.Engine()
	cand, index, fanout, merge, emit := e.PhaseTotals()
	var gen uint64
	if g := s.gen.Load(); g != nil {
		gen = g.id
	}
	t.traces.Record(&obs.BatchTrace{
		Generation: gen,
		Ops:        inserts + deletes,
		Inserts:    inserts,
		Deletes:    deletes,
		Changes:    e.Changes - ts.changes,
		Requeries:  e.Requeries - ts.requeries,
		CandNs:     cand - ts.cand,
		IndexNs:    index - ts.index,
		FanoutNs:   fanout - ts.fanout,
		MergeNs:    merge - ts.merge,
		EmitNs:     emit - ts.emit,
		TotalNs:    monotonicNanos() - ts.t0,
	})
}

// SetTelemetry attaches the bundle to the durable store: the embedded
// Store is wired as in Store.SetTelemetry, the WAL gets its mirrors, and
// checkpoints get duration/chunk-stall instrumentation. Attach before
// serving; a nil Telemetry detaches.
func (ds *DurableStore) SetTelemetry(t *Telemetry) {
	ds.store.SetTelemetry(t)
	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	if t == nil {
		ds.tel.Store(nil)
		ds.log.SetMetrics(nil)
		return
	}
	ds.log.SetMetrics(t.WAL)
	ds.tel.Store(t)
}
