package rms_test

import (
	"math/rand"
	"strings"
	"testing"

	"fdrms/internal/obs"
	"fdrms/rms"
)

// metricFamilyPrefixes is what a scrape of a freshly attached store must
// already expose: one family per instrumented layer, traffic or not.
var metricFamilyPrefixes = []string{
	"fdrms_topk_",
	"fdrms_pool_",
	"fdrms_setcover_",
	"fdrms_wal_",
	"fdrms_store_",
}

// Attaching telemetry must expose every layer's families up front, count
// publishes per committed write, record one trace per write with consistent
// op counts, and time the read paths.
func TestStoreTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 3
	store, err := rms.NewStore(d, randomTuples(rng, 60, d, 0), rms.Options{K: 1, R: 5, Epsilon: 0.05, MaxUtilities: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	store.SetTelemetry(tel)

	var scrape strings.Builder
	reg.WriteText(&scrape)
	for _, prefix := range metricFamilyPrefixes {
		if !strings.Contains(scrape.String(), prefix) {
			t.Fatalf("idle scrape is missing family prefix %q:\n%s", prefix, scrape.String())
		}
	}

	// Three committed writes: one insert, one batch, one delete.
	if err := store.Insert(rms.Point{ID: 500, Values: []float64{0.9, 0.9, 0.9}}); err != nil {
		t.Fatal(err)
	}
	var batch []rms.Update
	for _, p := range randomTuples(rng, 10, d, 600) {
		batch = append(batch, rms.Ins(p))
	}
	batch = append(batch, rms.Del(0), rms.Del(1))
	if err := store.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	store.Delete(2)

	pubs := reg.Counter("fdrms_store_publishes_total", "").Load()
	if pubs != 3 {
		t.Fatalf("publishes = %d, want 3", pubs)
	}
	traces := tel.Trace().Snapshot()
	if len(traces) != 3 {
		t.Fatalf("trace ring holds %d records, want 3", len(traces))
	}
	wantOps := []struct{ ins, del int }{{1, 0}, {10, 2}, {0, 1}}
	for i, tr := range traces {
		if tr.Inserts != wantOps[i].ins || tr.Deletes != wantOps[i].del {
			t.Fatalf("trace[%d] = %d ins / %d del, want %d/%d", i, tr.Inserts, tr.Deletes, wantOps[i].ins, wantOps[i].del)
		}
		if tr.Ops != tr.Inserts+tr.Deletes {
			t.Fatalf("trace[%d].Ops = %d, want inserts+deletes = %d", i, tr.Ops, tr.Inserts+tr.Deletes)
		}
		if tr.Generation == 0 {
			t.Fatalf("trace[%d] has no generation id", i)
		}
	}
	if traces[2].Generation != store.Current().ID() {
		t.Fatalf("last trace generation = %d, want current %d", traces[2].Generation, store.Current().ID())
	}

	// Read-path latency histograms fill in once the wrapped reads run.
	u := []float64{0.2, 0.3, 0.5}
	if _, err := store.TopK(u, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RegretRatioFor(u); err != nil {
		t.Fatal(err)
	}
	store.Result()
	for _, kind := range []string{"result", "topk", "regret"} {
		h := reg.Histogram("fdrms_store_read_ns", "", obs.L("kind", kind))
		if h.Count() == 0 {
			t.Fatalf("read histogram kind=%q saw no observations", kind)
		}
	}

	dv := tel.DebugVars()
	if dv.TracesTotal != 3 || len(dv.Traces) != 3 {
		t.Fatalf("DebugVars traces = %d/%d, want 3/3", dv.TracesTotal, len(dv.Traces))
	}
	if dv.Phase.Runs == 0 {
		t.Fatal("DebugVars phase breakdown shows no engine runs")
	}

	// Detaching stops mirroring: no further publish counts or traces.
	store.SetTelemetry(nil)
	store.Delete(3)
	if got := reg.Counter("fdrms_store_publishes_total", "").Load(); got != pubs {
		t.Fatalf("publishes moved to %d after detach", got)
	}
}

// The durable store wires the WAL and checkpoint shares on top of the
// store's: appends and fsyncs mirror per batch, Checkpoint counts itself
// with duration and chunk-stall samples.
func TestDurableStoreTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := 2
	ds, err := rms.OpenDurable(t.TempDir(), d, randomTuples(rng, 40, d, 0),
		rms.Options{K: 1, R: 4, Epsilon: 0.05, MaxUtilities: 32, Seed: 3},
		rms.DurableOptions{SyncEveryBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	reg := obs.NewRegistry()
	tel := rms.NewTelemetry(reg)
	ds.SetTelemetry(tel)

	var batch []rms.Update
	for _, p := range randomTuples(rng, 20, d, 100) {
		batch = append(batch, rms.Ins(p))
	}
	if err := ds.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fdrms_wal_appends_total", "").Load(); got != 1 {
		t.Fatalf("wal appends = %d, want 1", got)
	}
	if got := reg.Counter("fdrms_wal_fsyncs_total", "").Load(); got == 0 {
		t.Fatal("no fsyncs mirrored under SyncEveryBatch")
	}

	if _, err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fdrms_store_checkpoints_total", "").Load(); got != 1 {
		t.Fatalf("checkpoints = %d, want 1", got)
	}
	if reg.Counter("fdrms_store_checkpoint_chunks_total", "").Load() == 0 {
		t.Fatal("checkpoint recorded no capture chunk windows")
	}
	if reg.Histogram("fdrms_store_checkpoint_ns", "").Count() != 1 {
		t.Fatal("checkpoint duration histogram is empty")
	}
	if reg.Histogram("fdrms_store_checkpoint_stall_ns", "").Count() == 0 {
		t.Fatal("chunk stall histogram is empty")
	}
}
