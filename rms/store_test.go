package rms_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fdrms/rms"
)

func randomTuples(rng *rand.Rand, n, d, idBase int) []rms.Point {
	out := make([]rms.Point, n)
	for i := range out {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = rms.Point{ID: idBase + i, Values: v}
	}
	return out
}

// ApplyBatch must produce exactly the answer of the one-by-one path.
func TestApplyBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 3
	initial := randomTuples(rng, 100, d, 0)
	opts := rms.Options{K: 1, R: 6, Epsilon: 0.02, MaxUtilities: 128, Seed: 9, Shards: 4}

	batched, err := rms.NewDynamic(d, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := rms.NewDynamic(d, initial, opts)
	if err != nil {
		t.Fatal(err)
	}

	var batch []rms.Update
	for _, p := range randomTuples(rng, 200, d, 1000) {
		batch = append(batch, rms.Ins(p))
	}
	for id := 0; id < 40; id++ {
		batch = append(batch, rms.Del(id))
	}
	if err := batched.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, u := range batch {
		if u.Delete {
			sequential.Delete(u.ID)
		} else {
			if err := sequential.Insert(u.Point); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a, b := batched.Result(), sequential.Result(); !reflect.DeepEqual(a, b) {
		t.Fatalf("results diverge:\n%v\n%v", a, b)
	}
}

// A batch with an invalid tuple is rejected before any update is applied.
func TestApplyBatchValidatesUpFront(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := rms.NewDynamic(2, randomTuples(rng, 30, 2, 0), rms.Options{K: 1, R: 4, Epsilon: 0.05, MaxUtilities: 32})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Result()
	batch := []rms.Update{
		rms.Ins(rms.Point{ID: 500, Values: []float64{0.5, 0.5}}),
		rms.Ins(rms.Point{ID: 501, Values: []float64{0.5, 0.5, 0.5}}), // wrong dimension
	}
	if err := d.ApplyBatch(batch); err == nil {
		t.Fatal("expected dimension error")
	}
	if d.Contains(500) {
		t.Fatal("batch was partially applied before validation failed")
	}
	if !reflect.DeepEqual(before, d.Result()) {
		t.Fatal("result changed after rejected batch")
	}
}

// Store must serve consistent reads while a writer streams batches, and the
// final answer must match an unwrapped instance fed the same updates. Run
// with -race to exercise the locking against the shard-parallel write path.
func TestStoreConcurrentReadersAndWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := 3
	initial := randomTuples(rng, 80, d, 0)
	opts := rms.Options{K: 1, R: 5, Epsilon: 0.03, MaxUtilities: 64, Seed: 2, Shards: 4}
	store, err := rms.NewStore(d, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := rms.NewDynamic(d, initial, opts)
	if err != nil {
		t.Fatal(err)
	}

	var batches [][]rms.Update
	for b := 0; b < 20; b++ {
		var batch []rms.Update
		for _, p := range randomTuples(rng, 15, d, 1000+100*b) {
			batch = append(batch, rms.Ins(p))
		}
		batch = append(batch, rms.Del(rng.Intn(80)))
		batches = append(batches, batch)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res := store.Result()
				if len(res) > 5 {
					t.Errorf("reader %d: |Q| = %d exceeds r", r, len(res))
					return
				}
				store.Len()
				store.Contains(r)
				store.Stats()
			}
		}(r)
	}
	for _, batch := range batches {
		if err := store.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := plain.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	if a, b := store.Result(), plain.Result(); !reflect.DeepEqual(a, b) {
		t.Fatalf("store result %v diverges from plain %v", a, b)
	}
}

// Results handed out by Store are cached immutable snapshots: reads between
// writes share one copy, a write invalidates it, and snapshots taken before
// a write keep their contents while fresh reads see the new answer.
func TestStoreResultSnapshotCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	store, err := rms.NewStore(2, randomTuples(rng, 50, 2, 0), rms.Options{K: 1, R: 4, Epsilon: 0.05, MaxUtilities: 32})
	if err != nil {
		t.Fatal(err)
	}
	res := store.Result()
	if len(res) == 0 {
		t.Fatal("empty result")
	}
	// Reads between writes return the same cached snapshot, not a fresh copy.
	if again := store.Result(); &again[0] != &res[0] {
		t.Fatal("consecutive reads did not share the cached snapshot")
	}

	// A write invalidates the cache, and the old snapshot stays frozen.
	before := make([]rms.Point, len(res))
	for i, p := range res {
		before[i] = rms.Point{ID: p.ID, Values: append([]float64(nil), p.Values...)}
	}
	if err := store.Insert(rms.Point{ID: 999, Values: []float64{0.99, 0.99}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, before) {
		t.Fatal("snapshot taken before the write changed")
	}
	after := store.Result()
	if len(after) > 0 && &after[0] == &res[0] {
		t.Fatal("cache not invalidated by a write")
	}

	// Mutating a handed-out snapshot must not corrupt the maintained answer:
	// the next write rebuilds the result from engine state, not the cache.
	for i := range after[0].Values {
		after[0].Values[i] = -1
	}
	store.Delete(999)
	for _, p := range store.Result() {
		for _, v := range p.Values {
			if v < 0 {
				t.Fatal("snapshot mutation leaked into a rebuilt result")
			}
		}
	}
}
